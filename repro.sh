#!/bin/sh
# One-command reproduction: build, run the full test suite and every
# experiment, recording outputs next to this script.
set -e
cd "$(dirname "$0")"
dune build @all
dune runtest --force --no-buffer 2>&1 | tee test_output.txt
dune exec bench/main.exe 2>&1 | tee bench_output.txt
# Consolidate the per-experiment telemetry (each BENCH_<exp>.json is a
# one-line schema-1 document) into a single BENCH_summary.json so one
# artifact carries every counter the run produced.
{
  printf '{"schema":1,"tool":"bench","kind":"summary","experiments":['
  first=1
  for f in BENCH_*.json; do
    [ "$f" = "BENCH_summary.json" ] && continue
    [ $first -eq 1 ] || printf ','
    first=0
    tr -d '\n' < "$f"
  done
  printf ']}\n'
} > BENCH_summary.json
echo "done: see test_output.txt, bench_output.txt, BENCH_summary.json, EXPERIMENTS.md"
