#!/bin/sh
# One-command reproduction: build, run the full test suite and every
# experiment, recording outputs next to this script.
set -e
cd "$(dirname "$0")"
dune build @all
dune runtest --force --no-buffer 2>&1 | tee test_output.txt
dune exec bench/main.exe 2>&1 | tee bench_output.txt
echo "done: see test_output.txt, bench_output.txt, EXPERIMENTS.md"
