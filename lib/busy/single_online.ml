(* Online busy-time MAXIMIZATION on a single machine without parallelism
   (Faigle, Garbe, Kern, cited in Section 1.3): interval jobs arrive by
   release time; the machine runs at most one job at a time and may abort
   the running job to start a newly arrived one, losing the aborted job.
   Credit is earned for COMPLETED jobs only; the objective is their total
   length - the opposite of everything else in this repository, included
   to complete the related-work coverage.

   Policies:
   - [greedy_switch]: abort iff the arriving job would finish later than
     the running one (the natural deterministic rule; deterministic
     policies cannot be constant-competitive, which is why Faigle et al.
     randomize - experiment E12 shows the losses empirically);
   - [stubborn]: never abort.

   [offline_optimum] is the true offline optimum: completed jobs are
   pairwise disjoint, so it is a maximum-total-length set of disjoint
   intervals (weighted interval scheduling). *)

module Q = Rational
module B = Workload.Bjob

let release_order jobs =
  List.stable_sort (fun (a : B.t) (b : B.t) -> Q.compare a.B.release b.B.release) jobs

let check name jobs =
  List.iter (fun (j : B.t) -> if not (B.is_interval j) then invalid_arg (name ^ ": flexible job")) jobs

(* Run a policy: [switch ~running ~candidate] decides whether to abort.
   Returns (total completed length, completed jobs in order). *)
let run ~switch jobs =
  let completed = ref [] in
  let value = ref Q.zero in
  let running : B.t option ref = ref None in
  let finish_up_to t =
    match !running with
    | Some j when Q.compare j.B.deadline t <= 0 ->
        value := Q.add !value j.B.length;
        completed := j :: !completed;
        running := None
    | _ -> ()
  in
  List.iter
    (fun (j : B.t) ->
      finish_up_to j.B.release;
      match !running with
      | None -> running := Some j
      | Some current -> if switch ~running:current ~candidate:j then running := Some j)
    (release_order jobs);
  (match !running with
  | Some j ->
      value := Q.add !value j.B.length;
      completed := j :: !completed
  | None -> ());
  (!value, List.rev !completed)

let greedy_switch jobs =
  check "Single_online.greedy_switch" jobs;
  run ~switch:(fun ~running ~candidate -> Q.compare candidate.B.deadline running.B.deadline > 0) jobs

let stubborn jobs =
  check "Single_online.stubborn" jobs;
  run ~switch:(fun ~running:_ ~candidate:_ -> false) jobs

(* True offline optimum: any schedule's completed jobs are pairwise
   disjoint, and any disjoint set is schedulable, so this is weighted
   interval scheduling with weight = length. *)
let offline_optimum jobs =
  check "Single_online.offline_optimum" jobs;
  let chosen, total =
    Intervals.Track.max_weight_disjoint ~interval:B.interval_of ~weight:(fun (j : B.t) -> j.B.length) jobs
  in
  (total, chosen)
