(* FIRSTFIT (Flammini et al. [5]): the 4-approximate baseline for interval
   jobs. Consider jobs in non-increasing order of length; put each job in
   the first bundle whose capacity it does not violate, opening a new
   bundle when none fits. *)

module Q = Rational
module B = Workload.Bjob

let solve ?(obs = Obs.null) ~g jobs =
  if g < 1 then invalid_arg "First_fit.solve: g < 1";
  List.iter
    (fun (j : B.t) ->
      if not (B.is_interval j) then invalid_arg "First_fit.solve: flexible job (convert first)")
    jobs;
  Obs.span obs "busy.first_fit" @@ fun () ->
  let sorted = List.stable_sort (fun (a : B.t) (b : B.t) -> Q.compare b.B.length a.B.length) jobs in
  let bundles = ref [] in
  List.iter
    (fun job ->
      let rec place = function
        | [] ->
            Obs.incr obs "busy.first_fit.bundles_opened";
            [ [ job ] ]
        | bundle :: rest ->
            Obs.incr obs "busy.first_fit.fit_probes";
            if Bundle.fits ~g bundle job then (job :: bundle) :: rest else bundle :: place rest
      in
      bundles := place !bundles)
    sorted;
  !bundles
