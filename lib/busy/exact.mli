(** Exact optimal bundling of interval jobs: branch-and-bound over set
    partitions (insert jobs left-to-right into an existing or a fresh
    bundle), pruned by partial cost against an incumbent seeded by
    FirstFit/GreedyTracking. The problem is NP-hard even for [g = 2], so
    this is exponential; [solve] raises [Invalid_argument] beyond 14
    jobs, while [budgeted] takes any size and lets the fuel bound the
    work instead. *)

val solve : g:int -> Workload.Bjob.t list -> Bundle.packing
val optimum : g:int -> Workload.Bjob.t list -> Rational.t

(** Budgeted set-partition search, one tick per node (job insertion
    point). No job cap: exhaustion returns the best packing found so
    far, which is always valid — at worst the FirstFit/GreedyTracking
    seed, so the incumbent is never more than 3x optimal. Raises
    [Invalid_argument] on [g < 1] or flexible jobs. *)
val budgeted :
  budget:Budget.t -> g:int -> Workload.Bjob.t list -> Bundle.packing Budget.outcome
