(** Exact optimal bundling of interval jobs: branch-and-bound over set
    partitions (insert jobs left-to-right into an existing or a fresh
    bundle), pruned by partial cost against an incumbent seeded by
    FirstFit/GreedyTracking. The problem is NP-hard even for [g = 2], so
    this is exponential; without a budget, [solve] raises
    [Invalid_argument] beyond 14 jobs, while with one it takes any size
    and lets the fuel bound the work instead. *)

(** Budgeted set-partition search, one tick per node (job insertion
    point, leaves included). With a budget there is no job cap:
    exhaustion returns the best packing found so far, which is always
    valid — at worst the FirstFit/GreedyTracking seed, so the incumbent
    is never more than 3x optimal. Raises [Invalid_argument] on [g < 1],
    flexible jobs, or more than 14 jobs without a budget.

    The kernel mutates one bundle vector in place with O(1) undo, breaks
    bundle symmetries (only the first bundle of each clipped-signature
    class is tried; a fresh bundle is never opened while a dead one
    exists) and prunes with a suffix lower bound (the uncovered measure
    of the remaining jobs' intervals must still be paid).

    [~parallel:true] (default false; only without a budget, otherwise
    [Invalid_argument]) splits the search at the root into a frontier of
    partial packings searched on separate domains with a shared atomic
    incumbent. The returned optimum cost is deterministic (winner chosen
    after the join: minimum cost, lowest frontier index on ties); the
    representative packing and the node counter may vary run to run.

    With [?obs], runs inside a [busy.exact] span and records
    [busy.exact.nodes] (on the exhausted path too) plus the seeds'
    [busy.first_fit.*] / [busy.greedy_tracking.*] counters. *)
val solve :
  ?budget:Budget.t ->
  ?parallel:bool ->
  ?obs:Obs.t ->
  g:int ->
  Workload.Bjob.t list ->
  Bundle.packing Budget.outcome

(** [solve] with unlimited fuel (so the 14-job cap applies). *)
val exact : ?parallel:bool -> g:int -> Workload.Bjob.t list -> Bundle.packing

val optimum : ?parallel:bool -> g:int -> Workload.Bjob.t list -> Rational.t
