(** Exact optimal bundling of interval jobs: branch-and-bound over set
    partitions (insert jobs left-to-right into an existing or a fresh
    bundle), pruned by partial cost against an incumbent seeded by
    FirstFit/GreedyTracking. The problem is NP-hard even for [g = 2], so
    this is exponential; [Invalid_argument] beyond 14 jobs. *)

val solve : g:int -> Workload.Bjob.t list -> Bundle.packing
val optimum : g:int -> Workload.Bjob.t list -> Rational.t
