(** FIRSTFIT (Flammini et al.): the 4-approximate interval-job baseline.
    Jobs in non-increasing length order, each into the first bundle whose
    capacity it does not violate. Raises [Invalid_argument] on flexible
    jobs or [g < 1]. With [?obs], runs inside a [busy.first_fit] span and
    records [busy.first_fit.fit_probes] / [busy.first_fit.bundles_opened]. *)

val solve : ?obs:Obs.t -> g:int -> Workload.Bjob.t list -> Bundle.packing
