(** FIRSTFIT (Flammini et al.): the 4-approximate interval-job baseline.
    Jobs in non-increasing length order, each into the first bundle whose
    capacity it does not violate. Raises [Invalid_argument] on flexible
    jobs or [g < 1]. *)

val solve : g:int -> Workload.Bjob.t list -> Bundle.packing
