(** Exact busy time for laminar instances (Khandekar et al. prove the
    laminar case polynomial; Section 1 of the paper).

    In a laminar family overlap implies nesting, so a bundle's busy time
    is the total length of its inclusion-maximal members and capacity
    means at most [g] bundle members on any nesting chain. The solver
    runs a tree DP over the laminar forest in which only the total
    remaining join capacity along the current root path is state:

    [f(v, R) = min(join: f_kids(R-1) if R >= 1, open: len v + f_kids(R+g-1))]

    Validated against the exhaustive optimum on random laminar instances
    in the tests. *)

(** Every pair of intervals is nested or disjoint. *)
val is_laminar : Workload.Bjob.t list -> bool

(** Exact optimal packing. Raises [Invalid_argument] on non-laminar or
    flexible inputs, or [g < 1]. Polynomial time. *)
val exact : g:int -> Workload.Bjob.t list -> Bundle.packing

val optimum : g:int -> Workload.Bjob.t list -> Rational.t
