(** Online busy time (Shalom et al., cited in Section 1.3): interval jobs
    arrive in release order and are assigned to machines immediately and
    irrevocably. Deterministic algorithms cannot beat competitiveness [g]
    in general; classing jobs by length underlies the O(g)-competitive
    algorithm. Both rules below are property-tested to produce valid
    packings; experiment E12 measures their empirical competitive
    ratios. *)

(** Length class [k] such that [length] is in [\[2^k, 2^{k+1})]. Raises
    [Invalid_argument] on non-positive lengths. *)
val length_class : Rational.t -> int

(** First machine with capacity, jobs in release order. *)
val first_fit : g:int -> Workload.Bjob.t list -> Bundle.packing

(** First fit within per-length-class machine pools. *)
val bucketed_first_fit : g:int -> Workload.Bjob.t list -> Bundle.packing
