(** Lower bounds on the optimal busy time (Section 4.1):
    mass [l(J)/g] (Observation 2), span [Sp(J)] (Observation 3, interval
    jobs), and the demand profile [sum ceil(A/g) * |cell|] (Observation 4,
    interval jobs), which dominates both. *)

(** Raises [Invalid_argument] when [g < 1]. *)
val mass : g:int -> Workload.Bjob.t list -> Rational.t

(** Span bound for interval jobs. (For flexible jobs use a placement's
    span, see {!Placement}.) *)
val span : Workload.Bjob.t list -> Rational.t

val demand_profile : g:int -> Workload.Bjob.t list -> Rational.t

(** [max mass (max span demand_profile)]. *)
val best : g:int -> Workload.Bjob.t list -> Rational.t
