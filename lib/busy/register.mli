(** Registers every busy-time solver (interval, flexible-pipeline and
    preemptive) with {!Core.Registry}. The registrations run from this
    module's top-level initializer, kept alive by [-linkall]; [force]
    exists for explicit call sites. *)

val force : unit -> unit
