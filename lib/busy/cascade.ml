(* Graceful degradation for the busy-time model: exact set-partition
   search, then GreedyTracking (3-approximation), then FirstFit
   (4-approximation), each under a fresh fuel budget. The greedy tiers
   are polynomial and ignore their budgets, so the cascade always returns
   a packing. The provenance reports the gap to the best Section-4.1
   lower bound (mass / span / demand profile), which bounds how far the
   degraded answer can be from optimal. *)

module Q = Rational
module B = Workload.Bjob

type provenance = Q.t Budget.Cascade.provenance

let tiers ~obs ~g jobs =
  [
    ( "exact",
      fun b ->
        match Exact.solve ~budget:b ~obs ~g jobs with
        | Budget.Complete p -> Some p
        | Budget.Exhausted _ -> raise Budget.Out_of_fuel );
    ("greedy-tracking", fun _ -> Some (Greedy_tracking.solve ~obs ~g jobs));
    ("first-fit", fun _ -> Some (First_fit.solve ~obs ~g jobs));
  ]

let solve ?(obs = Obs.null) ~limit ~g jobs =
  List.iter
    (fun (j : B.t) -> if not (B.is_interval j) then invalid_arg "Cascade.solve: flexible job")
    jobs;
  let r = Budget.Cascade.run ~obs ~limit (tiers ~obs ~g jobs) in
  let prov =
    Budget.Cascade.provenance ~cost_label:"busy" ~bound_label:"lower-bound" ~sub:Q.sub
      ~bound:(Bounds.best ~g jobs)
      ~cost:(Option.map Bundle.total_busy r.Budget.Cascade.value)
      r
  in
  (r.Budget.Cascade.value, prov)

let pp_cost fmt q = Format.pp_print_string fmt (Q.to_string q)
let pp_provenance fmt p = Budget.Cascade.pp_provenance ~pp_cost fmt p
