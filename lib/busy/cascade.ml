(* Graceful degradation for the busy-time model. The ladder comes from
   the registry ({!Core.Registry.cascade_ladder}): every busy-interval
   solver carrying a [cascade_tier] — exact set-partition search, then
   GreedyTracking (3-approximation), then FirstFit (4-approximation) —
   each under a fresh fuel budget. The greedy tiers are polynomial and
   ignore their budgets, so the cascade always returns a packing. The
   provenance reports the gap to the best Section-4.1 lower bound (mass
   / span / demand profile), which bounds how far the degraded answer
   can be from optimal. *)

module Q = Rational
module B = Workload.Bjob

type provenance = Q.t Budget.Cascade.provenance

let tiers ~obs ~g jobs =
  Core.Registry.cascade_ladder Core.Instance.Busy_interval
  |> List.map (fun (label, (s : Core.Solver.t)) ->
         ( label,
           fun b ->
             match s.Core.Solver.solve ~budget:b ~obs (Core.Instance.Interval { g; jobs }) with
             | { Core.Result.status = Core.Result.Exhausted _; _ } -> raise Budget.Out_of_fuel
             | { Core.Result.status = Core.Result.Infeasible; _ } -> None
             | { Core.Result.witness = Some (Core.Result.Packing p); _ } -> Some p
             | _ -> invalid_arg ("Cascade.solve: tier " ^ label ^ " returned no packing") ))

let solve ?(obs = Obs.null) ?deadline ~limit ~g jobs =
  List.iter
    (fun (j : B.t) -> if not (B.is_interval j) then invalid_arg "Cascade.solve: flexible job")
    jobs;
  let r = Budget.Cascade.run ~obs ?deadline ~limit (tiers ~obs ~g jobs) in
  let prov =
    Budget.Cascade.provenance ~cost_label:"busy" ~bound_label:"lower-bound" ~sub:Q.sub
      ~bound:(Bounds.best ~g jobs)
      ~cost:(Option.map Bundle.total_busy r.Budget.Cascade.value)
      r
  in
  (r.Budget.Cascade.value, prov)

let pp_cost fmt q = Format.pp_print_string fmt (Q.to_string q)
let pp_provenance fmt p = Budget.Cascade.pp_provenance ~pp_cost fmt p
