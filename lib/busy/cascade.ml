(* Graceful degradation for the busy-time model: exact set-partition
   search, then GreedyTracking (3-approximation), then FirstFit
   (4-approximation), each under a fresh fuel budget. The greedy tiers
   are polynomial and ignore their budgets, so the cascade always returns
   a packing. The provenance reports the gap to the best Section-4.1
   lower bound (mass / span / demand profile), which bounds how far the
   degraded answer can be from optimal. *)

module Q = Rational
module B = Workload.Bjob

type provenance = {
  winner : string option;
  attempts : Budget.Cascade.attempt list;
  cost : Q.t option;  (* total busy time of the returned packing *)
  lower_bound : Q.t;  (* Bounds.best: max of mass, span, demand profile *)
}

let tiers ~g jobs =
  [
    ( "exact",
      fun b ->
        match Exact.budgeted ~budget:b ~g jobs with
        | Budget.Complete p -> Some p
        | Budget.Exhausted _ -> raise Budget.Out_of_fuel );
    ("greedy-tracking", fun _ -> Some (Greedy_tracking.solve ~g jobs));
    ("first-fit", fun _ -> Some (First_fit.solve ~g jobs));
  ]

let solve ~limit ~g jobs =
  List.iter
    (fun (j : B.t) -> if not (B.is_interval j) then invalid_arg "Cascade.solve: flexible job")
    jobs;
  let r = Budget.Cascade.run ~limit (tiers ~g jobs) in
  let prov =
    {
      winner = r.Budget.Cascade.winner;
      attempts = r.Budget.Cascade.attempts;
      cost = Option.map Bundle.total_busy r.Budget.Cascade.value;
      lower_bound = Bounds.best ~g jobs;
    }
  in
  (r.Budget.Cascade.value, prov)

let pp_provenance fmt p =
  List.iter (fun a -> Format.fprintf fmt "cascade: %a@." Budget.Cascade.pp_attempt a) p.attempts;
  let tier = Option.value p.winner ~default:"none" in
  match p.cost with
  | Some c ->
      Format.fprintf fmt "provenance: tier=%s busy=%s lower-bound=%s gap=%s@." tier (Q.to_string c)
        (Q.to_string p.lower_bound)
        (Q.to_string (Q.sub c p.lower_bound))
  | None -> Format.fprintf fmt "provenance: tier=%s no-answer@." tier
