(* Exact busy time for laminar instances (Khandekar et al. show the
   laminar case is polynomial; Section 1 of the paper).

   In a laminar family, two jobs overlap only if one contains the other,
   so a bundle's busy time is the total length of its inclusion-maximal
   members, and the capacity constraint says a bundle holds at most g
   jobs on any nesting chain. Writing each bundle as clusters (one
   maximal "top" job plus descendants that ride inside it for free), the
   problem becomes: pick tops minimizing their total length such that
   every non-top job can join a cluster of a strict ancestor with fewer
   than g members on the path.

   Clusters open along the current root path are interchangeable for
   feasibility, so only the TOTAL remaining join capacity R along the
   path matters, giving a linear-size DP per tree:

     f(v, R) = min( f_kids(R - 1)               if R >= 1 (join: free)
                  , len(v) + f_kids(R + g - 1)  (open own cluster) )

   with f_kids(R') the sum over children. The optimum is f(root, 0)
   summed over the forest. Correctness is property-tested against the
   exhaustive optimum on random laminar instances. *)

module Q = Rational
module B = Workload.Bjob
module I = Intervals.Interval

type node = { job : B.t; children : node list }

let is_laminar jobs =
  let arr = Array.of_list jobs in
  let ok = ref true in
  Array.iteri
    (fun i (ji : B.t) ->
      Array.iteri
        (fun k (jk : B.t) ->
          if i < k then begin
            let a = B.interval_of ji and b = B.interval_of jk in
            if I.overlaps a b && (not (I.subset a b)) && not (I.subset b a) then ok := false
          end)
        arr)
    arr;
  !ok

(* Laminar forest: sort by (lo asc, hi desc, id) and maintain the stack of
   currently-open ancestors. Equal intervals nest by sort order. *)
let build_forest jobs =
  let sorted =
    List.sort
      (fun (a : B.t) (b : B.t) ->
        let ia = B.interval_of a and ib = B.interval_of b in
        let c = Q.compare ia.I.lo ib.I.lo in
        if c <> 0 then c
        else
          let c = Q.compare ib.I.hi ia.I.hi in
          if c <> 0 then c else compare a.B.id b.B.id)
      jobs
  in
  (* children accumulated in reverse *)
  let roots = ref [] in
  let stack : (B.t * node list ref) list ref = ref [] in
  let close_until (iv : I.t) =
    let rec go () =
      match !stack with
      | (top, kids) :: rest when not (I.subset iv (B.interval_of top)) ->
          let node = { job = top; children = List.rev !kids } in
          stack := rest;
          (match !stack with
          | (_, parent_kids) :: _ -> parent_kids := node :: !parent_kids
          | [] -> roots := node :: !roots);
          go ()
      | _ -> ()
    in
    go ()
  in
  List.iter
    (fun (j : B.t) ->
      close_until (B.interval_of j);
      stack := (j, ref []) :: !stack)
    sorted;
  (* close everything: use an interval right of all jobs *)
  (match sorted with
  | [] -> ()
  | _ ->
      let far = List.fold_left (fun acc (j : B.t) -> Q.max acc j.B.deadline) Q.zero sorted in
      close_until (I.make (Q.add far Q.one) (Q.add far Q.two)));
  List.rev !roots

type choice = Join | Open

let exact ~g jobs =
  if g < 1 then invalid_arg "Laminar.exact: g < 1";
  List.iter
    (fun (j : B.t) -> if not (B.is_interval j) then invalid_arg "Laminar.exact: flexible job")
    jobs;
  if not (is_laminar jobs) then invalid_arg "Laminar.exact: instance is not laminar";
  Bundle.ensure_unique_ids "Laminar.exact" jobs;
  let forest = build_forest jobs in
  (* DP with memoized (node, R) -> (cost, choice), then a reconstruction
     pass. Clusters are identified by the id of their top job; when
     joining we draw from an open ancestor cluster with remaining
     capacity (which one is immaterial: only the path total matters, and
     total >= 1 iff some cluster has remaining >= 1). *)
  let bundles : (int, B.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let memo : (int * int, Q.t * choice) Hashtbl.t = Hashtbl.create 64 in
  let rec cost node r =
    match Hashtbl.find_opt memo (node.job.B.id, r) with
    | Some (c, _) -> c
    | None ->
        let kids_cost r' = List.fold_left (fun acc k -> Q.add acc (cost k r')) Q.zero node.children in
        let open_cost = Q.add node.job.B.length (kids_cost (r + g - 1)) in
        let best =
          if r >= 1 then begin
            let join_cost = kids_cost (r - 1) in
            if Q.compare join_cost open_cost <= 0 then (join_cost, Join) else (open_cost, Open)
          end
          else (open_cost, Open)
        in
        Hashtbl.replace memo (node.job.B.id, r) best;
        fst best
  in
  (* rebuild: open_clusters = (top id, remaining) list along the path *)
  let rec rebuild node r open_clusters =
    ignore (cost node r);
    let _, choice = Hashtbl.find memo (node.job.B.id, r) in
    match choice with
    | Open ->
        let bucket = ref [ node.job ] in
        Hashtbl.replace bundles node.job.B.id bucket;
        let clusters' = (node.job.B.id, g - 1) :: open_clusters in
        List.iter (fun c -> rebuild c (r + g - 1) clusters') node.children
    | Join ->
        (* take from the open cluster with the least positive remaining *)
        let usable = List.filter (fun (_, rem) -> rem > 0) open_clusters in
        let tid, _ =
          List.fold_left (fun (bt, br) (t, rem) -> if rem < br then (t, rem) else (bt, br))
            (List.hd usable) usable
        in
        let bucket = Hashtbl.find bundles tid in
        bucket := node.job :: !bucket;
        let clusters' =
          List.map (fun (t, rem) -> if t = tid then (t, rem - 1) else (t, rem)) open_clusters
        in
        List.iter (fun c -> rebuild c (r - 1) clusters') node.children
  in
  List.iter (fun root -> rebuild root 0 []) forest;
  Hashtbl.fold (fun _ bucket acc -> !bucket :: acc) bundles []

let optimum ~g jobs = Bundle.total_busy (exact ~g jobs)
