(* Kumar-Rudra's 2-approximation (paper Appendix A.1), reconstructed:

   0. Pad with dummy jobs so the raw demand over every interesting
      interval is a multiple of g (their analysis assumes this; dummies
      are dropped from the output).
   1. Phase 1: assign jobs to LEVELS by release order, each job to the
      lowest level where at most one already-assigned job overlaps it -
      so at most two jobs of a level are ever active together (the
      "limited infeasibility" of the paper).
   2. Phase 2: group g consecutive levels; open TWO fibers per group;
      split each level between them by a greedy 2-coloring in release
      order. A level's conflict graph has clique number at most 2 by
      construction, and greedy colouring in left-endpoint order uses
      exactly the clique number of colours on interval graphs, so two
      colours always suffice: each fiber holds at most one active job per
      level, i.e. at most g in total - a feasible packing.

   Cost: each group of g levels pays two fibers whose spans sit inside
   the demand profile's levels, giving <= 2 x profile <= 2 OPT
   (property-tested). This is the literal algorithm behind Theorem 3;
   {!Two_approx} is the Alicherry-Bhatia flow route to the same bound. *)

module Q = Rational
module B = Workload.Bjob
module I = Intervals.Interval
module D = Intervals.Demand

let is_dummy (j : B.t) = j.B.id < 0

(* dummy jobs topping every positive cell up to a multiple of g *)
let pad ~g jobs =
  let cells = D.cells (List.map B.interval_of jobs) in
  let fresh = ref 0 in
  List.concat_map
    (fun (c : D.cell) ->
      let missing = if c.D.raw = 0 then 0 else (g - (c.D.raw mod g)) mod g in
      List.init missing (fun _ ->
          decr fresh;
          B.interval ~id:!fresh ~start:c.D.cell.I.lo ~length:(I.length c.D.cell)))
    cells

(* peak number of [assigned] jobs overlapping [iv] *)
let peak_overlap assigned iv =
  let clipped = List.filter_map (fun (j : B.t) -> I.intersect (B.interval_of j) iv) assigned in
  D.max_raw clipped

let solve ~g jobs =
  if g < 1 then invalid_arg "Kumar_rudra.solve: g < 1";
  List.iter
    (fun (j : B.t) ->
      if not (B.is_interval j) then invalid_arg "Kumar_rudra.solve: flexible job (convert first)";
      if is_dummy j then invalid_arg "Kumar_rudra.solve: job ids must be non-negative")
    jobs;
  if jobs = [] then []
  else begin
    let padded =
      List.stable_sort (fun (a : B.t) (b : B.t) -> Q.compare a.B.release b.B.release)
        (jobs @ pad ~g jobs)
    in
    (* phase 1: levels as growable list of reversed job lists *)
    let levels : B.t list array ref = ref (Array.make 0 []) in
    let ensure n =
      if Array.length !levels < n then begin
        let bigger = Array.make n [] in
        Array.blit !levels 0 bigger 0 (Array.length !levels);
        levels := bigger
      end
    in
    List.iter
      (fun (j : B.t) ->
        let iv = B.interval_of j in
        let rec find l =
          ensure (l + 1);
          if peak_overlap !levels.(l) iv <= 1 then l else find (l + 1)
        in
        let l = find 0 in
        !levels.(l) <- j :: !levels.(l))
      padded;
    (* phase 2: per group of g levels, two fibers; greedy 2-coloring
       within each level *)
    let nlevels = Array.length !levels in
    let ngroups = (nlevels + g - 1) / g in
    let fibers = Array.make (2 * ngroups) [] in
    Array.iteri
      (fun l members ->
        let group = l / g in
        (* members are reversed release order; restore, then color each
           job with the smallest color unused by earlier overlapping
           members (two always suffice: clique number <= 2) *)
        let colored = ref [] in
        List.iter
          (fun (j : B.t) ->
            let iv = B.interval_of j in
            let used =
              List.filter_map
                (fun (k, c) -> if I.overlaps (B.interval_of k) iv then Some c else None)
                !colored
            in
            let color = if List.mem 0 used then 1 else 0 in
            assert (not (List.mem color used));
            colored := (j, color) :: !colored;
            fibers.((2 * group) + color) <- j :: fibers.((2 * group) + color))
          (List.rev members))
      !levels;
    Array.to_list fibers
    |> List.map (List.filter (fun j -> not (is_dummy j)))
    |> List.filter (fun b -> b <> [])
  end
