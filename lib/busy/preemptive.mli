(** Preemptive busy time (Section 4.4).

    Theorem 6 (exact, unbounded capacity): repeatedly open the rightmost
    [l_max] units of unopened time before the earliest remaining deadline
    and serve every live job maximally.

    Theorem 7 (2-approximation, capacity [g]): keep each job exactly where
    the unbounded solution ran it and split every interesting interval's
    active jobs onto [ceil(n/g)] machines; at most one machine per
    interval is non-full, so the cost is at most [OPT_inf + l(J)/g
    <= 2 OPT]. *)

type assignment = {
  job : Workload.Bjob.t;
  pieces : Intervals.Interval.t list;  (** disjoint, within the window *)
}

type solution = { opened : Intervals.Union.t; assignments : assignment list; cost : Rational.t }

(** Theorem 6's greedy; [cost] is the optimal preemptive busy time for
    unbounded capacity. *)
val unbounded : Workload.Bjob.t list -> solution

(** Validates a preemptive solution: every job fully served inside its
    window by disjoint pieces within the opened time. First violation or
    [None]. *)
val check : Workload.Bjob.t list -> solution -> string option

(** Independent exactness oracle: the unbounded preemptive optimum as an
    LP over the event grid (open [y_c <= |c|] inside each cell, serve
    [x_{j,c} <= y_c]). The tests check [unbounded] matches it.
    [engine] selects the simplex engine (default {!Lp.default_engine}). *)
val lp_optimum : ?engine:Lp.engine -> Workload.Bjob.t list -> Rational.t

(** The event-grid LP behind {!lp_optimum}, as a bare model (objective
    [min sum y_c]); exposed so the engine bench (experiment E21) can
    solve one model under both engines and read the pivot/tableau
    telemetry. *)
val lp_model : Workload.Bjob.t list -> Lp.model

(** Theorem 7: (total cost, the underlying unbounded solution, per-cell
    detail [(cell, active jobs, machines)]). Raises [Invalid_argument]
    when [g < 1]. *)
val bounded :
  g:int ->
  Workload.Bjob.t list ->
  Rational.t * solution * (Intervals.Interval.t * Workload.Bjob.t list * int) list
