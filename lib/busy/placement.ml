(* Span-minimizing placement of flexible jobs with unbounded capacity -
   the role Khandekar et al.'s dynamic program (paper Theorem 4) plays in
   the flexible-job pipeline. Its output converts flexible jobs to
   interval jobs whose span is OPT_infinity, the lower bound used by
   Theorems 5/10.

   Substitution (DESIGN.md item 2): the FSTTCS'10 DP is only sketched in
   this paper, so we provide

   - [exact]: branch-and-bound over integer start times (valid for
     integer-data instances: a sliding argument moves any optimal
     placement to integer starts without increasing the union measure),
     pruned by the partial union measure against an incumbent. Exponential
     worst case; intended for small n / small windows (tests, gadgets).

   - [greedy]: place jobs in non-increasing length order at the start
     minimizing the marginal union growth (candidates: window ends and
     positions snapped against already-placed intervals), then local-search
     re-placement passes until a fixed point. Near-optimal empirically;
     the tests measure its gap against [exact] on random instances.

   Both return interval jobs (same ids, pinned starts). *)

module Q = Rational
module B = Workload.Bjob
module I = Intervals.Interval
module U = Intervals.Union

let is_integer_job (j : B.t) = Q.is_integer j.B.release && Q.is_integer j.B.deadline && Q.is_integer j.B.length

let span_of placed = Intervals.span (List.map B.interval_of placed)

(* candidate starts for [j] given a union of already-placed intervals:
   window ends, plus starts that butt j against an existing component
   boundary (end of a component, or start of a component minus length) *)
let candidate_starts (j : B.t) union =
  let lo = j.B.release and hi = B.latest_start j in
  let clamp s = if Q.compare s lo < 0 then None else if Q.compare s hi > 0 then None else Some s in
  let anchors =
    List.concat_map
      (fun (c : I.t) -> [ c.I.lo; c.I.hi; Q.sub c.I.lo j.B.length; Q.sub c.I.hi j.B.length ])
      (U.components union)
  in
  List.sort_uniq Q.compare (lo :: hi :: List.filter_map clamp anchors)

let place_best union (j : B.t) =
  let best = ref None in
  List.iter
    (fun s ->
      let iv = I.make s (Q.add s j.B.length) in
      let cost = U.marginal union iv in
      match !best with
      | Some (_, c) when Q.compare c cost <= 0 -> ()
      | _ -> best := Some (s, cost))
    (candidate_starts j union);
  match !best with Some (s, _) -> B.place j s | None -> assert false

let greedy ?(passes = 3) jobs =
  let sorted = List.stable_sort (fun (a : B.t) (b : B.t) -> Q.compare b.B.length a.B.length) jobs in
  let initial =
    List.fold_left
      (fun (placed, union) j ->
        let p = place_best union j in
        (p :: placed, U.add union (B.interval_of p)))
      ([], U.empty) sorted
    |> fst
  in
  (* local search: re-place each job given all the others *)
  let improve placed =
    List.fold_left
      (fun placed (j : B.t) ->
        let others = List.filter (fun (k : B.t) -> k.B.id <> j.B.id) placed in
        let union = U.of_list (List.map B.interval_of others) in
        let original = List.find (fun (o : B.t) -> o.B.id = j.B.id) jobs in
        place_best union original :: others)
      placed jobs
  in
  let rec loop placed k =
    if k = 0 then placed
    else begin
      let placed' = improve placed in
      if Q.compare (span_of placed') (span_of placed) < 0 then loop placed' (k - 1) else placed
    end
  in
  List.sort (fun (a : B.t) (b : B.t) -> compare a.B.id b.B.id) (loop initial passes)

(* Exact minimum-span placement for integer-data instances. *)
let exact jobs =
  List.iter
    (fun j ->
      if not (is_integer_job j) then invalid_arg "Placement.exact: non-integer job data")
    jobs;
  let incumbent = ref (greedy jobs) in
  let best = ref (span_of !incumbent) in
  (* order jobs by window start for a left-to-right search *)
  let sorted = List.sort (fun (a : B.t) (b : B.t) -> Q.compare a.B.release b.B.release) jobs in
  let rec dfs placed union = function
    | [] ->
        let s = U.measure union in
        if Q.compare s !best < 0 then begin
          best := s;
          incumbent := List.rev placed
        end
    | (j : B.t) :: rest ->
        if Q.compare (U.measure union) !best < 0 then begin
          let lo = Q.floor_int j.B.release and hi = Q.floor_int (B.latest_start j) in
          (* try starts in an order that looks at snapped positions first *)
          let starts = List.init (hi - lo + 1) (fun i -> Q.of_int (lo + i)) in
          let scored =
            List.map
              (fun s ->
                let iv = I.make s (Q.add s j.B.length) in
                (U.marginal union iv, s))
              starts
          in
          let ordered = List.sort (fun (a, _) (b, _) -> Q.compare a b) scored in
          List.iter
            (fun (_, s) ->
              let p = B.place j s in
              dfs (p :: placed) (U.add union (B.interval_of p)) rest)
            ordered
        end
  in
  dfs [] U.empty sorted;
  List.sort (fun (a : B.t) (b : B.t) -> compare a.B.id b.B.id) !incumbent

(* Convenience: minimal span value. *)
let optimum_span jobs = span_of (exact jobs)
