let solve ?obs ~g jobs =
  if Laminar.is_laminar jobs then ("laminar (exact DP)", Laminar.exact ~g jobs)
  else if Special.is_proper jobs && Special.is_clique jobs then
    ("proper clique (exact DP)", Special.proper_clique_exact ~g jobs)
  else if Special.is_proper jobs then ("proper (2-approx greedy)", Special.proper_greedy ~g jobs)
  else if Special.is_clique jobs then ("clique (2-approx greedy)", Special.clique_greedy ~g jobs)
  else ("general (flow 2-approx)", Two_approx.solve ?obs ~g jobs)
