(* Busy time with job widths/demands (Khandekar et al., discussed in
   Section 1: each job has a width w <= g and the active widths on a
   machine may sum to at most g at any time).

   Provided:
   - width-aware packing validation and lower bounds (mass becomes
     sum(w_j p_j)/g; the demand profile weighs raw demand by width);
   - FIRSTFIT by length over width-aware capacity;
   - the narrow/wide split of Khandekar et al.: wide jobs (w > g/2) are
     FirstFit-packed among themselves (at most one wide job runs at a
     time on a machine - the regime their 5-approximation analyses), and
     narrow jobs are FirstFit-packed separately;
   - an exact branch-and-bound for small instances. *)

module Q = Rational
module B = Workload.Bjob
module I = Intervals.Interval

type wjob = { job : B.t; width : int }

let wjob ~job ~width =
  if width < 1 then invalid_arg "Widths.wjob: width < 1";
  if not (B.is_interval job) then invalid_arg "Widths.wjob: flexible job";
  { job; width }

(* peak total width of a bundle within an interval (None = everywhere) *)
let peak_width ?within bundle =
  let clipped =
    List.filter_map
      (fun w ->
        let iv = B.interval_of w.job in
        match within with
        | None -> Some (iv, w.width)
        | Some window -> Option.map (fun i -> (i, w.width)) (I.intersect iv window))
      bundle
  in
  let cells = Intervals.Demand.cells (List.map fst clipped) in
  List.fold_left
    (fun acc (c : Intervals.Demand.cell) ->
      let total =
        List.fold_left
          (fun t (iv, w) -> if I.overlaps iv c.Intervals.Demand.cell then t + w else t)
          0 clipped
      in
      max acc total)
    0 cells

let fits ~g bundle w =
  w.width <= g && peak_width ~within:(B.interval_of w.job) bundle + w.width <= g

let busy_time bundle = Intervals.span (List.map (fun w -> B.interval_of w.job) bundle)
let total_busy packing = List.fold_left (fun acc b -> Q.add acc (busy_time b)) Q.zero packing

let check ~g jobs packing =
  let problem = ref None in
  let fail msg = if !problem = None then problem := Some msg in
  let ids l = List.sort compare (List.map (fun w -> w.job.B.id) l) in
  if ids jobs <> ids (List.concat packing) then fail "packing is not a partition";
  List.iteri
    (fun i bundle ->
      if bundle = [] then fail (Printf.sprintf "bundle %d empty" i)
      else if peak_width bundle > g then fail (Printf.sprintf "bundle %d exceeds width capacity" i))
    packing;
  List.iter (fun w -> if w.width > g then fail (Printf.sprintf "job %d wider than g" w.job.B.id)) jobs;
  !problem

(* mass bound: sum of width * length / g *)
let mass ~g jobs =
  if g < 1 then invalid_arg "Widths.mass: g < 1";
  Q.div
    (List.fold_left (fun acc w -> Q.add acc (Q.mul (Q.of_int w.width) w.job.B.length)) Q.zero jobs)
    (Q.of_int g)

let span jobs = Intervals.span (List.map (fun w -> B.interval_of w.job) jobs)

(* width-weighted demand profile: sum over cells of ceil(width demand / g) *)
let demand_profile ~g jobs =
  if g < 1 then invalid_arg "Widths.demand_profile: g < 1";
  let items = List.map (fun w -> (B.interval_of w.job, w.width)) jobs in
  let cells = Intervals.Demand.cells (List.map fst items) in
  List.fold_left
    (fun acc (c : Intervals.Demand.cell) ->
      let total =
        List.fold_left (fun t (iv, w) -> if I.overlaps iv c.Intervals.Demand.cell then t + w else t) 0 items
      in
      let levels = (total + g - 1) / g in
      Q.add acc (Q.mul (Q.of_int levels) (I.length c.Intervals.Demand.cell)))
    Q.zero cells

let best_bound ~g jobs = Q.max (mass ~g jobs) (Q.max (span jobs) (demand_profile ~g jobs))

let first_fit ~g jobs =
  if g < 1 then invalid_arg "Widths.first_fit: g < 1";
  List.iter (fun w -> if w.width > g then invalid_arg "Widths.first_fit: job wider than g") jobs;
  let sorted = List.stable_sort (fun a b -> Q.compare b.job.B.length a.job.B.length) jobs in
  let bundles = ref [] in
  List.iter
    (fun w ->
      let rec place = function
        | [] -> [ [ w ] ]
        | bundle :: rest -> if fits ~g bundle w then (w :: bundle) :: rest else bundle :: place rest
      in
      bundles := place !bundles)
    sorted;
  !bundles

(* Khandekar et al.'s narrow/wide split: wide jobs (width > g/2) never
   share a time point on a machine, so they are packed among themselves;
   narrow jobs are FirstFit-packed separately. *)
let is_wide ~g w = 2 * w.width > g

let narrow_wide_split ~g jobs =
  if g < 1 then invalid_arg "Widths.narrow_wide_split: g < 1";
  let wide, narrow = List.partition (is_wide ~g) jobs in
  first_fit ~g wide @ first_fit ~g narrow

(* Exact optimum for small instances (insertion branch-and-bound). *)
let exact ~g jobs =
  if g < 1 then invalid_arg "Widths.exact: g < 1";
  if List.length jobs > 12 then invalid_arg "Widths.exact: too many jobs";
  let sorted = List.sort (fun a b -> Q.compare a.job.B.release b.job.B.release) jobs in
  let seed = first_fit ~g jobs in
  let best = ref (total_busy seed) in
  let best_packing = ref seed in
  let rec dfs bundles cost = function
    | [] ->
        if Q.compare cost !best < 0 then begin
          best := cost;
          best_packing := bundles
        end
    | w :: rest ->
        List.iteri
          (fun i bundle ->
            if fits ~g bundle w then begin
              let grown = w :: bundle in
              let delta = Q.sub (busy_time grown) (busy_time bundle) in
              let cost' = Q.add cost delta in
              if Q.compare cost' !best < 0 then
                dfs (List.mapi (fun k b -> if k = i then grown else b) bundles) cost' rest
            end)
          bundles;
        let cost' = Q.add cost w.job.B.length in
        if Q.compare cost' !best < 0 then dfs ([ w ] :: bundles) cost' rest
  in
  dfs [] Q.zero sorted;
  !best_packing
