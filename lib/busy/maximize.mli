(** The dual resource-allocation maximization (Mertzios et al., Section
    1.3): schedule as many interval jobs as possible subject to a total
    busy-time budget and capacity [g]. NP-hard whenever the minimization
    is; exact subset search for small [n], budget-greedy heuristic beyond
    (experiment E13 compares them). Results are
    [(accepted jobs, their busy time, their packing)]. *)

(** Raises [Invalid_argument] beyond 12 jobs or [g < 1]. Maximizes the
    job count, ties broken toward smaller busy time. *)
val exact :
  g:int -> budget:Rational.t -> Workload.Bjob.t list ->
  Workload.Bjob.t list * Rational.t * Bundle.packing

(** Fuel-metered subset search: [budget] stays the problem's busy-time
    allowance while [fuel] (default: unlimited) bounds the enumeration,
    one tick per subset mask — the fuel parameter is named [?fuel], not
    [?budget], precisely because [budget] already means the busy-time
    allowance here. The exhausted incumbent is the best accepted subset
    among the masks enumerated so far (possibly empty). Raises
    [Invalid_argument] beyond 30 jobs (mask overflow) or [g < 1].

    With [?obs], runs inside a [busy.maximize] span and records
    [busy.maximize.masks] (subsets enumerated, exhausted path
    included). *)
val solve :
  ?fuel:Budget.t -> ?obs:Obs.t -> g:int -> budget:Rational.t -> Workload.Bjob.t list ->
  (Workload.Bjob.t list * Rational.t * Bundle.packing) Budget.outcome

(** Cheapest-first greedy acceptance. *)
val greedy :
  g:int -> budget:Rational.t -> Workload.Bjob.t list ->
  Workload.Bjob.t list * Rational.t * Bundle.packing
