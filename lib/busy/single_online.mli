(** Online busy-time maximization on a single machine without parallelism
    (Faigle–Garbe–Kern, Section 1.3): interval jobs arrive by release
    time; at most one runs at a time; an arrival may abort the running
    job (losing it); credit is the total length of completed jobs. *)

(** Abort iff the arriving job finishes later. Returns (total completed
    length, completed jobs). Raises [Invalid_argument] on flexible
    jobs. *)
val greedy_switch : Workload.Bjob.t list -> Rational.t * Workload.Bjob.t list

(** Never abort. *)
val stubborn : Workload.Bjob.t list -> Rational.t * Workload.Bjob.t list

(** The offline optimum: a maximum-total-length set of pairwise disjoint
    jobs (weighted interval scheduling). *)
val offline_optimum : Workload.Bjob.t list -> Rational.t * Workload.Bjob.t list
