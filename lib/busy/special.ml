(* Special-case busy-time algorithms (paper footnote 1 and Section 1.3).

   - Proper instances (no job's interval strictly contains another's):
     Flammini et al. show the greedy that scans jobs by release time and
     first-fits them is 2-approximate.
   - Clique instances (all intervals share a common time point): grouping
     g consecutive jobs in release order is 2-approximate.
   - Proper cliques: a simple dynamic program is exact (Mertzios et al.).
     In a proper instance sorted by release time, deadlines are sorted
     too, so a bundle of consecutive jobs spans d_last - r_first; an
     exchange argument shows some optimal solution partitions the sorted
     order into consecutive runs of at most g jobs, which the DP searches
     in O(n g). *)

module Q = Rational
module B = Workload.Bjob
module I = Intervals.Interval

let sorted_by_release jobs =
  List.sort
    (fun (a : B.t) (b : B.t) ->
      let c = Q.compare a.B.release b.B.release in
      if c <> 0 then c else Q.compare a.B.deadline b.B.deadline)
    jobs

(* No interval strictly contains another. *)
let is_proper jobs =
  let arr = Array.of_list (sorted_by_release jobs) in
  let ok = ref true in
  Array.iteri
    (fun i (ji : B.t) ->
      Array.iteri
        (fun k (jk : B.t) ->
          if i <> k && Q.compare ji.B.release jk.B.release < 0 && Q.compare jk.B.deadline ji.B.deadline < 0
          then ok := false)
        arr)
    arr;
  !ok

(* All intervals share a common point. *)
let is_clique jobs =
  match jobs with
  | [] -> true
  | _ ->
      let max_r = List.fold_left (fun acc (j : B.t) -> Q.max acc j.B.release) (List.hd jobs).B.release jobs in
      let min_d = List.fold_left (fun acc (j : B.t) -> Q.min acc j.B.deadline) (List.hd jobs).B.deadline jobs in
      Q.compare max_r min_d < 0

let check_interval name jobs =
  List.iter
    (fun (j : B.t) ->
      if not (B.is_interval j) then invalid_arg (name ^ ": flexible job (convert first)"))
    jobs

(* Proper instances: first-fit in release order (2-approximate). *)
let proper_greedy ~g jobs =
  if g < 1 then invalid_arg "Special.proper_greedy: g < 1";
  check_interval "Special.proper_greedy" jobs;
  if not (is_proper jobs) then invalid_arg "Special.proper_greedy: instance is not proper";
  let bundles = ref [] in
  List.iter
    (fun job ->
      let rec place = function
        | [] -> [ [ job ] ]
        | bundle :: rest -> if Bundle.fits ~g bundle job then (job :: bundle) :: rest else bundle :: place rest
      in
      bundles := place !bundles)
    (sorted_by_release jobs);
  !bundles

(* Clique instances: g consecutive jobs per machine, in release order
   (2-approximate). *)
let clique_greedy ~g jobs =
  if g < 1 then invalid_arg "Special.clique_greedy: g < 1";
  check_interval "Special.clique_greedy" jobs;
  if not (is_clique jobs) then invalid_arg "Special.clique_greedy: instance is not a clique";
  let rec chunk acc current count = function
    | [] -> List.rev (if current = [] then acc else current :: acc)
    | j :: rest ->
        if count = g then chunk (current :: acc) [ j ] 1 rest else chunk acc (j :: current) (count + 1) rest
  in
  chunk [] [] 0 (sorted_by_release jobs)

(* Proper cliques: exact DP over consecutive runs in the sorted order. *)
let proper_clique_exact ~g jobs =
  if g < 1 then invalid_arg "Special.proper_clique_exact: g < 1";
  check_interval "Special.proper_clique_exact" jobs;
  if not (is_proper jobs && is_clique jobs) then
    invalid_arg "Special.proper_clique_exact: instance is not a proper clique";
  match sorted_by_release jobs with
  | [] -> []
  | sorted ->
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      (* span of consecutive run [i, k]: all jobs share a point, so the
         union is one interval d_k - r_i (deadlines sorted with releases) *)
      let run_span i k = Q.sub arr.(k).B.deadline arr.(i).B.release in
      let dp = Array.make (n + 1) None in
      let choice = Array.make (n + 1) 0 in
      dp.(0) <- Some Q.zero;
      for i = 1 to n do
        for size = 1 to min g i do
          match dp.(i - size) with
          | None -> ()
          | Some prev -> (
              let candidate = Q.add prev (run_span (i - size) (i - 1)) in
              match dp.(i) with
              | Some best when Q.compare best candidate <= 0 -> ()
              | _ ->
                  dp.(i) <- Some candidate;
                  choice.(i) <- size)
        done
      done;
      let rec rebuild i acc =
        if i = 0 then acc
        else begin
          let size = choice.(i) in
          let bundle = Array.to_list (Array.sub arr (i - size) size) in
          rebuild (i - size) (bundle :: acc)
        end
      in
      rebuild n []
