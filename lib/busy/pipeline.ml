(* End-to-end busy-time scheduling of flexible jobs (Section 4.3):
   1. pin every job via a span-minimizing placement with g = infinity
      ({!Placement}: exact for small integer instances, greedy otherwise),
      whose span is the OPT_infinity lower bound;
   2. run an interval-job algorithm on the pinned instance.

   With GreedyTracking this is the paper's 3-approximation (Theorem 5 +
   the conversion); with the 2-approximation it is 4-approximate and tight
   (Theorem 10, Figs. 10-12); with FirstFit it is the prior
   4-approximation of Khandekar et al. *)

module B = Workload.Bjob

type interval_algorithm = First_fit | Greedy_tracking | Two_approx

type placement_mode = Exact_placement | Greedy_placement | Pinned of B.t list

let place mode jobs =
  match mode with
  | Exact_placement -> Placement.exact jobs
  | Greedy_placement -> Placement.greedy jobs
  | Pinned placed ->
      (* adversarial or precomputed placements (gadget benches): validate
         that it pins exactly this job set *)
      let ids l = List.sort compare (List.map (fun (j : B.t) -> j.B.id) l) in
      if ids placed <> ids jobs then invalid_arg "Pipeline.place: pinned placement does not match jobs";
      if not (List.for_all B.is_interval placed) then invalid_arg "Pipeline.place: pinned jobs must be interval";
      placed

let run ?(obs = Obs.null) ~g ~placement ~algorithm jobs =
  let pinned = place placement jobs in
  let packing =
    match algorithm with
    | First_fit -> First_fit.solve ~obs ~g pinned
    | Greedy_tracking -> Greedy_tracking.solve ~obs ~g pinned
    | Two_approx -> Two_approx.solve ~obs ~g pinned
  in
  (pinned, packing)
