(* Exact optimal bundling of interval jobs (small n): branch-and-bound over
   set partitions. Jobs are inserted one at a time (sorted by release) into
   an existing bundle (if capacity allows) or a fresh bundle; the partial
   cost (sum of bundle spans so far) prunes against the incumbent, seeded
   by the better of FirstFit and GreedyTracking.

   Search kernel:

   - The bundle vector is mutated IN PLACE with O(1) undo on backtrack
     (each bundle keeps its member list and its interval union; the saved
     immutable union is the undo record), instead of rebuilding the whole
     list-of-lists per insertion. Insertion deltas come from
     [Intervals.Union.marginal] on the bundle's cached union.

   - Symmetry breaking: for the job being placed (release r, all later
     jobs release >= r), two bundles are interchangeable iff the multisets
     of their member intervals clipped to [r, horizon) are equal — future
     fits and span marginals depend only on the clipped contents. Only the
     first bundle of each equivalence class is tried; in particular a
     fresh bundle is opened only when no existing bundle is "dead" (clips
     to nothing), since inserting into a dead bundle is equivalent.

   - Suffix lower bound: with U the union of current bundle regions and R
     the (precomputed) union of remaining job intervals, any completion
     pays at least measure(R \ U) on top of the current cost — the region
     R \ U must be covered, and covering it from any bundle grows that
     bundle's span by at least the part it covers.

   - Opt-in deterministic parallel root split ([~parallel:true], only
     without a budget): the first few levels are expanded into a frontier
     of partial packings, each searched on its own domain via
     {!Parallel.Pool.map} with a shared atomic incumbent
     ({!Parallel.Pool.min_cell}) for pruning. The winner is selected
     after the join (minimum cost, lowest frontier index on ties), so the
     optimum COST is deterministic; the representative packing and the
     node counter may vary run to run (pruning depends on publication
     timing).

   Used by the tests and benches to measure true approximation ratios; the
   busy time problem is NP-hard for interval jobs even at g = 2 [14], so
   this is inherently exponential. With a budget the search is metered
   (one tick per node, leaves included) and has no job cap: the fuel, not
   the instance size, bounds the work, and the incumbent returned on
   exhaustion is at worst the FirstFit/GreedyTracking seed. Without a
   budget a 14-job cap guards against accidental unbounded searches. *)

module Q = Rational
module B = Workload.Bjob
module I = Intervals.Interval
module U = Intervals.Union

(* Mutable search state; [members]/[unions] are the in-place bundle
   vector (first [nb] entries live), [covered] the union of all bundle
   regions for the suffix bound. *)
type state = {
  jobs : B.t array; (* sorted by release *)
  ivs : I.t array;
  g : int;
  n : int;
  suffix : U.t array; (* suffix.(i) = union of intervals i..n-1 *)
  horizon : Q.t; (* max interval endpoint, for clipping *)
  mutable nb : int;
  members : B.t list array;
  unions : U.t array;
  mutable covered : U.t;
}

let make_state ~g (sorted : B.t list) =
  let jobs = Array.of_list sorted in
  let n = Array.length jobs in
  let ivs = Array.map B.interval_of jobs in
  let horizon = Array.fold_left (fun acc (iv : I.t) -> Q.max acc iv.I.hi) Q.zero ivs in
  let suffix = Array.make (n + 1) U.empty in
  for i = n - 1 downto 0 do
    suffix.(i) <- U.add suffix.(i + 1) ivs.(i)
  done;
  {
    jobs;
    ivs;
    g;
    n;
    suffix;
    horizon;
    nb = 0;
    members = Array.make (Stdlib.max n 1) [];
    unions = Array.make (Stdlib.max n 1) U.empty;
    covered = U.empty;
  }

let current_packing st = Array.to_list (Array.sub st.members 0 st.nb)

(* measure(suffix.(idx) \ covered): busy time any completion must still pay *)
let uncovered st idx =
  List.fold_left
    (fun acc comp ->
      List.fold_left (fun acc gap -> Q.add acc (I.length gap)) acc (U.gaps st.covered comp))
    Q.zero
    (U.components st.suffix.(idx))

(* Member intervals clipped to [r, horizon), sorted: the canonical
   signature under which bundles are interchangeable for all jobs with
   release >= r (equal signatures => equal clipped unions and clipped
   demands => equal future marginals and fits). *)
let clip_sig st i r =
  if Q.compare r st.horizon >= 0 then []
  else begin
    let win = I.make r st.horizon in
    List.sort I.compare
      (List.filter_map (fun (b : B.t) -> I.intersect (B.interval_of b) win) st.members.(i))
  end

let sig_equal = List.equal I.equal

(* In-place DFS. [get_best]/[record] abstract the incumbent so the same
   kernel runs sequentially (plain ref) and under a shared atomic cell. *)
let rec dfs st ~budget ~nodes ~get_best ~record idx cost =
  Budget.tick budget;
  incr nodes;
  if idx = st.n then begin
    if Q.compare cost (get_best ()) < 0 then record cost (current_packing st)
  end
  else if Q.compare (Q.add cost (uncovered st idx)) (get_best ()) < 0 then begin
    let j = st.jobs.(idx) and iv = st.ivs.(idx) in
    let r = iv.I.lo in
    let seen = ref [] in
    let dead_exists = ref false in
    for i = 0 to st.nb - 1 do
      let sg = clip_sig st i r in
      let dup = List.exists (sig_equal sg) !seen in
      seen := sg :: !seen;
      if sg = [] then dead_exists := true;
      if (not dup) && Bundle.fits ~g:st.g st.members.(i) j then begin
        let cost' = Q.add cost (U.marginal st.unions.(i) iv) in
        if Q.compare cost' (get_best ()) < 0 then begin
          let saved_m = st.members.(i) and saved_u = st.unions.(i) and saved_c = st.covered in
          st.members.(i) <- j :: saved_m;
          st.unions.(i) <- U.add saved_u iv;
          st.covered <- U.add saved_c iv;
          dfs st ~budget ~nodes ~get_best ~record (idx + 1) cost';
          st.members.(i) <- saved_m;
          st.unions.(i) <- saved_u;
          st.covered <- saved_c
        end
      end
    done;
    (* fresh bundle, unless a dead bundle makes it symmetric *)
    if not !dead_exists then begin
      let cost' = Q.add cost j.B.length in
      if Q.compare cost' (get_best ()) < 0 then begin
        let i = st.nb and saved_c = st.covered in
        st.members.(i) <- [ j ];
        st.unions.(i) <- U.add U.empty iv;
        st.covered <- U.add saved_c iv;
        st.nb <- st.nb + 1;
        dfs st ~budget ~nodes ~get_best ~record (idx + 1) cost';
        st.nb <- st.nb - 1;
        st.members.(i) <- [];
        st.unions.(i) <- U.empty;
        st.covered <- saved_c
      end
    end
  end

(* Frontier of partial packings after the first [depth] jobs, expanded
   with the same branching rules (fits + symmetry) but no pruning; each
   entry is (bundles, cost). Deterministic: pure left-to-right order. *)
let expand_frontier ~g sorted depth =
  let st = make_state ~g sorted in
  let acc = ref [] in
  let rec go idx cost =
    if idx = depth then acc := (current_packing st, cost) :: !acc
    else begin
      let j = st.jobs.(idx) and iv = st.ivs.(idx) in
      let r = iv.I.lo in
      let seen = ref [] in
      let dead_exists = ref false in
      for i = 0 to st.nb - 1 do
        let sg = clip_sig st i r in
        let dup = List.exists (sig_equal sg) !seen in
        seen := sg :: !seen;
        if sg = [] then dead_exists := true;
        if (not dup) && Bundle.fits ~g:st.g st.members.(i) j then begin
          let cost' = Q.add cost (U.marginal st.unions.(i) iv) in
          let saved_m = st.members.(i) and saved_u = st.unions.(i) and saved_c = st.covered in
          st.members.(i) <- j :: saved_m;
          st.unions.(i) <- U.add saved_u iv;
          st.covered <- U.add saved_c iv;
          go (idx + 1) cost';
          st.members.(i) <- saved_m;
          st.unions.(i) <- saved_u;
          st.covered <- saved_c
        end
      done;
      if not !dead_exists then begin
        let i = st.nb and saved_c = st.covered in
        st.members.(i) <- [ j ];
        st.unions.(i) <- U.add U.empty iv;
        st.covered <- U.add saved_c iv;
        st.nb <- st.nb + 1;
        go (idx + 1) (Q.add cost j.B.length);
        st.nb <- st.nb - 1;
        st.members.(i) <- [];
        st.unions.(i) <- U.empty;
        st.covered <- saved_c
      end
    end
  in
  go 0 Q.zero;
  List.rev !acc

(* Rebuild an in-place state from a frontier packing. *)
let state_of_packing ~g sorted (packing : Bundle.packing) =
  let st = make_state ~g sorted in
  List.iter
    (fun bundle ->
      let i = st.nb in
      let u = List.fold_left (fun u (b : B.t) -> U.add u (B.interval_of b)) U.empty bundle in
      st.members.(i) <- bundle;
      st.unions.(i) <- u;
      st.covered <- U.union st.covered u;
      st.nb <- st.nb + 1)
    packing;
  st

let solve ?budget ?(parallel = false) ?(obs = Obs.null) ~g jobs =
  if g < 1 then invalid_arg "Exact.solve: g < 1";
  if parallel && budget <> None then
    invalid_arg "Exact.solve: the parallel split is for the unbudgeted path";
  (match budget with
  | None when List.length jobs > 14 ->
      invalid_arg "Exact.solve: too many jobs for exhaustive search"
  | _ -> ());
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  List.iter
    (fun (j : B.t) -> if not (B.is_interval j) then invalid_arg "Exact.solve: flexible job")
    jobs;
  Obs.span obs "busy.exact" @@ fun () ->
  (* sort by release: inserting left to right keeps partial spans stable
     and makes the clipped-signature symmetry argument sound *)
  let sorted = List.sort (fun (a : B.t) (b : B.t) -> Q.compare a.B.release b.B.release) jobs in
  let seed =
    let a = First_fit.solve ~obs ~g jobs and b = Greedy_tracking.solve ~obs ~g jobs in
    if Q.compare (Bundle.total_busy a) (Bundle.total_busy b) <= 0 then a else b
  in
  let seed_cost = Bundle.total_busy seed in
  if not parallel then begin
    let best = ref seed_cost in
    let best_packing = ref seed in
    let nodes = ref 0 in
    let get_best () = !best in
    let record c p =
      best := c;
      best_packing := p
    in
    let st = make_state ~g sorted in
    let finish () = Obs.add obs "busy.exact.nodes" !nodes in
    try
      dfs st ~budget ~nodes ~get_best ~record 0 Q.zero;
      finish ();
      Budget.Complete !best_packing
    with Budget.Out_of_fuel ->
      finish ();
      Budget.Exhausted { spent = Budget.spent budget; incumbent = !best_packing }
  end
  else begin
    let n = List.length sorted in
    let frontier = expand_frontier ~g sorted (Stdlib.min n 4) in
    let cell = Parallel.Pool.min_cell ~compare:Q.compare seed_cost in
    let results =
      Parallel.Pool.map
        (fun (packing0, cost0) ->
          let st = state_of_packing ~g sorted packing0 in
          let local = ref None in
          let nodes = ref 0 in
          let get_best () = Parallel.Pool.min_get cell in
          let record c p =
            local := Some (c, p);
            ignore (Parallel.Pool.min_improve cell c)
          in
          dfs st ~budget:(Budget.unlimited ()) ~nodes ~get_best ~record (Stdlib.min n 4) cost0;
          (!local, !nodes))
        frontier
    in
    (* deterministic winner: strict improvements only, lowest index wins
       ties, so the returned COST is always the optimum *)
    let best = ref seed_cost and best_packing = ref seed and nodes = ref 0 in
    List.iter
      (fun (local, nd) ->
        nodes := !nodes + nd;
        match local with
        | Some (c, p) when Q.compare c !best < 0 ->
            best := c;
            best_packing := p
        | _ -> ())
      results;
    Obs.add obs "busy.exact.nodes" !nodes;
    Budget.Complete !best_packing
  end


let exact ?parallel ~g jobs =
  match solve ?parallel ~g jobs with
  | Budget.Complete p -> p
  | Budget.Exhausted _ -> assert false (* unlimited fuel never exhausts *)

let optimum ?parallel ~g jobs = Bundle.total_busy (exact ?parallel ~g jobs)
