(* Exact optimal bundling of interval jobs (small n): branch-and-bound over
   set partitions. Jobs are inserted one at a time into an existing bundle
   (if capacity allows) or a fresh bundle; the partial cost (sum of bundle
   spans so far) prunes against the incumbent, seeded by the better of
   FirstFit and GreedyTracking.

   Used by the tests and benches to measure true approximation ratios; the
   busy time problem is NP-hard for interval jobs even at g = 2 [14], so
   this is inherently exponential. With a budget the search is metered
   (one tick per node) and has no job cap: the fuel, not the instance
   size, bounds the work, and the incumbent returned on exhaustion is at
   worst the FirstFit/GreedyTracking seed. Without a budget a 14-job cap
   guards against accidental unbounded searches. *)

module Q = Rational
module B = Workload.Bjob

let solve ?budget ?(obs = Obs.null) ~g jobs =
  if g < 1 then invalid_arg "Exact.solve: g < 1";
  (match budget with
  | None when List.length jobs > 14 ->
      invalid_arg "Exact.solve: too many jobs for exhaustive search"
  | _ -> ());
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  List.iter
    (fun (j : B.t) -> if not (B.is_interval j) then invalid_arg "Exact.solve: flexible job")
    jobs;
  Obs.span obs "busy.exact" @@ fun () ->
  (* sort by release: inserting left to right keeps partial spans stable *)
  let sorted = List.sort (fun (a : B.t) (b : B.t) -> Q.compare a.B.release b.B.release) jobs in
  let seed =
    let a = First_fit.solve ~obs ~g jobs and b = Greedy_tracking.solve ~obs ~g jobs in
    if Q.compare (Bundle.total_busy a) (Bundle.total_busy b) <= 0 then a else b
  in
  let best = ref (Bundle.total_busy seed) in
  let best_packing = ref seed in
  let nodes = ref 0 in
  let rec dfs bundles cost = function
    | [] ->
        if Q.compare cost !best < 0 then begin
          best := cost;
          best_packing := bundles
        end
    | (j : B.t) :: rest ->
        Budget.tick budget;
        incr nodes;
        (* try each existing bundle *)
        List.iteri
          (fun i bundle ->
            if Bundle.fits ~g bundle j then begin
              let grown = j :: bundle in
              let delta = Q.sub (Bundle.busy_time grown) (Bundle.busy_time bundle) in
              let cost' = Q.add cost delta in
              if Q.compare cost' !best < 0 then
                dfs (List.mapi (fun k b -> if k = i then grown else b) bundles) cost' rest
            end)
          bundles;
        (* or open a new bundle *)
        let cost' = Q.add cost j.B.length in
        if Q.compare cost' !best < 0 then dfs ([ j ] :: bundles) cost' rest
  in
  (* also records the node count on the exhausted path *)
  let finish () = Obs.add obs "busy.exact.nodes" !nodes in
  try
    dfs [] Q.zero sorted;
    finish ();
    Budget.Complete !best_packing
  with Budget.Out_of_fuel ->
    finish ();
    Budget.Exhausted { spent = Budget.spent budget; incumbent = !best_packing }

let budgeted ~budget ~g jobs = solve ~budget ~g jobs

let exact ~g jobs =
  match solve ~g jobs with
  | Budget.Complete p -> p
  | Budget.Exhausted _ -> assert false (* unlimited fuel never exhausts *)

let optimum ~g jobs = Bundle.total_busy (exact ~g jobs)
