(** Special-case busy-time algorithms (paper footnote 1, Section 1.3):
    proper instances and cliques admit 2-approximations; proper cliques
    are exactly solvable by a consecutive-runs dynamic program
    (Mertzios et al.). All functions require interval jobs and raise
    [Invalid_argument] when the structural precondition fails. *)

(** No job's interval strictly contains another's. *)
val is_proper : Workload.Bjob.t list -> bool

(** All intervals share a common time point. *)
val is_clique : Workload.Bjob.t list -> bool

(** Release-order first fit; 2-approximate on proper instances. *)
val proper_greedy : g:int -> Workload.Bjob.t list -> Bundle.packing

(** [g] consecutive jobs (release order) per machine; 2-approximate on
    cliques. *)
val clique_greedy : g:int -> Workload.Bjob.t list -> Bundle.packing

(** Exact on proper cliques: O(n g) DP over consecutive runs of the
    release-sorted order (validated against exhaustive search in the
    tests). *)
val proper_clique_exact : g:int -> Workload.Bjob.t list -> Bundle.packing
