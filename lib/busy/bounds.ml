(* Lower bounds on the optimal busy time (Section 4.1).

   - mass (Observation 2):   OPT >= total length / g
   - span (Observation 3):   OPT >= OPT_infinity (= Sp(J) for interval jobs)
   - demand profile (Obs 4): OPT >= sum over interesting intervals of
                             ceil(raw demand / g) * length  (interval jobs)

   The profile bound dominates both others on interval jobs; all three are
   exposed because the paper's analyses charge them separately. *)

module Q = Rational
module B = Workload.Bjob

let intervals jobs = List.map B.interval_of jobs

let mass ~g jobs =
  if g < 1 then invalid_arg "Bounds.mass: g < 1";
  Q.div (B.total_length jobs) (Q.of_int g)

(* Span bound for interval jobs: Sp(J). (For flexible jobs the right span
   bound is OPT_infinity, computed by a placement; see {!Placement}.) *)
let span jobs = Intervals.span (intervals jobs)

let demand_profile ~g jobs = Intervals.Demand.profile_cost ~g (intervals jobs)

(* The strongest combination available for interval jobs. *)
let best ~g jobs = Q.max (mass ~g jobs) (Q.max (span jobs) (demand_profile ~g jobs))
