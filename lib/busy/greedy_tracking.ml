(* GREEDYTRACKING (Algorithm 1, Theorem 5): the paper's 3-approximation for
   interval jobs.

   Iteratively extract a maximum-length track (pairwise-disjoint job set,
   Definition 14) by weighted interval scheduling, and bundle g consecutive
   tracks per machine. Theorem 5: Sp(B_1) <= OPT_inf and, for i > 1,
   Sp(B_i) <= 2 l(B_{i-1}) / g, giving 3 OPT in total.

   [witness] builds the proof's certificate Q_i for a bundle: a subset with
   the same span in which at most two jobs are live at any time, so that
   Sp(B_i) <= l(Q_i) <= 2 * l(longest track). It is exposed for the
   property tests, which check both certificate properties on random
   packings. *)

module Q = Rational
module B = Workload.Bjob
module I = Intervals.Interval

let max_track jobs =
  Intervals.Track.max_weight_disjoint ~interval:B.interval_of ~weight:(fun (j : B.t) -> j.B.length) jobs

let solve ?(obs = Obs.null) ~g jobs =
  if g < 1 then invalid_arg "Greedy_tracking.solve: g < 1";
  List.iter
    (fun (j : B.t) ->
      if not (B.is_interval j) then invalid_arg "Greedy_tracking.solve: flexible job (convert first)")
    jobs;
  Bundle.ensure_unique_ids "Greedy_tracking.solve" jobs;
  Obs.span obs "busy.greedy_tracking" @@ fun () ->
  let rec go remaining tracks =
    if remaining = [] then List.rev tracks
    else begin
      let track, _ = max_track remaining in
      assert (track <> []);
      Obs.incr obs "busy.greedy_tracking.tracks";
      let chosen = List.map (fun (j : B.t) -> j.B.id) track in
      let remaining = List.filter (fun (j : B.t) -> not (List.mem j.B.id chosen)) remaining in
      go remaining (track :: tracks)
    end
  in
  let tracks = go jobs [] in
  (* bundle g consecutive tracks per machine *)
  let rec bundle acc current count = function
    | [] -> List.rev (if current = [] then acc else List.concat current :: acc)
    | t :: rest ->
        if count = g then bundle (List.concat current :: acc) [ t ] 1 rest
        else bundle acc (t :: current) (count + 1) rest
  in
  bundle [] [] 0 tracks

(* The certificate subset Q_i of a bundle (proof of Theorem 5):
   1. drop any job whose window is contained in another's;
   2. scan the remaining "proper" set by release time, repeatedly moving
      the latest-deadline job live at the current frontier into Q_i.
   Guarantees: Sp(Q_i) = Sp(bundle); at most 2 jobs of Q_i live anywhere. *)
let witness bundle =
  (* step 1: remove contained windows (ties: keep the first) *)
  let proper =
    List.filteri
      (fun i (j : B.t) ->
        not
          (List.exists
             (fun (idx, (k : B.t)) ->
               idx <> i
               && I.subset (B.interval_of j) (B.interval_of k)
               && ((not (I.equal (B.interval_of j) (B.interval_of k))) || idx < i))
             (List.mapi (fun idx k -> (idx, k)) bundle)))
      bundle
  in
  let sorted = List.sort (fun (a : B.t) (b : B.t) -> Q.compare a.B.release b.B.release) proper in
  let live_at t (j : B.t) = Q.compare j.B.release t <= 0 && Q.compare t j.B.deadline < 0 in
  let rec scan q = function
    | [] -> List.rev q
    | (hd : B.t) :: _ as remaining ->
        let dmax = match q with [] -> hd.B.release | last :: _ -> last.B.deadline in
        let live, _rest = List.partition (live_at dmax) remaining in
        if live = [] then
          (* gap: the earliest remaining job starts a new component *)
          let rest = List.tl remaining in
          scan (List.hd remaining :: q) rest
        else begin
          let last =
            List.fold_left (fun acc (j : B.t) -> if Q.compare j.B.deadline acc.B.deadline > 0 then j else acc)
              (List.hd live) live
          in
          (* drop all live jobs except [last]; keep the not-yet-live ones *)
          let rest = List.filter (fun (j : B.t) -> (not (live_at dmax j)) && j != last) remaining in
          scan (last :: q) rest
        end
  in
  scan [] sorted
