(* Online busy-time scheduling (Shalom, Voloshin, Wong, Yung, Zaks,
   cited in Section 1.3): interval jobs arrive in non-decreasing release
   order and must be assigned to a machine immediately and irrevocably.
   Deterministic algorithms cannot beat competitiveness g in general;
   an O(g)-competitive algorithm groups jobs into length classes.

   Implemented:
   - [first_fit]: the natural online rule - first machine with capacity.
   - [bucketed_first_fit]: machines are dedicated to length classes
     [2^k, 2^{k+1}); first fit within the class. This is the classing
     device behind the O(g)-competitive algorithm: within a class, job
     lengths differ by < 2x, so a machine's span is within a constant of
     the mass it carries.

   The bench (e12) measures empirical competitive ratios against the
   offline algorithms; the validity of every packing is property-tested. *)

module Q = Rational
module B = Workload.Bjob

let release_order jobs =
  List.stable_sort (fun (a : B.t) (b : B.t) -> Q.compare a.B.release b.B.release) jobs

let check_interval name jobs =
  List.iter
    (fun (j : B.t) -> if not (B.is_interval j) then invalid_arg (name ^ ": flexible job"))
    jobs

let first_fit ~g jobs =
  if g < 1 then invalid_arg "Online.first_fit: g < 1";
  check_interval "Online.first_fit" jobs;
  let bundles = ref [] in
  List.iter
    (fun job ->
      let rec place = function
        | [] -> [ [ job ] ]
        | bundle :: rest -> if Bundle.fits ~g bundle job then (job :: bundle) :: rest else bundle :: place rest
      in
      bundles := place !bundles)
    (release_order jobs);
  !bundles

(* length class: floor(log2 (length / unit)) where unit = the shortest
   length seen offline would be cheating; online we class against 1, so
   lengths in [2^k, 2^{k+1}) share machines. Rational-exact. *)
let length_class (len : Q.t) =
  if Q.compare len Q.zero <= 0 then invalid_arg "Online.length_class: non-positive length";
  let k = ref 0 in
  let v = ref len in
  if Q.compare len Q.one >= 0 then
    while Q.compare !v Q.two >= 0 do
      v := Q.div !v Q.two;
      incr k
    done
  else begin
    while Q.compare !v Q.one < 0 do
      v := Q.mul !v Q.two;
      decr k
    done
  end;
  !k

let bucketed_first_fit ~g jobs =
  if g < 1 then invalid_arg "Online.bucketed_first_fit: g < 1";
  check_interval "Online.bucketed_first_fit" jobs;
  let classes : (int, B.t list list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (job : B.t) ->
      let c = length_class job.B.length in
      let bundles =
        match Hashtbl.find_opt classes c with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.replace classes c r;
            r
      in
      let rec place = function
        | [] -> [ [ job ] ]
        | bundle :: rest -> if Bundle.fits ~g bundle job then (job :: bundle) :: rest else bundle :: place rest
      in
      bundles := place !bundles)
    (release_order jobs);
  Hashtbl.fold (fun _ r acc -> !r @ acc) classes []
