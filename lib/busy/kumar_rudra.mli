(** Kumar–Rudra's 2-approximation for interval jobs (paper Appendix A.1),
    reconstructed literally: pad demand to multiples of [g]; assign jobs
    to levels by release order allowing at most two overlapping per
    level; open two fibers per [g] levels, splitting each level's jobs
    between them by parity. Property-tested to cost at most
    [2 * demand profile]; compare {!Two_approx} (the Alicherry–Bhatia
    flow route to the same bound). *)

(** Raises [Invalid_argument] on flexible jobs, negative ids (reserved
    for padding dummies) or [g < 1]. *)
val solve : g:int -> Workload.Bjob.t list -> Bundle.packing
