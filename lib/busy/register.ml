(* Every busy-time solver behind the Core.Solver seam. As in
   lib/active/register.ml, the wrappers adapt types only; they add no
   telemetry, so registry-routed calls are observationally identical to
   direct module calls. *)

module Q = Rational
module B = Workload.Bjob
module I = Core.Instance
module R = Core.Result
module Sv = Core.Solver

let interval name inst =
  match inst with
  | I.Interval { g; jobs } -> (g, jobs)
  | i ->
      raise
        (Sv.Unsupported
           (Printf.sprintf "%s expects a busy-interval instance, got %s" name
              (I.kind_name (I.kind i))))

let flexible name inst =
  match inst with
  | I.Flexible { g; jobs } -> (g, jobs)
  | i ->
      raise
        (Sv.Unsupported
           (Printf.sprintf "%s expects a busy-flexible instance, got %s" name
              (I.kind_name (I.kind i))))

let preemptive name inst =
  match inst with
  | I.Preemptive { g; jobs } -> (g, jobs)
  | i ->
      raise
        (Sv.Unsupported
           (Printf.sprintf "%s expects a busy-preemptive instance, got %s" name
              (I.kind_name (I.kind i))))

let packing ?note p = R.solved ?note ~witness:(R.Packing p) (R.Busy (Bundle.total_busy p))

(* structural guards double as registry filters: [None] iff the solver's
   special case applies to the (interval) instance *)
let structural name pred why inst =
  match inst with
  | I.Interval { jobs; _ } -> if pred jobs then None else Some why
  | i ->
      Some
        (Printf.sprintf "%s expects a busy-interval instance, got %s" name
           (I.kind_name (I.kind i)))

let guarded name pred why f ?budget:_ ?obs:_ ?params:_ inst =
  let g, jobs = interval name inst in
  if not (pred jobs) then raise (Sv.Unsupported why);
  packing (f ~g jobs)

let placement_of_params params =
  match Option.bind params (List.assoc_opt "placement") with
  | None | Some "greedy" -> Pipeline.Greedy_placement
  | Some "exact" -> Pipeline.Exact_placement
  | Some o -> raise (Sv.Unsupported ("unknown placement " ^ o ^ " (greedy|exact)"))

let pipeline name algorithm ?budget:_ ?obs ?params inst =
  let g, jobs = flexible name inst in
  let _, p = Pipeline.run ?obs ~g ~placement:(placement_of_params params) ~algorithm jobs in
  packing p

let interval_solvers =
  [
    Sv.make ~name:"first-fit" ~kind:I.Busy_interval ~quality:(Sv.Approx (Q.of_int 4))
      ~cascade_tier:(2, "first-fit") ~rank:3 ~paper:"§4.3 FirstFit baseline"
      ~impl:"Busy.First_fit"
      ~solve:(fun ?budget:_ ?obs ?params:_ inst ->
        let g, jobs = interval "first-fit" inst in
        packing (First_fit.solve ?obs ~g jobs))
      ();
    Sv.make ~name:"greedy-tracking" ~kind:I.Busy_interval ~quality:(Sv.Approx (Q.of_int 3))
      ~cascade_tier:(1, "greedy-tracking") ~rank:2 ~paper:"Thm 5" ~impl:"Busy.Greedy_tracking"
      ~solve:(fun ?budget:_ ?obs ?params:_ inst ->
        let g, jobs = interval "greedy-tracking" inst in
        packing (Greedy_tracking.solve ?obs ~g jobs))
      ();
    Sv.make ~name:"two-approx" ~kind:I.Busy_interval ~quality:(Sv.Approx Q.two) ~rank:0
      ~paper:"Thm 3/8 (AB flow)" ~impl:"Busy.Two_approx"
      ~solve:(fun ?budget:_ ?obs ?params:_ inst ->
        let g, jobs = interval "two-approx" inst in
        packing (Two_approx.solve ?obs ~g jobs))
      ();
    Sv.make ~name:"kumar-rudra" ~kind:I.Busy_interval ~quality:(Sv.Approx Q.two) ~rank:1
      ~paper:"Thm 3/8 (KR levels)" ~impl:"Busy.Kumar_rudra"
      ~solve:(fun ?budget:_ ?obs:_ ?params:_ inst ->
        let g, jobs = interval "kumar-rudra" inst in
        packing (Kumar_rudra.solve ~g jobs))
      ();
    Sv.make ~name:"exact" ~kind:I.Busy_interval ~quality:Sv.Exact ~supports_budget:true
      ~supports_parallel:true ~cascade_tier:(0, "exact") ~rank:0
      ~exhausted_hint:"exact search ran out of budget" ~paper:"methodology (E16)"
      ~impl:"Busy.Exact"
      ~solve:(fun ?budget ?obs ?params:_ inst ->
        let g, jobs = interval "exact" inst in
        if budget = None && List.length jobs > 14 then
          raise (Sv.Unsupported "exact without --budget is capped at 14 jobs");
        match Exact.solve ?budget ?obs ~g jobs with
        | Budget.Complete p -> packing p
        | Budget.Exhausted { spent; incumbent } ->
            R.exhausted
              ~objective:(R.Busy (Bundle.total_busy incumbent))
              ~witness:(R.Packing incumbent) ~spent ())
      ();
    Sv.make ~name:"auto" ~kind:I.Busy_interval ~quality:(Sv.Approx Q.two) ~composite:true
      ~rank:4 ~paper:"E11 structure dispatch" ~impl:"Busy.Auto"
      ~solve:(fun ?budget:_ ?obs ?params:_ inst ->
        let g, jobs = interval "auto" inst in
        let structure, p = Auto.solve ?obs ~g jobs in
        packing ~note:("detected structure: " ^ structure) p)
      ();
    Sv.make ~name:"laminar" ~kind:I.Busy_interval ~quality:Sv.Exact ~rank:2
      ~restriction:"laminar windows"
      ~guard:(structural "laminar" Laminar.is_laminar "laminar algorithm requires a laminar instance")
      ~paper:"§1 laminar (Khandekar)" ~impl:"Busy.Laminar"
      ~solve:
        (guarded "laminar" Laminar.is_laminar "laminar algorithm requires a laminar instance"
           (fun ~g jobs -> Laminar.exact ~g jobs))
      ();
    Sv.make ~name:"proper-clique" ~kind:I.Busy_interval ~quality:Sv.Exact ~rank:3
      ~restriction:"proper clique instances"
      ~guard:
        (structural "proper-clique"
           (fun jobs -> Special.is_proper jobs && Special.is_clique jobs)
           "proper-clique algorithm requires a proper clique instance")
      ~paper:"footnote 1" ~impl:"Busy.Special"
      ~solve:
        (guarded "proper-clique"
           (fun jobs -> Special.is_proper jobs && Special.is_clique jobs)
           "proper-clique algorithm requires a proper clique instance"
           (fun ~g jobs -> Special.proper_clique_exact ~g jobs))
      ();
    Sv.make ~name:"proper-greedy" ~kind:I.Busy_interval ~quality:(Sv.Approx Q.two) ~rank:5
      ~restriction:"proper instances (no nested windows)"
      ~guard:(structural "proper-greedy" Special.is_proper "proper-greedy requires a proper instance")
      ~paper:"footnote 1" ~impl:"Busy.Special"
      ~solve:
        (guarded "proper-greedy" Special.is_proper "proper-greedy requires a proper instance"
           (fun ~g jobs -> Special.proper_greedy ~g jobs))
      ();
    Sv.make ~name:"clique-greedy" ~kind:I.Busy_interval ~quality:(Sv.Approx Q.two) ~rank:6
      ~restriction:"clique instances (pairwise overlapping)"
      ~guard:(structural "clique-greedy" Special.is_clique "clique-greedy requires a clique instance")
      ~paper:"footnote 1" ~impl:"Busy.Special"
      ~solve:
        (guarded "clique-greedy" Special.is_clique "clique-greedy requires a clique instance"
           (fun ~g jobs -> Special.clique_greedy ~g jobs))
      ();
    Sv.make ~name:"online-first-fit" ~kind:I.Busy_interval ~quality:Sv.Heuristic ~online:true
      ~rank:0 ~paper:"§1.3 Shalom et al." ~impl:"Busy.Online"
      ~solve:(fun ?budget:_ ?obs:_ ?params:_ inst ->
        let g, jobs = interval "online-first-fit" inst in
        packing (Online.first_fit ~g jobs))
      ();
    Sv.make ~name:"online-bucketed" ~kind:I.Busy_interval ~quality:Sv.Heuristic ~online:true
      ~rank:1 ~paper:"§1.3 Shalom et al." ~impl:"Busy.Online"
      ~solve:(fun ?budget:_ ?obs:_ ?params:_ inst ->
        let g, jobs = interval "online-bucketed" inst in
        packing (Online.bucketed_first_fit ~g jobs))
      ();
    Sv.make ~name:"cascade" ~kind:I.Busy_interval ~quality:(Sv.Approx (Q.of_int 4))
      ~supports_budget:true ~composite:true ~paper:"DESIGN §5a" ~impl:"Busy.Cascade"
      ~solve:(fun ?budget ?obs ?params:_ inst ->
        let g, jobs = interval "cascade" inst in
        let limit =
          match budget with Some b when Budget.is_limited b -> Budget.remaining b | _ -> 100_000
        in
        let deadline = Option.bind budget Budget.probe in
        let p, prov = Cascade.solve ?obs ?deadline ~limit ~g jobs in
        let provenance = Budget.Cascade.map_provenance (fun c -> R.Busy c) prov in
        match p with
        | Some p ->
            R.solved ~provenance ~witness:(R.Packing p) (R.Busy (Bundle.total_busy p))
        | None -> R.infeasible ~provenance ())
      ();
  ]

let pipeline_solvers =
  [
    Sv.make ~name:"gt-pipeline" ~kind:I.Busy_flexible ~quality:(Sv.Approx (Q.of_int 3)) ~rank:0
      ~paper:"Thm 5 (§4.3)" ~impl:"Busy.Pipeline"
      ~solve:(pipeline "gt-pipeline" Pipeline.Greedy_tracking) ();
    Sv.make ~name:"2a-pipeline" ~kind:I.Busy_flexible ~quality:(Sv.Approx (Q.of_int 4)) ~rank:1
      ~paper:"Thm 10" ~impl:"Busy.Pipeline"
      ~solve:(pipeline "2a-pipeline" Pipeline.Two_approx) ();
    Sv.make ~name:"ff-pipeline" ~kind:I.Busy_flexible ~quality:(Sv.Approx (Q.of_int 4)) ~rank:2
      ~paper:"§4.3 prior 4-approx" ~impl:"Busy.Pipeline"
      ~solve:(pipeline "ff-pipeline" Pipeline.First_fit) ();
  ]

let preemptive_solvers =
  [
    Sv.make ~name:"preemptive" ~kind:I.Busy_preemptive ~quality:(Sv.Approx Q.two)
      ~preemptive:true ~rank:0 ~paper:"Thm 7" ~impl:"Busy.Preemptive"
      ~solve:(fun ?budget:_ ?obs:_ ?params:_ inst ->
        let g, jobs = preemptive "preemptive" inst in
        let cost, sol, _ = Preemptive.bounded ~g jobs in
        (match Preemptive.check jobs sol with
        | Some problem -> raise (Sv.Bad_result problem)
        | None -> ());
        R.solved (R.Busy cost))
      ();
    Sv.make ~name:"preemptive-unbounded" ~kind:I.Busy_preemptive ~quality:Sv.Exact
      ~preemptive:true ~rank:1 ~paper:"Thm 6" ~impl:"Busy.Preemptive"
      ~solve:(fun ?budget:_ ?obs:_ ?params:_ inst ->
        let _, jobs = preemptive "preemptive-unbounded" inst in
        let sol = Preemptive.unbounded jobs in
        (match Preemptive.check jobs sol with
        | Some problem -> raise (Sv.Bad_result problem)
        | None -> ());
        R.solved (R.Busy sol.Preemptive.cost))
      ();
  ]

let () = List.iter Core.Registry.register (interval_solvers @ pipeline_solvers @ preemptive_solvers)
let force () = ()
