(** Structure-aware dispatch (the CLI's historical [--algorithm auto]):
    run the exact DP where a special case applies — laminar windows, or
    proper clique instances — the 2-approximate greedy on proper or
    clique instances, and the flow-based 2-approximation otherwise.
    Interval jobs only. *)

(** Returns the detected structure (human-readable, e.g.
    ["laminar (exact DP)"]) and the packing. [?obs] reaches only the
    general-case {!Two_approx} solver — the special-case DPs and greedies
    are unmetered, matching the historical CLI behaviour. *)
val solve : ?obs:Obs.t -> g:int -> Workload.Bjob.t list -> string * Bundle.packing
