(** Graceful-degradation cascade for busy time: exact set-partition
    branch and bound, then GreedyTracking (3-approximation), then
    FirstFit (4-approximation). Each tier gets a fresh budget of the
    same tick limit; the greedy tiers are polynomial and unmetered, so
    the cascade always returns a packing. Interval jobs only (pin
    flexible jobs with {!Placement} first); raises [Invalid_argument]
    otherwise. *)

type provenance = {
  winner : string option;  (** tier that produced the packing *)
  attempts : Budget.Cascade.attempt list;  (** every tier tried, in order *)
  cost : Rational.t option;  (** total busy time of the returned packing *)
  lower_bound : Rational.t;
      (** best Section-4.1 lower bound on OPT (mass / span / demand
          profile); [cost - lower_bound] bounds the regret of a degraded
          answer *)
}

(** [solve ~limit ~g jobs] runs the cascade with [limit] ticks per tier.
    The packing is always [Some] (FirstFit accepts any interval-job
    list, including the empty one). *)
val solve :
  limit:int -> g:int -> Workload.Bjob.t list -> Bundle.packing option * provenance

(** One line per attempt plus a final
    [provenance: tier=... busy=... lower-bound=... gap=...] line. *)
val pp_provenance : Format.formatter -> provenance -> unit
