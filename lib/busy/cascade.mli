(** Graceful-degradation cascade for busy time: exact set-partition
    branch and bound, then GreedyTracking (3-approximation), then
    FirstFit (4-approximation). Each tier gets a fresh budget of the
    same tick limit; the greedy tiers are polynomial and unmetered, so
    the cascade always returns a packing. Interval jobs only (pin
    flexible jobs with {!Placement} first); raises [Invalid_argument]
    otherwise. *)

(** Provenance with rational busy-time cost, ["busy"] / ["lower-bound"]
    labels, and [bound] = the best Section-4.1 lower bound on OPT (mass /
    span / demand profile); [gap] bounds the regret of a degraded answer.
    See {!Budget.Cascade.provenance} for the fields. *)
type provenance = Rational.t Budget.Cascade.provenance

(** [solve ~limit ~g jobs] runs the cascade with [limit] ticks per tier.
    The packing is always [Some] (FirstFit accepts any interval-job
    list, including the empty one) unless the [?deadline] probe fired —
    the provenance then ends in a {!Budget.Cascade.Deadline} attempt and
    has no winner. [?obs] is threaded through the runner (cascade.*
    counters and per-tier spans) and every tier's solver; [?deadline] is
    re-armed on each per-tier budget ({!Budget.Cascade.run}). *)
val solve :
  ?obs:Obs.t ->
  ?deadline:(unit -> bool) ->
  limit:int ->
  g:int ->
  Workload.Bjob.t list ->
  Bundle.packing option * provenance

(** One line per attempt plus a final
    [provenance: tier=... busy=... lower-bound=... gap=...] line
    ({!Budget.Cascade.pp_provenance} with the rational cost printer). *)
val pp_provenance : Format.formatter -> provenance -> unit
