(* The dual resource-allocation problem (Mertzios et al., Section 1.3):
   given interval jobs, capacity g and a busy-time budget, schedule as
   many jobs as possible without the packing's total busy time exceeding
   the budget. NP-hard whenever the minimization problem is (the paper's
   Section 1.3), so we provide an exact subset search for small n and a
   budget-greedy heuristic, compared in experiment E13.

   Ties in job count are broken toward smaller busy time. *)

module Q = Rational
module B = Workload.Bjob

(* Cheapest packing of a set: exact for tiny sets, GreedyTracking beyond
   (keeps [exact]'s subset search sound as an accept/reject oracle only
   for small n, which is the documented scope). *)
let min_busy ~g jobs =
  if jobs = [] then (Q.zero, [])
  else begin
    let packing = if List.length jobs <= 9 then Exact.exact ~g jobs else Greedy_tracking.solve ~g jobs in
    (Bundle.total_busy packing, packing)
  end

(* [budget] is the problem's busy-time allowance (a rational); [fuel] is
   the deterministic tick budget bounding the subset enumeration. *)
let solve ?fuel ?(obs = Obs.null) ~g ~budget jobs =
  if g < 1 then invalid_arg "Maximize.solve: g < 1";
  let n = List.length jobs in
  if n > 30 then invalid_arg "Maximize.solve: too many jobs for subset search";
  let fuel = match fuel with Some f -> f | None -> Budget.unlimited () in
  Obs.span obs "busy.maximize" @@ fun () ->
  let arr = Array.of_list jobs in
  let best = ref ([], Q.zero, []) in
  let best_count = ref (-1) in
  let masks = ref 0 in
  let finish () = Obs.add obs "busy.maximize.masks" !masks in
  try
    for mask = 0 to (1 lsl n) - 1 do
      Budget.tick fuel;
      incr masks;
      let subset = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list arr) in
      let count = List.length subset in
      if count >= !best_count then begin
        let busy, packing = min_busy ~g subset in
        if Q.compare busy budget <= 0 then begin
          let _, cur_busy, _ = !best in
          if count > !best_count || Q.compare busy cur_busy < 0 then begin
            best := (subset, busy, packing);
            best_count := count
          end
        end
      end
    done;
    finish ();
    Budget.Complete !best
  with Budget.Out_of_fuel ->
    finish ();
    Budget.Exhausted { spent = Budget.spent fuel; incumbent = !best }


let exact ~g ~budget jobs =
  if List.length jobs > 12 then invalid_arg "Maximize.exact: too many jobs for exhaustive search";
  match solve ~g ~budget jobs with
  | Budget.Complete r -> r
  | Budget.Exhausted _ -> assert false (* unlimited fuel never exhausts *)

(* Greedy: consider jobs by non-decreasing length (cheap first); accept a
   job when the accepted set still packs within budget. *)
let greedy ~g ~budget jobs =
  if g < 1 then invalid_arg "Maximize.greedy: g < 1";
  let sorted = List.stable_sort (fun (a : B.t) (b : B.t) -> Q.compare a.B.length b.B.length) jobs in
  let accepted = ref [] in
  let packing = ref [] in
  let busy = ref Q.zero in
  List.iter
    (fun job ->
      let candidate = job :: !accepted in
      let b, p = min_busy ~g candidate in
      if Q.compare b budget <= 0 then begin
        accepted := candidate;
        packing := p;
        busy := b
      end)
    sorted;
  (!accepted, !busy, !packing)
