(** Busy time with job widths/demands (Khandekar et al., discussed in
    Section 1): each job carries a width [w <= g] and the widths of the
    jobs active on a machine may sum to at most [g] at any time. Unit
    widths recover the standard model. *)

type wjob = { job : Workload.Bjob.t; width : int }

(** Raises [Invalid_argument] on [width < 1] or a flexible job. *)
val wjob : job:Workload.Bjob.t -> width:int -> wjob

(** Peak total width of a bundle, optionally restricted to a window. *)
val peak_width : ?within:Intervals.Interval.t -> wjob list -> int

val fits : g:int -> wjob list -> wjob -> bool
val busy_time : wjob list -> Rational.t
val total_busy : wjob list list -> Rational.t

(** Partition + width-capacity validation; first violation or [None]. *)
val check : g:int -> wjob list -> wjob list list -> string option

(** [sum(w_j p_j) / g]. *)
val mass : g:int -> wjob list -> Rational.t

val span : wjob list -> Rational.t

(** Width-weighted demand profile: [sum ceil(width demand / g) * |cell|]. *)
val demand_profile : g:int -> wjob list -> Rational.t

val best_bound : g:int -> wjob list -> Rational.t

(** FirstFit by non-increasing length over width-aware capacity. *)
val first_fit : g:int -> wjob list -> wjob list list

val is_wide : g:int -> wjob -> bool

(** Khandekar et al.'s device: wide jobs ([w > g/2]) packed among
    themselves, narrow jobs separately (their 5-approximation's
    skeleton). *)
val narrow_wide_split : g:int -> wjob list -> wjob list list

(** Exact optimum by insertion branch-and-bound; [Invalid_argument]
    beyond 12 jobs. *)
val exact : g:int -> wjob list -> wjob list list
