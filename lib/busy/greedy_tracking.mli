(** GREEDYTRACKING (Algorithm 1, Theorem 5): the paper's 3-approximation
    for interval jobs. Repeatedly extract a maximum-length track
    (pairwise-disjoint jobs, Definition 14) by weighted interval
    scheduling; every [g] consecutive tracks form one bundle.

    Guarantee: [Sp(B_1) <= OPT_inf] and [Sp(B_i) <= 2 l(B_{i-1}) / g] for
    [i > 1], hence at most [3 OPT]; tight on the Fig. 6/7 gadget
    (experiment E5). *)

(** A maximum-length track of the given interval jobs, with its length. *)
val max_track : Workload.Bjob.t list -> Workload.Bjob.t list * Rational.t

(** Raises [Invalid_argument] on flexible jobs or [g < 1]. With [?obs],
    runs inside a [busy.greedy_tracking] span and records
    [busy.greedy_tracking.tracks] (tracks extracted). *)
val solve : ?obs:Obs.t -> g:int -> Workload.Bjob.t list -> Bundle.packing

(** The certificate subset Q_i of a bundle from the proof of Theorem 5:
    same span as the bundle, at most two jobs live at any time. Exposed
    for the property tests. *)
val witness : Bundle.t -> Workload.Bjob.t list
