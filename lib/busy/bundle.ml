(* Bundles (machine groups) for the busy-time model.

   A packing assigns every interval job to a bundle; each bundle runs on
   its own machine, at most [g] jobs active simultaneously. The busy time
   of a bundle is the measure of the union of its jobs' intervals
   (Definition 10's span); the packing cost is the sum over bundles. *)

module Q = Rational
module B = Workload.Bjob

type t = B.t list
type packing = t list

let intervals bundle = List.map B.interval_of bundle
let busy_time bundle = Intervals.span (intervals bundle)
let total_busy packing = List.fold_left (fun acc b -> Q.add acc (busy_time b)) Q.zero packing

(* Peak number of simultaneously active jobs in a bundle. *)
let max_parallel bundle = Intervals.Demand.max_raw (intervals bundle)

(* [fits ~g bundle job] iff adding [job] keeps the bundle within capacity.
   Only the demand inside [job]'s own interval can change, so clip the
   bundle to it instead of recomputing the whole bundle's peak. *)
let fits ~g bundle job =
  let iv = B.interval_of job in
  let clipped =
    List.filter_map (fun (b : B.t) -> Intervals.Interval.intersect (B.interval_of b) iv) bundle
  in
  Intervals.Demand.max_raw clipped + 1 <= g

(* Validates a packing of [jobs]: interval jobs only, exact partition by
   id, capacity respected. Returns the first violation, or [None]. *)
let check ~g jobs (packing : packing) =
  let problem = ref None in
  let fail msg = if !problem = None then problem := Some msg in
  List.iter
    (fun (j : B.t) -> if not (B.is_interval j) then fail (Printf.sprintf "job %d is flexible" j.B.id))
    jobs;
  let expected = List.sort compare (List.map (fun (j : B.t) -> j.B.id) jobs) in
  let packed = List.sort compare (List.concat_map (List.map (fun (j : B.t) -> j.B.id)) packing) in
  if expected <> packed then fail "packing is not a partition of the job set";
  List.iteri
    (fun i bundle ->
      if bundle = [] then fail (Printf.sprintf "bundle %d is empty" i)
      else if max_parallel bundle > g then fail (Printf.sprintf "bundle %d exceeds capacity g=%d" i g))
    packing;
  !problem

(* Guard for algorithms that track jobs by id (removal sets, DP memo
   keys): duplicate ids would silently corrupt them. *)
let ensure_unique_ids name jobs =
  let ids = List.map (fun (j : B.t) -> j.B.id) jobs in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg (name ^ ": duplicate job ids")

let pp fmt packing =
  List.iteri
    (fun i bundle ->
      Format.fprintf fmt "machine %d (busy %s): %s@." i
        (Q.to_string (busy_time bundle))
        (String.concat " "
           (List.map
              (fun (j : B.t) -> Printf.sprintf "%d%s" j.B.id (Intervals.Interval.to_string (B.interval_of j)))
              bundle)))
    packing
