(** Bundles (machine groups) for the busy-time model. A packing partitions
    interval jobs into bundles; each bundle runs on its own machine with
    at most [g] jobs active simultaneously; its busy time is the measure
    of the union of its jobs' intervals (the span of Definition 10). *)

type t = Workload.Bjob.t list
type packing = t list

val intervals : t -> Intervals.Interval.t list

(** [Sp(bundle)]: measure of the union of its jobs' intervals. *)
val busy_time : t -> Rational.t

(** Sum of bundle busy times — the packing's objective. *)
val total_busy : packing -> Rational.t

(** Peak number of simultaneously active jobs. *)
val max_parallel : t -> int

(** [fits ~g bundle job] iff adding [job] keeps the peak within [g]. *)
val fits : g:int -> t -> Workload.Bjob.t -> bool

(** Validates a packing of [jobs]: interval jobs only, exact partition by
    id, no empty bundle, capacity respected. First violation or [None]. *)
val check : g:int -> Workload.Bjob.t list -> packing -> string option

(** [ensure_unique_ids name jobs] raises [Invalid_argument] on duplicate
    job ids; used by the algorithms that track jobs by id. *)
val ensure_unique_ids : string -> Workload.Bjob.t list -> unit

val pp : Format.formatter -> packing -> unit
