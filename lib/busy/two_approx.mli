(** The interval-job 2-approximation, after Alicherry–Bhatia and
    Kumar–Rudra (paper Theorem 3 and Appendix A).

    Each iteration routes a flow of value 2 through the event DAG — one
    capacity-1 edge per job, capacity-1 idle edges between consecutive
    events inside the support, capacity-2 bridges across zero-demand
    gaps — and decomposes it into two tracks that {e jointly cover} the
    current support (idle capacity 1 forces at least one job edge across
    every boundary). Every support point loses at least one unit of
    demand per iteration; after the [g] iterations of a bundle pair the
    demand has dropped by [g] everywhere, so pair [p]'s busy time charges
    level [p] of the demand profile at most twice: total
    [<= 2 * profile <= 2 OPT]. *)

(** [covering_track_pair jobs] is two tracks whose union covers the
    support of [jobs] (all interval). Exposed for tests. *)
val covering_track_pair :
  ?obs:Obs.t -> Workload.Bjob.t list -> Workload.Bjob.t list * Workload.Bjob.t list

(** Raises [Invalid_argument] on flexible jobs or [g < 1]. Property-tested
    to cost at most [2 * demand profile]. With [?obs], runs inside a
    [busy.two_approx] span and records [busy.two_approx.track_pairs] plus
    the [flow.*] counters of each extraction. *)
val solve : ?obs:Obs.t -> g:int -> Workload.Bjob.t list -> Bundle.packing

(** Ablation-only variant: a bundle pair absorbs [pair_depth] track pairs
    instead of the [g] the charging argument requires. Valid packings,
    weaker costs. *)
val solve_with_depth :
  ?obs:Obs.t -> pair_depth:int -> g:int -> Workload.Bjob.t list -> Bundle.packing
