(* The 2-approximation for interval jobs, after Alicherry-Bhatia [1] /
   Kumar-Rudra [11] (paper Theorem 3 and Appendix A).

   Mechanism (the appendix's, on interesting intervals): repeatedly route a
   flow of value 2 through the event DAG and decompose it into two tracks
   that JOINTLY COVER the whole current support. The DAG has

   - a capacity-1 edge per job from its start event to its end event,
   - capacity-1 "idle" edges between consecutive events inside the
     support, and
   - capacity-2 edges bridging zero-demand gaps (and source/sink).

   Any boundary inside the support is crossed by (raw demand) + 1 >= 2
   capacity, so a flow of value 2 always exists; since idle capacity is
   only 1, at least one unit crosses every boundary through a job edge -
   the two extracted tracks jointly cover the support, and every support
   point loses at least one unit of demand per iteration.

   Tracks are paired into two bundles per g iterations. Accounting
   (Theorem 3 / Appendix A): after the g iterations of a bundle pair the
   demand has dropped by at least g everywhere, so the support seen by
   pair p is contained in level p of the demand profile, and the pair's
   busy time (at most twice the support measure) charges that level at
   most twice. Total <= 2 * demand profile <= 2 * OPT (Observation 4). *)

module Q = Rational
module B = Workload.Bjob
module I = Intervals.Interval

(* Two tracks of [jobs] that jointly cover the support of [jobs]. *)
let covering_track_pair ?(obs = Obs.null) jobs =
  let ivs = List.map B.interval_of jobs in
  let support = Intervals.Union.of_list ivs in
  let components = Intervals.Union.components support in
  assert (components <> []);
  (* event coordinates: all job endpoints (component bounds are among them) *)
  let coords =
    List.sort_uniq Q.compare (List.concat_map (fun (iv : I.t) -> [ iv.I.lo; iv.I.hi ]) ivs)
  in
  let coord_index = Hashtbl.create 32 in
  List.iteri (fun i c -> Hashtbl.replace coord_index (Q.to_string c) i) coords;
  let index_of q = Hashtbl.find coord_index (Q.to_string q) in
  let n = List.length coords in
  let source = n and sink = n + 1 in
  let graph = Flow.create (n + 2) in
  let job_edges =
    List.map
      (fun (j : B.t) ->
        let iv = B.interval_of j in
        (Flow.add_edge graph ~src:(index_of iv.I.lo) ~dst:(index_of iv.I.hi) ~cap:1, j))
      jobs
  in
  (* idle edges (cap 1) between consecutive events inside a component *)
  let in_support q = Intervals.Union.contains_point support q in
  let rec idle = function
    | a :: (b :: _ as rest) ->
        if in_support a then ignore (Flow.add_edge graph ~src:(index_of a) ~dst:(index_of b) ~cap:1);
        idle rest
    | _ -> ()
  in
  idle coords;
  (* source -> first component; gap bridges; last component -> sink *)
  let rec link prev_end = function
    | [] -> (
        match prev_end with
        | None -> ()
        | Some e -> ignore (Flow.add_edge graph ~src:(index_of e) ~dst:sink ~cap:2))
    | (c : I.t) :: rest ->
        (match prev_end with
        | None -> ignore (Flow.add_edge graph ~src:source ~dst:(index_of c.I.lo) ~cap:2)
        | Some e -> ignore (Flow.add_edge graph ~src:(index_of e) ~dst:(index_of c.I.lo) ~cap:2));
        link (Some c.I.hi) rest
  in
  link None components;
  let v = Flow.max_flow ~obs graph ~source ~sink in
  if v <> 2 then failwith (Printf.sprintf "covering_track_pair: flow %d, expected 2" v);
  let paths = Flow.decompose_paths graph ~source ~sink in
  (* Map each path's hops back to saturated job edges. Parallel edges
     (identical jobs) are disambiguated by consuming each edge at most
     once; idle hops match no job edge and are skipped. *)
  let consumed = Hashtbl.create 16 in
  let track_of_path vertices =
    let rec hops = function
      | a :: (b :: _ as rest) -> (a, b) :: hops rest
      | _ -> []
    in
    List.filter_map
      (fun (a, b) ->
        List.find_map
          (fun (e, j) ->
            let iv = B.interval_of j in
            if
              (not (Hashtbl.mem consumed e))
              && index_of iv.I.lo = a && index_of iv.I.hi = b
              && Flow.flow graph e = 1
            then begin
              Hashtbl.replace consumed e ();
              Some j
            end
            else None)
          job_edges)
      (hops vertices)
  in
  match paths with
  | [ (p1, 1); (p2, 1) ] -> (track_of_path p1, track_of_path p2)
  | _ -> failwith "covering_track_pair: unexpected decomposition"

(* [pair_depth] is the number of track pairs a bundle pair absorbs; the
   charging argument needs g (each pair then strips a full level of the
   demand profile). Smaller depths are exposed only for the ablation
   experiment - they waste machines and lose the guarantee. *)
let solve_with_depth ?(obs = Obs.null) ~pair_depth ~g jobs =
  if g < 1 then invalid_arg "Two_approx.solve: g < 1";
  let pair_depth = max 1 pair_depth in
  List.iter
    (fun (j : B.t) ->
      if not (B.is_interval j) then invalid_arg "Two_approx.solve: flexible job (convert first)")
    jobs;
  Bundle.ensure_unique_ids "Two_approx.solve" jobs;
  Obs.span obs "busy.two_approx" @@ fun () ->
  let remaining = ref jobs in
  let bundles = ref [] in
  while !remaining <> [] do
    (* a bundle pair absorbs [pair_depth] track pairs *)
    let b1 = ref [] and b2 = ref [] in
    let iter = ref 0 in
    while !iter < pair_depth && !remaining <> [] do
      incr iter;
      Obs.incr obs "busy.two_approx.track_pairs";
      let t1, t2 = covering_track_pair ~obs !remaining in
      let taken = t1 @ t2 in
      assert (taken <> []);
      b1 := t1 @ !b1;
      b2 := t2 @ !b2;
      let ids = List.map (fun (j : B.t) -> j.B.id) taken in
      remaining := List.filter (fun (j : B.t) -> not (List.mem j.B.id ids)) !remaining
    done;
    if !b1 <> [] then bundles := !b1 :: !bundles;
    if !b2 <> [] then bundles := !b2 :: !bundles
  done;
  List.rev !bundles

let solve ?obs ~g jobs = solve_with_depth ?obs ~pair_depth:g ~g jobs