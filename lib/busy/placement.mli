(** Span-minimizing placement of flexible jobs with unbounded capacity —
    the role of Khandekar et al.'s dynamic program (paper Theorem 4) in
    the flexible-job pipeline. The output pins every job to a start time;
    its span is the [OPT_infinity] lower bound used by Theorems 5/10.

    Substitution (DESIGN.md item 2): [exact] is a branch-and-bound over
    integer start times (complete for integer-data instances by a sliding
    argument), [greedy] a marginal-span insertion with local-search
    re-placement; the tests measure the greedy's gap against [exact]. *)

(** Greedy placement: non-increasing length order, each job at the
    candidate start minimizing the marginal union growth, then up to
    [passes] re-placement sweeps. Returns interval jobs, sorted by id. *)
val greedy : ?passes:int -> Workload.Bjob.t list -> Workload.Bjob.t list

(** Exact minimum-span placement. Raises [Invalid_argument] on
    non-integer job data; exponential — intended for small instances. *)
val exact : Workload.Bjob.t list -> Workload.Bjob.t list

(** Span of the exact placement: [OPT_infinity] for integer instances. *)
val optimum_span : Workload.Bjob.t list -> Rational.t

(** Measure of the union of a placed job set's intervals. *)
val span_of : Workload.Bjob.t list -> Rational.t
