(** End-to-end busy-time scheduling of flexible jobs (Section 4.3): pin
    jobs by a span-minimizing placement, then run an interval-job
    algorithm. With GreedyTracking this is the paper's 3-approximation;
    with the 2-approximation it is 4-approximate and tight (Theorem 10);
    with FirstFit it is the prior 4-approximation. *)

type interval_algorithm = First_fit | Greedy_tracking | Two_approx

type placement_mode =
  | Exact_placement
  | Greedy_placement
  | Pinned of Workload.Bjob.t list
      (** a precomputed (e.g. adversarial) placement; must pin exactly the
          input job set *)

(** Applies the placement mode; raises [Invalid_argument] when a pinned
    placement mismatches the jobs or is not all-interval. *)
val place : placement_mode -> Workload.Bjob.t list -> Workload.Bjob.t list

(** Returns the pinned jobs and the packing of them. *)
val run :
  ?obs:Obs.t ->
  g:int ->
  placement:placement_mode ->
  algorithm:interval_algorithm ->
  Workload.Bjob.t list ->
  Workload.Bjob.t list * Bundle.packing
