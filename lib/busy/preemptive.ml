(* Preemptive busy time.

   Theorem 6 (exact, g unbounded): repeatedly take the earliest remaining
   deadline d1 and the largest remaining length l_max among jobs due at
   d1; open the RIGHTMOST l_max units of not-yet-opened time before d1;
   schedule every live job maximally inside the new region; repeat. The
   "shrink the interval and recurse" of the paper is realized by always
   working in original coordinates against the set of already-opened time.

   Theorem 7 (2-approximation, bounded g): freeze each job exactly where
   the unbounded solution ran it, split every interesting interval's
   active jobs onto ceil(n/g) machines. At most one machine per interval
   is non-full, so the cost is at most OPT_inf + l(J)/g <= 2 OPT. *)

module Q = Rational
module B = Workload.Bjob
module I = Intervals.Interval
module U = Intervals.Union

type assignment = { job : B.t; pieces : I.t list (* disjoint, within window *) }

type solution = { opened : U.t; assignments : assignment list; cost : Q.t }

(* rightmost [amount] of measure from a list of disjoint intervals
   (sorted); returns the chosen sub-intervals. Raises if not enough. *)
let take_rightmost intervals amount =
  let rec go acc needed = function
    | [] -> if Q.is_zero needed then acc else invalid_arg "take_rightmost: not enough free time"
    | (iv : I.t) :: rest ->
        let len = I.length iv in
        if Q.compare len needed >= 0 then I.make (Q.sub iv.I.hi needed) iv.I.hi :: acc
        else go (iv :: acc) (Q.sub needed len) rest
  in
  if Q.compare amount Q.zero <= 0 then [] else go [] amount (List.rev intervals)

let intersect_all ivs (window : I.t) = List.filter_map (I.intersect window) ivs

let measure ivs = List.fold_left (fun acc iv -> Q.add acc (I.length iv)) Q.zero ivs

let unbounded jobs =
  let remaining = Hashtbl.create 16 in
  List.iter (fun (j : B.t) -> Hashtbl.replace remaining j.B.id j.B.length) jobs;
  let pieces = Hashtbl.create 16 in
  List.iter (fun (j : B.t) -> Hashtbl.replace pieces j.B.id []) jobs;
  let rem (j : B.t) = Hashtbl.find remaining j.B.id in
  let opened = ref U.empty in
  let global_lo =
    List.fold_left (fun acc (j : B.t) -> Q.min acc j.B.release) Q.zero jobs
  in
  let alive () = List.filter (fun j -> Q.compare (rem j) Q.zero > 0) jobs in
  let rec loop () =
    match alive () with
    | [] -> ()
    | live ->
        let d1 = List.fold_left (fun acc (j : B.t) -> Q.min acc j.B.deadline) (List.hd live).B.deadline live in
        let due = List.filter (fun (j : B.t) -> Q.equal j.B.deadline d1) live in
        let l_max = List.fold_left (fun acc j -> Q.max acc (rem j)) Q.zero due in
        (* rightmost l_max units of unopened time before d1 *)
        let free = U.gaps !opened (I.make global_lo d1) in
        let region = take_rightmost free l_max in
        opened := List.fold_left U.add !opened region;
        (* every live job grabs as much of the region (within window) as
           it still needs, rightmost first *)
        List.iter
          (fun (j : B.t) ->
            let within = intersect_all region (B.window j) in
            let amount = Q.min (rem j) (measure within) in
            if Q.compare amount Q.zero > 0 then begin
              let chosen = take_rightmost within amount in
              Hashtbl.replace pieces j.B.id (chosen @ Hashtbl.find pieces j.B.id);
              Hashtbl.replace remaining j.B.id (Q.sub (rem j) amount)
            end)
          live;
        (* the due jobs must now be complete *)
        List.iter (fun j -> assert (Q.is_zero (rem j))) due;
        loop ()
  in
  loop ();
  let assignments =
    List.map (fun (j : B.t) -> { job = j; pieces = List.sort I.compare (Hashtbl.find pieces j.B.id) }) jobs
  in
  { opened = !opened; assignments; cost = U.measure !opened }

(* Validation of a preemptive solution: every job fully served, inside its
   window, by pairwise-disjoint pieces contained in the opened time. *)
let check jobs sol =
  let problem = ref None in
  let fail msg = if !problem = None then problem := Some msg in
  List.iter
    (fun (j : B.t) ->
      match List.find_opt (fun a -> a.job.B.id = j.B.id) sol.assignments with
      | None -> fail (Printf.sprintf "job %d has no assignment" j.B.id)
      | Some a ->
          let total = measure a.pieces in
          if not (Q.equal total j.B.length) then
            fail (Printf.sprintf "job %d served %s of %s" j.B.id (Q.to_string total) (Q.to_string j.B.length));
          List.iter
            (fun piece ->
              if not (I.subset piece (B.window j)) then fail (Printf.sprintf "job %d runs outside window" j.B.id);
              if not (Q.equal (Intervals.Union.marginal sol.opened piece) Q.zero) then
                fail (Printf.sprintf "job %d runs outside opened time" j.B.id))
            a.pieces;
          if not (Q.equal (Intervals.span a.pieces) total) then
            fail (Printf.sprintf "job %d overlaps itself" j.B.id))
    jobs;
  !problem

(* Independent oracle for Theorem 6's exactness claim: with unbounded
   parallelism and continuous preemption, the optimal busy time is a
   linear program over the event grid of all releases and deadlines -
   open y_c units of time inside cell c (0 <= y_c <= |c|) and serve
   x_{j,c} <= y_c units of job j there (a job cannot run in parallel with
   itself), sum_c x_{j,c} = p_j, minimizing sum_c y_c. Fractional opening
   is realizable because time is continuous: any (y, x) solution can
   schedule inside each cell with everything left-packed. The tests check
   [unbounded] against this LP on random instances. *)
let lp_model jobs =
  let events =
      List.sort_uniq Q.compare (List.concat_map (fun (j : B.t) -> [ j.B.release; j.B.deadline ]) jobs)
    in
    let rec cells = function
      | a :: (b :: _ as rest) -> I.make a b :: cells rest
      | _ -> []
    in
    let cells = cells events in
    let m = Lp.create () in
    let y_vars =
      List.mapi (fun i c -> (c, Lp.add_var ~upper:(I.length c) m (Printf.sprintf "y_%d" i))) cells
    in
    let x_vars =
      List.concat
        (List.mapi
           (fun i (c, yv) ->
             List.filter_map
               (fun (j : B.t) ->
                 if I.subset c (B.window j) then begin
                   let xv = Lp.add_var m (Printf.sprintf "x_%d_%d" i j.B.id) in
                   (* x_{j,c} <= y_c *)
                   Lp.add_constraint m [ (Q.one, xv); (Q.minus_one, yv) ] Lp.Le Q.zero;
                   Some (j.B.id, xv)
                 end
                 else None)
               jobs)
           y_vars)
    in
    List.iter
      (fun (j : B.t) ->
        let terms = List.filter_map (fun (id, xv) -> if id = j.B.id then Some (Q.one, xv) else None) x_vars in
        Lp.add_constraint m terms Lp.Ge j.B.length)
      jobs;
    Lp.set_objective m Lp.Minimize (List.map (fun (_, yv) -> (Q.one, yv)) y_vars);
    m

let lp_optimum ?(engine = Lp.default_engine) jobs =
  if jobs = [] then Q.zero
  else
    match Lp.solve ~engine (lp_model jobs) with
    | Lp.Optimal sol -> Lp.objective_value sol
    | Lp.Infeasible | Lp.Unbounded -> assert false (* window >= length per job *)

(* Per-cell machine counts for the bounded-g schedule derived from the
   unbounded solution (Theorem 7). Returns (total cost, per-cell list of
   (cell, active jobs, machines)). *)
let bounded ~g jobs =
  if g < 1 then invalid_arg "Preemptive.bounded: g < 1";
  let sol = unbounded jobs in
  let all_pieces = List.concat_map (fun a -> a.pieces) sol.assignments in
  let cells = Intervals.Demand.cells all_pieces in
  let detail =
    List.filter_map
      (fun (c : Intervals.Demand.cell) ->
        if c.Intervals.Demand.raw = 0 then None
        else begin
          let active =
            List.filter_map
              (fun a ->
                if List.exists (fun p -> I.overlaps p c.Intervals.Demand.cell) a.pieces then Some a.job
                else None)
              sol.assignments
          in
          let machines = (List.length active + g - 1) / g in
          Some (c.Intervals.Demand.cell, active, machines)
        end)
      cells
  in
  let cost =
    List.fold_left
      (fun acc (cell, _, machines) -> Q.add acc (Q.mul (Q.of_int machines) (I.length cell)))
      Q.zero detail
  in
  (cost, sol, detail)
