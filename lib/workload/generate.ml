(* Deterministic random instance generators (seeded with Random.State).

   The random families cover the structures the busy-time literature singles
   out: general windows with controlled slack, interval jobs, cliques (all
   windows share a point), proper instances (no window contains another) and
   laminar instances (windows nest). *)

module Q = Rational

type slotted_params = {
  n : int; (* number of jobs *)
  horizon : int; (* T: slots 1..T *)
  max_length : int;
  slack : int; (* extra window size beyond the length, at most *)
  g : int;
}

let default_slotted = { n = 10; horizon = 20; max_length = 4; slack = 4; g = 3 }

let slotted ?(params = default_slotted) ~seed () =
  let st = Random.State.make [| seed |] in
  let jobs =
    List.init params.n (fun id ->
        let length = 1 + Random.State.int st params.max_length in
        let slack = Random.State.int st (params.slack + 1) in
        let window = min params.horizon (length + slack) in
        let release = Random.State.int st (params.horizon - window + 1) in
        Slotted.job ~id ~release ~deadline:(release + window) ~length)
  in
  Slotted.make ~g:params.g jobs

(* Unit-length slotted jobs (the Chang–Gabow–Khuller special case). *)
let slotted_unit ?(horizon = 20) ?(g = 3) ~n ~seed () =
  let st = Random.State.make [| seed |] in
  let jobs =
    List.init n (fun id ->
        let window = 1 + Random.State.int st (max 1 (horizon / 3)) in
        let release = Random.State.int st (horizon - window + 1) in
        Slotted.job ~id ~release ~deadline:(release + window) ~length:1)
  in
  Slotted.make ~g jobs

type busy_params = {
  bn : int;
  bhorizon : int; (* integer grid for randomness; values stay rational-exact *)
  bmax_length : int;
  bslack : int; (* 0 makes every job an interval job *)
}

let default_busy = { bn = 12; bhorizon = 30; bmax_length = 6; bslack = 4 }

let busy_jobs ?(params = default_busy) ~seed () =
  let st = Random.State.make [| seed |] in
  List.init params.bn (fun id ->
      let length = 1 + Random.State.int st params.bmax_length in
      let slack = if params.bslack = 0 then 0 else Random.State.int st (params.bslack + 1) in
      let window = length + slack in
      let release = Random.State.int st (max 1 (params.bhorizon - window + 1)) in
      Bjob.of_ints ~id ~release ~deadline:(release + window) ~length)

let interval_jobs ?(n = 12) ?(horizon = 30) ?(max_length = 6) ~seed () =
  busy_jobs ~params:{ bn = n; bhorizon = horizon; bmax_length = max_length; bslack = 0 } ~seed ()

(* Clique: every window contains the common point [t]; here t = horizon/2. *)
let clique_interval_jobs ?(n = 12) ?(max_length = 6) ~seed () =
  let st = Random.State.make [| seed |] in
  let t = max_length + 1 in
  List.init n (fun id ->
      let length = 1 + Random.State.int st max_length in
      (* start in (t - length, t] so the interval covers point t - something *)
      let start = t - Random.State.int st length in
      Bjob.of_ints ~id ~release:start ~deadline:(start + length) ~length)

(* Proper: windows sorted by release also sorted by deadline, none
   contained in another. *)
let proper_interval_jobs ?(n = 12) ~seed () =
  let st = Random.State.make [| seed |] in
  let rec build id release deadline acc =
    if id >= n then List.rev acc
    else begin
      let release' = release + 1 + Random.State.int st 3 in
      let deadline' = max (deadline + 1 + Random.State.int st 3) (release' + 1) in
      let j = Bjob.of_ints ~id ~release:release' ~deadline:deadline' ~length:(deadline' - release') in
      build (id + 1) release' deadline' (j :: acc)
    end
  in
  build 0 0 0 []

(* Proper clique: releases strictly increasing, deadlines strictly
   increasing, and every interval contains the common point between the
   largest release and the smallest deadline. *)
let proper_clique_interval_jobs ?(n = 8) ~seed () =
  let st = Random.State.make [| seed |] in
  let releases = Array.init n (fun i -> i + Random.State.int st 2) in
  Array.sort compare releases;
  (* deadlines all beyond the last release *)
  let base = releases.(n - 1) + 1 in
  let deadlines = Array.init n (fun i -> base + i + Random.State.int st 3) in
  Array.sort compare deadlines;
  List.init n (fun i ->
      Bjob.of_ints ~id:i ~release:releases.(i) ~deadline:deadlines.(i)
        ~length:(deadlines.(i) - releases.(i)))

(* Laminar: any two windows are disjoint or nested. Built by recursive
   splitting of [0, span). *)
let laminar_interval_jobs ?(depth = 3) ?(span = 32) ~seed () =
  let st = Random.State.make [| seed |] in
  let jobs = ref [] in
  let next_id = ref 0 in
  let add lo hi =
    let id = !next_id in
    incr next_id;
    jobs := Bjob.of_ints ~id ~release:lo ~deadline:hi ~length:(hi - lo) :: !jobs
  in
  let rec go lo hi d =
    if hi - lo >= 2 && d > 0 then begin
      add lo hi;
      let mid = lo + 1 + Random.State.int st (hi - lo - 1) in
      if Random.State.bool st then go lo mid (d - 1);
      if Random.State.bool st then go mid hi (d - 1)
    end
    else if hi - lo >= 1 then add lo hi
  in
  go 0 span depth;
  List.rev !jobs

(* Interval jobs with random widths in 1..max_width (for the Khandekar
   width generalization). Returns (job, width) pairs. *)
let widthed_interval_jobs ?(n = 10) ?(horizon = 24) ?(max_length = 5) ?(max_width = 3) ~seed () =
  let st = Random.State.make [| seed |] in
  List.init n (fun id ->
      let length = 1 + Random.State.int st max_length in
      let release = Random.State.int st (max 1 (horizon - length + 1)) in
      let width = 1 + Random.State.int st max_width in
      (Bjob.of_ints ~id ~release ~deadline:(release + length) ~length, width))

(* Flexible jobs whose windows have multiplicative slack: window size is
   about [factor] times the length. *)
let flexible_jobs ?(n = 10) ?(horizon = 40) ?(max_length = 5) ?(slack_factor = 2) ~seed () =
  let st = Random.State.make [| seed |] in
  List.init n (fun id ->
      let length = 1 + Random.State.int st max_length in
      let window = min horizon (length * slack_factor) in
      let release = Random.State.int st (max 1 (horizon - window + 1)) in
      Bjob.of_ints ~id ~release ~deadline:(release + window) ~length)

(* Timed (online) slotted mix for the rolling-horizon simulator: the
   diurnal two-peak release pattern on the slot grid, where each job
   becomes known only [0..lead] slots before its release. Scales with
   params.n/params.horizon to make the "scaled synthetic mix" traces. *)
let timed_slotted ?(params = default_slotted) ?(lead = 4) ~seed () =
  let st = Random.State.make [| seed |] in
  let arrivals = ref [] in
  let jobs =
    List.init params.n (fun id ->
        let peak = if Random.State.bool st then params.horizon / 4 else 3 * params.horizon / 4 in
        let jitter = Random.State.int st (max 1 (params.horizon / 8)) - (params.horizon / 16) in
        let length = 1 + Random.State.int st params.max_length in
        let slack = Random.State.int st (params.slack + 1) in
        let window = min params.horizon (length + slack) in
        let release = max 0 (min (params.horizon - window) (peak + jitter)) in
        let arrival = max 0 (release - Random.State.int st (lead + 1)) in
        arrivals := (id, arrival) :: !arrivals;
        Slotted.job ~id ~release ~deadline:(release + window) ~length)
  in
  (Slotted.make ~g:params.g jobs, List.rev !arrivals)

(* Diurnal (data-center-like) flexible jobs: releases cluster around two
   daily peaks at 1/4 and 3/4 of the horizon, mimicking a morning and an
   evening batch wave. *)
let diurnal_flexible_jobs ?(n = 20) ?(horizon = 48) ?(max_length = 6) ~seed () =
  let st = Random.State.make [| seed |] in
  List.init n (fun id ->
      let peak = if Random.State.bool st then horizon / 4 else 3 * horizon / 4 in
      let jitter = Random.State.int st (max 1 (horizon / 8)) - (horizon / 16) in
      let length = 1 + Random.State.int st max_length in
      let release = max 0 (min (horizon - length - 1) (peak + jitter)) in
      let slack = Random.State.int st (max 1 (horizon / 6)) in
      let deadline = min horizon (release + length + slack) in
      let deadline = max deadline (release + length) in
      Bjob.of_ints ~id ~release ~deadline ~length)
