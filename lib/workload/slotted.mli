(** Slotted (active-time) instances — Section 1.1 of the paper.

    Time is slotted: slot [t] is the unit interval [\[t-1, t)]. A job with
    release [r], deadline [d] and length [p] may occupy the slots
    [{r+1, ..., d}], at most one unit per slot (integral preemption), and
    needs [p] of them. An instance also fixes the machine capacity [g]:
    at most [g] job units in any active slot. *)

type job = private { id : int; release : int; deadline : int; length : int }

type t = { jobs : job array; g : int }

(** Smart constructor. Raises [Invalid_argument] when [length < 1],
    [release < 0], or the window is shorter than the length. *)
val job : id:int -> release:int -> deadline:int -> length:int -> job

(** Slots of the job's window, increasing: [{release+1, ..., deadline}]. *)
val window_slots : job -> int list

(** [deadline - release]. *)
val window_size : job -> int

(** A job is rigid when its window has no slack ([window_size = length]). *)
val is_rigid : job -> bool

(** Raises [Invalid_argument] when [g < 1]. *)
val make : g:int -> job list -> t

val num_jobs : t -> int

(** Total work [P = sum of lengths]. *)
val total_length : t -> int

(** Latest relevant slot [T = max deadline] (0 when empty). *)
val horizon : t -> int

(** Slots belonging to at least one window, sorted. *)
val relevant_slots : t -> int list

(** [ceil(P / g)], a lower bound on any solution's active time. *)
val mass_lower_bound : t -> int

(** [is_live j ~slot] iff [slot] is in [j]'s window (Definition 1). *)
val is_live : job -> slot:int -> bool

val pp_job : Format.formatter -> job -> unit
val pp : Format.formatter -> t -> unit

(** A schedule assigns each job the sorted list of slots it occupies. *)
type schedule = (int * int list) list

(** Full validation of a schedule: every job present exactly once,
    correct length, inside its window, no slot over capacity. Returns a
    description of the first violation, or [None] when valid. *)
val check_schedule : t -> schedule -> string option

(** Sorted distinct slots used by a schedule. *)
val active_slots : schedule -> int list
