(** Busy-time jobs — Section 4.1 of the paper.

    Release, deadline and length are exact rationals (the model allows
    real values, and the paper's tight instances need exact epsilons). A
    job is an {e interval job} (Definition 8) when its window has no
    slack; otherwise it is {e flexible} and must be pinned to a start time
    before the interval-job algorithms apply (see {!Busy.Placement}). *)

type t = private { id : int; release : Rational.t; deadline : Rational.t; length : Rational.t }

(** Raises [Invalid_argument] when [length <= 0] or the window is shorter
    than the length. *)
val make : id:int -> release:Rational.t -> deadline:Rational.t -> length:Rational.t -> t

(** Interval job at a fixed position: window [\[start, start+length)]. *)
val interval : id:int -> start:Rational.t -> length:Rational.t -> t

val of_ints : id:int -> release:int -> deadline:int -> length:int -> t

(** [deadline = release + length]. *)
val is_interval : t -> bool

(** The window [\[release, deadline)]. *)
val window : t -> Intervals.Interval.t

(** The occupied interval of an interval job; raises [Invalid_argument]
    on a flexible job. *)
val interval_of : t -> Intervals.Interval.t

(** [deadline - length]. *)
val latest_start : t -> Rational.t

(** [place j start] pins a flexible job, producing an interval job with
    the same id and length. Raises [Invalid_argument] when [start] is
    outside [\[release, deadline - length\]]. *)
val place : t -> Rational.t -> t

(** Sum of lengths — the mass [l(J)]. *)
val total_length : t list -> Rational.t

val pp : Format.formatter -> t -> unit
