(* The paper's adversarial instances, one constructor per figure.

   Each constructor documents the instance, its optimal cost and the bad
   cost the paper derives; benches E1/E3/E5/E6/E7/E8 re-measure these. *)

module Q = Rational
module I = Intervals.Interval

(* ---------------------------------------------------------------------- *)
(* Fig. 3 — minimal feasible solutions can cost ~3 OPT (active time).      *)
(* Jobs: two length-g jobs with windows [0,2g) and [g,3g); g-2 rigid jobs  *)
(* of length g-2 with window [g+1,2g-1); g-2 unit jobs with window         *)
(* [g+1,2g); g-2 unit jobs with window [g,2g-1). OPT = g (open [g,2g)); a  *)
(* minimal feasible solution can cost 3g - O(1).                           *)
(* ---------------------------------------------------------------------- *)

let minimal_feasible_tight g =
  if g < 3 then invalid_arg "Gadgets.minimal_feasible_tight: needs g >= 3";
  let jobs = ref [] in
  let id = ref 0 in
  let add ~release ~deadline ~length =
    jobs := Slotted.job ~id:!id ~release ~deadline ~length :: !jobs;
    incr id
  in
  add ~release:0 ~deadline:(2 * g) ~length:g;
  add ~release:g ~deadline:(3 * g) ~length:g;
  for _ = 1 to g - 2 do
    add ~release:(g + 1) ~deadline:((2 * g) - 1) ~length:(g - 2)
  done;
  for _ = 1 to g - 2 do
    add ~release:(g + 1) ~deadline:(2 * g) ~length:1
  done;
  for _ = 1 to g - 2 do
    add ~release:g ~deadline:((2 * g) - 1) ~length:1
  done;
  Slotted.make ~g (List.rev !jobs)

(* The adversarial minimal open-slot set of Fig. 3: slots 1..g for the
   first long job, the full middle window (slots g+2 .. 2g-1, kept full by
   the rigid and unit jobs), and slots 2g+1..3g for the second long job.

   Note: the paper's prose places the long jobs at [1, g+1) and
   [2g-1, 3g-1), but those regions share slots g+1 / 2g with the unit
   jobs' windows, which lets the unit jobs escape the middle under
   reassignment and makes the set non-minimal. Shifting the long jobs one
   slot outward ([0, g) and [2g, 3g)) seals the escape: the resulting set
   is genuinely minimal (Definition 4) with cost 3g - 2. *)
let minimal_feasible_tight_bad_slots g =
  let range a b = List.init (b - a + 1) (fun i -> a + i) in
  range 1 g @ range (g + 2) ((2 * g) - 1) @ range ((2 * g) + 1) (3 * g)

(* Optimal active-slot set of Fig. 3: the window [g, 2g), i.e. slots
   g+1 .. 2g. *)
let minimal_feasible_tight_opt_slots g = List.init g (fun i -> g + 1 + i)

(* ---------------------------------------------------------------------- *)
(* Branch-and-bound stress gadget (not from the paper): [groups] disjoint  *)
(* groups of g+1 unit jobs sharing a window of [width] slots. Every group  *)
(* needs exactly 2 open slots (g+1 units against capacity g), but any 2 of *)
(* its [width] slots do, so the mass bound ceil(groups*(g+1)/g) sits far   *)
(* below OPT = 2*groups and the flow pruning only bites deep in the tree:  *)
(* the search is near-exhaustive over ~ C(width,2)^groups combinations.    *)
(* Empirically (g=2): groups=5, width=6 -> ~7.1e6 nodes; each extra group  *)
(* multiplies the count by ~16.                                            *)
(* ---------------------------------------------------------------------- *)

let bb_hard ~g ~groups ~width =
  if g < 1 then invalid_arg "Gadgets.bb_hard: needs g >= 1";
  if groups < 1 then invalid_arg "Gadgets.bb_hard: needs groups >= 1";
  if width < 2 then invalid_arg "Gadgets.bb_hard: needs width >= 2";
  let jobs = ref [] in
  let id = ref 0 in
  for k = 0 to groups - 1 do
    let release = k * width in
    for _ = 1 to g + 1 do
      jobs := Slotted.job ~id:!id ~release ~deadline:(release + width) ~length:1 :: !jobs;
      incr id
    done
  done;
  Slotted.make ~g (List.rev !jobs)

(* ---------------------------------------------------------------------- *)
(* Sparse-wide LP family (methodology, not from the paper): [blocks]       *)
(* disjoint windows of [width] slots, block b carrying g+1 unit jobs with  *)
(* nested windows (job i starts min(i, width-2) slots into the block).     *)
(* LP1 over this instance is block diagonal — every nonzero stays inside   *)
(* its block, and the only containments are the nestings within one block  *)
(* — so a simplex over sparse LU basis factors does O(block nnz) work per  *)
(* pivot where the dense tableau algebra pays O(rows * cols) over the      *)
(* whole program. The LP1 optimum is exactly blocks * (g+1)/g: open the    *)
(* last two slots of every block at y = (g+1)/2g (every nested window      *)
(* contains both) and split every job evenly across them — the per-slot    *)
(* load (g+1)/2 meets capacity g*y with equality, and the mass bound       *)
(* (g+1)/g per block shows nothing cheaper exists.                         *)
(* ---------------------------------------------------------------------- *)

let sparse_wide ~g ~blocks ~width =
  if g < 1 then invalid_arg "Gadgets.sparse_wide: needs g >= 1";
  if blocks < 1 then invalid_arg "Gadgets.sparse_wide: needs blocks >= 1";
  if width < 2 then invalid_arg "Gadgets.sparse_wide: needs width >= 2";
  let jobs = ref [] in
  let id = ref 0 in
  for b = 0 to blocks - 1 do
    let base = b * width in
    for i = 0 to g do
      let off = min i (width - 2) in
      jobs := Slotted.job ~id:!id ~release:(base + off) ~deadline:(base + width) ~length:1 :: !jobs;
      incr id
    done
  done;
  Slotted.make ~g (List.rev !jobs)

let sparse_wide_lp_opt ~g ~blocks = Q.of_ints (blocks * (g + 1)) g

(* ---------------------------------------------------------------------- *)
(* Tall LP family (methodology, not from the paper): [jobs] identical     *)
(* jobs of [length] slots all sharing the single window [0, T] with       *)
(* T = ceil(jobs * length / g). One window means LP1 is tall and dense:   *)
(* every job's demand row touches every slot, so each simplex iteration   *)
(* chooses among many structurally similar columns — exactly where        *)
(* pricing policy (not sparsity) decides the pivot count. The LP1 optimum *)
(* is the mass bound jobs * length / g: spread uniformly with             *)
(* y_t = jobs*length/(g*T) and x_jt = length/T — capacity is met with     *)
(* equality, x_jt <= y_t needs jobs >= g, and y_t <= 1 by the choice of   *)
(* T; nothing cheaper exists since sum y >= mass/g always.                *)
(* ---------------------------------------------------------------------- *)

let lp1_tall ~g ~jobs ~length =
  if g < 1 then invalid_arg "Gadgets.lp1_tall: needs g >= 1";
  if jobs < g then invalid_arg "Gadgets.lp1_tall: needs jobs >= g";
  if length < 1 then invalid_arg "Gadgets.lp1_tall: needs length >= 1";
  let horizon = ((jobs * length) + g - 1) / g in
  let js =
    List.init jobs (fun id -> Slotted.job ~id ~release:0 ~deadline:horizon ~length)
  in
  Slotted.make ~g js

let lp1_tall_lp_opt ~g ~jobs ~length = Q.of_ints (jobs * length) g

(* ---------------------------------------------------------------------- *)
(* Fig. 1 — the paper's opening example: seven interval jobs that pack    *)
(* optimally onto two machines with g = 3.                                 *)
(* ---------------------------------------------------------------------- *)

let figure_one () =
  let mk id start len = Bjob.interval ~id ~start:(Q.of_int start) ~length:(Q.of_int len) in
  (* machine 1: {1,2,3,4} (peak 3), busy 6; machine 2: {5,6,7}, busy 5 *)
  [ mk 1 0 6; mk 2 0 3; mk 3 3 3; mk 4 1 4; mk 5 2 5; mk 6 2 2; mk 7 5 2 ]

let figure_one_packing jobs =
  let by_id i = List.find (fun (j : Bjob.t) -> j.Bjob.id = i) jobs in
  [ [ by_id 1; by_id 2; by_id 3; by_id 4 ]; [ by_id 5; by_id 6; by_id 7 ] ]

(* ---------------------------------------------------------------------- *)
(* Section 3.5 — LP integrality gap 2 (active time).                       *)
(* g pairs of adjacent slots; pair i carries g+1 unit jobs restricted to   *)
(* that pair. IP cost = 2g, LP cost = g + 1.                               *)
(* ---------------------------------------------------------------------- *)

let integrality_gap g =
  if g < 1 then invalid_arg "Gadgets.integrality_gap: needs g >= 1";
  let jobs = ref [] in
  let id = ref 0 in
  for pair = 0 to g - 1 do
    let release = 2 * pair in
    for _ = 1 to g + 1 do
      jobs := Slotted.job ~id:!id ~release ~deadline:(release + 2) ~length:1 :: !jobs;
      incr id
    done
  done;
  Slotted.make ~g (List.rev !jobs)

(* ---------------------------------------------------------------------- *)
(* Fig. 6/7 — GreedyTracking approaches factor 3 (busy time).              *)
(* g disjoint gadgets; gadget k holds g unit interval jobs at [a, a+1) and *)
(* g unit interval jobs at [a+1-e, a+2-e); 2g flexible jobs of length      *)
(* 1 - e/2 whose windows span all gadgets. OPT = 2g + 2 - e.               *)
(* ---------------------------------------------------------------------- *)

type greedy_tracking_gadget = {
  gt_instance : Bjob.t list; (* flexible + interval jobs, original windows *)
  gt_adversarial : Bjob.t list; (* the Fig. 7 placement: all jobs pinned *)
  gt_opt_packing : Bjob.t list list; (* an explicit near-optimal packing *)
  gt_opt_cost : Q.t; (* its cost: 2g + 2 - eps + O(delta) *)
}

(* The paper's bad run relies on tie-breaking inside GreedyTracking: unit
   tracks that mix the two blocks of every gadget, and the two flexible
   jobs of a gadget placed at opposite extremes of their feasible range.
   We realize it deterministically: copy r (r = 1..2g) of every gadget
   belongs to block (r-1) mod 2 and has length 1 + (2g - r) * delta for a
   delta << eps, so the r-th maximum-length track collects exactly the
   rank-r copies - consecutive tracks alternate blocks and every bundle of
   g tracks spans both blocks of every gadget (~ 2 - eps per gadget,
   against 1 per machine in OPT). The flexible pair per gadget sits at
   a + eps/2 and a + 1 - eps, spanning ~ 2 - 2 eps together. Total
   ~ (6 - o(eps)) g versus OPT ~ 2g + 2 - eps: ratio -> 3 (Fig. 6/7). *)
let greedy_tracking_tight ~g ~eps =
  if g < 2 then invalid_arg "Gadgets.greedy_tracking_tight: needs g >= 2";
  if Q.compare eps Q.zero <= 0 || Q.compare eps Q.half > 0 then
    invalid_arg "Gadgets.greedy_tracking_tight: eps must be in (0, 1/2]";
  let id = ref 0 in
  let fresh () =
    let v = !id in
    incr id;
    v
  in
  let delta = Q.div eps (Q.of_int (8 * g * g)) in
  let gadget_span = Q.sub Q.two eps in
  (* leave a unit gap between gadgets *)
  let offset k = Q.mul (Q.of_int k) (Q.add gadget_span Q.one) in
  (* per gadget: copies ranked 1..2g, rank r in block (r-1) mod 2 *)
  let block_start a b = if b = 0 then a else Q.sub (Q.add a Q.one) eps in
  let copy_length r = Q.add Q.one (Q.mul (Q.of_int ((2 * g) - r)) delta) in
  let unit_jobs =
    List.concat
      (List.init g (fun k ->
           let a = offset k in
           List.init (2 * g) (fun r0 ->
               let r = r0 + 1 in
               let b = (r - 1) mod 2 in
               Bjob.interval ~id:(fresh ()) ~start:(block_start a b) ~length:(copy_length r))))
  in
  let flex_len = Q.sub Q.one (Q.div eps Q.two) in
  let total_end = Q.add (Q.add (offset (g - 1)) gadget_span) Q.one in
  let flexible =
    List.init (2 * g) (fun _ -> Bjob.make ~id:(fresh ()) ~release:Q.zero ~deadline:total_end ~length:flex_len)
  in
  (* adversarial flexible placement: gadget k gets one copy at a + eps/2
     and one at a + 1 - eps; both intersect every copy of the gadget *)
  let adversarial_flexible =
    List.concat
      (List.init g (fun k ->
           let a = offset k in
           [ Bjob.place (List.nth flexible (2 * k)) (Q.add a (Q.div eps Q.two));
             Bjob.place (List.nth flexible ((2 * k) + 1)) (Q.sub (Q.add a Q.one) eps) ]))
  in
  (* near-optimal packing of the same (adversarially placed) jobs: one
     machine per gadget block (g copies each), flexible jobs on two
     machines of g *)
  let adversarial = unit_jobs @ adversarial_flexible in
  let block_bundles =
    List.concat
      (List.init g (fun k ->
           let a = offset k in
           let in_block b (j : Bjob.t) =
             Q.equal j.Bjob.release (block_start a b) && Q.compare j.Bjob.length (Q.add Q.one eps) < 0
           in
           [ List.filter (in_block 0) unit_jobs; List.filter (in_block 1) unit_jobs ]))
  in
  (* OPT places every flexible job at 0 (their windows allow it): two
     machines of g identical jobs, 1 - eps/2 busy each *)
  let opt_flexible = List.map (fun f -> Bjob.place f Q.zero) flexible in
  let flex_bundles =
    [ List.filteri (fun i _ -> i < g) opt_flexible; List.filteri (fun i _ -> i >= g) opt_flexible ]
  in
  let gt_opt_packing = block_bundles @ flex_bundles in
  let gt_opt_cost =
    List.fold_left
      (fun acc b -> Q.add acc (Intervals.span (List.map Bjob.interval_of b)))
      Q.zero gt_opt_packing
  in
  { gt_instance = unit_jobs @ flexible; gt_adversarial = adversarial; gt_opt_packing; gt_opt_cost }

(* ---------------------------------------------------------------------- *)
(* Fig. 8 — the interval-job 2-approximations are tight (busy time, g=2).  *)
(* Two unit jobs at [0,1); an eps job at [1, 1+e); an eps' job at          *)
(* [1, 1+e'); an (e-e') job at [1+e', 1+e). OPT = 1 + e; a bad run of the  *)
(* Kumar–Rudra / Alicherry–Bhatia algorithms costs 2 + e + e'.             *)
(* ---------------------------------------------------------------------- *)

type two_approx_gadget = { ta_jobs : Bjob.t list; ta_g : int; ta_opt_cost : Q.t }

let two_approx_tight ~eps ~eps' =
  if not (Q.compare Q.zero eps' < 0 && Q.compare eps' eps < 0 && Q.compare eps Q.one < 0) then
    invalid_arg "Gadgets.two_approx_tight: need 0 < eps' < eps < 1";
  let mk id start length = Bjob.interval ~id ~start ~length in
  let jobs =
    [ mk 0 Q.zero Q.one;
      mk 1 Q.zero Q.one;
      mk 2 Q.one eps;
      mk 3 Q.one eps';
      mk 4 (Q.add Q.one eps') (Q.sub eps eps') ]
  in
  { ta_jobs = jobs; ta_g = 2; ta_opt_cost = Q.add Q.one eps }

(* ---------------------------------------------------------------------- *)
(* Fig. 9 — the span-minimizing placement can double the demand profile.   *)
(* One unit interval job at [0,1); sets i = 1..g-1 of g identical interval *)
(* jobs of length 1+ie, laid out consecutively; flexible job i of length   *)
(* 1+ie with window from 0 to the end of set i. The adversarial placement  *)
(* stacks flexible i exactly onto set i (profile ~ 2g-1); the optimal      *)
(* structure starts every flexible job at 0 (profile ~ g).                 *)
(* ---------------------------------------------------------------------- *)

type dp_profile_gadget = {
  dp_instance : Bjob.t list;
  dp_adversarial : Bjob.t list; (* flexible i stacked on set i *)
  dp_optimal : Bjob.t list; (* flexible jobs at start 0 *)
  dp_g : int;
}

let dp_profile_tight ~g ~eps =
  if g < 2 then invalid_arg "Gadgets.dp_profile_tight: needs g >= 2";
  if Q.compare eps Q.zero <= 0 then invalid_arg "Gadgets.dp_profile_tight: eps <= 0";
  let unit_job = Bjob.interval ~id:0 ~start:Q.zero ~length:Q.one in
  let set_len i = Q.add Q.one (Q.mul (Q.of_int i) eps) in
  (* set i (1-based) starts at s_i with s_1 = 1 and s_{i+1} = s_i + len_i *)
  let set_start = Array.make (g + 1) Q.zero in
  set_start.(1) <- Q.one;
  for i = 2 to g - 1 do
    set_start.(i) <- Q.add set_start.(i - 1) (set_len (i - 1))
  done;
  let id = ref 1 in
  let fresh () =
    let v = !id in
    incr id;
    v
  in
  let sets =
    List.concat
      (List.init (g - 1) (fun idx ->
           let i = idx + 1 in
           List.init g (fun _ -> Bjob.interval ~id:(fresh ()) ~start:set_start.(i) ~length:(set_len i))))
  in
  let set_end i = Q.add set_start.(i) (set_len i) in
  let flexible =
    List.init (g - 1) (fun idx ->
        let i = idx + 1 in
        Bjob.make ~id:(fresh ()) ~release:Q.zero ~deadline:(set_end i) ~length:(set_len i))
  in
  let adversarial_flex =
    List.mapi (fun idx f -> Bjob.place f set_start.(idx + 1)) flexible
  in
  let optimal_flex = List.map (fun f -> Bjob.place f Q.zero) flexible in
  { dp_instance = (unit_job :: sets) @ flexible;
    dp_adversarial = (unit_job :: sets) @ adversarial_flex;
    dp_optimal = (unit_job :: sets) @ optimal_flex;
    dp_g = g }

(* ---------------------------------------------------------------------- *)
(* Fig. 10–12 — extending the 2-approximation to flexible jobs is only     *)
(* 4-approximate. One unit interval job at [0,1); g-1 disjoint gadgets     *)
(* (g unit interval jobs + small e/e' jobs at their right edge); g-1 unit  *)
(* flexible jobs spanning everything. The adversarial placement packs one  *)
(* flexible job over each gadget.                                          *)
(* ---------------------------------------------------------------------- *)

type four_approx_gadget = {
  fa_instance : Bjob.t list;
  fa_adversarial : Bjob.t list;
  fa_g : int;
  fa_opt_cost_approx : Q.t; (* g + O(eps) *)
  fa_bad_packing : Bjob.t list list;
      (* a valid packing of the adversarially converted instance realizing
         the paper's factor-4 run (Fig. 12): the g+1 unit-length items of
         each gadget split across four machines, cost 1 + 4(g-1) + O(eps) *)
}

let four_approx_tight ~g ~eps ~eps' =
  if g < 2 then invalid_arg "Gadgets.four_approx_tight: needs g >= 2";
  if not (Q.compare Q.zero eps' < 0 && Q.compare eps' eps < 0 && Q.compare eps Q.half <= 0) then
    invalid_arg "Gadgets.four_approx_tight: need 0 < eps' < eps <= 1/2";
  let id = ref 0 in
  let fresh () =
    let v = !id in
    incr id;
    v
  in
  let first = Bjob.interval ~id:(fresh ()) ~start:Q.zero ~length:Q.one in
  (* gadget k (k = 1..g-1) occupies [base, base + 1 + eps); spaced by 1 *)
  let gadget_width = Q.add Q.one eps in
  let base k = Q.add (Q.of_int (2 * k)) Q.zero in
  let gadget k =
    let a = base k in
    let unit_jobs = List.init g (fun _ -> Bjob.interval ~id:(fresh ()) ~start:a ~length:Q.one) in
    let tail = Q.add a Q.one in
    let eps_jobs = List.init ((2 * g) - 2) (fun _ -> Bjob.interval ~id:(fresh ()) ~start:tail ~length:eps) in
    let eps'_jobs = List.init 2 (fun _ -> Bjob.interval ~id:(fresh ()) ~start:tail ~length:eps') in
    let rest_jobs =
      List.init 2 (fun _ -> Bjob.interval ~id:(fresh ()) ~start:(Q.add tail eps') ~length:(Q.sub eps eps'))
    in
    (unit_jobs, eps_jobs @ eps'_jobs @ rest_jobs)
  in
  let structured = List.init (g - 1) (fun k -> gadget (k + 1)) in
  let gadgets = List.concat_map (fun (u, s) -> u @ s) structured in
  let total_end = Q.add (base (g - 1)) gadget_width in
  let flexible =
    List.init (g - 1) (fun _ -> Bjob.make ~id:(fresh ()) ~release:Q.zero ~deadline:total_end ~length:Q.one)
  in
  let adversarial_flex = List.mapi (fun k f -> Bjob.place f (base (k + 1))) flexible in
  let fa_opt_cost_approx = Q.add (Q.of_int g) (Q.mul (Q.of_int (g - 1)) eps) in
  (* Fig. 12 certificate: per gadget, the g+1 unit-length items (its g unit
     jobs + its pinned flexible job) are split across min(4, g+1) machines,
     each busy ~1; small jobs round-robin over the same machines. *)
  let round_robin k items =
    let buckets = Array.make k [] in
    List.iteri (fun i x -> buckets.(i mod k) <- x :: buckets.(i mod k)) items;
    Array.to_list buckets
  in
  let fa_bad_packing =
    [ first ]
    :: List.concat
         (List.mapi
            (fun k (units, smalls) ->
              let flex = List.nth adversarial_flex k in
              let machines = min 4 (g + 1) in
              let unit_groups = round_robin machines (flex :: units) in
              let small_groups = round_robin machines smalls in
              List.map2 (fun u s -> u @ s) unit_groups small_groups)
            structured)
  in
  { fa_instance = (first :: gadgets) @ flexible;
    fa_adversarial = (first :: gadgets) @ adversarial_flex;
    fa_g = g;
    fa_opt_cost_approx;
    fa_bad_packing }

(* -- ill-conditioned LP family (methodology, not from the paper) --------- *)

type float_trap_gadget = {
  ft_pairs : int;
  ft_ulp_exp : int;
  ft_vars : string list;
  ft_obj : Q.t list;
  ft_rows : (Q.t list * Q.t) list;
  ft_opt : Q.t;
}

let float_trap ~pairs ~ulp_exp =
  if pairs < 1 then invalid_arg "Gadgets.float_trap: needs pairs >= 1";
  if ulp_exp < 1 || ulp_exp > 60 then invalid_arg "Gadgets.float_trap: needs 1 <= ulp_exp <= 60";
  let bonus = Q.add Q.one (Q.of_ints 1 (1 lsl ulp_exp)) in
  let nv = 2 * pairs in
  let vars =
    List.concat (List.init pairs (fun k -> [ Printf.sprintf "y%d" k; Printf.sprintf "x%d" k ]))
  in
  (* y before x in every pair: a first-index tie-break must pick y *)
  let obj = List.concat (List.init pairs (fun _ -> [ Q.one; bonus ])) in
  let rows =
    List.init pairs (fun k ->
        (List.init nv (fun j -> if j = 2 * k || j = (2 * k) + 1 then Q.one else Q.zero), Q.one))
  in
  {
    ft_pairs = pairs;
    ft_ulp_exp = ulp_exp;
    ft_vars = vars;
    ft_obj = obj;
    ft_rows = rows;
    ft_opt = Q.mul (Q.of_int pairs) bonus;
  }
