(* Plain-text instance files.

   Slotted (active-time) instances:

     slotted
     g 3
     job 0 0 6 3        # job <id> <release> <deadline> <length>

   Busy-time instances (rational coordinates allowed: "5/2", "0.25"):

     busy
     job 0 0 5/2 1

   '#' starts a comment; blank lines are ignored. *)

module Q = Rational

type instance = Slotted_instance of Slotted.t | Busy_instance of Bjob.t list

let strip_comment line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line

(* Split on any whitespace run (spaces, tabs, carriage returns), so
   tab-separated instance files parse the same as space-separated ones. *)
let tokens_of_line line =
  let line = strip_comment line in
  let n = String.length line in
  let is_space = function ' ' | '\t' | '\r' | '\012' -> true | _ -> false in
  let rec go i acc =
    if i >= n then List.rev acc
    else if is_space line.[i] then go (i + 1) acc
    else begin
      let j = ref i in
      while !j < n && not (is_space line.[!j]) do
        incr j
      done;
      go !j (String.sub line i (!j - i) :: acc)
    end
  in
  go 0 []

exception Parse_error of int * string

let parse_error lineno fmt = Printf.ksprintf (fun msg -> raise (Parse_error (lineno, msg))) fmt

(* Shared line-by-line parser. [on_error] decides the failure policy:
   the strict entry points re-raise (first bad line aborts), the lenient
   ones record the error and keep going — the same per-item error
   discipline the serve daemon applies to its request stream, so one
   typo in a large instance file degrades to a warning instead of
   aborting the whole run. Whole-file problems (missing header, missing
   capacity) stay fatal in both modes: there is nothing to continue
   with. *)
let parse_line ~kind ~g ~slotted_jobs ~busy_jobs ~arrivals ~lineno line =
  match tokens_of_line line with
      | [] -> ()
      | [ "slotted" ] -> kind := Some `Slotted
      | [ "busy" ] -> kind := Some `Busy
      | [ "g"; v ] -> (
          match int_of_string_opt v with
          | Some n when n >= 1 -> g := Some n
          | _ -> parse_error lineno "invalid capacity %S" v)
      | "job" :: rest -> (
          (* Optional trailing [arrival <t>] pair: when the job appears in
             the online stream (rolling-horizon replay) rather than being
             known at time 0. Integer slots, like the epoch clock. *)
          let rest, arrival =
            match rest with
            | [ id; r; d; p; "arrival"; t ] -> (
                match int_of_string_opt t with
                | Some a when a >= 0 -> ([ id; r; d; p ], Some a)
                | _ -> parse_error lineno "invalid arrival %S (want a nonnegative integer)" t)
            | _ -> (rest, None)
          in
          let record id = match arrival with Some a -> arrivals := (id, a) :: !arrivals | None -> () in
          match (!kind, rest) with
          | None, _ -> parse_error lineno "job before header ('slotted' or 'busy')"
          | Some `Slotted, [ id; r; d; p ] -> (
              match (int_of_string_opt id, int_of_string_opt r, int_of_string_opt d, int_of_string_opt p) with
              | Some id, Some release, Some deadline, Some length -> (
                  try
                    slotted_jobs := Slotted.job ~id ~release ~deadline ~length :: !slotted_jobs;
                    record id
                  with Invalid_argument msg -> parse_error lineno "%s" msg)
              | _ -> parse_error lineno "slotted jobs need four integers")
          | Some `Busy, [ id; r; d; p ] -> (
              match int_of_string_opt id with
              | None -> parse_error lineno "invalid job id %S" id
              | Some id -> (
                  try
                    busy_jobs :=
                      Bjob.make ~id ~release:(Q.of_string r) ~deadline:(Q.of_string d) ~length:(Q.of_string p)
                      :: !busy_jobs;
                    record id
                  with
                  | Invalid_argument msg | Failure msg -> parse_error lineno "%s" msg
                  | Division_by_zero ->
                      (* Rational.of_string rejects "1/0" as Invalid_argument,
                         but keep the arithmetic escape hatch covered too: a
                         bad coordinate must never abort the caller *)
                      parse_error lineno "zero denominator in job coordinates"))
          | Some _, _ -> parse_error lineno "jobs need four fields: id release deadline length")
      | tok :: _ -> parse_error lineno "unknown directive %S" tok

let parse_lines_gen ~on_error lines =
  let kind = ref None in
  let g = ref None in
  let slotted_jobs = ref [] in
  let busy_jobs = ref [] in
  let arrivals = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      try parse_line ~kind ~g ~slotted_jobs ~busy_jobs ~arrivals ~lineno line
      with Parse_error (l, msg) -> on_error l msg)
    lines;
  match !kind with
  | None -> raise (Parse_error (0, "missing header ('slotted' or 'busy')"))
  | Some `Slotted ->
      let g = match !g with Some g -> g | None -> raise (Parse_error (0, "slotted instances need 'g <capacity>'")) in
      (Slotted_instance (Slotted.make ~g (List.rev !slotted_jobs)), List.rev !arrivals)
  | Some `Busy -> (Busy_instance (List.rev !busy_jobs), List.rev !arrivals)

let parse_lines lines =
  fst (parse_lines_gen ~on_error:(fun l msg -> raise (Parse_error (l, msg))) lines)

let parse_lines_timed lines =
  parse_lines_gen ~on_error:(fun l msg -> raise (Parse_error (l, msg))) lines

let parse_lines_lenient lines =
  let errors = ref [] in
  match parse_lines_gen ~on_error:(fun l msg -> errors := (l, msg) :: !errors) lines with
  | instance, _ -> Ok (instance, List.rev !errors)
  | exception Parse_error (l, msg) -> Error (l, msg)

let arrival arrivals id = match List.assoc_opt id arrivals with Some a -> a | None -> 0
let parse_string s = parse_lines (String.split_on_char '\n' s)
let parse_string_timed s = parse_lines_timed (String.split_on_char '\n' s)
let parse_string_lenient s = parse_lines_lenient (String.split_on_char '\n' s)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)

let parse_file path = parse_lines (read_lines path)
let parse_file_timed path = parse_lines_timed (read_lines path)
let parse_file_lenient path = parse_lines_lenient (read_lines path)

let to_string ?(arrivals = []) instance =
  let suffix id = match List.assoc_opt id arrivals with
    | Some a when a > 0 -> Printf.sprintf " arrival %d" a
    | _ -> ""
  in
  match instance with
  | Slotted_instance inst ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "slotted\n";
      Buffer.add_string buf (Printf.sprintf "g %d\n" inst.Slotted.g);
      Array.iter
        (fun (j : Slotted.job) ->
          Buffer.add_string buf
            (Printf.sprintf "job %d %d %d %d%s\n" j.Slotted.id j.Slotted.release j.Slotted.deadline
               j.Slotted.length (suffix j.Slotted.id)))
        inst.Slotted.jobs;
      Buffer.contents buf
  | Busy_instance jobs ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "busy\n";
      List.iter
        (fun (j : Bjob.t) ->
          Buffer.add_string buf
            (Printf.sprintf "job %d %s %s %s%s\n" j.Bjob.id (Q.to_string j.Bjob.release)
               (Q.to_string j.Bjob.deadline) (Q.to_string j.Bjob.length) (suffix j.Bjob.id)))
        jobs;
      Buffer.contents buf

let write_file ?arrivals path instance =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string ?arrivals instance))
