(** The paper's adversarial instances, one constructor per figure.

    Every construction is parameterized exactly as in the paper (capacity
    [g], epsilons) and returns enough structure for the benches to measure
    the claimed tight ratios; see DESIGN.md's per-experiment index. *)

(** {1 Fig. 3 — minimal feasible solutions can cost ~3 OPT (Theorem 1)} *)

(** The active-time instance: two length-[g] jobs, [g-2] rigid jobs of
    length [g-2], and two groups of [g-2] unit jobs. OPT = [g]. Raises
    [Invalid_argument] when [g < 3]. *)
val minimal_feasible_tight : int -> Slotted.t

(** The adversarial {e minimal} open-slot set of cost [3g-2]. Note: the
    paper's prose regions ([\[1, g+1)] and [\[2g-1, 3g-1)]) share boundary
    slots with the unit jobs' windows and are not actually minimal under
    flow reassignment; this set shifts the long jobs one slot outward,
    sealing the escape (same asymptotics). *)
val minimal_feasible_tight_bad_slots : int -> int list

(** The optimal slot set [\[g, 2g)] (slots [g+1..2g]) of cost [g]. *)
val minimal_feasible_tight_opt_slots : int -> int list

(** {1 Branch-and-bound stress instance (not from the paper)} *)

(** [bb_hard ~g ~groups ~width]: [groups] disjoint groups of [g+1] unit
    jobs, each group sharing a window of [width] slots. OPT is exactly
    [2 * groups] (for [g >= 1], [width >= 2]) but any 2 slots per window
    suffice, so the flow-pruned branch and bound of [Active.Exact]
    explores ~[C(width,2)^groups] combinations — the node count grows
    ~16x per added group at [g = 2], [width = 6]. Built to exercise the
    fuel budgets and the degradation cascade. *)
val bb_hard : g:int -> groups:int -> width:int -> Slotted.t

(** {1 Sparse-wide LP family (methodology, not from the paper)} *)

(** [sparse_wide ~g ~blocks ~width]: [blocks] disjoint windows of
    [width] slots, block [b] carrying [g+1] unit jobs with nested
    windows (job [i] of a block starts [min(i, width-2)] slots in).
    LP1 over this instance is block diagonal — every nonzero stays
    inside its block and the only containments are the nestings within
    one block — so growing [blocks] or [width] grows the program without
    growing any basis column. Built to make the dense-vs-sparse simplex
    work asymptotics visible (bench E24). Raises [Invalid_argument]
    unless [g >= 1], [blocks >= 1], [width >= 2]. *)
val sparse_wide : g:int -> blocks:int -> width:int -> Slotted.t

(** The exact LP1 optimum of [sparse_wide ~g ~blocks ~width], namely
    [blocks * (g+1) / g]: open the last two slots of every block at
    [y = (g+1)/2g] and split every job evenly across them; the mass
    bound [(g+1)/g] per block shows nothing cheaper exists. *)
val sparse_wide_lp_opt : g:int -> blocks:int -> Rational.t

(** {1 Tall LP family (methodology, not from the paper)} *)

(** [lp1_tall ~g ~jobs ~length]: [jobs] identical jobs of [length] slots
    all sharing the single window [[0, T]] with
    [T = ceil(jobs * length / g)]. LP1 over this instance is tall and
    dense — every demand row touches every slot — so each simplex
    iteration chooses among many structurally similar columns, which is
    where the pricing policy (not sparsity) decides the pivot count
    (bench E26). Raises [Invalid_argument] unless [g >= 1],
    [jobs >= g], [length >= 1]. *)
val lp1_tall : g:int -> jobs:int -> length:int -> Slotted.t

(** The exact LP1 optimum of [lp1_tall ~g ~jobs ~length], namely the
    mass bound [jobs * length / g]: spread every job uniformly over the
    window ([y_t = jobs*length/(g*T)], [x_jt = length/T]) and capacity
    is met with equality. *)
val lp1_tall_lp_opt : g:int -> jobs:int -> length:int -> Rational.t

(** {1 Fig. 1 — the paper's opening example} *)

(** Seven interval jobs that pack optimally onto two machines with
    [g = 3] (ids 1..7, matching the figure's arbitrary numbering). *)
val figure_one : unit -> Bjob.t list

(** The Fig. 1(B) packing: machine 1 = jobs 1–4, machine 2 = jobs 5–7. *)
val figure_one_packing : Bjob.t list -> Bjob.t list list

(** {1 Section 3.5 — LP integrality gap 2} *)

(** [g] pairs of adjacent slots, [g+1] unit jobs restricted to each pair:
    IP = [2g], LP = [g+1]. *)
val integrality_gap : int -> Slotted.t

(** {1 Fig. 6/7 — GreedyTracking approaches factor 3 (Theorem 5)} *)

type greedy_tracking_gadget = {
  gt_instance : Bjob.t list;  (** original windows: flexible + interval jobs *)
  gt_adversarial : Bjob.t list;  (** the Fig. 7 placement, all jobs pinned *)
  gt_opt_packing : Bjob.t list list;  (** explicit near-optimal packing *)
  gt_opt_cost : Rational.t;  (** its cost: [2g + 2 - eps + O(delta)] *)
}

(** [g] disjoint gadgets of two overlapping blocks of [g] unit jobs, plus
    [2g] flexible jobs. Copy lengths carry a tiny rank perturbation so the
    maximum-length tracks deterministically realize the paper's bad run
    (bundles mixing both blocks of every gadget); flexible pairs are
    pinned at opposite extremes. GreedyTracking cost tends to
    [(6 - o(eps)) g] vs OPT ~ [2g + 2]. Raises [Invalid_argument] unless
    [g >= 2] and [0 < eps <= 1/2]. *)
val greedy_tracking_tight : g:int -> eps:Rational.t -> greedy_tracking_gadget

(** {1 Fig. 8 — the interval-job 2-approximations are tight (Theorem 8)} *)

type two_approx_gadget = {
  ta_jobs : Bjob.t list;
  ta_g : int;  (** always 2 *)
  ta_opt_cost : Rational.t;  (** [1 + eps] *)
}

(** Two unit jobs at [\[0,1)], an [eps] job, an [eps'] job and an
    [eps - eps'] job; a bad run pays [2 + eps + eps']. Raises
    [Invalid_argument] unless [0 < eps' < eps < 1]. *)
val two_approx_tight : eps:Rational.t -> eps':Rational.t -> two_approx_gadget

(** {1 Fig. 9 — the conversion can double the demand profile (Lemma 7)} *)

type dp_profile_gadget = {
  dp_instance : Bjob.t list;
  dp_adversarial : Bjob.t list;  (** flexible job i stacked onto set i *)
  dp_optimal : Bjob.t list;  (** flexible jobs all at start 0 *)
  dp_g : int;
}

(** Profile(adversarial placement) = [2g - 1 + g(g-1) eps] vs
    profile(optimal structure) ~ [g]: ratio -> [(2g-1)/g] -> 2. *)
val dp_profile_tight : g:int -> eps:Rational.t -> dp_profile_gadget

(** {1 Fig. 10–12 — the flexible 2-approx pipeline degrades to 4
    (Theorem 10)} *)

type four_approx_gadget = {
  fa_instance : Bjob.t list;
  fa_adversarial : Bjob.t list;
  fa_g : int;
  fa_opt_cost_approx : Rational.t;  (** [g + (g-1) eps] *)
  fa_bad_packing : Bjob.t list list;
      (** validated Fig. 12 certificate of cost [1 + 4(g-1) + O(eps)] *)
}

(** One unit interval job, [g-1] gadgets (unit block + small-job cluster
    of raw demand 2g), [g-1] spanning unit flexible jobs. Raises
    [Invalid_argument] unless [g >= 2] and [0 < eps' < eps <= 1/2]. *)
val four_approx_tight : g:int -> eps:Rational.t -> eps':Rational.t -> four_approx_gadget

(** {1 Ill-conditioned LP family (methodology, not from the paper)} *)

(** A linear program, as pure data, whose optimum is invisible to double
    precision: [pairs] independent blocks [y_k + x_k <= 1], objective
    maximize [sum (y_k + (1 + 2^-ulp_exp) x_k)]. Exactly, [x_k] is
    strictly better than [y_k] and the optimum is
    [pairs * (1 + 2^-ulp_exp)]; but for [ulp_exp >= 53] the coefficient
    [1 + 2^-ulp_exp] rounds to [1.0] in double, the two columns tie, and
    a float simplex that breaks ties by first index terminates at the
    all-[y] vertex — a basis whose exact certification must fail. Built
    to pin the float engine's certify-fail fallback path. *)
type float_trap_gadget = {
  ft_pairs : int;
  ft_ulp_exp : int;
  ft_vars : string list;  (** [y0; x0; y1; x1; ...] *)
  ft_obj : Rational.t list;  (** maximize; aligned with [ft_vars] *)
  ft_rows : (Rational.t list * Rational.t) list;
      (** [(coeffs, rhs)], all rows [<=], coeffs aligned with [ft_vars];
          variables are nonnegative with no upper bound *)
  ft_opt : Rational.t;  (** the exact optimum [pairs * (1 + 2^-ulp_exp)] *)
}

(** Raises [Invalid_argument] unless [pairs >= 1] and
    [1 <= ulp_exp <= 60] (the bonus [2^-ulp_exp] must fit a native-int
    denominator). [ulp_exp <= 52] keeps the bonus representable in
    double — the same family then certifies cleanly, which tests use as
    the control. *)
val float_trap : pairs:int -> ulp_exp:int -> float_trap_gadget
