(** Plain-text instance files.

    Slotted (active-time) instances:
    {v
    slotted
    g 3
    job 0 0 6 3        # job <id> <release> <deadline> <length>
    v}

    Busy-time instances (rational coordinates allowed: "5/2", "0.25"):
    {v
    busy
    job 0 0 5/2 1
    v}

    ['#'] starts a comment; blank lines are ignored. *)

type instance = Slotted_instance of Slotted.t | Busy_instance of Bjob.t list

(** Raised on malformed input with a 1-based line number (0 for
    whole-file problems) and a message. *)
exception Parse_error of int * string

val parse_string : string -> instance

(** Raises {!Parse_error} or [Sys_error]. *)
val parse_file : string -> instance

(** Lenient variants: a malformed {e line} is recorded as a
    [(lineno, message)] warning and skipped instead of aborting the
    parse — the per-item error discipline of the serve daemon, applied
    to files. Whole-file problems (missing header, missing slotted
    capacity) are still fatal and returned as [Error (lineno, message)]
    ([lineno] 0 for end-of-file checks). [Sys_error] still escapes
    [parse_file_lenient]. *)
val parse_string_lenient : string -> (instance * (int * string) list, int * string) result

val parse_file_lenient : string -> (instance * (int * string) list, int * string) result

val to_string : instance -> string
val write_file : string -> instance -> unit
