(** Plain-text instance files.

    Slotted (active-time) instances:
    {v
    slotted
    g 3
    job 0 0 6 3        # job <id> <release> <deadline> <length>
    v}

    Busy-time instances (rational coordinates allowed: "5/2", "0.25"):
    {v
    busy
    job 0 0 5/2 1
    v}

    Every [job] line optionally ends with [arrival <t>] — the integer
    time the job becomes known to an online scheduler (default 0, i.e.
    the whole instance is known upfront). Offline parses accept and
    ignore it; the timed entry points ({!parse_file_timed}) return the
    arrivals alongside the instance for rolling-horizon replay
    ([atbt sim]).

    ['#'] starts a comment; blank lines are ignored. *)

type instance = Slotted_instance of Slotted.t | Busy_instance of Bjob.t list

(** Raised on malformed input with a 1-based line number (0 for
    whole-file problems) and a message. *)
exception Parse_error of int * string

val parse_string : string -> instance

(** Raises {!Parse_error} or [Sys_error]. *)
val parse_file : string -> instance

(** Strict parses that also return the [(job id, arrival time)] pairs of
    every job that carried an explicit [arrival <t>] directive (jobs
    without one arrive at 0 — look pairs up with {!arrival}). *)
val parse_string_timed : string -> instance * (int * int) list

val parse_file_timed : string -> instance * (int * int) list

(** [arrival arrivals id] is the arrival time of job [id] in a pair list
    returned by the timed parses: the recorded value, or 0. *)
val arrival : (int * int) list -> int -> int

(** Lenient variants: a malformed {e line} is recorded as a
    [(lineno, message)] warning and skipped instead of aborting the
    parse — the per-item error discipline of the serve daemon, applied
    to files. Whole-file problems (missing header, missing slotted
    capacity) are still fatal and returned as [Error (lineno, message)]
    ([lineno] 0 for end-of-file checks). [Sys_error] still escapes
    [parse_file_lenient]. *)
val parse_string_lenient : string -> (instance * (int * string) list, int * string) result

val parse_file_lenient : string -> (instance * (int * string) list, int * string) result

(** [arrivals] adds [arrival <t>] suffixes to the listed jobs' lines
    (pairs with [t = 0] are omitted — 0 is the default). *)
val to_string : ?arrivals:(int * int) list -> instance -> string

val write_file : ?arrivals:(int * int) list -> string -> instance -> unit
