(* Busy-time jobs: real-valued (exact rational) release, deadline, length.
   A job is an *interval job* when its window has no slack
   (deadline = release + length); otherwise it is *flexible*. *)

module Q = Rational

type t = { id : int; release : Q.t; deadline : Q.t; length : Q.t }

let make ~id ~release ~deadline ~length =
  if Q.compare length Q.zero <= 0 then invalid_arg "Bjob.make: length <= 0";
  if Q.compare (Q.sub deadline release) length < 0 then invalid_arg "Bjob.make: window shorter than length";
  { id; release; deadline; length }

(* Interval job at a fixed position. *)
let interval ~id ~start ~length = make ~id ~release:start ~deadline:(Q.add start length) ~length

let of_ints ~id ~release ~deadline ~length =
  make ~id ~release:(Q.of_int release) ~deadline:(Q.of_int deadline) ~length:(Q.of_int length)

let is_interval j = Q.equal (Q.sub j.deadline j.release) j.length
let window j = Intervals.Interval.make j.release j.deadline

(* The occupied interval of an interval job. *)
let interval_of j =
  if not (is_interval j) then invalid_arg "Bjob.interval_of: flexible job";
  window j

(* Latest feasible start. *)
let latest_start j = Q.sub j.deadline j.length

(* [place j start] pins a flexible job to a concrete start time, producing
   an interval job with the same id and length. Raises [Invalid_argument]
   when the start is outside [release, deadline - length]. *)
let place j start =
  if Q.compare start j.release < 0 || Q.compare start (latest_start j) > 0 then
    invalid_arg "Bjob.place: start outside window";
  interval ~id:j.id ~start ~length:j.length

let total_length jobs = List.fold_left (fun acc j -> Q.add acc j.length) Q.zero jobs

let pp fmt j =
  Format.fprintf fmt "job %d: [%s, %s) p=%s%s" j.id (Q.to_string j.release) (Q.to_string j.deadline)
    (Q.to_string j.length)
    (if is_interval j then " (interval)" else "")
