(** Deterministic (seeded) random instance generators.

    The families cover the structures the busy-time literature singles
    out: general windows with controlled slack, interval jobs, cliques,
    proper instances, proper cliques and laminar instances. The same seed
    always yields the same instance. *)

type slotted_params = {
  n : int;  (** number of jobs *)
  horizon : int;  (** slots 1..horizon *)
  max_length : int;
  slack : int;  (** window exceeds the length by at most this *)
  g : int;
}

val default_slotted : slotted_params

(** Random slotted (active-time) instance. *)
val slotted : ?params:slotted_params -> seed:int -> unit -> Slotted.t

(** Unit-length slotted jobs (the Chang–Gabow–Khuller special case). *)
val slotted_unit : ?horizon:int -> ?g:int -> n:int -> seed:int -> unit -> Slotted.t

type busy_params = {
  bn : int;
  bhorizon : int;  (** integer grid for the randomness; values stay exact *)
  bmax_length : int;
  bslack : int;  (** 0 makes every job an interval job *)
}

val default_busy : busy_params

(** Random busy-time jobs with windows. *)
val busy_jobs : ?params:busy_params -> seed:int -> unit -> Bjob.t list

(** Random interval jobs (no slack). *)
val interval_jobs : ?n:int -> ?horizon:int -> ?max_length:int -> seed:int -> unit -> Bjob.t list

(** Interval jobs all containing a common time point. *)
val clique_interval_jobs : ?n:int -> ?max_length:int -> seed:int -> unit -> Bjob.t list

(** Interval jobs with no window contained in another. *)
val proper_interval_jobs : ?n:int -> seed:int -> unit -> Bjob.t list

(** Proper instances that also form a clique (exactly solvable by
    {!Busy.Special.proper_clique_exact}). *)
val proper_clique_interval_jobs : ?n:int -> seed:int -> unit -> Bjob.t list

(** Interval jobs whose windows are pairwise nested or disjoint. *)
val laminar_interval_jobs : ?depth:int -> ?span:int -> seed:int -> unit -> Bjob.t list

(** Interval jobs paired with random widths in [1..max_width] (for the
    Khandekar width generalization, {!Busy.Widths}). *)
val widthed_interval_jobs :
  ?n:int -> ?horizon:int -> ?max_length:int -> ?max_width:int -> seed:int -> unit -> (Bjob.t * int) list

(** Flexible jobs whose windows are about [slack_factor] times their
    length. *)
val flexible_jobs :
  ?n:int -> ?horizon:int -> ?max_length:int -> ?slack_factor:int -> seed:int -> unit -> Bjob.t list

(** Data-center-like flexible jobs: releases cluster around two daily
    peaks (morning and evening batch waves). *)
val diurnal_flexible_jobs :
  ?n:int -> ?horizon:int -> ?max_length:int -> seed:int -> unit -> Bjob.t list

(** Timed (online) slotted mix for the rolling-horizon simulator: the
    diurnal two-peak release pattern on the slot grid, where each job
    becomes known [0..lead] slots (default 4) before its release.
    Returns the instance plus [(job id, arrival)] pairs in the
    {!Io.parse_file_timed} convention. Scale with [params]. *)
val timed_slotted :
  ?params:slotted_params -> ?lead:int -> seed:int -> unit -> Slotted.t * (int * int) list
