(* Slotted (active-time) instances.

   Time is slotted: slot [t] is the unit [t-1, t). A job with release [r],
   deadline [d] and length [p] may occupy slots [{r+1, ..., d}], one unit
   per slot, and needs [p] of them (integral preemption). An instance also
   carries the machine capacity [g]: at most [g] job units per active
   slot. *)

type job = { id : int; release : int; deadline : int; length : int }

type t = { jobs : job array; g : int }

let job ~id ~release ~deadline ~length =
  if length < 1 then invalid_arg "Slotted.job: length < 1";
  if release < 0 then invalid_arg "Slotted.job: negative release";
  if deadline - release < length then invalid_arg "Slotted.job: window shorter than length";
  { id; release; deadline; length }

(* Slots of the job's window, in increasing order. *)
let window_slots j = List.init (j.deadline - j.release) (fun i -> j.release + 1 + i)

let window_size j = j.deadline - j.release

(* A job is rigid when its window has no slack. *)
let is_rigid j = window_size j = j.length

let make ~g jobs =
  if g < 1 then invalid_arg "Slotted.make: g < 1";
  { jobs = Array.of_list jobs; g }

let num_jobs t = Array.length t.jobs
let total_length t = Array.fold_left (fun acc j -> acc + j.length) 0 t.jobs

(* Latest relevant slot: T = max deadline (0 when empty). *)
let horizon t = Array.fold_left (fun acc j -> max acc j.deadline) 0 t.jobs

(* All slots that belong to at least one window. *)
let relevant_slots t =
  let tbl = Hashtbl.create 64 in
  Array.iter (fun j -> List.iter (fun s -> Hashtbl.replace tbl s ()) (window_slots j)) t.jobs;
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) tbl [])

(* Trivial lower bound: ceil(total length / g). *)
let mass_lower_bound t = (total_length t + t.g - 1) / t.g

let is_live j ~slot = slot >= j.release + 1 && slot <= j.deadline

let pp_job fmt j =
  Format.fprintf fmt "job %d: r=%d d=%d p=%d%s" j.id j.release j.deadline j.length
    (if is_rigid j then " (rigid)" else "")

let pp fmt t =
  Format.fprintf fmt "slotted instance: %d jobs, g=%d, T=%d@." (num_jobs t) t.g (horizon t);
  Array.iter (fun j -> Format.fprintf fmt "  %a@." pp_job j) t.jobs

(* A schedule: for each job, the sorted list of slots it occupies. *)
type schedule = (int * int list) list

(* Validates a schedule against the instance; returns an explanation of the
   first violation, if any. *)
let check_schedule t (sched : schedule) =
  let by_id = Hashtbl.create 16 in
  Array.iter (fun j -> Hashtbl.replace by_id j.id j) t.jobs;
  let usage = Hashtbl.create 64 in
  let problem = ref None in
  let fail msg = if !problem = None then problem := Some msg in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (id, slots) ->
      if Hashtbl.mem seen id then fail (Printf.sprintf "job %d listed twice" id);
      Hashtbl.replace seen id ();
      match Hashtbl.find_opt by_id id with
      | None -> fail (Printf.sprintf "unknown job %d" id)
      | Some j ->
          if List.length slots <> j.length then
            fail (Printf.sprintf "job %d has %d units, needs %d" id (List.length slots) j.length);
          if List.length (List.sort_uniq compare slots) <> List.length slots then
            fail (Printf.sprintf "job %d scheduled twice in one slot" id);
          List.iter
            (fun s ->
              if not (is_live j ~slot:s) then fail (Printf.sprintf "job %d outside window at slot %d" id s);
              let u = try Hashtbl.find usage s with Not_found -> 0 in
              Hashtbl.replace usage s (u + 1))
            slots)
    sched;
  Array.iter (fun j -> if not (Hashtbl.mem seen j.id) then fail (Printf.sprintf "job %d unscheduled" j.id)) t.jobs;
  Hashtbl.iter (fun s u -> if u > t.g then fail (Printf.sprintf "slot %d over capacity (%d > %d)" s u t.g)) usage;
  !problem

(* Set of active slots used by a schedule. *)
let active_slots (sched : schedule) =
  List.sort_uniq compare (List.concat_map snd sched)
