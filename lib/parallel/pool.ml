let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let map ?domains f xs =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let results : ('b, exn) result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue_ := false
        else begin
          let r = try Ok (f arr.(i)) with e -> Error e in
          results.(i) <- Some r
        end
      done
    in
    let spawned = List.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false (* every index was claimed and completed *))
         results)
  end

let init ?domains n f = map ?domains f (List.init n (fun i -> i))

(* Exception firewall for supervised workers: a raising task becomes an
   [Error] value instead of unwinding the calling domain. [map]/[init]
   use the same per-task capture internally (every task still runs, all
   domains join, then the first failure in input order re-raises); this
   exposes the captured form directly for callers — the serve daemon's
   workers — that must outlive any single task's failure. *)
let run_isolated f = try Ok (f ()) with e -> Error e

(* Shared monotonically-decreasing cell: a CAS loop keeps the minimum of
   everything offered. Backs the shared incumbent of parallel
   branch-and-bound searches — workers publish improvements and read the
   current bound to prune; the value only ever tightens, so a stale read
   merely prunes less, never wrongly. *)
type 'a min_cell = { compare : 'a -> 'a -> int; cell : 'a Atomic.t }

let min_cell ~compare v = { compare; cell = Atomic.make v }
let min_get c = Atomic.get c.cell

let rec min_improve c v =
  let cur = Atomic.get c.cell in
  if c.compare v cur >= 0 then false
  else if Atomic.compare_and_set c.cell cur v then true
  else min_improve c v
