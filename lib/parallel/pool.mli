(** Multicore work-sharing on OCaml 5 domains (no external dependencies).

    [map f xs] evaluates [f] over [xs] on several domains with an atomic
    work-stealing index, preserving input order in the results. Intended
    for the embarrassingly parallel sweeps of the bench harness (many
    seeds x algorithms, each task pure and allocation-heavy); every
    algorithm in this repository builds its mutable state (flow networks,
    simplex tableaux) per call, so tasks must not share mutable state and
    none of ours do.

    Exceptions raised by tasks are caught per task and re-raised in the
    caller after all domains join (the first one in input order wins). *)

(** [map ?domains f xs]. [domains] defaults to
    [Domain.recommended_domain_count () - 1], at least 1; the calling
    domain participates in the work. *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [init ?domains n f] is [map ?domains f [0; ...; n-1]]. *)
val init : ?domains:int -> int -> (int -> 'b) -> 'b list

(** Number of worker domains [map] would use by default. *)
val default_domains : unit -> int

(** Shared monotonically-decreasing cell (atomic CAS minimum), for the
    shared incumbent of parallel branch-and-bound: workers publish
    improvements with {!min_improve} and prune against {!min_get}. Reads
    may be stale, which only weakens pruning — never correctness. *)
type 'a min_cell

val min_cell : compare:('a -> 'a -> int) -> 'a -> 'a min_cell
val min_get : 'a min_cell -> 'a

(** [min_improve c v] installs [v] iff it is strictly below the current
    value (by the cell's [compare]); returns whether it was installed. *)
val min_improve : 'a min_cell -> 'a -> bool
