(** Multicore work-sharing on OCaml 5 domains (no external dependencies).

    [map f xs] evaluates [f] over [xs] on several domains with an atomic
    work-stealing index, preserving input order in the results. Intended
    for the embarrassingly parallel sweeps of the bench harness (many
    seeds x algorithms, each task pure and allocation-heavy); every
    algorithm in this repository builds its mutable state (flow networks,
    simplex tableaux) per call, so tasks must not share mutable state and
    none of ours do.

    Error semantics of [map]/[init] when a task raises: the exception is
    caught {e per task}, every remaining task still runs, every spawned
    domain is joined (no domain leak, no stranded queue), and only then
    is the exception re-raised on the {e caller's} domain — the first
    failing task in input order when several raise. A worker domain
    never dies of a task exception. [test/test_parallel.ml] pins all of
    this. *)

(** [map ?domains f xs]. [domains] defaults to
    [Domain.recommended_domain_count () - 1], at least 1; the calling
    domain participates in the work. *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [init ?domains n f] is [map ?domains f [0; ...; n-1]]. *)
val init : ?domains:int -> int -> (int -> 'b) -> 'b list

(** Number of worker domains [map] would use by default. *)
val default_domains : unit -> int

(** [run_isolated f] runs [f ()] and captures any exception as an
    [Error] instead of letting it unwind the calling domain — the
    exception firewall for supervised long-lived workers (the [atbt
    serve] daemon runs every request through this, so a solver crash
    becomes a structured error response and the worker survives). Does
    not catch asynchronous OCaml runtime failures ([Out_of_memory],
    [Stack_overflow] are caught like any exception; a segfault is not
    recoverable in-process). *)
val run_isolated : (unit -> 'a) -> ('a, exn) result

(** Shared monotonically-decreasing cell (atomic CAS minimum), for the
    shared incumbent of parallel branch-and-bound: workers publish
    improvements with {!min_improve} and prune against {!min_get}. Reads
    may be stale, which only weakens pruning — never correctness. *)
type 'a min_cell

val min_cell : compare:('a -> 'a -> int) -> 'a -> 'a min_cell
val min_get : 'a min_cell -> 'a

(** [min_improve c v] installs [v] iff it is strictly below the current
    value (by the cell's [compare]); returns whether it was installed. *)
val min_improve : 'a min_cell -> 'a -> bool
