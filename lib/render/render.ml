module Q = Rational
module B = Workload.Bjob
module Bundle = Busy.Bundle
module I = Intervals.Interval
module S = Workload.Slotted

let slotted (inst : S.t) (sol : Active.Solution.t) =
  let horizon = S.horizon inst in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "slots   ";
  for t = 1 to horizon do
    Buffer.add_char buf (if List.mem t sol.Active.Solution.open_slots then '#' else '.')
  done;
  Buffer.add_char buf '\n';
  List.iter
    (fun (id, slots) ->
      Buffer.add_string buf (Printf.sprintf "job %-4d" id);
      for t = 1 to horizon do
        Buffer.add_char buf (if List.mem t slots then 'x' else '.')
      done;
      Buffer.add_char buf '\n')
    (List.sort compare sol.Active.Solution.schedule);
  Buffer.contents buf

(* map a rational coordinate into 0..width-1 columns over [lo, hi) *)
let column ~lo ~hi ~width x =
  if Q.compare hi lo <= 0 then 0
  else begin
    let frac = Q.div (Q.sub x lo) (Q.sub hi lo) in
    let c = Q.floor_int (Q.mul frac (Q.of_int width)) in
    max 0 (min (width - 1) c)
  end

let hull intervals =
  match intervals with
  | [] -> None
  | (first : I.t) :: _ ->
      Some
        (List.fold_left
           (fun (lo, hi) (iv : I.t) -> (Q.min lo iv.I.lo, Q.max hi iv.I.hi))
           (first.I.lo, first.I.hi) intervals)

let packing ?(width = 60) (p : Bundle.packing) =
  let all = List.concat_map (fun bundle -> List.map B.interval_of bundle) p in
  match hull all with
  | None -> "(empty packing)\n"
  | Some (lo, hi) ->
      let buf = Buffer.create 256 in
      List.iteri
        (fun m bundle ->
          let row = Bytes.make width '.' in
          List.iter
            (fun (j : B.t) ->
              let iv = B.interval_of j in
              let c0 = column ~lo ~hi ~width iv.I.lo in
              (* end column: last column strictly inside the interval *)
              let c1 =
                let c = column ~lo ~hi ~width iv.I.hi in
                if Q.equal iv.I.hi hi then width - 1 else max c0 (c - if c > c0 then 1 else 0)
              in
              let ch = Char.chr (Char.code '0' + (abs j.B.id mod 10)) in
              for c = c0 to c1 do
                Bytes.set row c (if Bytes.get row c = '.' then ch else '*')
              done)
            bundle;
          Buffer.add_string buf (Printf.sprintf "m%-3d |%s|\n" m (Bytes.to_string row)))
        p;
      Buffer.contents buf

(* ------------------------------------------------------------- SVG ---- *)

let svg_palette = [| "#4e79a7"; "#f28e2b"; "#59a14f"; "#e15759"; "#b07aa1"; "#76b7b2"; "#edc948" |]

let svg_header ~w ~h =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" font-family=\"monospace\" font-size=\"11\">\n"
    w h w h

let svg_x ~lo ~hi ~width x =
  let frac = Q.to_float (Q.div (Q.sub x lo) (Q.sub hi lo)) in
  60.0 +. (frac *. float_of_int (width - 80))

let packing_svg ?(width = 720) (p : Bundle.packing) =
  let all = List.concat_map (fun bundle -> List.map B.interval_of bundle) p in
  match hull all with
  | None -> svg_header ~w:width ~h:40 ^ "<text x=\"10\" y=\"20\">empty packing</text>\n</svg>\n"
  | Some (lo, hi) ->
      let lane_h = 26 in
      let h = (List.length p * lane_h) + 40 in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf (svg_header ~w:width ~h);
      List.iteri
        (fun m bundle ->
          let y = 10 + (m * lane_h) in
          Buffer.add_string buf
            (Printf.sprintf "<text x=\"8\" y=\"%d\">m%d</text>\n" (y + 15) m);
          List.iter
            (fun (j : B.t) ->
              let iv = B.interval_of j in
              let x0 = svg_x ~lo ~hi ~width iv.I.lo and x1 = svg_x ~lo ~hi ~width iv.I.hi in
              let color = svg_palette.(abs j.B.id mod Array.length svg_palette) in
              Buffer.add_string buf
                (Printf.sprintf
                   "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"%s\" fill-opacity=\"0.55\" stroke=\"%s\"/>\n"
                   x0 y (x1 -. x0) (lane_h - 6) color color);
              Buffer.add_string buf
                (Printf.sprintf "<text x=\"%.1f\" y=\"%d\" fill=\"#222\">%d</text>\n" (x0 +. 3.0) (y + 14) j.B.id))
            bundle)
        p;
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"60\" y=\"%d\">%s</text>\n" (h - 8) (Q.to_string lo));
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"%d\" y=\"%d\" text-anchor=\"end\">%s</text>\n" (width - 20) (h - 8)
           (Q.to_string hi));
      Buffer.add_string buf "</svg>\n";
      Buffer.contents buf

let slotted_svg ?(width = 720) (inst : S.t) (sol : Active.Solution.t) =
  let horizon = S.horizon inst in
  let lane_h = 22 in
  let rows = List.length sol.Active.Solution.schedule in
  let h = ((rows + 1) * lane_h) + 40 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (svg_header ~w:width ~h);
  let slot_w = float_of_int (width - 80) /. float_of_int (max 1 horizon) in
  let x_of s = 60.0 +. (float_of_int (s - 1) *. slot_w) in
  (* open-slot band *)
  Buffer.add_string buf (Printf.sprintf "<text x=\"8\" y=\"%d\">on</text>\n" 24);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"10\" width=\"%.1f\" height=\"%d\" fill=\"#bbb\" stroke=\"#888\"/>\n"
           (x_of s) slot_w (lane_h - 6)))
    sol.Active.Solution.open_slots;
  List.iteri
    (fun row (id, slots) ->
      let y = 10 + ((row + 1) * lane_h) in
      Buffer.add_string buf (Printf.sprintf "<text x=\"8\" y=\"%d\">j%d</text>\n" (y + 14) id);
      let color = svg_palette.(abs id mod Array.length svg_palette) in
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"%s\" fill-opacity=\"0.6\" stroke=\"%s\"/>\n"
               (x_of s) y slot_w (lane_h - 6) color color))
        slots)
    (List.sort compare sol.Active.Solution.schedule);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let preemptive (sol : Busy.Preemptive.solution) ~width =
  let all = List.concat_map (fun a -> a.Busy.Preemptive.pieces) sol.Busy.Preemptive.assignments in
  match hull all with
  | None -> "(empty solution)\n"
  | Some (lo, hi) ->
      let buf = Buffer.create 256 in
      List.iter
        (fun a ->
          let row = Bytes.make width '.' in
          List.iter
            (fun (iv : I.t) ->
              let c0 = column ~lo ~hi ~width iv.I.lo in
              let c1 =
                let c = column ~lo ~hi ~width iv.I.hi in
                if Q.equal iv.I.hi hi then width - 1 else max c0 (c - if c > c0 then 1 else 0)
              in
              for c = c0 to c1 do
                Bytes.set row c '#'
              done)
            a.Busy.Preemptive.pieces;
          Buffer.add_string buf (Printf.sprintf "job %-3d |%s|\n" a.Busy.Preemptive.job.B.id (Bytes.to_string row)))
        sol.Busy.Preemptive.assignments;
      Buffer.contents buf

let epochs_svg ?(width = 720) (r : Sim.Rolling.run) =
  let module R = Sim.Rolling in
  let epochs = r.R.epochs in
  let horizon =
    List.fold_left (fun acc (e : R.epoch) -> max acc (e.R.now + r.R.epoch_len)) 1 epochs
  in
  let lane_h = 22 in
  let rows = List.length epochs in
  let h = ((rows + 1) * lane_h) + 50 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (svg_header ~w:width ~h);
  let slot_w = float_of_int (width - 140) /. float_of_int (max 1 horizon) in
  let x_of s = 60.0 +. (float_of_int (s - 1) *. slot_w) in
  (* one lane per epoch: commit window in grey, committed opens filled;
     degraded epochs in the warning color, misses flagged on the right *)
  List.iteri
    (fun row (e : R.epoch) ->
      let y = 10 + (row * lane_h) in
      Buffer.add_string buf (Printf.sprintf "<text x=\"8\" y=\"%d\">e%d</text>\n" (y + 14) e.R.index);
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"#eee\" stroke=\"#ccc\"/>\n"
           (x_of (e.R.now + 1)) y
           (slot_w *. float_of_int r.R.epoch_len)
           (lane_h - 6));
      let color = if e.R.degraded then "#e15759" else svg_palette.(e.R.index mod Array.length svg_palette) in
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"%s\" fill-opacity=\"0.7\" stroke=\"%s\"/>\n"
               (x_of s) y slot_w (lane_h - 6) color color))
        e.R.opened;
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"%d\" y=\"%d\">energy=%d%s%s</text>\n" (width - 76) (y + 14)
           e.R.energy
           (if e.R.sla_misses > 0 then Printf.sprintf " miss=%d" e.R.sla_misses else "")
           (if e.R.degraded then " !" else "")))
    epochs;
  (* cumulative band: every committed open slot over the whole run *)
  let y = 10 + (rows * lane_h) in
  Buffer.add_string buf (Printf.sprintf "<text x=\"8\" y=\"%d\">all</text>\n" (y + 14));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"#bbb\" stroke=\"#888\"/>\n"
           (x_of s) y slot_w (lane_h - 6)))
    r.R.open_slots;
  (* time axis along the bottom, one tick per epoch boundary *)
  let axis_y = y + lane_h + 12 in
  let rec ticks t =
    if t <= horizon then begin
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"%.1f\" y=\"%d\" fill=\"#666\">%d</text>\n" (x_of (t + 1)) axis_y t);
      ticks (t + r.R.epoch_len)
    end
  in
  ticks 0;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
