(** ASCII Gantt rendering of schedules and packings, used by the CLI and
    the examples. Deterministic output (golden-tested). *)

(** One row per job plus an open-slot header; [#] marks powered slots,
    [x] scheduled units, [.] idle. *)
val slotted : Workload.Slotted.t -> Active.Solution.t -> string

(** One row per machine; jobs drawn with their id digit (last digit for
    ids >= 10), scaled onto [width] columns over the packing's hull.
    Overlapping jobs on a machine show as [*]. *)
val packing : ?width:int -> Busy.Bundle.packing -> string

(** One row per job of a preemptive solution; pieces drawn as [#]. *)
val preemptive : Busy.Preemptive.solution -> width:int -> string

(** Standalone SVG of a packing: one lane per machine, one rectangle per
    job (labelled with its id), time axis along the bottom. [width] is
    the drawing width in pixels (default 720). *)
val packing_svg : ?width:int -> Busy.Bundle.packing -> string

(** SVG of an active-time solution: open-slot band plus one lane per
    job. *)
val slotted_svg : ?width:int -> Workload.Slotted.t -> Active.Solution.t -> string

(** SVG strip of a rolling-horizon run: one lane per epoch (commit
    window in grey, committed open slots filled, degraded epochs in the
    warning color, per-epoch energy and SLA misses annotated on the
    right), a cumulative open-slot band, and an epoch-boundary time
    axis. *)
val epochs_svg : ?width:int -> Sim.Rolling.run -> string
