(** Deterministic solver telemetry: named monotonic counters, hierarchical
    spans, pluggable sinks.

    Every metric in this layer counts {e solver events} — search nodes,
    simplex pivots, flow augmentations — never wall-clock time, so a
    recorded run is bit-for-bit reproducible: the same seeded instance
    must yield byte-identical counter sets, which turns telemetry itself
    into a regression test (see [test/test_obs.ml] and the golden
    counters pinned for the [Gadgets.bb_hard] family).

    Usage: instrumented entry points take [?obs:Obs.t] defaulting to
    {!null}, which makes every recording call a no-op, so uninstrumented
    callers pay nothing. A caller that wants telemetry creates a recorder
    with {!create}, passes it down, and reads {!counters} / {!span_tree}
    afterwards (or attaches a streaming sink).

    Recorders are not thread-safe: use one recorder per domain and merge
    results outside the parallel region. *)

(** {1 JSON}

    A minimal JSON document model and printer, here so that the CLI
    ([atbt --format json]), the bench harness ([BENCH_<exp>.json]) and
    the line-JSON sink share one deterministic serializer without any
    external dependency. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list  (** keys emitted in the given order *)

  (** Compact single-line rendering; object keys keep their given order,
      strings are escaped per RFC 8259. Floats use ["%.12g"]; values that
      must be byte-stable across runs should be [Int] or [String]. *)
  val to_string : t -> string

  val pp : Format.formatter -> t -> unit

  (** JSON string-body escaping (no surrounding quotes). *)
  val escape : string -> string

  (** [member k (Obj fields)] is the value under key [k] (first match);
      [None] on a missing key or any non-object. *)
  val member : string -> t -> t option

  (** Parse one JSON document (the inverse of {!to_string}): RFC-8259
      values with [\uXXXX] escapes decoded to UTF-8 (surrogate pairs
      combined), integers outside [int] range falling back to [Float],
      and a nesting-depth cap. Total — any byte string returns [Ok] or
      [Error "at offset N: ..."], never raises; the serve request path
      and the parser fuzz target rely on that. *)
  val parse : string -> (t, string) Stdlib.result
end

(** [digest s] is a stable content digest of [s] (64-bit FNV-1a,
    rendered ["fnv1a64:<16 hex digits>"]); used to fingerprint instances
    in telemetry documents. *)
val digest : string -> string

(** {1 Events and sinks} *)

(** What a sink observes, in order: span boundaries as they happen, and
    counter totals when the recorder is {!flush}ed. *)
type event =
  | Enter of string
  | Exit of { name : string; ticks : int }
      (** [ticks] = counter increments recorded while the span was open,
          children included *)
  | Counter of { name : string; total : int }

module Sink : sig
  type t

  (** Discards every event. *)
  val null : t

  (** Calls the function on every event. *)
  val of_fn : (event -> unit) -> t

  (** In-memory sink for tests: [(sink, events)] where [events ()]
      returns everything observed so far, in order. *)
  val memory : unit -> t * (unit -> event list)

  (** Streams one compact JSON object per event to [write] (no trailing
      newline; the writer adds its own framing). *)
  val line_json : (string -> unit) -> t

  val event_to_json : event -> Json.t
end

(** {1 Recorders} *)

type t

(** The no-op recorder: every operation returns immediately. This is the
    default for all instrumented entry points. *)
val null : t

val is_null : t -> bool

(** A fresh recorder. Events stream to [sink] (default {!Sink.null});
    counters and the span tree are also accumulated in memory
    regardless of the sink. *)
val create : ?sink:Sink.t -> unit -> t

(** {2 Counters} *)

(** [add t name n] adds [n >= 0] to the named monotonic counter
    (created at 0 on first use). Raises [Invalid_argument] on [n < 0]. *)
val add : t -> string -> int -> unit

(** [incr t name] = [add t name 1]. *)
val incr : t -> string -> unit

(** All counters as a [(name, total)] list sorted by name — the
    canonical, deterministic order used everywhere telemetry is
    serialized or compared. *)
val counters : t -> (string * int) list

(** Sum of all counter increments so far. *)
val total_ticks : t -> int

(** {2 Spans} *)

(** A completed span: [ticks] is the number of counter increments
    recorded between enter and exit (children included); [children] are
    in run order. *)
type span = { name : string; ticks : int; children : span list }

val enter : t -> string -> unit

(** Closes the innermost open span. Raises [Invalid_argument] when no
    span is open. *)
val exit : t -> unit

(** [span t name f] runs [f ()] inside a span; the span is closed even
    when [f] raises (the exception is re-raised). *)
val span : t -> string -> (unit -> 'a) -> 'a

(** Completed top-level spans, in run order. Spans still open are not
    included. *)
val span_tree : t -> span list

(** {2 Serialization} *)

(** Emits a [Counter] event per counter, in sorted name order. *)
val flush : t -> unit

(** Counters as a JSON object (sorted keys). *)
val counters_to_json : t -> Json.t

(** Span tree as a JSON list of [{name; ticks; children}] objects. *)
val spans_to_json : t -> Json.t
