module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape_into buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    escape_into buf s;
    Buffer.contents buf

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (Printf.sprintf "%.12g" f)
    | String s ->
        Buffer.add_char buf '"';
        escape_into buf s;
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_into buf k;
            Buffer.add_string buf "\":";
            emit buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    emit buf v;
    Buffer.contents buf

  let pp fmt v = Format.pp_print_string fmt (to_string v)
end

(* FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms.
   Collision resistance is irrelevant here — the digest only fingerprints
   instances in telemetry documents. *)
let digest s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "fnv1a64:%016Lx" !h

type event =
  | Enter of string
  | Exit of { name : string; ticks : int }
  | Counter of { name : string; total : int }

module Sink = struct
  type t = event -> unit

  let null = fun (_ : event) -> ()
  let of_fn f = f

  let memory () =
    let events = ref [] in
    ((fun e -> events := e :: !events), fun () -> List.rev !events)

  let event_to_json = function
    | Enter name -> Json.Obj [ ("event", Json.String "enter"); ("span", Json.String name) ]
    | Exit { name; ticks } ->
        Json.Obj
          [ ("event", Json.String "exit");
            ("span", Json.String name);
            ("ticks", Json.Int ticks) ]
    | Counter { name; total } ->
        Json.Obj
          [ ("event", Json.String "counter");
            ("name", Json.String name);
            ("total", Json.Int total) ]

  let line_json write = fun e -> write (Json.to_string (event_to_json e))
end

type span = { name : string; ticks : int; children : span list }

type frame = {
  frame_name : string;
  ticks_at_enter : int;
  mutable children_rev : span list;
}

type recorder = {
  counters : (string, int ref) Hashtbl.t;
  mutable total : int;
  mutable stack : frame list;
  mutable roots_rev : span list;
  sink : Sink.t;
}

type t = Null | Rec of recorder

let null = Null
let is_null = function Null -> true | Rec _ -> false

let create ?(sink = Sink.null) () =
  Rec
    {
      counters = Hashtbl.create 32;
      total = 0;
      stack = [];
      roots_rev = [];
      sink;
    }

let add t name n =
  match t with
  | Null -> ()
  | Rec r ->
      if n < 0 then invalid_arg "Obs.add: counters are monotonic";
      if n > 0 then begin
        (match Hashtbl.find_opt r.counters name with
        | Some c -> c := !c + n
        | None -> Hashtbl.add r.counters name (ref n));
        r.total <- r.total + n
      end

let incr t name = add t name 1

let counters t =
  match t with
  | Null -> []
  | Rec r ->
      Hashtbl.fold (fun name c acc -> (name, !c) :: acc) r.counters []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total_ticks = function Null -> 0 | Rec r -> r.total

let enter t name =
  match t with
  | Null -> ()
  | Rec r ->
      r.stack <-
        { frame_name = name; ticks_at_enter = r.total; children_rev = [] }
        :: r.stack;
      r.sink (Enter name)

let exit t =
  match t with
  | Null -> ()
  | Rec r -> (
      match r.stack with
      | [] -> invalid_arg "Obs.exit: no open span"
      | f :: rest ->
          let node =
            {
              name = f.frame_name;
              ticks = r.total - f.ticks_at_enter;
              children = List.rev f.children_rev;
            }
          in
          (match rest with
          | [] -> r.roots_rev <- node :: r.roots_rev
          | parent :: _ -> parent.children_rev <- node :: parent.children_rev);
          r.stack <- rest;
          r.sink (Exit { name = node.name; ticks = node.ticks }))

let span t name f =
  match t with
  | Null -> f ()
  | Rec _ ->
      enter t name;
      Fun.protect ~finally:(fun () -> exit t) f

let span_tree = function Null -> [] | Rec r -> List.rev r.roots_rev

let flush t =
  match t with
  | Null -> ()
  | Rec r ->
      List.iter (fun (name, total) -> r.sink (Counter { name; total })) (counters t)

let counters_to_json t =
  Json.Obj (List.map (fun (name, total) -> (name, Json.Int total)) (counters t))

let spans_to_json t =
  let rec node s =
    Json.Obj
      [ ("name", Json.String s.name);
        ("ticks", Json.Int s.ticks);
        ("children", Json.List (List.map node s.children)) ]
  in
  Json.List (List.map node (span_tree t))
