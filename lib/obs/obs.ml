module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape_into buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    escape_into buf s;
    Buffer.contents buf

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (Printf.sprintf "%.12g" f)
    | String s ->
        Buffer.add_char buf '"';
        escape_into buf s;
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_into buf k;
            Buffer.add_string buf "\":";
            emit buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    emit buf v;
    Buffer.contents buf

  let pp fmt v = Format.pp_print_string fmt (to_string v)

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None

  (* Recursive-descent parser, the inverse of [emit]. Total: any input —
     including the adversarial bytes the fuzz harness feeds it — yields
     [Ok] or [Error], never an exception. Depth-capped so deeply nested
     arrays cannot blow the stack. *)
  exception Bad of int * string

  let parse s =
    let n = String.length s in
    let fail i msg = raise (Bad (i, msg)) in
    let max_depth = 256 in
    let rec skip_ws i =
      if i < n then
        match s.[i] with ' ' | '\t' | '\n' | '\r' -> skip_ws (i + 1) | _ -> i
      else i
    in
    let expect i c =
      if i < n && s.[i] = c then i + 1
      else fail i (Printf.sprintf "expected %C" c)
    in
    let literal i word v =
      let l = String.length word in
      if i + l <= n && String.sub s i l = word then (v, i + l)
      else fail i ("expected " ^ word)
    in
    let hex4 i =
      if i + 4 > n then fail i "truncated \\u escape";
      let d c =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail i "bad hex digit in \\u escape"
      in
      (d s.[i] * 4096) + (d s.[i + 1] * 256) + (d s.[i + 2] * 16) + d s.[i + 3]
    in
    let add_utf8 buf cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
      end
      else if cp < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
      end
    in
    let parse_string i =
      let buf = Buffer.create 16 in
      let rec go i =
        if i >= n then fail i "unterminated string"
        else
          match s.[i] with
          | '"' -> (Buffer.contents buf, i + 1)
          | '\\' ->
              if i + 1 >= n then fail i "truncated escape";
              (match s.[i + 1] with
              | '"' -> Buffer.add_char buf '"'; go (i + 2)
              | '\\' -> Buffer.add_char buf '\\'; go (i + 2)
              | '/' -> Buffer.add_char buf '/'; go (i + 2)
              | 'b' -> Buffer.add_char buf '\b'; go (i + 2)
              | 'f' -> Buffer.add_char buf '\012'; go (i + 2)
              | 'n' -> Buffer.add_char buf '\n'; go (i + 2)
              | 'r' -> Buffer.add_char buf '\r'; go (i + 2)
              | 't' -> Buffer.add_char buf '\t'; go (i + 2)
              | 'u' ->
                  let cp = hex4 (i + 2) in
                  (* surrogate pair: combine when a low surrogate follows *)
                  if cp >= 0xd800 && cp <= 0xdbff && i + 12 <= n && s.[i + 6] = '\\'
                     && s.[i + 7] = 'u' then begin
                    let lo = hex4 (i + 8) in
                    if lo >= 0xdc00 && lo <= 0xdfff then begin
                      add_utf8 buf (0x10000 + ((cp - 0xd800) * 1024) + (lo - 0xdc00));
                      go (i + 12)
                    end
                    else begin add_utf8 buf cp; go (i + 6) end
                  end
                  else begin add_utf8 buf cp; go (i + 6) end
              | c -> fail i (Printf.sprintf "bad escape \\%c" c))
          | c when Char.code c < 0x20 -> fail i "unescaped control character"
          | c -> Buffer.add_char buf c; go (i + 1)
      in
      go i
    in
    let parse_number i =
      let j = ref i in
      if !j < n && s.[!j] = '-' then incr j;
      let digits k = let k0 = k in let k = ref k in
        while !k < n && s.[!k] >= '0' && s.[!k] <= '9' do incr k done;
        if !k = k0 then fail k0 "expected digit"; !k
      in
      j := digits !j;
      let is_float = ref false in
      if !j < n && s.[!j] = '.' then begin is_float := true; j := digits (!j + 1) end;
      if !j < n && (s.[!j] = 'e' || s.[!j] = 'E') then begin
        is_float := true;
        let k = !j + 1 in
        let k = if k < n && (s.[k] = '+' || s.[k] = '-') then k + 1 else k in
        j := digits k
      end;
      let text = String.sub s i (!j - i) in
      let v =
        if !is_float then Float (float_of_string text)
        else
          match int_of_string_opt text with
          | Some k -> Int k
          | None -> Float (float_of_string text) (* out of int range *)
      in
      (v, !j)
    in
    let rec value depth i =
      if depth > max_depth then fail i "nesting too deep";
      let i = skip_ws i in
      if i >= n then fail i "unexpected end of input"
      else
        match s.[i] with
        | 'n' -> literal i "null" Null
        | 't' -> literal i "true" (Bool true)
        | 'f' -> literal i "false" (Bool false)
        | '"' -> let str, j = parse_string (i + 1) in (String str, j)
        | '-' | '0' .. '9' -> parse_number i
        | '[' ->
            let rec items acc i =
              let v, j = value (depth + 1) i in
              let j = skip_ws j in
              if j < n && s.[j] = ',' then items (v :: acc) (j + 1)
              else (List.rev (v :: acc), expect j ']')
            in
            let j = skip_ws (i + 1) in
            if j < n && s.[j] = ']' then (List [], j + 1)
            else let xs, j = items [] j in (List xs, j)
        | '{' ->
            let field i =
              let i = skip_ws i in
              let i = expect i '"' in
              let k, j = parse_string i in
              let j = expect (skip_ws j) ':' in
              let v, j = value (depth + 1) j in
              ((k, v), j)
            in
            let rec fields acc i =
              let kv, j = field i in
              let j = skip_ws j in
              if j < n && s.[j] = ',' then fields (kv :: acc) (j + 1)
              else (List.rev (kv :: acc), expect j '}')
            in
            let j = skip_ws (i + 1) in
            if j < n && s.[j] = '}' then (Obj [], j + 1)
            else let kvs, j = fields [] j in (Obj kvs, j)
        | c -> fail i (Printf.sprintf "unexpected character %C" c)
    in
    match
      let v, i = value 0 0 in
      let i = skip_ws i in
      if i <> n then fail i "trailing garbage" else v
    with
    | v -> Ok v
    | exception Bad (i, msg) -> Error (Printf.sprintf "at offset %d: %s" i msg)
end

(* FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms.
   Collision resistance is irrelevant here — the digest only fingerprints
   instances in telemetry documents. *)
let digest s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "fnv1a64:%016Lx" !h

type event =
  | Enter of string
  | Exit of { name : string; ticks : int }
  | Counter of { name : string; total : int }

module Sink = struct
  type t = event -> unit

  let null = fun (_ : event) -> ()
  let of_fn f = f

  let memory () =
    let events = ref [] in
    ((fun e -> events := e :: !events), fun () -> List.rev !events)

  let event_to_json = function
    | Enter name -> Json.Obj [ ("event", Json.String "enter"); ("span", Json.String name) ]
    | Exit { name; ticks } ->
        Json.Obj
          [ ("event", Json.String "exit");
            ("span", Json.String name);
            ("ticks", Json.Int ticks) ]
    | Counter { name; total } ->
        Json.Obj
          [ ("event", Json.String "counter");
            ("name", Json.String name);
            ("total", Json.Int total) ]

  let line_json write = fun e -> write (Json.to_string (event_to_json e))
end

type span = { name : string; ticks : int; children : span list }

type frame = {
  frame_name : string;
  ticks_at_enter : int;
  mutable children_rev : span list;
}

type recorder = {
  counters : (string, int ref) Hashtbl.t;
  mutable total : int;
  mutable stack : frame list;
  mutable roots_rev : span list;
  sink : Sink.t;
}

type t = Null | Rec of recorder

let null = Null
let is_null = function Null -> true | Rec _ -> false

let create ?(sink = Sink.null) () =
  Rec
    {
      counters = Hashtbl.create 32;
      total = 0;
      stack = [];
      roots_rev = [];
      sink;
    }

let add t name n =
  match t with
  | Null -> ()
  | Rec r ->
      if n < 0 then invalid_arg "Obs.add: counters are monotonic";
      if n > 0 then begin
        (match Hashtbl.find_opt r.counters name with
        | Some c -> c := !c + n
        | None -> Hashtbl.add r.counters name (ref n));
        r.total <- r.total + n
      end

let incr t name = add t name 1

let counters t =
  match t with
  | Null -> []
  | Rec r ->
      Hashtbl.fold (fun name c acc -> (name, !c) :: acc) r.counters []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total_ticks = function Null -> 0 | Rec r -> r.total

let enter t name =
  match t with
  | Null -> ()
  | Rec r ->
      r.stack <-
        { frame_name = name; ticks_at_enter = r.total; children_rev = [] }
        :: r.stack;
      r.sink (Enter name)

let exit t =
  match t with
  | Null -> ()
  | Rec r -> (
      match r.stack with
      | [] -> invalid_arg "Obs.exit: no open span"
      | f :: rest ->
          let node =
            {
              name = f.frame_name;
              ticks = r.total - f.ticks_at_enter;
              children = List.rev f.children_rev;
            }
          in
          (match rest with
          | [] -> r.roots_rev <- node :: r.roots_rev
          | parent :: _ -> parent.children_rev <- node :: parent.children_rev);
          r.stack <- rest;
          r.sink (Exit { name = node.name; ticks = node.ticks }))

let span t name f =
  match t with
  | Null -> f ()
  | Rec _ ->
      enter t name;
      Fun.protect ~finally:(fun () -> exit t) f

let span_tree = function Null -> [] | Rec r -> List.rev r.roots_rev

let flush t =
  match t with
  | Null -> ()
  | Rec r ->
      List.iter (fun (name, total) -> r.sink (Counter { name; total })) (counters t)

let counters_to_json t =
  Json.Obj (List.map (fun (name, total) -> (name, Json.Int total)) (counters t))

let spans_to_json t =
  let rec node s =
    Json.Obj
      [ ("name", Json.String s.name);
        ("ticks", Json.Int s.ticks);
        ("children", Json.List (List.map node s.children)) ]
  in
  Json.List (List.map node (span_tree t))
