(* Sign-magnitude arbitrary-precision integers.

   Magnitudes are little-endian [int array]s of base-2^30 digits with no
   leading zero digit; the magnitude of zero is the empty array. Digits fit
   comfortably in OCaml's 63-bit native ints, so schoolbook multiplication
   (digit products < 2^60) and Knuth Algorithm D division need no special
   carry handling beyond [land]/[asr], which OCaml evaluates with floor
   semantics on negative intermediate values. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

let normalize_mag mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length mag then mag else Array.sub mag 0 !n

let make sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else if n = Stdlib.min_int then
    (* -2^62 on 64-bit: |min_int| has no native representation. *)
    { sign = -1; mag = [| 0; 0; 4 |] }
  else begin
    let sign = if n > 0 then 1 else -1 in
    let rec digits acc n = if n = 0 then acc else digits ((n land mask) :: acc) (n lsr base_bits) in
    make sign (Array.of_list (List.rev (digits [] (abs n))))
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let sign t = t.sign
let is_zero t = t.sign = 0
let num_digits t = Array.length t.mag

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else if x.sign = 0 then 0
  else if x.sign > 0 then cmp_mag x.mag y.mag
  else cmp_mag y.mag x.mag

let equal x y = compare x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y
let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t
let is_one t = t.sign = 1 && Array.length t.mag = 1 && t.mag.(0) = 1

(* |a| + |b| *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let t = da + db + !carry in
    r.(i) <- t land mask;
    carry := t lsr base_bits
  done;
  r

(* |a| - |b|, requires |a| >= |b| *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let t = a.(i) - db + !borrow in
    r.(i) <- t land mask;
    borrow := t asr base_bits
  done;
  assert (!borrow = 0);
  r

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then make x.sign (add_mag x.mag y.mag)
  else begin
    match cmp_mag x.mag y.mag with
    | 0 -> zero
    | c when c > 0 -> make x.sign (sub_mag x.mag y.mag)
    | _ -> make y.sign (sub_mag y.mag x.mag)
  end

let sub x y = add x (neg y)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let t = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- t land mask;
        carry := t lsr base_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    end
  done;
  r

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else make (x.sign * y.sign) (mul_mag x.mag y.mag)

(* |a| shifted left by [s] bits (0 <= s < base_bits), with [extra] spare
   top digits for Algorithm D's dividend extension. *)
let shl_mag a s extra =
  let la = Array.length a in
  let r = Array.make (la + 1 + extra) 0 in
  if s = 0 then Array.blit a 0 r 0 la
  else begin
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) lsl s) lor !carry in
      r.(i) <- t land mask;
      carry := t lsr base_bits
    done;
    r.(la) <- !carry
  end;
  r

(* |a| shifted right by [s] bits (0 <= s < base_bits). *)
let shr_mag a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      let hi = if i + 1 < la then a.(i + 1) else 0 in
      r.(i) <- (a.(i) lsr s) lor ((hi lsl (base_bits - s)) land mask)
    done;
    r
  end

(* |a| / d and |a| mod d for a single digit 0 < d < base. *)
let divmod_mag_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let t = (!r lsl base_bits) lor a.(i) in
    q.(i) <- t / d;
    r := t mod d
  done;
  (q, !r)

let bit_length_digit d =
  let rec go n d = if d = 0 then n else go (n + 1) (d lsr 1) in
  go 0 d

(* Knuth Algorithm D on magnitudes: |u| / |v| with Array.length v >= 2. *)
let divmod_mag_knuth u v =
  let n = Array.length v in
  let m = Array.length u - n in
  let s = base_bits - bit_length_digit v.(n - 1) in
  let un = shl_mag u s 0 in
  (* shl_mag already appends one top digit *)
  let vn = normalize_mag (shl_mag v s 0) in
  assert (Array.length vn = n);
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    let top = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
    let qhat = ref (top / vn.(n - 1)) in
    let rhat = ref (top mod vn.(n - 1)) in
    let adjusting = ref true in
    while !adjusting do
      if !qhat >= base || !qhat * vn.(n - 2) > (!rhat lsl base_bits) lor un.(j + n - 2) then begin
        decr qhat;
        rhat := !rhat + vn.(n - 1);
        if !rhat >= base then adjusting := false
      end
      else adjusting := false
    done;
    (* multiply-and-subtract *)
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let t = un.(i + j) - (!qhat * vn.(i)) + !borrow in
      un.(i + j) <- t land mask;
      borrow := t asr base_bits
    done;
    let t = un.(j + n) + !borrow in
    un.(j + n) <- t land mask;
    if t < 0 then begin
      (* qhat was one too large: add divisor back *)
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let s2 = un.(i + j) + vn.(i) + !carry in
        un.(i + j) <- s2 land mask;
        carry := s2 lsr base_bits
      done;
      un.(j + n) <- (un.(j + n) + !carry) land mask
    end;
    q.(j) <- !qhat
  done;
  let r = shr_mag (Array.sub un 0 n) s in
  (q, r)

let divmod x y =
  if y.sign = 0 then raise Division_by_zero
  else if x.sign = 0 then (zero, zero)
  else if cmp_mag x.mag y.mag < 0 then (zero, x)
  else begin
    let qm, rm =
      if Array.length y.mag = 1 then begin
        let q, r = divmod_mag_small x.mag y.mag.(0) in
        (q, if r = 0 then [||] else [| r |])
      end
      else divmod_mag_knuth x.mag y.mag
    in
    (make (x.sign * y.sign) qm, make x.sign rm)
  end

let div x y = fst (divmod x y)
let rem x y = snd (divmod x y)

let rec gcd_aux a b = if is_zero b then a else gcd_aux b (rem a b)
let gcd x y = gcd_aux (abs x) (abs y)

let pow b n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc b) (mul b b) (n lsr 1)
    else go acc (mul b b) (n lsr 1)
  in
  go one b n

let to_int t =
  match Array.length t.mag with
  | 0 -> Some 0
  | 1 -> Some (t.sign * t.mag.(0))
  | 2 -> Some (t.sign * ((t.mag.(1) lsl base_bits) lor t.mag.(0)))
  | 3 when t.mag.(2) < 1 lsl (62 - (2 * base_bits)) ->
      Some (t.sign * ((t.mag.(2) lsl (2 * base_bits)) lor (t.mag.(1) lsl base_bits) lor t.mag.(0)))
  | 3 when t.sign < 0 && t.mag.(2) = 4 && t.mag.(1) = 0 && t.mag.(0) = 0 -> Some Stdlib.min_int
  | _ -> None

let to_int_exn t =
  match to_int t with Some n -> n | None -> failwith "Bigint.to_int_exn: value does not fit"

let to_float t =
  let f = ref 0.0 in
  for i = Array.length t.mag - 1 downto 0 do
    f := (!f *. float_of_int base) +. float_of_int t.mag.(i)
  done;
  float_of_int t.sign *. !f

let decimal_chunk = 1_000_000_000 (* 10^9 < 2^30 *)

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec chunks acc mag =
      if Array.length mag = 0 then acc
      else begin
        let q, r = divmod_mag_small mag decimal_chunk in
        chunks (r :: acc) (normalize_mag q)
      end
    in
    (match chunks [] t.mag with
    | [] -> assert false
    | first :: rest ->
        if t.sign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let chunk = ref 0 and chunk_len = ref 0 in
  let pow10 = [| 1; 10; 100; 1_000; 10_000; 100_000; 1_000_000; 10_000_000; 100_000_000; 1_000_000_000 |] in
  let flush () =
    if !chunk_len > 0 then begin
      let scale = of_int pow10.(!chunk_len) in
      acc := add (mul !acc scale) (of_int !chunk);
      chunk := 0;
      chunk_len := 0
    end
  in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: invalid character";
    chunk := (!chunk * 10) + (Char.code c - Char.code '0');
    incr chunk_len;
    if !chunk_len = 9 then flush ()
  done;
  flush ();
  if sign < 0 then neg !acc else !acc

(* Overflow-checked native arithmetic. These live here (rather than in
   Rational) because this module owns the "does it fit a native int"
   boundary; Rational's small-value fast path uses them to decide when a
   computation must fall back to the bignum representation. *)

let checked_add a b =
  let s = Stdlib.( + ) a b in
  (* overflow iff the operands agree in sign and the sum does not *)
  if Stdlib.( = ) (Stdlib.( >= ) a 0) (Stdlib.( >= ) b 0)
     && Stdlib.( <> ) (Stdlib.( >= ) s 0) (Stdlib.( >= ) a 0)
  then None
  else Some s

let checked_mul a b =
  if Stdlib.( = ) a 0 || Stdlib.( = ) b 0 then Some 0
    (* [p / b = a] detects overflow except when the division itself wraps
       (min_int / -1), so peel the -1 factors off first *)
  else if Stdlib.( = ) a (-1) then
    if Stdlib.( = ) b Stdlib.min_int then None else Some (Stdlib.( ~- ) b)
  else if Stdlib.( = ) b (-1) then
    if Stdlib.( = ) a Stdlib.min_int then None else Some (Stdlib.( ~- ) a)
  else
    let p = Stdlib.( * ) a b in
    if Stdlib.( = ) (Stdlib.( / ) p b) a then Some p else None

let checked_sub a b =
  let d = Stdlib.( - ) a b in
  (* overflow iff the operands differ in sign and the difference does not
     agree with the minuend's sign *)
  if
    Stdlib.( <> ) (Stdlib.( >= ) a 0) (Stdlib.( >= ) b 0)
    && Stdlib.( <> ) (Stdlib.( >= ) d 0) (Stdlib.( >= ) a 0)
  then None
  else Some d

let pp fmt t = Format.pp_print_string fmt (to_string t)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
