(** Arbitrary-precision signed integers.

    Substrate for the exact rational arithmetic used by the simplex solver
    ({!module:Lp}): tableau pivoting overflows 64-bit machine integers even
    on small LPs, and the container provides no [zarith].

    Values are immutable. The representation is sign-magnitude with the
    magnitude stored little-endian in base [2^30]; all operations are
    schoolbook (adequate for the digit counts reached by LP pivoting on the
    instance sizes this repository handles). *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

(** [of_int n] is exact for every native [int]. *)
val of_int : int -> t

(** [to_int t] is [Some n] when [t] fits a native [int], else [None]. *)
val to_int : t -> int option

(** [to_int_exn t] raises [Failure] when [t] does not fit a native [int]. *)
val to_int_exn : t -> int

(** [of_string s] parses an optional sign followed by decimal digits.
    Raises [Invalid_argument] on malformed input. *)
val of_string : string -> t

(** Decimal rendering, ["-"]-prefixed when negative. *)
val to_string : t -> string

(** [to_float t] is the nearest (up to accumulated rounding) float. *)
val to_float : t -> float

(** {1 Inspection} *)

(** [sign t] is [-1], [0] or [1]. *)
val sign : t -> int

val is_zero : t -> bool
val is_one : t -> bool

(** Number of base-[2^30] digits of the magnitude (0 for zero). *)
val num_digits : t -> int

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [q] truncated toward zero
    and [sign r = sign a] (or [r = 0]); i.e. C-style division.
    Raises [Division_by_zero] when [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** Greatest common divisor; always non-negative, [gcd zero zero = zero]. *)
val gcd : t -> t -> t

(** [pow b n] for [n >= 0]. Raises [Invalid_argument] on negative [n]. *)
val pow : t -> int -> t

(** {1 Overflow-checked native arithmetic}

    Helpers for {!Rational}'s small-value fast path: exact native [int]
    operations that report overflow instead of wrapping, so callers can
    fall back to the bignum representation precisely when needed. *)

(** [checked_add a b] is [Some (a + b)] unless the sum overflows. *)
val checked_add : int -> int -> int option

(** [checked_mul a b] is [Some (a * b)] unless the product overflows. *)
val checked_mul : int -> int -> int option

(** [checked_sub a b] is [Some (a - b)] unless the difference overflows. *)
val checked_sub : int -> int -> int option

(** {1 Convenience operators} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
