(** Deterministic fuel budgets for the exponential solvers.

    A budget counts abstract {e ticks} — search nodes, subset masks,
    simplex pivots — not wall-clock time, so a budgeted run is exactly
    reproducible across machines and CI. Solver hot loops call {!tick};
    when the fuel is gone {!Out_of_fuel} aborts the search and the
    budgeted entry points ({!Active.Exact.solve}, {!Active.Ilp.solve},
    {!Busy.Exact.solve}, {!Busy.Maximize.solve}, {!Lp.solve} — every
    exponential solver takes [?budget] and returns an outcome) turn it
    into a structured {!outcome} carrying the best incumbent found, so a
    caller can degrade to an approximation instead of hanging.

    {!Cascade} is the degradation runner: it tries a list of solver tiers
    in order — each with a fresh budget of the same limit — and returns
    the first definitive answer plus a provenance record of every
    attempt. *)

type t

(** Raised by {!tick} when the fuel is spent. Escapes budgeted solvers
    only through {!Lp.solve} (whose tableau has no meaningful incumbent)
    and the functions documented to re-raise it. *)
exception Out_of_fuel

(** Raised by {!tick} when the budget's deadline probe (see
    {!set_deadline}) reports expiry. Unlike {!Out_of_fuel}, solvers do
    {e not} catch this — it unwinds the whole solve, because a missed
    wall-clock deadline invalidates incumbents and further tiers alike.
    Callers that set a deadline (the [atbt serve] workers) catch it and
    answer with a structured timeout. *)
exception Deadline_exceeded

(** A budget that never exhausts (for the thin unbounded wrappers). *)
val unlimited : unit -> t

(** [limited n] allows exactly [n] ticks. Raises [Invalid_argument] when
    [n < 0]. *)
val limited : int -> t

(** Consume one tick. Raises {!Out_of_fuel} when none remain; [spent]
    then equals the limit. *)
val tick : t -> unit

(** Ticks consumed so far. *)
val spent : t -> int

(** Ticks left ([max_int] for an unlimited budget). *)
val remaining : t -> int

val is_limited : t -> bool
val exhausted : t -> bool

(** [set_deadline ?interval b probe] arms a wall-clock deadline on [b]:
    {!tick} calls [probe ()] on its next invocation and then once every
    [interval] ticks (default 256, amortizing the clock read), raising
    {!Deadline_exceeded} when it returns [true]. The clock stays outside
    this library — pass a closure over [Unix.gettimeofday] (or a fake
    clock in tests), so fuel accounting remains deterministic and a
    budget without a probe behaves exactly as before. Because the check
    rides the existing [tick] sites, every budgeted solver honours
    deadlines with zero new instrumentation; solvers that ignore their
    budget also ignore deadlines (documented per solver by the
    [supports_budget] registry flag). *)
val set_deadline : ?interval:int -> t -> (unit -> bool) -> unit

(** The deadline probe armed on this budget, if any — used by composite
    solvers (the cascades) to re-arm the probe on the fresh per-tier
    budgets they create. *)
val probe : t -> (unit -> bool) option

(** [expired b] polls the probe immediately (no tick consumed); [false]
    when no deadline is armed. *)
val expired : t -> bool

(** Result of a budgeted search: either it ran to completion, or the fuel
    ran out and [incumbent] is the best (feasible but possibly
    suboptimal) answer found within [spent] ticks. *)
type 'a outcome = Complete of 'a | Exhausted of { spent : int; incumbent : 'a }

(** [map f] applies [f] to the payload in either case. *)
val map : ('a -> 'b) -> 'a outcome -> 'b outcome

(** Graceful-degradation runner: exact -> approximation -> greedy. *)
module Cascade : sig
  type status =
    | Answered  (** tier completed with an answer *)
    | No_answer  (** tier completed and proved there is none (infeasible) *)
    | Tier_exhausted  (** tier ran out of fuel; the next tier was tried *)
    | Deadline
        (** the wall-clock deadline expired inside this tier; the
            cascade stopped — no further tier was tried *)

  type attempt = { tier : string; ticks : int; status : status }

  type 'a result = {
    value : 'a option;
    winner : string option;
        (** the tier that completed — also set when it completed with
            [No_answer] (a definitive infeasibility); [None] only when
            every tier exhausted *)
    attempts : attempt list;  (** in run order *)
  }

  (** [run ~limit tiers] gives each [(name, solve)] tier a fresh budget
      of [limit] ticks, in order. A tier returns [Some answer] or [None]
      (definitive: no answer exists) to stop the cascade, or raises
      {!Out_of_fuel} to pass the baton. Total work is at most
      [limit * length tiers] ticks; make the last tier polynomial so the
      cascade always terminates with an answer. With [?obs], each tier
      runs inside a [cascade.<tier>] span and the runner records
      [cascade.attempts], [cascade.ticks] and [cascade.tiers_exhausted]
      counters. With [?deadline], the probe is armed (via
      {!set_deadline}) on every per-tier budget; when it fires the
      aborted attempt is recorded with status {!Deadline}, a
      [cascade.deadline_hits] counter bumps, and the remaining tiers are
      skipped — the result has [value = None] and [winner = None], with
      the partial attempt list as provenance. *)
  val run :
    ?obs:Obs.t ->
    ?deadline:(unit -> bool) ->
    limit:int ->
    (string * (t -> 'a option)) list ->
    'a result

  val pp_attempt : Format.formatter -> attempt -> unit

  (** Model-independent provenance: what each cascade reports about a
      run. The cost type is a parameter (active time is an [int] slot
      count, busy time a rational); [cost_label] / [bound_label] carry the
      model's vocabulary (["cost"]/["mass-bound"] vs.
      ["busy"]/["lower-bound"]) so {!pp_provenance} is the only
      formatter. *)
  type 'cost provenance = {
    winner : string option;
        (** tier that completed — also set on a definitive [No_answer];
            [None] only when every tier exhausted *)
    attempts : attempt list;  (** every tier tried, in run order *)
    cost : 'cost option;  (** cost of the returned answer *)
    bound : 'cost;  (** lower bound on OPT, the gap witness *)
    gap : 'cost option;  (** [cost - bound] when an answer exists *)
    cost_label : string;
    bound_label : string;
  }

  (** Build a provenance from a cascade {!result}; [sub] computes the
      gap in the model's cost type. *)
  val provenance :
    cost_label:string ->
    bound_label:string ->
    sub:('cost -> 'cost -> 'cost) ->
    bound:'cost ->
    cost:'cost option ->
    'a result ->
    'cost provenance

  (** Map the cost type of a provenance (labels and attempts unchanged):
      how the registry lifts a model-specific provenance ([int] slots or
      rational busy time) into the shared objective type. *)
  val map_provenance : ('a -> 'b) -> 'a provenance -> 'b provenance

  (** One [cascade: tier ...] line per attempt, then a final
      [provenance: tier=<w> <cost_label>=<c> <bound_label>=<b> gap=<g>]
      line (or [... no-answer <bound_label>=<b>] without an answer). *)
  val pp_provenance :
    pp_cost:(Format.formatter -> 'cost -> unit) ->
    Format.formatter ->
    'cost provenance ->
    unit

  (** Provenance as a JSON object (winner, attempts, cost, bound, gap)
      for the [--format json] telemetry document. *)
  val provenance_to_json : cost_to_json:('cost -> Obs.Json.t) -> 'cost provenance -> Obs.Json.t
end
