(* Deterministic fuel budgets: a mutable tick counter against a fixed
   limit. Ticks count solver events (search nodes, simplex pivots), never
   wall-clock time, so budgeted runs are bit-for-bit reproducible.

   A budget may additionally carry a deadline probe — an arbitrary
   [unit -> bool] the budget polls every [interval] ticks from inside
   {!tick}. The probe is how wall-clock deadlines compose with fuel:
   the clock stays outside this library (the caller closes over
   [Unix.gettimeofday], or a fake clock in tests), every existing
   [tick] call site becomes a deadline check site for free, and a
   budget without a probe behaves exactly as before. *)

type t = {
  limit : int;
  mutable used : int;
  mutable probe : (unit -> bool) option;
  mutable probe_interval : int;
  mutable next_probe : int;
}

exception Out_of_fuel
exception Deadline_exceeded

let unlimited () =
  { limit = max_int; used = 0; probe = None; probe_interval = 0; next_probe = 0 }

let limited n =
  if n < 0 then invalid_arg "Budget.limited: negative limit";
  { limit = n; used = 0; probe = None; probe_interval = 0; next_probe = 0 }

let set_deadline ?(interval = 256) b probe =
  if interval < 1 then invalid_arg "Budget.set_deadline: interval must be positive";
  b.probe <- Some probe;
  b.probe_interval <- interval;
  (* first probe on the very next tick, so an already-expired deadline
     aborts as soon as the solver does any metered work at all *)
  b.next_probe <- b.used

let probe b = b.probe

let expired b = match b.probe with None -> false | Some p -> p ()

let tick b =
  if b.used >= b.limit then raise Out_of_fuel;
  b.used <- b.used + 1;
  match b.probe with
  | Some p when b.used > b.next_probe ->
      b.next_probe <- b.used + b.probe_interval;
      if p () then raise Deadline_exceeded
  | _ -> ()

let spent b = b.used
let remaining b = if b.limit = max_int then max_int else b.limit - b.used
let is_limited b = b.limit <> max_int
let exhausted b = b.used >= b.limit

type 'a outcome = Complete of 'a | Exhausted of { spent : int; incumbent : 'a }

let map f = function
  | Complete v -> Complete (f v)
  | Exhausted { spent; incumbent } -> Exhausted { spent; incumbent = f incumbent }

module Cascade = struct
  type status = Answered | No_answer | Tier_exhausted | Deadline

  type attempt = { tier : string; ticks : int; status : status }

  type 'a result = {
    value : 'a option;
    winner : string option;
    attempts : attempt list;
  }

  let run ?(obs = Obs.null) ?deadline ~limit tiers =
    let attempts = ref [] in
    let record tier ticks status =
      Obs.incr obs "cascade.attempts";
      Obs.add obs "cascade.ticks" ticks;
      attempts := { tier; ticks; status } :: !attempts
    in
    let rec go = function
      | [] -> { value = None; winner = None; attempts = List.rev !attempts }
      | (name, solve) :: rest -> (
          let b = limited limit in
          (match deadline with Some p -> set_deadline b p | None -> ());
          match Obs.span obs ("cascade." ^ name) (fun () -> solve b) with
          | Some v ->
              record name (spent b) Answered;
              { value = Some v; winner = Some name; attempts = List.rev !attempts }
          | None ->
              record name (spent b) No_answer;
              { value = None; winner = Some name; attempts = List.rev !attempts }
          | exception Out_of_fuel ->
              record name (spent b) Tier_exhausted;
              Obs.incr obs "cascade.tiers_exhausted";
              go rest
          | exception Deadline_exceeded ->
              (* the wall clock is gone for every tier, not just this
                 one: record the aborted attempt and stop the ladder *)
              record name (spent b) Deadline;
              Obs.incr obs "cascade.deadline_hits";
              { value = None; winner = None; attempts = List.rev !attempts })
    in
    go tiers

  let pp_attempt fmt a =
    let verdict =
      match a.status with
      | Answered -> "answered"
      | No_answer -> "no answer (definitive)"
      | Tier_exhausted -> "exhausted"
      | Deadline -> "deadline expired"
    in
    Format.fprintf fmt "tier %s: %s after %d ticks" a.tier verdict a.ticks

  (* One provenance shape for every cascade, with the cost type (int
     active slots vs. rational busy time) as a parameter; the label
     strings let a single formatter reproduce each model's historical
     output byte for byte. *)
  type 'cost provenance = {
    winner : string option;
    attempts : attempt list;
    cost : 'cost option;
    bound : 'cost;
    gap : 'cost option;
    cost_label : string;
    bound_label : string;
  }

  let provenance ~cost_label ~bound_label ~sub ~bound ~cost (r : 'a result) =
    {
      winner = r.winner;
      attempts = r.attempts;
      cost;
      bound;
      gap = Option.map (fun c -> sub c bound) cost;
      cost_label;
      bound_label;
    }

  let map_provenance f p =
    {
      winner = p.winner;
      attempts = p.attempts;
      cost = Option.map f p.cost;
      bound = f p.bound;
      gap = Option.map f p.gap;
      cost_label = p.cost_label;
      bound_label = p.bound_label;
    }

  let pp_provenance ~pp_cost fmt p =
    List.iter (fun a -> Format.fprintf fmt "cascade: %a@." pp_attempt a) p.attempts;
    let tier = Option.value p.winner ~default:"none" in
    match (p.cost, p.gap) with
    | Some c, Some g ->
        Format.fprintf fmt "provenance: tier=%s %s=%a %s=%a gap=%a@." tier p.cost_label pp_cost c
          p.bound_label pp_cost p.bound pp_cost g
    | _ ->
        Format.fprintf fmt "provenance: tier=%s no-answer %s=%a@." tier p.bound_label pp_cost
          p.bound

  let provenance_to_json ~cost_to_json p =
    let attempt_to_json a =
      Obs.Json.Obj
        [ ("tier", Obs.Json.String a.tier);
          ("ticks", Obs.Json.Int a.ticks);
          ( "status",
            Obs.Json.String
              (match a.status with
              | Answered -> "answered"
              | No_answer -> "no-answer"
              | Tier_exhausted -> "exhausted"
              | Deadline -> "deadline") ) ]
    in
    let opt f = function None -> Obs.Json.Null | Some v -> f v in
    Obs.Json.Obj
      [ ("winner", opt (fun w -> Obs.Json.String w) p.winner);
        ("attempts", Obs.Json.List (List.map attempt_to_json p.attempts));
        (p.cost_label, opt cost_to_json p.cost);
        (p.bound_label, cost_to_json p.bound);
        ("gap", opt cost_to_json p.gap) ]
end
