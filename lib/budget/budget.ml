(* Deterministic fuel budgets: a mutable tick counter against a fixed
   limit. Ticks count solver events (search nodes, simplex pivots), never
   wall-clock time, so budgeted runs are bit-for-bit reproducible. *)

type t = { limit : int; mutable used : int }

exception Out_of_fuel

let unlimited () = { limit = max_int; used = 0 }

let limited n =
  if n < 0 then invalid_arg "Budget.limited: negative limit";
  { limit = n; used = 0 }

let tick b =
  if b.used >= b.limit then raise Out_of_fuel;
  b.used <- b.used + 1

let spent b = b.used
let remaining b = if b.limit = max_int then max_int else b.limit - b.used
let is_limited b = b.limit <> max_int
let exhausted b = b.used >= b.limit

type 'a outcome = Complete of 'a | Exhausted of { spent : int; incumbent : 'a }

let map f = function
  | Complete v -> Complete (f v)
  | Exhausted { spent; incumbent } -> Exhausted { spent; incumbent = f incumbent }

module Cascade = struct
  type status = Answered | No_answer | Tier_exhausted

  type attempt = { tier : string; ticks : int; status : status }

  type 'a result = {
    value : 'a option;
    winner : string option;
    attempts : attempt list;
  }

  let run ~limit tiers =
    let attempts = ref [] in
    let record tier ticks status = attempts := { tier; ticks; status } :: !attempts in
    let rec go = function
      | [] -> { value = None; winner = None; attempts = List.rev !attempts }
      | (name, solve) :: rest -> (
          let b = limited limit in
          match solve b with
          | Some v ->
              record name (spent b) Answered;
              { value = Some v; winner = Some name; attempts = List.rev !attempts }
          | None ->
              record name (spent b) No_answer;
              { value = None; winner = Some name; attempts = List.rev !attempts }
          | exception Out_of_fuel ->
              record name (spent b) Tier_exhausted;
              go rest)
    in
    go tiers

  let pp_attempt fmt a =
    let verdict =
      match a.status with
      | Answered -> "answered"
      | No_answer -> "no answer (definitive)"
      | Tier_exhausted -> "exhausted"
    in
    Format.fprintf fmt "tier %s: %s after %d ticks" a.tier verdict a.ticks
end
