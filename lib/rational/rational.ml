(* Two-tier representation. [Small (n, d)] keeps the numerator and
   denominator in native ints so the common pivot arithmetic of the
   simplex allocates no bignums; [Big] is the arbitrary-precision
   fallback. Shared invariants: den > 0, gcd(num, den) = 1 (den = 1 when
   num = 0). Canonical form: a value is [Big] only when its normalized
   numerator or denominator does not fit a native int (min_int is
   excluded from [Small] so negation and [abs] never overflow), hence
   structural equality of the representation coincides with numeric
   equality. *)

type t = Small of int * int | Big of Bigint.t * Bigint.t

(* both arguments >= 0 *)
let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

(* Demote a normalized bignum pair to [Small] when it fits. *)
let of_big_parts num den =
  match (Bigint.to_int num, Bigint.to_int den) with
  | Some n, Some d when n <> min_int && d <> min_int -> Small (n, d)
  | _ -> Big (num, den)

(* Normalize a bignum pair (den <> 0) and demote. *)
let make_big num den =
  if Bigint.is_zero num then Small (0, 1)
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    let num, den = if Bigint.is_one g then (num, den) else (Bigint.div num g, Bigint.div den g) in
    of_big_parts num den
  end

(* Normalize a native pair (d <> 0); min_int operands take the big
   route because their negation/abs overflows. *)
let small n d =
  if n = min_int || d = min_int then make_big (Bigint.of_int n) (Bigint.of_int d)
  else if n = 0 then Small (0, 1)
  else begin
    let n, d = if d < 0 then (-n, -d) else (n, d) in
    let g = gcd_int (abs n) d in
    Small (n / g, d / g)
  end

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  make_big num den

let of_bigint n = of_big_parts n Bigint.one
let of_int n = if n = min_int then Big (Bigint.of_int n, Bigint.one) else Small (n, 1)

let of_ints n d =
  if d = 0 then raise Division_by_zero;
  small n d

let of_float f =
  if not (Float.is_finite f) then
    invalid_arg (Printf.sprintf "Rational.of_float: %h is not finite" f);
  if Float.is_integer f && Float.abs f <= 4503599627370496.0 (* 2^52 *) then
    of_int (int_of_float f)
  else
    (* every finite float is m * 2^e with integer m, |m| < 2^53 *)
    let frac, e = Float.frexp f in
    let m = Bigint.of_int (int_of_float (Float.ldexp frac 53)) in
    let e = e - 53 in
    if e >= 0 then of_bigint (Bigint.mul m (Bigint.pow (Bigint.of_int 2) e))
    else make m (Bigint.pow (Bigint.of_int 2) (-e))

let zero = Small (0, 1)
let one = Small (1, 1)
let two = Small (2, 1)
let half = Small (1, 2)
let minus_one = Small (-1, 1)
let num = function Small (n, _) -> Bigint.of_int n | Big (n, _) -> n
let den = function Small (_, d) -> Bigint.of_int d | Big (_, d) -> d
let sign = function Small (n, _) -> Stdlib.compare n 0 | Big (n, _) -> Bigint.sign n
let is_zero = function Small (0, _) -> true | _ -> false
let is_integer = function Small (_, d) -> d = 1 | Big (_, d) -> Bigint.is_one d

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
      let n = Bigint.of_string (String.sub s 0 i) in
      let d = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      (* "1/0" is malformed input, not a division: parse errors must stay
         in the Invalid_argument family callers already catch *)
      if Bigint.is_zero d then invalid_arg "Rational.of_string: zero denominator";
      make n d
  | None -> (
      match String.index_opt s '.' with
      | None -> of_bigint (Bigint.of_string s)
      | Some i ->
          let int_part = String.sub s 0 i in
          let frac = String.sub s (i + 1) (String.length s - i - 1) in
          if String.length frac = 0 then invalid_arg "Rational.of_string: trailing dot";
          let scale = Bigint.pow (Bigint.of_int 10) (String.length frac) in
          let negative = String.length int_part > 0 && (int_part.[0] = '-') in
          let int_value = if int_part = "" || int_part = "-" || int_part = "+" then Bigint.zero else Bigint.of_string int_part in
          let frac_value = Bigint.of_string frac in
          let magnitude = Bigint.add (Bigint.mul (Bigint.abs int_value) scale) frac_value in
          make (if negative then Bigint.neg magnitude else magnitude) scale)

(* Canonical representation: numeric equality is representation equality. *)
let equal a b =
  match (a, b) with
  | Small (an, ad), Small (bn, bd) -> an = bn && ad = bd
  | Big (an, ad), Big (bn, bd) -> Bigint.equal an bn && Bigint.equal ad bd
  | Small _, Big _ | Big _, Small _ -> false

let compare_big a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den (dens > 0) *)
  Bigint.compare (Bigint.mul (num a) (den b)) (Bigint.mul (num b) (den a))

let compare a b =
  match (a, b) with
  | Small (an, ad), Small (bn, bd) -> (
      match (Bigint.checked_mul an bd, Bigint.checked_mul bn ad) with
      | Some x, Some y -> Stdlib.compare x y
      | _ -> compare_big a b)
  | _ -> compare_big a b

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg = function
  | Small (n, d) -> Small (-n, d) (* n <> min_int by invariant *)
  | Big (n, d) -> of_big_parts (Bigint.neg n) d

let abs t = if sign t < 0 then neg t else t

let add_big a b =
  make_big
    (Bigint.add (Bigint.mul (num a) (den b)) (Bigint.mul (num b) (den a)))
    (Bigint.mul (den a) (den b))

let add a b =
  match (a, b) with
  | Small (an, ad), Small (bn, bd) -> (
      match (Bigint.checked_mul an bd, Bigint.checked_mul bn ad, Bigint.checked_mul ad bd) with
      | Some x, Some y, Some d -> (
          match Bigint.checked_add x y with Some n -> small n d | None -> add_big a b)
      | _ -> add_big a b)
  | _ -> add_big a b

let sub a b = add a (neg b)

let mul_big a b = make_big (Bigint.mul (num a) (num b)) (Bigint.mul (den a) (den b))

let mul a b =
  match (a, b) with
  | Small (an, ad), Small (bn, bd) -> (
      (* cross-reduce first: keeps intermediates (and overflow falls) small *)
      let g1 = gcd_int (Stdlib.abs an) bd and g2 = gcd_int (Stdlib.abs bn) ad in
      let an = an / g1 and bd = bd / g1 and bn = bn / g2 and ad = ad / g2 in
      match (Bigint.checked_mul an bn, Bigint.checked_mul ad bd) with
      | Some n, Some d -> small n d
      | _ -> mul_big a b)
  | _ -> mul_big a b

let inv = function
  | Small (0, _) -> raise Division_by_zero
  | Small (n, d) -> if n < 0 then Small (-d, -n) else Small (d, n)
  | Big (n, d) -> make d n

let div a b = mul a (inv b)

(* a - b*c fused: cross-reduce the product as [mul] does, then combine
   with [a] through one checked small-int pass; any overflow falls back
   to the exact two-step form. One canonicalization instead of two on
   the fast path — this is the sparse LU elimination kernel. *)
let submul a b c =
  match (a, b, c) with
  | Small (an, ad), Small (bn, bd), Small (cn, cd) -> (
      let g1 = gcd_int (Stdlib.abs bn) cd and g2 = gcd_int (Stdlib.abs cn) bd in
      let bn = bn / g1 and cd = cd / g1 in
      let cn = cn / g2 and bd = bd / g2 in
      match (Bigint.checked_mul bn cn, Bigint.checked_mul bd cd) with
      | Some pn, Some pd -> (
          match
            (Bigint.checked_mul an pd, Bigint.checked_mul pn ad, Bigint.checked_mul ad pd)
          with
          | Some x, Some y, Some d -> (
              match Bigint.checked_sub x y with
              | Some n -> small n d
              | None -> sub a (mul b c))
          | _ -> sub a (mul b c))
      | _ -> sub a (mul b c))
  | _ -> sub a (mul b c)

let floor = function
  | Small (n, d) ->
      if d = 1 then Small (n, 1)
      else if n >= 0 then Small (n / d, 1)
      else Small ((n / d) - (if n mod d = 0 then 0 else 1), 1)
  | Big (n, d) as t ->
      if Bigint.is_one d then t
      else
        let q, r = Bigint.divmod n d in
        if Bigint.is_zero r || Bigint.sign n >= 0 then of_bigint q
        else of_bigint (Bigint.sub q Bigint.one)

let ceil t = neg (floor (neg t))

let to_int = function Small (n, 1) -> Some n | _ -> None

let floor_int t =
  match floor t with
  | Small (n, _) -> n
  | Big _ -> failwith "Rational.floor_int: out of native range"

let ceil_int t =
  match ceil t with
  | Small (n, _) -> n
  | Big _ -> failwith "Rational.ceil_int: out of native range"

let to_float = function
  | Small (n, d) -> float_of_int n /. float_of_int d
  | Big (n, d) -> Bigint.to_float n /. Bigint.to_float d

let to_string = function
  | Small (n, 1) -> string_of_int n
  | Small (n, d) -> string_of_int n ^ "/" ^ string_of_int d
  | Big (n, d) ->
      if Bigint.is_one d then Bigint.to_string n
      else Bigint.to_string n ^ "/" ^ Bigint.to_string d

let pp fmt t = Format.pp_print_string fmt (to_string t)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( <> ) a b = not (equal a b)
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
