type t = { num : Bigint.t; den : Bigint.t }

(* Invariant: den > 0 and gcd(num, den) = 1 (den = 1 when num = 0). *)

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    if Bigint.is_one g then { num; den } else { num = Bigint.div num g; den = Bigint.div den g }
  end

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)
let zero = of_int 0
let one = of_int 1
let two = of_int 2
let half = of_ints 1 2
let minus_one = of_int (-1)
let num t = t.num
let den t = t.den
let sign t = Bigint.sign t.num
let is_zero t = Bigint.is_zero t.num
let is_integer t = Bigint.is_one t.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
      let n = Bigint.of_string (String.sub s 0 i) in
      let d = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make n d
  | None -> (
      match String.index_opt s '.' with
      | None -> of_bigint (Bigint.of_string s)
      | Some i ->
          let int_part = String.sub s 0 i in
          let frac = String.sub s (i + 1) (String.length s - i - 1) in
          if String.length frac = 0 then invalid_arg "Rational.of_string: trailing dot";
          let scale = Bigint.pow (Bigint.of_int 10) (String.length frac) in
          let negative = String.length int_part > 0 && (int_part.[0] = '-') in
          let int_value = if int_part = "" || int_part = "-" || int_part = "+" then Bigint.zero else Bigint.of_string int_part in
          let frac_value = Bigint.of_string frac in
          let magnitude = Bigint.add (Bigint.mul (Bigint.abs int_value) scale) frac_value in
          make (if negative then Bigint.neg magnitude else magnitude) scale)

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den (dens > 0) *)
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let neg t = { t with num = Bigint.neg t.num }
let abs t = if sign t < 0 then neg t else t
let add a b = make (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)) (Bigint.mul a.den b.den)
let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv t =
  if is_zero t then raise Division_by_zero;
  make t.den t.num

let div a b = mul a (inv b)

let floor t =
  let q, r = Bigint.divmod t.num t.den in
  if Bigint.is_zero r || Bigint.sign t.num >= 0 then of_bigint q else of_bigint (Bigint.sub q Bigint.one)

let ceil t = neg (floor (neg t))

let to_int t = if is_integer t then Bigint.to_int t.num else None

let floor_int t =
  match Bigint.to_int (num (floor t)) with
  | Some n -> n
  | None -> failwith "Rational.floor_int: out of native range"

let ceil_int t =
  match Bigint.to_int (num (ceil t)) with
  | Some n -> n
  | None -> failwith "Rational.ceil_int: out of native range"

let to_float t = Bigint.to_float t.num /. Bigint.to_float t.den

let to_string t =
  if is_integer t then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( <> ) a b = not (equal a b)
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
