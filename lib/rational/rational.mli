(** Exact rational arithmetic over {!Bigint}.

    Every value is kept normalized: the denominator is strictly positive and
    [gcd num den = 1]. Rationals are the time domain of the busy-time model
    (real-valued release times, deadlines and the epsilon gadgets of the
    paper's tight examples) and the scalar field of the simplex solver. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val half : t
val minus_one : t

(** {1 Construction} *)

(** [make num den] is [num/den] normalized. Raises [Division_by_zero]
    when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

(** [of_ints num den]. Raises [Division_by_zero] when [den = 0]. *)
val of_ints : int -> int -> t

val of_int : int -> t
val of_bigint : Bigint.t -> t

(** [of_float f] is the exact value of [f]: every finite float is the
    dyadic rational [m * 2^e] for an integer mantissa [m], so the
    conversion is lossless ([to_float (of_float f) = f]) and e.g.
    [of_float 0.1] is [3602879701896397/36028797018963968], not [1/10].
    Raises [Invalid_argument] on nan and infinities. *)
val of_float : float -> t

(** [of_string s] accepts ["n"], ["n/d"] and decimal ["i.f"] forms.
    Raises [Invalid_argument] or [Failure] on malformed input — including
    a zero denominator, which is a parse error here, never
    [Division_by_zero]. *)
val of_string : string -> t

(** {1 Deconstruction} *)

val num : t -> Bigint.t

(** Always strictly positive. *)
val den : t -> Bigint.t

val to_float : t -> float

(** ["n"] when integral, ["n/d"] otherwise. *)
val to_string : t -> string

(** [to_int t] is [Some n] iff [t] is integral and fits a native int. *)
val to_int : t -> int option

(** {1 Predicates and comparisons} *)

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [submul a b c] is [a - b * c] in a single normalization — the fused
    elimination kernel of the sparse LU factorization, where it saves one
    intermediate gcd pass per updated cell on the small-int fast path. *)
val submul : t -> t -> t -> t

(** Raises [Division_by_zero] when the divisor is zero. *)
val div : t -> t -> t

(** Raises [Division_by_zero] on zero. *)
val inv : t -> t

(** Largest integer [<= t], as a rational. *)
val floor : t -> t

(** Smallest integer [>= t], as a rational. *)
val ceil : t -> t

(** [floor_int t] as a native int. Raises [Failure] when out of range. *)
val floor_int : t -> int

val ceil_int : t -> int

(** {1 Operators} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( <> ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
