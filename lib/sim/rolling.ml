(* Rolling-horizon re-optimization on a Core.Session. See rolling.mli
   for the epoch semantics; the warm state lives in two session slots
   (the full-instance feasibility oracle and the pinned LP1 model) plus
   the session's LP warm-basis cache, so the cold baseline is literally
   the same code run against a fresh session each epoch. *)

module Q = Rational
module S = Workload.Slotted
module B = Workload.Bjob
module CI = Core.Instance
module CR = Core.Result
module Session = Core.Session
module Cascade = Budget.Cascade
module Oracle = Active.Feasibility.Oracle

type epoch = {
  index : int;
  now : int;
  arrived : int;
  window_jobs : int;
  opened : int list;
  energy : int;
  work : int;
  completed : int;
  sla_misses : int;
  feasible : bool;
  lower_bound : Q.t option;
  ticks : int;
  lp_work : int;
  warm_hits : int;
  degraded : bool;
  provenance : CR.objective Cascade.provenance option;
}

type run = {
  instance : S.t;
  epoch_len : int;
  algorithm : string;
  warm : bool;
  epochs : epoch list;
  schedule : S.schedule;
  open_slots : int list;
  total_energy : int;
  total_work : int;
  total_misses : int;
  completed_jobs : int;
  replay : Replay.report option;
}

type config = {
  epoch_len : int;
  lookahead : int option;
  algorithm : string;
  lp_pricing : Lp.pricing;
  epoch_budget : int option;
  epoch_deadline : (unit -> unit -> bool) option;
  warm : bool;
}

let default_config =
  {
    epoch_len = 4;
    lookahead = None;
    algorithm = "cascade";
    lp_pricing = Lp.default_pricing;
    epoch_budget = Some 500_000;
    epoch_deadline = None;
    warm = true;
  }

let of_busy ~g jobs =
  let to_int what id q =
    match Q.to_int q with
    | Some n when n >= 0 -> n
    | _ ->
        invalid_arg
          (Printf.sprintf "Rolling.of_busy: job %d has non-integral %s %s" id what (Q.to_string q))
  in
  let slotted (j : B.t) =
    S.job ~id:j.B.id ~release:(to_int "release" j.B.id j.B.release)
      ~deadline:(to_int "deadline" j.B.id j.B.deadline)
      ~length:(to_int "length" j.B.id j.B.length)
  in
  S.make ~g (List.map slotted jobs)

(* ------------------------------------------------------- mutable state -- *)

type jstate = {
  job : S.job;
  arrival : int;
  mutable remaining : int;
  mutable committed : int list;  (* reverse order of commitment *)
  mutable missed : bool;
}

(* Session slot: the warm feasibility oracle over the full instance.
   [active] tracks which job ids are wired in, [closed_upto] how far the
   passed-unopened slot closures have been applied, so each epoch only
   pushes the delta onto the warm residual graph. *)
type oracle_state = {
  o_inst : S.t;
  oracle : Oracle.t;
  o_active : (int, unit) Hashtbl.t;
  mutable closed_upto : int;
}

(* Session slot: the pinned LP1 lower bound. Rebuilt only when the
   missed set grows (the model excludes missed jobs); otherwise bounds
   of newly decided y variables are rewritten in place and the re-solve
   warm-starts from the previous optimal basis — the bound-only
   dual-repair path. *)
type lp_state = {
  l_inst : S.t;
  l_missed : int;
  model : Lp.model;
  yvars : (int * Lp.var) list;
  mutable pinned_upto : int;
  mutable basis : Lp.Basis.t option;
}

let oracle_key : oracle_state Session.Slot.key = Session.Slot.key ~name:"rolling-oracle" ()
let lp_key : lp_state Session.Slot.key = Session.Slot.key ~name:"rolling-lp1" ()
let counter obs name = match List.assoc_opt name (Obs.counters obs) with Some v -> v | None -> 0

(* Deterministic earliest-deadline-first commit for degraded epochs:
   fill the slots of the commit window in order, each up to [g] units,
   jobs by (deadline, id). Greedy — it never idles a slot that has
   eligible work, trading energy for progress, which is the right bias
   when the solver could not answer. *)
let edf_commit ~g ~now ~epoch_len wjobs =
  let order =
    List.sort
      (fun ((a : jstate), _) ((b : jstate), _) ->
        let c = compare a.job.S.deadline b.job.S.deadline in
        if c <> 0 then c else compare a.job.S.id b.job.S.id)
      wjobs
  in
  let rem = Hashtbl.create 16 in
  List.iter (fun ((js : jstate), _) -> Hashtbl.replace rem js.job.S.id js.remaining) order;
  let assigned = Hashtbl.create 16 in
  for t = now + 1 to now + epoch_len do
    let cap = ref g in
    List.iter
      (fun ((js : jstate), release') ->
        let id = js.job.S.id in
        let r = Hashtbl.find rem id in
        if !cap > 0 && r > 0 && release' < t && t <= js.job.S.deadline then begin
          decr cap;
          Hashtbl.replace rem id (r - 1);
          let prev = Option.value (Hashtbl.find_opt assigned id) ~default:[] in
          Hashtbl.replace assigned id (t :: prev)
        end)
      order
  done;
  Hashtbl.fold (fun id ts acc -> (id, List.rev ts) :: acc) assigned []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let run ?(obs = Obs.null) ?(config = default_config) ?(arrivals = []) (inst : S.t) =
  let cfg = config in
  if cfg.epoch_len < 1 then invalid_arg "Rolling.run: epoch_len < 1";
  (match cfg.lookahead with
  | Some la when la < cfg.epoch_len -> invalid_arg "Rolling.run: lookahead < epoch_len"
  | _ -> ());
  let g = inst.S.g in
  let jstates =
    Array.map
      (fun (j : S.job) ->
        {
          job = j;
          arrival = Workload.Io.arrival arrivals j.S.id;
          remaining = j.S.length;
          committed = [];
          missed = false;
        })
      inst.S.jobs
  in
  let by_id = Hashtbl.create (Array.length jstates) in
  Array.iter (fun js -> Hashtbl.replace by_id js.job.S.id js) jstates;
  let committed_open : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let persistent = Session.create ~name:"rolling" () in
  let epochs = ref [] in
  let index = ref 0 in
  let now = ref 0 in
  let unfinished () = Array.exists (fun js -> (not js.missed) && js.remaining > 0) jstates in
  while unfinished () do
    let now_ = !now in
    let eobs = Obs.create () in
    let session = if cfg.warm then persistent else Session.create ~name:"rolling-cold" () in
    (* arrivals and SLA misses at epoch start *)
    let arrived js = js.arrival <= now_ in
    let misses = ref 0 in
    Array.iter
      (fun js ->
        if arrived js && (not js.missed) && js.remaining > 0 then
          if js.job.S.deadline - max js.job.S.release now_ < js.remaining then begin
            js.missed <- true;
            incr misses
          end)
      jstates;
    let arrived_count =
      Array.fold_left (fun acc js -> if arrived js then acc + 1 else acc) 0 jstates
    in
    (* the sliding window: arrived, unmissed, unfinished jobs with
       clipped releases and remaining lengths *)
    let wjobs =
      Array.to_list jstates
      |> List.filter_map (fun js ->
             if arrived js && (not js.missed) && js.remaining > 0 then
               let release' = max js.job.S.release now_ in
               match cfg.lookahead with
               | Some la when release' > now_ + la -> None
               | _ -> Some (js, release')
             else None)
    in
    let window_jobs = List.length wjobs in
    let budget =
      match cfg.epoch_budget with Some n -> Budget.limited n | None -> Budget.unlimited ()
    in
    let deadline = Option.map (fun factory -> factory ()) cfg.epoch_deadline in
    (* re-solve the window through the session *)
    let plan, provenance, deadline_hit =
      if wjobs = [] then (Some [], None, false)
      else begin
        let winst =
          S.make ~g
            (List.map
               (fun ((js : jstate), release') ->
                 S.job ~id:js.job.S.id ~release:release' ~deadline:js.job.S.deadline
                   ~length:js.remaining)
               wjobs)
        in
        match
          Session.solve_next ~algorithm:cfg.algorithm
            ~params:[ ("pricing", Lp.pricing_name cfg.lp_pricing) ]
            ~budget ?deadline ~obs:eobs session (CI.Slotted winst)
        with
        | r ->
            let plan =
              match r.CR.witness with
              | Some (CR.Opened { schedule; _ }) -> Some schedule
              | Some (CR.Packing _) | None -> None
            in
            let deadline_hit =
              match r.CR.provenance with
              | Some p ->
                  List.exists (fun (a : Cascade.attempt) -> a.status = Cascade.Deadline) p.attempts
              | None -> false
            in
            (plan, r.CR.provenance, deadline_hit)
        | exception Budget.Deadline_exceeded -> (None, None, true)
        | exception Budget.Out_of_fuel -> (None, None, false)
      end
    in
    let degraded = plan = None in
    let commit =
      match plan with
      | Some schedule ->
          List.filter_map
            (fun (id, slots) ->
              match List.filter (fun t -> now_ < t && t <= now_ + cfg.epoch_len) slots with
              | [] -> None
              | ts -> Some (id, ts))
            schedule
      | None -> edf_commit ~g ~now:now_ ~epoch_len:cfg.epoch_len wjobs
    in
    (* apply the commitment *)
    let work = ref 0 and completed = ref 0 in
    let opened = Hashtbl.create 8 in
    List.iter
      (fun (id, ts) ->
        let js = Hashtbl.find by_id id in
        let n = List.length ts in
        js.remaining <- js.remaining - n;
        js.committed <- List.rev_append ts js.committed;
        work := !work + n;
        if n > 0 && js.remaining = 0 then incr completed;
        List.iter
          (fun t ->
            Hashtbl.replace opened t ();
            Hashtbl.replace committed_open t ())
          ts)
      commit;
    let opened = List.sort compare (Hashtbl.fold (fun t () acc -> t :: acc) opened []) in
    let decided_upto = now_ + cfg.epoch_len in
    (* warm oracle: delta-sync arrivals, misses and passed slot closures
       onto the persistent residual network, then re-augment *)
    let ost =
      Session.reuse ~obs:eobs session oracle_key
        ~validate:(fun st -> st.o_inst == inst)
        ~build:(fun () ->
          {
            o_inst = inst;
            oracle = Oracle.create ~obs:eobs ~open_all:true ~activate_all:false inst;
            o_active = Hashtbl.create 16;
            closed_upto = 0;
          })
    in
    Array.iter
      (fun js ->
        let id = js.job.S.id in
        let wired = Hashtbl.mem ost.o_active id in
        if arrived js && (not js.missed) && not wired then begin
          Oracle.set_job ~obs:eobs ost.oracle ~id ~active:true;
          Hashtbl.replace ost.o_active id ()
        end
        else if js.missed && wired then begin
          Oracle.set_job ~obs:eobs ost.oracle ~id ~active:false;
          Hashtbl.remove ost.o_active id
        end)
      jstates;
    for t = ost.closed_upto + 1 to decided_upto do
      if not (Hashtbl.mem committed_open t) then
        Oracle.set_slot ~obs:eobs ost.oracle ~slot:t ~open_:false
    done;
    ost.closed_upto <- decided_upto;
    let feasible = Oracle.check ~obs:eobs ost.oracle in
    (* pinned LP1 lower bound on the final active time (skipped when the
       wall-clock deadline already fired — the bound is telemetry, not
       worth blowing the epoch's latency for) *)
    let missed_count = Array.fold_left (fun acc js -> acc + Bool.to_int js.missed) 0 jstates in
    let lower_bound =
      if deadline_hit then None
      else begin
        let lst =
          Session.reuse ~obs:eobs session lp_key
            ~validate:(fun st -> st.l_inst == inst && st.l_missed = missed_count)
            ~build:(fun () ->
              let kept =
                Array.to_list jstates
                |> List.filter_map (fun js -> if js.missed then None else Some js.job)
              in
              let model, yvars = Active.Ilp.build_lp1 (S.make ~g kept) in
              { l_inst = inst; l_missed = missed_count; model; yvars; pinned_upto = 0; basis = None })
        in
        List.iter
          (fun (slot, y) ->
            if slot > lst.pinned_upto && slot <= decided_upto then
              if Hashtbl.mem committed_open slot then
                Lp.set_bounds lst.model y ~lower:Q.one ~upper:(Some Q.one)
              else Lp.set_bounds lst.model y ~lower:Q.zero ~upper:(Some Q.zero))
          lst.yvars;
        lst.pinned_upto <- decided_upto;
        (* committed opens that serve only missed jobs have no y in the
           filtered model; they are sunk energy the LP cannot see *)
        let orphans =
          Hashtbl.fold
            (fun t () acc ->
              if List.mem_assoc t lst.yvars then acc else acc + 1)
            committed_open 0
        in
        match Lp.solve ~pricing:cfg.lp_pricing ?warm:lst.basis ~obs:eobs lst.model with
        | Lp.Optimal sol ->
            lst.basis <- Lp.basis sol;
            Some (Q.add (Lp.objective_value sol) (Q.of_int orphans))
        | Lp.Infeasible | Lp.Unbounded -> None
        | exception Budget.Deadline_exceeded -> None
      end
    in
    let ticks =
      match provenance with
      | Some p -> List.fold_left (fun acc (a : Cascade.attempt) -> acc + a.ticks) 0 p.attempts
      | None -> Budget.spent budget
    in
    epochs :=
      {
        index = !index;
        now = now_;
        arrived = arrived_count;
        window_jobs;
        opened;
        energy = List.length opened;
        work = !work;
        completed = !completed;
        sla_misses = !misses;
        feasible;
        lower_bound;
        ticks;
        lp_work = counter eobs "lp.exact_cells";
        warm_hits = counter eobs "session.warm_hits" + counter eobs "lp.warm_starts";
        degraded;
        provenance;
      }
      :: !epochs;
    List.iter (fun (name, v) -> if v > 0 then Obs.add obs name v) (Obs.counters eobs);
    incr index;
    now := now_ + cfg.epoch_len
  done;
  let epochs = List.rev !epochs in
  let schedule =
    Array.to_list jstates |> List.map (fun js -> (js.job.S.id, List.sort compare js.committed))
  in
  let open_slots = List.sort compare (Hashtbl.fold (fun t () acc -> t :: acc) committed_open []) in
  let total_misses = Array.fold_left (fun acc js -> acc + Bool.to_int js.missed) 0 jstates in
  let completed_jobs =
    Array.fold_left (fun acc js -> if js.remaining = 0 then acc + 1 else acc) 0 jstates
  in
  let replay =
    if total_misses = 0 && Array.length jstates > 0 then
      Some (Replay.run_active inst { Active.Solution.open_slots; schedule })
    else None
  in
  let total_energy = List.length open_slots in
  let total_work = List.fold_left (fun acc e -> acc + e.work) 0 epochs in
  Obs.add obs "sim.epochs" (List.length epochs);
  Obs.add obs "sim.energy" total_energy;
  Obs.add obs "sim.sla_misses" total_misses;
  Obs.add obs "sim.work" total_work;
  Obs.add obs "sim.degraded_epochs"
    (List.fold_left (fun acc e -> acc + Bool.to_int e.degraded) 0 epochs);
  {
    instance = inst;
    epoch_len = cfg.epoch_len;
    algorithm = cfg.algorithm;
    warm = cfg.warm;
    epochs;
    schedule;
    open_slots;
    total_energy;
    total_work;
    total_misses;
    completed_jobs;
    replay;
  }

(* ------------------------------------------------------------- output -- *)

let slots_to_string slots = String.concat "," (List.map string_of_int slots)

let pp fmt (r : run) =
  Format.fprintf fmt "rolling: g=%d jobs=%d epoch-len=%d algorithm=%s %s@." r.instance.S.g
    (S.num_jobs r.instance) r.epoch_len r.algorithm
    (if r.warm then "warm" else "cold");
  List.iter
    (fun e ->
      Format.fprintf fmt "epoch %d now=%d: arrived=%d window=%d opened={%s} work=%d done=%d miss=%d %s bound=%s warm=%d%s@."
        e.index e.now e.arrived e.window_jobs (slots_to_string e.opened) e.work e.completed
        e.sla_misses
        (if e.feasible then "feasible" else "infeasible")
        (match e.lower_bound with Some q -> Q.to_string q | None -> "-")
        e.warm_hits
        (if e.degraded then " DEGRADED" else "");
      if e.degraded then
        Option.iter
          (fun (p : CR.objective Cascade.provenance) ->
            List.iter (fun a -> Format.fprintf fmt "  cascade: %a@." Cascade.pp_attempt a) p.attempts)
          e.provenance)
    r.epochs;
  Format.fprintf fmt "total: energy=%d work=%d completed=%d/%d misses=%d@." r.total_energy
    r.total_work r.completed_jobs (S.num_jobs r.instance) r.total_misses;
  match r.replay with
  | Some rep ->
      Format.fprintf fmt "replay: energy=%s utilization=%s %s@."
        (Q.to_string rep.Replay.total_energy)
        (Q.to_string rep.Replay.utilization)
        (if rep.Replay.violations = [] then "ok" else "VIOLATIONS")
  | None -> Format.fprintf fmt "replay: skipped (%d missed jobs)@." r.total_misses

let objective_to_json : CR.objective -> Obs.Json.t = function
  | CR.Slots n -> Obs.Json.Int n
  | CR.Busy q | CR.Value q -> Obs.Json.String (Q.to_string q)

let to_json (r : run) : Obs.Json.t =
  let open Obs.Json in
  let epoch_to_json e =
    Obj
      [
        ("index", Int e.index);
        ("now", Int e.now);
        ("arrived", Int e.arrived);
        ("window_jobs", Int e.window_jobs);
        ("opened", List (List.map (fun t -> Int t) e.opened));
        ("energy", Int e.energy);
        ("work", Int e.work);
        ("completed", Int e.completed);
        ("sla_misses", Int e.sla_misses);
        ("feasible", Bool e.feasible);
        ( "lower_bound",
          match e.lower_bound with Some q -> String (Q.to_string q) | None -> Null );
        ("ticks", Int e.ticks);
        ("lp_work", Int e.lp_work);
        ("warm_hits", Int e.warm_hits);
        ("degraded", Bool e.degraded);
        ( "provenance",
          match e.provenance with
          | Some p -> Cascade.provenance_to_json ~cost_to_json:objective_to_json p
          | None -> Null );
      ]
  in
  Obj
    [
      ("schema", Int 1);
      ("kind", String "rolling");
      ("g", Int r.instance.S.g);
      ("jobs", Int (S.num_jobs r.instance));
      ("epoch_len", Int r.epoch_len);
      ("algorithm", String r.algorithm);
      ("warm", Bool r.warm);
      ("epochs", List (List.map epoch_to_json r.epochs));
      ( "totals",
        Obj
          [
            ("epochs", Int (List.length r.epochs));
            ("energy", Int r.total_energy);
            ("work", Int r.total_work);
            ("completed", Int r.completed_jobs);
            ("sla_misses", Int r.total_misses);
            ( "degraded_epochs",
              Int (List.fold_left (fun acc e -> acc + Bool.to_int e.degraded) 0 r.epochs) );
          ] );
      ("open_slots", List (List.map (fun t -> Int t) r.open_slots));
      ( "replay",
        match r.replay with
        | Some rep ->
            Obj
              [
                ("energy", String (Q.to_string rep.Replay.total_energy));
                ("switch_ons", Int rep.Replay.total_switch_ons);
                ("peak_parallelism", Int rep.Replay.peak_parallelism);
                ("utilization", String (Q.to_string rep.Replay.utilization));
                ("violations", List (List.map (fun v -> String v) rep.Replay.violations));
              ]
        | None -> Null );
    ]
