module Q = Rational
module B = Workload.Bjob
module Bundle = Busy.Bundle
module I = Intervals.Interval
module U = Intervals.Union
module S = Workload.Slotted

type machine_trace = {
  machine : int;
  on_periods : I.t list;
  energy : Q.t;
  switch_ons : int;
  peak_jobs : int;
}

type report = {
  traces : machine_trace list;
  total_energy : Q.t;
  total_switch_ons : int;
  peak_parallelism : int;
  utilization : Q.t;
  violations : string list;
}

(* Sweep a list of (interval, weight) loads: returns the union of the
   support and the peak total weight, via event ordering. *)
let sweep loads =
  let events =
    List.concat_map (fun ((iv : I.t), w) -> [ (iv.I.lo, w); (iv.I.hi, -w) ]) loads
  in
  (* at equal coordinates process ends (+/-: ends first) so half-open
     intervals touching at a point do not count as overlapping *)
  let events = List.sort (fun (a, wa) (b, wb) -> let c = Q.compare a b in if c <> 0 then c else compare wa wb) events in
  let peak = ref 0 in
  let current = ref 0 in
  List.iter
    (fun (_, w) ->
      current := !current + w;
      if !current > !peak then peak := !current)
    events;
  (U.of_list (List.map fst loads), !peak)

let trace_of_machine machine loads =
  let support, peak = sweep loads in
  let periods = U.components support in
  { machine;
    on_periods = periods;
    energy = U.measure support;
    switch_ons = List.length periods;
    peak_jobs = peak }

let finish ~g ~job_time ~violations traces =
  let total_energy = List.fold_left (fun acc t -> Q.add acc t.energy) Q.zero traces in
  let utilization =
    if Q.is_zero total_energy then Q.zero else Q.div job_time (Q.mul (Q.of_int g) total_energy)
  in
  { traces;
    total_energy;
    total_switch_ons = List.fold_left (fun acc t -> acc + t.switch_ons) 0 traces;
    peak_parallelism = List.fold_left (fun acc t -> max acc t.peak_jobs) 0 traces;
    utilization;
    violations = List.rev violations }

let run_packing ~g packing =
  if g < 1 then invalid_arg "Sim.run_packing: g < 1";
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let traces =
    List.mapi
      (fun machine bundle ->
        let loads =
          List.filter_map
            (fun (j : B.t) ->
              if B.is_interval j then Some (B.interval_of j, 1)
              else begin
                fail "machine %d: job %d is flexible" machine j.B.id;
                None
              end)
            bundle
        in
        let t = trace_of_machine machine loads in
        if t.peak_jobs > g then
          fail "machine %d: %d simultaneous jobs exceed capacity %d" machine t.peak_jobs g;
        t)
      packing
  in
  let job_time = B.total_length (List.concat packing) in
  finish ~g ~job_time ~violations:!violations traces

let run_active (inst : S.t) (sol : Active.Solution.t) =
  let violations = ref [] in
  (match Active.Solution.verify inst sol with
  | Some problem -> violations := [ problem ]
  | None -> ());
  (* the machine is on exactly during the open slots *)
  let slot_iv s = I.make (Q.of_int (s - 1)) (Q.of_int s) in
  let loads_of_slots slots = List.map (fun s -> (slot_iv s, 0)) slots in
  (* job units as weight-1 loads for peak counting *)
  let unit_loads =
    List.concat_map (fun (_, slots) -> List.map (fun s -> (slot_iv s, 1)) slots) sol.Active.Solution.schedule
  in
  let t = trace_of_machine 0 (loads_of_slots sol.Active.Solution.open_slots @ unit_loads) in
  (* energy counts open slots even when idle: recompute support from the
     open slots only *)
  let power_support = U.of_list (List.map slot_iv sol.Active.Solution.open_slots) in
  let t =
    { t with
      on_periods = U.components power_support;
      energy = U.measure power_support;
      switch_ons = List.length (U.components power_support) }
  in
  if t.peak_jobs > inst.S.g then
    violations := Printf.sprintf "%d simultaneous units exceed capacity %d" t.peak_jobs inst.S.g :: !violations;
  let job_time = Q.of_int (S.total_length inst) in
  finish ~g:inst.S.g ~job_time ~violations:!violations [ t ]

let run_preemptive ~g detail =
  if g < 1 then invalid_arg "Sim.run_preemptive: g < 1";
  let violations = ref [] in
  (* Each interesting interval spreads its active jobs over ceil(n/g)
     machines; model machine m of cell c as one powered interval. For the
     energy account we lay machines out per cell. *)
  let traces = ref [] in
  let idx = ref 0 in
  List.iter
    (fun ((cell : I.t), active, machines) ->
      let n = List.length active in
      if machines < (n + g - 1) / g then
        violations := Printf.sprintf "cell %s under-provisioned" (I.to_string cell) :: !violations;
      for m = 0 to machines - 1 do
        let jobs_here = min g (max 0 (n - (m * g))) in
        traces :=
          { machine = !idx;
            on_periods = [ cell ];
            energy = I.length cell;
            switch_ons = 1;
            peak_jobs = jobs_here }
          :: !traces;
        incr idx
      done)
    detail;
  let job_time =
    List.fold_left
      (fun acc ((cell : I.t), active, _) ->
        Q.add acc (Q.mul (Q.of_int (List.length active)) (I.length cell)))
      Q.zero detail
  in
  finish ~g ~job_time ~violations:!violations (List.rev !traces)
