(** Discrete-event execution of schedules with an explicit machine power
    model — the energy semantics behind both objectives of the paper.

    A machine consumes one unit of energy per unit of time it is powered;
    it powers on when its first job starts and off when its last active
    job ends (re-powering for later jobs). Executing a schedule therefore
    measures exactly the model's objective — total busy (or active) time —
    plus operational statistics the analytic objective hides: power
    transitions, peak parallelism, utilization.

    The simulators replay schedules event by event and independently
    re-check every constraint (capacity, windows, demands); they are used
    by the tests as an end-to-end oracle: simulated energy must equal the
    analytic cost computed by the algorithms. *)

type machine_trace = {
  machine : int;
  on_periods : Intervals.Interval.t list;  (** maximal powered intervals, sorted *)
  energy : Rational.t;  (** measure of the on periods *)
  switch_ons : int;  (** number of power-on transitions *)
  peak_jobs : int;  (** max simultaneous jobs observed *)
}

type report = {
  traces : machine_trace list;
  total_energy : Rational.t;
  total_switch_ons : int;
  peak_parallelism : int;  (** max over machines *)
  utilization : Rational.t;
      (** total job time / (g * total energy); 0 when no energy is spent *)
  violations : string list;  (** empty iff the schedule was valid *)
}

(** Replay a busy-time packing: one machine per bundle, capacity [g].
    Checks capacity at every event and that every job is an interval
    job. *)
val run_packing : g:int -> Busy.Bundle.packing -> report

(** Replay an active-time solution: a single machine whose power state
    follows the open slots. Checks the schedule against the instance and
    that job units only run in open slots. *)
val run_active : Workload.Slotted.t -> Active.Solution.t -> report

(** Replay a preemptive busy-time solution (Theorem 7's derived bounded-g
    schedule): machines per interesting interval as reported by
    [Busy.Preemptive.bounded]. *)
val run_preemptive :
  g:int ->
  (Intervals.Interval.t * Workload.Bjob.t list * int) list ->
  report
