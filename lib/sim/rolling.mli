(** Epoch-driven rolling-horizon re-optimization — the datacenter
    replay loop the ROADMAP names as the showcase tying the service,
    online and perf tracks together.

    A trace is a slotted instance plus per-job arrival times (the
    [arrival <t>] directive of {!Workload.Io}; busy-time traces with
    integral coordinates convert via {!of_busy}). Time advances in
    epochs of [epoch_len] slots. Each epoch the simulator

    + marks SLA misses: arrived jobs that can no longer finish inside
      their window (their remaining work exceeds the slots left before
      the deadline) are dropped and counted;
    + re-solves the sliding window — the arrived, unfinished jobs with
      clipped releases and remaining lengths, up to [lookahead] slots
      ahead — with a registry solver through a {!Core.Session}
      ([epoch_budget] fuel, [epoch_deadline] probe composed on top);
    + commits the plan's first [epoch_len] slots: executed units are
      pinned — jobs already started keep their slots, only future work
      is re-decided next epoch;
    + re-checks global feasibility on a warm
      {!Active.Feasibility.Oracle} held in a session slot: the full
      network is built once, then arrivals activate jobs and passed
      unopened slots close incrementally on the warm residual graph;
    + re-solves a pinned LP1 held in another session slot for a lower
      bound on the final active time: committed opens are pinned
      [y_t = 1] and passed unopened slots [y_t = 0] via
      {!Lp.set_bounds} (a bound-only rewrite, so the warm re-solve
      takes the dual-repair path), warm from the previous epoch's
      basis.

    With [warm = false] every epoch gets a fresh session (and rebuilds
    the oracle and the LP model cold) — the baseline the bench's
    warm-vs-cold work gate compares against; the answers are identical,
    only the work differs.

    When the epoch solve degrades — deadline expired (the cascade's
    provenance records the aborted tiers), budget exhausted without an
    incumbent, or an infeasible overload — the epoch falls back to a
    deterministic earliest-deadline-first commit and is marked
    [degraded], with the cascade provenance preserved. *)

type epoch = {
  index : int;
  now : int;  (** epoch start time; slots [<= now] are the past *)
  arrived : int;  (** jobs known at epoch start (cumulative) *)
  window_jobs : int;  (** jobs in this epoch's re-solved window *)
  opened : int list;  (** slots committed open this epoch, sorted *)
  energy : int;  (** [List.length opened] *)
  work : int;  (** job units executed this epoch *)
  completed : int;  (** jobs finishing this epoch *)
  sla_misses : int;  (** jobs newly marked missed this epoch *)
  feasible : bool;
      (** warm-oracle check: the committed open set still admits a
          schedule completing every arrived, unmissed job (past units may
          be re-assigned within committed open slots) *)
  lower_bound : Rational.t option;
      (** pinned-LP1 bound on the final total active time; [None] when
          the pinned LP was skipped (deadline epoch) or infeasible —
          the latter is an early warning: the commitments (or an
          overload) admit no completion of the remaining full job set,
          so a miss is under way *)
  ticks : int;  (** fuel spent by the epoch's window solve *)
  lp_work : int;  (** [lp.exact_cells] recorded this epoch *)
  warm_hits : int;  (** session warm hits this epoch (slots + bases) *)
  degraded : bool;
  provenance : Core.Result.objective Budget.Cascade.provenance option;
}

type run = {
  instance : Workload.Slotted.t;
  epoch_len : int;
  algorithm : string;
  warm : bool;
  epochs : epoch list;  (** in order *)
  schedule : Workload.Slotted.schedule;
      (** all committed units per job (missed jobs keep the units they
          did execute) *)
  open_slots : int list;  (** all committed open slots, sorted *)
  total_energy : int;
  total_work : int;
  total_misses : int;
  completed_jobs : int;
  replay : Replay.report option;
      (** {!Replay.run_active} replay of the committed schedule as the
          energy oracle — only when every job completed (a schedule with
          missed jobs fails the offline checker by construction) *)
}

type config = {
  epoch_len : int;
  lookahead : int option;  (** window extent in slots; [None] = horizon *)
  algorithm : string;  (** registry solver for the window re-solve *)
  lp_pricing : Lp.pricing;
      (** simplex pricing policy for every LP inside the loop: threaded
          to the window re-solve as the registry [pricing] param and to
          the pinned LP1 bound directly *)
  epoch_budget : int option;  (** fuel per epoch; [None] = unlimited *)
  epoch_deadline : (unit -> unit -> bool) option;
      (** per-epoch deadline probe factory: called at each epoch start,
          the returned probe is armed on that epoch's budget
          ({!Budget.set_deadline}). The CLI turns [--epoch-deadline-ms]
          into a wall-clock factory, or an always-expired probe for [0]
          (deterministic degradation) *)
  warm : bool;  (** share one session across epochs (default) *)
}

(** [epoch_len = 4], lookahead to the horizon, ["cascade"], Dantzig
    pricing, fuel 500_000 per epoch, no deadline, warm. *)
val default_config : config

(** Convert an integral busy-time trace to the slotted model ([g] from
    the caller, slot [t] = [\[t-1, t)]). Raises [Invalid_argument] when
    a coordinate is not a nonnegative integer. *)
val of_busy : g:int -> Workload.Bjob.t list -> Workload.Slotted.t

(** Replay the trace. [arrivals] follow the {!Workload.Io} convention
    (missing ids arrive at 0). Counters recorded into [obs]: the
    underlying [lp.*]/[flow.*]/[session.*] counters plus
    [sim.epochs], [sim.energy], [sim.sla_misses], [sim.work],
    [sim.degraded_epochs]. *)
val run :
  ?obs:Obs.t -> ?config:config -> ?arrivals:(int * int) list -> Workload.Slotted.t -> run

(** Per-epoch text table plus the totals line; degraded epochs print
    their cascade attempts underneath. *)
val pp : Format.formatter -> run -> unit

(** Schema-1 style document: config echo, one object per epoch, totals.
    Byte-stable for a fixed trace and config (no wall-clock fields). *)
val to_json : run -> Obs.Json.t
