(* Library interface. [Replay] holds the discrete-event schedule
   replayers (the original Sim module, unchanged); [Rolling] the
   epoch-driven rolling-horizon re-optimization loop built on
   [Core.Session]. The include keeps every historical [Sim.run_*] /
   [Sim.report] spelling working. *)

include Replay
module Rolling = Rolling
