(** Geometry of half-open time intervals over exact rational time.

    This is the shared vocabulary of the busy-time model: spans (projection
    measure, Definition 9/10 in the paper), *interesting intervals*
    (Definition 12: maximal intervals in which no job begins or ends), raw
    demand [A(t)] and the demand profile [D(t) = ceil(A(t)/g)]
    (Definitions 11/13), tracks (Definition 14: pairwise-disjoint job sets)
    and the maximum-length track computation used by GreedyTracking. *)

module Interval : sig
  (** A half-open interval [\[lo, hi)] with [lo <= hi]. *)
  type t = private { lo : Rational.t; hi : Rational.t }

  (** Raises [Invalid_argument] when [hi < lo]. *)
  val make : Rational.t -> Rational.t -> t

  val of_ints : int -> int -> t
  val length : t -> Rational.t
  val is_empty : t -> bool
  val contains : t -> Rational.t -> bool

  (** Positive-measure intersection ([\[0,1)] and [\[1,2)] do not overlap). *)
  val overlaps : t -> t -> bool

  (** [subset a b] iff [a] is contained in [b] (empty intervals in all). *)
  val subset : t -> t -> bool

  val intersect : t -> t -> t option
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

(** Canonical unions of intervals: sorted, disjoint, non-adjacent, nonempty
    components. The busy time of a machine is the measure of the union of
    its jobs' intervals. *)
module Union : sig
  type t

  val empty : t
  val of_list : Interval.t list -> t

  (** Maximal components, sorted by left endpoint. *)
  val components : t -> Interval.t list

  (** Total measure — [Sp(S)] in the paper. *)
  val measure : t -> Rational.t

  val add : t -> Interval.t -> t
  val union : t -> t -> t
  val contains_point : t -> Rational.t -> bool

  (** [gaps u within] lists the maximal subintervals of [within] that are
      disjoint from [u], in order. *)
  val gaps : t -> Interval.t -> Interval.t list

  (** Measure of [of_list (iv :: components u)] minus measure of [u]: how
      much busy time adding [iv] would cost. *)
  val marginal : t -> Interval.t -> Rational.t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** [span intervals] is the measure of the union — [Sp] of a job set. *)
val span : Interval.t list -> Rational.t

module Demand : sig
  (** A cell of the demand profile: an interesting interval together with
      its raw demand (number of covering intervals). *)
  type cell = { cell : Interval.t; raw : int }

  (** Event-ordered cells of strictly positive length covering
      [\[min lo, max hi)], including zero-demand cells (holes). Empty input
      gives []. Input intervals of zero length are ignored. *)
  val cells : Interval.t list -> cell list

  (** Positive-demand cells only. *)
  val support : Interval.t list -> cell list

  (** Raw demand at a point. *)
  val raw_at : Interval.t list -> Rational.t -> int

  (** Maximum raw demand over all cells. *)
  val max_raw : Interval.t list -> int

  (** Demand-profile lower bound (Observation 4):
      [sum over cells of length * ceil(raw/g)]. Raises [Invalid_argument]
      when [g <= 0]. *)
  val profile_cost : g:int -> Interval.t list -> Rational.t

  (** Mass lower bound (Observation 2): [sum of lengths / g]. *)
  val mass_bound : g:int -> Interval.t list -> Rational.t
end

module Track : sig
  (** [max_weight_disjoint ~interval ~weight items] is a maximum-weight
      subset of pairwise non-overlapping items (ties broken arbitrarily),
      with its weight, by the classic weighted-interval-scheduling DP in
      O(n log n). Zero-length items never conflict with anything. Weights
      must be non-negative. *)
  val max_weight_disjoint :
    interval:('a -> Interval.t) -> weight:('a -> Rational.t) -> 'a list -> 'a list * Rational.t

  (** [is_track ~interval items] iff items are pairwise non-overlapping. *)
  val is_track : interval:('a -> Interval.t) -> 'a list -> bool
end
