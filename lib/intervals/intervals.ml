module Q = Rational

module Interval = struct
  type t = { lo : Q.t; hi : Q.t }

  let make lo hi =
    if Q.compare hi lo < 0 then invalid_arg "Intervals.Interval.make: hi < lo";
    { lo; hi }

  let of_ints a b = make (Q.of_int a) (Q.of_int b)
  let length t = Q.sub t.hi t.lo
  let is_empty t = Q.equal t.lo t.hi
  let contains t x = Q.compare t.lo x <= 0 && Q.compare x t.hi < 0
  let overlaps a b = Q.compare a.lo b.hi < 0 && Q.compare b.lo a.hi < 0
  let subset a b = is_empty a || (Q.compare b.lo a.lo <= 0 && Q.compare a.hi b.hi <= 0)

  let intersect a b =
    let lo = Q.max a.lo b.lo and hi = Q.min a.hi b.hi in
    if Q.compare lo hi < 0 then Some { lo; hi } else None

  let equal a b = Q.equal a.lo b.lo && Q.equal a.hi b.hi

  let compare a b =
    let c = Q.compare a.lo b.lo in
    if c <> 0 then c else Q.compare a.hi b.hi

  let to_string t = Printf.sprintf "[%s, %s)" (Q.to_string t.lo) (Q.to_string t.hi)
  let pp fmt t = Format.pp_print_string fmt (to_string t)
end

module Union = struct
  (* components sorted by lo; pairwise disjoint and non-adjacent; nonempty *)
  type t = Interval.t list

  let empty = []
  let components t = t

  let of_list intervals =
    let intervals = List.filter (fun iv -> not (Interval.is_empty iv)) intervals in
    let sorted = List.sort Interval.compare intervals in
    let rec merge acc = function
      | [] -> List.rev acc
      | iv :: rest -> (
          match acc with
          | (prev : Interval.t) :: acc_rest when Q.compare iv.Interval.lo prev.Interval.hi <= 0 ->
              let merged = Interval.make prev.Interval.lo (Q.max prev.Interval.hi iv.Interval.hi) in
              merge (merged :: acc_rest) rest
          | _ -> merge (iv :: acc) rest)
    in
    merge [] sorted

  let measure t = List.fold_left (fun acc iv -> Q.add acc (Interval.length iv)) Q.zero t
  let add t iv = of_list (iv :: t)
  let union a b = of_list (a @ b)
  let contains_point t x = List.exists (fun iv -> Interval.contains iv x) t

  let gaps t (within : Interval.t) =
    let rec go cursor comps acc =
      if Q.compare cursor within.Interval.hi >= 0 then List.rev acc
      else
        match comps with
        | [] -> List.rev (Interval.make cursor within.Interval.hi :: acc)
        | (c : Interval.t) :: rest ->
            if Q.compare c.Interval.hi cursor <= 0 then go cursor rest acc
            else if Q.compare c.Interval.lo within.Interval.hi >= 0 then
              List.rev (Interval.make cursor within.Interval.hi :: acc)
            else begin
              let acc =
                if Q.compare cursor c.Interval.lo < 0 then Interval.make cursor c.Interval.lo :: acc else acc
              in
              go (Q.max cursor c.Interval.hi) rest acc
            end
    in
    if Interval.is_empty within then [] else go within.Interval.lo t []

  let marginal t iv =
    if Interval.is_empty iv then Q.zero
    else List.fold_left (fun acc g -> Q.add acc (Interval.length g)) Q.zero (gaps t iv)

  let equal a b = List.length a = List.length b && List.for_all2 Interval.equal a b

  let pp fmt t =
    Format.fprintf fmt "{%s}" (String.concat " u " (List.map Interval.to_string t))
end

let span intervals = Union.measure (Union.of_list intervals)

module Demand = struct
  type cell = { cell : Interval.t; raw : int }

  let cells intervals =
    let intervals = List.filter (fun iv -> not (Interval.is_empty iv)) intervals in
    if intervals = [] then []
    else begin
      let events =
        List.sort_uniq Q.compare
          (List.concat_map (fun (iv : Interval.t) -> [ iv.Interval.lo; iv.Interval.hi ]) intervals)
      in
      let rec pairs = function
        | a :: (b :: _ as rest) -> (a, b) :: pairs rest
        | _ -> []
      in
      List.map
        (fun (a, bq) ->
          let cell = Interval.make a bq in
          let raw =
            List.fold_left (fun acc iv -> if Interval.overlaps iv cell then acc + 1 else acc) 0 intervals
          in
          { cell; raw })
        (pairs events)
    end

  let support intervals = List.filter (fun c -> c.raw > 0) (cells intervals)

  let raw_at intervals x =
    List.fold_left (fun acc iv -> if Interval.contains iv x then acc + 1 else acc) 0 intervals

  let max_raw intervals = List.fold_left (fun acc c -> Stdlib.max acc c.raw) 0 (cells intervals)

  let profile_cost ~g intervals =
    if g <= 0 then invalid_arg "Intervals.Demand.profile_cost: g <= 0";
    List.fold_left
      (fun acc c ->
        let levels = (c.raw + g - 1) / g in
        Q.add acc (Q.mul (Q.of_int levels) (Interval.length c.cell)))
      Q.zero (cells intervals)

  let mass_bound ~g intervals =
    if g <= 0 then invalid_arg "Intervals.Demand.mass_bound: g <= 0";
    let total = List.fold_left (fun acc iv -> Q.add acc (Interval.length iv)) Q.zero intervals in
    Q.div total (Q.of_int g)
end

module Track = struct
  let is_track ~interval items =
    let rec go = function
      | [] -> true
      | x :: rest -> List.for_all (fun y -> not (Interval.overlaps (interval x) (interval y))) rest && go rest
    in
    go items

  let max_weight_disjoint ~interval ~weight items =
    let arr = Array.of_list items in
    Array.sort (fun a bq -> Q.compare (interval a).Interval.hi (interval bq).Interval.hi) arr;
    let n = Array.length arr in
    if n = 0 then ([], Q.zero)
    else begin
      (* pred.(i): largest j < i with hi_j <= lo_i, or -1 *)
      let pred = Array.make n (-1) in
      for i = 0 to n - 1 do
        let lo_i = (interval arr.(i)).Interval.lo in
        (* binary search over sorted hi values *)
        let lo = ref 0 and hi = ref (i - 1) and res = ref (-1) in
        while !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          if Q.compare (interval arr.(mid)).Interval.hi lo_i <= 0 then begin
            res := mid;
            lo := mid + 1
          end
          else hi := mid - 1
        done;
        pred.(i) <- !res
      done;
      let dp = Array.make (n + 1) Q.zero in
      let take = Array.make n false in
      for i = 1 to n do
        let w = weight arr.(i - 1) in
        let with_i = Q.add w dp.(pred.(i - 1) + 1) in
        if Q.compare with_i dp.(i - 1) > 0 then begin
          dp.(i) <- with_i;
          take.(i - 1) <- true
        end
        else dp.(i) <- dp.(i - 1)
      done;
      let rec collect i acc = if i < 0 then acc else if take.(i) then collect pred.(i) (arr.(i) :: acc) else collect (i - 1) acc in
      (collect (n - 1) [], dp.(n))
    end
end
