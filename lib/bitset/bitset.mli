(** Immutable fixed-width bitsets over [0 .. width-1].

    Substrate for the exact active-time search: the branch and bound keeps
    its chosen-open slot set as a bitset over relevant-slot indices instead
    of rebuilding [int list]s per node, so the per-node bookkeeping is a
    handful of word operations and one small array copy.

    Values are immutable: [add]/[remove] return a fresh set, so a DFS can
    keep the set of the current path on the stack with no undo logic.
    Widths beyond one machine word are supported (backed by an [int]
    array, 62 bits per word). *)

type t

(** [create ~width] is the empty set over [0 .. width-1]. Raises
    [Invalid_argument] on a negative width. *)
val create : width:int -> t

(** [full ~width] contains every element of [0 .. width-1]. *)
val full : width:int -> t

val width : t -> int

(** Raise [Invalid_argument] when the element is outside
    [0 .. width-1]. *)

val mem : t -> int -> bool

val add : t -> int -> t
val remove : t -> int -> t

(** Set union; the widths must agree (raises [Invalid_argument]
    otherwise). *)
val union : t -> t -> t

val inter : t -> t -> t

(** Number of elements, via the word-parallel (SWAR) {!popcount_word}. *)
val cardinal : t -> int

(** [suffix ~width i] is [{i, i+1, ..., width-1}] (empty when
    [i >= width]); clamps [i < 0] to 0. *)
val suffix : width:int -> int -> t

(** Members in increasing order. *)
val to_list : t -> int list

(** [fold f acc t] folds [f] over the members in increasing order. *)
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val iter : (int -> unit) -> t -> unit
val equal : t -> t -> bool

(** Word-parallel (SWAR) population count of a native [int], treating it
    as a 63-bit value; O(log word) operations, no loop over bits. Exposed
    so other hot paths (e.g. the brute-force subset enumerator) share the
    implementation. *)
val popcount_word : int -> int

val pp : Format.formatter -> t -> unit
