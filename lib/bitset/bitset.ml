(* Immutable fixed-width bitsets backed by an int array, 62 bits per word
   (bit 62 stays clear so every word is a non-negative OCaml int). *)

let bits_per_word = 62

type t = { width : int; words : int array }

(* SWAR popcount on a non-negative OCaml int (63-bit, our words use 62).
   The usual 64-bit constants, with the first mask truncated to the odd
   positions reachable by [x lsr 1] (0x5555... does not fit an OCaml
   int literal; bits of [x lsr 1] stop at 60, so 0x1555... covers them). *)
let popcount_word x =
  let x = x - ((x lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56 land 0x7F

let nwords width = (width + bits_per_word - 1) / bits_per_word

let create ~width =
  if width < 0 then invalid_arg "Bitset.create: negative width";
  { width; words = Array.make (nwords width) 0 }

let full ~width =
  if width < 0 then invalid_arg "Bitset.full: negative width";
  let words = Array.make (nwords width) 0 in
  for i = 0 to Array.length words - 1 do
    let lo = i * bits_per_word in
    let bits = Stdlib.min bits_per_word (width - lo) in
    words.(i) <- (1 lsl bits) - 1
  done;
  { width; words }

let width t = t.width

let check t i name =
  if i < 0 || i >= t.width then invalid_arg ("Bitset." ^ name ^ ": element out of range")

let mem t i =
  check t i "mem";
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let with_word t w f =
  let words = Array.copy t.words in
  words.(w) <- f words.(w);
  { t with words }

let add t i =
  check t i "add";
  if mem t i then t else with_word t (i / bits_per_word) (fun x -> x lor (1 lsl (i mod bits_per_word)))

let remove t i =
  check t i "remove";
  if not (mem t i) then t
  else with_word t (i / bits_per_word) (fun x -> x land lnot (1 lsl (i mod bits_per_word)))

let zip name f a b =
  if a.width <> b.width then invalid_arg ("Bitset." ^ name ^ ": width mismatch");
  { a with words = Array.init (Array.length a.words) (fun i -> f a.words.(i) b.words.(i)) }

let union a b = zip "union" ( lor ) a b
let inter a b = zip "inter" ( land ) a b
let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let suffix ~width i =
  if width < 0 then invalid_arg "Bitset.suffix: negative width";
  let i = Stdlib.max 0 i in
  let base = full ~width in
  for w = 0 to Array.length base.words - 1 do
    let lo = w * bits_per_word in
    if i > lo then
      base.words.(w) <-
        base.words.(w) land lnot ((1 lsl Stdlib.min bits_per_word (i - lo)) - 1)
  done;
  base

let fold f acc t =
  let acc = ref acc in
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    while !word <> 0 do
      (* lowest set bit *)
      let b = !word land - !word in
      let rec log2 b i = if b = 1 then i else log2 (b lsr 1) (i + 1) in
      acc := f !acc ((w * bits_per_word) + log2 b 0);
      word := !word land lnot b
    done
  done;
  !acc

let iter f t = fold (fun () i -> f i) () t
let to_list t = List.rev (fold (fun acc i -> i :: acc) [] t)
let equal a b = a.width = b.width && a.words = b.words

let pp fmt t =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int (to_list t)))
