(** Maximum flow on directed graphs with integral capacities.

    Implementation: Dinic's algorithm (BFS level graph + DFS blocking flows
    with the current-arc optimization), O(V^2 E) worst case and far faster
    on the unit-ish bipartite networks this repository builds:

    - the active-time feasibility network [G_feas] (paper Fig. 2), whose
      integral max flow both decides feasibility and yields a schedule;
    - the event DAG used by the busy-time 2-approximation to extract pairs
      of support-covering tracks (flow value 2, decomposed into paths).

    Graphs are mutable; [max_flow] saturates the graph in place and may be
    called repeatedly (flow accumulates). Use [reset] to zero all flow. *)

type t

(** Opaque handle for querying a specific edge after a flow computation. *)
type edge

(** [create n] is an empty graph on vertices [0 .. n-1]. *)
val create : int -> t

val vertex_count : t -> int

(** [add_edge t ~src ~dst ~cap] adds a directed edge. A residual reverse
    edge of capacity 0 is added internally. Raises [Invalid_argument] on a
    negative capacity or an out-of-range vertex. *)
val add_edge : t -> src:int -> dst:int -> cap:int -> edge

(** [set_cap t e cap] replaces the capacity of [e] {e without} touching
    the flow already routed through it — the reset-free reuse path that
    lets a warm network be retargeted between feasibility probes. Raises
    [Invalid_argument] on a negative capacity or one below the edge's
    current flow (use {!drain_edge} first to displace it). *)
val set_cap : t -> edge -> int -> unit

(** [drain_edge t e ~source ~sink] cancels all flow currently routed
    through [e], walking the displaced units back to [source] on the tail
    side and forward to [sink] on the head side along flow-carrying arcs
    (cycles of flow met on the way are cancelled in place). Returns the
    number of units drained — the total flow value drops by exactly that
    much, leaving a consistent smaller flow ready for [set_cap] +
    {!augment}. With [?obs], records [flow.drains] /
    [flow.drained_units]. *)
val drain_edge : ?obs:Obs.t -> t -> edge -> source:int -> sink:int -> int

(** [max_flow t ~source ~sink] pushes a maximum flow and returns its value
    (on a second call: the additional value pushed). With [?obs], records
    [flow.max_flow_calls], [flow.bfs_rounds] (Dinic phases) and
    [flow.augmentations] (blocking-flow paths) counters. *)
val max_flow : ?obs:Obs.t -> t -> source:int -> sink:int -> int

(** [augment t ~source ~sink] re-runs the blocking-flow search on the warm
    residual graph and returns the {e additional} flow pushed.
    Operationally identical to {!max_flow} (Dinic is residual-driven), but
    counted separately ([flow.augment_calls]) so telemetry distinguishes
    cold solves from incremental re-augmentations after
    [set_cap]/[drain_edge]. *)
val augment : ?obs:Obs.t -> t -> source:int -> sink:int -> int

(** Flow currently routed through an edge (never negative). *)
val flow : t -> edge -> int

val cap : t -> edge -> int

(** Zero all flow, keeping the topology and capacities. *)
val reset : t -> unit

(** [min_cut t ~source] is the source side of a minimum cut, valid after
    [max_flow]: [side.(v)] iff [v] is residual-reachable from [source]. *)
val min_cut : t -> source:int -> bool array

(** [decompose_paths t ~source ~sink] splits the current flow into simple
    source-sink paths [(vertices, amount)]; the sum of amounts equals the
    flow value. The graph's flow is consumed conceptually but left intact
    (decomposition works on a copy of per-edge flow). Cycles of flow, if
    any, are ignored. *)
val decompose_paths : t -> source:int -> sink:int -> (int list * int) list
