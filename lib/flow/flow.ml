(* Dinic's algorithm. Edges live in growable parallel arrays; the reverse
   (residual) edge of edge [i] is [i lxor 1]. [cap] holds residual capacity;
   the original capacity is kept separately so per-edge flow is
   [orig - residual] for forward edges. *)

type t = {
  mutable dst : int array;
  mutable cap : int array; (* residual *)
  mutable orig : int array; (* original capacity; 0 for reverse edges *)
  mutable edge_count : int;
  adj : int list array; (* per-vertex edge indices, reversed order *)
  n : int;
}

and _adj = int list array

type edge = int

let create n =
  { dst = Array.make 16 0; cap = Array.make 16 0; orig = Array.make 16 0; edge_count = 0;
    adj = Array.make (Stdlib.max n 1) []; n }

let vertex_count t = t.n

let ensure_room t =
  let len = Array.length t.dst in
  if t.edge_count + 2 > len then begin
    let grow a = Array.append a (Array.make len 0) in
    t.dst <- grow t.dst;
    t.cap <- grow t.cap;
    t.orig <- grow t.orig
  end

let add_edge t ~src ~dst ~cap =
  if cap < 0 then invalid_arg "Flow.add_edge: negative capacity";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then invalid_arg "Flow.add_edge: vertex out of range";
  ensure_room t;
  let e = t.edge_count in
  t.dst.(e) <- dst;
  t.cap.(e) <- cap;
  t.orig.(e) <- cap;
  t.dst.(e + 1) <- src;
  t.cap.(e + 1) <- 0;
  t.orig.(e + 1) <- 0;
  t.edge_count <- e + 2;
  t.adj.(src) <- e :: t.adj.(src);
  t.adj.(dst) <- (e + 1) :: t.adj.(dst);
  e

let flow t e = t.orig.(e) - t.cap.(e)
let cap t e = t.orig.(e)

(* Reset-free capacity update: the flow already routed through the edge is
   preserved (only the residual headroom changes), so a warm graph can be
   retargeted between probes without rebuilding. Lowering the capacity
   below the current flow would leave an infeasible pseudo-flow; callers
   drain first. *)
let set_cap t e cap =
  if cap < 0 then invalid_arg "Flow.set_cap: negative capacity";
  let f = t.orig.(e) - t.cap.(e) in
  if cap < f then invalid_arg "Flow.set_cap: capacity below current flow; drain_edge first";
  t.orig.(e) <- cap;
  t.cap.(e) <- cap - f

let reset t = Array.blit t.orig 0 t.cap 0 t.edge_count

(* Cancel up to [total] units of flow along flow-carrying walks from
   [start] to [stop]. [backward] walks against the flow (selecting
   residual reverse arcs, i.e. arcs whose paired forward edge carries flow
   INTO the current vertex); forward walks select forward arcs carrying
   flow OUT of it. Cycles of flow met along a walk are cancelled in place
   (flow strictly decreases, so this terminates), exactly as in
   [decompose_paths]. *)
let cancel_flow t ~start ~stop ~backward total =
  let want s = if backward then t.orig.(s) = 0 else t.orig.(s) > 0 in
  let avail s = if t.orig.(s) = 0 then t.cap.(s) else t.orig.(s) - t.cap.(s) in
  let reduce s amt =
    if t.orig.(s) = 0 then begin
      t.cap.(s) <- t.cap.(s) - amt;
      t.cap.(s lxor 1) <- t.cap.(s lxor 1) + amt
    end
    else begin
      t.cap.(s) <- t.cap.(s) + amt;
      t.cap.(s lxor 1) <- t.cap.(s lxor 1) - amt
    end
  in
  let remaining = ref total in
  let pos = Array.make t.n (-1) in
  let stack_v = Array.make (t.n + 1) 0 in
  let stack_e = Array.make (t.n + 1) 0 in
  let exception Restart in
  while !remaining > 0 && start <> stop do
    try
      Array.fill pos 0 t.n (-1);
      stack_v.(0) <- start;
      pos.(start) <- 0;
      let depth = ref 0 in
      while stack_v.(!depth) <> stop do
        let v = stack_v.(!depth) in
        match List.find_opt (fun s -> want s && avail s > 0) t.adj.(v) with
        | None -> invalid_arg "Flow.drain_edge: flow not traceable to the endpoint"
        | Some s ->
            let w = t.dst.(s) in
            if w <> stop && pos.(w) >= 0 then begin
              (* cycle w .. v -> w: cancel its flow, restart the walk *)
              let lo = pos.(w) in
              let amt = ref (avail s) in
              for i = lo + 1 to !depth do
                amt := Stdlib.min !amt (avail stack_e.(i))
              done;
              reduce s !amt;
              for i = lo + 1 to !depth do
                reduce stack_e.(i) !amt
              done;
              raise Restart
            end
            else begin
              incr depth;
              stack_v.(!depth) <- w;
              stack_e.(!depth) <- s;
              pos.(w) <- !depth
            end
      done;
      let amt = ref !remaining in
      for i = 1 to !depth do
        amt := Stdlib.min !amt (avail stack_e.(i))
      done;
      for i = 1 to !depth do
        reduce stack_e.(i) !amt
      done;
      remaining := !remaining - !amt
    with Restart -> ()
  done

let drain_edge ?(obs = Obs.null) t e ~source ~sink =
  if t.orig.(e) = 0 && t.cap.(e) = 0 then 0
  else begin
    let total = flow t e in
    if total <= 0 then 0
    else begin
      let a = t.dst.(e lxor 1) and b = t.dst.(e) in
      (* zero the edge's own flow, then cancel the displaced units on the
         source side (backward from the tail) and sink side (forward from
         the head); total flow value drops by [total] *)
      t.cap.(e) <- t.cap.(e) + total;
      t.cap.(e lxor 1) <- t.cap.(e lxor 1) - total;
      cancel_flow t ~start:a ~stop:source ~backward:true total;
      cancel_flow t ~start:b ~stop:sink ~backward:false total;
      Obs.incr obs "flow.drains";
      Obs.add obs "flow.drained_units" total;
      total
    end
  end

(* BFS levels on the residual graph; level.(v) = -1 when unreachable. *)
let bfs t ~source ~sink level =
  Array.fill level 0 t.n (-1);
  level.(source) <- 0;
  let queue = Queue.create () in
  Queue.push source queue;
  let found = ref false in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun e ->
        let w = t.dst.(e) in
        if t.cap.(e) > 0 && level.(w) < 0 then begin
          level.(w) <- level.(v) + 1;
          if w = sink then found := true;
          Queue.push w queue
        end)
      t.adj.(v)
  done;
  !found

(* One Dinic run on the current residual graph; returns the ADDITIONAL
   flow pushed. [call_counter] distinguishes cold calls ([max_flow]) from
   warm re-augmentations ([augment]) in the telemetry. *)
let dinic ?(obs = Obs.null) ~call_counter t ~source ~sink =
  if source = sink then invalid_arg "Flow.max_flow: source = sink";
  let level = Array.make t.n (-1) in
  let iter = Array.make t.n [] in
  let total = ref 0 in
  let bfs_rounds = ref 0 in
  let augmentations = ref 0 in
  (* DFS for a blocking flow along level-increasing residual edges. *)
  let rec dfs v limit =
    if v = sink then limit
    else begin
      let pushed = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        match iter.(v) with
        | [] -> continue_ := false
        | e :: rest ->
            let w = t.dst.(e) in
            if t.cap.(e) > 0 && level.(w) = level.(v) + 1 then begin
              let d = dfs w (Stdlib.min limit t.cap.(e)) in
              if d > 0 then begin
                t.cap.(e) <- t.cap.(e) - d;
                t.cap.(e lxor 1) <- t.cap.(e lxor 1) + d;
                pushed := d;
                continue_ := false
              end
              else iter.(v) <- rest
            end
            else iter.(v) <- rest
      done;
      !pushed
    end
  in
  while bfs t ~source ~sink level do
    incr bfs_rounds;
    Array.blit t.adj 0 iter 0 t.n;
    let d = ref (dfs source max_int) in
    while !d > 0 do
      incr augmentations;
      total := !total + !d;
      d := dfs source max_int
    done
  done;
  Obs.incr obs call_counter;
  Obs.add obs "flow.bfs_rounds" !bfs_rounds;
  Obs.add obs "flow.augmentations" !augmentations;
  !total

let max_flow ?obs t ~source ~sink = dinic ?obs ~call_counter:"flow.max_flow_calls" t ~source ~sink

let augment ?obs t ~source ~sink = dinic ?obs ~call_counter:"flow.augment_calls" t ~source ~sink

let min_cut t ~source =
  let side = Array.make t.n false in
  side.(source) <- true;
  let queue = Queue.create () in
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun e ->
        let w = t.dst.(e) in
        if t.cap.(e) > 0 && not side.(w) then begin
          side.(w) <- true;
          Queue.push w queue
        end)
      t.adj.(v)
  done;
  side

let decompose_paths t ~source ~sink =
  (* Work on a copy of per-edge flow; repeatedly trace a positive-flow walk
     from source. Cycles encountered along the walk are cancelled in place
     (flow strictly decreases, so this terminates); walks reaching the sink
     become simple paths. *)
  let fl = Array.init t.edge_count (fun e -> if t.orig.(e) > 0 then flow t e else 0) in
  let paths = ref [] in
  let pos = Array.make t.n (-1) in
  (* stack_v.(i) = i-th vertex of the walk; stack_e.(i) = edge into it. *)
  let stack_v = Array.make (t.n + 1) 0 in
  let stack_e = Array.make (t.n + 1) 0 in
  let exception Restart in
  let finished = ref false in
  while not !finished do
    match
      Array.fill pos 0 t.n (-1);
      stack_v.(0) <- source;
      pos.(source) <- 0;
      let depth = ref 0 in
      let outcome = ref None in
      (try
         while !outcome = None do
           let v = stack_v.(!depth) in
           if v = sink then outcome := Some true
           else
             match List.find_opt (fun e -> t.orig.(e) > 0 && fl.(e) > 0) t.adj.(v) with
             | None -> outcome := Some false
             | Some e ->
                 let w = t.dst.(e) in
                 if w <> sink && pos.(w) >= 0 then begin
                   (* cycle: w .. v -> w; cancel its flow and restart *)
                   let lo = pos.(w) in
                   let amount = ref fl.(e) in
                   for i = lo + 1 to !depth do
                     amount := Stdlib.min !amount fl.(stack_e.(i))
                   done;
                   fl.(e) <- fl.(e) - !amount;
                   for i = lo + 1 to !depth do
                     fl.(stack_e.(i)) <- fl.(stack_e.(i)) - !amount
                   done;
                   raise Restart
                 end
                 else begin
                   incr depth;
                   stack_v.(!depth) <- w;
                   stack_e.(!depth) <- e;
                   pos.(w) <- !depth
                 end
         done
       with Restart -> outcome := None);
      (!outcome, !depth)
    with
    | None, _ -> () (* cycle cancelled; retry *)
    | Some false, _ -> finished := true
    | Some true, depth ->
        let amount = ref max_int in
        for i = 1 to depth do
          amount := Stdlib.min !amount fl.(stack_e.(i))
        done;
        for i = 1 to depth do
          fl.(stack_e.(i)) <- fl.(stack_e.(i)) - !amount
        done;
        let vertices = List.init (depth + 1) (fun i -> stack_v.(i)) in
        paths := (vertices, !amount) :: !paths
  done;
  List.rev !paths
