(* The natural LP relaxation LP1 of the active-time IP (Section 3):

     min  sum_t y_t
     s.t. x_{t,j} <= y_t                 for every job j, slot t in window
          sum_j x_{t,j} <= g * y_t       for every slot t
          sum_t x_{t,j} >= p_j           for every job j
          0 <= y_t <= 1,  x_{t,j} >= 0,  x_{t,j} = 0 outside windows

   Solved exactly over the rationals; the optimal value lower-bounds the
   integral optimum and its y-vector feeds the rounding of Theorem 2. *)

module S = Workload.Slotted
module Q = Rational

type t = {
  cost : Q.t; (* optimal LP objective *)
  y : (int * Q.t) list; (* slot -> y_t, all relevant slots (may be 0) *)
  x : ((int * int) * Q.t) list; (* (slot, job id) -> assigned mass, > 0 entries *)
}

let y_at t slot = try List.assoc slot t.y with Not_found -> Q.zero

(* LP2 of Section 3.1: with the slot openings y fixed, does a feasible
   fractional assignment of all jobs exist? Used to verify Lemma 3
   (right-shifting preserves feasibility) computationally. *)
let feasible_with_y (inst : S.t) y =
  let y_of s = try List.assoc s y with Not_found -> Q.zero in
  let m = Lp.create () in
  let x_vars =
    Array.to_list inst.S.jobs
    |> List.concat_map (fun (j : S.job) ->
           List.filter_map
             (fun s ->
               if Q.is_zero (y_of s) then None
               else Some ((s, j.S.id), Lp.add_var ~upper:(y_of s) m (Printf.sprintf "x_%d_%d" s j.S.id)))
             (S.window_slots j))
  in
  (* capacity per slot: sum_j x_{t,j} <= g * y_t *)
  List.iter
    (fun s ->
      let terms = List.filter_map (fun ((s', _), xv) -> if s' = s then Some (Q.one, xv) else None) x_vars in
      if terms <> [] then Lp.add_constraint m terms Lp.Le (Q.mul (Q.of_int inst.S.g) (y_of s)))
    (S.relevant_slots inst);
  (* demand per job *)
  Array.iter
    (fun (j : S.job) ->
      let terms =
        List.filter_map (fun ((_, id), xv) -> if id = j.S.id then Some (Q.one, xv) else None) x_vars
      in
      Lp.add_constraint m terms Lp.Ge (Q.of_int j.S.length))
    inst.S.jobs;
  match Lp.solve m with Lp.Optimal _ -> true | Lp.Infeasible -> false | Lp.Unbounded -> assert false

(* The right-shifted y vector of Section 3.1: within each block between
   consecutive distinct deadlines (plus the pre-first-deadline block), the
   block mass Y_i is packed against the right end - floor(Y_i) fully open
   slots ending at the deadline plus one fractional slot. *)
let right_shift (inst : S.t) t =
  let slots = S.relevant_slots inst in
  let deadlines = List.sort_uniq compare (Array.to_list (Array.map (fun j -> j.S.deadline) inst.S.jobs)) in
  let first_positive = List.find_opt (fun s -> Q.compare (y_at t s) Q.zero > 0) slots in
  let boundaries =
    match (first_positive, deadlines) with
    | Some t0, d1 :: _ when t0 < d1 -> t0 :: deadlines
    | _ -> deadlines
  in
  let shifted = Hashtbl.create 32 in
  let prev = ref 0 in
  List.iter
    (fun b ->
      let b_prev = !prev in
      prev := b;
      let yi =
        List.fold_left
          (fun acc s -> if s > b_prev && s <= b then Q.add acc (y_at t s) else acc)
          Q.zero slots
      in
      let base = Q.floor_int yi in
      let frac = Q.sub yi (Q.of_int base) in
      for s = b - base + 1 to b do
        Hashtbl.replace shifted s Q.one
      done;
      if Q.compare frac Q.zero > 0 then Hashtbl.replace shifted (b - base) frac)
    boundaries;
  List.map (fun s -> (s, try Hashtbl.find shifted s with Not_found -> Q.zero)) slots

let solve ?(engine = Lp.default_engine) ?pricing ?budget ?obs (inst : S.t) =
  let slots = S.relevant_slots inst in
  let m = Lp.create () in
  let y_vars = List.map (fun s -> (s, Lp.add_var ~upper:Q.one m (Printf.sprintf "y_%d" s))) slots in
  let y_var s = List.assoc s y_vars in
  let x_vars =
    Array.to_list inst.S.jobs
    |> List.concat_map (fun (j : S.job) ->
           List.map
             (fun s -> ((s, j.S.id), Lp.add_var m (Printf.sprintf "x_%d_%d" s j.S.id)))
             (S.window_slots j))
  in
  (* x_{t,j} <= y_t *)
  List.iter
    (fun ((s, _), xv) -> Lp.add_constraint m [ (Q.one, xv); (Q.minus_one, y_var s) ] Lp.Le Q.zero)
    x_vars;
  (* capacity per slot *)
  List.iter
    (fun s ->
      let terms = List.filter_map (fun ((s', _), xv) -> if s' = s then Some (Q.one, xv) else None) x_vars in
      if terms <> [] then
        Lp.add_constraint m ((Q.of_int (-inst.S.g), y_var s) :: terms) Lp.Le Q.zero)
    slots;
  (* demand per job *)
  Array.iter
    (fun (j : S.job) ->
      let terms =
        List.filter_map (fun ((_, id), xv) -> if id = j.S.id then Some (Q.one, xv) else None) x_vars
      in
      Lp.add_constraint m terms Lp.Ge (Q.of_int j.S.length))
    inst.S.jobs;
  Lp.set_objective m Lp.Minimize (List.map (fun (_, yv) -> (Q.one, yv)) y_vars);
  match Lp.solve ~engine ?pricing ?budget ?obs m with
  | Lp.Infeasible -> None
  | Lp.Unbounded -> assert false (* objective is bounded below by 0 *)
  | Lp.Optimal sol ->
      let y = List.map (fun (s, yv) -> (s, Lp.value sol yv)) y_vars in
      let x =
        List.filter_map
          (fun (key, xv) ->
            let v = Lp.value sol xv in
            if Q.is_zero v then None else Some (key, v))
          x_vars
      in
      Some { cost = Lp.objective_value sol; y; x }
