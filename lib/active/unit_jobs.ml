(* The unit-length special case. Chang-Gabow-Khuller [2] give a fast exact
   greedy for it; this module exposes the equivalent behaviour through the
   minimalization machinery.

   Two empirical facts, both pinned by the test suite:

   - Directional minimalization (closing slots in left-to-right or
     right-to-left order, re-testing feasibility by max flow) matches the
     branch-and-bound optimum on every random unit instance we generate.
     Closing right-to-left is exactly the "lazy activation" behaviour of
     the CGK greedy: keep a late slot only when some job would otherwise
     be unschedulable.

   - Minimality alone is NOT enough even for unit jobs: a shuffled closing
     order can end in a strictly worse minimal set (see the regression
     test at fuzzer seed 23641). The 3-approximation of Theorem 1 is the
     general guarantee; the unit case needs the directional order. *)

module S = Workload.Slotted

let is_unit (inst : S.t) = Array.for_all (fun j -> j.S.length = 1) inst.S.jobs

(* Exact for unit-length instances (validated against branch-and-bound);
   raises [Invalid_argument] otherwise. [None] iff infeasible. *)
let solve (inst : S.t) =
  if not (is_unit inst) then invalid_arg "Unit_jobs.solve: instance has non-unit jobs";
  Minimal.solve inst Minimal.Right_to_left
