(** Registers every active-time solver with {!Core.Registry}. The
    registrations run from this module's top-level initializer, which
    [-linkall] keeps in every executable linking the library; [force]
    exists for call sites that want an explicit dependency (e.g. tests
    asserting registry completeness). *)

val force : unit -> unit
