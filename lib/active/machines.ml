(* Active time on a finite pool of machines (Koehler-Khuller, cited in
   Section 1.3: "their result holds even for a finite number of
   machines").

   Model: [m] identical machines of capacity [g]; in each slot any number
   0..m of them may be on, and the cost is the total number of
   machine-slots that are on. A job unit occupies one slot of one machine;
   a job still runs at most one unit per slot. Since the assignment of
   jobs to machines within a slot is free, only the per-slot opening
   count y_t in {0..m} matters, and feasibility is the G_feas flow with
   slot capacity g * y_t.

   Provided: feasibility, greedy minimalization (decrement counts while
   feasible - the multi-machine analogue of Theorem 1's minimal feasible
   solutions), an LP lower bound (y relaxed to [0, m]) and an exact
   branch-and-bound. *)

module Q = Rational
module S = Workload.Slotted

type openings = (int * int) list (* slot -> number of machines on, sorted *)

let cost (openings : openings) = List.fold_left (fun acc (_, c) -> acc + c) 0 openings

let feasible (inst : S.t) ~machines ~openings =
  if machines < 1 then invalid_arg "Machines.feasible: machines < 1";
  List.iter
    (fun (_, c) -> if c < 0 || c > machines then invalid_arg "Machines.feasible: count out of range")
    openings;
  let count s = try List.assoc s openings with Not_found -> 0 in
  let slots = List.filter (fun s -> count s > 0) (S.relevant_slots inst) in
  let slot_index = Hashtbl.create 32 in
  List.iteri (fun i s -> Hashtbl.replace slot_index s i) slots;
  let n = S.num_jobs inst in
  let mm = List.length slots in
  let source = 0 and sink = n + mm + 1 in
  let g = Flow.create (n + mm + 2) in
  Array.iteri (fun idx (j : S.job) -> ignore (Flow.add_edge g ~src:source ~dst:(idx + 1) ~cap:j.S.length)) inst.S.jobs;
  Array.iteri
    (fun idx (j : S.job) ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt slot_index s with
          | Some si -> ignore (Flow.add_edge g ~src:(idx + 1) ~dst:(n + 1 + si) ~cap:1)
          | None -> ())
        (S.window_slots j))
    inst.S.jobs;
  List.iteri
    (fun si s -> ignore (Flow.add_edge g ~src:(n + 1 + si) ~dst:sink ~cap:(inst.S.g * count s)))
    slots;
  Flow.max_flow g ~source ~sink = S.total_length inst

(* Start from every machine on in every relevant slot and decrement counts
   greedily; monotonicity makes a single pass minimal. *)
let minimal (inst : S.t) ~machines =
  let slots = S.relevant_slots inst in
  let full = List.map (fun s -> (s, machines)) slots in
  if not (feasible inst ~machines ~openings:full) then None
  else begin
    let current = Hashtbl.create 32 in
    List.iter (fun (s, c) -> Hashtbl.replace current s c) full;
    let snapshot () = List.map (fun s -> (s, Hashtbl.find current s)) slots in
    List.iter
      (fun s ->
        let keep_decrementing = ref true in
        while !keep_decrementing && Hashtbl.find current s > 0 do
          Hashtbl.replace current s (Hashtbl.find current s - 1);
          if not (feasible inst ~machines ~openings:(snapshot ())) then begin
            Hashtbl.replace current s (Hashtbl.find current s + 1);
            keep_decrementing := false
          end
        done)
      slots;
    Some (List.filter (fun (_, c) -> c > 0) (snapshot ()))
  end

(* LP lower bound: the natural relaxation with y_t in [0, m]. *)
let lp_lower_bound ?(engine = Lp.default_engine) (inst : S.t) ~machines =
  let slots = S.relevant_slots inst in
  let m = Lp.create () in
  let y_vars =
    List.map (fun s -> (s, Lp.add_var ~upper:(Q.of_int machines) m (Printf.sprintf "y_%d" s))) slots
  in
  let y_var s = List.assoc s y_vars in
  let x_vars =
    Array.to_list inst.S.jobs
    |> List.concat_map (fun (j : S.job) ->
           List.map
             (fun s -> ((s, j.S.id), Lp.add_var ~upper:Q.one m (Printf.sprintf "x_%d_%d" s j.S.id)))
             (S.window_slots j))
  in
  List.iter
    (fun s ->
      let terms = List.filter_map (fun ((s', _), xv) -> if s' = s then Some (Q.one, xv) else None) x_vars in
      if terms <> [] then
        Lp.add_constraint m ((Q.of_int (-inst.S.g), y_var s) :: terms) Lp.Le Q.zero)
    slots;
  Array.iter
    (fun (j : S.job) ->
      let terms =
        List.filter_map (fun ((_, id), xv) -> if id = j.S.id then Some (Q.one, xv) else None) x_vars
      in
      Lp.add_constraint m terms Lp.Ge (Q.of_int j.S.length))
    inst.S.jobs;
  Lp.set_objective m Lp.Minimize (List.map (fun (_, yv) -> (Q.one, yv)) y_vars);
  match Lp.solve ~engine m with
  | Lp.Optimal sol -> Some (Lp.objective_value sol)
  | Lp.Infeasible -> None
  | Lp.Unbounded -> assert false

(* Exact optimum by branch-and-bound over per-slot counts. *)
let optimum (inst : S.t) ~machines =
  let slots = Array.of_list (S.relevant_slots inst) in
  let k = Array.length slots in
  match minimal inst ~machines with
  | None -> None
  | Some seed ->
      let best = ref (cost seed) in
      let best_set = ref seed in
      let mass_lb = S.mass_lower_bound inst in
      let rec dfs i chosen acc_cost =
        if acc_cost < !best && max acc_cost mass_lb < !best then begin
          if i = k then begin
            (* chosen covers all slots; feasibility was maintained *)
            best := acc_cost;
            best_set := List.rev chosen
          end
          else begin
            (* try counts from low to high; prune infeasible-with-rest *)
            let rest =
              List.map (fun s -> (s, machines)) (Array.to_list (Array.sub slots (i + 1) (k - i - 1)))
            in
            let counts = List.init (machines + 1) (fun c -> c) in
            List.iter
              (fun c ->
                let openings = List.rev_append chosen ((slots.(i), c) :: rest) in
                if acc_cost + c < !best && feasible inst ~machines ~openings then
                  dfs (i + 1) ((slots.(i), c) :: chosen) (acc_cost + c))
              counts
          end
        end
      in
      dfs 0 [] 0;
      Some (cost !best_set, List.filter (fun (_, c) -> c > 0) !best_set)
