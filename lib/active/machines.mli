(** Active time on a finite pool of machines (Koehler–Khuller, Section
    1.3): [m] identical machines of capacity [g]; each slot turns on
    0..m of them; cost = total machine-slots on. Only the per-slot
    opening count matters (intra-slot machine assignment is free), so
    feasibility is the G_feas flow with slot capacity [g * y_t]. *)

(** Sorted (slot, machines-on) pairs with positive counts. *)
type openings = (int * int) list

val cost : openings -> int

(** Raises [Invalid_argument] when [machines < 1] or a count is outside
    [0..machines]. *)
val feasible : Workload.Slotted.t -> machines:int -> openings:openings -> bool

(** Greedy minimalization from everything-on (the multi-machine analogue
    of a minimal feasible solution); [None] iff infeasible even with all
    machines always on. *)
val minimal : Workload.Slotted.t -> machines:int -> openings option

(** The LP relaxation with [y_t] in [\[0, m\]]; [None] iff infeasible. *)
val lp_lower_bound :
  ?engine:Lp.engine -> Workload.Slotted.t -> machines:int -> Rational.t option

(** Exact (cost, openings) by branch-and-bound over per-slot counts;
    [None] iff infeasible. *)
val optimum : Workload.Slotted.t -> machines:int -> (int * openings) option
