(** LP rounding for active time (Theorem 2): a 2-approximation.

    Solve LP1 exactly, right-shift block masses against each distinct
    deadline (Lemma 3), then sweep deadlines: fully-open slots open as-is;
    a fractional slot with mass >= 1/2 opens outright; a barely-open slot
    (< 1/2) opens only when a max-flow test shows the jobs processed so
    far do not fit, otherwise its mass is carried right as a {e proxy}
    (Section 3.4). The dependent/trio/filler machinery of the paper is
    analysis only; its content — feasibility after every iteration and
    [#opened <= 2 sum Y] — is asserted at runtime and fuzzed by the
    property tests. *)

type stats = {
  lp_cost : Rational.t;
  rounded_cost : int;
  fallback_used : bool;
      (** defensive re-opening was needed; never expected, and asserted
          false throughout the test suite *)
}

exception Infeasible_instance

(** [None] iff the instance is infeasible; otherwise a verified solution
    of cost at most twice the LP optimum. With [budget], the underlying
    simplex ticks once per pivot and exhaustion raises
    {!Budget.Out_of_fuel} (the deadline sweep after the LP is polynomial
    and not metered).

    With [?obs], runs inside an [active.rounding] span and records
    [active.rounding.blocks] (deadline blocks swept),
    [active.rounding.opened] (slots opened),
    [active.rounding.flow_tests] (barely-open feasibility probes) and
    [active.rounding.proxy_carries], plus the nested [lp.*] and [flow.*]
    counters. *)
val solve :
  ?engine:Lp.engine ->
  ?pricing:Lp.pricing ->
  ?budget:Budget.t ->
  ?obs:Obs.t ->
  Workload.Slotted.t ->
  (Solution.t * stats) option
