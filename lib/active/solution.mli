(** Active-time solutions: a set of open slots plus an integral schedule.
    The cost is the number of open slots — the machine's active time. *)

type t = { open_slots : int list;  (** sorted, distinct *) schedule : Workload.Slotted.schedule }

val cost : t -> int

(** Builds a solution by computing a schedule on the given open slots via
    max flow; [None] when the jobs do not fit. *)
val of_open_slots : Workload.Slotted.t -> open_slots:int list -> t option

(** Full validation: the schedule satisfies the instance and uses only
    declared open slots. Returns a violation description, or [None]. *)
val verify : Workload.Slotted.t -> t -> string option

val pp : Format.formatter -> t -> unit
