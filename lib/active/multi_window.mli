(** The multiple-window generalization of active time (Chang, Gabow,
    Khuller, discussed in Section 1.3): a job may be scheduled in a union
    of disjoint windows. NP-hard for capacity [g >= 3] via 3-EXACT-COVER;
    this module ports the flow feasibility test, minimal feasible
    solutions and the exact branch-and-bound to the richer windows. *)

type job = private {
  id : int;
  windows : (int * int) list;  (** disjoint (release, deadline) pairs, sorted *)
  length : int;
}

type t = { jobs : job array; g : int }

(** Raises [Invalid_argument] on an empty/overlapping window list, a
    non-positive length, or windows shorter than the length. *)
val job : id:int -> windows:(int * int) list -> length:int -> job

(** All slots of all windows, increasing. *)
val window_slots : job -> int list

(** Raises [Invalid_argument] when [g < 1]. *)
val make : g:int -> job list -> t

val total_length : t -> int
val relevant_slots : t -> int list
val mass_lower_bound : t -> int

(** Schedule on the open slots via max flow, or [None] when infeasible. *)
val feasible_and_schedule : t -> open_slots:int list -> (int * int list) list option

val feasible : t -> open_slots:int list -> bool

(** Inclusion-minimal feasible open set contained in [start] (default all
    relevant slots); [None] when [start] is infeasible. *)
val minimal : ?start:int list -> t -> int list option

(** Exact optimum (cost, open slots) by branch-and-bound; [None] iff
    infeasible. *)
val optimum : t -> (int * int list) option

(** Builds the 3-EXACT-COVER-style instance: one job per set, whose
    windows are its members' unit slots and whose length is its size. *)
val exact_cover_instance : g:int -> int list list -> universe:int -> t
