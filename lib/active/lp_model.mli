(** The LP relaxation LP1 of the active-time integer program (Section 3):

    {v
    min  sum_t y_t
    s.t. x_{t,j} <= y_t                for each job j, slot t in window
         sum_j x_{t,j} <= g y_t        for each slot t
         sum_t x_{t,j} >= p_j          for each job j
         0 <= y_t <= 1, x >= 0, x = 0 outside windows
    v}

    Solved exactly over the rationals ({!Lp}); the optimum lower-bounds
    the integral optimum, and the y-vector feeds the rounding of
    Theorem 2. The integrality gap is 2 (Section 3.5, experiment E3). *)

type t = {
  cost : Rational.t;  (** optimal LP objective *)
  y : (int * Rational.t) list;  (** slot -> y_t, all relevant slots *)
  x : ((int * int) * Rational.t) list;  (** (slot, job id) -> mass, nonzero entries *)
}

(** [y_at t slot] is the slot's y value (0 when absent). *)
val y_at : t -> int -> Rational.t

(** [None] iff the instance is infeasible. With [budget], each simplex
    pivot costs one tick and exhaustion raises {!Budget.Out_of_fuel}.
    [?obs], [?engine] (default {!Lp.default_engine}) and [?pricing] are
    forwarded to {!Lp.solve}. *)
val solve :
  ?engine:Lp.engine ->
  ?pricing:Lp.pricing ->
  ?budget:Budget.t ->
  ?obs:Obs.t ->
  Workload.Slotted.t ->
  t option

(** LP2 of Section 3.1: with the slot openings fixed to the given y
    vector, does a feasible fractional assignment exist? *)
val feasible_with_y : Workload.Slotted.t -> (int * Rational.t) list -> bool

(** The right-shifted y vector (Section 3.1): block masses between
    consecutive distinct deadlines packed against their right ends.
    Lemma 3 asserts [feasible_with_y inst (right_shift inst t)] whenever
    [t] is a feasible LP solution; the property tests verify this. *)
val right_shift : Workload.Slotted.t -> t -> (int * Rational.t) list
