(* Minimal feasible solutions (Section 2 of the paper).

   Start from a feasible set of open slots and close slots one at a time
   while the instance stays feasible. Feasibility is monotone in the open
   set, so a single pass over any closing order yields an
   inclusion-minimal feasible set (once closing slot s fails it fails
   forever). Theorem 1: every minimal feasible solution costs at most
   3 OPT, and Fig. 3 shows some cost ~3 OPT; the closing order controls
   which minimal solution is reached, so benches probe several. *)

module S = Workload.Slotted

type order =
  | Left_to_right
  | Right_to_left
  | Shuffled of int (* seed *)
  | Given of int list (* close in exactly this order; remaining slots appended l-to-r *)

let order_slots order slots =
  match order with
  | Left_to_right -> slots
  | Right_to_left -> List.rev slots
  | Shuffled seed ->
      let st = Random.State.make [| seed |] in
      let arr = Array.of_list slots in
      for i = Array.length arr - 1 downto 1 do
        let k = Random.State.int st (i + 1) in
        let tmp = arr.(i) in
        arr.(i) <- arr.(k);
        arr.(k) <- tmp
      done;
      Array.to_list arr
  | Given explicit ->
      let rest = List.filter (fun s -> not (List.mem s explicit)) slots in
      List.filter (fun s -> List.mem s slots) explicit @ rest

(* [minimalize inst ~start order] closes slots of [start] greedily in the
   given order. Returns [None] when [start] itself is infeasible.

   Both probe modes walk the same closing order and take the same
   close/keep decisions (feasibility is exact either way), so the
   [active.minimal.*] counters agree mode to mode; only the flow-level
   telemetry differs (warm re-augmentations vs cold max-flow runs). *)
let minimalize ?(oracle = Feasibility.Incremental) ?(obs = Obs.null) (inst : S.t) ~start order =
  Obs.span obs "active.minimal" @@ fun () ->
  let start = List.sort_uniq compare start in
  match oracle with
  | Feasibility.Rebuild ->
      Obs.incr obs "active.minimal.feasibility_checks";
      if not (Feasibility.feasible ~obs inst ~open_slots:start) then None
      else begin
        let current = ref start in
        List.iter
          (fun s ->
            let without = List.filter (fun s' -> s' <> s) !current in
            Obs.incr obs "active.minimal.feasibility_checks";
            if Feasibility.feasible ~obs inst ~open_slots:without then begin
              Obs.incr obs "active.minimal.closures";
              current := without
            end)
          (order_slots order !current);
        Solution.of_open_slots inst ~open_slots:!current
      end
  | Feasibility.Incremental ->
      let o = Feasibility.Oracle.create ~obs inst in
      let in_start = Hashtbl.create 32 in
      List.iter (fun s -> Hashtbl.replace in_start s ()) start;
      List.iter
        (fun s ->
          if not (Hashtbl.mem in_start s) then Feasibility.Oracle.set_slot ~obs o ~slot:s ~open_:false)
        (S.relevant_slots inst);
      Obs.incr obs "active.minimal.feasibility_checks";
      if not (Feasibility.Oracle.check ~obs o) then None
      else begin
        List.iter
          (fun s ->
            Feasibility.Oracle.set_slot ~obs o ~slot:s ~open_:false;
            Obs.incr obs "active.minimal.feasibility_checks";
            if Feasibility.Oracle.check ~obs o then Obs.incr obs "active.minimal.closures"
            else Feasibility.Oracle.set_slot ~obs o ~slot:s ~open_:true)
          (order_slots order start);
        Solution.of_open_slots inst ~open_slots:(Feasibility.Oracle.open_slots o)
      end

(* [solve inst order] starts from all relevant slots open. [None] iff the
   instance is infeasible. *)
let solve ?oracle ?obs (inst : S.t) order =
  minimalize ?oracle ?obs inst ~start:(S.relevant_slots inst) order

(* [is_minimal inst ~open_slots] checks Definition 4: the set is feasible
   and closing any single slot breaks feasibility. *)
let is_minimal (inst : S.t) ~open_slots =
  Feasibility.feasible inst ~open_slots
  && List.for_all
       (fun s -> not (Feasibility.feasible inst ~open_slots:(List.filter (fun s' -> s' <> s) open_slots)))
       open_slots
