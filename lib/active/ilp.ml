(* LP-based branch and bound for the active-time integer program - the
   OR-style exact solver, complementing {!Exact}'s combinatorial
   flow-pruned search. At every node some slots are fixed open/closed and
   LP1 is re-solved with the corresponding bounds:

   - LP infeasible            -> prune;
   - ceil(LP value) >= best   -> prune (active time is integral);
   - LP solution integral     -> new incumbent (an integral y admits an
                                 integral schedule by flow integrality);
   - otherwise branch on a most-fractional slot, 'open' branch first.

   The incumbent is seeded with a minimal feasible solution. E16 compares
   nodes and work against {!Exact.branch_and_bound}. *)

module S = Workload.Slotted
module Q = Rational

type stats = { nodes : int; lp_solves : int }

let src = Logs.Src.create "abt.ilp" ~doc:"LP-based branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

(* Build LP1 once: y vars with relaxed [0,1] bounds (branching fixings
   are applied afterwards via [Lp.set_bounds], so one model serves every
   node of the search tree and the solve can be warm-started). *)
let build_lp1 (inst : S.t) =
  let slots = S.relevant_slots inst in
  let m = Lp.create () in
  let y_vars = List.map (fun s -> (s, Lp.add_var ~upper:Q.one m (Printf.sprintf "y_%d" s))) slots in
  let y_var s = List.assoc s y_vars in
  let x_vars =
    Array.to_list inst.S.jobs
    |> List.concat_map (fun (j : S.job) ->
           List.map (fun s -> ((s, j.S.id), Lp.add_var m (Printf.sprintf "x_%d_%d" s j.S.id))) (S.window_slots j))
  in
  List.iter
    (fun ((s, _), xv) -> Lp.add_constraint m [ (Q.one, xv); (Q.minus_one, y_var s) ] Lp.Le Q.zero)
    x_vars;
  List.iter
    (fun s ->
      let terms = List.filter_map (fun ((s', _), xv) -> if s' = s then Some (Q.one, xv) else None) x_vars in
      if terms <> [] then Lp.add_constraint m ((Q.of_int (-inst.S.g), y_var s) :: terms) Lp.Le Q.zero)
    slots;
  Array.iter
    (fun (j : S.job) ->
      let terms = List.filter_map (fun ((_, id), xv) -> if id = j.S.id then Some (Q.one, xv) else None) x_vars in
      Lp.add_constraint m terms Lp.Ge (Q.of_int j.S.length))
    inst.S.jobs;
  Lp.set_objective m Lp.Minimize (List.map (fun (_, yv) -> (Q.one, yv)) y_vars);
  (m, y_vars)

let apply_fixings m y_vars ~fixing =
  List.iter
    (fun (s, yv) ->
      match fixing s with
      | Some true -> Lp.set_bounds m yv ~lower:Q.one ~upper:(Some Q.one)
      | Some false -> Lp.set_bounds m yv ~lower:Q.zero ~upper:(Some Q.zero)
      | None -> Lp.set_bounds m yv ~lower:Q.zero ~upper:(Some Q.one))
    y_vars

(* Solve LP1 with per-slot fixings: [fixing slot = Some true/false] pins
   y to 1/0. Returns the objective and the y values, or None when
   infeasible. [rule] selects the simplex pricing rule (ablation),
   [engine] the simplex implementation. *)
let solve_lp ?(rule = Lp.Dantzig_with_fallback) ?(engine = Lp.default_engine) ?pricing ?budget ?obs (inst : S.t) ~fixing =
  let m, y_vars = build_lp1 inst in
  apply_fixings m y_vars ~fixing;
  match Lp.solve ~rule ~engine ?pricing ?budget ?obs m with
  | Lp.Infeasible -> None
  | Lp.Unbounded -> assert false
  | Lp.Optimal sol -> Some (Lp.objective_value sol, List.map (fun (s, yv) -> (s, Lp.value sol yv)) y_vars)

let solve ?(engine = Lp.default_engine) ?pricing ?budget ?(obs = Obs.null) (inst : S.t) =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  Obs.span obs "active.ilp" @@ fun () ->
  match Minimal.solve ~obs inst Minimal.Right_to_left with
  | None -> Budget.Complete None
  | Some seed ->
      let best = ref (Solution.cost seed) in
      let best_slots = ref seed.Solution.open_slots in
      let nodes = ref 0 and lp_solves = ref 0 in
      (* One LP1 model for the whole tree: each node rewrites the y
         bounds and re-solves warm from its parent's optimal basis, so
         the simplex re-enters phase 2 (or a short dual repair) instead
         of re-running phase 1 from the start. *)
      let lp1, y_vars = build_lp1 inst in
      (* fixings as an assoc list slot -> bool *)
      let rec branch fixed warm =
        Budget.tick budget;
        incr nodes;
        let fixing s = List.assoc_opt s fixed in
        incr lp_solves;
        apply_fixings lp1 y_vars ~fixing;
        match Lp.solve ~engine ?pricing ?warm ~budget ~obs lp1 with
        | Lp.Unbounded -> assert false
        | Lp.Infeasible -> ()
        | Lp.Optimal sol ->
            let value = Lp.objective_value sol in
            let ys = List.map (fun (s, yv) -> (s, Lp.value sol yv)) y_vars in
            let warm' = Lp.basis sol in
            let lb = Q.ceil_int value in
            if lb < !best then begin
              (* most fractional undecided slot *)
              let fractional =
                List.filter_map
                  (fun (s, v) ->
                    if Q.is_integer v then None
                    else Some (s, Q.abs (Q.sub v Q.half)))
                  ys
              in
              match fractional with
              | [] ->
                  (* integral LP solution: candidate incumbent *)
                  let open_slots = List.filter_map (fun (s, v) -> if Q.equal v Q.one then Some s else None) ys in
                  let cost = List.length open_slots in
                  if cost < !best then begin
                    best := cost;
                    best_slots := open_slots;
                    Log.debug (fun m -> m "incumbent %d" cost)
                  end
              | _ ->
                  let s, _ =
                    List.fold_left (fun (bs, bd) (s, d) -> if Q.compare d bd < 0 then (s, d) else (bs, bd))
                      (List.hd fractional) fractional
                  in
                  branch ((s, true) :: fixed) warm';
                  branch ((s, false) :: fixed) warm'
            end
      in
      let finish () =
        Obs.add obs "active.ilp.nodes" !nodes;
        Obs.add obs "active.ilp.lp_solves" !lp_solves;
        Option.map
          (fun sol -> (sol, { nodes = !nodes; lp_solves = !lp_solves }))
          (Solution.of_open_slots inst ~open_slots:!best_slots)
      in
      (try
         branch [] None;
         Log.info (fun m -> m "ILP: %d nodes, %d LP solves, optimum %d" !nodes !lp_solves !best);
         Budget.Complete (finish ())
       with Budget.Out_of_fuel ->
         Log.info (fun m -> m "ILP: out of fuel after %d nodes, incumbent %d" !nodes !best);
         Budget.Exhausted { spent = Budget.spent budget; incumbent = finish () })


let exact (inst : S.t) =
  match solve ~budget:(Budget.unlimited ()) inst with
  | Budget.Complete r -> r
  | Budget.Exhausted _ -> assert false (* unlimited fuel never exhausts *)

let optimum inst = Option.map (fun (sol, _) -> Solution.cost sol) (exact inst)
