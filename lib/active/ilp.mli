(** LP-based branch and bound for the active-time integer program: at
    each node LP1 is re-solved with the branching fixings; pruning uses
    infeasibility and [ceil(LP) >= incumbent] (active time is integral);
    integral LP solutions become incumbents directly. Complements the
    combinatorial flow-pruned search of {!Exact}; experiment E16 compares
    their search effort. *)

type stats = { nodes : int; lp_solves : int }

(** The LP1 model with every [y] free in [0,1], plus the y variables by
    slot. One model serves repeated probes: rewrite bounds with
    {!Lp.set_bounds} and re-solve, warm or cold ([solve]'s search tree
    and bench experiment E21's warm-start probes both do). *)
val build_lp1 : Workload.Slotted.t -> Lp.model * (int * Lp.var) list

(** LP1 with per-slot fixings ([Some true/false] pins y to 1/0); returns
    the objective and y values, or [None] when infeasible. Exposed for
    the pricing-rule ablation; [engine] selects the simplex engine. *)
val solve_lp :
  ?rule:Lp.pivot_rule ->
  ?engine:Lp.engine ->
  ?pricing:Lp.pricing ->
  ?budget:Budget.t ->
  ?obs:Obs.t ->
  Workload.Slotted.t ->
  fixing:(int -> bool option) ->
  (Rational.t * (int * Rational.t) list) option

(** Budgeted LP-based branch and bound (default: unlimited fuel). One
    tick per node plus one per simplex pivot inside each LP re-solve, so
    the budget bounds total work, not just tree size. The exhausted
    incumbent is the best integral solution found (at worst the
    minimal-solution seed); [None] inside the outcome iff the instance is
    infeasible.

    One LP1 model serves the whole search tree: each node rewrites the
    branching bounds with {!Lp.set_bounds} and re-solves warm from its
    parent's optimal basis ([engine] defaults to {!Lp.default_engine}; with
    [Dense] there is no basis to reuse and every node solves cold).

    With [?obs], runs inside an [active.ilp] span and records
    [active.ilp.nodes] / [active.ilp.lp_solves] plus the nested [lp.*]
    counters of every re-solve ([lp.warm_starts] counts the nodes that
    reused their parent's basis). *)
val solve :
  ?engine:Lp.engine ->
  ?pricing:Lp.pricing ->
  ?budget:Budget.t ->
  ?obs:Obs.t ->
  Workload.Slotted.t ->
  (Solution.t * stats) option Budget.outcome

(** [None] iff the instance is infeasible; otherwise the exact optimum
    with search statistics ([solve] with unlimited fuel). *)
val exact : Workload.Slotted.t -> (Solution.t * stats) option

val optimum : Workload.Slotted.t -> int option
