(** Minimal feasible solutions (Section 2, Theorem 1): start from a
    feasible open-slot set and close slots while feasibility is preserved.
    Feasibility is monotone in the open set, so a single pass over any
    closing order reaches an inclusion-minimal set, and Theorem 1 bounds
    every minimal solution by [3 OPT] (tight on the Fig. 3 gadget).

    The closing order selects {e which} minimal solution is found; the
    directional orders are empirically optimal for unit jobs (see
    {!Unit_jobs}) while a shuffled order can land on strictly worse
    minimal sets. *)

type order =
  | Left_to_right
  | Right_to_left
  | Shuffled of int  (** seed *)
  | Given of int list  (** close in this order; remaining slots appended *)

(** [minimalize inst ~start order] closes slots of [start] greedily.
    [None] when [start] itself is infeasible. [?oracle] selects the
    feasibility probe (default {!Feasibility.Incremental}: one warm
    {!Feasibility.Oracle} drives the whole closing pass); both modes take
    identical close/keep decisions and record identical
    [active.minimal.*] counters. With [?obs], runs inside an
    [active.minimal] span and records
    [active.minimal.feasibility_checks] / [active.minimal.closures]. *)
val minimalize :
  ?oracle:Feasibility.probe_mode ->
  ?obs:Obs.t -> Workload.Slotted.t -> start:int list -> order -> Solution.t option

(** [solve inst order] minimalizes from all relevant slots open. [None]
    iff the instance is infeasible. *)
val solve :
  ?oracle:Feasibility.probe_mode -> ?obs:Obs.t -> Workload.Slotted.t -> order -> Solution.t option

(** Definition 4: feasible, and closing any single slot breaks
    feasibility. *)
val is_minimal : Workload.Slotted.t -> open_slots:int list -> bool
