(* LP rounding for active time (Theorem 2): a 2-approximation.

   Pipeline, following Sections 3.1-3.4:

   1. Solve LP1 exactly ({!Lp_model}).
   2. Right-shift (Lemma 3): within each block (t_{d_{i-1}}, t_{d_i}]
      between consecutive distinct deadlines, the block mass
      Y_i = sum of y_t is packed against the right end: floor(Y_i) fully
      open slots ending at t_{d_i}, plus one fractional slot. Only the
      block sums matter from here on, so the shift is implicit.
   3. Sweep deadlines left to right. Per block: open the floor(Y_i)
      right-shifted fully-open slots; merge any proxy carried from the
      previous iteration into the fractional mass (moving its pointer
      rightward when a real slot is available, which is safe for
      later-deadline jobs); then
        - fractional mass >= 1/2 ("half open"): open its slot outright
          (charges its own LP mass at most twice);
        - 0 < mass < 1/2 ("barely open"): max-flow test whether every job
          with deadline processed so far fits in the slots opened so far;
          if yes, keep the slot closed and carry the mass as a proxy
          (pointer + value); if no, open the pointer slot (the paper's
          dependent/trio/filler argument, Lemma 6, shows the charge is
          always available - here that machinery is analysis only and the
          invariant is asserted instead).

   Invariants asserted after every iteration (they are the content of
   Lemmas 5/6): the processed jobs fit integrally in the opened slots, and
   #opened <= 2 * (LP mass up to the current deadline). [stats] reports
   them; the property tests fuzz them. *)

module S = Workload.Slotted
module Q = Rational

(* debug tracing: enable with Logs.Src.set_level (e.g. via atbt -v) *)
let src = Logs.Src.create "abt.rounding" ~doc:"LP rounding deadline sweep"

module Log = (val Logs.src_log src : Logs.LOG)

type stats = {
  lp_cost : Q.t;
  rounded_cost : int;
  fallback_used : bool; (* defensive re-opening was needed (never expected) *)
}

exception Infeasible_instance

(* Open rightmost closed relevant slots until the job subset fits; returns
   the new open set. Defensive only. *)
let rec force_feasible inst ~only_jobs ~opened ~closed_pool =
  if Feasibility.feasible inst ~only_jobs ~open_slots:opened then (opened, false)
  else
    match closed_pool with
    | [] -> raise Infeasible_instance
    | s :: rest ->
        let opened', _ = force_feasible inst ~only_jobs ~opened:(s :: opened) ~closed_pool:rest in
        (opened', true)

let solve ?engine ?pricing ?budget ?(obs = Obs.null) (inst : S.t) =
  Obs.span obs "active.rounding" @@ fun () ->
  match Lp_model.solve ?engine ?pricing ?budget ~obs inst with
  | None -> None
  | Some lp ->
      let slots = S.relevant_slots inst in
      if slots = [] then Some ({ Solution.open_slots = []; schedule = [] }, { lp_cost = Q.zero; rounded_cost = 0; fallback_used = false })
      else begin
        let deadlines = List.sort_uniq compare (Array.to_list (Array.map (fun j -> j.S.deadline) inst.S.jobs)) in
        let first_deadline = List.hd deadlines in
        let first_positive =
          List.find_opt (fun s -> Q.compare (Lp_model.y_at lp s) Q.zero > 0) slots
        in
        let boundaries =
          match first_positive with
          | Some t0 when t0 < first_deadline -> t0 :: deadlines
          | _ -> deadlines
        in
        (* mass strictly after the last deadline would have no x-support *)
        let last = List.nth boundaries (List.length boundaries - 1) in
        assert (
          List.for_all (fun s -> s <= last || Q.is_zero (Lp_model.y_at lp s)) slots);
        (* One warm oracle for the whole sweep. The sweep only ever opens
           slots and activates jobs (both monotone capacity increases), so
           every feasibility test is a pure re-augmentation — no drains. *)
        let ora = Feasibility.Oracle.create ~obs ~open_all:false ~activate_all:false inst in
        let opened = ref [] in
        let open_slot s =
          assert (not (List.mem s !opened));
          Obs.incr obs "active.rounding.opened";
          Feasibility.Oracle.set_slot ~obs ora ~slot:s ~open_:true;
          opened := s :: !opened
        in
        let proxy = ref None in
        let processed = ref [] in
        let cum_mass = ref Q.zero in
        let fallback = ref false in
        let prev = ref 0 in
        List.iter
          (fun b ->
            Obs.incr obs "active.rounding.blocks";
            let b_prev = !prev in
            prev := b;
            (* block mass over (b_prev, b] *)
            let yi =
              List.fold_left
                (fun acc s -> if s > b_prev && s <= b then Q.add acc (Lp_model.y_at lp s) else acc)
                Q.zero slots
            in
            cum_mass := Q.add !cum_mass yi;
            let base = Q.floor_int yi in
            let frac = Q.sub yi (Q.of_int base) in
            for s = b - base + 1 to b do
              open_slot s
            done;
            (* merge proxy into the fractional mass *)
            let frac_mass, pointer =
              match !proxy with
              | None -> (frac, b - base)
              | Some (p, v) ->
                  if Q.compare (Q.add v frac) Q.one <= 0 then
                    let p' = if b - base > b_prev then b - base else p in
                    (Q.add v frac, p')
                  else begin
                    (* v + frac > 1: frac > 1/2, so slot b - base exists;
                       it becomes fully open *)
                    open_slot (b - base);
                    let p' = if b - base - 1 > b_prev then b - base - 1 else p in
                    (Q.sub (Q.add v frac) Q.one, p')
                  end
            in
            proxy := None;
            Array.iter
              (fun (j : S.job) ->
                if j.S.deadline = b then begin
                  Feasibility.Oracle.set_job ~obs ora ~id:j.S.id ~active:true;
                  processed := j.S.id :: !processed
                end)
              inst.S.jobs;
            Log.debug (fun m ->
                m "deadline %d: Y=%s base=%d frac_mass=%s pointer=%d" b (Q.to_string yi) base
                  (Q.to_string frac_mass) pointer);
            if Q.compare frac_mass Q.zero > 0 then begin
              if Q.compare frac_mass Q.half >= 0 then begin
                Log.debug (fun m -> m "  half-open: opening slot %d" pointer);
                open_slot pointer
              end
              else if
                (Obs.incr obs "active.rounding.flow_tests";
                 Feasibility.Oracle.check ~obs ora)
              then begin
                Log.debug (fun m -> m "  barely open: carrying proxy (%s at %d)" (Q.to_string frac_mass) pointer);
                Obs.incr obs "active.rounding.proxy_carries";
                proxy := Some (pointer, frac_mass)
              end
              else begin
                Log.debug (fun m -> m "  barely open: flow forced slot %d open" pointer);
                open_slot pointer
              end
            end;
            (* Lemma 5/6 invariants *)
            (if not (Feasibility.Oracle.check ~obs ora) then begin
               let pool = List.rev (List.filter (fun s -> not (List.mem s !opened)) slots) in
               let opened', _ = force_feasible inst ~only_jobs:!processed ~opened:!opened ~closed_pool:pool in
               opened := opened';
               (* resync the oracle with the defensively opened slots *)
               List.iter (fun s -> Feasibility.Oracle.set_slot ~obs ora ~slot:s ~open_:true) opened';
               fallback := true
             end);
            assert (Q.compare (Q.of_int (List.length !opened)) (Q.mul Q.two !cum_mass) <= 0 || !fallback))
          boundaries;
        let open_slots = List.sort compare !opened in
        match Solution.of_open_slots inst ~open_slots with
        | None -> raise Infeasible_instance (* contradicts the invariant *)
        | Some sol ->
            Some (sol, { lp_cost = lp.Lp_model.cost; rounded_cost = Solution.cost sol; fallback_used = !fallback })
      end
