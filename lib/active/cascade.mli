(** Graceful-degradation cascade for active time: exact branch and bound,
    then the Theorem-2 LP rounding (2-approximation), then the
    minimal-feasible greedy (3-approximation). Each tier gets a fresh
    budget of the same tick limit; the first tier to finish within its
    budget answers. The final greedy tier is polynomial and unmetered, so
    on a feasible instance the cascade always returns a solution — at
    degraded quality rather than not at all. *)

type provenance = {
  winner : string option;
      (** tier that completed ([None] only if even the greedy failed,
          which cannot happen on well-formed instances) *)
  attempts : Budget.Cascade.attempt list;  (** every tier tried, in order *)
  cost : int option;  (** active time of the returned solution *)
  mass_bound : int;
      (** the instance's mass lower bound ceil(P/g) on OPT; [cost -
          mass_bound] bounds how far the degraded answer can be from
          optimal *)
}

(** [solve ~limit inst] runs the cascade with [limit] ticks per tier.
    [None] in the first component iff the instance is infeasible (always
    detected — infeasibility is decided before any search). *)
val solve : limit:int -> Workload.Slotted.t -> Solution.t option * provenance

(** Multi-line human-readable provenance: one line per attempt plus a
    final [provenance: tier=... cost=... mass-bound=... gap=...] line. *)
val pp_provenance : Format.formatter -> provenance -> unit
