(** Graceful-degradation cascade for active time: exact branch and bound,
    then the Theorem-2 LP rounding (2-approximation), then the
    minimal-feasible greedy (3-approximation). Each tier gets a fresh
    budget of the same tick limit; the first tier to finish within its
    budget answers. The final greedy tier is polynomial and unmetered, so
    on a feasible instance the cascade always returns a solution — at
    degraded quality rather than not at all. *)

(** Provenance with [int] active-time cost, ["cost"] / ["mass-bound"]
    labels, and [bound] = the instance's mass lower bound ceil(P/g) on
    OPT; [gap] bounds how far the degraded answer can be from optimal.
    See {!Budget.Cascade.provenance} for the fields. *)
type provenance = int Budget.Cascade.provenance

(** [solve ~limit inst] runs the cascade with [limit] ticks per tier.
    [None] in the first component iff the instance is infeasible (always
    detected — infeasibility is decided before any search) {e or} the
    [?deadline] probe fired (the provenance then ends in a
    {!Budget.Cascade.Deadline} attempt and has no winner). [?obs] is
    threaded through the runner (cascade.* counters and per-tier spans)
    and every tier's solver; [?deadline] is re-armed on each per-tier
    budget ({!Budget.Cascade.run}). *)
val solve :
  ?obs:Obs.t ->
  ?deadline:(unit -> bool) ->
  limit:int ->
  Workload.Slotted.t ->
  Solution.t option * provenance

(** Multi-line human-readable provenance: one line per attempt plus a
    final [provenance: tier=... cost=... mass-bound=... gap=...] line
    ({!Budget.Cascade.pp_provenance} with the int cost printer). *)
val pp_provenance : Format.formatter -> provenance -> unit
