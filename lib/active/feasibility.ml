(* Feasibility of an active-time instance for a given set of open slots,
   via the flow network G_feas of the paper's Fig. 2:

     source --p_j--> job j --1--> slot t (open, in j's window) --g--> sink

   The instance is feasible on the open set iff the max flow saturates all
   job arcs (value P = sum of lengths); an integral max flow is a schedule.

   This check is the workhorse of the whole active-time side: minimal
   feasible solutions close slots guarded by it, the LP rounding uses it to
   decide whether a barely-open slot may stay closed, and the exact
   branch-and-bound prunes with it. *)

module S = Workload.Slotted

type network = {
  graph : Flow.t;
  job_edges : (int * Flow.edge) array; (* job id, source->job arc *)
  (* (job array index, slot) -> job->slot arc *)
  assign_edges : ((int * int) * Flow.edge) list;
  source : int;
  sink : int;
  total : int;
}

let build (t : S.t) ~open_slots =
  let open_set = Hashtbl.create 32 in
  List.iter (fun s -> Hashtbl.replace open_set s ()) open_slots;
  let slots = List.filter (Hashtbl.mem open_set) (S.relevant_slots t) in
  let slot_index = Hashtbl.create 32 in
  List.iteri (fun i s -> Hashtbl.replace slot_index s i) slots;
  let n = S.num_jobs t in
  let m = List.length slots in
  (* nodes: 0 = source, 1..n jobs, n+1..n+m slots, n+m+1 sink *)
  let source = 0 and sink = n + m + 1 in
  let g = Flow.create (n + m + 2) in
  let job_edges =
    Array.mapi
      (fun idx (j : S.job) -> (j.S.id, Flow.add_edge g ~src:source ~dst:(idx + 1) ~cap:j.S.length))
      t.S.jobs
  in
  let assign_edges = ref [] in
  Array.iteri
    (fun idx (j : S.job) ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt slot_index s with
          | Some si ->
              let e = Flow.add_edge g ~src:(idx + 1) ~dst:(n + 1 + si) ~cap:1 in
              assign_edges := ((idx, s), e) :: !assign_edges
          | None -> ())
        (S.window_slots j))
    t.S.jobs;
  List.iteri (fun si _ -> ignore (Flow.add_edge g ~src:(n + 1 + si) ~dst:sink ~cap:t.S.g)) slots;
  { graph = g; job_edges; assign_edges = !assign_edges; source; sink; total = S.total_length t }

(* [feasible t ~open_slots] decides whether all jobs fit in the open slots.
   [only_jobs] restricts the test to a subset of job ids (used by the LP
   rounding, which processes jobs deadline by deadline). *)
let feasible ?only_jobs ?(obs = Obs.null) (t : S.t) ~open_slots =
  let t' =
    match only_jobs with
    | None -> t
    | Some ids ->
        let keep = Hashtbl.create 16 in
        List.iter (fun id -> Hashtbl.replace keep id ()) ids;
        { t with S.jobs = Array.of_seq (Seq.filter (fun j -> Hashtbl.mem keep j.S.id) (Array.to_seq t.S.jobs)) }
  in
  let net = build t' ~open_slots in
  Flow.max_flow ~obs net.graph ~source:net.source ~sink:net.sink = net.total

type probe_mode = Incremental | Rebuild

(* Persistent incremental oracle over the same Fig. 2 network: built ONCE
   per instance with every relevant slot and every job wired in, then
   retargeted between probes by toggling arc capacities on the warm
   residual graph. Closing a slot zeroes its slot->sink arc after draining
   the <= g displaced units back to the source; reopening restores the
   capacity; activating a job raises its source->job arc from 0 to p_j.
   A probe then re-augments from the current residual state instead of
   recomputing the max flow from scratch: consecutive B&B probes differ
   by one slot, so the amortized work per probe is one drain (<= g short
   walks) plus the augmentation of the recovered units, not a full Dinic
   run on a freshly allocated graph. *)
module Oracle = struct
  type t = {
    graph : Flow.t;
    source : int;
    sink : int;
    g : int;
    slot_ids : int array; (* slot index -> slot *)
    slot_arc : Flow.edge array; (* slot index -> slot->sink arc *)
    slot_open : bool array;
    slot_index : (int, int) Hashtbl.t; (* slot -> slot index *)
    job_arc : Flow.edge array; (* job array index -> source->job arc *)
    job_active : bool array;
    job_len : int array;
    jobs_of_id : (int, int list) Hashtbl.t; (* job id -> array indices *)
    mutable active_total : int; (* sum of active job lengths *)
    mutable flow_value : int; (* flow currently routed *)
  }

  let create ?(obs = Obs.null) ?(open_all = true) ?(activate_all = true) (inst : S.t) =
    let slots = Array.of_list (S.relevant_slots inst) in
    let m = Array.length slots in
    let n = S.num_jobs inst in
    let slot_index = Hashtbl.create (2 * m) in
    Array.iteri (fun i s -> Hashtbl.replace slot_index s i) slots;
    (* nodes: 0 = source, 1..n jobs, n+1..n+m slots, n+m+1 sink *)
    let source = 0 and sink = n + m + 1 in
    let g = Flow.create (n + m + 2) in
    let job_len = Array.map (fun (j : S.job) -> j.S.length) inst.S.jobs in
    let job_arc =
      Array.mapi
        (fun idx (j : S.job) ->
          Flow.add_edge g ~src:source ~dst:(idx + 1) ~cap:(if activate_all then j.S.length else 0))
        inst.S.jobs
    in
    Array.iteri
      (fun idx (j : S.job) ->
        List.iter
          (fun s ->
            match Hashtbl.find_opt slot_index s with
            | Some si -> ignore (Flow.add_edge g ~src:(idx + 1) ~dst:(n + 1 + si) ~cap:1)
            | None -> ())
          (S.window_slots j))
      inst.S.jobs;
    let slot_arc =
      Array.init m (fun si ->
          Flow.add_edge g ~src:(n + 1 + si) ~dst:sink ~cap:(if open_all then inst.S.g else 0))
    in
    let jobs_of_id = Hashtbl.create (2 * n) in
    Array.iteri
      (fun idx (j : S.job) ->
        Hashtbl.replace jobs_of_id j.S.id (idx :: Option.value (Hashtbl.find_opt jobs_of_id j.S.id) ~default:[]))
      inst.S.jobs;
    Obs.incr obs "active.oracle.builds";
    {
      graph = g;
      source;
      sink;
      g = inst.S.g;
      slot_ids = slots;
      slot_arc;
      slot_open = Array.make m open_all;
      slot_index;
      job_arc;
      job_active = Array.make n activate_all;
      job_len;
      jobs_of_id;
      active_total = (if activate_all then S.total_length inst else 0);
      flow_value = 0;
    }

  let target t = t.active_total
  let flow_value t = t.flow_value

  let slot_is_open t ~slot =
    match Hashtbl.find_opt t.slot_index slot with
    | None -> false
    | Some si -> t.slot_open.(si)

  (* toggling an irrelevant slot is a no-op either way: no job can use it,
     so it exists in no window and carries no flow (mirrors [build], which
     drops such slots from the network entirely) *)
  let set_slot ?(obs = Obs.null) t ~slot ~open_ =
    match Hashtbl.find_opt t.slot_index slot with
    | None -> ()
    | Some si ->
        if t.slot_open.(si) <> open_ then begin
          let e = t.slot_arc.(si) in
          if open_ then Flow.set_cap t.graph e t.g
          else begin
            let drained = Flow.drain_edge ~obs t.graph e ~source:t.source ~sink:t.sink in
            t.flow_value <- t.flow_value - drained;
            Flow.set_cap t.graph e 0
          end;
          t.slot_open.(si) <- open_;
          Obs.incr obs "active.oracle.slot_toggles"
        end

  let set_job_idx ?(obs = Obs.null) t idx ~active =
    if t.job_active.(idx) <> active then begin
      let e = t.job_arc.(idx) in
      if active then begin
        Flow.set_cap t.graph e t.job_len.(idx);
        t.active_total <- t.active_total + t.job_len.(idx)
      end
      else begin
        let drained = Flow.drain_edge ~obs t.graph e ~source:t.source ~sink:t.sink in
        t.flow_value <- t.flow_value - drained;
        Flow.set_cap t.graph e 0;
        t.active_total <- t.active_total - t.job_len.(idx)
      end;
      t.job_active.(idx) <- active;
      Obs.incr obs "active.oracle.job_toggles"
    end

  let set_job ?obs t ~id ~active =
    match Hashtbl.find_opt t.jobs_of_id id with
    | None -> invalid_arg "Feasibility.Oracle.set_job: unknown job id"
    | Some idxs -> List.iter (fun idx -> set_job_idx ?obs t idx ~active) idxs

  let check ?(obs = Obs.null) t =
    t.flow_value <- t.flow_value + Flow.augment ~obs t.graph ~source:t.source ~sink:t.sink;
    Obs.incr obs "active.oracle.checks";
    t.flow_value = t.active_total

  let open_slots t =
    List.filteri (fun si _ -> t.slot_open.(si)) (Array.to_list t.slot_ids)
end

(* [schedule t ~open_slots] is an integral schedule on the open slots, or
   [None] when infeasible. *)
let schedule (t : S.t) ~open_slots =
  let net = build t ~open_slots in
  if Flow.max_flow net.graph ~source:net.source ~sink:net.sink <> net.total then None
  else begin
    let slots_of = Array.make (S.num_jobs t) [] in
    List.iter
      (fun ((idx, s), e) -> if Flow.flow net.graph e = 1 then slots_of.(idx) <- s :: slots_of.(idx))
      net.assign_edges;
    Some
      (Array.to_list
         (Array.mapi (fun idx (j : S.job) -> (j.S.id, List.sort compare slots_of.(idx))) t.S.jobs))
  end
