(* Feasibility of an active-time instance for a given set of open slots,
   via the flow network G_feas of the paper's Fig. 2:

     source --p_j--> job j --1--> slot t (open, in j's window) --g--> sink

   The instance is feasible on the open set iff the max flow saturates all
   job arcs (value P = sum of lengths); an integral max flow is a schedule.

   This check is the workhorse of the whole active-time side: minimal
   feasible solutions close slots guarded by it, the LP rounding uses it to
   decide whether a barely-open slot may stay closed, and the exact
   branch-and-bound prunes with it. *)

module S = Workload.Slotted

type network = {
  graph : Flow.t;
  job_edges : (int * Flow.edge) array; (* job id, source->job arc *)
  (* (job array index, slot) -> job->slot arc *)
  assign_edges : ((int * int) * Flow.edge) list;
  source : int;
  sink : int;
  total : int;
}

let build (t : S.t) ~open_slots =
  let open_set = Hashtbl.create 32 in
  List.iter (fun s -> Hashtbl.replace open_set s ()) open_slots;
  let slots = List.filter (Hashtbl.mem open_set) (S.relevant_slots t) in
  let slot_index = Hashtbl.create 32 in
  List.iteri (fun i s -> Hashtbl.replace slot_index s i) slots;
  let n = S.num_jobs t in
  let m = List.length slots in
  (* nodes: 0 = source, 1..n jobs, n+1..n+m slots, n+m+1 sink *)
  let source = 0 and sink = n + m + 1 in
  let g = Flow.create (n + m + 2) in
  let job_edges =
    Array.mapi
      (fun idx (j : S.job) -> (j.S.id, Flow.add_edge g ~src:source ~dst:(idx + 1) ~cap:j.S.length))
      t.S.jobs
  in
  let assign_edges = ref [] in
  Array.iteri
    (fun idx (j : S.job) ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt slot_index s with
          | Some si ->
              let e = Flow.add_edge g ~src:(idx + 1) ~dst:(n + 1 + si) ~cap:1 in
              assign_edges := ((idx, s), e) :: !assign_edges
          | None -> ())
        (S.window_slots j))
    t.S.jobs;
  List.iteri (fun si _ -> ignore (Flow.add_edge g ~src:(n + 1 + si) ~dst:sink ~cap:t.S.g)) slots;
  { graph = g; job_edges; assign_edges = !assign_edges; source; sink; total = S.total_length t }

(* [feasible t ~open_slots] decides whether all jobs fit in the open slots.
   [only_jobs] restricts the test to a subset of job ids (used by the LP
   rounding, which processes jobs deadline by deadline). *)
let feasible ?only_jobs ?(obs = Obs.null) (t : S.t) ~open_slots =
  let t' =
    match only_jobs with
    | None -> t
    | Some ids ->
        let keep = Hashtbl.create 16 in
        List.iter (fun id -> Hashtbl.replace keep id ()) ids;
        { t with S.jobs = Array.of_seq (Seq.filter (fun j -> Hashtbl.mem keep j.S.id) (Array.to_seq t.S.jobs)) }
  in
  let net = build t' ~open_slots in
  Flow.max_flow ~obs net.graph ~source:net.source ~sink:net.sink = net.total

(* [schedule t ~open_slots] is an integral schedule on the open slots, or
   [None] when infeasible. *)
let schedule (t : S.t) ~open_slots =
  let net = build t ~open_slots in
  if Flow.max_flow net.graph ~source:net.source ~sink:net.sink <> net.total then None
  else begin
    let slots_of = Array.make (S.num_jobs t) [] in
    List.iter
      (fun ((idx, s), e) -> if Flow.flow net.graph e = 1 then slots_of.(idx) <- s :: slots_of.(idx))
      net.assign_edges;
    Some
      (Array.to_list
         (Array.mapi (fun idx (j : S.job) -> (j.S.id, List.sort compare slots_of.(idx))) t.S.jobs))
  end
