(* Every active-time solver, wrapped behind the Core.Solver seam. The
   wrappers only adapt types — Instance.t in, Result.t out — around the
   modules' existing [solve ?budget ?obs] entry points; they add no
   telemetry of their own, so counters and spans through the registry
   are identical to direct calls (the CLI goldens pin this). *)

module Q = Rational
module I = Core.Instance
module R = Core.Result
module Sv = Core.Solver

let slotted name inst =
  match inst with
  | I.Slotted s -> s
  | i ->
      raise
        (Sv.Unsupported
           (Printf.sprintf "%s expects an active-slotted instance, got %s" name
              (I.kind_name (I.kind i))))

let opened (sol : Solution.t) =
  R.Opened { open_slots = sol.Solution.open_slots; schedule = sol.Solution.schedule }

let of_solution = function
  | Some sol -> R.solved ~witness:(opened sol) (R.Slots (Solution.cost sol))
  | None -> R.infeasible ()

let of_outcome = function
  | Budget.Complete r -> of_solution r
  | Budget.Exhausted { spent; incumbent } ->
      R.exhausted
        ?objective:(Option.map (fun s -> R.Slots (Solution.cost s)) incumbent)
        ?witness:(Option.map opened incumbent) ~spent ()

let order_of_params params =
  match Option.bind params (List.assoc_opt "order") with
  | None | Some "r2l" -> Minimal.Right_to_left
  | Some "l2r" -> Minimal.Left_to_right
  | Some o -> raise (Sv.Unsupported ("unknown order " ^ o ^ " (l2r|r2l)"))

(* LP-backed solvers take an [engine] param selecting the simplex engine
   from Lp's registry (the fuzz differential runs every LP tier under
   every registered engine). *)
let engine_of_params params =
  match Option.bind params (List.assoc_opt "engine") with
  | None -> Lp.default_engine
  | Some e -> (
      match Lp.engine_of_name e with
      | Some engine -> engine
      | None ->
          raise
            (Sv.Unsupported
               ("unknown engine " ^ e ^ " (" ^ String.concat "|" (Lp.engine_names ()) ^ ")")))

(* ... and a [pricing] param selecting the simplex pricing policy, the
   same way. *)
let pricing_of_params params =
  match Option.bind params (List.assoc_opt "pricing") with
  | None -> Lp.default_pricing
  | Some p -> (
      match Lp.pricing_of_name p with
      | Some pricing -> pricing
      | None ->
          raise
            (Sv.Unsupported
               ("unknown pricing " ^ p ^ " (" ^ String.concat "|" (Lp.pricing_names ()) ^ ")")))

let spent_of = function Some b -> Budget.spent b | None -> 0

(* --cascade historically took a raw tick limit, not a Budget.t; a
   limited budget's remaining fuel is that limit, and no budget means
   the historical 100k default. *)
let cascade_limit = function
  | Some b when Budget.is_limited b -> Budget.remaining b
  | _ -> 100_000

let solvers =
  [
    Sv.make ~name:"minimal" ~kind:I.Active_slotted ~quality:(Sv.Approx (Q.of_int 3))
      ~cascade_tier:(2, "minimal") ~rank:2 ~paper:"Thm 1" ~impl:"Active.Minimal"
      ~solve:(fun ?budget:_ ?obs ?params inst ->
        of_solution (Minimal.solve ?obs (slotted "minimal" inst) (order_of_params params)))
      ();
    Sv.make ~name:"rounding" ~kind:I.Active_slotted ~quality:(Sv.Approx Q.two)
      ~supports_budget:true ~cascade_tier:(1, "lp-rounding") ~rank:1
      ~exhausted_hint:"budget exhausted inside the LP" ~paper:"Thm 2" ~impl:"Active.Rounding"
      ~solve:(fun ?budget ?obs ?params inst ->
        let inst = slotted "rounding" inst in
        try
          of_solution
            (Option.map fst
               (Rounding.solve ~engine:(engine_of_params params)
                  ~pricing:(pricing_of_params params) ?budget ?obs inst))
        with Budget.Out_of_fuel -> R.exhausted ~spent:(spent_of budget) ())
      ();
    Sv.make ~name:"exact" ~kind:I.Active_slotted ~quality:Sv.Exact ~supports_budget:true
      ~cascade_tier:(0, "exact") ~rank:0 ~exhausted_hint:"exact search ran out of budget"
      ~paper:"methodology (E16)" ~impl:"Active.Exact"
      ~solve:(fun ?budget ?obs ?params:_ inst ->
        of_outcome (Exact.solve ?budget ?obs (slotted "exact" inst)))
      ();
    Sv.make ~name:"ilp" ~kind:I.Active_slotted ~quality:Sv.Exact ~supports_budget:true ~rank:1
      ~exhausted_hint:"LP-based search ran out of budget" ~paper:"methodology (E16)"
      ~impl:"Active.Ilp"
      ~solve:(fun ?budget ?obs ?params inst ->
        of_outcome
          (Budget.map (Option.map fst)
             (Ilp.solve ~engine:(engine_of_params params) ~pricing:(pricing_of_params params)
                ?budget ?obs (slotted "ilp" inst))))
      ();
    Sv.make ~name:"unit" ~kind:I.Active_slotted ~quality:Sv.Exact ~rank:2
      ~restriction:"unit-length jobs"
      ~guard:(fun inst ->
        match inst with
        | I.Slotted s ->
            if Unit_jobs.is_unit s then None else Some "unit algorithm requires unit-length jobs"
        | _ -> Some "unit expects an active-slotted instance")
      ~paper:"§1.3 CGK unit jobs" ~impl:"Active.Unit_jobs"
      ~solve:(fun ?budget:_ ?obs:_ ?params:_ inst ->
        let s = slotted "unit" inst in
        if not (Unit_jobs.is_unit s) then
          raise (Sv.Unsupported "unit algorithm requires unit-length jobs");
        of_solution (Unit_jobs.solve s))
      ();
    Sv.make ~name:"lp-bound" ~kind:I.Active_slotted ~quality:Sv.Bound ~supports_budget:true
      ~exhausted_hint:"budget exhausted inside the LP" ~paper:"§3 LP1" ~impl:"Active.Lp_model"
      ~solve:(fun ?budget ?obs ?params inst ->
        let inst = slotted "lp-bound" inst in
        match
          Lp_model.solve ~engine:(engine_of_params params)
            ~pricing:(pricing_of_params params) ?budget ?obs inst
        with
        | Some lp -> R.solved (R.Value lp.Lp_model.cost)
        | None -> R.infeasible ()
        | exception Budget.Out_of_fuel -> R.exhausted ~spent:(spent_of budget) ())
      ();
    Sv.make ~name:"cascade" ~kind:I.Active_slotted ~quality:(Sv.Approx (Q.of_int 3))
      ~supports_budget:true ~composite:true ~paper:"DESIGN §5a" ~impl:"Active.Cascade"
      ~solve:(fun ?budget ?obs ?params:_ inst ->
        let inst = slotted "cascade" inst in
        let deadline = Option.bind budget Budget.probe in
        let sol, prov = Cascade.solve ?obs ?deadline ~limit:(cascade_limit budget) inst in
        let provenance = Budget.Cascade.map_provenance (fun c -> R.Slots c) prov in
        match sol with
        | Some s -> R.solved ~provenance ~witness:(opened s) (R.Slots (Solution.cost s))
        | None -> R.infeasible ~provenance ())
      ();
  ]

let () = List.iter Core.Registry.register solvers
let force () = ()
