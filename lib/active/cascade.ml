(* Graceful degradation for the active-time model: run the solver tiers
   in quality order, each under a fresh fuel budget, and return the first
   answer together with a provenance record. The last tier
   (minimal-feasible greedy, a 3-approximation) is polynomial and ignores
   its budget, so the cascade always terminates with an answer on
   feasible instances. *)

module S = Workload.Slotted

type provenance = int Budget.Cascade.provenance

let tiers ~obs (inst : S.t) =
  [
    ( "exact",
      fun b ->
        match Exact.solve ~budget:b ~obs inst with
        | Budget.Complete r -> r
        | Budget.Exhausted _ -> raise Budget.Out_of_fuel );
    ("lp-rounding", fun b -> Option.map fst (Rounding.solve ~budget:b ~obs inst));
    ("minimal", fun _ -> Minimal.solve ~obs inst Minimal.Right_to_left);
  ]

let solve ?(obs = Obs.null) ~limit (inst : S.t) =
  let r = Budget.Cascade.run ~obs ~limit (tiers ~obs inst) in
  let prov =
    Budget.Cascade.provenance ~cost_label:"cost" ~bound_label:"mass-bound" ~sub:( - )
      ~bound:(S.mass_lower_bound inst)
      ~cost:(Option.map Solution.cost r.Budget.Cascade.value)
      r
  in
  (r.Budget.Cascade.value, prov)

let pp_provenance fmt p = Budget.Cascade.pp_provenance ~pp_cost:Format.pp_print_int fmt p
