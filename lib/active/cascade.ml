(* Graceful degradation for the active-time model: run the solver tiers
   in quality order, each under a fresh fuel budget, and return the first
   answer together with a provenance record. The last tier
   (minimal-feasible greedy, a 3-approximation) is polynomial and ignores
   its budget, so the cascade always terminates with an answer on
   feasible instances. *)

module S = Workload.Slotted

type provenance = {
  winner : string option;  (* tier that produced [value] *)
  attempts : Budget.Cascade.attempt list;  (* in run order *)
  cost : int option;  (* active time of the returned solution *)
  mass_bound : int;  (* ceil(P/g): lower bound on OPT, gap witness *)
}

let tiers (inst : S.t) =
  [
    ( "exact",
      fun b ->
        match Exact.budgeted ~budget:b inst with
        | Budget.Complete r -> r
        | Budget.Exhausted _ -> raise Budget.Out_of_fuel );
    ("lp-rounding", fun b -> Option.map fst (Rounding.solve ~budget:b inst));
    ("minimal", fun _ -> Minimal.solve inst Minimal.Right_to_left);
  ]

let solve ~limit (inst : S.t) =
  let r = Budget.Cascade.run ~limit (tiers inst) in
  let prov =
    {
      winner = r.Budget.Cascade.winner;
      attempts = r.Budget.Cascade.attempts;
      cost = Option.map Solution.cost r.Budget.Cascade.value;
      mass_bound = S.mass_lower_bound inst;
    }
  in
  (r.Budget.Cascade.value, prov)

let pp_provenance fmt p =
  List.iter (fun a -> Format.fprintf fmt "cascade: %a@." Budget.Cascade.pp_attempt a) p.attempts;
  let tier = Option.value p.winner ~default:"none" in
  match p.cost with
  | Some c ->
      Format.fprintf fmt "provenance: tier=%s cost=%d mass-bound=%d gap=%d@." tier c p.mass_bound
        (c - p.mass_bound)
  | None -> Format.fprintf fmt "provenance: tier=%s no-answer mass-bound=%d@." tier p.mass_bound
