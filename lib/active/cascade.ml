(* Graceful degradation for the active-time model: run the registered
   solver tiers in capability order, each under a fresh fuel budget, and
   return the first answer together with a provenance record. The ladder
   comes from the registry ({!Core.Registry.cascade_ladder}): every
   active-slotted solver carrying a [cascade_tier] — exact branch and
   bound, then LP rounding, then the minimal-feasible greedy — under its
   historical tier label. The last tier is polynomial and ignores its
   budget, so the cascade always terminates with an answer on feasible
   instances. *)

module S = Workload.Slotted

type provenance = int Budget.Cascade.provenance

(* Adapt a registered solver to a Budget.Cascade tier: a definitive
   Result answers (or settles infeasibility), exhaustion passes the
   baton to the next tier. *)
let tiers ~obs (inst : S.t) =
  Core.Registry.cascade_ladder Core.Instance.Active_slotted
  |> List.map (fun (label, (s : Core.Solver.t)) ->
         ( label,
           fun b ->
             match s.Core.Solver.solve ~budget:b ~obs (Core.Instance.Slotted inst) with
             | { Core.Result.status = Core.Result.Exhausted _; _ } -> raise Budget.Out_of_fuel
             | { Core.Result.status = Core.Result.Infeasible; _ } -> None
             | { Core.Result.witness = Some (Core.Result.Opened { open_slots; schedule }); _ }
               ->
                 Some { Solution.open_slots; schedule }
             | _ -> invalid_arg ("Cascade.solve: tier " ^ label ^ " returned no schedule") ))

let solve ?(obs = Obs.null) ?deadline ~limit (inst : S.t) =
  let r = Budget.Cascade.run ~obs ?deadline ~limit (tiers ~obs inst) in
  let prov =
    Budget.Cascade.provenance ~cost_label:"cost" ~bound_label:"mass-bound" ~sub:( - )
      ~bound:(S.mass_lower_bound inst)
      ~cost:(Option.map Solution.cost r.Budget.Cascade.value)
      r
  in
  (r.Budget.Cascade.value, prov)

let pp_provenance fmt p = Budget.Cascade.pp_provenance ~pp_cost:Format.pp_print_int fmt p
