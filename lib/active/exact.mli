(** Exact optima for the active-time problem, used by tests and benches to
    measure true approximation ratios (the paper conjectures the problem
    NP-hard; both solvers are exponential in the worst case).

    [branch_and_bound] decides open/closed per relevant slot with monotone
    feasibility pruning and cost pruning against an incumbent seeded by a
    minimal feasible solution; practical to a few dozen slots.
    [brute_force] enumerates slot subsets and cross-checks the B&B in the
    tests. *)

(** Raises [Invalid_argument] beyond 20 relevant slots. [None] iff
    infeasible. *)
val brute_force : Workload.Slotted.t -> Solution.t option

(** [None] iff infeasible. Equivalent to [solve] with unlimited fuel. *)
val branch_and_bound : Workload.Slotted.t -> Solution.t option

(** Budgeted branch and bound: one tick per search node (default:
    unlimited). On exhaustion returns [Exhausted] whose incumbent is the
    best feasible solution found so far (at worst the minimal-solution
    seed) — [None] inside the outcome still means the instance is
    infeasible, which is always detected before any node is expanded.

    [?oracle] selects the feasibility probe (default
    {!Feasibility.Incremental}): the incremental mode drives one
    persistent warm {!Feasibility.Oracle} through the whole search
    (close slot, re-augment, reopen on backtrack), the [Rebuild] mode
    reconstructs the flow network per probe. Both modes compute exact
    max flows, so they return byte-identical optima and record identical
    [active.exact.nodes] / [active.exact.flow_checks] counters; only the
    flow-level telemetry (and the wall clock) differs.

    With [?obs], runs inside an [active.exact] span and records
    [active.exact.nodes] / [active.exact.flow_checks] (on the exhausted
    path too) plus the nested seed ([active.minimal]) and flow
    counters. *)
val solve :
  ?budget:Budget.t ->
  ?oracle:Feasibility.probe_mode ->
  ?obs:Obs.t -> Workload.Slotted.t -> Solution.t option Budget.outcome

(** Optimal active time ([None] iff infeasible). *)
val optimum : Workload.Slotted.t -> int option

(** Search effort of the most recent [branch_and_bound] call. *)
type bb_stats = { nodes : int; flow_checks : int }

val last_stats : bb_stats ref
