(** The unit-length special case (Chang–Gabow–Khuller give a fast exact
    greedy). Directional minimalization (closing slots right-to-left — the
    lazy-activation behaviour) matches the branch-and-bound optimum on
    every generated unit instance, and the test suite pins both that and
    the fact that minimality alone is NOT sufficient: a shuffled closing
    order can end in a strictly worse minimal set (regression at fuzzer
    seed 23641). *)

val is_unit : Workload.Slotted.t -> bool

(** Exact for unit-length instances (validated against branch-and-bound);
    raises [Invalid_argument] otherwise. [None] iff infeasible. *)
val solve : Workload.Slotted.t -> Solution.t option
