(* An active-time solution: the set of open (active) slots plus an integral
   schedule. Cost = number of open slots (the machine's active time). *)

module S = Workload.Slotted

type t = { open_slots : int list; (* sorted, distinct *) schedule : S.schedule }

let cost t = List.length t.open_slots

let of_open_slots (inst : S.t) ~open_slots =
  match Feasibility.schedule inst ~open_slots with
  | None -> None
  | Some schedule ->
      (* drop open slots no schedule unit uses? No: cost counts every open
         slot the solution declares; keep exactly the given set. *)
      Some { open_slots = List.sort_uniq compare open_slots; schedule }

(* Full validation: schedule feasible for the instance and contained in the
   declared open slots. Returns a violation description, or [None]. *)
let verify (inst : S.t) t =
  match S.check_schedule inst t.schedule with
  | Some problem -> Some problem
  | None ->
      let open_set = Hashtbl.create 32 in
      List.iter (fun s -> Hashtbl.replace open_set s ()) t.open_slots;
      if List.for_all (Hashtbl.mem open_set) (S.active_slots t.schedule) then None
      else Some "schedule uses a slot outside the declared open set"

let pp fmt t =
  Format.fprintf fmt "active time %d, open slots: %s@." (cost t)
    (String.concat "," (List.map string_of_int t.open_slots));
  List.iter
    (fun (id, slots) ->
      Format.fprintf fmt "  job %d -> %s@." id (String.concat "," (List.map string_of_int slots)))
    t.schedule
