(** Feasibility of an active-time instance on a set of open slots, via the
    flow network [G_feas] of the paper's Fig. 2:

    {v source --p_j--> job j --1--> open slot t in window --g--> sink v}

    The instance is feasible iff the max flow saturates every job arc; an
    integral max flow is a schedule. This check backs the minimal-feasible
    closing loop, the LP rounding's "may this barely-open slot stay
    closed" test and the exact branch-and-bound. *)

(** [feasible ?only_jobs t ~open_slots] decides whether all jobs (or just
    those with ids in [only_jobs]) fit into the open slots. [?obs] is
    forwarded to {!Flow.max_flow}. *)
val feasible :
  ?only_jobs:int list -> ?obs:Obs.t -> Workload.Slotted.t -> open_slots:int list -> bool

(** An integral schedule on the open slots, or [None] when infeasible. *)
val schedule : Workload.Slotted.t -> open_slots:int list -> Workload.Slotted.schedule option

(** How a search kernel probes feasibility: [Incremental] retargets one
    persistent warm {!Oracle} per solve, [Rebuild] reconstructs the flow
    network per probe (the pre-oracle baseline, kept selectable so the
    bench harness can measure the speedup and the fuzz oracle can
    cross-check observational equivalence). *)
type probe_mode = Incremental | Rebuild

(** Persistent incremental feasibility oracle.

    The Fig. 2 network is built once per instance with every relevant slot
    and every job wired in; probes then toggle arc capacities on the warm
    residual graph instead of rebuilding:

    - closing a slot drains the [<= g] displaced flow units back through
      the residual graph ({!Flow.drain_edge}) and zeroes its slot->sink
      arc; reopening restores capacity [g];
    - activating a job raises its source->job arc from [0] to [p_j]
      (deactivating drains it);
    - {!Oracle.check} re-augments from the current residual state
      ({!Flow.augment}) and reports whether the flow saturates every
      active job arc.

    Amortized work per consecutive-probe toggle is one drain plus the
    re-augmentation of the recovered units — not a fresh network build
    plus a from-scratch Dinic run. Answers are observationally equivalent
    to {!feasible} on the same open set / active jobs (max flow is exact
    either way); the fuzz oracle and qcheck suites pin this. *)
module Oracle : sig
  type t

  (** [create inst] wires the full network. [open_all] (default [true])
      starts with every relevant slot open; [activate_all] (default
      [true]) with every job active. With [?obs], records
      [active.oracle.builds]. *)
  val create : ?obs:Obs.t -> ?open_all:bool -> ?activate_all:bool -> Workload.Slotted.t -> t

  (** Sum of active job lengths — the flow value [check] must reach. *)
  val target : t -> int

  (** Flow currently routed (maintained across toggles and drains). *)
  val flow_value : t -> int

  val slot_is_open : t -> slot:int -> bool

  (** Toggle a slot. Closing drains its routed flow; opening an already
      open slot (or closing a closed one) is a no-op. Toggling a slot no
      job can use is a no-op either way (such slots exist in no window
      and never carry flow, matching [feasible], which ignores them). *)
  val set_slot : ?obs:Obs.t -> t -> slot:int -> open_:bool -> unit

  (** Toggle every job with the given id (ids are expected unique, but
      duplicates are all toggled, matching [feasible ?only_jobs]). Raises
      [Invalid_argument] on an unknown id. *)
  val set_job : ?obs:Obs.t -> t -> id:int -> active:bool -> unit

  (** Re-augment on the warm residual graph and decide feasibility of the
      current open set for the currently active jobs. With [?obs],
      records [active.oracle.checks] plus the {!Flow.augment}
      counters. *)
  val check : ?obs:Obs.t -> t -> bool

  (** Currently open slots, sorted. *)
  val open_slots : t -> int list
end
