(** Feasibility of an active-time instance on a set of open slots, via the
    flow network [G_feas] of the paper's Fig. 2:

    {v source --p_j--> job j --1--> open slot t in window --g--> sink v}

    The instance is feasible iff the max flow saturates every job arc; an
    integral max flow is a schedule. This check backs the minimal-feasible
    closing loop, the LP rounding's "may this barely-open slot stay
    closed" test and the exact branch-and-bound. *)

(** [feasible ?only_jobs t ~open_slots] decides whether all jobs (or just
    those with ids in [only_jobs]) fit into the open slots. [?obs] is
    forwarded to {!Flow.max_flow}. *)
val feasible :
  ?only_jobs:int list -> ?obs:Obs.t -> Workload.Slotted.t -> open_slots:int list -> bool

(** An integral schedule on the open slots, or [None] when infeasible. *)
val schedule : Workload.Slotted.t -> open_slots:int list -> Workload.Slotted.schedule option
