(* The multiple-window generalization of active time (Chang, Gabow,
   Khuller [2], discussed in Section 1.3): a job may be scheduled in a
   union of disjoint time intervals rather than one window. Once capacity
   exceeds two the problem is NP-hard (reduction from 3-EXACT-COVER), so
   this module provides the flow feasibility test, minimal feasible
   solutions, and an exact branch-and-bound - the same toolkit as the
   single-window case, over the richer window structure. *)

module Q = Rational

type job = {
  id : int;
  windows : (int * int) list; (* disjoint (release, deadline) pairs, sorted *)
  length : int;
}

type t = { jobs : job array; g : int }

let job ~id ~windows ~length =
  if length < 1 then invalid_arg "Multi_window.job: length < 1";
  if windows = [] then invalid_arg "Multi_window.job: no windows";
  let sorted = List.sort compare windows in
  let rec disjoint = function
    | (_, d1) :: ((r2, _) :: _ as rest) -> d1 <= r2 && disjoint rest
    | _ -> true
  in
  List.iter
    (fun (r, d) -> if r < 0 || d <= r then invalid_arg "Multi_window.job: bad window")
    sorted;
  if not (disjoint sorted) then invalid_arg "Multi_window.job: overlapping windows";
  let capacity = List.fold_left (fun acc (r, d) -> acc + d - r) 0 sorted in
  if capacity < length then invalid_arg "Multi_window.job: windows shorter than length";
  { id; windows = sorted; length }

let window_slots j =
  List.concat_map (fun (r, d) -> List.init (d - r) (fun i -> r + 1 + i)) j.windows

let make ~g jobs =
  if g < 1 then invalid_arg "Multi_window.make: g < 1";
  { jobs = Array.of_list jobs; g }

let total_length t = Array.fold_left (fun acc j -> acc + j.length) 0 t.jobs

let relevant_slots t =
  let tbl = Hashtbl.create 64 in
  Array.iter (fun j -> List.iter (fun s -> Hashtbl.replace tbl s ()) (window_slots j)) t.jobs;
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) tbl [])

let mass_lower_bound t = (total_length t + t.g - 1) / t.g

(* Feasibility on an open-slot set, via the same G_feas construction as the
   single-window case. *)
let feasible_and_schedule t ~open_slots =
  let open_set = Hashtbl.create 32 in
  List.iter (fun s -> Hashtbl.replace open_set s ()) open_slots;
  let slots = List.filter (Hashtbl.mem open_set) (relevant_slots t) in
  let slot_index = Hashtbl.create 32 in
  List.iteri (fun i s -> Hashtbl.replace slot_index s i) slots;
  let n = Array.length t.jobs in
  let m = List.length slots in
  let source = 0 and sink = n + m + 1 in
  let g = Flow.create (n + m + 2) in
  Array.iteri (fun idx j -> ignore (Flow.add_edge g ~src:source ~dst:(idx + 1) ~cap:j.length)) t.jobs;
  let assign = ref [] in
  Array.iteri
    (fun idx j ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt slot_index s with
          | Some si ->
              let e = Flow.add_edge g ~src:(idx + 1) ~dst:(n + 1 + si) ~cap:1 in
              assign := ((idx, s), e) :: !assign
          | None -> ())
        (window_slots j))
    t.jobs;
  List.iteri (fun si _ -> ignore (Flow.add_edge g ~src:(n + 1 + si) ~dst:sink ~cap:t.g)) slots;
  if Flow.max_flow g ~source ~sink <> total_length t then None
  else begin
    let per_job = Array.make n [] in
    List.iter (fun ((idx, s), e) -> if Flow.flow g e = 1 then per_job.(idx) <- s :: per_job.(idx)) !assign;
    Some (Array.to_list (Array.mapi (fun idx j -> (j.id, List.sort compare per_job.(idx))) t.jobs))
  end

let feasible t ~open_slots = feasible_and_schedule t ~open_slots <> None

(* Close slots greedily; single pass is minimal by monotonicity. *)
let minimal ?start t =
  let start = match start with Some s -> s | None -> relevant_slots t in
  if not (feasible t ~open_slots:start) then None
  else begin
    let current = ref (List.sort_uniq compare start) in
    List.iter
      (fun s ->
        let without = List.filter (fun s' -> s' <> s) !current in
        if feasible t ~open_slots:without then current := without)
      !current;
    Some !current
  end

(* Exact optimum by the same branch-and-bound as {!Exact}. *)
let optimum t =
  let slots = Array.of_list (relevant_slots t) in
  let k = Array.length slots in
  match minimal t with
  | None -> None
  | Some seed ->
      let best = ref (List.length seed) in
      let best_set = ref seed in
      let mass_lb = mass_lower_bound t in
      let rec dfs i opened n_open =
        if n_open < !best then begin
          if i = k then begin
            best := n_open;
            best_set := List.rev opened
          end
          else if max n_open mass_lb < !best then begin
            let rest = Array.to_list (Array.sub slots (i + 1) (k - i - 1)) in
            if feasible t ~open_slots:(List.rev_append opened rest) then dfs (i + 1) opened n_open;
            dfs (i + 1) (slots.(i) :: opened) (n_open + 1)
          end
        end
      in
      dfs 0 [] 0;
      Some (List.length !best_set, !best_set)

(* A schedulable-sets instance in the style of the 3-EXACT-COVER hardness
   reduction: [universe] elements each needing one unit, and set-jobs whose
   windows are the member slots of the sets they represent. With g >= 3
   such instances are where the NP-hardness lives. *)
let exact_cover_instance ~g sets ~universe =
  let jobs =
    List.mapi
      (fun i members ->
        let windows = List.map (fun m -> (m, m + 1)) (List.sort_uniq compare members) in
        job ~id:i ~windows ~length:(List.length (List.sort_uniq compare members)))
      sets
  in
  ignore universe;
  make ~g jobs
