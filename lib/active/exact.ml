(* Exact optima for the active-time problem.

   The paper conjectures the problem NP-hard and only compares against OPT
   analytically; the benches need OPT numerically, so we compute it by
   branch-and-bound over open/closed decisions per relevant slot with

     - monotone feasibility pruning (close a slot only while the remaining
       open-or-undecided set stays feasible), and
     - cost pruning against the incumbent, seeded with a minimal feasible
       solution, with the mass bound ceil(P/g) as a global floor.

   The chosen-open set lives in an immutable Bitset over relevant-slot
   indices, so branching costs a few word operations instead of the list
   rebuilds of the original kernel. Feasibility probes go through a
   selectable [Feasibility.probe_mode]: the default drives ONE persistent
   incremental oracle for the whole search (close slot / re-augment /
   reopen on backtrack), the Rebuild mode reconstructs the flow network
   per probe. Both modes compute exact max flows, hence take identical
   branching decisions and report identical node / flow-check counters —
   the bench harness exploits that to measure the pure oracle speedup.

   [brute_force] cross-checks the B&B on tiny instances in the tests. *)

module S = Workload.Slotted

let src = Logs.Src.create "abt.exact" ~doc:"active-time branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

(* statistics of the last branch_and_bound call (search effort) *)
type bb_stats = { nodes : int; flow_checks : int }

let last_stats = ref { nodes = 0; flow_checks = 0 }

let popcount = Bitset.popcount_word

(* Exhaustive search over all subsets of relevant slots. Only sensible for
   a dozen slots or so; raises [Invalid_argument] beyond 20. *)
let brute_force (inst : S.t) =
  let slots = Array.of_list (S.relevant_slots inst) in
  let k = Array.length slots in
  if k > 20 then invalid_arg "Exact.brute_force: too many slots";
  let best = ref None in
  let best_cost = ref max_int in
  for mask = 0 to (1 lsl k) - 1 do
    let c = popcount mask in
    if c < !best_cost then begin
      let open_slots =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list slots)
      in
      if Feasibility.feasible inst ~open_slots then begin
        best := Some open_slots;
        best_cost := c
      end
    end
  done;
  Option.bind !best (fun open_slots -> Solution.of_open_slots inst ~open_slots)

let solve ?budget ?(oracle = Feasibility.Incremental) ?(obs = Obs.null) (inst : S.t) =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  Obs.span obs "active.exact" @@ fun () ->
  let slots = Array.of_list (S.relevant_slots inst) in
  let k = Array.length slots in
  let mass_lb = S.mass_lower_bound inst in
  (* incumbent from a minimal feasible solution *)
  match Minimal.solve ~oracle ~obs inst Minimal.Right_to_left with
  | None -> Budget.Complete None (* infeasible instance *)
  | Some seed ->
      let slot_idx = Hashtbl.create (2 * k) in
      Array.iteri (fun i s -> Hashtbl.replace slot_idx s i) slots;
      let to_bits l =
        List.fold_left (fun b s -> Bitset.add b (Hashtbl.find slot_idx s)) (Bitset.create ~width:k) l
      in
      let to_slots b = List.map (fun i -> slots.(i)) (Bitset.to_list b) in
      let best = ref (Solution.cost seed) in
      let best_set = ref (to_bits seed.Solution.open_slots) in
      let nodes = ref 0 and flow_checks = ref 0 in
      let ora =
        match oracle with
        | Feasibility.Incremental -> Some (Feasibility.Oracle.create ~obs inst)
        | Feasibility.Rebuild -> None
      in
      (* Probe "slot i closed, the rest of the current state unchanged".
         Incremental mode leaves the slot closed in the oracle (the caller
         reopens on backtrack); Rebuild mode reconstructs the open set as
         chosen-open + undecided suffix. *)
      let probe_close i opened =
        incr flow_checks;
        match ora with
        | Some o ->
            Feasibility.Oracle.set_slot ~obs o ~slot:slots.(i) ~open_:false;
            Feasibility.Oracle.check ~obs o
        | None ->
            let candidate = Bitset.union opened (Bitset.suffix ~width:k (i + 1)) in
            Feasibility.feasible ~obs inst ~open_slots:(to_slots candidate)
      in
      let reopen i =
        match ora with
        | Some o -> Feasibility.Oracle.set_slot ~obs o ~slot:slots.(i) ~open_:true
        | None -> ()
      in
      (* DFS: i = next slot index, opened = chosen-open slot indices,
         n_open = |opened|. Undecided slots are i..k-1 and are open in the
         oracle whenever the DFS sits at index i. Invariant: opened plus
         all undecided is feasible. *)
      let rec dfs i opened n_open =
        Budget.tick budget;
        incr nodes;
        if n_open < !best then begin
          if i = k then begin
            (* all decided; invariant says [opened] is feasible *)
            best := n_open;
            best_set := opened
          end
          else if max n_open mass_lb < !best then begin
            (* try closing slot i: keep going only if still feasible *)
            if probe_close i opened then dfs (i + 1) opened n_open;
            reopen i;
            (* then try opening slot i *)
            dfs (i + 1) (Bitset.add opened i) (n_open + 1)
          end
        end
      in
      (* Also records stats on the exhausted path, so [last_stats] and the
         obs counters always reflect the work actually done. *)
      let finish () =
        last_stats := { nodes = !nodes; flow_checks = !flow_checks };
        Obs.add obs "active.exact.nodes" !nodes;
        Obs.add obs "active.exact.flow_checks" !flow_checks;
        Solution.of_open_slots inst ~open_slots:(to_slots !best_set)
      in
      let root_feasible () =
        incr flow_checks;
        match ora with
        | Some o -> Feasibility.Oracle.check ~obs o
        | None -> Feasibility.feasible ~obs inst ~open_slots:(Array.to_list slots)
      in
      (try
         if root_feasible () then dfs 0 (Bitset.create ~width:k) 0;
         Log.info (fun m ->
             m "branch and bound: %d slots, %d nodes, %d flow checks, optimum %d" k !nodes !flow_checks !best);
         Budget.Complete (finish ())
       with Budget.Out_of_fuel ->
         Log.info (fun m ->
             m "branch and bound: out of fuel after %d nodes, incumbent %d" !nodes !best);
         Budget.Exhausted { spent = Budget.spent budget; incumbent = finish () })


let branch_and_bound (inst : S.t) =
  match solve ~budget:(Budget.unlimited ()) inst with
  | Budget.Complete r -> r
  | Budget.Exhausted _ -> assert false (* unlimited fuel never exhausts *)

(* Optimal active time, or [None] when the instance is infeasible. *)
let optimum inst = Option.map Solution.cost (branch_and_bound inst)
