(* The sweep driver: deterministic case generation per seed (both models,
   several structure families), parallel execution on Parallel.Pool,
   shrinking of failures, and a counterexample corpus (write + replay).

   Everything is a pure function of (seed, fuel, planted_bug): no clocks,
   no global randomness, so a CI failure replays locally bit-for-bit. *)

module B = Workload.Bjob
module Io = Workload.Io
module G = Workload.Generate

type case = { name : string; g : int; instance : Io.instance }

type counterexample = {
  case : string;  (* family-seed label, e.g. "busy-interval-seed0042" *)
  cg : int;  (* capacity for busy instances *)
  failure : Oracle.failure;
  instance : Io.instance;  (* already shrunk *)
}

type report = { seeds : int; cases : int; failures : counterexample list }

let cases_for_seed seed =
  let slotted =
    let params =
      {
        G.n = 5 + (seed mod 4);
        horizon = 10 + (2 * (seed mod 4));
        max_length = 3;
        slack = seed mod 5;
        g = 2 + (seed mod 2);
      }
    in
    { name = "slotted"; g = params.G.g; instance = Io.Slotted_instance (G.slotted ~params ~seed ()) }
  in
  let slotted_unit =
    let g = 2 + (seed mod 3) in
    {
      name = "slotted-unit";
      g;
      instance =
        Io.Slotted_instance (G.slotted_unit ~horizon:(6 + (seed mod 5)) ~g ~n:(6 + (seed mod 5)) ~seed ());
    }
  in
  let sparse_wide =
    (* block-diagonal LP1 family: keeps the lp-engine differential honest
       on the sparse engine's home turf *)
    let g = 2 + (seed mod 2) in
    {
      name = "slotted-sparse-wide";
      g;
      instance =
        Io.Slotted_instance
          (Workload.Gadgets.sparse_wide ~g ~blocks:(1 + (seed mod 3)) ~width:(2 + (seed mod 4)));
    }
  in
  let interval =
    let g = 2 + (seed mod 3) in
    {
      name = "busy-interval";
      g;
      instance = Io.Busy_instance (G.interval_jobs ~n:(5 + (seed mod 4)) ~horizon:12 ~max_length:4 ~seed ());
    }
  in
  let structured =
    let g = 2 + (seed mod 2) in
    let name, jobs =
      match seed mod 3 with
      | 0 -> ("busy-proper", G.proper_interval_jobs ~n:(5 + (seed mod 3)) ~seed ())
      | 1 -> ("busy-clique", G.clique_interval_jobs ~n:(5 + (seed mod 3)) ~seed ())
      | _ -> ("busy-laminar", G.laminar_interval_jobs ~depth:(2 + (seed mod 2)) ~seed ())
    in
    { name; g; instance = Io.Busy_instance jobs }
  in
  let flexible =
    let g = 2 + (seed mod 2) in
    {
      name = "busy-flexible";
      g;
      instance =
        Io.Busy_instance
          (G.flexible_jobs ~n:(4 + (seed mod 3)) ~horizon:12 ~max_length:3 ~slack_factor:2 ~seed ());
    }
  in
  [ slotted; slotted_unit; sparse_wide; interval; structured; flexible ]

let check ?(planted_bug = false) ~fuel (case : case) =
  match case.instance with
  | Io.Slotted_instance inst -> Oracle.check_slotted ~fuel inst
  | Io.Busy_instance jobs ->
      if List.for_all B.is_interval jobs then Oracle.check_busy ~planted_bug ~fuel ~g:case.g jobs
      else Oracle.check_flexible ~planted_bug ~fuel ~g:case.g jobs

let shrink_case ~planted_bug ~fuel (case : case) =
  let failing c = c <> None in
  match case.instance with
  | Io.Slotted_instance inst ->
      let fails i = failing (Oracle.check_slotted ~fuel i) in
      { case with instance = Io.Slotted_instance (Shrink.slotted ~fails inst) }
  | Io.Busy_instance jobs ->
      (* pinning the last flexible job flips the list to the interval
         oracle; the predicate follows the current shape *)
      let fails js =
        failing
          (if List.for_all B.is_interval js then Oracle.check_busy ~planted_bug ~fuel ~g:case.g js
           else Oracle.check_flexible ~planted_bug ~fuel ~g:case.g js)
      in
      { case with instance = Io.Busy_instance (Shrink.busy ~fails jobs) }

let run ?(planted_bug = false) ?domains ~seeds ~fuel () =
  let per_seed seed =
    let cases = cases_for_seed seed in
    let failures =
      List.filter_map
        (fun case ->
          match check ~planted_bug ~fuel case with
          | None -> None
          | Some failure ->
              let shrunk = shrink_case ~planted_bug ~fuel case in
              (* the minimized instance may fail a different (earlier)
                 check; report what it fails now *)
              let failure = Option.value (check ~planted_bug ~fuel shrunk) ~default:failure in
              Some
                {
                  case = Printf.sprintf "%s-seed%04d" case.name seed;
                  cg = case.g;
                  failure;
                  instance = shrunk.instance;
                })
        cases
    in
    (List.length cases, failures)
  in
  let results = Parallel.Pool.init ?domains seeds per_seed in
  {
    seeds;
    cases = List.fold_left (fun acc (c, _) -> acc + c) 0 results;
    failures = List.concat_map snd results;
  }

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let one_line s = String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let write_corpus ~dir cxs =
  ensure_dir dir;
  List.map
    (fun cx ->
      let path = Filename.concat dir (cx.case ^ ".txt") in
      let header =
        Printf.sprintf "# fuzz counterexample\n# check: %s\n# detail: %s\n# fuzz-g: %d\n"
          (one_line cx.failure.Oracle.check)
          (one_line cx.failure.Oracle.detail)
          cx.cg
      in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (header ^ Io.to_string cx.instance));
      path)
    cxs

(* the capacity comment survives Io's comment stripping; recover it here *)
let corpus_g text =
  let prefix = "# fuzz-g:" in
  String.split_on_char '\n' text
  |> List.find_map (fun line ->
         if String.length line >= String.length prefix
            && String.sub line 0 (String.length prefix) = prefix
         then
           int_of_string_opt
             (String.trim (String.sub line (String.length prefix) (String.length line - String.length prefix)))
         else None)

let replay ?(planted_bug = false) ~fuel ~dir () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    (* parser-* counterexamples are raw request lines, not instances;
       Parser_fuzz.replay owns them *)
    |> List.filter (fun f ->
           Filename.check_suffix f ".txt" && not (Parser_fuzz.is_parser_file f))
    |> List.sort compare
    |> List.filter_map (fun f ->
           let path = Filename.concat dir f in
           let text = In_channel.with_open_text path In_channel.input_all in
           match Io.parse_string text with
           | instance ->
               let g = Option.value (corpus_g text) ~default:2 in
               let case = { name = Filename.remove_extension f; g; instance } in
               Option.map (fun failure -> (f, failure)) (check ~planted_bug ~fuel case)
           | exception Io.Parse_error (l, m) ->
               Some (f, { Oracle.check = "replay-parse"; detail = Printf.sprintf "line %d: %s" l m }))
