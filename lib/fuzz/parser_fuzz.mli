(** Fuzz target for the serve request parser's totality contract:
    {!Obs.Json.parse} and [Serve.Protocol.decode_line] must never raise,
    whatever bytes arrive. Deterministic per-seed generation (byte soup,
    mutated well-formed requests, pathological nesting, broken escapes);
    failures join the corpus as [parser-*.txt] with their own replay
    path. *)

type failure = { case : string; line : string; detail : string }

(** The (family, line) pairs generated for one seed. *)
val lines_for_seed : int -> (string * string) list

(** [Some detail] when a parser layer raised on [line]; [None] when both
    returned Ok/Error as promised. *)
val check_line : string -> string option

(** Sweep seeds [0..seeds-1] on {!Parallel.Pool}. *)
val run : ?domains:int -> seeds:int -> unit -> failure list

(** One [parser-*.txt] file per failure (the offending line verbatim);
    returns the paths. *)
val write_corpus : dir:string -> failure list -> string list

(** [true] for corpus filenames this module owns ([parser-*]); the
    instance-oracle replay skips them. *)
val is_parser_file : string -> bool

(** Re-check every [parser-*.txt] in [dir] (missing dir = empty corpus);
    returns files that still make a parser raise. *)
val replay : dir:string -> unit -> (string * string) list
