(** Differential oracle for the fuzz harness: cross-checks every
    algorithm pair on one instance against the paper's guarantees.

    Checked properties — any failure is a real disagreement:
    - IO round-trip through {!Workload.Io} preserves the instance;
    - every solver's output passes its verifier ({!Active.Solution.verify}
      / {!Busy.Bundle.check});
    - all solvers agree on feasibility;
    - exact optimum <= every approximation <= proven ratio x optimum
      (minimal 3x, LP rounding 2x; FirstFit 4x, GreedyTracking 3x,
      Two_approx and Kumar–Rudra 2x);
    - lower bounds (mass, span, demand profile) never exceed any feasible
      cost;
    - the flow-pruned and LP-based branch and bounds agree (small
      instances), and the unit-job greedy matches the optimum on unit
      instances;
    - uncaught exceptions (failed invariant asserts included) are
      reported as failures, not crashes.

    Exact tiers run under [fuel] ticks; on exhaustion the
    optimum-dependent checks are skipped, never reported as failures, so
    the oracle is deterministic and bounded on adversarial instances. *)

type failure = { check : string; detail : string }

val check_slotted : fuel:int -> Workload.Slotted.t -> failure option

(** Interval jobs with capacity [g]. [planted_bug] (default false) arms a
    deliberately false property ("FirstFit busy time never exceeds the
    span of the job union") used to exercise the shrinker in tests. *)
val check_busy : ?planted_bug:bool -> fuel:int -> g:int -> Workload.Bjob.t list -> failure option

(** Flexible jobs: validates the {!Busy.Placement} pinning (every job
    inside its window, lengths preserved), then runs the interval checks
    on the pinned instance. *)
val check_flexible :
  ?planted_bug:bool -> fuel:int -> g:int -> Workload.Bjob.t list -> failure option
