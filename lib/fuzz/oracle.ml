(* Differential oracle: cross-checks every algorithm pair on one instance.

   The properties are exactly the paper's guarantees, so any failure is a
   bug in some solver (or in the oracle): verifiers accept every produced
   solution, every approximation costs at least the exact optimum and at
   most its proven ratio times the optimum, the solvers agree on
   feasibility, IO round-trips preserve instances, and the two exact
   branch-and-bounds (flow-pruned and LP-based) agree. Exact tiers run
   under a fuel budget; on exhaustion the optimum-dependent checks are
   skipped (never reported as failures) so the oracle stays deterministic
   and bounded on adversarial instances.

   [planted_bug] arms a deliberately false claim — "a FirstFit packing
   never exceeds the span of the job union", which breaks as soon as
   demand exceeds g anywhere — used by the tests to exercise the
   shrinker end to end. *)

module Q = Rational
module S = Workload.Slotted
module B = Workload.Bjob
module Io = Workload.Io
module Solution = Active.Solution
module CI = Core.Instance
module CR = Core.Result
module CS = Core.Solver

(* The algorithm pairings below are registry queries, not hand-kept
   lists: every registered offline approximation whose guard accepts the
   instance is sandwiched against the optimum with its own declared
   ratio, and every applicable exact solver must agree with the primary
   search. A newly registered solver is differentially tested with no
   oracle change. *)

let ratio_of (s : CS.t) = match s.CS.quality with CS.Approx r -> r | _ -> Q.one

(* a Solved result without the model's witness is itself a finding;
   [guard] turns the exception into a failure report *)
let packing_exn (s : CS.t) (r : CR.t) =
  match r.CR.witness with
  | Some (CR.Packing p) -> p
  | _ -> failwith (s.CS.name ^ " returned no packing")

let solution_exn (s : CS.t) (r : CR.t) =
  match r.CR.witness with
  | Some (CR.Opened { open_slots; schedule }) -> { Solution.open_slots; schedule }
  | _ -> failwith (s.CS.name ^ " returned no schedule")

type failure = { check : string; detail : string }

let fail check fmt = Printf.ksprintf (fun detail -> Some { check; detail }) fmt

(* run checks in order, report the first failure *)
let first checks =
  List.fold_left (fun acc c -> match acc with Some _ -> acc | None -> c ()) None checks

(* Any uncaught exception (failed assert, Invalid_argument, ...) is a
   finding in its own right, not a crash of the harness. *)
let guard name f =
  try f () with
  | Budget.Out_of_fuel -> None
  | e -> fail name "uncaught exception: %s" (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Active-time (slotted) model                                         *)
(* ------------------------------------------------------------------ *)

(* Deterministic differential walk for the incremental feasibility
   oracle: toggle slots (and job subsets) in an index-derived pattern and
   compare every [Oracle.check] against a from-scratch
   [Feasibility.feasible] on the same open set / job subset. The pattern
   mixes closes, reopens-after-infeasible and job deactivations — the
   transitions the warm residual graph must survive. *)
let check_oracle_differential (inst : S.t) =
  guard "oracle-differential" @@ fun () ->
  let slots = Array.of_list (S.relevant_slots inst) in
  let k = Array.length slots in
  let idxs = List.init k (fun i -> i) in
  let o = Active.Feasibility.Oracle.create inst in
  let open_ = Array.make (Stdlib.max k 1) true in
  let slot_steps =
    List.concat
      [
        List.filter_map (fun i -> if i mod 2 = 0 then Some (i, false) else None) idxs;
        List.filter_map (fun i -> if i mod 4 = 0 then Some (i, true) else None) idxs;
        List.filter_map (fun i -> if i mod 3 = 0 then Some (i, false) else None) idxs;
        List.map (fun i -> (i, true)) idxs;
      ]
  in
  let mismatch = ref None in
  List.iter
    (fun (i, op) ->
      if !mismatch = None then begin
        Active.Feasibility.Oracle.set_slot o ~slot:slots.(i) ~open_:op;
        open_.(i) <- op;
        let open_slots = List.filteri (fun i _ -> open_.(i)) (Array.to_list slots) in
        let want = Active.Feasibility.feasible inst ~open_slots in
        let got = Active.Feasibility.Oracle.check o in
        if want <> got then
          mismatch :=
            fail "oracle-differential"
              "slot %d %s: oracle says %b, rebuild says %b" slots.(i)
              (if op then "reopened" else "closed")
              got want
      end)
    slot_steps;
  (match !mismatch with
  | None ->
      (* job phase: deactivate every third id, then reactivate *)
      let ids = List.sort_uniq compare (Array.to_list (Array.map (fun j -> j.S.id) inst.S.jobs)) in
      let dropped = List.filteri (fun i _ -> i mod 3 = 0) ids in
      List.iter (fun id -> Active.Feasibility.Oracle.set_job o ~id ~active:false) dropped;
      let kept = List.filter (fun id -> not (List.mem id dropped)) ids in
      let open_slots = List.filteri (fun i _ -> open_.(i)) (Array.to_list slots) in
      let want = Active.Feasibility.feasible ~only_jobs:kept inst ~open_slots in
      let got = Active.Feasibility.Oracle.check o in
      if want <> got then
        mismatch :=
          fail "oracle-differential" "with %d/%d jobs: oracle says %b, rebuild says %b"
            (List.length kept) (List.length ids) got want
      else begin
        List.iter (fun id -> Active.Feasibility.Oracle.set_job o ~id ~active:true) dropped;
        let want = Active.Feasibility.feasible inst ~open_slots in
        let got = Active.Feasibility.Oracle.check o in
        if want <> got then
          mismatch :=
            fail "oracle-differential" "after reactivation: oracle says %b, rebuild says %b" got
              want
      end
  | Some _ -> ());
  !mismatch

(* The two probe modes must take the same branching decisions: identical
   outcome shape, cost and search-effort counters. Counters come from
   per-call recorders, never [Exact.last_stats] (the harness fans checks
   out across domains). *)
let check_probe_modes ~fuel (inst : S.t) =
  guard "probe-mode-differential" @@ fun () ->
  let run oracle =
    let obs = Obs.create () in
    let r = Active.Exact.solve ~budget:(Budget.limited fuel) ~oracle ~obs inst in
    let counter name = Option.value (List.assoc_opt name (Obs.counters obs)) ~default:0 in
    (r, counter "active.exact.nodes", counter "active.exact.flow_checks")
  in
  let r_inc, nodes_inc, checks_inc = run Active.Feasibility.Incremental in
  let r_reb, nodes_reb, checks_reb = run Active.Feasibility.Rebuild in
  let cost = function
    | Budget.Complete (Some sol) -> Printf.sprintf "cost %d" (Solution.cost sol)
    | Budget.Complete None -> "infeasible"
    | Budget.Exhausted { incumbent = Some sol; _ } ->
        Printf.sprintf "exhausted, incumbent %d" (Solution.cost sol)
    | Budget.Exhausted { incumbent = None; _ } -> "exhausted, no incumbent"
  in
  let open_set = function
    | Budget.Complete (Some sol) | Budget.Exhausted { incumbent = Some sol; _ } ->
        sol.Solution.open_slots
    | _ -> []
  in
  first
    [
      (fun () ->
        if cost r_inc <> cost r_reb then
          fail "probe-mode-differential" "incremental %s vs rebuild %s" (cost r_inc) (cost r_reb)
        else None);
      (fun () ->
        if open_set r_inc <> open_set r_reb then
          fail "probe-mode-differential" "optimal open sets differ between probe modes"
        else None);
      (fun () ->
        if nodes_inc <> nodes_reb || checks_inc <> checks_reb then
          fail "probe-mode-differential"
            "search effort differs: incremental %d nodes/%d checks, rebuild %d/%d" nodes_inc
            checks_inc nodes_reb checks_reb
        else None);
    ]

(* LP-engine differential: every (engine x pricing) combination
   registered with Lp — the bounded-variable revised simplex, the dense
   reference tableau, the certified float engine, each under Dantzig,
   devex and candidate-list partial pricing — must give every LP the
   same status and objective (for the float engine this exercises
   certification and its exact fallback; for the pricing policies it
   pins that candidate-queue refills and devex reference resets never
   change the answer). Checked on the instance's LP1 relaxation (shared
   by every LP-backed solver); a fuel exhaustion under any combination
   skips that comparison rather than reporting it. *)
let check_lp_engines ~fuel (inst : S.t) =
  guard "lp-engine-differential" @@ fun () ->
  let run engine pricing =
    try `Done (Active.Lp_model.solve ~engine ~pricing ~budget:(Budget.limited fuel) inst)
    with Budget.Out_of_fuel -> `Fuel
  in
  let baseline_name = Lp.engine_name Lp.default_engine in
  let combos =
    List.concat_map
      (fun e -> List.map (fun p -> (e, p)) (Lp.pricing_names ()))
      (Lp.engine_names ())
  in
  match run Lp.default_engine Lp.default_pricing with
  | `Fuel -> None
  | `Done baseline ->
      List.fold_left
        (fun acc (ename, pname) ->
          if
            acc <> None
            || (String.equal ename baseline_name
               && String.equal pname (Lp.pricing_name Lp.default_pricing))
          then acc
          else
            let name = ename ^ "/" ^ pname in
            match
              run
                (Option.get (Lp.engine_of_name ename))
                (Option.get (Lp.pricing_of_name pname))
            with
            | `Fuel -> None
            | `Done other -> (
                match (baseline, other) with
                | Some a, Some b ->
                    if Q.equal a.Active.Lp_model.cost b.Active.Lp_model.cost then None
                    else
                      fail "lp-engine-differential" "LP1 objective differs: %s %s, %s %s"
                        baseline_name
                        (Q.to_string a.Active.Lp_model.cost)
                        name
                        (Q.to_string b.Active.Lp_model.cost)
                | None, None -> None
                | Some _, None ->
                    fail "lp-engine-differential" "%s says feasible, %s says infeasible"
                      baseline_name name
                | None, Some _ ->
                    fail "lp-engine-differential" "%s says feasible, %s says infeasible" name
                      baseline_name))
        None combos

let check_slotted ~fuel (inst : S.t) =
  guard "slotted-oracle" @@ fun () ->
  let verify name = function
    | None -> None
    | Some sol -> (
        match Solution.verify inst sol with
        | None -> None
        | Some msg -> fail "verifier" "%s solution rejected: %s" name msg)
  in
  let minimal = Active.Minimal.solve inst Active.Minimal.Right_to_left in
  let exact = Active.Exact.solve ~budget:(Budget.limited fuel) inst in
  let rounding =
    try `Done (Active.Rounding.solve ~budget:(Budget.limited fuel) inst)
    with Budget.Out_of_fuel -> `Fuel
  in
  let feasible = minimal <> None in
  (* the optimum when the exact search completed *)
  let opt =
    match exact with Budget.Complete r -> Option.map Solution.cost r | Budget.Exhausted _ -> None
  in
  first
    [
      (fun () ->
        match Io.parse_string (Io.to_string (Io.Slotted_instance inst)) with
        | Io.Slotted_instance i when i = inst -> None
        | Io.Slotted_instance _ -> fail "slotted-io-roundtrip" "parse(print(inst)) differs"
        | Io.Busy_instance _ -> fail "slotted-io-roundtrip" "came back as a busy instance"
        | exception Io.Parse_error (l, m) -> fail "slotted-io-roundtrip" "line %d: %s" l m);
      (* feasibility agreement: infeasibility is always decided before any
         search, so even an exhausted exact tier has settled it *)
      (fun () ->
        match exact with
        | Budget.Complete (Some _) when not feasible ->
            fail "feasibility" "exact found a solution, minimal says infeasible"
        | Budget.Complete None when feasible ->
            fail "feasibility" "exact says infeasible, minimal found a solution"
        | Budget.Exhausted _ when not feasible ->
            fail "feasibility" "exact searched an instance minimal says is infeasible"
        | _ -> None);
      (fun () ->
        match rounding with
        | `Done None when feasible -> fail "feasibility" "lp-rounding says infeasible, minimal disagrees"
        | `Done (Some _) when not feasible ->
            fail "feasibility" "lp-rounding found a solution, minimal says infeasible"
        | _ -> None);
      (fun () -> verify "minimal" minimal);
      (fun () ->
        match exact with
        | Budget.Complete r -> verify "exact" r
        | Budget.Exhausted { incumbent; _ } -> verify "exact-incumbent" incumbent);
      (fun () ->
        match rounding with `Done r -> verify "lp-rounding" (Option.map fst r) | `Fuel -> None);
      (fun () ->
        match rounding with
        | `Done (Some (sol, stats)) ->
            first
              [
                (fun () ->
                  if stats.Active.Rounding.fallback_used then
                    fail "rounding-fallback" "defensive re-opening fired (Lemma 5/6 violated)"
                  else None);
                (fun () ->
                  (* Theorem 2 invariant: at most twice the LP optimum *)
                  if
                    Q.compare (Q.of_int (Solution.cost sol))
                      (Q.mul Q.two stats.Active.Rounding.lp_cost)
                    > 0
                  then
                    fail "rounding-ratio" "rounded %d > 2 * lp %s" (Solution.cost sol)
                      (Q.to_string stats.Active.Rounding.lp_cost)
                  else None);
                (fun () ->
                  match opt with
                  | Some o when Q.compare stats.Active.Rounding.lp_cost (Q.of_int o) > 0 ->
                      fail "lp-bound" "lp %s exceeds integral optimum %d"
                        (Q.to_string stats.Active.Rounding.lp_cost) o
                  | _ -> None);
              ]
        | _ -> None);
      (fun () ->
        match opt with
        | None -> None
        | Some o ->
            first
              [
                (fun () ->
                  if S.mass_lower_bound inst > o then
                    fail "mass-bound" "mass bound %d exceeds optimum %d" (S.mass_lower_bound inst) o
                  else None);
                (fun () ->
                  (* every registered approximation whose guard accepts the
                     instance: verified witness, cost sandwiched between the
                     optimum and its declared ratio times the optimum *)
                  Core.Registry.approx CI.Active_slotted
                  |> List.filter (fun (s : CS.t) -> s.CS.guard (CI.Slotted inst) = None)
                  |> List.fold_left
                       (fun acc (s : CS.t) ->
                         match acc with
                         | Some _ -> acc
                         | None -> (
                             match s.CS.solve ~budget:(Budget.limited fuel) (CI.Slotted inst) with
                             | { CR.status = CR.Exhausted _; _ } -> None
                             | { CR.status = CR.Infeasible; _ } ->
                                 fail "feasibility" "%s says infeasible, optimum is %d" s.CS.name o
                             | { CR.status = CR.Solved; _ } as r -> (
                                 let sol = solution_exn s r in
                                 let c = Solution.cost sol in
                                 match Solution.verify inst sol with
                                 | Some msg ->
                                     fail "verifier" "%s solution rejected: %s" s.CS.name msg
                                 | None ->
                                     if c < o then
                                       fail "opt-le-approx" "%s %d below optimum %d" s.CS.name c o
                                     else if
                                       Q.compare (Q.of_int c) (Q.mul (ratio_of s) (Q.of_int o)) > 0
                                     then
                                       fail "approx-ratio" "%s %d > %s * optimum %d" s.CS.name c
                                         (Q.to_string (ratio_of s)) o
                                     else None)))
                       None);
                (fun () ->
                  (* every other registered exact solver agrees with the
                     flow-pruned branch and bound; budget-hungry ones only
                     on small instances *)
                  let small =
                    List.length (S.relevant_slots inst) <= 12 && S.num_jobs inst <= 8
                  in
                  Core.Registry.exact CI.Active_slotted
                  |> List.filter (fun (s : CS.t) ->
                         s.CS.name <> "exact"
                         && s.CS.guard (CI.Slotted inst) = None
                         && ((not s.CS.supports_budget) || small))
                  |> List.fold_left
                       (fun acc (s : CS.t) ->
                         match acc with
                         | Some _ -> acc
                         | None -> (
                             match s.CS.solve ~budget:(Budget.limited fuel) (CI.Slotted inst) with
                             | { CR.status = CR.Exhausted _; _ } -> None
                             | { CR.status = CR.Infeasible; _ } ->
                                 fail "exact-agreement" "%s says infeasible, optimum is %d"
                                   s.CS.name o
                             | { CR.status = CR.Solved; _ } as r ->
                                 let c = Solution.cost (solution_exn s r) in
                                 if c <> o then
                                   fail "exact-agreement" "%s found %d, flow B&B found %d"
                                     s.CS.name c o
                                 else None))
                       None);
              ]);
      (fun () ->
        (* differential: warm incremental oracle vs from-scratch rebuilds *)
        if List.length (S.relevant_slots inst) <= 24 then check_oracle_differential inst else None);
      (fun () -> check_lp_engines ~fuel inst);
      (fun () ->
        if List.length (S.relevant_slots inst) <= 12 && S.num_jobs inst <= 8 then
          check_probe_modes ~fuel inst
        else None);
    ]

(* ------------------------------------------------------------------ *)
(* Busy-time model (interval jobs)                                     *)
(* ------------------------------------------------------------------ *)

let busy_jobs_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : B.t) (y : B.t) ->
         x.B.id = y.B.id && Q.equal x.B.release y.B.release && Q.equal x.B.deadline y.B.deadline
         && Q.equal x.B.length y.B.length)
       a b

let busy_roundtrip jobs () =
  match Io.parse_string (Io.to_string (Io.Busy_instance jobs)) with
  | Io.Busy_instance back when busy_jobs_equal jobs back -> None
  | Io.Busy_instance _ -> fail "busy-io-roundtrip" "parse(print(jobs)) differs"
  | Io.Slotted_instance _ -> fail "busy-io-roundtrip" "came back as a slotted instance"
  | exception Io.Parse_error (l, m) -> fail "busy-io-roundtrip" "line %d: %s" l m

let check_busy ?(planted_bug = false) ~fuel ~g jobs =
  guard "busy-oracle" @@ fun () ->
  let inst = CI.Interval { g; jobs } in
  (* on general instances the four general approximations; structured
     instances also pull in the guard-matched restricted greedys *)
  let algs =
    Core.Registry.approx CI.Busy_interval
    |> List.filter (fun (s : CS.t) -> s.CS.guard inst = None)
    |> List.map (fun (s : CS.t) -> (s.CS.name, packing_exn s (s.CS.solve inst), ratio_of s))
  in
  let lb = Busy.Bounds.best ~g jobs in
  first
    [
      busy_roundtrip jobs;
      (fun () ->
        List.fold_left
          (fun acc (name, p, _) ->
            match acc with
            | Some _ -> acc
            | None -> (
                match Busy.Bundle.check ~g jobs p with
                | Some msg -> fail "verifier" "%s produced an invalid packing: %s" name msg
                | None -> None))
          None algs);
      (fun () ->
        (* Section 4.1: every lower bound is below every feasible cost *)
        List.fold_left
          (fun acc (name, p, _) ->
            match acc with
            | Some _ -> acc
            | None ->
                let c = Busy.Bundle.total_busy p in
                if Q.compare c lb < 0 then
                  fail "lower-bound" "%s cost %s below lower bound %s" name (Q.to_string c)
                    (Q.to_string lb)
                else None)
          None algs);
      (fun () ->
        let exact = Core.Registry.find_exn CI.Busy_interval "exact" in
        match exact.CS.solve ~budget:(Budget.limited fuel) inst with
        | { CR.status = CR.Exhausted _; CR.witness = Some (CR.Packing incumbent); _ } -> (
            (* the incumbent is still a packing and must verify *)
            match Busy.Bundle.check ~g jobs incumbent with
            | Some msg -> fail "verifier" "exact incumbent invalid: %s" msg
            | None -> None)
        | { CR.status = CR.Exhausted _; _ } ->
            fail "verifier" "exact exhausted without an incumbent packing"
        | { CR.status = CR.Infeasible; _ } -> fail "busy-oracle" "exact reported infeasible"
        | { CR.status = CR.Solved; _ } as r -> (
            let p = packing_exn exact r in
            match Busy.Bundle.check ~g jobs p with
            | Some msg -> fail "verifier" "exact packing invalid: %s" msg
            | None ->
                let opt = Busy.Bundle.total_busy p in
                first
                  [
                    (fun () ->
                      if Q.compare lb opt > 0 then
                        fail "lower-bound" "lower bound %s exceeds optimum %s" (Q.to_string lb)
                          (Q.to_string opt)
                      else None);
                    (fun () ->
                      List.fold_left
                        (fun acc (name, q, ratio) ->
                          match acc with
                          | Some _ -> acc
                          | None ->
                              let c = Busy.Bundle.total_busy q in
                              if Q.compare c opt < 0 then
                                fail "opt-le-approx" "%s cost %s below optimum %s" name
                                  (Q.to_string c) (Q.to_string opt)
                              else if Q.compare c (Q.mul ratio opt) > 0 then
                                fail "approx-ratio" "%s cost %s > %s * optimum %s" name
                                  (Q.to_string c) (Q.to_string ratio) (Q.to_string opt)
                              else None)
                        None algs);
                    (fun () ->
                      (* restricted exact solvers (laminar DP, proper-clique
                         DP) agree with the search on their domains *)
                      Core.Registry.exact CI.Busy_interval
                      |> List.filter (fun (s : CS.t) ->
                             s.CS.name <> "exact" && s.CS.guard inst = None)
                      |> List.fold_left
                           (fun acc (s : CS.t) ->
                             match acc with
                             | Some _ -> acc
                             | None ->
                                 let c = Busy.Bundle.total_busy (packing_exn s (s.CS.solve inst)) in
                                 if not (Q.equal c opt) then
                                   fail "exact-agreement" "%s found %s, exact search found %s"
                                     s.CS.name (Q.to_string c) (Q.to_string opt)
                                 else None)
                           None);
                  ]));
      (fun () ->
        if planted_bug then begin
          (* deliberately false: sum of bundle spans <= span of the union
             (breaks whenever FirstFit needs overlapping bundles) *)
          let ff = Busy.First_fit.solve ~g jobs in
          let c = Busy.Bundle.total_busy ff in
          let span = Busy.Bounds.span jobs in
          if Q.compare c span > 0 then
            fail "planted-span" "first-fit busy %s exceeds union span %s" (Q.to_string c)
              (Q.to_string span)
          else None
        end
        else None);
    ]

(* ------------------------------------------------------------------ *)
(* Flexible busy-time jobs: pin with the placement, then as above       *)
(* ------------------------------------------------------------------ *)

let check_flexible ?planted_bug ~fuel ~g jobs =
  guard "flexible-oracle" @@ fun () ->
  first
    [
      busy_roundtrip jobs;
      (fun () ->
        let pinned = Busy.Placement.greedy jobs in
        if List.length pinned <> List.length jobs then
          fail "placement" "greedy returned %d jobs for %d" (List.length pinned) (List.length jobs)
        else
          let mismatch =
            List.find_opt
              (fun (p : B.t) ->
                match List.find_opt (fun (j : B.t) -> j.B.id = p.B.id) jobs with
                | None -> true
                | Some j ->
                    (not (B.is_interval p))
                    || (not (Q.equal p.B.length j.B.length))
                    || Q.compare p.B.release j.B.release < 0
                    || Q.compare p.B.deadline j.B.deadline > 0)
              pinned
          in
          match mismatch with
          | Some p -> fail "placement" "job %d placed outside its window (or altered)" p.B.id
          | None -> check_busy ?planted_bug ~fuel ~g pinned);
    ]
