(* Differential oracle: cross-checks every algorithm pair on one instance.

   The properties are exactly the paper's guarantees, so any failure is a
   bug in some solver (or in the oracle): verifiers accept every produced
   solution, every approximation costs at least the exact optimum and at
   most its proven ratio times the optimum, the solvers agree on
   feasibility, IO round-trips preserve instances, and the two exact
   branch-and-bounds (flow-pruned and LP-based) agree. Exact tiers run
   under a fuel budget; on exhaustion the optimum-dependent checks are
   skipped (never reported as failures) so the oracle stays deterministic
   and bounded on adversarial instances.

   [planted_bug] arms a deliberately false claim — "a FirstFit packing
   never exceeds the span of the job union", which breaks as soon as
   demand exceeds g anywhere — used by the tests to exercise the
   shrinker end to end. *)

module Q = Rational
module S = Workload.Slotted
module B = Workload.Bjob
module Io = Workload.Io
module Solution = Active.Solution

type failure = { check : string; detail : string }

let fail check fmt = Printf.ksprintf (fun detail -> Some { check; detail }) fmt

(* run checks in order, report the first failure *)
let first checks =
  List.fold_left (fun acc c -> match acc with Some _ -> acc | None -> c ()) None checks

(* Any uncaught exception (failed assert, Invalid_argument, ...) is a
   finding in its own right, not a crash of the harness. *)
let guard name f =
  try f () with
  | Budget.Out_of_fuel -> None
  | e -> fail name "uncaught exception: %s" (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Active-time (slotted) model                                         *)
(* ------------------------------------------------------------------ *)

let check_slotted ~fuel (inst : S.t) =
  guard "slotted-oracle" @@ fun () ->
  let verify name = function
    | None -> None
    | Some sol -> (
        match Solution.verify inst sol with
        | None -> None
        | Some msg -> fail "verifier" "%s solution rejected: %s" name msg)
  in
  let minimal = Active.Minimal.solve inst Active.Minimal.Right_to_left in
  let exact = Active.Exact.solve ~budget:(Budget.limited fuel) inst in
  let rounding =
    try `Done (Active.Rounding.solve ~budget:(Budget.limited fuel) inst)
    with Budget.Out_of_fuel -> `Fuel
  in
  let feasible = minimal <> None in
  (* the optimum when the exact search completed *)
  let opt =
    match exact with Budget.Complete r -> Option.map Solution.cost r | Budget.Exhausted _ -> None
  in
  first
    [
      (fun () ->
        match Io.parse_string (Io.to_string (Io.Slotted_instance inst)) with
        | Io.Slotted_instance i when i = inst -> None
        | Io.Slotted_instance _ -> fail "slotted-io-roundtrip" "parse(print(inst)) differs"
        | Io.Busy_instance _ -> fail "slotted-io-roundtrip" "came back as a busy instance"
        | exception Io.Parse_error (l, m) -> fail "slotted-io-roundtrip" "line %d: %s" l m);
      (* feasibility agreement: infeasibility is always decided before any
         search, so even an exhausted exact tier has settled it *)
      (fun () ->
        match exact with
        | Budget.Complete (Some _) when not feasible ->
            fail "feasibility" "exact found a solution, minimal says infeasible"
        | Budget.Complete None when feasible ->
            fail "feasibility" "exact says infeasible, minimal found a solution"
        | Budget.Exhausted _ when not feasible ->
            fail "feasibility" "exact searched an instance minimal says is infeasible"
        | _ -> None);
      (fun () ->
        match rounding with
        | `Done None when feasible -> fail "feasibility" "lp-rounding says infeasible, minimal disagrees"
        | `Done (Some _) when not feasible ->
            fail "feasibility" "lp-rounding found a solution, minimal says infeasible"
        | _ -> None);
      (fun () -> verify "minimal" minimal);
      (fun () ->
        match exact with
        | Budget.Complete r -> verify "exact" r
        | Budget.Exhausted { incumbent; _ } -> verify "exact-incumbent" incumbent);
      (fun () ->
        match rounding with `Done r -> verify "lp-rounding" (Option.map fst r) | `Fuel -> None);
      (fun () ->
        match rounding with
        | `Done (Some (sol, stats)) ->
            first
              [
                (fun () ->
                  if stats.Active.Rounding.fallback_used then
                    fail "rounding-fallback" "defensive re-opening fired (Lemma 5/6 violated)"
                  else None);
                (fun () ->
                  (* Theorem 2 invariant: at most twice the LP optimum *)
                  if
                    Q.compare (Q.of_int (Solution.cost sol))
                      (Q.mul Q.two stats.Active.Rounding.lp_cost)
                    > 0
                  then
                    fail "rounding-ratio" "rounded %d > 2 * lp %s" (Solution.cost sol)
                      (Q.to_string stats.Active.Rounding.lp_cost)
                  else None);
                (fun () ->
                  match opt with
                  | Some o when Q.compare stats.Active.Rounding.lp_cost (Q.of_int o) > 0 ->
                      fail "lp-bound" "lp %s exceeds integral optimum %d"
                        (Q.to_string stats.Active.Rounding.lp_cost) o
                  | _ -> None);
              ]
        | _ -> None);
      (fun () ->
        match opt with
        | None -> None
        | Some o ->
            first
              [
                (fun () ->
                  if S.mass_lower_bound inst > o then
                    fail "mass-bound" "mass bound %d exceeds optimum %d" (S.mass_lower_bound inst) o
                  else None);
                (fun () ->
                  match minimal with
                  | Some sol when Solution.cost sol < o ->
                      fail "opt-le-approx" "minimal %d below optimum %d" (Solution.cost sol) o
                  | Some sol when Solution.cost sol > 3 * o ->
                      fail "minimal-ratio" "minimal %d > 3 * optimum %d" (Solution.cost sol) o
                  | _ -> None);
                (fun () ->
                  match rounding with
                  | `Done (Some (sol, _)) when Solution.cost sol < o ->
                      fail "opt-le-approx" "lp-rounding %d below optimum %d" (Solution.cost sol) o
                  | `Done (Some (sol, _)) when Solution.cost sol > 2 * o ->
                      fail "rounding-ratio" "lp-rounding %d > 2 * optimum %d" (Solution.cost sol) o
                  | _ -> None);
                (fun () ->
                  (* unit-job special case must match the branch and bound *)
                  if Active.Unit_jobs.is_unit inst then
                    match Active.Unit_jobs.solve inst with
                    | Some sol when Solution.cost sol <> o ->
                        fail "unit-exact" "unit-jobs greedy %d vs optimum %d" (Solution.cost sol) o
                    | None -> fail "unit-exact" "unit-jobs greedy says infeasible, optimum is %d" o
                    | Some _ -> None
                  else None);
                (fun () ->
                  (* differential: flow-pruned vs LP-based branch and bound *)
                  if List.length (S.relevant_slots inst) <= 12 && S.num_jobs inst <= 8 then
                    match Active.Ilp.solve ~budget:(Budget.limited fuel) inst with
                    | Budget.Complete (Some (sol, _)) when Solution.cost sol <> o ->
                        fail "ilp-differential" "LP-based B&B %d vs flow B&B %d" (Solution.cost sol) o
                    | Budget.Complete None -> fail "ilp-differential" "LP-based B&B says infeasible, optimum is %d" o
                    | _ -> None
                  else None);
              ]);
    ]

(* ------------------------------------------------------------------ *)
(* Busy-time model (interval jobs)                                     *)
(* ------------------------------------------------------------------ *)

let busy_jobs_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : B.t) (y : B.t) ->
         x.B.id = y.B.id && Q.equal x.B.release y.B.release && Q.equal x.B.deadline y.B.deadline
         && Q.equal x.B.length y.B.length)
       a b

let busy_roundtrip jobs () =
  match Io.parse_string (Io.to_string (Io.Busy_instance jobs)) with
  | Io.Busy_instance back when busy_jobs_equal jobs back -> None
  | Io.Busy_instance _ -> fail "busy-io-roundtrip" "parse(print(jobs)) differs"
  | Io.Slotted_instance _ -> fail "busy-io-roundtrip" "came back as a slotted instance"
  | exception Io.Parse_error (l, m) -> fail "busy-io-roundtrip" "line %d: %s" l m

let check_busy ?(planted_bug = false) ~fuel ~g jobs =
  guard "busy-oracle" @@ fun () ->
  let algs =
    [
      ("first-fit", Busy.First_fit.solve ~g jobs, Q.of_int 4);
      ("greedy-tracking", Busy.Greedy_tracking.solve ~g jobs, Q.of_int 3);
      ("two-approx", Busy.Two_approx.solve ~g jobs, Q.two);
      ("kumar-rudra", Busy.Kumar_rudra.solve ~g jobs, Q.two);
    ]
  in
  let lb = Busy.Bounds.best ~g jobs in
  first
    [
      busy_roundtrip jobs;
      (fun () ->
        List.fold_left
          (fun acc (name, p, _) ->
            match acc with
            | Some _ -> acc
            | None -> (
                match Busy.Bundle.check ~g jobs p with
                | Some msg -> fail "verifier" "%s produced an invalid packing: %s" name msg
                | None -> None))
          None algs);
      (fun () ->
        (* Section 4.1: every lower bound is below every feasible cost *)
        List.fold_left
          (fun acc (name, p, _) ->
            match acc with
            | Some _ -> acc
            | None ->
                let c = Busy.Bundle.total_busy p in
                if Q.compare c lb < 0 then
                  fail "lower-bound" "%s cost %s below lower bound %s" name (Q.to_string c)
                    (Q.to_string lb)
                else None)
          None algs);
      (fun () ->
        match Busy.Exact.solve ~budget:(Budget.limited fuel) ~g jobs with
        | Budget.Exhausted { incumbent; _ } -> (
            (* the incumbent is still a packing and must verify *)
            match Busy.Bundle.check ~g jobs incumbent with
            | Some msg -> fail "verifier" "exact incumbent invalid: %s" msg
            | None -> None)
        | Budget.Complete p -> (
            match Busy.Bundle.check ~g jobs p with
            | Some msg -> fail "verifier" "exact packing invalid: %s" msg
            | None ->
                let opt = Busy.Bundle.total_busy p in
                first
                  [
                    (fun () ->
                      if Q.compare lb opt > 0 then
                        fail "lower-bound" "lower bound %s exceeds optimum %s" (Q.to_string lb)
                          (Q.to_string opt)
                      else None);
                    (fun () ->
                      List.fold_left
                        (fun acc (name, q, ratio) ->
                          match acc with
                          | Some _ -> acc
                          | None ->
                              let c = Busy.Bundle.total_busy q in
                              if Q.compare c opt < 0 then
                                fail "opt-le-approx" "%s cost %s below optimum %s" name
                                  (Q.to_string c) (Q.to_string opt)
                              else if Q.compare c (Q.mul ratio opt) > 0 then
                                fail "approx-ratio" "%s cost %s > %s * optimum %s" name
                                  (Q.to_string c) (Q.to_string ratio) (Q.to_string opt)
                              else None)
                        None algs);
                  ]));
      (fun () ->
        if planted_bug then begin
          (* deliberately false: sum of bundle spans <= span of the union
             (breaks whenever FirstFit needs overlapping bundles) *)
          let ff = Busy.First_fit.solve ~g jobs in
          let c = Busy.Bundle.total_busy ff in
          let span = Busy.Bounds.span jobs in
          if Q.compare c span > 0 then
            fail "planted-span" "first-fit busy %s exceeds union span %s" (Q.to_string c)
              (Q.to_string span)
          else None
        end
        else None);
    ]

(* ------------------------------------------------------------------ *)
(* Flexible busy-time jobs: pin with the placement, then as above       *)
(* ------------------------------------------------------------------ *)

let check_flexible ?planted_bug ~fuel ~g jobs =
  guard "flexible-oracle" @@ fun () ->
  first
    [
      busy_roundtrip jobs;
      (fun () ->
        let pinned = Busy.Placement.greedy jobs in
        if List.length pinned <> List.length jobs then
          fail "placement" "greedy returned %d jobs for %d" (List.length pinned) (List.length jobs)
        else
          let mismatch =
            List.find_opt
              (fun (p : B.t) ->
                match List.find_opt (fun (j : B.t) -> j.B.id = p.B.id) jobs with
                | None -> true
                | Some j ->
                    (not (B.is_interval p))
                    || (not (Q.equal p.B.length j.B.length))
                    || Q.compare p.B.release j.B.release < 0
                    || Q.compare p.B.deadline j.B.deadline > 0)
              pinned
          in
          match mismatch with
          | Some p -> fail "placement" "job %d placed outside its window (or altered)" p.B.id
          | None -> check_busy ?planted_bug ~fuel ~g pinned);
    ]
