(** Differential fuzzing sweep: deterministic per-seed case generation
    over both models (general slotted, unit slotted, interval, proper /
    clique / laminar, flexible), parallel execution, shrinking, and a
    counterexample corpus. Everything is a pure function of
    [(seed, fuel, planted_bug)] — a CI failure replays locally. *)

type case = { name : string; g : int; instance : Workload.Io.instance }

type counterexample = {
  case : string;  (** family-seed label *)
  cg : int;  (** capacity for busy instances *)
  failure : Oracle.failure;
  instance : Workload.Io.instance;  (** already shrunk *)
}

type report = { seeds : int; cases : int; failures : counterexample list }

(** The six families checked for one seed. *)
val cases_for_seed : int -> case list

(** Run the oracle matching the case's shape (slotted / interval /
    flexible). *)
val check : ?planted_bug:bool -> fuel:int -> case -> Oracle.failure option

(** [run ~seeds ~fuel ()] sweeps seeds [0..seeds-1] on {!Parallel.Pool};
    each failing case is shrunk to a local minimum before being
    reported. *)
val run : ?planted_bug:bool -> ?domains:int -> seeds:int -> fuel:int -> unit -> report

(** Writes one instance file per counterexample into [dir] (created if
    needed) with the failing check, detail and capacity as comments;
    returns the paths. *)
val write_corpus : dir:string -> counterexample list -> string list

(** Re-checks every [*.txt] in [dir] (missing dir = empty corpus) and
    returns the files that STILL fail — the regression gate for
    checked-in counterexamples. *)
val replay : ?planted_bug:bool -> fuel:int -> dir:string -> unit -> (string * Oracle.failure) list
