(** Greedy counterexample minimization. [fails x] must hold for the input
    and is re-evaluated on each candidate; the result is a local minimum:
    no single job drop, flexible-job pin, unit length shave, or
    one-slot window tightening still fails. The predicate must be total
    (catch its own exceptions); shrinking terminates — every candidate
    strictly decreases (job count, total length, total slack)
    lexicographically, with a step cap as a backstop. *)

val slotted :
  fails:(Workload.Slotted.t -> bool) -> Workload.Slotted.t -> Workload.Slotted.t

val busy : fails:(Workload.Bjob.t list -> bool) -> Workload.Bjob.t list -> Workload.Bjob.t list
