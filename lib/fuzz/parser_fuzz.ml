(* Fuzz target for the serve request parser: the totality contract.

   [Obs.Json.parse] and [Serve.Protocol.decode_line] promise to never
   raise — any input, however hostile, yields [Ok] or [Error]. The serve
   daemon leans on that promise (a raising parser would kill the reader
   loop, the one place the daemon has no isolation), so this target
   throws deterministic garbage at it: raw byte soup, byte-mutated
   well-formed requests, pathological nesting, and broken escape
   sequences. Same seed, same lines — a CI failure replays locally.

   Failures join the existing counterexample corpus as [parser-*.txt]
   files (the offending line, verbatim) with their own replay path. *)

type failure = { case : string; line : string; detail : string }

(* splitmix64, same generator family as the sweep harness *)
let mix state =
  let z = Int64.add !state 0x9e3779b97f4a7c15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits state n = Int64.to_int (Int64.logand (mix state) 0x3fffffffL) mod n

(* a well-formed request to mutate *)
let template =
  "{\"id\": 7, \"instance\": \"slotted\\ng 2\\njob 0 0 4 2\\njob 1 1 5 3\\n\", "
  ^ "\"algorithm\": \"cascade\", \"g\": 2, \"budget\": 1000, \"params\": {\"order\": \"l2r\"}}"

let byte_soup state =
  let len = bits state 120 in
  String.init len (fun _ ->
      (* any byte but the line terminators — requests are lines *)
      let rec draw () =
        let c = Char.chr (bits state 256) in
        if c = '\n' || c = '\r' then draw () else c
      in
      draw ())

let mutated state =
  let b = Bytes.of_string template in
  let edits = 1 + bits state 6 in
  let s = ref (Bytes.to_string b) in
  for _ = 1 to edits do
    let cur = !s in
    let len = String.length cur in
    match bits state 3 with
    | 0 when len > 0 ->
        let i = bits state len in
        let c = Char.chr (33 + bits state 94) in
        s := String.mapi (fun j x -> if j = i then c else x) cur
    | 1 ->
        let i = if len = 0 then 0 else bits state (len + 1) in
        let c = Char.chr (33 + bits state 94) in
        s := String.sub cur 0 i ^ String.make 1 c ^ String.sub cur i (len - i)
    | _ when len > 0 -> s := String.sub cur 0 (bits state len)
    | _ -> ()
  done;
  !s

let nesting state =
  let depth = 1 + bits state 600 in
  let opener, closer = if bits state 2 = 0 then ("[", "]") else ("{\"k\":", "}") in
  let b = Buffer.create (depth * 6) in
  for _ = 1 to depth do Buffer.add_string b opener done;
  Buffer.add_string b "0";
  (* half the time leave the brackets unbalanced *)
  if bits state 2 = 0 then
    for _ = 1 to depth do Buffer.add_string b closer done;
  Buffer.contents b

let broken_escapes state =
  let fragments =
    [| "\"\\u"; "\"\\ud834"; "\"\\ud834\\udd1e\""; "\"\\udc00\""; "\"\\x41\"";
       "\"\\"; "\"\\u00\""; "{\"instance\": \"\\ud800\"}"; "\"\\uzzzz\"";
       "{\"instance\": \"busy\\njob 0 0 99999999999999999999 1\\n\"}";
       "{\"instance\": \"busy\\njob 0 0 1/0 1\\n\"}";
       "{\"instance\": \"busy\\njob 0 0/0 1 1\\n\"}";
       "{\"instance\": \"slotted\\ng 2\\njob 0 0 4 2 arrival x\\n\"}";
       "{\"instance\": \"slotted\\ng 2\\njob 0 0 4 2 arrival -3\\n\"}";
       "{\"instance\": \"slotted\\ng 99999999999999999999\\n\"}";
       "1e999"; "-"; "0x10"; "[1,]"; "{\"a\" 1}"; "nulll"; "\"" |]
  in
  fragments.(bits state (Array.length fragments))

let lines_for_seed seed =
  let state = ref (Int64.add (Int64.of_int seed) 0x9e3779b97f4a7c15L) in
  [ ("bytes", byte_soup state);
    ("mutated", mutated state);
    ("nesting", nesting state);
    ("escapes", broken_escapes state) ]

(* The contract under test: both layers are total. A raise here is a
   finding; Ok/Error are both fine. *)
let check_line line =
  match Obs.Json.parse line with
  | exception e -> Some ("Obs.Json.parse raised " ^ Printexc.to_string e)
  | Ok _ | Error _ -> (
      match Serve.Protocol.decode_line ~seq:0 line with
      | exception e -> Some ("Serve.Protocol.decode_line raised " ^ Printexc.to_string e)
      | Ok _ | Error _ -> None)

let run ?domains ~seeds () =
  let per_seed seed =
    List.filter_map
      (fun (family, line) ->
        Option.map
          (fun detail ->
            { case = Printf.sprintf "parser-%s-seed%04d" family seed; line; detail })
          (check_line line))
      (lines_for_seed seed)
  in
  List.concat (Parallel.Pool.init ?domains seeds per_seed)

let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let one_line s = String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

(* Corpus layout: two comment lines, then the offending request line
   verbatim. The [parser-] filename prefix routes replay here instead of
   through the instance oracle. *)
let write_corpus ~dir failures =
  ensure_dir dir;
  List.map
    (fun f ->
      let path = Filename.concat dir (f.case ^ ".txt") in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            (Printf.sprintf "# parser fuzz counterexample\n# detail: %s\n%s\n"
               (one_line f.detail) f.line));
      path)
    failures

let is_parser_file name = String.length name >= 7 && String.sub name 0 7 = "parser-"

let replay ~dir () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".txt" && is_parser_file f)
    |> List.sort compare
    |> List.filter_map (fun f ->
           let path = Filename.concat dir f in
           let text = In_channel.with_open_text path In_channel.input_all in
           let line =
             (* first non-comment line is the request under test *)
             String.split_on_char '\n' text
             |> List.find_opt (fun l -> l <> "" && l.[0] <> '#')
             |> Option.value ~default:""
           in
           Option.map (fun detail -> (f, detail)) (check_line line))
