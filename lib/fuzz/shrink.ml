(* Greedy counterexample minimization: starting from a failing instance,
   repeatedly take the FIRST size-reducing transformation that still
   fails, to a fixpoint. Transformations are ordered most-aggressive
   first (drop a whole job, then pin a flexible job, then shave a unit of
   length, then tighten a window by one), so the fixpoint tends to the
   smallest job count.

   Termination: every candidate strictly decreases the lexicographic
   measure (job count, total length, total slack) — drops shrink the
   first component, length shaves the second (no transform grows it),
   pins and window tightenings the third. [max_steps] is a belt-and-
   braces cap on top. *)

module Q = Rational
module S = Workload.Slotted
module B = Workload.Bjob

let max_steps = 10_000

let fix ~fails ~candidates x0 =
  let rec go steps x =
    if steps >= max_steps then x
    else
      match List.find_opt fails (candidates x) with
      | Some x' -> go (steps + 1) x'
      | None -> x
  in
  go 0 x0

(* replace element i, dropping the candidate when the mutation refuses *)
let mutations jobs f =
  List.concat (List.mapi (fun i j ->
      match f j with
      | None -> []
      | Some j' -> [ List.mapi (fun k x -> if k = i then j' else x) jobs ])
      jobs)

let drops jobs = List.mapi (fun i _ -> List.filteri (fun k _ -> k <> i) jobs) jobs

(* ------------------------------------------------------------------ *)
(* Slotted (active-time) instances                                     *)
(* ------------------------------------------------------------------ *)

let try_job ~id ~release ~deadline ~length =
  try Some (S.job ~id ~release ~deadline ~length) with Invalid_argument _ -> None

let slotted_candidates (inst : S.t) =
  let jobs = Array.to_list inst.S.jobs in
  let shorten (j : S.job) =
    if j.S.length > 1 then
      try_job ~id:j.S.id ~release:j.S.release ~deadline:j.S.deadline ~length:(j.S.length - 1)
    else None
  in
  let tighten_right (j : S.job) =
    if S.window_size j > j.S.length then
      try_job ~id:j.S.id ~release:j.S.release ~deadline:(j.S.deadline - 1) ~length:j.S.length
    else None
  in
  let tighten_left (j : S.job) =
    if S.window_size j > j.S.length then
      try_job ~id:j.S.id ~release:(j.S.release + 1) ~deadline:j.S.deadline ~length:j.S.length
    else None
  in
  List.map
    (fun js -> S.make ~g:inst.S.g js)
    (drops jobs @ mutations jobs shorten @ mutations jobs tighten_right
   @ mutations jobs tighten_left)

let slotted ~fails inst = fix ~fails ~candidates:slotted_candidates inst

(* ------------------------------------------------------------------ *)
(* Busy-time job lists (interval or flexible)                          *)
(* ------------------------------------------------------------------ *)

(* shrink a length toward 1 by unit steps (rationals land on 1 exactly) *)
let dec_length x =
  let x' = Q.sub x Q.one in
  if Q.compare x' Q.one < 0 then Q.one else x'

let try_bjob ~id ~release ~deadline ~length =
  try Some (B.make ~id ~release ~deadline ~length) with Invalid_argument _ -> None

let busy_candidates (jobs : B.t list) =
  let pin (j : B.t) = if B.is_interval j then None else Some (B.place j j.B.release) in
  let shorten (j : B.t) =
    if Q.compare j.B.length Q.one > 0 then
      let length = dec_length j.B.length in
      if B.is_interval j then Some (B.interval ~id:j.B.id ~start:j.B.release ~length)
      else try_bjob ~id:j.B.id ~release:j.B.release ~deadline:j.B.deadline ~length
    else None
  in
  let tighten (j : B.t) =
    if B.is_interval j then None
    else
      let floor_d = Q.add j.B.release j.B.length in
      let d = Q.sub j.B.deadline Q.one in
      let d = if Q.compare d floor_d < 0 then floor_d else d in
      if Q.compare d j.B.deadline < 0 then
        try_bjob ~id:j.B.id ~release:j.B.release ~deadline:d ~length:j.B.length
      else None
  in
  drops jobs @ mutations jobs pin @ mutations jobs shorten @ mutations jobs tighten

let busy ~fails jobs = fix ~fails ~candidates:busy_candidates jobs
