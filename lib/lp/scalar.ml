(* The scalar fields the sparse basis algebra is generic over. The same
   LU / eta-file / simplex-driver code (Slu, Sparse_simplex) runs over
   exact rationals (the "sparse" engine and the float engine's
   certifier) and over doubles (the float engine's pivoting hot path);
   everything numeric-policy-specific — what counts as zero, which
   pivots are trustworthy — lives behind this signature so the drivers
   stay policy-free. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val of_q : Rational.t -> t

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val abs : t -> t

  (** [submul a b c] is [a - b * c] — the elimination kernel. The
      rational instance fuses the product and difference into one
      normalization (see {!Rational.submul}). *)
  val submul : t -> t -> t -> t

  val compare : t -> t -> int

  (** Structural zero: entries for which this holds are dropped from the
      sparse factors. Exact for rationals; for floats only literal [0.]
      qualifies (no epsilon — dropping small nonzeros would silently
      change the factorization). *)
  val is_zero : t -> bool

  (** [stable_pivot v ~colmax] — may the LU use [v] as a pivot when the
      largest candidate magnitude in its column is [colmax]? Rationals
      accept any nonzero (exact arithmetic needs no pivoting strategy
      beyond sparsity); floats apply threshold partial pivoting. *)
  val stable_pivot : t -> colmax:t -> bool

  (** May [v] serve as the pivot of a product-form eta column? *)
  val eta_pivot_ok : t -> bool
end

module Rat : S with type t = Rational.t = struct
  type t = Rational.t

  let zero = Rational.zero
  let one = Rational.one
  let of_q q = q
  let add = Rational.add
  let sub = Rational.sub
  let mul = Rational.mul
  let div = Rational.div
  let neg = Rational.neg
  let abs = Rational.abs
  let submul = Rational.submul
  let compare = Rational.compare
  let is_zero = Rational.is_zero
  let stable_pivot v ~colmax:_ = not (Rational.is_zero v)
  let eta_pivot_ok v = not (Rational.is_zero v)
end

module Flt : S with type t = float = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let of_q = Rational.to_float
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let abs = Float.abs
  let submul a b c = a -. (b *. c)
  let compare = Float.compare
  let is_zero x = x = 0.0

  (* below this magnitude a double pivot is numerically meaningless *)
  let tiny = 1e-11
  let stable_pivot v ~colmax = Float.abs v >= 0.1 *. colmax && Float.abs v > tiny
  let eta_pivot_ok v = Float.abs v > tiny
end
