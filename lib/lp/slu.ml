(* Sparse LU basis factorization with product-form eta updates.

   The basis B is a selection of columns from a compressed sparse column
   matrix. [factor] computes P_r B P_c = L U by left-looking elimination
   with a static Markowitz-style ordering: columns are processed
   cheapest-first (fewest nonzeros), and within a column the pivot row is
   the stability-acceptable candidate with the fewest static nonzeros in
   the basis (ties to the smallest row index). Each simplex basis change
   is appended to an eta file (product-form inverse): B' = B·E where E is
   the identity with column [pos] replaced by w = B^-1 a_q, so
   B'^-1 = E^-1 B^-1.

   Coordinate spaces: right-hand sides and dual vectors live in original
   ROW space; basic-variable coefficient vectors live in POSITION space
   (index p into the caller's basis array). Internally the factors use a
   stage space (elimination order k) with maps [prow] (stage -> row) and
   [cpos] (stage -> basis position); callers never see stages.

   Every scalar multiply/divide performed is tallied into the [ops] ref
   supplied at factorization time — this is the "touched cells" measure
   the solution's [sol_cells] and the bench work ratios report. *)

module Make (S : Scalar.S) = struct
  (* a sparse matrix column: parallel (row index, value) arrays *)
  type col = { rows : int array; vals : S.t array }

  let col_of_list entries =
    let entries = List.filter (fun (_, v) -> not (S.is_zero v)) entries in
    let n = List.length entries in
    let rows = Array.make n 0 and vals = Array.make n S.zero in
    List.iteri
      (fun k (r, v) ->
        rows.(k) <- r;
        vals.(k) <- v)
      entries;
    { rows; vals }

  let col_nnz c = Array.length c.rows

  type eta = {
    e_pos : int;                  (* basis position replaced *)
    e_piv : S.t;                  (* w at that position *)
    e_rows : int array;           (* other positions with nonzero w *)
    e_vals : S.t array;
  }

  type fact = {
    m : int;
    ops : int ref;
    prow : int array;             (* stage -> original row *)
    stage_of_row : int array;
    cpos : int array;             (* stage -> basis position *)
    lcols : (int array * S.t array) array;
        (* unit-lower column per stage, entries indexed by original row *)
    ucols : (int array * S.t array) array;
        (* strict-upper column per stage, entries indexed by stage *)
    udiag : S.t array;
    lu_nnz : int;
    mutable etas : eta array;     (* insertion order; grown by doubling *)
    mutable eta_count : int;
    mutable eta_nnz : int;
  }

  exception Singular

  (* Workspaces are sized to the largest factorization seen and reused
     across calls on the same domain — factor is on the warm path
     (periodic refactorization and per-node warm restores). Domain-local,
     not module-global: the functor is instantiated once per scalar, so a
     shared workspace would be raced by concurrent solves on worker
     domains (serve, the fuzz pool) and corrupt factorizations. *)
  let workspace =
    Domain.DLS.new_key (fun () -> (ref ([||] : S.t array), ref ([||] : bool array)))

  let with_workspace m f =
    let scratch, scratch_mark = Domain.DLS.get workspace in
    if Array.length !scratch < m then begin
      scratch := Array.make m S.zero;
      scratch_mark := Array.make m false
    end;
    f !scratch !scratch_mark

  (* [factor ~ops ~nrows ~cols ~basis] factorizes the matrix whose
     position-p column is [cols.(basis.(p))]. Raises Singular. *)
  let factor ~ops ~nrows ~(cols : col array) ~(basis : int array) =
    let m = nrows in
    if Array.length basis <> m then invalid_arg "Slu.factor: basis size";
    (* static column order: fewest nonzeros first, stable on position *)
    let order = Array.init m (fun p -> p) in
    let nnz p = col_nnz cols.(basis.(p)) in
    Array.sort
      (fun a b ->
        let c = compare (nnz a) (nnz b) in
        if c <> 0 then c else compare a b)
      order;
    (* static row counts within the basis, for Markowitz tie-breaking *)
    let rownnz = Array.make m 0 in
    Array.iter
      (fun cid ->
        let c = cols.(cid) in
        Array.iter (fun r -> rownnz.(r) <- rownnz.(r) + 1) c.rows)
      (Array.map (fun p -> basis.(p)) order);
    let pivoted = Array.make m false in
    let stage_of_row = Array.make m (-1) in
    let prow = Array.make m (-1) in
    let cpos = Array.make m (-1) in
    let lcols = Array.make m ([||], [||]) in
    let ucols = Array.make m ([||], [||]) in
    let udiag = Array.make m S.zero in
    let lu_nnz = ref 0 in
    with_workspace m (fun work intab ->
        let touched = Array.make m 0 in
        let ntouch = ref 0 in
        let clear () =
          for t = 0 to !ntouch - 1 do
            let r = touched.(t) in
            work.(r) <- S.zero;
            intab.(r) <- false
          done;
          ntouch := 0
        in
        try
          for k = 0 to m - 1 do
            let p = order.(k) in
            let c = cols.(basis.(p)) in
            (* scatter the column into the dense workspace *)
            for idx = 0 to Array.length c.rows - 1 do
              let r = c.rows.(idx) in
              work.(r) <- c.vals.(idx);
              if not intab.(r) then begin
                intab.(r) <- true;
                touched.(!ntouch) <- r;
                incr ntouch
              end
            done;
            (* left-looking: eliminate against finished stages in order *)
            for j = 0 to k - 1 do
              let f = work.(prow.(j)) in
              if not (S.is_zero f) then begin
                let lr, lv = lcols.(j) in
                for idx = 0 to Array.length lr - 1 do
                  let r = lr.(idx) in
                  if not intab.(r) then begin
                    intab.(r) <- true;
                    touched.(!ntouch) <- r;
                    incr ntouch
                  end;
                  incr ops;
                  work.(r) <- S.submul work.(r) f lv.(idx)
                done
              end
            done;
            (* pivot among not-yet-pivoted rows: stability-acceptable,
               fewest static row nonzeros, smallest index *)
            let colmax = ref S.zero in
            for t = 0 to !ntouch - 1 do
              let r = touched.(t) in
              if not pivoted.(r) then begin
                let a = S.abs work.(r) in
                if S.compare a !colmax > 0 then colmax := a
              end
            done;
            let best = ref (-1) in
            for t = 0 to !ntouch - 1 do
              let r = touched.(t) in
              if
                (not pivoted.(r))
                && (not (S.is_zero work.(r)))
                && S.stable_pivot work.(r) ~colmax:!colmax
              then
                if !best < 0 then best := r
                else
                  let c = compare rownnz.(r) rownnz.(!best) in
                  if c < 0 || (c = 0 && r < !best) then best := r
            done;
            if !best < 0 then raise Singular;
            let pr = !best in
            pivoted.(pr) <- true;
            stage_of_row.(pr) <- k;
            prow.(k) <- pr;
            cpos.(k) <- p;
            let piv = work.(pr) in
            udiag.(k) <- piv;
            (* gather: pivoted rows -> U column, the rest -> L column *)
            let un = ref 0 and ln = ref 0 in
            for t = 0 to !ntouch - 1 do
              let r = touched.(t) in
              if r <> pr && not (S.is_zero work.(r)) then
                if pivoted.(r) then incr un else incr ln
            done;
            let ur = Array.make !un 0 and uv = Array.make !un S.zero in
            let lr = Array.make !ln 0 and lv = Array.make !ln S.zero in
            let ui = ref 0 and li = ref 0 in
            for t = 0 to !ntouch - 1 do
              let r = touched.(t) in
              if r <> pr && not (S.is_zero work.(r)) then
                if pivoted.(r) then begin
                  ur.(!ui) <- stage_of_row.(r);
                  uv.(!ui) <- work.(r);
                  incr ui
                end
                else begin
                  incr ops;
                  lr.(!li) <- r;
                  lv.(!li) <- S.div work.(r) piv;
                  incr li
                end
            done;
            lcols.(k) <- (lr, lv);
            ucols.(k) <- (ur, uv);
            lu_nnz := !lu_nnz + !un + !ln + 1;
            clear ()
          done;
          {
            m;
            ops;
            prow;
            stage_of_row;
            cpos;
            lcols;
            ucols;
            udiag;
            lu_nnz = !lu_nnz;
            etas = [||];
            eta_count = 0;
            eta_nnz = 0;
          }
        with Singular ->
          clear ();
          raise Singular)

  (* eta transforms on position-space vectors, in place *)

  let apply_eta_fwd ops (e : eta) (x : S.t array) =
    (* x := E^-1 x:  x_p' = x_p / piv;  x_i' = x_i - w_i x_p' *)
    let xp = x.(e.e_pos) in
    if S.is_zero xp then ()
    else begin
      incr ops;
      let xp' = S.div xp e.e_piv in
      x.(e.e_pos) <- xp';
      for idx = 0 to Array.length e.e_rows - 1 do
        incr ops;
        x.(e.e_rows.(idx)) <- S.submul x.(e.e_rows.(idx)) e.e_vals.(idx) xp'
      done
    end

  let apply_eta_transposed ops (e : eta) (y : S.t array) =
    (* y := E^-T y:  y_p' = (y_p - sum_{i<>p} w_i y_i) / piv *)
    let acc = ref y.(e.e_pos) in
    for idx = 0 to Array.length e.e_rows - 1 do
      let yi = y.(e.e_rows.(idx)) in
      if not (S.is_zero yi) then begin
        incr ops;
        acc := S.submul !acc e.e_vals.(idx) yi
      end
    done;
    (* an eta disjoint from the vector's support is a no-op: skip the
       division (0 / piv = 0) so its cost stays proportional to overlap *)
    if not (S.is_zero !acc) then begin
      incr ops;
      y.(e.e_pos) <- S.div !acc e.e_piv
    end
    else y.(e.e_pos) <- S.zero

  (* [ftran f b]: solve B x = b. [b] is row-space (length m, not
     consumed); the result is position-space. *)
  let ftran (f : fact) (b : S.t array) =
    let ops = f.ops in
    let w = Array.copy b in
    (* L y = b, forward in stage order; y_k lives at w.(prow k) *)
    for k = 0 to f.m - 1 do
      let y = w.(f.prow.(k)) in
      if not (S.is_zero y) then begin
        let lr, lv = f.lcols.(k) in
        for idx = 0 to Array.length lr - 1 do
          incr ops;
          w.(lr.(idx)) <- S.submul w.(lr.(idx)) y lv.(idx)
        done
      end
    done;
    (* U z = y, column-sweep back substitution *)
    let z = Array.make f.m S.zero in
    for k = f.m - 1 downto 0 do
      let y = w.(f.prow.(k)) in
      if not (S.is_zero y) then begin
        incr ops;
        let zk = S.div y f.udiag.(k) in
        z.(k) <- zk;
        let ur, uv = f.ucols.(k) in
        for idx = 0 to Array.length ur - 1 do
          incr ops;
          let j = ur.(idx) in
          w.(f.prow.(j)) <- S.submul w.(f.prow.(j)) uv.(idx) zk
        done
      end
    done;
    (* stage -> position, then the eta file oldest-first *)
    let x = Array.make f.m S.zero in
    for k = 0 to f.m - 1 do
      x.(f.cpos.(k)) <- z.(k)
    done;
    for i = 0 to f.eta_count - 1 do
      apply_eta_fwd ops f.etas.(i) x
    done;
    x

  (* [btran f c]: solve B^T y = c. [c] is position-space (not consumed);
     the result is row-space. *)
  let btran (f : fact) (c : S.t array) =
    let ops = f.ops in
    let c = Array.copy c in
    (* eta file newest-first: B^-T = B0^-T E1^-T ... Et^-T *)
    for i = f.eta_count - 1 downto 0 do
      apply_eta_transposed ops f.etas.(i) c
    done;
    (* position -> stage *)
    let cp = Array.make f.m S.zero in
    for k = 0 to f.m - 1 do
      cp.(k) <- c.(f.cpos.(k))
    done;
    (* U^T w = c', forward: w_k = (c'_k - sum_{(j,u) in ucol k} u w_j)/d_k *)
    let w = Array.make f.m S.zero in
    for k = 0 to f.m - 1 do
      let acc = ref cp.(k) in
      let ur, uv = f.ucols.(k) in
      for idx = 0 to Array.length ur - 1 do
        let wj = w.(ur.(idx)) in
        if not (S.is_zero wj) then begin
          incr ops;
          acc := S.submul !acc uv.(idx) wj
        end
      done;
      if not (S.is_zero !acc) then begin
        incr ops;
        w.(k) <- S.div !acc f.udiag.(k)
      end
    done;
    (* L^T y = w, backward; y indexed by original row *)
    let y = Array.make f.m S.zero in
    for k = f.m - 1 downto 0 do
      let acc = ref w.(k) in
      let lr, lv = f.lcols.(k) in
      for idx = 0 to Array.length lr - 1 do
        let yi = y.(lr.(idx)) in
        if not (S.is_zero yi) then begin
          incr ops;
          acc := S.submul !acc lv.(idx) yi
        end
      done;
      y.(f.prow.(k)) <- !acc
    done;
    y

  (* [update f ~pos ~w]: append the eta for replacing the basic column at
     [pos] by the column whose ftran image is [w] (position-space,
     dense). Returns false — caller must refactorize — when w.(pos) is
     not an acceptable eta pivot. *)
  let update (f : fact) ~pos ~(w : S.t array) =
    let piv = w.(pos) in
    if not (S.eta_pivot_ok piv) then false
    else begin
      let n = ref 0 in
      for i = 0 to f.m - 1 do
        if i <> pos && not (S.is_zero w.(i)) then incr n
      done;
      let er = Array.make !n 0 and ev = Array.make !n S.zero in
      let j = ref 0 in
      for i = 0 to f.m - 1 do
        if i <> pos && not (S.is_zero w.(i)) then begin
          er.(!j) <- i;
          ev.(!j) <- w.(i);
          incr j
        end
      done;
      let e = { e_pos = pos; e_piv = piv; e_rows = er; e_vals = ev } in
      if f.eta_count >= Array.length f.etas then begin
        let cap = max 8 (2 * Array.length f.etas) in
        let etas = Array.make cap e in
        Array.blit f.etas 0 etas 0 f.eta_count;
        f.etas <- etas
      end;
      f.etas.(f.eta_count) <- e;
      f.eta_count <- f.eta_count + 1;
      f.eta_nnz <- f.eta_nnz + !n + 1;
      true
    end

  let num_etas f = f.eta_count
  let lu_nnz f = f.lu_nnz

  (* refactorize when the eta file is long or has accumulated more fill
     than the factors themselves *)
  let should_refactor f ~eta_cap =
    f.eta_count >= eta_cap || f.eta_nnz > max (4 * f.m) (2 * f.lu_nnz)
end
