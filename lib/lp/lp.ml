module Q = Rational

type sense = Le | Ge | Eq
type objective_direction = Minimize | Maximize
type var = int

type row = { terms : (Q.t * var) list; sense : sense; rhs : Q.t }

type model = {
  mutable names : string list; (* reversed *)
  mutable nvars : int;
  mutable lower : Q.t list; (* reversed *)
  mutable upper : Q.t option list; (* reversed *)
  mutable rows : row list; (* reversed *)
  mutable nrows : int;
  mutable obj_dir : objective_direction;
  mutable obj : (Q.t * var) list;
}

type solution = { objective : Q.t; var_values : Q.t array; sol_names : string array }

type result = Optimal of solution | Infeasible | Unbounded

let create () =
  { names = []; nvars = 0; lower = []; upper = []; rows = []; nrows = 0; obj_dir = Minimize; obj = [] }

let add_var ?(lower = Q.zero) ?upper m name =
  (match upper with
  | Some u when Q.compare u lower < 0 -> invalid_arg "Lp.add_var: upper < lower"
  | _ -> ());
  let v = m.nvars in
  m.names <- name :: m.names;
  m.lower <- lower :: m.lower;
  m.upper <- upper :: m.upper;
  m.nvars <- v + 1;
  v

let var_name m v = List.nth m.names (m.nvars - 1 - v)
let num_vars m = m.nvars
let num_constraints m = m.nrows

(* Sum duplicate variables so the tableau sees each column once per row. *)
let combine_terms terms =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c, v) ->
      let prev = try Hashtbl.find tbl v with Not_found -> Q.zero in
      Hashtbl.replace tbl v (Q.add prev c))
    terms;
  Hashtbl.fold (fun v c acc -> if Q.is_zero c then acc else (c, v) :: acc) tbl []

let add_constraint m terms sense rhs =
  List.iter
    (fun (_, v) -> if v < 0 || v >= m.nvars then invalid_arg "Lp.add_constraint: unknown variable")
    terms;
  m.rows <- { terms = combine_terms terms; sense; rhs } :: m.rows;
  m.nrows <- m.nrows + 1

let set_objective m dir terms =
  List.iter
    (fun (_, v) -> if v < 0 || v >= m.nvars then invalid_arg "Lp.set_objective: unknown variable")
    terms;
  m.obj_dir <- dir;
  m.obj <- combine_terms terms

(* ---------------------------------------------------------------------- *)
(* Simplex on a dense rational tableau.                                    *)
(* ---------------------------------------------------------------------- *)

(* After the pivot count without strict objective improvement exceeds this
   threshold we switch from Dantzig to Bland's rule, which cannot cycle. *)
let degenerate_pivot_threshold = 64

(* Pricing rule: Dantzig (most negative reduced cost) with the Bland
   fallback above, or pure Bland. Exposed for the pivot-rule ablation. *)
type pivot_rule = Dantzig_with_fallback | Pure_bland

(* pivots performed by the most recent [solve] (both phases) *)
let last_pivots = ref 0

type tableau = {
  a : Q.t array array; (* nrows x (ncols + 1); last column = rhs *)
  mutable obj_row : Q.t array; (* length ncols *)
  mutable obj_val : Q.t;
  basis : int array; (* basic column of each row *)
  ncols : int;
  allowed : bool array; (* columns allowed to enter (artificials excluded in phase 2) *)
}

let pivot tab ~prow ~pcol =
  let arr = tab.a in
  let n = tab.ncols in
  let prow_arr = arr.(prow) in
  let pelem = prow_arr.(pcol) in
  if not (Q.equal pelem Q.one) then
    for j = 0 to n do
      if not (Q.is_zero prow_arr.(j)) then prow_arr.(j) <- Q.div prow_arr.(j) pelem
    done;
  Array.iteri
    (fun i row ->
      if i <> prow && not (Q.is_zero row.(pcol)) then begin
        let f = row.(pcol) in
        for j = 0 to n do
          if not (Q.is_zero prow_arr.(j)) then row.(j) <- Q.sub row.(j) (Q.mul f prow_arr.(j))
        done
      end)
    arr;
  let f = tab.obj_row.(pcol) in
  if not (Q.is_zero f) then begin
    for j = 0 to n - 1 do
      if not (Q.is_zero prow_arr.(j)) then tab.obj_row.(j) <- Q.sub tab.obj_row.(j) (Q.mul f prow_arr.(j))
    done;
    (* v' = v + r_q * theta, theta = normalized pivot-row rhs *)
    tab.obj_val <- Q.add tab.obj_val (Q.mul f prow_arr.(n))
  end;
  tab.basis.(prow) <- pcol

(* Entering column: Dantzig (most negative reduced cost) or Bland (first
   negative). Returns None at optimality. *)
let entering tab ~bland =
  let best = ref None in
  (try
     for j = 0 to tab.ncols - 1 do
       if tab.allowed.(j) && Q.compare tab.obj_row.(j) Q.zero < 0 then
         if bland then begin
           best := Some j;
           raise Exit
         end
         else
           match !best with
           | Some k when Q.compare tab.obj_row.(k) tab.obj_row.(j) <= 0 -> ()
           | _ -> best := Some j
     done
   with Exit -> ());
  !best

(* Leaving row by ratio test; ties broken by smallest basic variable index
   (Bland-compatible). Returns None when the column is unbounded below. *)
let leaving tab ~pcol =
  let m = Array.length tab.a in
  let n = tab.ncols in
  let best = ref None in
  for i = 0 to m - 1 do
    let aij = tab.a.(i).(pcol) in
    if Q.compare aij Q.zero > 0 then begin
      let ratio = Q.div tab.a.(i).(n) aij in
      match !best with
      | None -> best := Some (i, ratio)
      | Some (bi, br) ->
          let c = Q.compare ratio br in
          if c < 0 || (c = 0 && tab.basis.(i) < tab.basis.(bi)) then best := Some (i, ratio)
    end
  done;
  Option.map fst !best

type simplex_outcome = S_optimal | S_unbounded

let run_simplex ?(rule = Dantzig_with_fallback) ~budget ~obs tab =
  let bland = ref (rule = Pure_bland) in
  let stalled = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    match entering tab ~bland:!bland with
    | None -> outcome := Some S_optimal
    | Some pcol -> (
        match leaving tab ~pcol with
        | None -> outcome := Some S_unbounded
        | Some prow ->
            Budget.tick budget;
            let before = tab.obj_val in
            pivot tab ~prow ~pcol;
            incr last_pivots;
            Obs.incr obs "lp.pivots";
            if Q.equal before tab.obj_val then begin
              incr stalled;
              Obs.incr obs "lp.degenerate_pivots";
              if !stalled > degenerate_pivot_threshold then bland := true
            end
            else stalled := 0)
  done;
  Option.get !outcome

let solve ?(rule = Dantzig_with_fallback) ?budget ?(obs = Obs.null) m =
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  last_pivots := 0;
  Obs.incr obs "lp.solves";
  (* Shift variables by their lower bounds: work with z = x - l >= 0. *)
  let lower = Array.of_list (List.rev m.lower) in
  let upper = Array.of_list (List.rev m.upper) in
  let names = Array.of_list (List.rev m.names) in
  let rows0 = List.rev m.rows in
  (* upper bounds become rows over z *)
  let upper_rows =
    List.concat
      (List.init m.nvars (fun v ->
           match upper.(v) with
           | None -> []
           | Some u -> [ { terms = [ (Q.one, v) ]; sense = Le; rhs = Q.sub u lower.(v) } ]))
  in
  let shift_row r =
    let shift = List.fold_left (fun acc (c, v) -> Q.add acc (Q.mul c lower.(v))) Q.zero r.terms in
    { r with rhs = Q.sub r.rhs shift }
  in
  let rows = List.map shift_row rows0 @ upper_rows in
  let nrows = List.length rows in
  (* objective over z, with constant offset for the lower-bound shift *)
  let minimize_obj = match m.obj_dir with Minimize -> m.obj | Maximize -> List.map (fun (c, v) -> (Q.neg c, v)) m.obj in
  let obj_offset = List.fold_left (fun acc (c, v) -> Q.add acc (Q.mul c lower.(v))) Q.zero minimize_obj in
  (* columns: structural z (nvars) | slacks (one per Le/Ge row) | artificials (one per row) *)
  let nslack = List.fold_left (fun acc r -> match r.sense with Eq -> acc | Le | Ge -> acc + 1) 0 rows in
  let ncols = m.nvars + nslack + nrows in
  let a = Array.init nrows (fun _ -> Array.make (ncols + 1) Q.zero) in
  let basis = Array.make nrows 0 in
  let allowed = Array.make ncols true in
  let slack_idx = ref m.nvars in
  List.iteri
    (fun i r ->
      let neg = Q.compare r.rhs Q.zero < 0 in
      let put c v = a.(i).(v) <- Q.add a.(i).(v) (if neg then Q.neg c else c) in
      List.iter (fun (c, v) -> put c v) r.terms;
      (match r.sense with
      | Le ->
          put Q.one !slack_idx;
          incr slack_idx
      | Ge ->
          put Q.minus_one !slack_idx;
          incr slack_idx
      | Eq -> ());
      a.(i).(ncols) <- Q.abs r.rhs;
      (* artificial variable for this row *)
      let art = m.nvars + nslack + i in
      a.(i).(art) <- Q.one;
      basis.(i) <- art)
    rows;
  (* Phase 1: minimize sum of artificials. Canonical reduced costs with the
     artificial basis: r_j = -sum_i a_ij for structural/slack columns. *)
  let obj_row = Array.make ncols Q.zero in
  for j = 0 to m.nvars + nslack - 1 do
    let s = ref Q.zero in
    for i = 0 to nrows - 1 do
      s := Q.add !s a.(i).(j)
    done;
    obj_row.(j) <- Q.neg !s
  done;
  let rhs_sum = ref Q.zero in
  for i = 0 to nrows - 1 do
    rhs_sum := Q.add !rhs_sum a.(i).(ncols)
  done;
  let tab = { a; obj_row; obj_val = !rhs_sum; basis; ncols; allowed } in
  match Obs.span obs "lp.phase1" (fun () -> run_simplex ~rule ~budget ~obs tab) with
  | S_unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
  | S_optimal ->
      if Q.compare tab.obj_val Q.zero > 0 then Infeasible
      else begin
        (* Drive remaining artificials out of the basis where possible. *)
        let art_start = m.nvars + nslack in
        for i = 0 to nrows - 1 do
          if tab.basis.(i) >= art_start then begin
            let found = ref None in
            for j = 0 to art_start - 1 do
              if !found = None && not (Q.is_zero tab.a.(i).(j)) then found := Some j
            done;
            match !found with
            | Some j -> pivot tab ~prow:i ~pcol:j
            | None -> () (* redundant row: all-zero; harmless to keep *)
          end
        done;
        (* Forbid artificials from re-entering. *)
        for j = art_start to ncols - 1 do
          tab.allowed.(j) <- false
        done;
        (* Phase 2: original objective. Recompute reduced costs w.r.t. the
           current basis: r_j = c_j - sum_i c_B(i) * a_ij. *)
        let c = Array.make ncols Q.zero in
        List.iter (fun (coef, v) -> c.(v) <- Q.add c.(v) coef) minimize_obj;
        for j = 0 to ncols - 1 do
          let s = ref c.(j) in
          for i = 0 to nrows - 1 do
            let cb = if tab.basis.(i) < ncols then c.(tab.basis.(i)) else Q.zero in
            if not (Q.is_zero cb) then s := Q.sub !s (Q.mul cb tab.a.(i).(j))
          done;
          tab.obj_row.(j) <- !s
        done;
        let v = ref Q.zero in
        for i = 0 to nrows - 1 do
          let cb = c.(tab.basis.(i)) in
          if not (Q.is_zero cb) then v := Q.add !v (Q.mul cb tab.a.(i).(ncols))
        done;
        tab.obj_val <- !v;
        match Obs.span obs "lp.phase2" (fun () -> run_simplex ~rule ~budget ~obs tab) with
        | S_unbounded -> Unbounded
        | S_optimal ->
            let z = Array.make m.nvars Q.zero in
            Array.iteri (fun i bv -> if bv < m.nvars then z.(bv) <- tab.a.(i).(ncols)) tab.basis;
            let x = Array.init m.nvars (fun i -> Q.add z.(i) lower.(i)) in
            let objective =
              let raw = Q.add tab.obj_val obj_offset in
              match m.obj_dir with Minimize -> raw | Maximize -> Q.neg raw
            in
            Optimal { objective; var_values = x; sol_names = names }
      end

let objective_value s = s.objective
let value s v = s.var_values.(v)
let values s = Array.to_list (Array.mapi (fun i n -> (n, s.var_values.(i))) s.sol_names)

let pp_solution fmt s =
  Format.fprintf fmt "objective = %a@." Q.pp s.objective;
  Array.iteri (fun i n -> Format.fprintf fmt "  %s = %a@." n Q.pp s.var_values.(i)) s.sol_names
