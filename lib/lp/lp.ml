module Q = Rational

type sense = Le | Ge | Eq
type objective_direction = Minimize | Maximize
type var = int

type row = { terms : (Q.t * var) list; sense : sense; rhs : Q.t }

(* Model columns live in growable arrays (doubling push) built once at
   add_var / add_constraint time, so solving never has to reverse or
   re-materialize them and var_name is O(1). *)
type model = {
  mutable names : string array;
  mutable lower : Q.t array;
  mutable upper : Q.t option array;
  mutable nvars : int;
  mutable rows : row array;
  mutable nrows : int;
  mutable obj_dir : objective_direction;
  mutable obj : (Q.t * var) list;
}

module Basis = struct
  type status = Lower | Upper | Basic

  type t = {
    b_nvars : int;
    b_nrows : int;
    vstat : status array; (* structural columns *)
    sstat : status array; (* slack of each row; [Lower] for Eq rows *)
  }
end

(* The engine selector is an open type: each registered engine owns one
   or more constructors (config-carrying engines own a configured
   variant too). [Revised] and [Dense] are the 1.6 spellings of the old
   closed variant, kept as registered aliases for one release. *)
type engine = ..
type engine += Revised | Dense

(* How the returned objective was established: [Exact] — every pivot ran
   in rational arithmetic; [Certified] — a float simplex found the basis
   and one exact refactorization proved it optimal; [Fallback] — float
   certification failed and the exact Revised engine re-solved cold. *)
type certification = Exact | Certified | Fallback

type solution = {
  objective : Q.t;
  var_values : Q.t array;
  sol_names : string array;
  sol_pivots : int;
  sol_cells : int; (* working-tableau area, rows * columns *)
  sol_basis : Basis.t option;
  sol_certification : certification;
}

type result = Optimal of solution | Infeasible | Unbounded

let dummy_row = { terms = []; sense = Eq; rhs = Q.zero }

let create () =
  {
    names = [||];
    lower = [||];
    upper = [||];
    nvars = 0;
    rows = [||];
    nrows = 0;
    obj_dir = Minimize;
    obj = [];
  }

let grow arr len dummy =
  if len < Array.length arr then arr
  else begin
    let arr' = Array.make (max 8 (2 * Array.length arr)) dummy in
    Array.blit arr 0 arr' 0 len;
    arr'
  end

let add_var ?(lower = Q.zero) ?upper m name =
  (match upper with
  | Some u when Q.compare u lower < 0 -> invalid_arg "Lp.add_var: upper < lower"
  | _ -> ());
  let v = m.nvars in
  m.names <- grow m.names v "";
  m.lower <- grow m.lower v Q.zero;
  m.upper <- grow m.upper v None;
  m.names.(v) <- name;
  m.lower.(v) <- lower;
  m.upper.(v) <- upper;
  m.nvars <- v + 1;
  v

let var_name m v =
  if v < 0 || v >= m.nvars then invalid_arg "Lp.var_name: unknown variable";
  m.names.(v)

let num_vars m = m.nvars
let num_constraints m = m.nrows

let set_bounds m v ~lower ~upper =
  if v < 0 || v >= m.nvars then invalid_arg "Lp.set_bounds: unknown variable";
  (match upper with
  | Some u when Q.compare u lower < 0 -> invalid_arg "Lp.set_bounds: upper < lower"
  | _ -> ());
  m.lower.(v) <- lower;
  m.upper.(v) <- upper

(* Sum duplicate variables so the tableau sees each column once per row. *)
let combine_terms terms =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c, v) ->
      let prev = try Hashtbl.find tbl v with Not_found -> Q.zero in
      Hashtbl.replace tbl v (Q.add prev c))
    terms;
  Hashtbl.fold (fun v c acc -> if Q.is_zero c then acc else (c, v) :: acc) tbl []

let add_constraint m terms sense rhs =
  List.iter
    (fun (_, v) -> if v < 0 || v >= m.nvars then invalid_arg "Lp.add_constraint: unknown variable")
    terms;
  let r = m.nrows in
  m.rows <- grow m.rows r dummy_row;
  m.rows.(r) <- { terms = combine_terms terms; sense; rhs };
  m.nrows <- r + 1

let set_objective m dir terms =
  List.iter
    (fun (_, v) -> if v < 0 || v >= m.nvars then invalid_arg "Lp.set_objective: unknown variable")
    terms;
  m.obj_dir <- dir;
  m.obj <- combine_terms terms

(* After the pivot count without strict objective improvement exceeds this
   threshold we switch from Dantzig to Bland's rule, which cannot cycle. *)
let degenerate_pivot_threshold = 64

(* Pricing rule: Dantzig (most negative reduced cost) with the Bland
   fallback above, or pure Bland. Exposed for the pivot-rule ablation. *)
type pivot_rule = Dantzig_with_fallback | Pure_bland

(* Minimization form shared by both engines. *)
let minimize_objective m =
  match m.obj_dir with Minimize -> m.obj | Maximize -> List.map (fun (c, v) -> (Q.neg c, v)) m.obj

let finish_objective m raw = match m.obj_dir with Minimize -> raw | Maximize -> Q.neg raw

(* ====================================================================== *)
(* Dense engine: two-phase primal simplex on a dense rational tableau     *)
(* with every upper bound expanded into an explicit Le row. Kept as the   *)
(* reference implementation for the Revised engine's observational-       *)
(* equivalence battery (prop_engines_agree, fuzz differential, e21).      *)
(* ====================================================================== *)

type tableau = {
  a : Q.t array array; (* nrows x (ncols + 1); last column = rhs *)
  mutable obj_row : Q.t array; (* length ncols *)
  mutable obj_val : Q.t;
  basis : int array; (* basic column of each row *)
  ncols : int;
  allowed : bool array; (* columns allowed to enter (artificials excluded in phase 2) *)
  mutable dcells : int; (* tableau cells actually updated by pivoting *)
}

let pivot tab ~prow ~pcol =
  let arr = tab.a in
  let n = tab.ncols in
  let cells = ref tab.dcells in
  let prow_arr = arr.(prow) in
  let pelem = prow_arr.(pcol) in
  if not (Q.equal pelem Q.one) then
    for j = 0 to n do
      if not (Q.is_zero prow_arr.(j)) then begin
        incr cells;
        prow_arr.(j) <- Q.div prow_arr.(j) pelem
      end
    done;
  Array.iteri
    (fun i row ->
      if i <> prow && not (Q.is_zero row.(pcol)) then begin
        let f = row.(pcol) in
        for j = 0 to n do
          if not (Q.is_zero prow_arr.(j)) then begin
            incr cells;
            row.(j) <- Q.sub row.(j) (Q.mul f prow_arr.(j))
          end
        done
      end)
    arr;
  let f = tab.obj_row.(pcol) in
  if not (Q.is_zero f) then begin
    for j = 0 to n - 1 do
      if not (Q.is_zero prow_arr.(j)) then begin
        incr cells;
        tab.obj_row.(j) <- Q.sub tab.obj_row.(j) (Q.mul f prow_arr.(j))
      end
    done;
    (* v' = v + r_q * theta, theta = normalized pivot-row rhs *)
    tab.obj_val <- Q.add tab.obj_val (Q.mul f prow_arr.(n))
  end;
  tab.dcells <- !cells;
  tab.basis.(prow) <- pcol

(* Entering column: Dantzig (most negative reduced cost) or Bland (first
   negative). Returns None at optimality. *)
let entering tab ~bland =
  let best = ref None in
  (try
     for j = 0 to tab.ncols - 1 do
       if tab.allowed.(j) && Q.compare tab.obj_row.(j) Q.zero < 0 then
         if bland then begin
           best := Some j;
           raise Exit
         end
         else
           match !best with
           | Some k when Q.compare tab.obj_row.(k) tab.obj_row.(j) <= 0 -> ()
           | _ -> best := Some j
     done
   with Exit -> ());
  !best

(* Leaving row by ratio test; ties broken by smallest basic variable index
   (Bland-compatible). Returns None when the column is unbounded below. *)
let leaving tab ~pcol =
  let m = Array.length tab.a in
  let n = tab.ncols in
  let best = ref None in
  for i = 0 to m - 1 do
    let aij = tab.a.(i).(pcol) in
    if Q.compare aij Q.zero > 0 then begin
      let ratio = Q.div tab.a.(i).(n) aij in
      match !best with
      | None -> best := Some (i, ratio)
      | Some (bi, br) ->
          let c = Q.compare ratio br in
          if c < 0 || (c = 0 && tab.basis.(i) < tab.basis.(bi)) then best := Some (i, ratio)
    end
  done;
  Option.map fst !best

type simplex_outcome = S_optimal | S_unbounded

let run_simplex ~rule ~phase1 ~budget ~obs ~pivots tab =
  let bland = ref (rule = Pure_bland) in
  let stalled = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    match entering tab ~bland:!bland with
    | None -> outcome := Some S_optimal
    | Some pcol -> (
        match leaving tab ~pcol with
        | None -> outcome := Some S_unbounded
        | Some prow ->
            Budget.tick budget;
            let before = tab.obj_val in
            pivot tab ~prow ~pcol;
            incr pivots;
            Obs.incr obs "lp.pivots";
            if phase1 then Obs.incr obs "lp.phase1_pivots";
            if Q.equal before tab.obj_val then begin
              incr stalled;
              Obs.incr obs "lp.degenerate_pivots";
              if !stalled > degenerate_pivot_threshold then bland := true
            end
            else stalled := 0)
  done;
  Option.get !outcome

let solve_dense ~rule ~budget ~obs ~pivots m =
  (* Shift variables by their lower bounds: work with z = x - l >= 0. *)
  let lower = m.lower and upper = m.upper in
  let rows0 = Array.to_list (Array.sub m.rows 0 m.nrows) in
  (* upper bounds become rows over z *)
  let upper_rows =
    List.concat
      (List.init m.nvars (fun v ->
           match upper.(v) with
           | None -> []
           | Some u -> [ { terms = [ (Q.one, v) ]; sense = Le; rhs = Q.sub u lower.(v) } ]))
  in
  let shift_row r =
    let shift = List.fold_left (fun acc (c, v) -> Q.add acc (Q.mul c lower.(v))) Q.zero r.terms in
    { r with rhs = Q.sub r.rhs shift }
  in
  let rows = List.map shift_row rows0 @ upper_rows in
  let nrows = List.length rows in
  (* objective over z, with constant offset for the lower-bound shift *)
  let minimize_obj = minimize_objective m in
  let obj_offset = List.fold_left (fun acc (c, v) -> Q.add acc (Q.mul c lower.(v))) Q.zero minimize_obj in
  (* columns: structural z (nvars) | slacks (one per Le/Ge row) | artificials (one per row) *)
  let nslack = List.fold_left (fun acc r -> match r.sense with Eq -> acc | Le | Ge -> acc + 1) 0 rows in
  let ncols = m.nvars + nslack + nrows in
  let a = Array.init nrows (fun _ -> Array.make (ncols + 1) Q.zero) in
  let basis = Array.make nrows 0 in
  let allowed = Array.make ncols true in
  let slack_idx = ref m.nvars in
  List.iteri
    (fun i r ->
      let neg = Q.compare r.rhs Q.zero < 0 in
      let put c v = a.(i).(v) <- Q.add a.(i).(v) (if neg then Q.neg c else c) in
      List.iter (fun (c, v) -> put c v) r.terms;
      (match r.sense with
      | Le ->
          put Q.one !slack_idx;
          incr slack_idx
      | Ge ->
          put Q.minus_one !slack_idx;
          incr slack_idx
      | Eq -> ());
      a.(i).(ncols) <- Q.abs r.rhs;
      (* artificial variable for this row *)
      let art = m.nvars + nslack + i in
      a.(i).(art) <- Q.one;
      basis.(i) <- art)
    rows;
  (* Phase 1: minimize sum of artificials. Canonical reduced costs with the
     artificial basis: r_j = -sum_i a_ij for structural/slack columns. *)
  let obj_row = Array.make ncols Q.zero in
  for j = 0 to m.nvars + nslack - 1 do
    let s = ref Q.zero in
    for i = 0 to nrows - 1 do
      s := Q.add !s a.(i).(j)
    done;
    obj_row.(j) <- Q.neg !s
  done;
  let rhs_sum = ref Q.zero in
  for i = 0 to nrows - 1 do
    rhs_sum := Q.add !rhs_sum a.(i).(ncols)
  done;
  let tab = { a; obj_row; obj_val = !rhs_sum; basis; ncols; allowed; dcells = 0 } in
  match Obs.span obs "lp.phase1" (fun () -> run_simplex ~rule ~phase1:true ~budget ~obs ~pivots tab) with
  | S_unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
  | S_optimal ->
      if Q.compare tab.obj_val Q.zero > 0 then begin
        Obs.add obs "lp.exact_cells" tab.dcells;
        Infeasible
      end
      else begin
        (* Drive remaining artificials out of the basis where possible. *)
        let art_start = m.nvars + nslack in
        for i = 0 to nrows - 1 do
          if tab.basis.(i) >= art_start then begin
            let found = ref None in
            for j = 0 to art_start - 1 do
              if !found = None && not (Q.is_zero tab.a.(i).(j)) then found := Some j
            done;
            match !found with
            | Some j -> pivot tab ~prow:i ~pcol:j
            | None -> () (* redundant row: all-zero; harmless to keep *)
          end
        done;
        (* Forbid artificials from re-entering. *)
        for j = art_start to ncols - 1 do
          tab.allowed.(j) <- false
        done;
        (* Phase 2: original objective. Recompute reduced costs w.r.t. the
           current basis: r_j = c_j - sum_i c_B(i) * a_ij. *)
        let c = Array.make ncols Q.zero in
        List.iter (fun (coef, v) -> c.(v) <- Q.add c.(v) coef) minimize_obj;
        for j = 0 to ncols - 1 do
          let s = ref c.(j) in
          for i = 0 to nrows - 1 do
            let cb = if tab.basis.(i) < ncols then c.(tab.basis.(i)) else Q.zero in
            if not (Q.is_zero cb) then s := Q.sub !s (Q.mul cb tab.a.(i).(j))
          done;
          tab.obj_row.(j) <- !s
        done;
        let v = ref Q.zero in
        for i = 0 to nrows - 1 do
          let cb = c.(tab.basis.(i)) in
          if not (Q.is_zero cb) then v := Q.add !v (Q.mul cb tab.a.(i).(ncols))
        done;
        tab.obj_val <- !v;
        match Obs.span obs "lp.phase2" (fun () -> run_simplex ~rule ~phase1:false ~budget ~obs ~pivots tab) with
        | S_unbounded ->
            Obs.add obs "lp.exact_cells" tab.dcells;
            Unbounded
        | S_optimal ->
            Obs.add obs "lp.exact_cells" tab.dcells;
            let z = Array.make m.nvars Q.zero in
            Array.iteri (fun i bv -> if bv < m.nvars then z.(bv) <- tab.a.(i).(ncols)) tab.basis;
            let x = Array.init m.nvars (fun i -> Q.add z.(i) lower.(i)) in
            let objective = finish_objective m (Q.add tab.obj_val obj_offset) in
            Optimal
              {
                objective;
                var_values = x;
                sol_names = Array.sub m.names 0 m.nvars;
                sol_pivots = !pivots;
                sol_cells = tab.dcells;
                sol_basis = None;
                sol_certification = Exact;
              }
      end

(* Residual of row [i] with every structural variable at its initial
   status value. *)
let row_residual values r =
  List.fold_left (fun acc (c, v) -> Q.sub acc (Q.mul c values.(v))) r.rhs r.terms

(* ====================================================================== *)
(* Sparse basis algebra: the exact "revised" and "sparse" engines and    *)
(* the float engine's pivoting all run on the shared sparse LU + eta     *)
(* driver                                                                *)
(* (Sparse_simplex over the Slu kernels), instantiated at Rational and   *)
(* at float. The constraint matrix is held once as sparse columns; each  *)
(* (re)factorization is a sparse LU with a fill-minimizing static        *)
(* ordering, and each pivot appends a product-form eta, refactorizing    *)
(* when the eta file outgrows the factors.                               *)
(* ====================================================================== *)

module RS = Sparse_simplex.Make (Scalar.Rat)
module FS = Sparse_simplex.Make (Scalar.Flt)

(* Pricing policy of the sparse driver, shared by the exact sparse /
   revised engines and the float engine's pivot phase. The fixed
   three-name registry mirrors the engine table's selector strings:
   CLI --lp-pricing, the registry "pricing" param and serve's
   lp_pricing field all resolve through [pricing_of_name]. *)
type pricing = Sparse_simplex.pricing = Dantzig | Partial | Devex

let default_pricing = Dantzig
let pricing_name = function Dantzig -> "dantzig" | Partial -> "partial" | Devex -> "devex"

let pricing_of_name = function
  | "dantzig" -> Some Dantzig
  | "partial" -> Some Partial
  | "devex" -> Some Devex
  | _ -> None

let pricing_names () = [ "dantzig"; "devex"; "partial" ]

let pricing_inventory () =
  [ ("dantzig", "full reduced-cost scan, largest |d| (default; pivot-identical to 1.9)");
    ("devex", "approximate steepest edge: d^2/w reference weights, cheap row updates");
    ("partial", "candidate-list partial pricing: bounded queue, rotating refill sweeps") ]

type sparse_config = {
  sparse_eta_cap : int;  (* refactorize after this many eta updates *)
  sparse_pricing : pricing;
}

let default_sparse_config = { sparse_eta_cap = 64; sparse_pricing = Dantzig }

type engine += Sparse | Sparse_with of sparse_config

let vstat_of_status = function
  | Basis.Lower -> Sparse_simplex.Vlo
  | Basis.Upper -> Sparse_simplex.Vhi
  | Basis.Basic -> Sparse_simplex.Vbas

let status_of_vstat = function
  | Sparse_simplex.Vlo -> Basis.Lower
  | Sparse_simplex.Vhi -> Basis.Upper
  | Sparse_simplex.Vbas -> Basis.Basic

(* Build the sparse instance description shared by both scalar
   instantiations: structural columns, then one slack per Le/Ge row in
   row order, then (cold starts only) one artificial per
   infeasible-start row. Artificial columns are [sign(residual) * e_i],
   so the initial basic value is |residual| and no row needs the sign
   flip the dense revised build performs. Returns the spec and the slack
   column of each row (-1 for Eq rows). *)
let sparse_spec ~with_art m =
  let nv = m.nvars in
  let slack_of_row = Array.make m.nrows (-1) in
  let nslack = ref 0 in
  for i = 0 to m.nrows - 1 do
    match m.rows.(i).sense with
    | Le | Ge ->
        slack_of_row.(i) <- nv + !nslack;
        incr nslack
    | Eq -> ()
  done;
  let nslack = !nslack in
  let init_val = Array.init nv (fun v -> m.lower.(v)) in
  let residual = Array.init m.nrows (fun i -> row_residual init_val m.rows.(i)) in
  let needs_art = Array.make m.nrows false in
  let art_of_row = Array.make m.nrows (-1) in
  let nart = ref 0 in
  if with_art then
    for i = 0 to m.nrows - 1 do
      let need =
        match m.rows.(i).sense with
        | Le -> Q.compare residual.(i) Q.zero < 0
        | Ge -> Q.compare residual.(i) Q.zero > 0
        | Eq -> true
      in
      if need then begin
        needs_art.(i) <- true;
        art_of_row.(i) <- nv + nslack + !nart;
        incr nart
      end
    done;
  let n = nv + nslack + !nart in
  let cols = Array.make n [] in
  let lo = Array.make n Q.zero in
  let hi = Array.make n None in
  let obj = Array.make n Q.zero in
  let fixed = Array.make n false in
  let stat0 = Array.make n Sparse_simplex.Vlo in
  let basis0 = Array.make m.nrows (-1) in
  let xb0 = Array.make m.nrows Q.zero in
  let rhs = Array.make m.nrows Q.zero in
  for v = 0 to nv - 1 do
    lo.(v) <- m.lower.(v);
    hi.(v) <- m.upper.(v);
    match m.upper.(v) with
    | Some u when Q.equal u m.lower.(v) -> fixed.(v) <- true
    | _ -> ()
  done;
  for i = 0 to m.nrows - 1 do
    let r = m.rows.(i) in
    rhs.(i) <- r.rhs;
    List.iter (fun (c, v) -> cols.(v) <- (i, c) :: cols.(v)) r.terms;
    (match r.sense with
    | Le -> cols.(slack_of_row.(i)) <- [ (i, Q.one) ]
    | Ge -> cols.(slack_of_row.(i)) <- [ (i, Q.minus_one) ]
    | Eq -> ());
    if needs_art.(i) then begin
      let aj = art_of_row.(i) in
      let sgn = if Q.compare residual.(i) Q.zero < 0 then Q.minus_one else Q.one in
      cols.(aj) <- [ (i, sgn) ];
      basis0.(i) <- aj;
      stat0.(aj) <- Sparse_simplex.Vbas;
      xb0.(i) <- Q.abs residual.(i)
    end
    else
      match r.sense with
      | Le ->
          basis0.(i) <- slack_of_row.(i);
          stat0.(slack_of_row.(i)) <- Sparse_simplex.Vbas;
          xb0.(i) <- residual.(i)
      | Ge ->
          basis0.(i) <- slack_of_row.(i);
          stat0.(slack_of_row.(i)) <- Sparse_simplex.Vbas;
          xb0.(i) <- Q.neg residual.(i)
      | Eq -> () (* only reachable without artificials: warm specs ignore basis0 *)
  done;
  List.iter (fun (c, v) -> obj.(v) <- Q.add obj.(v) c) (minimize_objective m);
  ( {
      Sparse_simplex.sp_nrows = m.nrows;
      sp_ncols = n;
      sp_cols = cols;
      sp_lo = lo;
      sp_hi = hi;
      sp_obj = obj;
      sp_fixed = fixed;
      sp_art = nv + nslack;
      sp_stat0 = stat0;
      sp_basis0 = basis0;
      sp_xb0 = xb0;
      sp_rhs = rhs;
    },
    slack_of_row )

let sparse_counters =
  {
    Sparse_simplex.c_pivots = "lp.pivots";
    c_phase1 = true;
    c_flips = true;
    c_degen = true;
    c_warm = true;
    c_price = true;
  }

let sparse_scfg ~cfg ~rule =
  {
    Sparse_simplex.dtol = Q.zero;
    ptol = Q.zero;
    ztol = Q.zero;
    eta_cap = cfg.sparse_eta_cap;
    step_cap = None;
    bland_always = (rule = Pure_bland);
    pricing = cfg.sparse_pricing;
    counters = sparse_counters;
  }

(* Map a sparse driver outcome back to the solver result; [x] comes from
   the statuses (nonbasic at a bound) and the final basic values. *)
let extract_sparse ~m ~slack_of_row ~pivots ~ops outcome =
  match outcome with
  | RS.Infeas -> Infeasible
  | RS.Unbd -> Unbounded
  | RS.Opt { o_z; o_stat; o_basis; o_xb } ->
      let nv = m.nvars in
      let x = Array.make nv Q.zero in
      for v = 0 to nv - 1 do
        if o_stat.(v) <> Sparse_simplex.Vbas then
          x.(v) <-
            (match o_stat.(v) with
            | Sparse_simplex.Vhi -> (
                match m.upper.(v) with Some u -> u | None -> m.lower.(v))
            | _ -> m.lower.(v))
      done;
      for p = 0 to m.nrows - 1 do
        if o_basis.(p) < nv then x.(o_basis.(p)) <- o_xb.(p)
      done;
      let basis =
        {
          Basis.b_nvars = nv;
          b_nrows = m.nrows;
          vstat = Array.init nv (fun v -> status_of_vstat o_stat.(v));
          sstat =
            Array.init m.nrows (fun i ->
                if slack_of_row.(i) < 0 then Basis.Lower
                else status_of_vstat o_stat.(slack_of_row.(i)));
        }
      in
      Optimal
        {
          objective = finish_objective m o_z;
          var_values = x;
          sol_names = Array.sub m.names 0 nv;
          sol_pivots = !pivots;
          sol_cells = !ops;
          sol_basis = Some basis;
          sol_certification = Exact;
        }

let solve_sparse_cold ~cfg ~rule ~budget ~obs ~pivots m =
  let spec, slack_of_row = sparse_spec ~with_art:true m in
  let pb = RS.of_spec spec in
  let ops = ref 0 in
  let outcome = RS.solve_cold (sparse_scfg ~cfg ~rule) pb ~budget ~obs ~pivots ~ops in
  Obs.add obs "lp.exact_cells" !ops;
  extract_sparse ~m ~slack_of_row ~pivots ~ops outcome

(* Per-column warm statuses from a basis snapshot, sanitized against the
   current bounds exactly as the revised warm start does. *)
let sparse_warm_stat m ~slack_of_row ~ncols (w : Basis.t) =
  let stat = Array.make ncols Sparse_simplex.Vlo in
  for v = 0 to m.nvars - 1 do
    stat.(v) <-
      (match w.Basis.vstat.(v) with
      | Basis.Upper when m.upper.(v) = None -> Sparse_simplex.Vlo
      | s -> vstat_of_status s)
  done;
  for i = 0 to m.nrows - 1 do
    if slack_of_row.(i) >= 0 then
      stat.(slack_of_row.(i)) <-
        (match w.Basis.sstat.(i) with
        | Basis.Upper -> Sparse_simplex.Vlo (* slacks have no upper bound *)
        | s -> vstat_of_status s)
  done;
  stat

let solve_sparse_warm ~cfg ~rule ~budget ~obs ~pivots m (w : Basis.t) =
  if w.Basis.b_nvars <> m.nvars || w.Basis.b_nrows <> m.nrows then raise RS.Warm_failed;
  let spec, slack_of_row = sparse_spec ~with_art:false m in
  let pb = RS.of_spec spec in
  let stat = sparse_warm_stat m ~slack_of_row ~ncols:spec.Sparse_simplex.sp_ncols w in
  let ops = ref 0 in
  let outcome = RS.solve_warm (sparse_scfg ~cfg ~rule) pb ~stat ~budget ~obs ~pivots ~ops in
  Obs.add obs "lp.exact_cells" !ops;
  extract_sparse ~m ~slack_of_row ~pivots ~ops outcome

(* ====================================================================== *)
(* Float engine: double-precision bounded-variable simplex that finds a  *)
(* candidate basis fast, then one exact rational refactorization of that *)
(* basis proves (or refutes) primal feasibility, dual feasibility and    *)
(* the objective. Certification succeeding, the solution extracted from  *)
(* the exact refactorization is bit-identical to what the exact engines  *)
(* return; certification failing — wrong vertex, singular basis, pivot   *)
(* cap, or a float infeasible/unbounded claim we do not certify — the    *)
(* solve falls back to the exact Revised engine, so results never depend *)
(* on floating point. *)
(* ====================================================================== *)

type float_config = {
  float_eps : float;  (* reduced-cost / degeneracy tolerance *)
  float_pivot_cap : int option;  (* give up after this many pivots+flips; None: 64*(m+n)+1024 *)
  float_pricing : pricing;
}

let default_float_config = { float_eps = 1e-9; float_pivot_cap = None; float_pricing = Dantzig }

type engine += Float_certified | Float_with of float_config

(* pivot elements smaller than this are numerically untrustworthy *)
let fpivot_tol = 1e-7

(* the float phase aborts (pivot cap, unusable tableau) and requests the
   exact fallback without attempting certification *)
exception Float_gave_up

(* What the float phase claims about the model. Only [F_opt] carries
   enough structure (the final statuses) to be certified; the other two
   claims always take the exact fallback. *)
type float_claim =
  | F_opt of Basis.status array * Basis.status array (* vstat, sstat *)
  | F_infeas
  | F_unbd

let float_counters =
  {
    Sparse_simplex.c_pivots = "lp.float_pivots";
    c_phase1 = false;
    c_flips = false;
    c_degen = false;
    c_warm = true;
    c_price = false;
  }

let float_scfg ~cfg ~rule ~m ~n =
  {
    Sparse_simplex.dtol = cfg.float_eps;
    ptol = fpivot_tol;
    ztol = fpivot_tol;
    eta_cap = default_sparse_config.sparse_eta_cap;
    step_cap =
      Some (match cfg.float_pivot_cap with Some c -> c | None -> (64 * (m + n)) + 1024);
    bland_always = (rule = Pure_bland);
    pricing = cfg.float_pricing;
    counters = float_counters;
  }

(* Float phase on the sparse driver: runs at double precision over the
   same column layout the exact engines use. [warm] restores a basis
   snapshot (sparse refactorization, then dual repair or phase 2); any
   warm-start trouble retries cold — only the final claim matters, since
   certification decides what it is worth. *)
let solve_float ~cfg ~rule ~warm ~budget ~obs ~fpivots ~fops m =
  let claim_of_outcome slack_of_row = function
    | FS.Infeas -> F_infeas
    | FS.Unbd -> F_unbd
    | FS.Opt { o_stat; _ } ->
        let vstat = Array.init m.nvars (fun v -> status_of_vstat o_stat.(v)) in
        let sstat =
          Array.init m.nrows (fun i ->
              if slack_of_row.(i) < 0 then Basis.Lower
              else status_of_vstat o_stat.(slack_of_row.(i)))
        in
        F_opt (vstat, sstat)
  in
  let cold () =
    let spec, slack_of_row = sparse_spec ~with_art:true m in
    let pb = FS.of_spec spec in
    let scfg = float_scfg ~cfg ~rule ~m:m.nrows ~n:spec.Sparse_simplex.sp_ncols in
    match FS.solve_cold scfg pb ~budget ~obs ~pivots:fpivots ~ops:fops with
    | outcome -> claim_of_outcome slack_of_row outcome
    | exception FS.Gave_up -> raise Float_gave_up
  in
  match warm with
  | None -> cold ()
  | Some (w : Basis.t) ->
      if w.Basis.b_nvars <> m.nvars || w.Basis.b_nrows <> m.nrows then cold ()
      else begin
        let spec, slack_of_row = sparse_spec ~with_art:false m in
        let pb = FS.of_spec spec in
        let n = spec.Sparse_simplex.sp_ncols in
        let stat = sparse_warm_stat m ~slack_of_row ~ncols:n w in
        let scfg = float_scfg ~cfg ~rule ~m:m.nrows ~n in
        match FS.solve_warm scfg pb ~stat ~budget ~obs ~pivots:fpivots ~ops:fops with
        | FS.Opt _ as o -> claim_of_outcome slack_of_row o
        (* infeasible/unbounded claims out of a warm start are not worth
           certifying against: retry from scratch before deciding *)
        | FS.Infeas | FS.Unbd -> cold ()
        | exception FS.Warm_failed -> cold ()
        | exception FS.Gave_up -> cold ()
      end

(* ------------------------------------------------- exact certification -- *)

exception Certify_failed

(* Certify the float engine's final statuses exactly: one sparse
   rational LU of the claimed basis B (shared by the primal solve
   B x_B = b - N x_N, via FTRAN, and the dual solve B^T y = c_B, via
   BTRAN), check every basic value against its bounds and every nonbasic
   reduced cost against its status, and recompute the objective from the
   certified vertex. Cost is counted in [ops] (rational
   multiplications/divisions actually performed — the e23 work metric);
   raises [Certify_failed] on any violation. *)
let certify ~ops m ~vstat ~sstat =
  let nv = m.nvars and nr = m.nrows in
  let mul a b =
    incr ops;
    Q.mul a b
  in
  (* basic columns, structural first then row slacks, both in index order *)
  let cols =
    let acc = ref [] in
    for i = nr - 1 downto 0 do
      if sstat.(i) = Basis.Basic then acc := `Slack i :: !acc
    done;
    for v = nv - 1 downto 0 do
      if vstat.(v) = Basis.Basic then acc := `Var v :: !acc
    done;
    Array.of_list !acc
  in
  if Array.length cols <> nr then raise Certify_failed;
  let xn v =
    match vstat.(v) with
    | Basis.Lower -> m.lower.(v)
    | Basis.Upper -> ( match m.upper.(v) with Some u -> u | None -> raise Certify_failed)
    | Basis.Basic -> assert false
  in
  let vcol = Array.make nv (-1) and scol = Array.make nr (-1) in
  Array.iteri
    (fun k -> function `Var v -> vcol.(v) <- k | `Slack i -> scol.(i) <- k)
    cols;
  let slack_coeff i =
    match m.rows.(i).sense with Le -> Q.one | Ge -> Q.minus_one | Eq -> raise Certify_failed
  in
  (* one sparse LU of the claimed basis, position k = basic column k *)
  let fact =
    let entries = Array.make nr [] in
    for i = nr - 1 downto 0 do
      List.iter
        (fun (c, v) ->
          if vcol.(v) >= 0 then entries.(vcol.(v)) <- (i, c) :: entries.(vcol.(v)))
        m.rows.(i).terms;
      if scol.(i) >= 0 then entries.(scol.(i)) <- (i, slack_coeff i) :: entries.(scol.(i))
    done;
    let bcols = Array.map RS.F.col_of_list entries in
    try RS.F.factor ~ops ~nrows:nr ~cols:bcols ~basis:(Array.init nr (fun k -> k))
    with RS.F.Singular -> raise Certify_failed
  in
  (* primal: B x_B = b - N x_N *)
  let rhs =
    Array.init nr (fun i ->
        List.fold_left
          (fun acc (c, v) ->
            if vstat.(v) = Basis.Basic then acc
            else
              let xv = xn v in
              if Q.is_zero xv then acc else Q.sub acc (mul c xv))
          m.rows.(i).rhs m.rows.(i).terms)
  in
  let xb = RS.F.ftran fact rhs in
  Array.iteri
    (fun k col ->
      let x = xb.(k) in
      match col with
      | `Var v ->
          if Q.compare x m.lower.(v) < 0 then raise Certify_failed;
          (match m.upper.(v) with
          | Some u when Q.compare x u > 0 -> raise Certify_failed
          | _ -> ())
      | `Slack _ -> if Q.compare x Q.zero < 0 then raise Certify_failed)
    cols;
  (* dual: B^T y = c_B, then d_j = c_j - y . A_j for every nonbasic j *)
  let minimize_obj = minimize_objective m in
  let c = Array.make nv Q.zero in
  List.iter (fun (coef, v) -> c.(v) <- Q.add c.(v) coef) minimize_obj;
  let cb =
    Array.map (function `Var v -> c.(v) | `Slack _ -> Q.zero) cols
  in
  let y = RS.F.btran fact cb in
  let u = Array.make nv Q.zero in
  for i = 0 to nr - 1 do
    if not (Q.is_zero y.(i)) then
      List.iter
        (fun (coef, v) ->
          if not (Q.is_zero coef) then u.(v) <- Q.add u.(v) (mul coef y.(i)))
        m.rows.(i).terms
  done;
  for v = 0 to nv - 1 do
    if vstat.(v) <> Basis.Basic then begin
      let fixed = match m.upper.(v) with Some up -> Q.equal up m.lower.(v) | None -> false in
      if not fixed then begin
        let d = Q.sub c.(v) u.(v) in
        match vstat.(v) with
        | Basis.Lower -> if Q.compare d Q.zero < 0 then raise Certify_failed
        | Basis.Upper -> if Q.compare d Q.zero > 0 then raise Certify_failed
        | Basis.Basic -> ()
      end
    end
  done;
  for i = 0 to nr - 1 do
    match m.rows.(i).sense with
    | Eq -> ()
    | Le | Ge ->
        if sstat.(i) <> Basis.Basic then begin
          (* slack cost 0, column +/- e_i: d = -/+ y_i must be >= 0 at Lower *)
          if sstat.(i) <> Basis.Lower then raise Certify_failed;
          let sgn = match m.rows.(i).sense with Le -> -1 | _ -> 1 in
          if sgn * Q.compare y.(i) Q.zero < 0 then raise Certify_failed
        end
  done;
  (* certified vertex and its exact objective *)
  let x = Array.init nv (fun v -> if vstat.(v) = Basis.Basic then Q.zero else xn v) in
  Array.iteri (fun k col -> match col with `Var v -> x.(v) <- xb.(k) | `Slack _ -> ()) cols;
  let z =
    List.fold_left
      (fun acc (coef, v) -> if Q.is_zero x.(v) then acc else Q.add acc (mul coef x.(v)))
      Q.zero minimize_obj
  in
  let basis =
    { Basis.b_nvars = nv; b_nrows = nr; vstat = Array.copy vstat; sstat = Array.copy sstat }
  in
  (finish_objective m z, x, basis)

let solve_float_certified ~cfg ~rule ~warm ~budget ~obs m =
  let fallback () =
    Obs.incr obs "lp.fallbacks";
    let pivots = ref 0 in
    let scfg = { default_sparse_config with sparse_pricing = cfg.float_pricing } in
    match solve_sparse_cold ~cfg:scfg ~rule ~budget ~obs ~pivots m with
    | Optimal s -> Optimal { s with sol_certification = Fallback }
    | r -> r
  in
  let fpivots = ref 0 in
  let fops = ref 0 in
  match solve_float ~cfg ~rule ~warm ~budget ~obs ~fpivots ~fops m with
  | exception Float_gave_up -> fallback ()
  | F_infeas | F_unbd -> fallback () (* claims we do not certify: re-solve exactly *)
  | F_opt (vstat, sstat) -> (
      let ops = ref 0 in
      match certify ~ops m ~vstat ~sstat with
      | objective, x, basis ->
          Obs.add obs "lp.certify_ops" !ops;
          Obs.add obs "lp.exact_cells" !ops;
          Obs.incr obs "lp.certify_ok";
          Optimal
            {
              objective;
              var_values = x;
              sol_names = Array.sub m.names 0 m.nvars;
              sol_pivots = !fpivots;
              sol_cells = !fops + !ops;
              sol_basis = Some basis;
              sol_certification = Certified;
            }
      | exception Certify_failed ->
          Obs.add obs "lp.certify_ops" !ops;
          Obs.add obs "lp.exact_cells" !ops;
          Obs.incr obs "lp.certify_fail";
          fallback ())

(* ====================================================================== *)
(* Engine interface and registration table (mirrors Core.Registry).      *)
(* ====================================================================== *)

module type ENGINE = sig
  val name : string
  val description : string
  val selector : engine

  val handles : engine -> bool
  (** recognizes every selector value this engine owns, including
      config-carrying constructors *)

  val solve :
    engine:engine ->
    rule:pivot_rule ->
    pricing:pricing ->
    warm:Basis.t option ->
    budget:Budget.t ->
    obs:Obs.t ->
    model ->
    result
  (** [pricing] is the caller's default; a config-carrying selector
      ([Sparse_with]/[Float_with]) overrides it with its own field. *)
end

let engine_table : (string * (module ENGINE)) list ref = ref []

let register_engine (module E : ENGINE) =
  if List.mem_assoc E.name !engine_table then
    invalid_arg ("Lp.register_engine: duplicate engine " ^ E.name);
  engine_table := !engine_table @ [ (E.name, (module E : ENGINE)) ]

let engine_names () = List.sort String.compare (List.map fst !engine_table)

let engine_inventory () =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map (fun (n, (module E : ENGINE)) -> (n, E.description)) !engine_table)

let engine_of_name name =
  match List.assoc_opt name !engine_table with
  | Some (module E : ENGINE) -> Some E.selector
  | None -> None

let resolve_engine e =
  List.find_opt (fun (_, (module E : ENGINE)) -> E.handles e) !engine_table

let engine_name e =
  match resolve_engine e with
  | Some (name, _) -> name
  | None -> invalid_arg "Lp.engine_name: engine not registered"

module Revised_engine : ENGINE = struct
  let name = "revised"
  let description = "bounded-variable revised simplex, exact rational pivots (default)"
  let selector = Revised
  let handles = function Revised -> true | _ -> false

  (* Same sparse LU driver as the "sparse" engine (the pivot sequences
     were already identical; the private dense tableau this engine
     carried until 1.8 is gone). The name stays registered so CLI flags,
     protocol requests and goldens keep resolving. *)
  let solve ~engine:_ ~rule ~pricing ~warm ~budget ~obs m =
    let cfg = { default_sparse_config with sparse_pricing = pricing } in
    let pivots = ref 0 in
    match warm with
    | None -> solve_sparse_cold ~cfg ~rule ~budget ~obs ~pivots m
    | Some w -> (
        try solve_sparse_warm ~cfg ~rule ~budget ~obs ~pivots m w
        with RS.Warm_failed -> solve_sparse_cold ~cfg ~rule ~budget ~obs ~pivots m)
end

module Dense_engine : ENGINE = struct
  let name = "dense"
  let description = "two-phase dense tableau, exact rational pivots (reference)"
  let selector = Dense
  let handles = function Dense -> true | _ -> false

  (* The dense tableau prices every column by construction; the pricing
     selector is accepted for interface uniformity and ignored. *)
  let solve ~engine:_ ~rule ~pricing:_ ~warm:_ ~budget ~obs m =
    let pivots = ref 0 in
    solve_dense ~rule ~budget ~obs ~pivots m
end

module Float_engine : ENGINE = struct
  let name = "float"
  let description = "double-precision simplex + exact basis certification, falls back to revised"
  let selector = Float_certified
  let handles = function Float_certified | Float_with _ -> true | _ -> false

  let solve ~engine ~rule ~pricing ~warm ~budget ~obs m =
    let cfg =
      match engine with
      | Float_with c -> c
      | _ -> { default_float_config with float_pricing = pricing }
    in
    solve_float_certified ~cfg ~rule ~warm ~budget ~obs m
end

module Sparse_engine : ENGINE = struct
  let name = "sparse"
  let description = "sparse LU revised simplex with eta updates, exact rational pivots"
  let selector = Sparse
  let handles = function Sparse | Sparse_with _ -> true | _ -> false

  let solve ~engine ~rule ~pricing ~warm ~budget ~obs m =
    let cfg =
      match engine with
      | Sparse_with c -> c
      | _ -> { default_sparse_config with sparse_pricing = pricing }
    in
    let pivots = ref 0 in
    match warm with
    | None -> solve_sparse_cold ~cfg ~rule ~budget ~obs ~pivots m
    | Some w -> (
        try solve_sparse_warm ~cfg ~rule ~budget ~obs ~pivots m w
        with RS.Warm_failed -> solve_sparse_cold ~cfg ~rule ~budget ~obs ~pivots m)
end

let () =
  register_engine (module Revised_engine);
  register_engine (module Dense_engine);
  register_engine (module Float_engine);
  register_engine (module Sparse_engine)

let default_engine = Revised

(* ---------------------------------------------------------------------- *)
(* Warm-basis cache: optimal [Basis.t] snapshots keyed on the model's     *)
(* SHAPE (row/column counts, senses, nonzero pattern — not coefficients   *)
(* or bounds), so structurally identical models re-solve warm across      *)
(* independent [solve] calls. Correctness is free: a warm start           *)
(* refactorizes the actual model and every engine falls back cold on any  *)
(* reuse failure. Opt-in via [install_basis_cache]; consulted only when   *)
(* the caller did not pass its own [?warm] snapshot.                      *)
(* ---------------------------------------------------------------------- *)

let shape_digest m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string_of_int m.nvars);
  Buffer.add_char buf '|';
  Buffer.add_string buf (string_of_int m.nrows);
  for i = 0 to m.nrows - 1 do
    let r = m.rows.(i) in
    Buffer.add_char buf (match r.sense with Le -> 'l' | Ge -> 'g' | Eq -> 'e');
    List.iter
      (fun v ->
        Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int v))
      (List.sort compare (List.map snd r.terms));
    Buffer.add_char buf ';'
  done;
  Obs.digest (Buffer.contents buf)

module Basis_cache = struct
  type t = {
    cap : int;
    tbl : (string, Basis.t) Hashtbl.t;
    order : string Queue.t; (* insertion order, for FIFO eviction *)
    lock : Mutex.t;
    mutable h : int;
    mutable m : int;
  }

  let create ~capacity =
    {
      cap = max 0 capacity;
      tbl = Hashtbl.create 64;
      order = Queue.create ();
      lock = Mutex.create ();
      h = 0;
      m = 0;
    }

  let capacity c = c.cap

  let find c key =
    (* capacity 0 means *disabled*: nothing is ever stored, so lookups
       are a no-op fast path — no lock, and no hit/miss accounting. *)
    if c.cap <= 0 then None
    else begin
      Mutex.lock c.lock;
      let r = Hashtbl.find_opt c.tbl key in
      (match r with Some _ -> c.h <- c.h + 1 | None -> c.m <- c.m + 1);
      Mutex.unlock c.lock;
      r
    end

  let store c key b =
    if c.cap > 0 then begin
      Mutex.lock c.lock;
      if Hashtbl.mem c.tbl key then Hashtbl.replace c.tbl key b
      else begin
        Hashtbl.replace c.tbl key b;
        Queue.push key c.order;
        if Hashtbl.length c.tbl > c.cap then begin
          let victim = Queue.pop c.order in
          Hashtbl.remove c.tbl victim
        end
      end;
      Mutex.unlock c.lock
    end

  let size c =
    Mutex.lock c.lock;
    let v = Hashtbl.length c.tbl in
    Mutex.unlock c.lock;
    v

  let hits c =
    Mutex.lock c.lock;
    let v = c.h in
    Mutex.unlock c.lock;
    v

  let misses c =
    Mutex.lock c.lock;
    let v = c.m in
    Mutex.unlock c.lock;
    v
end

let basis_cache : Basis_cache.t option Atomic.t = Atomic.make None
let install_basis_cache c = Atomic.set basis_cache c
let installed_basis_cache () = Atomic.get basis_cache

let solve ?(rule = Dantzig_with_fallback) ?engine ?pricing ?warm ?budget
    ?(obs = Obs.null) m =
  let engine = Option.value engine ~default:default_engine in
  let pricing = Option.value pricing ~default:default_pricing in
  let budget = match budget with Some b -> b | None -> Budget.unlimited () in
  Obs.incr obs "lp.solves";
  let cache = Atomic.get basis_cache in
  let key =
    match (cache, warm) with Some _, None -> Some (shape_digest m) | _ -> None
  in
  let warm =
    match (cache, key) with Some c, Some k -> Basis_cache.find c k | _ -> warm
  in
  match resolve_engine engine with
  | None -> invalid_arg "Lp.solve: engine not registered (see Lp.engine_names)"
  | Some (_, (module E : ENGINE)) ->
      let r = E.solve ~engine ~rule ~pricing ~warm ~budget ~obs m in
      (match (cache, key, r) with
      | Some c, Some k, Optimal { sol_basis = Some b; _ } -> Basis_cache.store c k b
      | _ -> ());
      r

let objective_value s = s.objective
let value s v = s.var_values.(v)
let values s = Array.to_list (Array.mapi (fun i n -> (n, s.var_values.(i))) s.sol_names)
let pivots s = s.sol_pivots
let tableau_cells s = s.sol_cells
let basis s = s.sol_basis
let certification s = s.sol_certification

let pp_solution fmt s =
  Format.fprintf fmt "objective = %a@." Q.pp s.objective;
  Array.iteri (fun i n -> Format.fprintf fmt "  %s = %a@." n Q.pp s.var_values.(i)) s.sol_names
