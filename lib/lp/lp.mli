(** Linear programming with exact rational results.

    A small modelling layer (named variables with bounds, linear
    constraints, a linear objective) over a registry of pluggable simplex
    engines. Exactness matters here: the paper's LP-rounding algorithm
    (Theorem 2) branches on exact thresholds of the optimal solution
    ([y_t = 1], [y_t >= 1/2], [y_t > 0]), which are ill-defined under
    floating point — so every registered engine must return exact
    rational objectives and vertices, whatever arithmetic it pivots in.

    Four engines ship registered ({!engine_names}):
    - ["revised"] ({!Revised}, the default) — a bounded-variable primal
      simplex with exact rational pivots: variable upper bounds are
      handled implicitly by nonbasic-at-lower/nonbasic-at-upper statuses
      and bound flips, so the basis has one row per constraint and
      artificial variables exist only for rows whose slack cannot start
      basic. Since 1.9 it runs on the same sparse LU driver as
      ["sparse"] (the private dense-algebra tableau it carried through
      1.8 is gone); the name stays registered for CLI flags, protocol
      requests and goldens.
    - ["dense"] ({!Dense}) — the original two-phase tableau simplex with
      every upper bound expanded into an explicit row, kept as the
      reference implementation.
    - ["sparse"] ({!Sparse}) — the bounded-variable simplex over sparse
      basis algebra: the constraint matrix is stored as sparse columns,
      the basis is refactorized as a sparse LU with a fill-minimizing
      ordering, each pivot appends a product-form eta (refactorizing
      when the eta file outgrows the factors), and pricing is one BTRAN
      plus sparse dot products per iteration — O(nnz) work per pivot
      instead of the dense O(rows x columns) elimination. Exact
      rational arithmetic throughout. ["revised"] is an alias for this
      driver, so the two are pivot-identical by construction.
    - ["float"] ({!Float_certified}) — the sparse driver running in
      double precision to find a candidate optimal basis fast, then one
      exact rational LU of that basis proves it (primal feasibility,
      dual feasibility, objective); on any certification failure it
      falls back to the exact revised engine, so its results never
      depend on floating point.

    All engines return the same status and objective value on every
    model (see [prop_engines_agree] and the fuzz differential); the
    optimal vertex may differ when the optimum is not unique.

    Anti-cycling: every engine uses Dantzig pricing while the objective
    strictly improves and falls back to Bland's rule after a bounded
    number of degenerate pivots, which guarantees termination.

    Scale: intended for the LP1/LP2 programs of the active-time model at
    laptop instance sizes (hundreds of variables/constraints), not for
    industrial LPs. *)

type model
type var

(** Row comparison senses. *)
type sense = Le | Ge | Eq

type objective_direction = Minimize | Maximize

(** {1 Model building} *)

val create : unit -> model

(** [add_var m ~lower ?upper name] declares a variable with finite lower
    bound [lower] (default 0) and optional upper bound. Raises
    [Invalid_argument] when [upper < lower]. *)
val add_var : ?lower:Rational.t -> ?upper:Rational.t -> model -> string -> var

val var_name : model -> var -> string
val num_vars : model -> int
val num_constraints : model -> int

(** [set_bounds m v ~lower ~upper] replaces the bounds of an existing
    variable ([upper = None] removes the upper bound). The intended use
    is repeated re-solves of one model under changing bounds (branch and
    bound fixings), typically warm-started from the previous basis.
    Raises [Invalid_argument] on an unknown variable or [upper < lower]. *)
val set_bounds : model -> var -> lower:Rational.t -> upper:Rational.t option -> unit

(** [add_constraint m terms sense rhs] adds [sum(c_i * x_i) sense rhs].
    Duplicate variables in [terms] are summed. *)
val add_constraint : model -> (Rational.t * var) list -> sense -> Rational.t -> unit

(** Replaces any previous objective. Default objective is [Minimize 0]. *)
val set_objective : model -> objective_direction -> (Rational.t * var) list -> unit

(** {1 Solving} *)

type solution

type result = Optimal of solution | Infeasible | Unbounded

(** Pricing rule. [Dantzig_with_fallback] (the default) picks the most
    attractive reduced cost and switches to Bland's rule after a bounded
    number of degenerate pivots; [Pure_bland] always takes the first
    eligible column (fewer comparisons per pivot, usually many more
    pivots — see the ablation experiment). Both terminate. *)
type pivot_rule = Dantzig_with_fallback | Pure_bland

(** Pricing policy for the engines on the sparse basis algebra
    (["revised"], ["sparse"], ["float"]); the dense reference engine
    ignores it. Orthogonal to {!pivot_rule}: the policy chooses {e how
    candidate columns are scanned and scored} while the objective
    improves, and every policy defers to Bland's first-index rule during
    an anti-cycling episode.

    - [Dantzig] (the default) maintains the full reduced-cost row and
      scans every nonbasic column each pivot for the most attractive
      reduced cost — pivot-for-pivot identical to releases before
      1.10.0.
    - [Partial] — candidate-list partial pricing: a bounded queue of
      profitable columns is re-priced against fresh duals each
      iteration; when it runs dry, a rotating sweep over the columns
      refills it. Each pivot prices O(queue + refill) columns instead of
      all of them; optimality is still certified by a sweep that wraps
      the whole column range without finding an eligible candidate.
    - [Devex] — reference-weight approximate steepest edge: columns are
      scored by [d_j^2 / w_j] where the weights [w_j] are updated from
      the pivot row at unit cost per column and the reference framework
      resets when a weight overflows its cap. Usually fewer (never
      guaranteed fewer) pivots than Dantzig on tall models.

    All policies terminate and return identical objectives; the chosen
    vertex and the pivot sequence may differ. *)
type pricing = Sparse_simplex.pricing = Dantzig | Partial | Devex

(** {!Dantzig} — what {!solve} uses when [?pricing] is omitted. *)
val default_pricing : pricing

(** Canonical names: ["dantzig"], ["partial"], ["devex"]. *)
val pricing_name : pricing -> string

(** Inverse of {!pricing_name}; [None] on an unknown name. This is how
    the CLI [--lp-pricing] flag, the registry [pricing] param and the
    serve-protocol [lp_pricing] field resolve. *)
val pricing_of_name : string -> pricing option

(** Valid pricing names, sorted. *)
val pricing_names : unit -> string list

(** [(name, description)] pairs, sorted by name — the
    [--list-solvers]-style inventory. *)
val pricing_inventory : unit -> (string * string) list

(** Engine selector. The type is open so registered engines
    ({!register_engine}) can own their selector constructors, including
    config-carrying ones ({!Float_with}); resolve a CLI/protocol name to
    a selector with {!engine_of_name}. *)
type engine = ..

(** The 1.6 engine spellings, kept as registered selectors: [Revised]
    (the default) is the exact bounded-variable simplex, [Dense] the
    reference two-phase tableau solver.

    @deprecated
      since 1.7.0 these are ordinary registered engines, not the whole
      universe — match on engine names via {!engine_name} instead of on
      these constructors, which will move into their engine modules in a
      future release. *)
type engine += Revised | Dense

(** Tuning knobs for the float-certified engine. *)
type float_config = {
  float_eps : float;  (** reduced-cost / degeneracy tolerance *)
  float_pivot_cap : int option;
      (** give up (and fall back to exact) after this many pivots and
          bound flips; [None] means [64 * (rows + columns) + 1024] *)
  float_pricing : pricing;  (** pricing policy for the float phase *)
}

(** [{ float_eps = 1e-9; float_pivot_cap = None; float_pricing = Dantzig }] *)
val default_float_config : float_config

(** Selectors for the ["float"] engine: double-precision simplex whose
    final basis is certified exactly, with fallback to the exact revised
    engine on certification failure. [Float_certified] uses
    {!default_float_config}; [Float_with] overrides it. *)
type engine += Float_certified | Float_with of float_config

(** Tuning knobs for the sparse engine. *)
type sparse_config = {
  sparse_eta_cap : int;
      (** refactorize after this many product-form eta updates (the
          factorization also refactorizes early when the eta file's
          nonzeros outgrow the LU factors) *)
  sparse_pricing : pricing;  (** pricing policy (see {!pricing}) *)
}

(** [{ sparse_eta_cap = 64; sparse_pricing = Dantzig }] *)
val default_sparse_config : sparse_config

(** Selectors for the ["sparse"] engine: exact rational simplex over
    sparse LU basis algebra with incremental eta updates. [Sparse] uses
    {!default_sparse_config}; [Sparse_with] overrides it. *)
type engine += Sparse | Sparse_with of sparse_config

(** How the returned objective was established. [Exact]: every pivot ran
    in rational arithmetic. [Certified]: a float simplex chose the final
    basis and one exact refactorization proved it optimal — the reported
    objective and vertex come from the exact refactorization, so they
    are bit-identical to what an exact engine returns. [Fallback]: float
    certification failed (or the float phase gave up) and the exact
    revised engine re-solved from scratch. *)
type certification = Exact | Certified | Fallback

(** A basis snapshot for warm-started re-solves: the nonbasic-at-bound /
    basic status of every structural variable and row slack at the
    optimum that produced it. *)
module Basis : sig
  type status = Lower | Upper | Basic

  type t = private {
    b_nvars : int;
    b_nrows : int;
    vstat : status array;
    sstat : status array;
  }
end

(** {1 Engine registry}

    Mirrors [Core.Registry]: engines are first-class modules registered
    under a unique name; {!solve} dispatches on the selector value via
    each engine's [handles] predicate. *)

(** What an engine implements. [solve] receives the selector value the
    caller passed (so config-carrying selectors like {!Float_with} can
    read their payload) and must return exact rational results. *)
module type ENGINE = sig
  val name : string

  val description : string
  (** one line, shown in [atbt --list-solvers] *)

  val selector : engine
  (** canonical selector, returned by {!engine_of_name} *)

  val handles : engine -> bool
  (** recognizes every selector constructor this engine owns *)

  val solve :
    engine:engine ->
    rule:pivot_rule ->
    pricing:pricing ->
    warm:Basis.t option ->
    budget:Budget.t ->
    obs:Obs.t ->
    model ->
    result
  (** [pricing] is the caller's policy default; a config-carrying
      selector ([Sparse_with]/[Float_with]) overrides it with its own
      field, and engines without a pricing seam (dense) ignore it. *)
end

(** Registers an engine. Raises [Invalid_argument] on a duplicate name.
    ["revised"], ["dense"], ["float"] and ["sparse"] are registered at
    load. *)
val register_engine : (module ENGINE) -> unit

(** Registered engine names, sorted. *)
val engine_names : unit -> string list

(** [(name, description)] pairs for every registered engine, sorted by
    name — the [--list-solvers]-style inventory. *)
val engine_inventory : unit -> (string * string) list

(** Canonical selector for a registered engine name, [None] when
    unknown. This is how the CLI [--lp-engine] flag, the registry
    [engine] param and the serve-protocol [lp_engine] field resolve. *)
val engine_of_name : string -> engine option

(** Name of the engine that handles a selector value. Raises
    [Invalid_argument] when no registered engine does. *)
val engine_name : engine -> string

(** {!Revised} — the engine {!solve} uses when [?engine] is omitted. *)
val default_engine : engine

(** Solves the model. The model may be re-solved after adding constraints
    or changing the objective or bounds.

    [engine] selects the simplex implementation (default
    {!default_engine}); raises [Invalid_argument] when no registered
    engine handles the selector.

    [pricing] selects the pricing policy (default {!default_pricing});
    a config-carrying engine selector ([Sparse_with]/[Float_with]) wins
    over this argument, and the dense engine ignores it.

    [warm] (every engine except ["dense"], which ignores it) restores a
    basis snapshot from a previous solution of this model: the basis is
    refactorized and the solve re-enters phase 2 directly when it is
    still primal feasible, or repairs feasibility with a
    bounded-variable dual simplex when only the bounds changed (which
    leaves the reduced costs, hence dual feasibility, intact). The
    ["float"] engine restores the snapshot in double precision and
    certifies whatever basis the warm re-solve ends on, exactly as for a
    cold float solve. When the snapshot cannot be reused — dimensions
    changed, the basis went singular, dual infeasible, or the repair
    exceeds its pivot cap — the solve silently falls back to a cold
    start, so [?warm] never changes results, only work.

    When a {!Basis_cache} is installed and [?warm] is omitted, the cache
    is consulted (and refreshed) automatically, keyed on the model's
    shape digest.

    When [budget] is given, every simplex pivot and bound flip consumes
    one tick of it; on exhaustion the solve aborts by raising
    {!Budget.Out_of_fuel}. A half-pivoted tableau has no meaningful
    incumbent, so unlike the combinatorial solvers there is no
    [Exhausted] result here — callers that want degradation catch the
    exception (see [Active.Cascade]).

    With [obs], records [lp.solves], [lp.pivots], [lp.phase1_pivots],
    [lp.degenerate_pivots], [lp.bound_flips] (revised/sparse only),
    [lp.warm_starts] (warm snapshot successfully reused) and
    [lp.exact_cells] (rational cell operations actually performed by the
    exact engines and by certification — the engine-comparable work
    measure) counters plus [lp.phase1] / [lp.phase2] spans. Engines on
    the sparse basis algebra (revised, sparse, float) additionally record
    [lp.refactorizations] (sparse LU basis factorizations),
    [lp.eta_updates] (product-form eta pivots applied in place of a
    refactorization) and [lp.fill_nonzeros] (total LU nonzeros produced,
    fill included). The exact sparse-algebra engines also record the
    pricing-work counters [lp.priced_columns] (columns whose reduced
    cost was computed or maintained — the measure the partial-pricing
    gate in experiment E26 compares), [lp.candidate_refills] (partial
    pricing refill sweeps) and [lp.devex_resets] (devex reference
    framework resets). The float engine additionally records
    [lp.float_pivots] (double-precision pivots), [lp.certify_ops]
    (rational multiplications/divisions spent in certification),
    [lp.certify_ok], [lp.certify_fail] and [lp.fallbacks] (exact
    re-solves, whether after a failed certification or a float give-up).
    Counters recorded so far survive a {!Budget.Out_of_fuel} abort. *)
val solve :
  ?rule:pivot_rule ->
  ?engine:engine ->
  ?pricing:pricing ->
  ?warm:Basis.t ->
  ?budget:Budget.t ->
  ?obs:Obs.t ->
  model ->
  result

(** Objective value at the returned vertex. *)
val objective_value : solution -> Rational.t

(** Value of a variable at the returned vertex. *)
val value : solution -> var -> Rational.t

(** All values, in declaration order. *)
val values : solution -> (string * Rational.t) list

(** Simplex pivots performed by the solve that produced this solution
    (all phases, including any warm-start dual repair; bound flips are
    not pivots). *)
val pivots : solution -> int

(** Scalar cell operations the solve actually performed: tableau cells
    updated by eliminations for the dense engine, LU / triangular-solve
    / eta / pricing multiplications for the revised and sparse engines,
    and float cells plus exact certification operations for the float
    engine. This is the bench's engine-comparable measure of simplex
    work (experiments E21/E23/E24); before 1.8.0 it reported the static
    tableau area instead. *)
val tableau_cells : solution -> int

(** Basis snapshot for {!solve}'s [?warm] — [None] when the solution was
    produced by the dense engine. *)
val basis : solution -> Basis.t option

(** Provenance of the returned objective (see {!certification}). Exact
    engines return [Exact]; the float engine returns [Certified] when
    its basis certified, [Fallback] when the exact re-solve produced the
    answer. All three carry exact rational results. *)
val certification : solution -> certification

(** {1 Warm-basis cache}

    Optimal basis snapshots keyed on the model's {e shape} — variable
    and row counts, row senses, and the sorted nonzero variable pattern
    of each row, but not coefficients, bounds or objective — so
    structurally identical models (the common case for per-node ILP
    re-solves and repeated serve requests) re-solve warm across
    independent {!solve} calls. Reuse is always safe: a warm start
    refactorizes the actual model and falls back to a cold solve
    whenever the snapshot does not fit. *)

(** Stable shape digest of a model (64-bit FNV-1a, hex) — the cache
    key. *)
val shape_digest : model -> string

module Basis_cache : sig
  type t

  (** [create ~capacity] holds at most [capacity] snapshots, evicting
      the oldest inserted key first. [capacity <= 0] means {e disabled}:
      stores and lookups are no-op fast paths — nothing is ever held,
      {!size}/{!hits}/{!misses} stay [0] and [find] takes no lock.
      Thread-safe. *)
  val create : capacity:int -> t

  val capacity : t -> int

  (** Number of snapshots currently held. *)
  val size : t -> int

  (** Lookups that returned a snapshot / came back empty. *)
  val hits : t -> int

  val misses : t -> int
end

(** [install_basis_cache (Some c)] makes every subsequent {!solve} call
    without an explicit [?warm] consult (and refresh) [c];
    [install_basis_cache None] uninstalls. The cache is process-global
    (atomic swap), matching the registry's global engine table. *)
val install_basis_cache : Basis_cache.t option -> unit

(** Currently installed cache, if any. *)
val installed_basis_cache : unit -> Basis_cache.t option

(** {1 Debugging} *)

val pp_solution : Format.formatter -> solution -> unit
