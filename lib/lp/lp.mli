(** Linear programming with exact rational arithmetic.

    A small modelling layer (named variables with bounds, linear
    constraints, a linear objective) over two exact simplex engines.
    Exactness matters here: the paper's LP-rounding algorithm (Theorem 2)
    branches on exact thresholds of the optimal solution ([y_t = 1],
    [y_t >= 1/2], [y_t > 0]), which are ill-defined under floating point.

    The default {!Revised} engine is a bounded-variable primal simplex:
    variable upper bounds are handled implicitly by
    nonbasic-at-lower/nonbasic-at-upper statuses and bound flips, so the
    tableau has one row per constraint and artificial variables exist
    only for rows whose slack cannot start basic. The {!Dense} engine is
    the original two-phase tableau simplex with every upper bound
    expanded into an explicit row, kept as the reference implementation;
    the two must agree on status and objective value on every model (see
    [prop_engines_agree] and the fuzz differential).

    Anti-cycling: both engines use Dantzig pricing while the objective
    strictly improves and fall back to Bland's rule after a bounded
    number of degenerate pivots, which guarantees termination.

    Scale: intended for the LP1/LP2 programs of the active-time model at
    laptop instance sizes (hundreds of variables/constraints), not for
    industrial LPs. *)

type model
type var

(** Row comparison senses. *)
type sense = Le | Ge | Eq

type objective_direction = Minimize | Maximize

(** {1 Model building} *)

val create : unit -> model

(** [add_var m ~lower ?upper name] declares a variable with finite lower
    bound [lower] (default 0) and optional upper bound. Raises
    [Invalid_argument] when [upper < lower]. *)
val add_var : ?lower:Rational.t -> ?upper:Rational.t -> model -> string -> var

val var_name : model -> var -> string
val num_vars : model -> int
val num_constraints : model -> int

(** [set_bounds m v ~lower ~upper] replaces the bounds of an existing
    variable ([upper = None] removes the upper bound). The intended use
    is repeated re-solves of one model under changing bounds (branch and
    bound fixings), typically warm-started from the previous basis.
    Raises [Invalid_argument] on an unknown variable or [upper < lower]. *)
val set_bounds : model -> var -> lower:Rational.t -> upper:Rational.t option -> unit

(** [add_constraint m terms sense rhs] adds [sum(c_i * x_i) sense rhs].
    Duplicate variables in [terms] are summed. *)
val add_constraint : model -> (Rational.t * var) list -> sense -> Rational.t -> unit

(** Replaces any previous objective. Default objective is [Minimize 0]. *)
val set_objective : model -> objective_direction -> (Rational.t * var) list -> unit

(** {1 Solving} *)

type solution

type result = Optimal of solution | Infeasible | Unbounded

(** Pricing rule. [Dantzig_with_fallback] (the default) picks the most
    attractive reduced cost and switches to Bland's rule after a bounded
    number of degenerate pivots; [Pure_bland] always takes the first
    eligible column (fewer comparisons per pivot, usually many more
    pivots — see the ablation experiment). Both terminate. *)
type pivot_rule = Dantzig_with_fallback | Pure_bland

(** Simplex engine. [Revised] (the default) is the bounded-variable
    simplex; [Dense] is the reference two-phase tableau solver. Both
    return the same status and objective value on every model; the
    optimal vertex may differ when the optimum is not unique. *)
type engine = Revised | Dense

(** A basis snapshot for warm-started re-solves: the nonbasic-at-bound /
    basic status of every structural variable and row slack at the
    optimum that produced it. *)
module Basis : sig
  type status = Lower | Upper | Basic

  type t = private {
    b_nvars : int;
    b_nrows : int;
    vstat : status array;
    sstat : status array;
  }
end

(** Solves the model. The model may be re-solved after adding constraints
    or changing the objective or bounds.

    [engine] selects the simplex implementation (default {!Revised}).

    [warm] (Revised engine only; ignored by [Dense]) restores a basis
    snapshot from a previous solution of this model: the tableau is
    refactorized for that basis and the solve re-enters phase 2 directly
    when the basis is still primal feasible, or repairs feasibility with
    a bounded-variable dual simplex when only the bounds changed (which
    leaves the reduced costs, hence dual feasibility, intact). When the
    snapshot cannot be reused — dimensions changed, the basis went
    singular, dual infeasible, or the repair exceeds its pivot cap — the
    solve silently falls back to a cold start, so [?warm] never changes
    results, only work.

    When [budget] is given, every simplex pivot and bound flip consumes
    one tick of it; on exhaustion the solve aborts by raising
    {!Budget.Out_of_fuel}. A half-pivoted tableau has no meaningful
    incumbent, so unlike the combinatorial solvers there is no
    [Exhausted] result here — callers that want degradation catch the
    exception (see [Active.Cascade]).

    With [obs], records [lp.solves], [lp.pivots], [lp.phase1_pivots],
    [lp.degenerate_pivots], [lp.bound_flips] (Revised only) and
    [lp.warm_starts] (warm snapshot successfully reused) counters plus
    [lp.phase1] / [lp.phase2] spans; counters recorded so far survive a
    {!Budget.Out_of_fuel} abort. *)
val solve :
  ?rule:pivot_rule ->
  ?engine:engine ->
  ?warm:Basis.t ->
  ?budget:Budget.t ->
  ?obs:Obs.t ->
  model ->
  result

(** Objective value at the returned vertex. *)
val objective_value : solution -> Rational.t

(** Value of a variable at the returned vertex. *)
val value : solution -> var -> Rational.t

(** All values, in declaration order. *)
val values : solution -> (string * Rational.t) list

(** Simplex pivots performed by the solve that produced this solution
    (all phases, including any warm-start dual repair; bound flips are
    not pivots). *)
val pivots : solution -> int

(** Area (rows x columns) of the working tableau the engine pivoted on:
    the [Dense] engine's tableau carries one extra row per upper-bounded
    variable plus artificial columns, the [Revised] engine's exactly one
    row per constraint. [pivots * tableau_cells] is the bench's
    engine-comparable measure of simplex work (experiment E21). *)
val tableau_cells : solution -> int

(** Basis snapshot for {!solve}'s [?warm] — [None] when the solution was
    produced by the [Dense] engine. *)
val basis : solution -> Basis.t option

(** {1 Debugging} *)

val pp_solution : Format.formatter -> solution -> unit
