(** Linear programming with exact rational arithmetic.

    A small modelling layer (named variables with bounds, linear
    constraints, a linear objective) over a dense two-phase primal simplex
    solver working in {!Rational} arithmetic. Exactness matters here: the
    paper's LP-rounding algorithm (Theorem 2) branches on exact thresholds
    of the optimal solution ([y_t = 1], [y_t >= 1/2], [y_t > 0]), which are
    ill-defined under floating point.

    Anti-cycling: the solver uses Dantzig pricing while the objective
    strictly improves and falls back to Bland's rule after a bounded number
    of degenerate pivots, which guarantees termination.

    Scale: intended for the LP1/LP2 programs of the active-time model at
    laptop instance sizes (hundreds of variables/constraints), not for
    industrial LPs. *)

type model
type var

(** Row comparison senses. *)
type sense = Le | Ge | Eq

type objective_direction = Minimize | Maximize

(** {1 Model building} *)

val create : unit -> model

(** [add_var m ~lower ?upper name] declares a variable with finite lower
    bound [lower] (default 0) and optional upper bound. Raises
    [Invalid_argument] when [upper < lower]. *)
val add_var : ?lower:Rational.t -> ?upper:Rational.t -> model -> string -> var

val var_name : model -> var -> string
val num_vars : model -> int
val num_constraints : model -> int

(** [add_constraint m terms sense rhs] adds [sum(c_i * x_i) sense rhs].
    Duplicate variables in [terms] are summed. *)
val add_constraint : model -> (Rational.t * var) list -> sense -> Rational.t -> unit

(** Replaces any previous objective. Default objective is [Minimize 0]. *)
val set_objective : model -> objective_direction -> (Rational.t * var) list -> unit

(** {1 Solving} *)

type solution

type result = Optimal of solution | Infeasible | Unbounded

(** Pricing rule. [Dantzig_with_fallback] (the default) picks the most
    negative reduced cost and switches to Bland's rule after a bounded
    number of degenerate pivots; [Pure_bland] always takes the first
    negative column (fewer comparisons per pivot, usually many more
    pivots — see the ablation experiment). Both terminate. *)
type pivot_rule = Dantzig_with_fallback | Pure_bland

(** Pivots performed by the most recent [solve] call (both phases). *)
val last_pivots : int ref

(** Solves the model. The model may be re-solved after adding constraints
    or changing the objective.

    When [budget] is given, every simplex pivot (both phases) consumes
    one tick of it; on exhaustion the solve aborts by raising
    {!Budget.Out_of_fuel}. A half-pivoted tableau has no meaningful
    incumbent, so unlike the combinatorial solvers there is no
    [Exhausted] result here — callers that want degradation catch the
    exception (see [Active.Cascade]).

    With [obs], records [lp.solves], [lp.pivots] and
    [lp.degenerate_pivots] counters plus [lp.phase1] / [lp.phase2] spans
    whose tick cost is the pivot count of each phase; counters recorded
    so far survive an {!Budget.Out_of_fuel} abort. *)
val solve : ?rule:pivot_rule -> ?budget:Budget.t -> ?obs:Obs.t -> model -> result

(** Objective value at the returned vertex. *)
val objective_value : solution -> Rational.t

(** Value of a variable at the returned vertex. *)
val value : solution -> var -> Rational.t

(** All values, in declaration order. *)
val values : solution -> (string * Rational.t) list

(** {1 Debugging} *)

val pp_solution : Format.formatter -> solution -> unit
