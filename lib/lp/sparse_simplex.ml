(* Bounded-variable primal/dual simplex over the sparse LU basis algebra
   (Slu), generic in the scalar (Scalar.S). Instantiated twice by Lp: at
   Rational with zero tolerances it is the exact "sparse" engine; at
   float with epsilon tolerances it is the float engine's pivoting hot
   path (whose proposed basis Lp certifies exactly afterwards).

   Unlike the dense revised engine there is no maintained tableau, only
   a maintained reduced-cost row: it is priced once per phase by one
   BTRAN (y = B^-T c_B) plus one sparse dot product per column, then
   updated after each pivot from the post-pivot tableau row
   (rho = B^-T e_r, alpha_rj = rho . A_j, d_j -= d_q alpha_rj) — work
   proportional to the row's sparse support, not O(m·n). The pivot
   column is one FTRAN (w = B^-1 a_q). Basis changes are product-form
   eta updates with periodic refactorization (Slu.should_refactor).

   The pivot rules mirror the revised engine: Dantzig pricing switching
   to Bland's rule after [degen_threshold] consecutive degenerate
   pivots, ratio-test ties to the smallest basic column index, bound
   flips preferred on equal step length.

   Pricing is a policy seam (the [pricing] config field). [Dantzig] is
   the default above and stays pivot-identical to the revised engine.
   [Partial] is candidate-list partial pricing: a bounded queue of
   profitable columns priced fresh against the current duals each
   iteration (one BTRAN), refilled by a rotating sweep only when it
   runs dry — the maintained reduced-cost row and its per-pivot
   full-width update are skipped entirely. [Devex] keeps the
   maintained row but selects by approximate steepest edge
   d_j^2 / w_j, with reference weights updated from the same
   post-pivot row the maintenance loop already computes and a
   framework reset when a weight outgrows the cap. *)

type pricing = Dantzig | Partial | Devex

type vstat = Vlo | Vhi | Vbas

(* Instance description at the Q level, shared by both scalar
   instantiations (each converts via Scalar.S.of_q). Column layout:
   structurals, then one slack per Le/Ge row in row order, then one
   artificial per infeasible-start row in row order. *)
type spec = {
  sp_nrows : int;
  sp_ncols : int;
  sp_cols : (int * Rational.t) list array;
  sp_lo : Rational.t array;
  sp_hi : Rational.t option array;
  sp_obj : Rational.t array; (* minimization costs; zero beyond structurals *)
  sp_fixed : bool array; (* lower = upper: never enters *)
  sp_art : int; (* first artificial column; sp_ncols when none *)
  sp_stat0 : vstat array;
  sp_basis0 : int array; (* initial basic column per row *)
  sp_xb0 : Rational.t array; (* initial basic values per row *)
  sp_rhs : Rational.t array; (* raw row rhs, for warm restores *)
}

(* Which obs counters an instantiation reports. The exact engine uses
   the lp.pivots family; the float engine counts lp.float_pivots only
   (its pivots are disposable — certification decides what they are
   worth). [c_price] gates the pricing-work family (lp.priced_columns,
   lp.candidate_refills, lp.devex_resets) the same way. *)
type counters = {
  c_pivots : string;
  c_phase1 : bool;
  c_flips : bool;
  c_degen : bool;
  c_warm : bool;
  c_price : bool;
}

type 'a config = {
  dtol : 'a; (* reduced-cost / degeneracy tolerance (exact: 0) *)
  ptol : 'a; (* minimum acceptable |pivot| in ratio tests (exact: 0) *)
  ztol : 'a; (* phase-1 objective above this => infeasible (exact: 0) *)
  eta_cap : int; (* refactorize after this many eta updates *)
  step_cap : int option; (* pivots+flips before giving up (float cap) *)
  bland_always : bool;
  pricing : pricing;
  counters : counters;
}

(* matches Lp.degenerate_pivot_threshold *)
let degen_threshold = 64

module Make (S : Scalar.S) = struct
  module F = Slu.Make (S)

  type problem = {
    pm : int;
    pn : int;
    pcols : F.col array;
    plo : S.t array;
    phi : S.t option array;
    pobj : S.t array;
    pfixed : bool array;
    part : int;
    pstat0 : vstat array;
    pbasis0 : int array;
    pxb0 : S.t array;
    prhs : S.t array;
  }

  let of_spec (sp : spec) : problem =
    {
      pm = sp.sp_nrows;
      pn = sp.sp_ncols;
      pcols =
        Array.map
          (fun l -> F.col_of_list (List.map (fun (r, q) -> (r, S.of_q q)) l))
          sp.sp_cols;
      plo = Array.map S.of_q sp.sp_lo;
      phi = Array.map (Option.map S.of_q) sp.sp_hi;
      pobj = Array.map S.of_q sp.sp_obj;
      pfixed = Array.copy sp.sp_fixed;
      part = sp.sp_art;
      pstat0 = Array.copy sp.sp_stat0;
      pbasis0 = Array.copy sp.sp_basis0;
      pxb0 = Array.map S.of_q sp.sp_xb0;
      prhs = Array.map S.of_q sp.sp_rhs;
    }

  type outcome =
    | Opt of { o_z : S.t; o_stat : vstat array; o_basis : int array; o_xb : S.t array }
    | Infeas
    | Unbd

  exception Gave_up
  exception Warm_failed

  type state = {
    pb : problem;
    cfg : S.t config;
    budget : Budget.t;
    obs : Obs.t;
    pivots : int ref;
    ops : int ref;
    stat : vstat array;
    basis : int array;
    xb : S.t array;
    hi : S.t option array; (* copy: artificials get pinned to [0,0] *)
    enterable : bool array;
    cost : S.t array; (* current phase costs *)
    d : S.t array; (* maintained reduced costs (zero on basics) *)
    priced : int ref; (* columns whose reduced cost was (re)computed *)
    refills : int ref; (* candidate-queue refill sweeps (Partial) *)
    resets : int ref; (* reference-framework resets (Devex) *)
    dw : S.t array; (* devex reference weights (>= 1 on nonbasics) *)
    cand : int array; (* partial-pricing candidate queue *)
    mutable cand_n : int;
    mutable cursor : int; (* rotating refill position *)
    mutable fact : F.fact;
    mutable z : S.t;
    mutable steps : int;
  }

  (* bounded queue: big enough to amortize refill sweeps, small enough
     that re-pricing it each iteration stays far below a full scan *)
  let candidate_capacity n = Stdlib.max 8 (Stdlib.min 64 (n / 8))

  (* devex weights past this trigger a reference-framework reset *)
  let devex_weight_cap = S.of_q (Rational.of_int 1_000_000)

  let flush_pricing st =
    if st.cfg.counters.c_price then begin
      if !(st.priced) > 0 then Obs.add st.obs "lp.priced_columns" !(st.priced);
      if !(st.refills) > 0 then Obs.add st.obs "lp.candidate_refills" !(st.refills);
      if !(st.resets) > 0 then Obs.add st.obs "lp.devex_resets" !(st.resets);
      st.priced := 0;
      st.refills := 0;
      st.resets := 0
    end

  let factor_basis ~ops ~obs pb basis =
    let fact = F.factor ~ops ~nrows:pb.pm ~cols:pb.pcols ~basis in
    Obs.incr obs "lp.refactorizations";
    Obs.add obs "lp.fill_nonzeros" (F.lu_nnz fact);
    fact

  let refactor st = st.fact <- factor_basis ~ops:st.ops ~obs:st.obs st.pb st.basis

  let nb_value st j =
    match st.stat.(j) with
    | Vhi -> ( match st.hi.(j) with Some u -> u | None -> st.pb.plo.(j))
    | _ -> st.pb.plo.(j)

  (* y . A_j over the sparse column *)
  let dot_col st (y : S.t array) j =
    let c = st.pb.pcols.(j) in
    let acc = ref S.zero in
    for idx = 0 to Array.length c.F.rows - 1 do
      let yi = y.(c.F.rows.(idx)) in
      if not (S.is_zero yi) then begin
        incr st.ops;
        acc := S.add !acc (S.mul yi c.F.vals.(idx))
      end
    done;
    !acc

  (* w = B^-1 a_j *)
  let ftran_col st j =
    let b = Array.make st.pb.pm S.zero in
    let c = st.pb.pcols.(j) in
    for idx = 0 to Array.length c.F.rows - 1 do
      b.(c.F.rows.(idx)) <- c.F.vals.(idx)
    done;
    F.ftran st.fact b

  (* y = B^-T c_B *)
  let dual st =
    let cb = Array.init st.pb.pm (fun p -> st.cost.(st.basis.(p))) in
    F.btran st.fact cb

  (* rho = B^-T e_r: row r of B^-1 *)
  let btran_unit st r =
    let e = Array.make st.pb.pm S.zero in
    e.(r) <- S.one;
    F.btran st.fact e

  (* price every column once per phase: d_j = c_j - y . A_j; kept
     current across pivots by the post-pivot row update in run_primal *)
  let compute_reduced st =
    let y = dual st in
    for j = 0 to st.pb.pn - 1 do
      if st.stat.(j) = Vbas then st.d.(j) <- S.zero
      else begin
        incr st.priced;
        st.d.(j) <- S.sub st.cost.(j) (dot_col st y j)
      end
    done

  (* profitable in the feasible direction of j's current bound status *)
  let eligible_d st j d =
    match st.stat.(j) with
    | Vlo -> S.compare d (S.neg st.cfg.dtol) < 0
    | Vhi -> S.compare d st.cfg.dtol > 0
    | Vbas -> false

  (* entering column: nonbasic, enterable, profitable in its feasible
     direction; Dantzig largest |d| (first on ties) or Bland first *)
  let price st ~bland =
    let neg_dtol = S.neg st.cfg.dtol in
    let best = ref None in
    (try
       for j = 0 to st.pb.pn - 1 do
         if st.enterable.(j) && st.stat.(j) <> Vbas then begin
           let d = st.d.(j) in
           let eligible =
             match st.stat.(j) with
             | Vlo -> S.compare d neg_dtol < 0
             | Vhi -> S.compare d st.cfg.dtol > 0
             | Vbas -> false
           in
           if eligible then
             if bland then begin
               best := Some (j, d, S.abs d);
               raise Exit
             end
             else
               let score = S.abs d in
               match !best with
               | Some (_, _, s) when S.compare s score >= 0 -> ()
               | _ -> best := Some (j, d, score)
         end
       done
     with Exit -> ());
    Option.map (fun (j, d, _) -> (j, d)) !best

  (* devex: maximize d_j^2 / w_j over the maintained reduced costs,
     compared by cross-multiplication (weights are >= 1 > 0); first
     column wins ties, matching the Dantzig tie convention *)
  let price_devex st =
    let best = ref None in
    for j = 0 to st.pb.pn - 1 do
      if st.enterable.(j) && st.stat.(j) <> Vbas then begin
        let d = st.d.(j) in
        if eligible_d st j d then begin
          let num = S.mul d d in
          match !best with
          | Some (_, _, bnum, bw) when S.compare (S.mul num bw) (S.mul bnum st.dw.(j)) <= 0 ->
              ()
          | _ -> best := Some (j, d, num, st.dw.(j))
        end
      end
    done;
    Option.map (fun (j, d, _, _) -> (j, d)) !best

  (* Candidate-list partial pricing: one BTRAN per iteration prices the
     bounded queue fresh; entries gone basic or no longer profitable
     drop out. Only when the queue runs dry does a rotating sweep from
     [cursor] refill it — and a full wrap that finds nothing profitable
     is the optimality proof, the same certificate a full Dantzig scan
     gives. Under Bland mode the queue is bypassed entirely: a full
     fresh sweep taking the first eligible index preserves the
     anti-cycling guarantee. *)
  let price_partial st ~bland =
    let n = st.pb.pn in
    let y = dual st in
    let reprice j =
      incr st.priced;
      let d = S.sub st.cost.(j) (dot_col st y j) in
      st.d.(j) <- d;
      d
    in
    if bland then begin
      let r = ref None in
      (try
         for j = 0 to n - 1 do
           if st.enterable.(j) && st.stat.(j) <> Vbas then begin
             let d = reprice j in
             if eligible_d st j d then begin
               r := Some (j, d);
               raise Exit
             end
           end
         done
       with Exit -> ());
      !r
    end
    else begin
      let keep = ref 0 in
      let best = ref None in
      let consider j d =
        let score = S.abs d in
        match !best with
        | Some (_, _, s) when S.compare s score >= 0 -> ()
        | _ -> best := Some (j, d, score)
      in
      for i = 0 to st.cand_n - 1 do
        let j = st.cand.(i) in
        if st.enterable.(j) && st.stat.(j) <> Vbas then begin
          let d = reprice j in
          if eligible_d st j d then begin
            st.cand.(!keep) <- j;
            incr keep;
            consider j d
          end
        end
      done;
      st.cand_n <- !keep;
      (* every surviving entry is profitable, so an empty [best] means
         an empty queue: sweep at most one full wrap for new blood *)
      if !best = None then begin
        incr st.refills;
        let cap = Array.length st.cand in
        let scanned = ref 0 in
        while st.cand_n < cap && !scanned < n do
          let j = st.cursor in
          st.cursor <- (st.cursor + 1) mod n;
          incr scanned;
          if st.enterable.(j) && st.stat.(j) <> Vbas then begin
            let d = reprice j in
            if eligible_d st j d then begin
              st.cand.(st.cand_n) <- j;
              st.cand_n <- st.cand_n + 1;
              consider j d
            end
          end
        done
      end;
      Option.map (fun (j, d, _) -> (j, d)) !best
    end

  let select_entering st ~bland =
    match st.cfg.pricing with
    | Dantzig -> price st ~bland
    | Devex -> if bland then price st ~bland:true else price_devex st
    | Partial -> price_partial st ~bland

  (* append the eta for the basis change at [pos]; refactorize when the
     eta pivot is unusable or the eta file has grown past the policy *)
  let post_pivot st ~pos ~w =
    if F.update st.fact ~pos ~w then begin
      Obs.incr st.obs "lp.eta_updates";
      if F.should_refactor st.fact ~eta_cap:st.cfg.eta_cap then refactor st
    end
    else refactor st

  let step_tick st =
    st.steps <- st.steps + 1;
    (match st.cfg.step_cap with
    | Some cap when st.steps > cap -> raise Gave_up
    | _ -> ());
    Budget.tick st.budget

  type r_outcome = O_opt | O_unbd

  let run_primal st ~phase1 =
    (* per-phase pricing state: fresh candidate queue, fresh reference
       framework (a phase boundary changes every reduced cost anyway) *)
    (match st.cfg.pricing with
    | Dantzig -> ()
    | Partial ->
        st.cand_n <- 0;
        st.cursor <- 0
    | Devex -> Array.fill st.dw 0 (Array.length st.dw) S.one);
    let bland = ref st.cfg.bland_always in
    let stalled = ref 0 in
    let outcome = ref None in
    while !outcome = None do
      match select_entering st ~bland:!bland with
      | None -> outcome := Some O_opt
      | Some (q, d) ->
          let sigma = match st.stat.(q) with Vlo -> 1 | _ -> -1 in
          let span = Option.map (fun u -> S.sub u st.pb.plo.(q)) st.hi.(q) in
          let w = ftran_col st q in
          let best = ref None in
          for p = 0 to st.pb.pm - 1 do
            let coef = w.(p) in
            if S.compare (S.abs coef) st.cfg.ptol > 0 then begin
              let e = if sigma > 0 then coef else S.neg coef in
              let k = st.basis.(p) in
              let limit =
                if S.compare e S.zero > 0 then
                  Some (S.div (S.sub st.xb.(p) st.pb.plo.(k)) e, false)
                else
                  match st.hi.(k) with
                  | Some u -> Some (S.div (S.sub u st.xb.(p)) (S.neg e), true)
                  | None -> None
              in
              match limit with
              | None -> ()
              | Some (ti, to_upper) -> (
                  match !best with
                  | None -> best := Some (p, ti, to_upper)
                  | Some (bp, bt, _) ->
                      let c = S.compare ti bt in
                      if c < 0 || (c = 0 && st.basis.(p) < st.basis.(bp)) then
                        best := Some (p, ti, to_upper))
            end
          done;
          let flip =
            match (span, !best) with
            | None, None -> None (* unbounded *)
            | Some s, None -> Some s
            | Some s, Some (_, bt, _) -> if S.compare s bt <= 0 then Some s else None
            | None, Some _ -> None
          in
          (match (flip, !best) with
          | Some s, _ ->
              step_tick st;
              if st.cfg.counters.c_flips then Obs.incr st.obs "lp.bound_flips";
              let signed = if sigma > 0 then s else S.neg s in
              for p = 0 to st.pb.pm - 1 do
                if not (S.is_zero w.(p)) then begin
                  incr st.ops;
                  st.xb.(p) <- S.submul st.xb.(p) w.(p) signed
                end
              done;
              st.z <- S.add st.z (S.mul d signed);
              st.stat.(q) <- (match st.stat.(q) with Vlo -> Vhi | _ -> Vlo)
          | None, None -> outcome := Some O_unbd
          | None, Some (r, tstep, to_upper) ->
              step_tick st;
              let k = st.basis.(r) in
              let signed = if sigma > 0 then tstep else S.neg tstep in
              let vq = S.add (nb_value st q) signed in
              for p = 0 to st.pb.pm - 1 do
                if p <> r && not (S.is_zero w.(p)) then begin
                  incr st.ops;
                  st.xb.(p) <- S.submul st.xb.(p) w.(p) signed
                end
              done;
              st.z <- S.add st.z (S.mul d signed);
              st.xb.(r) <- vq;
              st.stat.(k) <- (if to_upper then Vhi else Vlo);
              st.stat.(q) <- Vbas;
              st.basis.(r) <- q;
              post_pivot st ~pos:r ~w;
              (match st.cfg.pricing with
              | Partial ->
                  (* no maintained row: the next iteration prices its
                     candidates fresh against the new duals *)
                  st.d.(q) <- S.zero
              | (Dantzig | Devex) as pricing ->
                  (* maintain the reduced-cost row from the post-pivot
                     tableau row r: alpha_rj = rho . A_j,
                     d_j -= d_q alpha_rj (covers the leaving column:
                     its old d was zero). Devex rides the same row:
                     w_j := max(w_j, alpha_rj^2 w_q), with the leaving
                     column re-seeded at the weight floor first. *)
                  let devex = pricing = Devex in
                  let wq = if devex then st.dw.(q) else S.one in
                  if devex then st.dw.(k) <- S.one;
                  let grown = ref false in
                  let rho = btran_unit st r in
                  for j = 0 to st.pb.pn - 1 do
                    if st.stat.(j) <> Vbas then begin
                      incr st.priced;
                      let a = dot_col st rho j in
                      if not (S.is_zero a) then begin
                        incr st.ops;
                        st.d.(j) <- S.submul st.d.(j) d a;
                        if devex then begin
                          let cand = S.mul (S.mul a a) wq in
                          if S.compare cand st.dw.(j) > 0 then begin
                            st.dw.(j) <- cand;
                            if S.compare cand devex_weight_cap > 0 then grown := true
                          end
                        end
                      end
                    end
                  done;
                  st.d.(q) <- S.zero;
                  if devex && !grown then begin
                    Array.fill st.dw 0 (Array.length st.dw) S.one;
                    incr st.resets
                  end);
              incr st.pivots;
              Obs.incr st.obs st.cfg.counters.c_pivots;
              if phase1 && st.cfg.counters.c_phase1 then
                Obs.incr st.obs "lp.phase1_pivots";
              if S.compare tstep st.cfg.dtol <= 0 then begin
                incr stalled;
                if st.cfg.counters.c_degen then Obs.incr st.obs "lp.degenerate_pivots";
                if !stalled > degen_threshold then bland := true
              end
              else stalled := 0)
    done;
    Option.get !outcome

  (* objective value at the current point for the current costs *)
  let recompute_z st =
    let z = ref S.zero in
    for p = 0 to st.pb.pm - 1 do
      let c = st.cost.(st.basis.(p)) in
      if not (S.is_zero c) then z := S.add !z (S.mul c st.xb.(p))
    done;
    for j = 0 to st.pb.pn - 1 do
      if st.stat.(j) <> Vbas && not (S.is_zero st.cost.(j)) then
        z := S.add !z (S.mul st.cost.(j) (nb_value st j))
    done;
    st.z <- !z

  let extract st =
    Opt { o_z = st.z; o_stat = st.stat; o_basis = st.basis; o_xb = st.xb }

  (* Dual simplex repairing primal feasibility from a dual-feasible
     basis after a bound change. Mirrors Lp.dual_repair; raises
     Warm_failed at the pivot cap, returns false when the LP is primal
     infeasible. *)
  let dual_repair st =
    let cfg = st.cfg and pb = st.pb in
    let m = pb.pm and n = pb.pn in
    let cap = (4 * (m + n)) + degen_threshold in
    let steps = ref 0 in
    let feasible = ref true in
    let continue_ = ref true in
    while !continue_ && !feasible do
      (* leaving row: most violated basic value, ties to smallest index *)
      let worst = ref None in
      for p = 0 to m - 1 do
        let k = st.basis.(p) in
        let viol =
          let below = S.sub pb.plo.(k) st.xb.(p) in
          if S.compare below cfg.dtol > 0 then Some (below, true)
          else
            match st.hi.(k) with
            | Some u when S.compare (S.sub st.xb.(p) u) cfg.dtol > 0 ->
                Some (S.sub st.xb.(p) u, false)
            | _ -> None
        in
        match viol with
        | None -> ()
        | Some (v, below) -> (
            match !worst with
            | Some (bp, _, bv)
              when S.compare bv v > 0 || (S.compare bv v = 0 && st.basis.(bp) <= k) ->
                ()
            | _ -> worst := Some (p, below, v))
      done;
      match !worst with
      | None -> continue_ := false (* primal feasible again *)
      | Some (r, below, _) -> (
          if !steps >= cap then raise Warm_failed;
          let rho = btran_unit st r in
          let y = dual st in
          let best = ref None in
          for j = 0 to n - 1 do
            if st.enterable.(j) && st.stat.(j) <> Vbas then begin
              let arj = dot_col st rho j in
              if S.compare (S.abs arj) cfg.ptol > 0 then begin
                let eligible =
                  match (st.stat.(j), below) with
                  | Vlo, true -> S.compare arj S.zero < 0
                  | Vhi, true -> S.compare arj S.zero > 0
                  | Vlo, false -> S.compare arj S.zero > 0
                  | Vhi, false -> S.compare arj S.zero < 0
                  | Vbas, _ -> false
                in
                if eligible then begin
                  let d = S.sub st.cost.(j) (dot_col st y j) in
                  let ratio = S.div (S.abs d) (S.abs arj) in
                  match !best with
                  | Some (_, _, br) when S.compare br ratio <= 0 -> ()
                  | _ -> best := Some (j, d, ratio)
                end
              end
            end
          done;
          match !best with
          | None -> feasible := false (* dual unbounded: primal infeasible *)
          | Some (q, dq, _) ->
              Budget.tick st.budget;
              incr steps;
              let k = st.basis.(r) in
              let beta = if below then pb.plo.(k) else Option.get st.hi.(k) in
              let w = ftran_col st q in
              let delta = S.div (S.sub st.xb.(r) beta) w.(r) in
              let vq = S.add (nb_value st q) delta in
              for p = 0 to m - 1 do
                if p <> r && not (S.is_zero w.(p)) then begin
                  incr st.ops;
                  st.xb.(p) <- S.submul st.xb.(p) w.(p) delta
                end
              done;
              st.z <- S.add st.z (S.mul dq delta);
              st.xb.(r) <- vq;
              st.stat.(k) <- (if below then Vlo else Vhi);
              st.stat.(q) <- Vbas;
              st.basis.(r) <- q;
              post_pivot st ~pos:r ~w;
              incr st.pivots;
              Obs.incr st.obs st.cfg.counters.c_pivots)
    done;
    !feasible

  let fresh_pricing_state n =
    ( ref 0,
      ref 0,
      ref 0,
      Array.make n S.one,
      Array.make (candidate_capacity n) 0 )

  let solve_cold (cfg : S.t config) (pb : problem) ~budget ~obs ~pivots ~ops =
    let m = pb.pm and n = pb.pn in
    let basis = Array.copy pb.pbasis0 in
    let fact = factor_basis ~ops ~obs pb basis in
    let priced, refills, resets, dw, cand = fresh_pricing_state n in
    let st =
      {
        pb;
        cfg;
        budget;
        obs;
        pivots;
        ops;
        stat = Array.copy pb.pstat0;
        basis;
        xb = Array.copy pb.pxb0;
        hi = Array.copy pb.phi;
        enterable = Array.init n (fun j -> not pb.pfixed.(j));
        cost = Array.make n S.zero;
        d = Array.make n S.zero;
        priced;
        refills;
        resets;
        dw;
        cand;
        cand_n = 0;
        cursor = 0;
        fact;
        z = S.zero;
        steps = 0;
      }
    in
    Fun.protect ~finally:(fun () -> flush_pricing st) @@ fun () ->
    let infeasible = ref false in
    if pb.part < n then begin
      (* phase 1: minimize the sum of the artificials *)
      for j = pb.part to n - 1 do
        st.cost.(j) <- S.one
      done;
      if cfg.pricing <> Partial then compute_reduced st;
      let z1 = ref S.zero in
      for p = 0 to m - 1 do
        if st.basis.(p) >= pb.part then z1 := S.add !z1 st.xb.(p)
      done;
      st.z <- !z1;
      (match Obs.span obs "lp.phase1" (fun () -> run_primal st ~phase1:true) with
      | O_unbd -> raise Gave_up (* impossible exactly; float noise only *)
      | O_opt -> if S.compare st.z cfg.ztol > 0 then infeasible := true);
      if not !infeasible then begin
        (* pin artificials to zero and forbid them from re-entering *)
        for j = pb.part to n - 1 do
          st.enterable.(j) <- false;
          st.hi.(j) <- Some S.zero
        done;
        (* drive remaining (zero-valued) basic artificials out *)
        for p = 0 to m - 1 do
          if st.basis.(p) >= pb.part then begin
            let rho = btran_unit st p in
            let found = ref (-1) in
            (try
               for j = 0 to pb.part - 1 do
                 if st.stat.(j) <> Vbas then begin
                   let a = dot_col st rho j in
                   if S.compare (S.abs a) cfg.ptol > 0 then begin
                     found := j;
                     raise Exit
                   end
                 end
               done
             with Exit -> ());
            if !found >= 0 then begin
              (* zero-length pivot: the artificial leaves at 0 *)
              let j = !found in
              let w = ftran_col st j in
              let art = st.basis.(p) in
              st.xb.(p) <- nb_value st j;
              st.stat.(art) <- Vlo;
              st.stat.(j) <- Vbas;
              st.basis.(p) <- j;
              post_pivot st ~pos:p ~w
            end
            (* else: redundant row, artificial stays basic pinned at 0 *)
          end
        done
      end
    end;
    if !infeasible then Infeas
    else begin
      Array.blit pb.pobj 0 st.cost 0 n;
      if cfg.pricing <> Partial then compute_reduced st;
      recompute_z st;
      match Obs.span obs "lp.phase2" (fun () -> run_primal st ~phase1:false) with
      | O_unbd -> Unbd
      | O_opt -> extract st
    end

  (* Warm start from per-column statuses against an artificial-free
     problem (part = pn): sparse refactorization of the snapshot basis,
     straight to phase 2 when still primal feasible, dual repair when
     only primal feasibility was lost. Raises Warm_failed whenever the
     snapshot cannot be reused. *)
  let solve_warm (cfg : S.t config) (pb : problem) ~(stat : vstat array) ~budget
      ~obs ~pivots ~ops =
    let m = pb.pm and n = pb.pn in
    if Array.length stat <> n then raise Warm_failed;
    let nb = ref 0 in
    Array.iter (fun s -> if s = Vbas then incr nb) stat;
    if !nb <> m then raise Warm_failed;
    let basis = Array.make m 0 in
    let bi = ref 0 in
    for j = 0 to n - 1 do
      if stat.(j) = Vbas then begin
        basis.(!bi) <- j;
        incr bi
      end
    done;
    let fact =
      try factor_basis ~ops ~obs pb basis with F.Singular -> raise Warm_failed
    in
    let priced, refills, resets, dw, cand = fresh_pricing_state n in
    let st =
      {
        pb;
        cfg;
        budget;
        obs;
        pivots;
        ops;
        stat = Array.copy stat;
        basis;
        xb = Array.make m S.zero;
        hi = Array.copy pb.phi;
        enterable = Array.init n (fun j -> not pb.pfixed.(j));
        cost = Array.copy pb.pobj;
        d = Array.make n S.zero;
        priced;
        refills;
        resets;
        dw;
        cand;
        cand_n = 0;
        cursor = 0;
        fact;
        z = S.zero;
        steps = 0;
      }
    in
    Fun.protect ~finally:(fun () -> flush_pricing st) @@ fun () ->
    (* x_B = B^-1 (b - sum over nonbasic of A_j x_j) *)
    let rhs = Array.copy pb.prhs in
    for j = 0 to n - 1 do
      if st.stat.(j) <> Vbas then begin
        let v = nb_value st j in
        if not (S.is_zero v) then begin
          let c = pb.pcols.(j) in
          for idx = 0 to Array.length c.F.rows - 1 do
            incr ops;
            rhs.(c.F.rows.(idx)) <- S.submul rhs.(c.F.rows.(idx)) c.F.vals.(idx) v
          done
        end
      end
    done;
    let xb = F.ftran st.fact rhs in
    Array.blit xb 0 st.xb 0 m;
    recompute_z st;
    let primal_feasible =
      let ok = ref true in
      for p = 0 to m - 1 do
        let k = st.basis.(p) in
        if S.compare (S.sub pb.plo.(k) st.xb.(p)) cfg.dtol > 0 then ok := false
        else
          match st.hi.(k) with
          | Some u when S.compare (S.sub st.xb.(p) u) cfg.dtol > 0 -> ok := false
          | _ -> ()
      done;
      !ok
    in
    let proceed =
      if primal_feasible then true
      else begin
        (* dual feasible? (the usual case: only bounds changed) *)
        let y = dual st in
        let dual_ok = ref true in
        for j = 0 to n - 1 do
          if st.enterable.(j) && st.stat.(j) <> Vbas then begin
            let d = S.sub st.cost.(j) (dot_col st y j) in
            match st.stat.(j) with
            | Vlo -> if S.compare d (S.neg cfg.dtol) < 0 then dual_ok := false
            | Vhi -> if S.compare d cfg.dtol > 0 then dual_ok := false
            | Vbas -> ()
          end
        done;
        if not !dual_ok then raise Warm_failed;
        dual_repair st
      end
    in
    if not proceed then Infeas
    else begin
      if cfg.counters.c_warm then Obs.incr obs "lp.warm_starts";
      if cfg.pricing <> Partial then compute_reduced st;
      match Obs.span obs "lp.phase2" (fun () -> run_primal st ~phase1:false) with
      | O_unbd -> Unbd
      | O_opt -> extract st
    end
end
