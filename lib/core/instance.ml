type kind = Active_slotted | Busy_interval | Busy_flexible | Busy_preemptive

let kind_name = function
  | Active_slotted -> "active-slotted"
  | Busy_interval -> "busy-interval"
  | Busy_flexible -> "busy-flexible"
  | Busy_preemptive -> "busy-preemptive"

let all_kinds = [ Active_slotted; Busy_interval; Busy_flexible; Busy_preemptive ]

type t =
  | Slotted of Workload.Slotted.t
  | Interval of { g : int; jobs : Workload.Bjob.t list }
  | Flexible of { g : int; jobs : Workload.Bjob.t list }
  | Preemptive of { g : int; jobs : Workload.Bjob.t list }

let kind = function
  | Slotted _ -> Active_slotted
  | Interval _ -> Busy_interval
  | Flexible _ -> Busy_flexible
  | Preemptive _ -> Busy_preemptive
