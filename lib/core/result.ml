type objective = Slots of int | Busy of Rational.t | Value of Rational.t

let objective_to_string = function
  | Slots n -> string_of_int n
  | Busy q | Value q -> Rational.to_string q

type witness =
  | Opened of { open_slots : int list; schedule : Workload.Slotted.schedule }
  | Packing of Workload.Bjob.t list list

type status = Solved | Infeasible | Exhausted of { spent : int }

type t = {
  status : status;
  objective : objective option;
  witness : witness option;
  note : string option;
  provenance : objective Budget.Cascade.provenance option;
}

let solved ?note ?provenance ?witness objective =
  { status = Solved; objective = Some objective; witness; note; provenance }

let infeasible ?provenance () =
  { status = Infeasible; objective = None; witness = None; note = None; provenance }

let exhausted ?objective ?witness ?provenance ~spent () =
  { status = Exhausted { spent }; objective; witness; note = None; provenance }
