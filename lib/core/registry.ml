let solvers : Solver.t list ref = ref []

let kind_order = function
  | Instance.Active_slotted -> 0
  | Instance.Busy_interval -> 1
  | Instance.Busy_flexible -> 2
  | Instance.Busy_preemptive -> 3

let register (s : Solver.t) =
  if List.exists (fun (r : Solver.t) -> r.Solver.kind = s.Solver.kind && r.Solver.name = s.Solver.name) !solvers
  then
    invalid_arg
      (Printf.sprintf "Registry.register: duplicate solver %s/%s"
         (Instance.kind_name s.Solver.kind) s.Solver.name);
  solvers := s :: !solvers

let by_kind_name (a : Solver.t) (b : Solver.t) =
  match compare (kind_order a.Solver.kind) (kind_order b.Solver.kind) with
  | 0 -> compare a.Solver.name b.Solver.name
  | c -> c

let all () = List.sort by_kind_name !solvers

let of_kind kind =
  List.filter (fun (s : Solver.t) -> s.Solver.kind = kind) (all ())

let find kind name =
  List.find_opt (fun (s : Solver.t) -> s.Solver.name = name) (of_kind kind)

let names kind = List.map (fun (s : Solver.t) -> s.Solver.name) (of_kind kind)

let find_exn kind name =
  match find kind name with
  | Some s -> s
  | None ->
      raise
        (Solver.Unsupported
           (Printf.sprintf "unknown algorithm %s for %s instances (valid: %s)" name
              (Instance.kind_name kind)
              (String.concat "|" (names kind))))

let by_rank_name (a : Solver.t) (b : Solver.t) =
  match compare a.Solver.rank b.Solver.rank with
  | 0 -> compare a.Solver.name b.Solver.name
  | c -> c

let exact kind =
  of_kind kind
  |> List.filter (fun (s : Solver.t) -> s.Solver.quality = Solver.Exact && not s.Solver.composite)
  |> List.sort by_rank_name

let approx kind =
  of_kind kind
  |> List.filter (fun (s : Solver.t) ->
         (match s.Solver.quality with Solver.Approx _ -> true | _ -> false)
         && (not s.Solver.composite) && not s.Solver.online)
  |> List.sort (fun (a : Solver.t) (b : Solver.t) ->
         let ratio (s : Solver.t) =
           match s.Solver.quality with Solver.Approx r -> r | _ -> Rational.zero
         in
         (* worst ratio first; ties broken by rank then name *)
         match Rational.compare (ratio b) (ratio a) with
         | 0 -> by_rank_name a b
         | c -> c)

let cascade_ladder kind =
  of_kind kind
  |> List.filter_map (fun (s : Solver.t) ->
         Option.map (fun (i, label) -> (i, label, s)) s.Solver.cascade_tier)
  |> List.sort (fun (i, _, _) (j, _, _) -> compare i j)
  |> List.map (fun (_, label, s) -> (label, s))
