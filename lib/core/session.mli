(** Reusable warm solver state across a sequence of related instances.

    Before 1.9 the repo grew three ad-hoc incrementality mechanisms,
    each privately wired into a single caller: the {!Lp.Basis_cache}
    warm-start cache (created and installed by the serve daemon), the
    warm residual feasibility oracle ([Active.Feasibility.Oracle],
    owned per solve by the search kernels) and serve's private response
    memo. A session is their shared home. It owns

    - an LP {e warm-basis cache} ({!Lp.Basis_cache}, keyed on
      {!Lp.shape_digest}) that {!with_installed} / {!solve_next} make
      the process-wide cache for the duration of a solve, so every LP
      under the session warm-starts from the last optimal basis of a
      same-shaped model;
    - a heterogeneous set of typed {e slots} for whatever other warm
      state the caller threads across solves — a warm feasibility
      oracle, a pinned LP model, anything — fetched with {!reuse},
      which records warm hits, misses and validation-failure rebuilds;
    - {!Memo}, the bounded FIFO response memo generalized from the
      serve daemon.

    [solve_next] is the composed entry point: registry dispatch, fuel
    budget plus deadline probe, the session's caches installed, and
    [session.*] counters recorded into the caller's [?obs].

    Domain-safety: {!Lp.Basis_cache} and {!Memo} are mutex-protected
    and may be shared across worker domains (the serve daemon does);
    slots are single-domain. *)

type t

(** [create ()] names the session and sizes its LP warm-basis cache
    ([basis_cache] capacity in retained bases, default 64; [0] runs the
    session without one). *)
val create : ?name:string -> ?basis_cache:int -> unit -> t

val name : t -> string

(** {1 Typed slots}

    A slot holds one piece of warm state of an arbitrary type, looked
    up by a typed key. Keys are generative: two [Slot.key ~name:"x" ()]
    calls name {e different} slots, so independent subsystems cannot
    collide. *)

module Slot : sig
  type 'a key

  val key : name:string -> unit -> 'a key
  val key_name : 'a key -> string
end

val find : t -> 'a Slot.key -> 'a option
val set : t -> 'a Slot.key -> 'a -> unit
val remove : t -> 'a Slot.key -> unit

(** Drop every slot (the basis cache is kept — it revalidates by
    shape). *)
val clear : t -> unit

(** [reuse t key ~validate ~build] is the instrumented warm-state
    fetch: a stored value passing [validate] is returned as is
    ([session.warm_hits]); a stored value failing it is rebuilt
    ([session.rebuilds]); an empty slot is built cold
    ([session.warm_misses]). The built value is stored back either
    way. *)
val reuse : ?obs:Obs.t -> t -> 'a Slot.key -> validate:('a -> bool) -> build:(unit -> 'a) -> 'a

(** {1 Response memo}

    Bounded FIFO memo keyed on digest strings — the serve daemon's
    per-request memo, generalized. FIFO (not LRU) keeps eviction O(1)
    and deterministic. Mutex-protected; a capacity [<= 0] memo stores
    nothing and never hits. *)

module Memo : sig
  type 'v t

  val create : capacity:int -> 'v t
  val find : 'v t -> string -> 'v option
  val store : 'v t -> string -> 'v -> unit
  val length : 'v t -> int
end

(** {1 Warm-basis cache} *)

(** The session's LP warm-basis cache, when it has one. *)
val basis_cache : t -> Lp.Basis_cache.t option

(** Cache hits/misses so far (0 without a cache) — the counters behind
    serve's [serve.basis_hits]/[serve.basis_misses]. *)
val basis_hits : t -> int

val basis_misses : t -> int

(** [with_installed t f] runs [f] with the session's basis cache
    installed as the process-wide {!Lp.install_basis_cache} target (so
    [Lp.solve] calls without an explicit [?warm] consult it), restoring
    the previous installation afterwards, exceptions included. Without
    a cache it is just [f ()]. *)
val with_installed : t -> (unit -> 'a) -> 'a

(** {1 Composed solving} *)

(** [solve_next t inst] solves the next instance of the session's
    sequence: resolves [algorithm] (default ["cascade"]) for the
    instance's kind in {!Registry} (raising {!Solver.Unsupported} as
    {!Registry.find_exn} does), composes [deadline] onto [budget] via
    {!Budget.set_deadline} (an unlimited budget is created to carry the
    probe if none is given), and runs the solver under
    {!with_installed}. Records [session.solves] plus the solve's
    warm-basis delta as [session.warm_hits] / [session.warm_misses]
    into [obs]. Budget and deadline exceptions propagate exactly as
    from the underlying solver. *)
val solve_next :
  ?algorithm:string ->
  ?params:(string * string) list ->
  ?budget:Budget.t ->
  ?deadline:(unit -> bool) ->
  ?obs:Obs.t ->
  t ->
  Instance.t ->
  Result.t
