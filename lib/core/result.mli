(** The "result out" half of the solver seam. Every registered solver
    returns this record: a status, the objective value in the model's
    cost type, a checkable schedule witness, an optional human note, and
    — for composite solvers — the {!Budget.Cascade} provenance of the
    degradation ladder. Telemetry is not carried here: solvers thread the
    caller's {!Obs.t} recorder directly, so counters and spans accumulate
    in the caller's document exactly as they did before the registry. *)

(** Objective value. Active time is an integral slot count; busy time an
    exact rational; [Value] is a fractional bound (the LP relaxation)
    that witnesses no schedule. *)
type objective = Slots of int | Busy of Rational.t | Value of Rational.t

(** [Slots n] prints as the int, the rationals via {!Rational.to_string}. *)
val objective_to_string : objective -> string

(** A schedule the model's verifier can check: the open-slot set plus
    job assignment of an active-time solution, or a busy-time packing
    (bundles of interval jobs). Bound-only solvers return no witness. *)
type witness =
  | Opened of { open_slots : int list; schedule : Workload.Slotted.schedule }
  | Packing of Workload.Bjob.t list list

type status =
  | Solved  (** definitive answer; [objective] is set *)
  | Infeasible  (** definitive: no schedule exists *)
  | Exhausted of { spent : int }
      (** the fuel budget ran out after [spent] ticks; [objective] and
          [witness] carry the best incumbent when one exists *)

type t = {
  status : status;
  objective : objective option;
  witness : witness option;
  note : string option;  (** e.g. the structure detected by [auto] *)
  provenance : objective Budget.Cascade.provenance option;
}

val solved :
  ?note:string ->
  ?provenance:objective Budget.Cascade.provenance ->
  ?witness:witness ->
  objective ->
  t

val infeasible : ?provenance:objective Budget.Cascade.provenance -> unit -> t
val exhausted :
  ?objective:objective ->
  ?witness:witness ->
  ?provenance:objective Budget.Cascade.provenance ->
  spent:int ->
  unit ->
  t
