(* Unified warm solver state. See session.mli for the design notes.

   Slots use the extensible-exception universal type: each key carries
   an inject/project pair built from a locally defined exception
   constructor, so a slot table can hold values of distinct types and
   lookups stay type-safe without magic. *)

module Slot = struct
  type 'a key = {
    id : int;
    key_name : string;
    inject : 'a -> exn;
    project : exn -> 'a option;
  }

  let next_id = Atomic.make 0

  let key (type a) ~name () : a key =
    let module M = struct
      exception E of a
    end in
    {
      id = Atomic.fetch_and_add next_id 1;
      key_name = name;
      inject = (fun v -> M.E v);
      project = (function M.E v -> Some v | _ -> None);
    }

  let key_name k = k.key_name
end

type t = {
  name : string;
  slots : (int, exn) Hashtbl.t;
  basis : Lp.Basis_cache.t option;
}

let create ?(name = "session") ?(basis_cache = 64) () =
  {
    name;
    slots = Hashtbl.create 8;
    basis = (if basis_cache > 0 then Some (Lp.Basis_cache.create ~capacity:basis_cache) else None);
  }

let name t = t.name

let find t (k : 'a Slot.key) : 'a option =
  match Hashtbl.find_opt t.slots k.Slot.id with
  | None -> None
  | Some packed -> k.Slot.project packed

let set t (k : 'a Slot.key) (v : 'a) = Hashtbl.replace t.slots k.Slot.id (k.Slot.inject v)
let remove t (k : 'a Slot.key) = Hashtbl.remove t.slots k.Slot.id
let clear t = Hashtbl.reset t.slots

let reuse ?(obs = Obs.null) t key ~validate ~build =
  match find t key with
  | Some v when validate v ->
      Obs.incr obs "session.warm_hits";
      v
  | Some _ ->
      Obs.incr obs "session.rebuilds";
      let v = build () in
      set t key v;
      v
  | None ->
      Obs.incr obs "session.warm_misses";
      let v = build () in
      set t key v;
      v

module Memo = struct
  type 'v t = {
    m : Mutex.t;
    tbl : (string, 'v) Hashtbl.t;
    order : string Queue.t;
    capacity : int;
  }

  let create ~capacity =
    { m = Mutex.create (); tbl = Hashtbl.create 64; order = Queue.create (); capacity }

  let find t key =
    if t.capacity <= 0 then None
    else Mutex.protect t.m (fun () -> Hashtbl.find_opt t.tbl key)

  let store t key v =
    if t.capacity > 0 then
      Mutex.protect t.m (fun () ->
          if not (Hashtbl.mem t.tbl key) then begin
            if Hashtbl.length t.tbl >= t.capacity then begin
              let oldest = Queue.pop t.order in
              Hashtbl.remove t.tbl oldest
            end;
            Hashtbl.replace t.tbl key v;
            Queue.push key t.order
          end)

  let length t = Mutex.protect t.m (fun () -> Hashtbl.length t.tbl)
end

let basis_cache t = t.basis
let basis_hits t = match t.basis with Some bc -> Lp.Basis_cache.hits bc | None -> 0
let basis_misses t = match t.basis with Some bc -> Lp.Basis_cache.misses bc | None -> 0

let with_installed t f =
  match t.basis with
  | None -> f ()
  | Some _ ->
      let previous = Lp.installed_basis_cache () in
      Lp.install_basis_cache t.basis;
      Fun.protect ~finally:(fun () -> Lp.install_basis_cache previous) f

let solve_next ?(algorithm = "cascade") ?params ?budget ?deadline ?(obs = Obs.null) t inst =
  let solver = Registry.find_exn (Instance.kind inst) algorithm in
  let budget =
    match (budget, deadline) with
    | Some b, _ -> Some b
    | None, Some _ -> Some (Budget.unlimited ())
    | None, None -> None
  in
  (match (budget, deadline) with
  | Some b, Some probe -> Budget.set_deadline b probe
  | _ -> ());
  Obs.incr obs "session.solves";
  let h0 = basis_hits t and m0 = basis_misses t in
  let record () =
    Obs.add obs "session.warm_hits" (basis_hits t - h0);
    Obs.add obs "session.warm_misses" (basis_misses t - m0)
  in
  Fun.protect ~finally:record (fun () ->
      with_installed t (fun () -> solver.Solver.solve ?budget ~obs ?params inst))
