(** A first-class solver: the capability-typed record every algorithm in
    [lib/active] and [lib/busy] registers with {!Registry}. The [solve]
    closure wraps the module's existing [solve ?budget ?obs] entry point
    unchanged — the record adds the metadata (problem kind, quality,
    capability flags, cascade tier, paper reference) that the CLI, bench,
    fuzz oracle and cascades previously duplicated by hand. *)

(** Raised by [solve] when a precondition fails: wrong instance kind, a
    structural restriction ([unit], [laminar], ...) not met, or a missing
    budget where one is mandatory. The CLI maps it to a usage error. *)
exception Unsupported of string

(** Raised when a solver's answer fails its own verifier (solvers that
    self-check, e.g. the preemptive greedy). The CLI maps it to an
    internal error. *)
exception Bad_result of string

(** Solution quality: provably optimal, within a proven factor of
    optimal, a lower bound only (no schedule), or no proven offline
    ratio (the online algorithms, whose competitive ratio depends
    on [g]). *)
type quality = Exact | Approx of Rational.t | Bound | Heuristic

val quality_to_string : quality -> string

type t = {
  name : string;  (** CLI name, unique per kind ([--algorithm <name>]) *)
  kind : Instance.kind;
  quality : quality;
  online : bool;
  preemptive : bool;
  supports_budget : bool;  (** accepts [?budget] and reports exhaustion *)
  supports_parallel : bool;  (** has an opt-in parallel mode *)
  composite : bool;  (** dispatches to other registered solvers *)
  restriction : string option;
      (** human description of a structural precondition, when any *)
  guard : Instance.t -> string option;
      (** [None] when the solver applies to the instance; [Some why]
          otherwise. [solve] raises {!Unsupported} in the latter case;
          callers that iterate the registry use [guard] to skip. *)
  cascade_tier : (int * string) option;
      (** position and tier label in the kind's degradation ladder; the
          labels are the historical cascade vocabulary (["lp-rounding"],
          not the CLI name ["rounding"]) pinned by tests and docs *)
  rank : int;  (** display/tie-break order among equal-quality solvers *)
  exhausted_hint : string;
      (** message stem when the budget runs out, e.g.
          ["exact search ran out of budget"] *)
  paper : string;  (** paper artifact, matching PAPER_MAP.md *)
  impl : string;  (** implementing module, e.g. ["Active.Exact"] *)
  solve :
    ?budget:Budget.t ->
    ?obs:Obs.t ->
    ?params:(string * string) list ->
    Instance.t ->
    Result.t;
}

(** All flags default to [false] / [None] / rank [max_int];
    [exhausted_hint] defaults to ["search ran out of budget"]. The
    default [guard] only checks the instance kind. *)
val make :
  name:string ->
  kind:Instance.kind ->
  quality:quality ->
  ?online:bool ->
  ?preemptive:bool ->
  ?supports_budget:bool ->
  ?supports_parallel:bool ->
  ?composite:bool ->
  ?restriction:string ->
  ?guard:(Instance.t -> string option) ->
  ?cascade_tier:int * string ->
  ?rank:int ->
  ?exhausted_hint:string ->
  paper:string ->
  impl:string ->
  solve:
    (?budget:Budget.t ->
    ?obs:Obs.t ->
    ?params:(string * string) list ->
    Instance.t ->
    Result.t) ->
  unit ->
  t

(** Comma-joined capability tokens in a fixed order
    ([online], [preemptive], [budget], [parallel], [composite],
    [tier:<i>], [restricted]) — the FLAGS column of [--list-solvers];
    ["-"] when none apply. *)
val flags_to_string : t -> string
