(** The central solver registry. Solver modules self-register at
    link time (the [Register] modules of [lib/active] / [lib/busy], kept
    alive by [-linkall]); the CLI, bench, fuzz oracle and cascades
    resolve solvers from here instead of hand-rolled dispatch.

    All query results are deterministically ordered — by kind (model
    order), then name — regardless of registration (link) order, so
    golden outputs built on the registry are stable. *)

(** Raises [Invalid_argument] when a solver with the same (kind, name)
    is already registered. *)
val register : Solver.t -> unit

(** Every registered solver, sorted by (kind, name). *)
val all : unit -> Solver.t list

val find : Instance.kind -> string -> Solver.t option

(** Raises {!Solver.Unsupported} with the valid-name list when absent. *)
val find_exn : Instance.kind -> string -> Solver.t

(** Registered names for a kind, sorted. *)
val names : Instance.kind -> string list

(** Solvers of a kind, sorted by name. *)
val of_kind : Instance.kind -> Solver.t list

(** Exact solvers of a kind (non-composite), sorted by (rank, name). *)
val exact : Instance.kind -> Solver.t list

(** Approximation solvers of a kind (non-composite, offline), sorted
    worst ratio first, then (rank, name) — the order the differential
    oracle and the bench survey tables iterate. *)
val approx : Instance.kind -> Solver.t list

(** The kind's degradation ladder: every solver carrying a
    [cascade_tier], sorted by tier position, as (tier label, solver)
    pairs. *)
val cascade_ladder : Instance.kind -> (string * Solver.t) list
