exception Unsupported of string
exception Bad_result of string

type quality = Exact | Approx of Rational.t | Bound | Heuristic

let quality_to_string = function
  | Exact -> "exact"
  | Approx r -> Printf.sprintf "approx(%s)" (Rational.to_string r)
  | Bound -> "bound"
  | Heuristic -> "heuristic"

type t = {
  name : string;
  kind : Instance.kind;
  quality : quality;
  online : bool;
  preemptive : bool;
  supports_budget : bool;
  supports_parallel : bool;
  composite : bool;
  restriction : string option;
  guard : Instance.t -> string option;
  cascade_tier : (int * string) option;
  rank : int;
  exhausted_hint : string;
  paper : string;
  impl : string;
  solve :
    ?budget:Budget.t ->
    ?obs:Obs.t ->
    ?params:(string * string) list ->
    Instance.t ->
    Result.t;
}

let make ~name ~kind ~quality ?(online = false) ?(preemptive = false)
    ?(supports_budget = false) ?(supports_parallel = false) ?(composite = false) ?restriction
    ?guard ?cascade_tier ?(rank = max_int) ?(exhausted_hint = "search ran out of budget")
    ~paper ~impl ~solve () =
  let guard =
    match guard with
    | Some g -> g
    | None ->
        fun inst ->
          if Instance.kind inst = kind then None
          else
            Some
              (Printf.sprintf "%s expects a %s instance" name (Instance.kind_name kind))
  in
  {
    name;
    kind;
    quality;
    online;
    preemptive;
    supports_budget;
    supports_parallel;
    composite;
    restriction;
    guard;
    cascade_tier;
    rank;
    exhausted_hint;
    paper;
    impl;
    solve;
  }

let flags_to_string s =
  let flags =
    List.filter_map
      (fun x -> x)
      [
        (if s.online then Some "online" else None);
        (if s.preemptive then Some "preemptive" else None);
        (if s.supports_budget then Some "budget" else None);
        (if s.supports_parallel then Some "parallel" else None);
        (if s.composite then Some "composite" else None);
        Option.map (fun (i, _) -> Printf.sprintf "tier:%d" i) s.cascade_tier;
        (if s.restriction <> None then Some "restricted" else None);
      ]
  in
  match flags with [] -> "-" | _ -> String.concat "," flags
