(** The canonical "instance in" half of the solver seam: one typed sum
    over the problem models of the paper (and its related work), so that
    every solver — CLI, bench, fuzz oracle, cascade tier — receives the
    same value and the dispatchers stop pattern-matching on strings.

    The four models:

    - {e active-slotted} (§1.1, §2–3): slotted jobs with windows,
      capacity [g] per open slot, minimize the number of open slots.
    - {e busy-interval} (§4.1–4.2): real-time jobs already pinned to
      their interval, capacity [g] per machine, minimize total busy time.
    - {e busy-flexible} (§4.3): real-time jobs with slack in their
      windows; a placement pins them before an interval algorithm runs.
    - {e busy-preemptive} (§4.4): jobs may be split across machines and
      time; Theorems 6/7. *)

type kind = Active_slotted | Busy_interval | Busy_flexible | Busy_preemptive

(** The stable CLI/doc spelling: ["active-slotted"], ["busy-interval"],
    ["busy-flexible"], ["busy-preemptive"]. *)
val kind_name : kind -> string

(** In display order (the order of the constructors above). *)
val all_kinds : kind list

type t =
  | Slotted of Workload.Slotted.t  (** active-slotted *)
  | Interval of { g : int; jobs : Workload.Bjob.t list }
      (** busy-interval: every job must satisfy {!Workload.Bjob.is_interval} *)
  | Flexible of { g : int; jobs : Workload.Bjob.t list }
      (** busy-flexible: windows may be loose *)
  | Preemptive of { g : int; jobs : Workload.Bjob.t list }
      (** busy-preemptive *)

val kind : t -> kind
