(** Fault injection for the serve daemon: probabilistic worker crashes,
    solve delays (deadline blowouts) and request-line corruption, driven
    by a seeded deterministic PRNG so injected runs replay byte for
    byte. Armed by [atbt serve --inject SPEC] or [ATBT_INJECT]; {!none}
    (the default) injects nothing and costs nothing.

    Spec grammar (comma-separated, all fields optional):
    [crash=P,delay=MS@P,corrupt=P,seed=N] — probabilities in [0,1],
    [delay=MS] alone means probability 1. *)

(** Raised inside a worker when a crash fires; exercises the same
    isolation path as any real solver exception. *)
exception Injected_fault of string

type t

val none : t

(** [true] iff this config can never fire. *)
val is_none : t -> bool

(** Raises [Invalid_argument] on probabilities outside [0,1] or a
    negative delay. *)
val make :
  ?crash:float -> ?delay_ms:int -> ?delay:float -> ?corrupt:float -> ?seed:int -> unit -> t

(** Parse a spec string ([crash=0.1,delay=50@0.3,corrupt=0.05,seed=42]). *)
val parse : string -> (t, string) result

(** Config from [ATBT_INJECT] (unset or empty means {!none}). *)
val of_env : unit -> (t, string) result

(** Draw from the PRNG: should this request's worker crash? *)
val should_crash : t -> bool

(** Draw: delay this solve by [Some ms]? *)
val delay_ms : t -> int option

(** Draw: [Some mutated] (byte overwrites / inserts / truncations, never
    a newline — a corrupted request stays exactly one line) or [None] to
    pass the line through untouched. *)
val corrupt_line : t -> string -> string option
