(** Bounded blocking MPMC queue — the serve daemon's backpressure valve.

    The producer offers with the non-blocking {!try_push} and must shed
    (answer ["overloaded"]) when it returns [false]; consumers block in
    {!pop}. After {!close}, already-queued items are still drained —
    every accepted request gets exactly one response — and [pop] then
    returns [None] so workers exit cleanly. *)

type 'a t

(** Raises [Invalid_argument] when [capacity < 1]. *)
val create : capacity:int -> 'a t

(** [false] when the queue is full (shed now) or closed. Never blocks. *)
val try_push : 'a t -> 'a -> bool

(** Blocks until an item is available; [None] once the queue is closed
    {e and} drained. *)
val pop : 'a t -> 'a option

(** Idempotent; wakes every blocked consumer. *)
val close : 'a t -> unit

val length : 'a t -> int
