(* The serve wire protocol: line-delimited JSON, one request line in,
   exactly one schema-1 response line out, in request order.

   Request (all fields except "instance" optional):

     {"id": 7,                      -- echoed verbatim; default: line number
      "command": "active"|"busy",   -- default: inferred from the instance
      "instance": "slotted\ng 2\njob 0 0 4 2\n",   -- Workload.Io text
      "algorithm": "cascade",       -- a registered solver name
      "g": 2,                       -- busy-model capacity (default 2)
      "budget": 100000,             -- fuel ticks (default: daemon config)
      "deadline_ms": 50,            -- wall-clock deadline from arrival
      "lp_engine": "float",         -- a registered Lp engine name
      "lp_pricing": "devex",        -- a registered Lp pricing policy
      "params": {"order": "l2r"}}   -- solver params, string values

   Response statuses: "ok" (solved), "degraded" (answered after budget
   exhaustion — a lower cascade tier or an unproven incumbent),
   "infeasible", "timeout" (deadline expired), "error" (malformed
   request, unknown algorithm, or an isolated worker fault), and
   "overloaded" (shed by backpressure before solving). *)

module J = Obs.Json
module Io = Workload.Io
module CI = Core.Instance

let version = "1.10.0"

type command = Active | Busy

type request = {
  id : J.t;
  command : command;
  instance : Io.instance;
  instance_text : string;  (* canonical Io rendering, the memo/digest key *)
  algorithm : string;
  g : int;
  budget : int option;
  deadline_ms : int option;
  params : (string * string) list;
}

(* The response minus its per-delivery fields (id, cache, elapsed) —
   what the memo cache stores, so a hit replays the whole answer. *)
type core = {
  status : string;
  algorithm_used : string option;
  instance_json : J.t;
  cost : J.t;
  message : string option;
  provenance : J.t;
  ticks : int;
}

let error_core ?(ticks = 0) msg =
  {
    status = "error";
    algorithm_used = None;
    instance_json = J.Null;
    cost = J.Null;
    message = Some msg;
    provenance = J.Null;
    ticks;
  }

let overloaded_core =
  {
    status = "overloaded";
    algorithm_used = None;
    instance_json = J.Null;
    cost = J.Null;
    message = Some "request shed: queue full";
    provenance = J.Null;
    ticks = 0;
  }

(* ------------------------------------------------------------- decode -- *)

let ( let* ) = Result.bind

let field_string name = function
  | J.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S must be a string" name)

let field_int name = function
  | J.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S must be an integer" name)

let opt_field name conv doc =
  match J.member name doc with
  | None | Some J.Null -> Ok None
  | Some v -> Result.map Option.some (conv name v)

(* Canonical params: drop duplicate keys (first occurrence wins, matching
   what List.assoc gives the solvers), then sort by key. Requests whose
   params differ only in JSON field order decode identically, so they
   share a memo-cache key. *)
let canonical_params kvs =
  let rec dedupe seen = function
    | [] -> []
    | (k, _) :: rest when List.mem k seen -> dedupe seen rest
    | (k, v) :: rest -> (k, v) :: dedupe (k :: seen) rest
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (dedupe [] kvs)

let decode ~seq doc =
  match doc with
  | J.Obj _ ->
      let id = Option.value (J.member "id" doc) ~default:(J.Int seq) in
      let* text =
        match J.member "instance" doc with
        | Some v -> field_string "instance" v
        | None -> Error "missing field \"instance\""
      in
      let* instance =
        match Io.parse_string text with
        | inst -> Ok inst
        | exception Io.Parse_error (l, msg) ->
            Error (Printf.sprintf "instance line %d: %s" l msg)
      in
      let inferred = match instance with Io.Slotted_instance _ -> Active | Io.Busy_instance _ -> Busy in
      let* command =
        match J.member "command" doc with
        | None | Some J.Null -> Ok inferred
        | Some (J.String "active") ->
            if inferred = Active then Ok Active
            else Error "command \"active\" needs a slotted instance"
        | Some (J.String "busy") ->
            if inferred = Busy then Ok Busy
            else Error "command \"busy\" needs a busy-time instance"
        | Some (J.String other) -> Error (Printf.sprintf "unknown command %S (active|busy)" other)
        | Some _ -> Error "field \"command\" must be a string"
      in
      let* algorithm = opt_field "algorithm" field_string doc in
      let algorithm = Option.value algorithm ~default:"cascade" in
      let* g = opt_field "g" field_int doc in
      let g = Option.value g ~default:2 in
      let* () = if g >= 1 then Ok () else Error "field \"g\" must be at least 1" in
      let* budget = opt_field "budget" field_int doc in
      let* () =
        match budget with
        | Some b when b < 0 -> Error "field \"budget\" must be nonnegative"
        | _ -> Ok ()
      in
      let* deadline_ms = opt_field "deadline_ms" field_int doc in
      let* () =
        match deadline_ms with
        | Some d when d < 0 -> Error "field \"deadline_ms\" must be nonnegative"
        | _ -> Ok ()
      in
      let* raw_params =
        match J.member "params" doc with
        | None | Some J.Null -> Ok []
        | Some (J.Obj kvs) ->
            List.fold_left
              (fun acc (k, v) ->
                let* acc = acc in
                let* v = field_string ("params." ^ k) v in
                Ok ((k, v) :: acc))
              (Ok []) kvs
            |> Result.map List.rev
        | Some _ -> Error "field \"params\" must be an object of strings"
      in
      let* lp_engine = opt_field "lp_engine" field_string doc in
      let* () =
        match lp_engine with
        | None -> Ok ()
        | Some e when Lp.engine_of_name e <> None -> Ok ()
        | Some e ->
            Error
              (Printf.sprintf "unknown lp_engine %S (%s)" e
                 (String.concat "|" (Lp.engine_names ())))
      in
      let* lp_pricing = opt_field "lp_pricing" field_string doc in
      let* () =
        match lp_pricing with
        | None -> Ok ()
        | Some p when Lp.pricing_of_name p <> None -> Ok ()
        | Some p ->
            Error
              (Printf.sprintf "unknown lp_pricing %S (%s)" p
                 (String.concat "|" (Lp.pricing_names ())))
      in
      (* lp_engine / lp_pricing are sugar for params.engine /
         params.pricing; prepending them before the first-wins dedupe
         makes them take precedence, and they land in the canonical
         params — hence in the memo-cache key. *)
      let params =
        let raw =
          match lp_pricing with Some p -> ("pricing", p) :: raw_params | None -> raw_params
        in
        canonical_params
          (match lp_engine with Some e -> ("engine", e) :: raw | None -> raw)
      in
      Ok
        {
          id;
          command;
          instance;
          instance_text = Io.to_string instance;
          algorithm;
          g;
          budget;
          deadline_ms;
          params;
        }
  | _ -> Error "request must be a JSON object"

let decode_line ~seq line =
  match J.parse line with
  | Error msg -> Error ("request is not valid JSON: " ^ msg)
  | Ok doc -> decode ~seq doc

(* ------------------------------------------------------------- encode -- *)

let instance_json (req : request) =
  let digest = Obs.digest req.instance_text in
  match req.instance with
  | Io.Slotted_instance inst ->
      J.Obj
        [ ("digest", J.String digest);
          ("kind", J.String "slotted");
          ("jobs", J.Int (Workload.Slotted.num_jobs inst));
          ("g", J.Int inst.Workload.Slotted.g) ]
  | Io.Busy_instance jobs ->
      J.Obj
        [ ("digest", J.String digest);
          ("kind", J.String "busy");
          ("jobs", J.Int (List.length jobs));
          ("g", J.Int req.g) ]

(* the memo key: everything that determines the answer, nothing that
   doesn't (id and deadline are delivery concerns, not answer inputs).
   [req.params] is already canonical — deduped and key-sorted at decode
   — so field order on the wire cannot split the key. *)
let cache_key (req : request) =
  let b = Buffer.create 128 in
  Buffer.add_string b (match req.command with Active -> "active\x00" | Busy -> "busy\x00");
  Buffer.add_string b req.algorithm;
  Buffer.add_char b '\x00';
  Buffer.add_string b (string_of_int req.g);
  Buffer.add_char b '\x00';
  Buffer.add_string b (match req.budget with Some n -> string_of_int n | None -> "-");
  Buffer.add_char b '\x00';
  List.iter
    (fun (k, v) ->
      Buffer.add_string b k; Buffer.add_char b '='; Buffer.add_string b v; Buffer.add_char b '\x00')
    req.params;
  Buffer.add_string b req.instance_text;
  Obs.digest (Buffer.contents b)

let to_json ?elapsed_us ~id ~cache (core : core) =
  let opt_str = function Some s -> J.String s | None -> J.Null in
  J.Obj
    ([ ("schema", J.Int 1);
       ("tool", J.String "atbt");
       ("version", J.String version);
       ("command", J.String "serve");
       ("id", id);
       ("status", J.String core.status);
       ("algorithm", opt_str core.algorithm_used);
       ("instance", core.instance_json);
       ("cost", core.cost);
       ("message", opt_str core.message);
       ("provenance", core.provenance);
       ("cache", opt_str cache);
       ("ticks", J.Int core.ticks) ]
    @ match elapsed_us with Some us -> [ ("elapsed_us", J.Int us) ] | None -> [])

let to_line ?elapsed_us ~id ~cache core = J.to_string (to_json ?elapsed_us ~id ~cache core)
