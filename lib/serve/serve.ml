(* The batched solve daemon. One reader (the calling domain) decodes
   request lines and feeds a bounded queue; [config.domains] worker
   domains drain it, solve under [Pool.run_isolated], and submit their
   responses to an ordered emitter so output order always matches input
   order regardless of which worker finishes first.

   The invariant everything here serves: one request line in, exactly
   one well-formed response line out, and no fault — malformed line,
   solver exception, exhausted budget, expired deadline, injected crash,
   shed request — ever takes the daemon down with it. *)

module Bqueue = Bqueue
module Inject = Inject
module Protocol = Protocol
module J = Obs.Json
module CI = Core.Instance
module CR = Core.Result
module CS = Core.Solver
module Io = Workload.Io
module Q = Rational
module B = Workload.Bjob

type config = {
  domains : int;
  queue_capacity : int;
  default_budget : int option;
  cache_capacity : int;
  basis_cache_capacity : int;
  inject : Inject.t;
  timing : bool;
  now : unit -> float;
  sleep : float -> unit;
}

let default_config () =
  {
    domains = Parallel.Pool.default_domains ();
    queue_capacity = 64;
    default_budget = Some 500_000;
    cache_capacity = 1024;
    basis_cache_capacity = 64;
    inject = Inject.none;
    timing = false;
    now = Unix.gettimeofday;
    sleep = Unix.sleepf;
  }

(* ------------------------------------------------------------- stats -- *)

(* Counters shared across domains. Obs recorders are single-domain, so
   the daemon keeps its own atomics and merges them into the caller's
   [?obs] once the workers have joined. *)
module Stats = struct
  let names =
    [ "requests"; "responses"; "parse_errors"; "shed";
      "cache_hits"; "cache_misses";
      "injected_crashes"; "injected_delays"; "injected_corruptions";
      "status.ok"; "status.degraded"; "status.infeasible";
      "status.timeout"; "status.error"; "status.overloaded" ]

  type t = (string * int Atomic.t) list

  let create () : t = List.map (fun n -> (n, Atomic.make 0)) names

  let incr (t : t) name =
    match List.assoc_opt name t with
    | Some a -> Atomic.incr a
    | None -> invalid_arg ("Serve.Stats.incr: unknown counter " ^ name)

  let merge (t : t) obs =
    List.iter (fun (n, a) -> Obs.add obs ("serve." ^ n) (Atomic.get a)) t
end

(* ---------------------------------------------------------- memo cache -- *)

(* Bounded FIFO memo of [Protocol.core] answers keyed on the request
   digest — [Core.Session.Memo], which this cache used to be before the
   session layer absorbed it in 1.9. *)
module Cache = Core.Session.Memo

(* ------------------------------------------------------ ordered output -- *)

(* Reorder buffer: workers finish in any order, responses leave in
   sequence order. Every line number is submitted exactly once (by the
   reader for parse errors and shed requests, by a worker otherwise),
   so the buffer always drains. *)
module Emitter = struct
  type t = {
    m : Mutex.t;
    mutable next : int;
    pending : (int, string) Hashtbl.t;
    emit : string -> unit;
  }

  let create emit = { m = Mutex.create (); next = 0; pending = Hashtbl.create 16; emit }

  let submit t seq line =
    Mutex.protect t.m (fun () ->
        Hashtbl.replace t.pending seq line;
        let rec flush () =
          match Hashtbl.find_opt t.pending t.next with
          | Some l ->
              Hashtbl.remove t.pending t.next;
              t.emit l;
              t.next <- t.next + 1;
              flush ()
          | None -> ()
        in
        flush ())
end

(* ------------------------------------------------------------ solving -- *)

let objective_json = function
  | CR.Slots n -> J.Int n
  | CR.Busy q | CR.Value q -> J.String (Q.to_string q)

let provenance_json = function
  | None -> J.Null
  | Some p -> Budget.Cascade.provenance_to_json ~cost_to_json:objective_json p

let degraded_provenance = function
  | None -> false
  | Some (p : CR.objective Budget.Cascade.provenance) ->
      List.exists
        (fun (a : Budget.Cascade.attempt) -> a.Budget.Cascade.status = Budget.Cascade.Tier_exhausted)
        p.Budget.Cascade.attempts

(* Run the registered solver for [req], verifying any witness it
   returns. Raises (Unsupported, Bad_result, Deadline_exceeded,
   Injected_fault, or a genuine solver bug) — the caller isolates. *)
let solve_request cfg (req : Protocol.request) budget =
  if Inject.should_crash cfg.inject then
    raise (Inject.Injected_fault "injected worker crash");
  match req.Protocol.command with
  | Protocol.Active ->
      let inst =
        match req.Protocol.instance with
        | Io.Slotted_instance inst -> inst
        | Io.Busy_instance _ -> assert false (* decode inferred the command *)
      in
      let solver = Core.Registry.find_exn CI.Active_slotted req.Protocol.algorithm in
      let r = solver.CS.solve ~budget ~params:req.Protocol.params (CI.Slotted inst) in
      (match (r.CR.status, r.CR.witness) with
      | CR.Solved, Some (CR.Opened { open_slots; schedule }) -> (
          match Active.Solution.verify inst { Active.Solution.open_slots; schedule } with
          | None -> ()
          | Some problem -> raise (CS.Bad_result ("invalid solution: " ^ problem)))
      | _ -> ());
      (solver, r)
  | Protocol.Busy ->
      let jobs =
        match req.Protocol.instance with
        | Io.Busy_instance jobs -> jobs
        | Io.Slotted_instance _ -> assert false
      in
      let pinned = Busy.Pipeline.place Busy.Pipeline.Greedy_placement jobs in
      let solver = Core.Registry.find_exn CI.Busy_interval req.Protocol.algorithm in
      let r =
        solver.CS.solve ~budget ~params:req.Protocol.params
          (CI.Interval { g = req.Protocol.g; jobs = pinned })
      in
      (match (r.CR.status, r.CR.witness) with
      | CR.Solved, Some (CR.Packing packing) -> (
          match Busy.Bundle.check ~g:req.Protocol.g pinned packing with
          | None -> ()
          | Some problem -> raise (CS.Bad_result ("invalid packing: " ^ problem)))
      | _ -> ());
      (solver, r)

(* Map a finished solve onto a response core. [deadline_hit] is the
   probe's flag: when it fired, the answer (whatever shape the unwinding
   left — an infeasible cascade result carrying the partial attempt
   list, usually) is reported as a timeout, with that provenance. *)
let core_of_result (req : Protocol.request) budget ~deadline_hit (solver : CS.t) (r : CR.t) =
  let instance_json = Protocol.instance_json req in
  let algorithm_used = Some req.Protocol.algorithm in
  let ticks =
    (* composite solvers burn fresh per-tier budgets, not the request
       budget — their spend lives in the provenance attempts *)
    match r.CR.provenance with
    | Some p when p.Budget.Cascade.attempts <> [] ->
        List.fold_left
          (fun acc (a : Budget.Cascade.attempt) -> acc + a.Budget.Cascade.ticks)
          0 p.Budget.Cascade.attempts
    | _ -> Budget.spent budget
  in
  let prov = provenance_json r.CR.provenance in
  let mk status cost message =
    { Protocol.status; algorithm_used; instance_json; cost; message; provenance = prov; ticks }
  in
  if deadline_hit then
    mk "timeout" J.Null
      (Some
         (match req.Protocol.deadline_ms with
         | Some ms -> Printf.sprintf "deadline of %dms expired after %d ticks" ms ticks
         | None -> Printf.sprintf "deadline expired after %d ticks" ticks))
  else
    match r.CR.status with
    | CR.Solved ->
        let cost = match r.CR.objective with Some o -> objective_json o | None -> J.Null in
        let status = if degraded_provenance r.CR.provenance then "degraded" else "ok" in
        mk status cost r.CR.note
    | CR.Infeasible -> mk "infeasible" J.Null r.CR.note
    | CR.Exhausted { spent } -> (
        match r.CR.objective with
        | Some obj ->
            mk "degraded" (objective_json obj)
              (Some
                 (Printf.sprintf "%s after %d ticks; best incumbent kept"
                    solver.CS.exhausted_hint spent))
        | None ->
            mk "error" J.Null
              (Some (Printf.sprintf "%s after %d ticks" solver.CS.exhausted_hint spent)))

let timeout_core (req : Protocol.request) budget =
  let ticks = Budget.spent budget in
  {
    Protocol.status = "timeout";
    algorithm_used = Some req.Protocol.algorithm;
    instance_json = Protocol.instance_json req;
    cost = J.Null;
    message =
      Some
        (match req.Protocol.deadline_ms with
        | Some ms -> Printf.sprintf "deadline of %dms expired after %d ticks" ms ticks
        | None -> Printf.sprintf "deadline expired after %d ticks" ticks);
    provenance = J.Null;
    ticks;
  }

let fault_core (req : Protocol.request) budget exn =
  let message =
    match exn with
    | Inject.Injected_fault m -> "worker fault: " ^ m
    | CS.Unsupported m -> m
    | CS.Bad_result m -> "internal: " ^ m
    | e -> "worker fault: " ^ Printexc.to_string e
  in
  {
    Protocol.status = "error";
    algorithm_used = Some req.Protocol.algorithm;
    instance_json = Protocol.instance_json req;
    cost = J.Null;
    message = Some message;
    provenance = J.Null;
    ticks = Budget.spent budget;
  }

(* The empty busy instance has busy time 0 and needs no solver (several
   interval solvers reject empty job lists) — same special case the CLI
   makes. *)
let empty_busy_core (req : Protocol.request) =
  {
    Protocol.status = "ok";
    algorithm_used = Some req.Protocol.algorithm;
    instance_json = Protocol.instance_json req;
    cost = J.String (Q.to_string Q.zero);
    message = None;
    provenance = J.Null;
    ticks = 0;
  }

let cacheable (core : Protocol.core) =
  match core.Protocol.status with "ok" | "degraded" | "infeasible" -> true | _ -> false

(* Handle one accepted request on a worker domain. Returns the response
   core plus its cache disposition. Never raises: the solve itself runs
   under [Pool.run_isolated], and everything around it is total. *)
let handle cfg stats cache ~arrival (req : Protocol.request) =
  let key = Protocol.cache_key req in
  match Cache.find cache key with
  | Some core ->
      Stats.incr stats "cache_hits";
      (core, Some "hit")
  | None ->
      Stats.incr stats "cache_misses";
      (match Inject.delay_ms cfg.inject with
      | Some ms ->
          Stats.incr stats "injected_delays";
          cfg.sleep (float_of_int ms /. 1000.0)
      | None -> ());
      let budget =
        match (req.Protocol.budget, cfg.default_budget) with
        | Some n, _ -> Budget.limited n
        | None, Some n -> Budget.limited n
        | None, None -> Budget.unlimited ()
      in
      let deadline_hit = ref false in
      (match req.Protocol.deadline_ms with
      | Some ms ->
          let expiry = arrival +. (float_of_int ms /. 1000.0) in
          Budget.set_deadline budget (fun () ->
              let expired = cfg.now () >= expiry in
              if expired then deadline_hit := true;
              expired)
      | None -> ());
      let is_empty_busy =
        match (req.Protocol.command, req.Protocol.instance) with
        | Protocol.Busy, Io.Busy_instance [] -> true
        | _ -> false
      in
      let core =
        if is_empty_busy then empty_busy_core req
        else
          match Parallel.Pool.run_isolated (fun () -> solve_request cfg req budget) with
          | Ok (solver, r) -> core_of_result req budget ~deadline_hit:!deadline_hit solver r
          | Error Budget.Deadline_exceeded -> timeout_core req budget
          | Error exn ->
              (match exn with
              | Inject.Injected_fault _ -> Stats.incr stats "injected_crashes"
              | _ -> ());
              fault_core req budget exn
      in
      if cacheable core then Cache.store cache key core;
      (core, Some "miss")

(* -------------------------------------------------------------- daemon -- *)

type job = { seq : int; arrival : float; request : Protocol.request }

(* [started] is when processing began (dequeue on a worker, read time on
   the reader's own error paths): elapsed_us is service time, excluding
   queue wait, so cold-vs-memoized comparisons measure the solve. *)
let respond cfg stats (emitter : Emitter.t) ~seq ~started ~id ~cache (core : Protocol.core) =
  Stats.incr stats "responses";
  Stats.incr stats ("status." ^ core.Protocol.status);
  let elapsed_us =
    if cfg.timing then Some (int_of_float ((cfg.now () -. started) *. 1e6)) else None
  in
  Emitter.submit emitter seq (Protocol.to_line ?elapsed_us ~id ~cache core)

let run_stream ?(obs = Obs.null) ?config ~next_line ~emit () =
  let cfg = match config with Some c -> c | None -> default_config () in
  let stats = Stats.create () in
  let cache = Cache.create ~capacity:cfg.cache_capacity in
  (* The daemon's warm state is one [Core.Session]: its LP warm-basis
     cache (shared across the worker domains — the Lp-side cache is
     mutex-protected) lets repeated solves of same-shape models warm
     start off the last optimal basis instead of running phase 1 cold.
     [with_installed] restores the previous installation on exit so
     runs compose. *)
  let session = Core.Session.create ~name:"serve" ~basis_cache:cfg.basis_cache_capacity () in
  let emitter = Emitter.create emit in
  let queue : job Bqueue.t = Bqueue.create ~capacity:(max 1 cfg.queue_capacity) in
  (* The response channel is the one dependency no structured response
     can route around: if [emit] raises (closed stdout, broken pipe),
     the client can no longer hear any answer. That fault shuts the
     daemon down in an orderly way instead of escaping a worker domain
     and re-raising from Domain.join: the first failure is recorded,
     the queue closes so every worker drains and exits, the reader
     stops, and the caller gets the exception back after the join. *)
  let output_failure = Atomic.make None in
  let output_dead () = Atomic.get output_failure <> None in
  let respond_or_fail ~seq ~started ~id ~cache:dispo core =
    if not (output_dead ()) then
      try respond cfg stats emitter ~seq ~started ~id ~cache:dispo core
      with exn ->
        if Atomic.compare_and_set output_failure None (Some exn) then Bqueue.close queue
  in
  let worker () =
    let rec loop () =
      match Bqueue.pop queue with
      | None -> ()
      | Some { seq; arrival; request } ->
          if output_dead () then loop () (* just drain: nobody can hear answers *)
          else begin
            let started = cfg.now () in
            let core, cache_disposition =
              (* [handle] is total, but a bug in the response path itself
                 must not kill the worker either: belt and braces. *)
              match Parallel.Pool.run_isolated (fun () -> handle cfg stats cache ~arrival request) with
              | Ok v -> v
              | Error exn ->
                  (Protocol.error_core ("worker fault: " ^ Printexc.to_string exn), None)
            in
            respond_or_fail ~seq ~started ~id:request.Protocol.id
              ~cache:cache_disposition core;
            loop ()
          end
    in
    loop ()
  in
  Core.Session.with_installed session @@ fun () ->
  let workers = List.init (max 1 cfg.domains) (fun _ -> Domain.spawn worker) in
  let rec read seq =
    if output_dead () then ()
    else
      match next_line () with
      | None -> ()
      | Some line ->
          Stats.incr stats "requests";
          let arrival = cfg.now () in
          let line =
            match Inject.corrupt_line cfg.inject line with
            | Some mutated ->
                Stats.incr stats "injected_corruptions";
                mutated
            | None -> line
          in
          let decoded =
            (* decode_line promises totality (the parser-fuzz target is
               the gate); this is the reader's belt and braces — a
               decoder bug must answer "error", not kill the daemon *)
            try Protocol.decode_line ~seq line
            with exn -> Error ("request decode raised: " ^ Printexc.to_string exn)
          in
          (match decoded with
          | Error msg ->
              Stats.incr stats "parse_errors";
              respond_or_fail ~seq ~started:arrival ~id:(J.Int seq) ~cache:None
                (Protocol.error_core msg)
          | Ok request ->
              if not (Bqueue.try_push queue { seq; arrival; request }) then begin
                Stats.incr stats "shed";
                respond_or_fail ~seq ~started:arrival ~id:request.Protocol.id ~cache:None
                  Protocol.overloaded_core
              end);
          read (seq + 1)
  in
  read 0;
  Bqueue.close queue;
  List.iter Domain.join workers;
  Stats.merge stats obs;
  (match Core.Session.basis_cache session with
  | Some _ ->
      Obs.add obs "serve.basis_hits" (Core.Session.basis_hits session);
      Obs.add obs "serve.basis_misses" (Core.Session.basis_misses session)
  | None -> ());
  Atomic.get output_failure

let run ?obs ?config ic oc =
  (* a client that hangs up must surface as Sys_error (EPIPE) on the
     next write — the orderly-shutdown path above — not kill the whole
     process with SIGPIPE before the guard can see it *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let next_line () = match input_line ic with line -> Some line | exception End_of_file -> None in
  let emit line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  match run_stream ?obs ?config ~next_line ~emit () with
  | None -> 0
  | Some exn ->
      Printf.eprintf "atbt serve: response stream failed: %s\n%!" (Printexc.to_string exn);
      (* the channel is dead; drop its buffered residue now so the
         runtime's at-exit flush cannot re-raise out of the process
         (flush on a closed channel is a documented no-op) *)
      close_out_noerr oc;
      1

let run_lines ?obs ?config lines =
  let remaining = ref lines in
  let collected = ref [] in
  let m = Mutex.create () in
  let next_line () =
    match !remaining with
    | [] -> None
    | line :: rest ->
        remaining := rest;
        Some line
  in
  let emit line = Mutex.protect m (fun () -> collected := line :: !collected) in
  (match run_stream ?obs ?config ~next_line ~emit () with
  | None -> ()
  | Some exn -> raise exn (* a list push cannot fail; surface the bug *));
  List.rev !collected
