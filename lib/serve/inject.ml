(* Fault injection for the serve daemon. Armed by `--inject SPEC` or the
   ATBT_INJECT environment variable; off by default and free when off.

   Three fault classes, mirroring the failure modes the daemon must
   survive: worker crashes (a raised exception mid-solve), deadline
   blowouts (a sleep before the solve, so any armed deadline expires),
   and corrupted request lines (byte-level mutation before parsing).

   All randomness is a seeded splitmix64 stream behind a mutex, so an
   injected run is reproducible: same spec (including seed), same
   faults, byte for byte — the fault-injection suite and the serve cram
   test pin exact outputs this way. *)

exception Injected_fault of string

type t = {
  crash : float;  (* probability a worker raises instead of solving *)
  delay_ms : int;  (* sleep applied before solving ... *)
  delay : float;  (* ... with this probability *)
  corrupt : float;  (* probability a request line is mutated *)
  seed : int;
  state : int64 ref;
  m : Mutex.t;
}

let none =
  { crash = 0.0; delay_ms = 0; delay = 0.0; corrupt = 0.0; seed = 0; state = ref 0L; m = Mutex.create () }

let is_none t = t.crash = 0.0 && t.delay = 0.0 && t.corrupt = 0.0

let make ?(crash = 0.0) ?(delay_ms = 0) ?(delay = 0.0) ?(corrupt = 0.0) ?(seed = 0) () =
  let bad p = p < 0.0 || p > 1.0 in
  if bad crash || bad delay || bad corrupt then
    invalid_arg "Inject.make: probabilities must be in [0,1]";
  if delay_ms < 0 then invalid_arg "Inject.make: negative delay";
  {
    crash;
    delay_ms;
    delay;
    corrupt;
    seed;
    state = ref (Int64.add (Int64.of_int seed) 0x9e3779b97f4a7c15L);
    m = Mutex.create ();
  }

(* splitmix64: tiny, dependency-free, well-mixed — the same generator
   family the fuzz harness uses for reproducible streams *)
let next_int64 t =
  Mutex.protect t.m (fun () ->
      let z = Int64.add !(t.state) 0x9e3779b97f4a7c15L in
      t.state := z;
      let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
      let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
      Int64.logxor z (Int64.shift_right_logical z 31))

let uniform t =
  (* 53 random bits -> [0,1) *)
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) /. 9007199254740992.0

let bits t n = Int64.to_int (Int64.logand (next_int64 t) (Int64.of_int (n - 1))) mod n

let fires t p = p > 0.0 && uniform t < p

let should_crash t = fires t t.crash

let delay_ms t = if t.delay_ms > 0 && fires t t.delay then Some t.delay_ms else None

(* Mutate a request line: overwrite, insert or delete a few bytes.
   Printable replacement bytes and no newlines, so a corrupted request
   is still exactly one line — one line in, one response out, even under
   injection. *)
let corrupt_line t line =
  if not (fires t t.corrupt) then None
  else begin
    let b = Buffer.create (String.length line + 4) in
    Buffer.add_string b line;
    let edits = 1 + bits t 3 in
    for _ = 1 to edits do
      let len = Buffer.length b in
      let c = Char.chr (33 + bits t 94) in
      match bits t 3 with
      | 0 when len > 0 ->
          (* overwrite one byte *)
          let s = Bytes.of_string (Buffer.contents b) in
          Bytes.set s (bits t len) c;
          Buffer.clear b;
          Buffer.add_bytes b s
      | 1 ->
          (* insert one byte *)
          let pos = if len = 0 then 0 else bits t (len + 1) in
          let s = Buffer.contents b in
          Buffer.clear b;
          Buffer.add_string b (String.sub s 0 pos);
          Buffer.add_char b c;
          Buffer.add_string b (String.sub s pos (String.length s - pos))
      | _ when len > 0 ->
          (* truncate the tail *)
          let keep = bits t len in
          let s = String.sub (Buffer.contents b) 0 keep in
          Buffer.clear b;
          Buffer.add_string b s
      | _ -> ()
    done;
    Some (Buffer.contents b)
  end

(* spec grammar: comma-separated k=v; e.g.
     crash=0.1,delay=50@0.3,corrupt=0.05,seed=42
   delay takes MS or MS@P (probability defaults to 1.0) *)
let parse spec =
  let crash = ref 0.0 and delay_ms = ref 0 and delay = ref 0.0 and corrupt = ref 0.0 and seed = ref 0 in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let prob what v =
    match float_of_string_opt v with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok p
    | _ -> err "invalid %s probability %S (want a float in [0,1])" what v
  in
  let parse_field field =
    match String.index_opt field '=' with
    | None -> err "invalid inject field %S (want key=value)" field
    | Some i -> (
        let k = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        match k with
        | "crash" -> Result.map (fun p -> crash := p) (prob "crash" v)
        | "corrupt" -> Result.map (fun p -> corrupt := p) (prob "corrupt" v)
        | "seed" -> (
            match int_of_string_opt v with
            | Some s -> Ok (seed := s)
            | None -> err "invalid inject seed %S" v)
        | "delay" -> (
            let ms, p =
              match String.index_opt v '@' with
              | None -> (v, "1.0")
              | Some j -> (String.sub v 0 j, String.sub v (j + 1) (String.length v - j - 1))
            in
            match int_of_string_opt ms with
            | Some ms when ms >= 0 ->
                Result.map (fun p -> delay_ms := ms; delay := p) (prob "delay" p)
            | _ -> err "invalid inject delay %S (want MS or MS@P)" v)
        | _ -> err "unknown inject key %S (crash|delay|corrupt|seed)" k)
  in
  let rec go = function
    | [] -> Ok (make ~crash:!crash ~delay_ms:!delay_ms ~delay:!delay ~corrupt:!corrupt ~seed:!seed ())
    | f :: rest -> ( match parse_field f with Ok () -> go rest | Error m -> Error m)
  in
  go (String.split_on_char ',' spec |> List.filter (fun s -> s <> ""))

let of_env () =
  match Sys.getenv_opt "ATBT_INJECT" with
  | None | Some "" -> Ok none
  | Some spec -> parse spec
