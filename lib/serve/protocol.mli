(** The serve wire protocol: line-delimited JSON requests, one schema-1
    JSON response per request (see README "The serve protocol" for the
    field-by-field schema).

    Request fields: ["instance"] (required, a {!Workload.Io} text blob),
    and optional ["id"] (echoed; defaults to the line number),
    ["command"] (["active"]|["busy"], inferred from the instance),
    ["algorithm"] (default ["cascade"]), ["g"], ["budget"],
    ["deadline_ms"], ["params"].

    Response statuses: ["ok"], ["degraded"], ["infeasible"],
    ["timeout"], ["error"], ["overloaded"]. *)

(** Tool/protocol version carried by every response (and by the [atbt]
    binary itself). *)
val version : string

type command = Active | Busy

type request = {
  id : Obs.Json.t;
  command : command;
  instance : Workload.Io.instance;
  instance_text : string;  (** canonical rendering — digest and memo key *)
  algorithm : string;
  g : int;
  budget : int option;
  deadline_ms : int option;
  params : (string * string) list;
}

(** A response minus its per-delivery fields (id, cache disposition,
    elapsed time) — the unit the memo cache stores and replays. *)
type core = {
  status : string;
  algorithm_used : string option;
  instance_json : Obs.Json.t;
  cost : Obs.Json.t;
  message : string option;
  provenance : Obs.Json.t;
  ticks : int;
}

val error_core : ?ticks:int -> string -> core
val overloaded_core : core

(** Decode a parsed request document. [seq] (the 0-based line number)
    becomes the default [id]. Total: any document yields [Ok] or a
    human-readable [Error]. *)
val decode : seq:int -> Obs.Json.t -> (request, string) result

(** [decode_line]: JSON-parse then {!decode}; never raises. *)
val decode_line : seq:int -> string -> (request, string) result

(** The instance sub-document (digest, kind, jobs, g) of a response. *)
val instance_json : request -> Obs.Json.t

(** Memo key: digest over command, algorithm, [g], budget, params and
    the canonical instance text — everything that determines the answer.
    [id] and [deadline_ms] are delivery concerns and excluded. *)
val cache_key : request -> string

val to_json : ?elapsed_us:int -> id:Obs.Json.t -> cache:string option -> core -> Obs.Json.t

(** One response line (no trailing newline). *)
val to_line : ?elapsed_us:int -> id:Obs.Json.t -> cache:string option -> core -> string
