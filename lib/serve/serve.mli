(** The resilient batched solve daemon behind [atbt serve].

    Reads line-delimited JSON requests (see {!Protocol}), dispatches each
    through {!Core.Registry} on a supervised worker-domain pool, and
    writes exactly one schema-1 JSON response line per request line, in
    request order — under worker crashes, budget exhaustion, expired
    deadlines, malformed input and injected faults alike. The daemon
    process never dies with a request: every fault becomes a structured
    response ([error], [degraded], [timeout], [overloaded]).

    Resilience mechanisms, in the order a request meets them:

    - {e corruption / parse errors}: request lines are decoded totally
      ({!Protocol.decode_line}); a bad line answers [status "error"]
      with the parse diagnostic and the stream continues.
    - {e backpressure}: accepted requests enter a bounded {!Bqueue};
      when it is full the request is shed immediately with
      [status "overloaded"] rather than queued without bound.
    - {e memoization}: answers for repeated (instance, algorithm,
      budget, params) keys replay from a bounded FIFO cache keyed on the
      {!Obs.digest} of the request ([serve.cache_hits] /
      [serve.cache_misses] count the traffic).
    - {e deadlines}: [deadline_ms] arms a wall-clock probe on the
      request's fuel budget ({!Budget.set_deadline}); expiry unwinds the
      solve and answers [status "timeout"], with the cascade's partial
      attempt list as provenance when the composite solver was running.
    - {e fault isolation}: the solve runs under
      {!Parallel.Pool.run_isolated} on a worker domain; any exception —
      a solver bug or an {!Inject.Injected_fault} — becomes a
      [status "error"] response and the worker survives to take the
      next request.
    - {e output failure}: when the response channel itself dies there
      is no one left to answer, so the daemon shuts down in order —
      queue closed, workers drained and joined — and reports the fault
      to its caller ({!run} returns 1) instead of crashing out of a
      worker domain. *)

module Bqueue = Bqueue
module Inject = Inject
module Protocol = Protocol

type config = {
  domains : int;  (** worker domains (clamped to at least 1) *)
  queue_capacity : int;  (** bounded request queue — the shed threshold *)
  default_budget : int option;
      (** fuel for requests that do not send ["budget"]; [None] means
          unlimited *)
  cache_capacity : int;  (** memo entries kept (FIFO eviction); 0 disables *)
  basis_cache_capacity : int;
      (** LP warm-basis cache entries ({!Lp.Basis_cache}, FIFO eviction,
          shared across the worker domains): solves of same-shape LP
          models warm start off the last optimal basis. 0 disables;
          [serve.basis_hits] / [serve.basis_misses] count the traffic. *)
  inject : Inject.t;  (** fault injection, {!Inject.none} by default *)
  timing : bool;  (** add [elapsed_us] (service time in microseconds, queue
                      wait excluded) to responses (off: deterministic
                      output for golden tests) *)
  now : unit -> float;  (** the wall clock — overridable for fake-clock
                            deadline tests *)
  sleep : float -> unit;  (** how injected delays wait — overridable *)
}

(** domains = {!Parallel.Pool.default_domains}, queue 64, default budget
    [Some 500_000], cache 1024, basis cache 64, no injection, no timing,
    real clock. *)
val default_config : unit -> config

(** [run ic oc] serves until EOF on [ic]; returns 0 (individual request
    failures are responses, not daemon failures). The single exception:
    when writing to [oc] itself fails (closed stdout, broken pipe), no
    response can reach the client at all — the daemon shuts down in
    order (queue closed, workers drained and joined), reports the fault
    on stderr, and returns 1. To make that path reachable on POSIX,
    [run] sets [SIGPIPE] to ignore for the process, so a hung-up client
    surfaces as [Sys_error] instead of a fatal signal. With [?obs],
    [serve.*] counters (requests,
    responses, per-status counts, cache hits/misses, basis-cache
    hits/misses, injected faults) merge into the recorder at exit. *)
val run : ?obs:Obs.t -> ?config:config -> in_channel -> out_channel -> int

(** Transport-agnostic core behind {!run} and {!run_lines}: pull request
    lines with [next_line], write response lines with [emit]. Returns
    [None] on clean stream end; [Some exn] when [emit] raised — the one
    fault a structured response cannot route around, handled as an
    orderly shutdown rather than an escaping exception. *)
val run_stream :
  ?obs:Obs.t ->
  ?config:config ->
  next_line:(unit -> string option) ->
  emit:(string -> unit) ->
  unit ->
  exn option

(** Pure-list harness for tests and bench: feed request lines, collect
    response lines (same order guarantees as {!run}). *)
val run_lines : ?obs:Obs.t -> ?config:config -> string list -> string list
