(* Bounded blocking MPMC queue: the daemon's backpressure valve. The
   producer (the request reader) uses the non-blocking [try_push] and
   sheds with a structured "overloaded" response when it returns false,
   so a slow solver can never grow the queue without bound; consumers
   (the worker domains) block in [pop] until an item or [close]. *)

type 'a t = {
  buf : 'a Queue.t;
  capacity : int;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be positive";
  { buf = Queue.create (); capacity; m = Mutex.create (); nonempty = Condition.create (); closed = false }

let try_push q x =
  Mutex.protect q.m (fun () ->
      if q.closed || Queue.length q.buf >= q.capacity then false
      else begin
        Queue.push x q.buf;
        Condition.signal q.nonempty;
        true
      end)

let pop q =
  Mutex.protect q.m (fun () ->
      while Queue.is_empty q.buf && not q.closed do
        Condition.wait q.nonempty q.m
      done;
      (* drain everything enqueued before close: every accepted request
         still gets its response *)
      if Queue.is_empty q.buf then None else Some (Queue.pop q.buf))

let close q =
  Mutex.protect q.m (fun () ->
      q.closed <- true;
      Condition.broadcast q.nonempty)

let length q = Mutex.protect q.m (fun () -> Queue.length q.buf)
