(* Differential fuzzer CLI.

   Sweep mode (default): run [--seeds] seeds of every case family under a
   [--budget]-tick fuel limit, shrink failures and write them to
   [--corpus]; exit 1 when any disagreement survives.

   Replay mode ([--replay DIR]): re-check every counterexample file in
   DIR and exit 1 if any still fails — the CI regression gate for the
   checked-in corpus. A missing directory is an empty corpus, not an
   error. *)

let () =
  let seeds = ref 200 in
  let parser_seeds = ref 200 in
  let fuel = ref 200_000 in
  let plant = ref false in
  let corpus = ref "fuzz/corpus" in
  let replay_dir = ref None in
  let domains = ref None in
  let spec =
    [
      ("--seeds", Arg.Set_int seeds, "N number of seeds to sweep (default 200)");
      ( "--parser-seeds",
        Arg.Set_int parser_seeds,
        "N seeds for the serve request-parser totality target (default 200; 0 disables)" );
      ("--budget", Arg.Set_int fuel, "N fuel ticks for each exact tier (default 200000)");
      ("--plant-bug", Arg.Set plant, " arm the deliberately false oracle (shrinker self-test)");
      ("--corpus", Arg.Set_string corpus, "DIR where failures are written (default fuzz/corpus)");
      ("--replay", Arg.String (fun d -> replay_dir := Some d), "DIR replay a corpus instead of sweeping");
      ("--domains", Arg.Int (fun d -> domains := Some d), "N worker domains (default: cores - 1)");
    ]
  in
  let usage = "fuzz [--seeds N] [--budget N] [--plant-bug] [--corpus DIR] [--replay DIR]" in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  match !replay_dir with
  | Some dir ->
      let still_failing = Fuzz.Harness.replay ~planted_bug:!plant ~fuel:!fuel ~dir () in
      List.iter
        (fun (file, f) ->
          Printf.printf "FAIL %s: [%s] %s\n" file f.Fuzz.Oracle.check f.Fuzz.Oracle.detail)
        still_failing;
      let parser_failing = Fuzz.Parser_fuzz.replay ~dir () in
      List.iter
        (fun (file, detail) -> Printf.printf "FAIL %s: [parser-total] %s\n" file detail)
        parser_failing;
      let failing = List.length still_failing + List.length parser_failing in
      if failing = 0 then begin
        Printf.printf "replay: corpus %s clean\n" dir;
        exit 0
      end
      else begin
        Printf.printf "replay: %d counterexample(s) still failing\n" failing;
        exit 1
      end
  | None ->
      let report = Fuzz.Harness.run ~planted_bug:!plant ?domains:!domains ~seeds:!seeds ~fuel:!fuel () in
      List.iter
        (fun (cx : Fuzz.Harness.counterexample) ->
          Printf.printf "FAIL %s: [%s] %s\n" cx.case cx.failure.Fuzz.Oracle.check
            cx.failure.Fuzz.Oracle.detail)
        report.Fuzz.Harness.failures;
      let parser_failures =
        if !parser_seeds > 0 then Fuzz.Parser_fuzz.run ?domains:!domains ~seeds:!parser_seeds ()
        else []
      in
      List.iter
        (fun (f : Fuzz.Parser_fuzz.failure) ->
          Printf.printf "FAIL %s: [parser-total] %s\n" f.Fuzz.Parser_fuzz.case
            f.Fuzz.Parser_fuzz.detail)
        parser_failures;
      if report.Fuzz.Harness.failures = [] && parser_failures = [] then begin
        Printf.printf "fuzz: %d seeds, %d cases, no disagreements\n" report.Fuzz.Harness.seeds
          report.Fuzz.Harness.cases;
        Printf.printf "fuzz: %d parser seeds, %d lines, all total\n" !parser_seeds
          (4 * !parser_seeds);
        exit 0
      end
      else begin
        let paths = Fuzz.Harness.write_corpus ~dir:!corpus report.Fuzz.Harness.failures in
        let paths = paths @ Fuzz.Parser_fuzz.write_corpus ~dir:!corpus parser_failures in
        List.iter (fun p -> Printf.printf "wrote %s\n" p) paths;
        Printf.printf "fuzz: %d seeds, %d cases, %d disagreement(s)\n" report.Fuzz.Harness.seeds
          report.Fuzz.Harness.cases
          (List.length report.Fuzz.Harness.failures + List.length parser_failures);
        exit 1
      end
