(* Unit and property tests for Bigint.

   Properties are checked against native-int oracles on ranges where native
   arithmetic is exact, and against algebraic laws (ring axioms, Euclidean
   division identities) on genuinely large random values. *)

let b = Bigint.of_int
let s = Bigint.to_string

let check_b msg expected actual = Alcotest.(check string) msg expected (s actual)

(* -- unit tests ---------------------------------------------------------- *)

let test_constants () =
  check_b "zero" "0" Bigint.zero;
  check_b "one" "1" Bigint.one;
  check_b "two" "2" Bigint.two;
  check_b "minus_one" "-1" Bigint.minus_one

let test_of_int_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check (option int)) (string_of_int n) (Some n) (Bigint.to_int (b n)))
    [ 0; 1; -1; 42; -42; 1 lsl 29; (1 lsl 30) - 1; 1 lsl 30; 1 lsl 31; max_int; min_int; max_int - 1; min_int + 1 ]

let test_of_string () =
  check_b "simple" "12345" (Bigint.of_string "12345");
  check_b "negative" "-12345" (Bigint.of_string "-12345");
  check_b "plus sign" "7" (Bigint.of_string "+7");
  check_b "zero" "0" (Bigint.of_string "0");
  check_b "leading zeros" "99" (Bigint.of_string "00099");
  let big = "123456789012345678901234567890123456789" in
  check_b "big roundtrip" big (Bigint.of_string big);
  let negbig = "-9999999999999999999999999999999999999999999" in
  check_b "negative big roundtrip" negbig (Bigint.of_string negbig)

let test_of_string_invalid () =
  List.iter
    (fun input ->
      Alcotest.check_raises ("reject " ^ input) (Invalid_argument "Bigint.of_string: invalid character") (fun () ->
          ignore (Bigint.of_string input)))
    [ "12a3"; "1.5"; "1 2" ];
  Alcotest.check_raises "reject empty" (Invalid_argument "Bigint.of_string: empty string") (fun () ->
      ignore (Bigint.of_string ""));
  Alcotest.check_raises "reject bare sign" (Invalid_argument "Bigint.of_string: no digits") (fun () ->
      ignore (Bigint.of_string "-"))

let test_add_carries () =
  (* exercise digit-boundary carries *)
  let big30 = b ((1 lsl 30) - 1) in
  check_b "carry over 2^30" "1073741824" (Bigint.add big30 Bigint.one);
  let x = Bigint.of_string "999999999999999999999999999999" in
  check_b "decimal carry" "1000000000000000000000000000000" (Bigint.add x Bigint.one);
  check_b "cancel to zero" "0" (Bigint.add x (Bigint.neg x))

let test_mul_big () =
  let x = Bigint.of_string "123456789123456789" in
  let y = Bigint.of_string "987654321987654321" in
  check_b "cross-digit product" "121932631356500531347203169112635269" (Bigint.mul x y);
  check_b "sign -*+" "-121932631356500531347203169112635269" (Bigint.mul (Bigint.neg x) y);
  check_b "times zero" "0" (Bigint.mul x Bigint.zero)

let test_divmod_truncation () =
  (* C-style truncated division: sign of remainder follows the dividend *)
  let cases = [ (7, 2); (-7, 2); (7, -2); (-7, -2); (6, 3); (-6, 3); (0, 5) ] in
  List.iter
    (fun (x, y) ->
      let q, r = Bigint.divmod (b x) (b y) in
      Alcotest.(check (pair int int))
        (Printf.sprintf "%d /%% %d" x y)
        (x / y, x mod y)
        (Bigint.to_int_exn q, Bigint.to_int_exn r))
    cases

let test_divmod_big () =
  let x = Bigint.of_string "121932631356500531347203169112635269" in
  let y = Bigint.of_string "123456789123456789" in
  let q, r = Bigint.divmod x y in
  check_b "exact quotient" "987654321987654321" q;
  check_b "exact remainder" "0" r;
  let q2, r2 = Bigint.divmod (Bigint.add x Bigint.one) y in
  check_b "quotient with rem" "987654321987654321" q2;
  check_b "remainder one" "1" r2

let test_div_by_zero () =
  Alcotest.check_raises "divide by zero" Division_by_zero (fun () -> ignore (Bigint.divmod Bigint.one Bigint.zero))

let test_knuth_addback () =
  (* Dividends engineered so Algorithm D's qhat over-estimates and the
     add-back branch runs: classic pattern with high digits just below the
     divisor's. *)
  let base = Bigint.pow Bigint.two 30 in
  let v = Bigint.add (Bigint.mul base base) Bigint.one in
  (* v = 2^60 + 1 *)
  let u = Bigint.sub (Bigint.mul v (Bigint.sub base Bigint.one)) Bigint.one in
  let q, r = Bigint.divmod u v in
  (* u = v*(base-2) + (v-1) *)
  check_b "addback quotient" (s (Bigint.sub base Bigint.two)) q;
  check_b "addback remainder" (s (Bigint.sub v Bigint.one)) r;
  (* sanity: identity u = q*v + r *)
  check_b "identity" (s u) (Bigint.add (Bigint.mul q v) r)

let test_gcd () =
  Alcotest.(check int) "gcd(12,18)" 6 (Bigint.to_int_exn (Bigint.gcd (b 12) (b 18)));
  Alcotest.(check int) "gcd(-12,18)" 6 (Bigint.to_int_exn (Bigint.gcd (b (-12)) (b 18)));
  Alcotest.(check int) "gcd(0,5)" 5 (Bigint.to_int_exn (Bigint.gcd Bigint.zero (b 5)));
  Alcotest.(check int) "gcd(0,0)" 0 (Bigint.to_int_exn (Bigint.gcd Bigint.zero Bigint.zero));
  let big = Bigint.of_string "123456789012345678901234567890" in
  check_b "gcd with self" (s (Bigint.abs big)) (Bigint.gcd big big)

let test_pow () =
  check_b "2^0" "1" (Bigint.pow Bigint.two 0);
  check_b "2^10" "1024" (Bigint.pow Bigint.two 10);
  check_b "10^30" ("1" ^ String.make 30 '0') (Bigint.pow (b 10) 30);
  check_b "(-2)^3" "-8" (Bigint.pow (b (-2)) 3);
  Alcotest.check_raises "negative exponent" (Invalid_argument "Bigint.pow: negative exponent") (fun () ->
      ignore (Bigint.pow Bigint.two (-1)))

let test_compare () =
  let open Bigint in
  Alcotest.(check bool) "1 < 2" true (b 1 < b 2);
  Alcotest.(check bool) "-2 < 1" true (b (-2) < b 1);
  Alcotest.(check bool) "-2 < -1" true (b (-2) < b (-1));
  Alcotest.(check bool) "equal" true (of_string "100000000000000000000" = of_string "100000000000000000000");
  Alcotest.(check int) "min" (-5) (to_int_exn (min (b (-5)) (b 3)));
  Alcotest.(check int) "max" 3 (to_int_exn (max (b (-5)) (b 3)))

let test_to_float () =
  Alcotest.(check (float 1e-9)) "small" 42.0 (Bigint.to_float (b 42));
  Alcotest.(check (float 1e-9)) "negative" (-42.0) (Bigint.to_float (b (-42)));
  let x = Bigint.pow (b 10) 20 in
  Alcotest.(check (float 1e6)) "1e20" 1e20 (Bigint.to_float x)

(* -- property tests ------------------------------------------------------ *)

let small_int = QCheck.int_range (-1_000_000) 1_000_000

let big_pair =
  (* pairs of bigints with up to ~120 bits built from strings of digits *)
  let digits = QCheck.Gen.(string_size ~gen:(char_range '0' '9') (int_range 1 36)) in
  let gen =
    QCheck.Gen.(
      map2
        (fun (s1, n1) (s2, n2) ->
          let mk s neg =
            let v = Bigint.of_string s in
            if neg then Bigint.neg v else v
          in
          (mk s1 n1, mk s2 n2))
        (pair digits bool) (pair digits bool))
  in
  QCheck.make gen ~print:(fun (x, y) -> Printf.sprintf "(%s, %s)" (s x) (s y))

let prop_add_matches_int =
  QCheck.Test.make ~name:"add matches int oracle" ~count:1500 (QCheck.pair small_int small_int) (fun (x, y) ->
      Bigint.to_int_exn (Bigint.add (b x) (b y)) = x + y)

let prop_mul_matches_int =
  QCheck.Test.make ~name:"mul matches int oracle" ~count:1500 (QCheck.pair small_int small_int) (fun (x, y) ->
      Bigint.to_int_exn (Bigint.mul (b x) (b y)) = x * y)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:1000 big_pair (fun (x, _) ->
      Bigint.equal x (Bigint.of_string (Bigint.to_string x)))

let prop_add_commutative =
  QCheck.Test.make ~name:"add commutative" ~count:1000 big_pair (fun (x, y) ->
      Bigint.equal (Bigint.add x y) (Bigint.add y x))

let prop_mul_commutative =
  QCheck.Test.make ~name:"mul commutative" ~count:1000 big_pair (fun (x, y) ->
      Bigint.equal (Bigint.mul x y) (Bigint.mul y x))

let prop_distributive =
  QCheck.Test.make ~name:"mul distributes over add" ~count:1000
    (QCheck.pair big_pair big_pair)
    (fun ((x, y), (z, _)) ->
      Bigint.equal (Bigint.mul x (Bigint.add y z)) (Bigint.add (Bigint.mul x y) (Bigint.mul x z)))

let prop_sub_inverse =
  QCheck.Test.make ~name:"x - y + y = x" ~count:1000 big_pair (fun (x, y) ->
      Bigint.equal x (Bigint.add (Bigint.sub x y) y))

let prop_divmod_identity =
  QCheck.Test.make ~name:"divmod identity and remainder bound" ~count:1500 big_pair (fun (x, y) ->
      QCheck.assume (not (Bigint.is_zero y));
      let q, r = Bigint.divmod x y in
      Bigint.equal x (Bigint.add (Bigint.mul q y) r)
      && Bigint.compare (Bigint.abs r) (Bigint.abs y) < 0
      && (Bigint.is_zero r || Bigint.sign r = Bigint.sign x))

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both and is maximal vs product" ~count:1000 big_pair (fun (x, y) ->
      QCheck.assume (not (Bigint.is_zero x) && not (Bigint.is_zero y));
      let g = Bigint.gcd x y in
      Bigint.is_zero (Bigint.rem x g) && Bigint.is_zero (Bigint.rem y g) && Bigint.sign g = 1)

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare antisymmetric and consistent with sub" ~count:1000 big_pair (fun (x, y) ->
      let c = Bigint.compare x y in
      c = -Bigint.compare y x && c = Bigint.sign (Bigint.sub x y))

let prop_to_float_sign =
  QCheck.Test.make ~name:"to_float preserves sign" ~count:600 big_pair (fun (x, _) ->
      compare (Bigint.to_float x) 0.0 = Bigint.sign x)

let prop_pow_additive =
  QCheck.Test.make ~name:"pow b (m+n) = pow b m * pow b n" ~count:600
    (QCheck.triple (QCheck.int_range (-50) 50) (QCheck.int_range 0 12) (QCheck.int_range 0 12))
    (fun (base, m, n) ->
      let b' = b base in
      Bigint.equal (Bigint.pow b' (m + n)) (Bigint.mul (Bigint.pow b' m) (Bigint.pow b' n)))

let prop_order_add_monotone =
  QCheck.Test.make ~name:"x <= y implies x + z <= y + z" ~count:1000
    (QCheck.pair big_pair big_pair)
    (fun ((x, y), (z, _)) ->
      if Bigint.compare x y <= 0 then Bigint.compare (Bigint.add x z) (Bigint.add y z) <= 0 else true)

let prop_abs_triangle =
  QCheck.Test.make ~name:"|x + y| <= |x| + |y|; |x*y| = |x|*|y|" ~count:1000 big_pair (fun (x, y) ->
      Bigint.compare (Bigint.abs (Bigint.add x y)) (Bigint.add (Bigint.abs x) (Bigint.abs y)) <= 0
      && Bigint.equal (Bigint.abs (Bigint.mul x y)) (Bigint.mul (Bigint.abs x) (Bigint.abs y)))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_matches_int; prop_mul_matches_int; prop_string_roundtrip; prop_add_commutative;
      prop_mul_commutative; prop_distributive; prop_sub_inverse; prop_divmod_identity;
      prop_gcd_divides; prop_compare_total_order; prop_to_float_sign; prop_pow_additive;
      prop_order_add_monotone; prop_abs_triangle ]

let () =
  Alcotest.run "bigint"
    [ ( "unit",
        [ Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "of_string invalid" `Quick test_of_string_invalid;
          Alcotest.test_case "add carries" `Quick test_add_carries;
          Alcotest.test_case "mul big" `Quick test_mul_big;
          Alcotest.test_case "divmod truncation" `Quick test_divmod_truncation;
          Alcotest.test_case "divmod big" `Quick test_divmod_big;
          Alcotest.test_case "divide by zero" `Quick test_div_by_zero;
          Alcotest.test_case "knuth add-back" `Quick test_knuth_addback;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "to_float" `Quick test_to_float ] );
      ("properties", props) ]
