(* Tests for interval geometry: union measure, gaps, demand profiles and
   the weighted-interval-scheduling track DP (checked against brute force on
   random inputs). *)

module Q = Rational
module I = Intervals.Interval
module U = Intervals.Union
module D = Intervals.Demand

let q = Q.of_ints
let iv a b = I.of_ints a b
let qiv a b = I.make a b
let check_q msg expected actual = Alcotest.(check string) msg expected (Q.to_string actual)

let test_interval_basics () =
  let a = iv 0 5 in
  check_q "length" "5" (I.length a);
  Alcotest.(check bool) "contains lo" true (I.contains a Q.zero);
  Alcotest.(check bool) "not contains hi" false (I.contains a (Q.of_int 5));
  Alcotest.(check bool) "empty" true (I.is_empty (iv 3 3));
  Alcotest.(check bool) "adjacent do not overlap" false (I.overlaps (iv 0 1) (iv 1 2));
  Alcotest.(check bool) "overlap" true (I.overlaps (iv 0 2) (iv 1 3));
  Alcotest.(check bool) "subset" true (I.subset (iv 1 2) (iv 0 3));
  Alcotest.(check bool) "empty subset of all" true (I.subset (iv 5 5) (iv 0 1));
  (match I.intersect (iv 0 2) (iv 1 3) with
  | Some x -> Alcotest.(check bool) "intersection" true (I.equal x (iv 1 2))
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check (option reject)) "disjoint intersect" None
    (Option.map ignore (I.intersect (iv 0 1) (iv 2 3)));
  Alcotest.check_raises "hi < lo" (Invalid_argument "Intervals.Interval.make: hi < lo") (fun () ->
      ignore (iv 2 1))

let test_union_merge () =
  let u = U.of_list [ iv 0 2; iv 1 3; iv 5 6; iv 6 7; iv 9 9 ] in
  Alcotest.(check int) "components" 2 (List.length (U.components u));
  check_q "measure" "5" (U.measure u);
  Alcotest.(check bool) "point in" true (U.contains_point u (Q.of_int 1));
  Alcotest.(check bool) "point out" false (U.contains_point u (Q.of_int 4));
  Alcotest.(check bool) "adjacent merged" true (U.contains_point u (Q.of_int 6))

let test_union_gaps () =
  let u = U.of_list [ iv 1 2; iv 4 5 ] in
  let gaps = U.gaps u (iv 0 7) in
  Alcotest.(check (list string)) "gaps" [ "[0, 1)"; "[2, 4)"; "[5, 7)" ] (List.map I.to_string gaps);
  Alcotest.(check (list string)) "gaps inside component" [] (List.map I.to_string (U.gaps u (qiv (q 3 2) (q 7 4))));
  check_q "marginal disjoint" "3" (U.marginal u (iv 10 13));
  check_q "marginal overlapping" "2" (U.marginal u (iv 0 3));
  check_q "marginal contained" "0" (U.marginal u (qiv (q 3 2) (q 7 4)))

let test_span () =
  check_q "span empty" "0" (Intervals.span []);
  check_q "span overlap" "3" (Intervals.span [ iv 0 2; iv 1 3 ]);
  check_q "span disjoint" "2" (Intervals.span [ iv 0 1; iv 5 6 ])

let test_demand_cells () =
  (* two overlapping intervals and a hole before a third *)
  let ivs = [ iv 0 2; iv 1 3; iv 5 6 ] in
  let cs = D.cells ivs in
  let render c = Printf.sprintf "%s:%d" (I.to_string c.D.cell) c.D.raw in
  Alcotest.(check (list string)) "cells"
    [ "[0, 1):1"; "[1, 2):2"; "[2, 3):1"; "[3, 5):0"; "[5, 6):1" ]
    (List.map render cs);
  Alcotest.(check int) "support drops holes" 4 (List.length (D.support ivs));
  Alcotest.(check int) "raw_at" 2 (D.raw_at ivs (Q.of_ints 3 2));
  Alcotest.(check int) "max_raw" 2 (D.max_raw ivs)

let test_demand_profile_cost () =
  (* g=2: demands 1,2,1,0,1 -> levels 1,1,1,0,1, lengths 1,1,1,2,1 -> 4 *)
  let ivs = [ iv 0 2; iv 1 3; iv 5 6 ] in
  check_q "profile g=2" "4" (D.profile_cost ~g:2 ivs);
  check_q "profile g=1" "5" (D.profile_cost ~g:1 ivs);
  check_q "mass bound" "5/2" (D.mass_bound ~g:2 ivs);
  Alcotest.check_raises "bad g" (Invalid_argument "Intervals.Demand.profile_cost: g <= 0") (fun () ->
      ignore (D.profile_cost ~g:0 ivs))

let test_track_known () =
  (* classic: [0,3) w3, [2,5) w4, [4,7) w3 -> take first+last = 6 *)
  let items = [ (iv 0 3, q 3 1); (iv 2 5, q 4 1); (iv 4 7, q 3 1) ] in
  let chosen, w = Intervals.Track.max_weight_disjoint ~interval:fst ~weight:snd items in
  check_q "weight" "6" w;
  Alcotest.(check int) "count" 2 (List.length chosen);
  Alcotest.(check bool) "disjoint" true (Intervals.Track.is_track ~interval:fst chosen)

let test_track_adjacent_allowed () =
  let items = [ (iv 0 1, Q.one); (iv 1 2, Q.one); (iv 2 3, Q.one) ] in
  let chosen, w = Intervals.Track.max_weight_disjoint ~interval:fst ~weight:snd items in
  check_q "all three" "3" w;
  Alcotest.(check int) "count" 3 (List.length chosen)

let test_track_empty () =
  let chosen, w = Intervals.Track.max_weight_disjoint ~interval:fst ~weight:snd [] in
  check_q "zero" "0" w;
  Alcotest.(check int) "none" 0 (List.length chosen)

(* -- properties ---------------------------------------------------------- *)

let ivs_gen =
  let open QCheck.Gen in
  let one = map2 (fun a len -> iv a (a + len)) (int_range 0 20) (int_range 0 6) in
  list_size (int_range 0 10) one

let ivs_arb = QCheck.make ivs_gen ~print:(fun l -> String.concat ";" (List.map I.to_string l))

let prop_union_measure_bounds =
  QCheck.Test.make ~name:"0 <= measure(union) <= sum of lengths" ~count:1000 ivs_arb (fun l ->
      let m = U.measure (U.of_list l) in
      let total = List.fold_left (fun acc i -> Q.add acc (I.length i)) Q.zero l in
      Q.compare m Q.zero >= 0 && Q.compare m total <= 0)

let prop_union_idempotent =
  QCheck.Test.make ~name:"union idempotent and commutative" ~count:1000 (QCheck.pair ivs_arb ivs_arb)
    (fun (a, bq) ->
      let ua = U.of_list a and ub = U.of_list bq in
      U.equal (U.union ua ub) (U.union ub ua) && U.equal (U.union ua ua) ua)

let prop_profile_vs_span_mass =
  QCheck.Test.make ~name:"profile cost between span and span+mass bounds" ~count:1000
    (QCheck.pair ivs_arb (QCheck.int_range 1 4))
    (fun (l, g) ->
      QCheck.assume (l <> []);
      let profile = D.profile_cost ~g l in
      let sp = Intervals.span l in
      let mass = D.mass_bound ~g l in
      (* profile >= span (every support cell counts >= 1 level) and
         profile >= mass (ceil >= exact), profile <= span + mass *)
      Q.compare profile sp >= 0 && Q.compare profile mass >= 0
      && Q.compare profile (Q.add sp mass) <= 0)

let prop_cells_partition =
  QCheck.Test.make ~name:"cells partition the hull; raw matches point samples" ~count:1000 ivs_arb
    (fun l ->
      let l = List.filter (fun i -> not (I.is_empty i)) l in
      QCheck.assume (l <> []);
      let cs = D.cells l in
      (* contiguous, and each cell's raw equals raw_at its midpoint *)
      let contiguous =
        let rec go = function
          | a :: (b :: _ as rest) -> Q.equal a.D.cell.I.hi b.D.cell.I.lo && go rest
          | _ -> true
        in
        go cs
      in
      contiguous
      && List.for_all
           (fun c ->
             let mid = Q.div (Q.add c.D.cell.I.lo c.D.cell.I.hi) Q.two in
             c.D.raw = D.raw_at l mid)
           cs)

let prop_track_optimal_vs_bruteforce =
  QCheck.Test.make ~name:"track DP matches brute force" ~count:600
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 0 8)
           (map3 (fun a len w -> (iv a (a + len), Q.of_int w)) (int_range 0 15) (int_range 1 5) (int_range 0 9)))
       ~print:(fun l -> String.concat ";" (List.map (fun (i, w) -> I.to_string i ^ "w" ^ Q.to_string w) l)))
    (fun items ->
      let _, w = Intervals.Track.max_weight_disjoint ~interval:fst ~weight:snd items in
      (* brute force over all subsets *)
      let arr = Array.of_list items in
      let n = Array.length arr in
      let best = ref Q.zero in
      for msk = 0 to (1 lsl n) - 1 do
        let subset = List.filteri (fun i _ -> msk land (1 lsl i) <> 0) (Array.to_list arr) in
        if Intervals.Track.is_track ~interval:fst subset then begin
          let wt = List.fold_left (fun acc (_, w) -> Q.add acc w) Q.zero subset in
          if Q.compare wt !best > 0 then best := wt
        end
      done;
      Q.equal w !best)

let prop_track_result_is_track =
  QCheck.Test.make ~name:"track DP returns a track with matching weight" ~count:1000 ivs_arb (fun l ->
      let items = List.map (fun i -> (i, I.length i)) l in
      let chosen, w = Intervals.Track.max_weight_disjoint ~interval:fst ~weight:snd items in
      Intervals.Track.is_track ~interval:fst chosen
      && Q.equal w (List.fold_left (fun acc (_, wt) -> Q.add acc wt) Q.zero chosen))

let prop_gaps_complement =
  QCheck.Test.make ~name:"gaps complement the union inside a window" ~count:1000
    (QCheck.pair ivs_arb (QCheck.pair (QCheck.int_range 0 10) (QCheck.int_range 11 30)))
    (fun (l, (a, b)) ->
      let u = U.of_list l in
      let within = iv a b in
      let gaps = U.gaps u within in
      (* gaps are inside the window, disjoint from the union, and their
         measure plus the union's measure inside the window is |window| *)
      let inside_measure =
        List.fold_left
          (fun acc c ->
            match I.intersect c within with Some x -> Q.add acc (I.length x) | None -> acc)
          Q.zero (U.components u)
      in
      List.for_all (fun gp -> I.subset gp within) gaps
      && List.for_all (fun gp -> not (U.contains_point u gp.I.lo)) gaps
      && Q.equal
           (Q.add inside_measure (List.fold_left (fun acc gp -> Q.add acc (I.length gp)) Q.zero gaps))
           (I.length within))

let prop_marginal_submodular =
  QCheck.Test.make ~name:"marginal is submodular (larger union, smaller marginal)" ~count:1000
    (QCheck.triple ivs_arb ivs_arb (QCheck.pair (QCheck.int_range 0 15) (QCheck.int_range 1 6)))
    (fun (l1, l2, (a, len)) ->
      let u1 = U.of_list l1 in
      let u12 = U.union u1 (U.of_list l2) in
      let piece = iv a (a + len) in
      Q.compare (U.marginal u12 piece) (U.marginal u1 piece) <= 0)

let prop_marginal_consistent =
  QCheck.Test.make ~name:"measure(add u iv) = measure u + marginal u iv" ~count:1000
    (QCheck.pair ivs_arb (QCheck.pair (QCheck.int_range 0 15) (QCheck.int_range 0 6)))
    (fun (l, (a, len)) ->
      let u = U.of_list l in
      let piece = iv a (a + len) in
      Q.equal (U.measure (U.add u piece)) (Q.add (U.measure u) (U.marginal u piece)))

let prop_support_cells =
  QCheck.Test.make ~name:"support = positive cells; hole measure = hull - span" ~count:1000 ivs_arb
    (fun l ->
      let l = List.filter (fun i -> not (I.is_empty i)) l in
      QCheck.assume (l <> []);
      let cells = D.cells l in
      let support = D.support l in
      let cell_measure sel =
        List.fold_left (fun acc c -> Q.add acc (I.length c.D.cell)) Q.zero sel
      in
      List.length support = List.length (List.filter (fun c -> c.D.raw > 0) cells)
      && Q.equal (cell_measure support) (Intervals.span l)
      &&
      let hull = Q.sub (List.fold_left (fun acc i -> Q.max acc i.I.hi) (List.hd l).I.hi l)
                   (List.fold_left (fun acc i -> Q.min acc i.I.lo) (List.hd l).I.lo l) in
      Q.equal (cell_measure cells) hull)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_union_measure_bounds; prop_union_idempotent; prop_profile_vs_span_mass; prop_cells_partition;
      prop_track_optimal_vs_bruteforce; prop_track_result_is_track; prop_gaps_complement;
      prop_marginal_submodular; prop_marginal_consistent; prop_support_cells ]

let () =
  Alcotest.run "intervals"
    [ ( "unit",
        [ Alcotest.test_case "interval basics" `Quick test_interval_basics;
          Alcotest.test_case "union merge" `Quick test_union_merge;
          Alcotest.test_case "union gaps" `Quick test_union_gaps;
          Alcotest.test_case "span" `Quick test_span;
          Alcotest.test_case "demand cells" `Quick test_demand_cells;
          Alcotest.test_case "demand profile cost" `Quick test_demand_profile_cost;
          Alcotest.test_case "track known" `Quick test_track_known;
          Alcotest.test_case "track adjacent allowed" `Quick test_track_adjacent_allowed;
          Alcotest.test_case "track empty" `Quick test_track_empty ] );
      ("properties", props) ]
