(* Tests for the extension modules: special-case busy-time algorithms
   (proper / clique / proper-clique), online busy time, and the
   multi-window active-time generalization. *)

module Q = Rational
module B = Workload.Bjob
module Gen = Workload.Generate
module MW = Active.Multi_window

let ij id start len = B.interval ~id ~start:(Q.of_int start) ~length:(Q.of_int len)

(* -- structure predicates -------------------------------------------------- *)

let test_predicates () =
  Alcotest.(check bool) "proper generator is proper" true
    (Busy.Special.is_proper (Gen.proper_interval_jobs ~n:8 ~seed:1 ()));
  Alcotest.(check bool) "clique generator is clique" true
    (Busy.Special.is_clique (Gen.clique_interval_jobs ~n:8 ~seed:1 ()));
  let pc = Gen.proper_clique_interval_jobs ~n:8 ~seed:1 () in
  Alcotest.(check bool) "proper clique: proper" true (Busy.Special.is_proper pc);
  Alcotest.(check bool) "proper clique: clique" true (Busy.Special.is_clique pc);
  Alcotest.(check bool) "containment detected" false
    (Busy.Special.is_proper [ ij 0 0 10; ij 1 2 2 ]);
  Alcotest.(check bool) "disjoint not clique" false (Busy.Special.is_clique [ ij 0 0 1; ij 1 5 1 ]);
  Alcotest.(check bool) "empty is clique" true (Busy.Special.is_clique [])

let test_guards () =
  Alcotest.check_raises "proper guard" (Invalid_argument "Special.proper_greedy: instance is not proper")
    (fun () -> ignore (Busy.Special.proper_greedy ~g:2 [ ij 0 0 10; ij 1 2 2 ]));
  Alcotest.check_raises "clique guard" (Invalid_argument "Special.clique_greedy: instance is not a clique")
    (fun () -> ignore (Busy.Special.clique_greedy ~g:2 [ ij 0 0 1; ij 1 5 1 ]));
  Alcotest.check_raises "proper clique guard"
    (Invalid_argument "Special.proper_clique_exact: instance is not a proper clique") (fun () ->
      ignore (Busy.Special.proper_clique_exact ~g:2 [ ij 0 0 1; ij 1 5 1 ]))

let test_proper_clique_dp_simple () =
  (* four overlapping jobs sharing point 4; g=2. Runs {01}{23} span
     (6-0)+(8-2) = 12, the best partition (non-consecutive {02}{13} would
     pay 7+7). *)
  let jobs = [ ij 0 0 5; ij 1 1 5; ij 2 2 5; ij 3 3 5 ] in
  let packing = Busy.Special.proper_clique_exact ~g:2 jobs in
  Alcotest.(check (option string)) "valid" None (Busy.Bundle.check ~g:2 jobs packing);
  Alcotest.(check string) "cost" "12" (Q.to_string (Busy.Bundle.total_busy packing))

(* -- properties: special cases ---------------------------------------------- *)

let seed_arb = QCheck.int_range 0 100_000

let prop_proper_greedy =
  QCheck.Test.make ~name:"proper greedy: valid and <= 2 OPT" ~count:30 seed_arb (fun seed ->
      let jobs = Gen.proper_interval_jobs ~n:7 ~seed () in
      List.for_all
        (fun g ->
          let packing = Busy.Special.proper_greedy ~g jobs in
          Busy.Bundle.check ~g jobs packing = None
          && Q.compare (Busy.Bundle.total_busy packing) (Q.mul Q.two (Busy.Exact.optimum ~g jobs)) <= 0)
        [ 1; 2; 3 ])

let prop_clique_greedy =
  QCheck.Test.make ~name:"clique greedy: valid and <= 2 OPT" ~count:30 seed_arb (fun seed ->
      let jobs = Gen.clique_interval_jobs ~n:7 ~seed () in
      List.for_all
        (fun g ->
          let packing = Busy.Special.clique_greedy ~g jobs in
          Busy.Bundle.check ~g jobs packing = None
          && Q.compare (Busy.Bundle.total_busy packing) (Q.mul Q.two (Busy.Exact.optimum ~g jobs)) <= 0)
        [ 1; 2; 3 ])

let prop_proper_clique_exact =
  QCheck.Test.make ~name:"proper-clique DP matches exhaustive optimum" ~count:30 seed_arb (fun seed ->
      let jobs = Gen.proper_clique_interval_jobs ~n:7 ~seed () in
      List.for_all
        (fun g ->
          let packing = Busy.Special.proper_clique_exact ~g jobs in
          Busy.Bundle.check ~g jobs packing = None
          && Q.equal (Busy.Bundle.total_busy packing) (Busy.Exact.optimum ~g jobs))
        [ 1; 2; 3 ])

(* -- online ------------------------------------------------------------------ *)

let test_length_class () =
  List.iter
    (fun (len, expected) ->
      Alcotest.(check int) ("class of " ^ Q.to_string len) expected (Busy.Online.length_class len))
    [ (Q.one, 0); (Q.of_ints 3 2, 0); (Q.two, 1); (Q.of_int 5, 2); (Q.half, -1); (Q.of_ints 1 3, -2) ];
  Alcotest.check_raises "zero length" (Invalid_argument "Online.length_class: non-positive length")
    (fun () -> ignore (Busy.Online.length_class Q.zero))

let prop_online_valid =
  QCheck.Test.make ~name:"online packings valid; within guarantees on small" ~count:30 seed_arb
    (fun seed ->
      let jobs = Gen.interval_jobs ~n:8 ~horizon:16 ~max_length:4 ~seed () in
      List.for_all
        (fun g ->
          let ff = Busy.Online.first_fit ~g jobs in
          let bucketed = Busy.Online.bucketed_first_fit ~g jobs in
          Busy.Bundle.check ~g jobs ff = None && Busy.Bundle.check ~g jobs bucketed = None)
        [ 1; 2; 3 ])

let prop_online_vs_offline =
  QCheck.Test.make ~name:"online cost >= offline exact" ~count:20 seed_arb (fun seed ->
      let jobs = Gen.interval_jobs ~n:7 ~horizon:14 ~max_length:4 ~seed () in
      let opt = Busy.Exact.optimum ~g:2 jobs in
      Q.compare (Busy.Bundle.total_busy (Busy.Online.first_fit ~g:2 jobs)) opt >= 0
      && Q.compare (Busy.Bundle.total_busy (Busy.Online.bucketed_first_fit ~g:2 jobs)) opt >= 0)

(* -- multi-window active time -------------------------------------------------- *)

let test_mw_validation () =
  Alcotest.check_raises "overlapping windows" (Invalid_argument "Multi_window.job: overlapping windows")
    (fun () -> ignore (MW.job ~id:0 ~windows:[ (0, 3); (2, 5) ] ~length:2));
  Alcotest.check_raises "too short" (Invalid_argument "Multi_window.job: windows shorter than length")
    (fun () -> ignore (MW.job ~id:0 ~windows:[ (0, 1) ] ~length:2));
  Alcotest.check_raises "no windows" (Invalid_argument "Multi_window.job: no windows") (fun () ->
      ignore (MW.job ~id:0 ~windows:[] ~length:1));
  let j = MW.job ~id:0 ~windows:[ (0, 2); (4, 6) ] ~length:3 in
  Alcotest.(check (list int)) "slots" [ 1; 2; 5; 6 ] (MW.window_slots j)

let test_mw_feasibility () =
  (* one unit in [0,1) or [5,6): two separated options *)
  let inst = MW.make ~g:1 [ MW.job ~id:0 ~windows:[ (0, 1); (5, 6) ] ~length:1 ] in
  Alcotest.(check bool) "first window works" true (MW.feasible inst ~open_slots:[ 1 ]);
  Alcotest.(check bool) "second window works" true (MW.feasible inst ~open_slots:[ 6 ]);
  Alcotest.(check bool) "wrong slot fails" false (MW.feasible inst ~open_slots:[ 3 ]);
  match MW.optimum inst with
  | Some (cost, _) -> Alcotest.(check int) "optimum 1" 1 cost
  | None -> Alcotest.fail "feasible"

let test_mw_exact_cover () =
  (* sets over elements 1..6: {1,2,3}, {4,5,6} feasible at g = 1 *)
  let inst = MW.exact_cover_instance ~g:1 [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] ~universe:6 in
  (match MW.optimum inst with
  | Some (cost, _) -> Alcotest.(check int) "two disjoint sets" 6 cost
  | None -> Alcotest.fail "feasible");
  (* adding {2,3,4} makes g=1 infeasible but g=2 feasible *)
  let clash = MW.exact_cover_instance ~g:1 [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 2; 3; 4 ] ] ~universe:6 in
  Alcotest.(check bool) "g=1 infeasible" true (MW.optimum clash = None);
  let ok = MW.exact_cover_instance ~g:2 [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 2; 3; 4 ] ] ~universe:6 in
  match MW.optimum ok with
  | Some (cost, _) -> Alcotest.(check int) "g=2 cost" 6 cost
  | None -> Alcotest.fail "feasible at g=2"

let prop_mw_matches_single_window =
  QCheck.Test.make ~name:"multi-window optimum = single-window optimum on 1-window jobs" ~count:25
    seed_arb (fun seed ->
      let params : Gen.slotted_params = { n = 5; horizon = 8; max_length = 3; slack = 3; g = 2 } in
      let inst = Gen.slotted ~params ~seed () in
      let translated =
        MW.make ~g:inst.Workload.Slotted.g
          (Array.to_list
             (Array.map
                (fun (j : Workload.Slotted.job) ->
                  MW.job ~id:j.Workload.Slotted.id
                    ~windows:[ (j.Workload.Slotted.release, j.Workload.Slotted.deadline) ]
                    ~length:j.Workload.Slotted.length)
                inst.Workload.Slotted.jobs))
      in
      Active.Exact.optimum inst = Option.map fst (MW.optimum translated))

let prop_mw_minimal =
  QCheck.Test.make ~name:"multi-window minimal solutions are feasible and minimal" ~count:25 seed_arb
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let jobs =
        List.init 4 (fun id ->
            let w1 = Random.State.int st 4 in
            let w2 = 6 + Random.State.int st 4 in
            MW.job ~id ~windows:[ (w1, w1 + 2); (w2, w2 + 2) ] ~length:(1 + Random.State.int st 2))
      in
      let inst = MW.make ~g:2 jobs in
      match MW.minimal inst with
      | None -> false
      | Some open_slots ->
          MW.feasible inst ~open_slots
          && List.for_all
               (fun s -> not (MW.feasible inst ~open_slots:(List.filter (fun s' -> s' <> s) open_slots)))
               open_slots)

(* -- further edge cases ---------------------------------------------------------- *)

let test_ilp_on_integrality_gadget () =
  (* the gap-2 gadget forces the LP-based B&B to branch and still reach
     the integer optimum 2g *)
  let g = 3 in
  let inst = Workload.Gadgets.integrality_gap g in
  (match Active.Ilp.exact inst with
  | None -> Alcotest.fail "feasible"
  | Some (sol, stats) ->
      Alcotest.(check int) "optimum 2g" (2 * g) (Active.Solution.cost sol);
      Alcotest.(check bool) "had to branch" true (stats.Active.Ilp.nodes > 1));
  (* ILP also detects infeasibility *)
  let bad =
    Workload.Slotted.make ~g:1
      [ Workload.Slotted.job ~id:0 ~release:0 ~deadline:1 ~length:1;
        Workload.Slotted.job ~id:1 ~release:0 ~deadline:1 ~length:1 ]
  in
  Alcotest.(check bool) "infeasible" true (Active.Ilp.exact bad = None)

let test_machines_count_guard () =
  let inst = Workload.Slotted.make ~g:1 [ Workload.Slotted.job ~id:0 ~release:0 ~deadline:1 ~length:1 ] in
  Alcotest.check_raises "count out of range" (Invalid_argument "Machines.feasible: count out of range")
    (fun () -> ignore (Active.Machines.feasible inst ~machines:2 ~openings:[ (1, 3) ]));
  Alcotest.check_raises "machines < 1" (Invalid_argument "Machines.feasible: machines < 1") (fun () ->
      ignore (Active.Machines.feasible inst ~machines:0 ~openings:[]))

let test_widths_wide_boundary () =
  (* w = g/2 is NOT wide (2w > g is strict) *)
  let j = Busy.Widths.wjob ~job:(ij 0 0 1) ~width:2 in
  Alcotest.(check bool) "2w = g not wide" false (Busy.Widths.is_wide ~g:4 j);
  Alcotest.(check bool) "2w > g wide" true (Busy.Widths.is_wide ~g:3 j)

let test_online_bucket_separation () =
  (* jobs in different length classes never share a machine *)
  let jobs = [ ij 0 0 1; ij 1 0 4; ij 2 0 1; ij 3 0 4 ] in
  let packing = Busy.Online.bucketed_first_fit ~g:4 jobs in
  List.iter
    (fun bundle ->
      let classes =
        List.sort_uniq compare (List.map (fun (j : B.t) -> Busy.Online.length_class j.B.length) bundle)
      in
      Alcotest.(check int) "one class per machine" 1 (List.length classes))
    packing

let test_laminar_forest_roots () =
  (* two independent trees plus a duplicate interval *)
  let jobs = [ ij 0 0 4; ij 1 0 4; ij 2 1 2; ij 3 10 3; ij 4 11 1 ] in
  Alcotest.(check bool) "laminar" true (Busy.Laminar.is_laminar jobs);
  (* g=2: the nesting chain 0 > 1 > 2 has length 3, so tree 1 splits:
     {0,1} pays 4, {2} pays 2; tree 2 packs whole: {3,4} pays 3. *)
  let packing = Busy.Laminar.exact ~g:2 jobs in
  Alcotest.(check (option string)) "valid" None (Busy.Bundle.check ~g:2 jobs packing);
  Alcotest.(check string) "cost" "9" (Q.to_string (Busy.Bundle.total_busy packing));
  (* g=3 lets the whole chain share: 4 + 3 *)
  Alcotest.(check string) "g=3 cost" "7" (Q.to_string (Busy.Laminar.optimum ~g:3 jobs))

let test_maximize_budget_edge () =
  (* budget exactly equal to the packing cost is accepted *)
  let jobs = [ ij 0 0 3 ] in
  let accepted, busy, _ = Busy.Maximize.exact ~g:1 ~budget:(Q.of_int 3) jobs in
  Alcotest.(check int) "accepted" 1 (List.length accepted);
  Alcotest.(check string) "busy" "3" (Q.to_string busy)

(* -- single-machine online maximization ----------------------------------------- *)

let test_single_online_basic () =
  (* job 1 [0,4); job 2 arrives at 1 and ends later [1,6): greedy aborts
     and completes job 2 (length 5); stubborn completes job 1 then cannot
     start job 2 (already released) *)
  let jobs = [ ij 0 0 4; ij 1 1 5 ] in
  let v_greedy, done_greedy = Busy.Single_online.greedy_switch jobs in
  Alcotest.(check string) "greedy value" "5" (Q.to_string v_greedy);
  Alcotest.(check (list int)) "greedy completes job 1" [ 1 ]
    (List.map (fun (j : B.t) -> j.B.id) done_greedy);
  let v_stub, done_stub = Busy.Single_online.stubborn jobs in
  Alcotest.(check string) "stubborn value" "4" (Q.to_string v_stub);
  Alcotest.(check (list int)) "stubborn completes job 0" [ 0 ]
    (List.map (fun (j : B.t) -> j.B.id) done_stub);
  let v_off, _ = Busy.Single_online.offline_optimum jobs in
  Alcotest.(check string) "offline" "5" (Q.to_string v_off)

let test_single_online_sequence () =
  (* disjoint jobs: every policy completes all of them *)
  let jobs = [ ij 0 0 2; ij 1 3 2; ij 2 6 2 ] in
  let v, completed = Busy.Single_online.stubborn jobs in
  Alcotest.(check string) "all six" "6" (Q.to_string v);
  Alcotest.(check int) "three jobs" 3 (List.length completed)

let prop_single_online =
  QCheck.Test.make ~name:"single-machine online: disjoint completions <= offline optimum" ~count:40
    seed_arb (fun seed ->
      let jobs = Gen.interval_jobs ~n:10 ~horizon:20 ~max_length:5 ~seed () in
      let off, chosen = Busy.Single_online.offline_optimum jobs in
      List.for_all
        (fun policy ->
          let v, completed = policy jobs in
          Intervals.Track.is_track ~interval:B.interval_of completed
          && Q.compare v off <= 0
          && Q.equal v (B.total_length completed))
        [ Busy.Single_online.greedy_switch; Busy.Single_online.stubborn ]
      && Intervals.Track.is_track ~interval:B.interval_of chosen)

(* -- laminar exact ------------------------------------------------------------- *)

let test_laminar_basic () =
  (* nested chain of 3 jobs, g = 2: top must be paid; at most 2 share a
     chain, so {outer, middle} + {inner}: cost len(outer) + len(inner) = 10 + 2 *)
  let jobs = [ ij 0 0 10; ij 1 1 6; ij 2 2 2 ] in
  Alcotest.(check bool) "laminar" true (Busy.Laminar.is_laminar jobs);
  let packing = Busy.Laminar.exact ~g:2 jobs in
  Alcotest.(check (option string)) "valid" None (Busy.Bundle.check ~g:2 jobs packing);
  Alcotest.(check string) "cost" "12" (Q.to_string (Busy.Laminar.optimum ~g:2 jobs));
  (* g = 3: all in one bundle: cost 10 *)
  Alcotest.(check string) "g=3 cost" "10" (Q.to_string (Busy.Laminar.optimum ~g:3 jobs));
  (* g = 1: everyone alone: 10 + 6 + 2 *)
  Alcotest.(check string) "g=1 cost" "18" (Q.to_string (Busy.Laminar.optimum ~g:1 jobs))

let test_laminar_guard () =
  Alcotest.check_raises "non-laminar rejected" (Invalid_argument "Laminar.exact: instance is not laminar")
    (fun () -> ignore (Busy.Laminar.exact ~g:2 [ ij 0 0 3; ij 1 2 3 ]))

let prop_laminar_exact =
  QCheck.Test.make ~name:"laminar DP matches exhaustive optimum" ~count:40 seed_arb (fun seed ->
      let st = Random.State.make [| seed |] in
      (* random laminar instances, truncated to <= 9 jobs for Busy.Exact *)
      let jobs = Gen.laminar_interval_jobs ~depth:3 ~span:20 ~seed () in
      let jobs = List.filteri (fun i _ -> i < 9) jobs in
      QCheck.assume (jobs <> []);
      let g = 1 + Random.State.int st 3 in
      let packing = Busy.Laminar.exact ~g jobs in
      Busy.Bundle.check ~g jobs packing = None
      && Q.equal (Busy.Bundle.total_busy packing) (Busy.Exact.optimum ~g jobs))

(* -- multi-machine active time -------------------------------------------------- *)

let test_machines_basic () =
  (* 4 unit jobs all due in slot 1, g = 2: one machine infeasible, two
     machines cost 2 *)
  let jobs = List.init 4 (fun id -> Workload.Slotted.job ~id ~release:0 ~deadline:1 ~length:1) in
  let inst = Workload.Slotted.make ~g:2 jobs in
  Alcotest.(check bool) "1 machine infeasible" true (Active.Machines.optimum inst ~machines:1 = None);
  (match Active.Machines.optimum inst ~machines:2 with
  | Some (cost, openings) ->
      Alcotest.(check int) "2 machines cost" 2 cost;
      Alcotest.(check bool) "openings feasible" true
        (Active.Machines.feasible inst ~machines:2 ~openings)
  | None -> Alcotest.fail "feasible with 2 machines");
  match Active.Machines.lp_lower_bound inst ~machines:2 with
  | Some lb -> Alcotest.(check string) "LP bound" "2" (Q.to_string lb)
  | None -> Alcotest.fail "LP feasible"

let prop_machines_single_matches =
  QCheck.Test.make ~name:"machines=1 optimum = single-machine optimum" ~count:20 seed_arb (fun seed ->
      let params : Gen.slotted_params = { n = 5; horizon = 8; max_length = 3; slack = 3; g = 2 } in
      let inst = Gen.slotted ~params ~seed () in
      Active.Exact.optimum inst = Option.map fst (Active.Machines.optimum inst ~machines:1))

let prop_machines_monotone =
  QCheck.Test.make ~name:"more machines never hurt; minimal >= optimum >= LP" ~count:15 seed_arb
    (fun seed ->
      let params : Gen.slotted_params = { n = 6; horizon = 7; max_length = 3; slack = 2; g = 2 } in
      let inst = Gen.slotted ~params ~seed () in
      match (Active.Machines.optimum inst ~machines:1, Active.Machines.optimum inst ~machines:2) with
      | None, None -> true
      | None, Some _ -> true (* extra machines can create feasibility *)
      | Some _, None -> false
      | Some (o1, _), Some (o2, _) -> (
          o2 <= o1
          &&
          match (Active.Machines.minimal inst ~machines:2, Active.Machines.lp_lower_bound inst ~machines:2) with
          | Some m, Some lb ->
              Active.Machines.cost m >= o2 && Q.compare lb (Q.of_int o2) <= 0
          | _ -> false))

(* -- maximization ------------------------------------------------------------------ *)

let test_maximize_basic () =
  (* budget 2, g=1: three unit jobs at [0,1), [0,1), [5,6): best = 2 jobs *)
  let jobs = [ ij 0 0 1; ij 1 0 1; ij 2 5 1 ] in
  let accepted, busy, packing = Busy.Maximize.exact ~g:1 ~budget:Q.two jobs in
  Alcotest.(check int) "two jobs" 2 (List.length accepted);
  Alcotest.(check string) "busy 2" "2" (Q.to_string busy);
  Alcotest.(check (option string)) "packing valid" None (Busy.Bundle.check ~g:1 accepted packing);
  (* with g=2 all three fit in budget 2 *)
  let accepted3, _, _ = Busy.Maximize.exact ~g:2 ~budget:Q.two jobs in
  Alcotest.(check int) "three jobs at g=2" 3 (List.length accepted3);
  (* zero budget: nothing *)
  let none, _, _ = Busy.Maximize.exact ~g:2 ~budget:Q.zero jobs in
  Alcotest.(check int) "zero budget" 0 (List.length none)

let prop_maximize_greedy_vs_exact =
  QCheck.Test.make ~name:"maximize: greedy <= exact, both within budget and valid" ~count:15 seed_arb
    (fun seed ->
      let jobs = Gen.interval_jobs ~n:6 ~horizon:12 ~max_length:4 ~seed () in
      let budget = Q.of_int 6 in
      let ex, ex_busy, ex_pack = Busy.Maximize.exact ~g:2 ~budget jobs in
      let gr, gr_busy, gr_pack = Busy.Maximize.greedy ~g:2 ~budget jobs in
      List.length gr <= List.length ex
      && Q.compare ex_busy budget <= 0
      && Q.compare gr_busy budget <= 0
      && (ex = [] || Busy.Bundle.check ~g:2 ex ex_pack = None)
      && (gr = [] || Busy.Bundle.check ~g:2 gr gr_pack = None))

(* -- widths ------------------------------------------------------------------------- *)

let wj id start len width = Busy.Widths.wjob ~job:(ij id start len) ~width

let test_widths_basic () =
  Alcotest.(check int) "peak width" 5 (Busy.Widths.peak_width [ wj 0 0 2 2; wj 1 1 2 3 ]);
  Alcotest.(check bool) "fits" true (Busy.Widths.fits ~g:5 [ wj 0 0 2 2 ] (wj 1 1 2 3));
  Alcotest.(check bool) "does not fit" false (Busy.Widths.fits ~g:4 [ wj 0 0 2 2 ] (wj 1 1 2 3));
  Alcotest.check_raises "width 0" (Invalid_argument "Widths.wjob: width < 1") (fun () ->
      ignore (wj 0 0 1 0));
  let jobs = [ wj 0 0 2 2; wj 1 1 2 3; wj 2 5 1 1 ] in
  Alcotest.(check string) "mass g=5" "11/5" (Q.to_string (Busy.Widths.mass ~g:5 jobs));
  Alcotest.(check string) "span" "4" (Q.to_string (Busy.Widths.span jobs));
  let packing = Busy.Widths.first_fit ~g:5 jobs in
  Alcotest.(check (option string)) "first fit valid" None (Busy.Widths.check ~g:5 jobs packing)

let test_widths_unit_recovers_standard () =
  (* width-1 jobs: the width-aware first fit behaves like plain FirstFit *)
  let base = Gen.interval_jobs ~n:8 ~horizon:16 ~max_length:4 ~seed:4 () in
  let wjobs = List.map (fun j -> Busy.Widths.wjob ~job:j ~width:1) base in
  let wcost = Busy.Widths.total_busy (Busy.Widths.first_fit ~g:3 wjobs) in
  let cost = Busy.Bundle.total_busy (Busy.First_fit.solve ~g:3 base) in
  Alcotest.(check string) "same cost" (Q.to_string cost) (Q.to_string wcost)

let prop_widths_algorithms =
  QCheck.Test.make ~name:"width algorithms valid; exact <= heuristics; bounds hold" ~count:15 seed_arb
    (fun seed ->
      let jobs =
        List.map (fun (j, w) -> Busy.Widths.wjob ~job:j ~width:w)
          (Gen.widthed_interval_jobs ~n:7 ~horizon:14 ~max_length:4 ~max_width:3 ~seed ())
      in
      let g = 4 in
      let ff = Busy.Widths.first_fit ~g jobs in
      let split = Busy.Widths.narrow_wide_split ~g jobs in
      let ex = Busy.Widths.exact ~g jobs in
      Busy.Widths.check ~g jobs ff = None
      && Busy.Widths.check ~g jobs split = None
      && Busy.Widths.check ~g jobs ex = None
      && Q.compare (Busy.Widths.total_busy ex) (Busy.Widths.total_busy ff) <= 0
      && Q.compare (Busy.Widths.total_busy ex) (Busy.Widths.total_busy split) <= 0
      && Q.compare (Busy.Widths.best_bound ~g jobs) (Busy.Widths.total_busy ex) <= 0
      && Q.compare (Busy.Widths.total_busy split)
           (Q.mul (Q.of_int 5) (Busy.Widths.best_bound ~g jobs))
         <= 0)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_proper_greedy; prop_clique_greedy; prop_proper_clique_exact; prop_online_valid;
      prop_online_vs_offline; prop_mw_matches_single_window; prop_mw_minimal;
      prop_machines_single_matches; prop_machines_monotone; prop_maximize_greedy_vs_exact;
      prop_widths_algorithms; prop_laminar_exact; prop_single_online ]

let () =
  Alcotest.run "extensions"
    [ ( "special cases",
        [ Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "guards" `Quick test_guards;
          Alcotest.test_case "proper clique dp" `Quick test_proper_clique_dp_simple ] );
      ( "online",
        [ Alcotest.test_case "length class" `Quick test_length_class;
          Alcotest.test_case "single machine basic" `Quick test_single_online_basic;
          Alcotest.test_case "single machine sequence" `Quick test_single_online_sequence ] );
      ( "multi window",
        [ Alcotest.test_case "validation" `Quick test_mw_validation;
          Alcotest.test_case "feasibility" `Quick test_mw_feasibility;
          Alcotest.test_case "exact cover" `Quick test_mw_exact_cover ] );
      ( "laminar",
        [ Alcotest.test_case "basic" `Quick test_laminar_basic;
          Alcotest.test_case "guard" `Quick test_laminar_guard ] );
      ("machines", [ Alcotest.test_case "basic" `Quick test_machines_basic ]);
      ("maximize", [ Alcotest.test_case "basic" `Quick test_maximize_basic ]);
      ( "widths",
        [ Alcotest.test_case "basic" `Quick test_widths_basic;
          Alcotest.test_case "wide boundary" `Quick test_widths_wide_boundary;
          Alcotest.test_case "unit widths recover standard" `Quick test_widths_unit_recovers_standard ] );
      ( "edge cases",
        [ Alcotest.test_case "ilp on integrality gadget" `Quick test_ilp_on_integrality_gadget;
          Alcotest.test_case "machines guards" `Quick test_machines_count_guard;
          Alcotest.test_case "online bucket separation" `Quick test_online_bucket_separation;
          Alcotest.test_case "laminar forest roots" `Quick test_laminar_forest_roots;
          Alcotest.test_case "maximize budget edge" `Quick test_maximize_budget_edge ] );
      ("properties", props) ]
