The serve daemon reads line-delimited JSON requests on stdin and emits
exactly one schema-1 response line per request, in order — including for
garbage lines, which become structured errors instead of killing the
stream. The defaults (one worker domain, no --timing) make the output
byte-deterministic.

  $ cat > req.jsonl <<'EOF'
  > {"instance": "slotted\ng 2\njob 0 0 4 2\njob 1 0 4 2\n"}
  > this is not json
  > {"id": "busy-1", "instance": "busy\njob 0 0 10 10\njob 1 0 10 10\n", "g": 2, "algorithm": "first-fit"}
  > {"instance": "slotted\ng 2\njob 0 0 4 2\njob 1 0 4 2\n"}
  > {"instance": 42}
  > EOF
  $ atbt serve < req.jsonl
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":0,"status":"ok","algorithm":"cascade","instance":{"digest":"fnv1a64:c2079638ed31cca2","kind":"slotted","jobs":2,"g":2},"cost":2,"message":null,"provenance":{"winner":"exact","attempts":[{"tier":"exact","ticks":1,"status":"answered"}],"cost":2,"mass-bound":2,"gap":0},"cache":"miss","ticks":1}
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":1,"status":"error","algorithm":null,"instance":null,"cost":null,"message":"request is not valid JSON: at offset 0: expected true","provenance":null,"cache":null,"ticks":0}
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":"busy-1","status":"ok","algorithm":"first-fit","instance":{"digest":"fnv1a64:d7b988d9f78c9e0f","kind":"busy","jobs":2,"g":2},"cost":"10","message":null,"provenance":null,"cache":"miss","ticks":0}
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":3,"status":"ok","algorithm":"cascade","instance":{"digest":"fnv1a64:c2079638ed31cca2","kind":"slotted","jobs":2,"g":2},"cost":2,"message":null,"provenance":{"winner":"exact","attempts":[{"tier":"exact","ticks":1,"status":"answered"}],"cost":2,"mass-bound":2,"gap":0},"cache":"hit","ticks":1}
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":4,"status":"error","algorithm":null,"instance":null,"cost":null,"message":"field \"instance\" must be a string","provenance":null,"cache":null,"ticks":0}

Note line 4 replays line 1's answer from the memo cache ("cache":"hit")
and the explicit "id" on line 3 is echoed verbatim.

Under full fault injection every worker crashes, yet every request is
still answered (structured errors) and the daemon exits 0 — faults are
responses, not daemon deaths. The seed makes the run reproducible:

  $ atbt serve --inject crash=1.0,seed=3 --cache 0 < req.jsonl
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":0,"status":"error","algorithm":"cascade","instance":{"digest":"fnv1a64:c2079638ed31cca2","kind":"slotted","jobs":2,"g":2},"cost":null,"message":"worker fault: injected worker crash","provenance":null,"cache":"miss","ticks":0}
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":1,"status":"error","algorithm":null,"instance":null,"cost":null,"message":"request is not valid JSON: at offset 0: expected true","provenance":null,"cache":null,"ticks":0}
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":"busy-1","status":"error","algorithm":"first-fit","instance":{"digest":"fnv1a64:d7b988d9f78c9e0f","kind":"busy","jobs":2,"g":2},"cost":null,"message":"worker fault: injected worker crash","provenance":null,"cache":"miss","ticks":0}
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":3,"status":"error","algorithm":"cascade","instance":{"digest":"fnv1a64:c2079638ed31cca2","kind":"slotted","jobs":2,"g":2},"cost":null,"message":"worker fault: injected worker crash","provenance":null,"cache":"miss","ticks":0}
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":4,"status":"error","algorithm":null,"instance":null,"cost":null,"message":"field \"instance\" must be a string","provenance":null,"cache":null,"ticks":0}

The "lp_engine" field selects a registered simplex engine for LP-backed
solvers. It is canonicalized into the solver params (overriding any
"params.engine"), so it lands in the memo-cache key: the three spellings
below share one cached answer, and an unknown engine is a structured
error listing the registered names:

  $ cat > lp.jsonl <<'EOF'
  > {"instance": "slotted\ng 2\njob 0 0 4 2\njob 1 0 4 2\n", "algorithm": "lp-bound", "lp_engine": "float"}
  > {"instance": "slotted\ng 2\njob 0 0 4 2\njob 1 0 4 2\n", "algorithm": "lp-bound", "params": {"engine": "float"}}
  > {"instance": "slotted\ng 2\njob 0 0 4 2\njob 1 0 4 2\n", "algorithm": "lp-bound", "lp_engine": "float", "params": {"engine": "dense"}}
  > {"instance": "slotted\ng 2\njob 0 0 4 2\njob 1 0 4 2\n", "lp_engine": "bogus"}
  > EOF
  $ atbt serve < lp.jsonl
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":0,"status":"ok","algorithm":"lp-bound","instance":{"digest":"fnv1a64:c2079638ed31cca2","kind":"slotted","jobs":2,"g":2},"cost":"2","message":null,"provenance":null,"cache":"miss","ticks":11}
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":1,"status":"ok","algorithm":"lp-bound","instance":{"digest":"fnv1a64:c2079638ed31cca2","kind":"slotted","jobs":2,"g":2},"cost":"2","message":null,"provenance":null,"cache":"hit","ticks":11}
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":2,"status":"ok","algorithm":"lp-bound","instance":{"digest":"fnv1a64:c2079638ed31cca2","kind":"slotted","jobs":2,"g":2},"cost":"2","message":null,"provenance":null,"cache":"hit","ticks":11}
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":3,"status":"error","algorithm":null,"instance":null,"cost":null,"message":"unknown lp_engine \"bogus\" (dense|float|revised|sparse)","provenance":null,"cache":null,"ticks":0}

The "lp_pricing" field selects the simplex pricing policy the same way
(sugar for params.pricing, canonicalized into the memo key): the two
spellings below share one cached answer, a different policy is a
distinct key solved fresh, and an unknown policy is a structured error:

  $ cat > pricing.jsonl <<'EOF'
  > {"instance": "slotted\ng 2\njob 0 0 4 2\njob 1 0 4 2\n", "algorithm": "lp-bound", "lp_pricing": "devex"}
  > {"instance": "slotted\ng 2\njob 0 0 4 2\njob 1 0 4 2\n", "algorithm": "lp-bound", "params": {"pricing": "devex"}}
  > {"instance": "slotted\ng 2\njob 0 0 4 2\njob 1 0 4 2\n", "algorithm": "lp-bound", "lp_pricing": "partial"}
  > {"instance": "slotted\ng 2\njob 0 0 4 2\njob 1 0 4 2\n", "lp_pricing": "bogus"}
  > EOF
  $ atbt serve < pricing.jsonl
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":0,"status":"ok","algorithm":"lp-bound","instance":{"digest":"fnv1a64:c2079638ed31cca2","kind":"slotted","jobs":2,"g":2},"cost":"2","message":null,"provenance":null,"cache":"miss","ticks":11}
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":1,"status":"ok","algorithm":"lp-bound","instance":{"digest":"fnv1a64:c2079638ed31cca2","kind":"slotted","jobs":2,"g":2},"cost":"2","message":null,"provenance":null,"cache":"hit","ticks":11}
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":2,"status":"ok","algorithm":"lp-bound","instance":{"digest":"fnv1a64:c2079638ed31cca2","kind":"slotted","jobs":2,"g":2},"cost":"2","message":null,"provenance":null,"cache":"miss","ticks":0}
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"serve","id":3,"status":"error","algorithm":null,"instance":null,"cost":null,"message":"unknown lp_pricing \"bogus\" (dantzig|devex|partial)","provenance":null,"cache":null,"ticks":0}

An unparseable inject spec is a usage error, before any request is read:

  $ atbt serve --inject bogus < /dev/null
  atbt: invalid inject field "bogus" (want key=value)
  [1]
