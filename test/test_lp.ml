(* Tests for the exact simplex solver: textbook LPs with known optima,
   infeasibility/unboundedness detection, degenerate instances, and
   properties (feasibility of the returned vertex, optimality vs sampled
   feasible points, strong duality on generated primal/dual pairs). *)

module Q = Rational

let q = Q.of_ints
let qi = Q.of_int

let check_opt msg expected result =
  match result with
  | Lp.Optimal s -> Alcotest.(check string) msg expected (Q.to_string (Lp.objective_value s))
  | Lp.Infeasible -> Alcotest.fail (msg ^ ": unexpectedly infeasible")
  | Lp.Unbounded -> Alcotest.fail (msg ^ ": unexpectedly unbounded")

let get_solution = function
  | Lp.Optimal s -> s
  | Lp.Infeasible -> Alcotest.fail "unexpectedly infeasible"
  | Lp.Unbounded -> Alcotest.fail "unexpectedly unbounded"

let test_textbook_max () =
  (* max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18; x,y >= 0. Opt = 36 *)
  let m = Lp.create () in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  Lp.add_constraint m [ (qi 1, x) ] Lp.Le (qi 4);
  Lp.add_constraint m [ (qi 2, y) ] Lp.Le (qi 12);
  Lp.add_constraint m [ (qi 3, x); (qi 2, y) ] Lp.Le (qi 18);
  Lp.set_objective m Lp.Maximize [ (qi 3, x); (qi 5, y) ];
  let r = Lp.solve m in
  check_opt "objective" "36" r;
  let s = get_solution r in
  Alcotest.(check string) "x" "2" (Q.to_string (Lp.value s x));
  Alcotest.(check string) "y" "6" (Q.to_string (Lp.value s y))

let test_textbook_min () =
  (* min 2x + 3y s.t. x + y >= 4; x + 3y >= 6; x,y >= 0. Opt at (3,1): 9 *)
  let m = Lp.create () in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  Lp.add_constraint m [ (qi 1, x); (qi 1, y) ] Lp.Ge (qi 4);
  Lp.add_constraint m [ (qi 1, x); (qi 3, y) ] Lp.Ge (qi 6);
  Lp.set_objective m Lp.Minimize [ (qi 2, x); (qi 3, y) ];
  check_opt "objective" "9" (Lp.solve m)

let test_equality () =
  (* min x + y s.t. x + 2y = 4; x - y = 1 -> x = 2, y = 1 *)
  let m = Lp.create () in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  Lp.add_constraint m [ (qi 1, x); (qi 2, y) ] Lp.Eq (qi 4);
  Lp.add_constraint m [ (qi 1, x); (qi (-1), y) ] Lp.Eq (qi 1);
  Lp.set_objective m Lp.Minimize [ (qi 1, x); (qi 1, y) ];
  let r = Lp.solve m in
  check_opt "objective" "3" r;
  let s = get_solution r in
  Alcotest.(check string) "x" "2" (Q.to_string (Lp.value s x));
  Alcotest.(check string) "y" "1" (Q.to_string (Lp.value s y))

let test_fractional_optimum () =
  (* max x + y s.t. 2x + y <= 3; x + 2y <= 3 -> x = y = 1; but with
     2x + y <= 2, x + 2y <= 2 -> x = y = 2/3, objective 4/3. *)
  let m = Lp.create () in
  let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
  Lp.add_constraint m [ (qi 2, x); (qi 1, y) ] Lp.Le (qi 2);
  Lp.add_constraint m [ (qi 1, x); (qi 2, y) ] Lp.Le (qi 2);
  Lp.set_objective m Lp.Maximize [ (qi 1, x); (qi 1, y) ];
  check_opt "objective" "4/3" (Lp.solve m)

let test_infeasible () =
  let m = Lp.create () in
  let x = Lp.add_var m "x" in
  Lp.add_constraint m [ (qi 1, x) ] Lp.Ge (qi 5);
  Lp.add_constraint m [ (qi 1, x) ] Lp.Le (qi 3);
  Lp.set_objective m Lp.Minimize [ (qi 1, x) ];
  (match Lp.solve m with
  | Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible")

let test_unbounded () =
  let m = Lp.create () in
  let x = Lp.add_var m "x" in
  Lp.add_constraint m [ (qi 1, x) ] Lp.Ge (qi 1);
  Lp.set_objective m Lp.Maximize [ (qi 1, x) ];
  (match Lp.solve m with
  | Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded")

let test_bounds () =
  (* variable bounds used directly, including a negative lower bound *)
  let m = Lp.create () in
  let x = Lp.add_var ~lower:(qi (-5)) ~upper:(qi (-2)) m "x" in
  let y = Lp.add_var ~lower:(qi 1) ~upper:(qi 3) m "y" in
  Lp.set_objective m Lp.Minimize [ (qi 1, x); (qi 1, y) ];
  let r = Lp.solve m in
  check_opt "objective" "-4" r;
  let s = get_solution r in
  Alcotest.(check string) "x at lower" "-5" (Q.to_string (Lp.value s x));
  Alcotest.(check string) "y at lower" "1" (Q.to_string (Lp.value s y))

let test_upper_bound_binding () =
  let m = Lp.create () in
  let x = Lp.add_var ~upper:(qi 7) m "x" in
  Lp.set_objective m Lp.Maximize [ (qi 2, x) ];
  check_opt "objective" "14" (Lp.solve m)

let test_duplicate_terms () =
  (* x + x <= 4 must behave as 2x <= 4 *)
  let m = Lp.create () in
  let x = Lp.add_var m "x" in
  Lp.add_constraint m [ (qi 1, x); (qi 1, x) ] Lp.Le (qi 4);
  Lp.set_objective m Lp.Maximize [ (qi 1, x) ];
  check_opt "objective" "2" (Lp.solve m)

let test_degenerate () =
  (* Beale's classic cycling example; must terminate and find opt -1/20.
     min -3/4 x4 + 150 x5 - 1/50 x6 + 6 x7
     s.t. 1/4 x4 - 60 x5 - 1/25 x6 + 9 x7 <= 0
          1/2 x4 - 90 x5 - 1/50 x6 + 3 x7 <= 0
          x6 <= 1 *)
  let m = Lp.create () in
  let x4 = Lp.add_var m "x4" and x5 = Lp.add_var m "x5" in
  let x6 = Lp.add_var m "x6" and x7 = Lp.add_var m "x7" in
  Lp.add_constraint m [ (q 1 4, x4); (qi (-60), x5); (q (-1) 25, x6); (qi 9, x7) ] Lp.Le Q.zero;
  Lp.add_constraint m [ (q 1 2, x4); (qi (-90), x5); (q (-1) 50, x6); (qi 3, x7) ] Lp.Le Q.zero;
  Lp.add_constraint m [ (qi 1, x6) ] Lp.Le Q.one;
  Lp.set_objective m Lp.Minimize [ (q (-3) 4, x4); (qi 150, x5); (q (-1) 50, x6); (qi 6, x7) ];
  check_opt "objective" "-1/20" (Lp.solve m)

let test_zero_objective () =
  (* pure feasibility problem *)
  let m = Lp.create () in
  let x = Lp.add_var m "x" in
  Lp.add_constraint m [ (qi 1, x) ] Lp.Ge (qi 2);
  Lp.add_constraint m [ (qi 1, x) ] Lp.Le (qi 10);
  check_opt "objective" "0" (Lp.solve m)

let test_redundant_rows () =
  let m = Lp.create () in
  let x = Lp.add_var m "x" in
  Lp.add_constraint m [ (qi 1, x) ] Lp.Eq (qi 3);
  Lp.add_constraint m [ (qi 2, x) ] Lp.Eq (qi 6);
  Lp.add_constraint m [ (qi 1, x) ] Lp.Le (qi 3);
  Lp.set_objective m Lp.Maximize [ (qi 5, x) ];
  check_opt "objective" "15" (Lp.solve m)

let test_negative_rhs () =
  (* -x <= -3 is x >= 3 *)
  let m = Lp.create () in
  let x = Lp.add_var m "x" in
  Lp.add_constraint m [ (qi (-1), x) ] Lp.Le (qi (-3));
  Lp.set_objective m Lp.Minimize [ (qi 1, x) ];
  check_opt "objective" "3" (Lp.solve m)

let test_no_constraints () =
  (* pure bound optimization, no rows at all *)
  let m = Lp.create () in
  let x = Lp.add_var ~lower:(qi 2) ~upper:(qi 9) m "x" in
  Lp.set_objective m Lp.Maximize [ (qi 1, x) ];
  check_opt "objective" "9" (Lp.solve m)

let test_empty_model () =
  let m = Lp.create () in
  check_opt "trivial optimum" "0" (Lp.solve m)

let test_mixed_senses () =
  (* min x + 2y s.t. x + y = 5; x - y >= 1; y <= 3 -> x=4,y=1? check:
     x+y=5, x-y>=1 -> x >= 3; minimize x + 2y = x + 2(5-x) = 10 - x ->
     maximize x -> x as large as possible: y >= 0 -> x <= 5; x=5,y=0:
     x-y=5>=1 ok, y<=3 ok -> objective 5 *)
  let m = Lp.create () in
  let x = Lp.add_var m "x" and y = Lp.add_var ~upper:(qi 3) m "y" in
  Lp.add_constraint m [ (qi 1, x); (qi 1, y) ] Lp.Eq (qi 5);
  Lp.add_constraint m [ (qi 1, x); (qi (-1), y) ] Lp.Ge (qi 1);
  Lp.set_objective m Lp.Minimize [ (qi 1, x); (qi 2, y) ];
  check_opt "objective" "5" (Lp.solve m)

let test_infeasible_by_bounds () =
  let m = Lp.create () in
  let x = Lp.add_var ~lower:(qi 4) ~upper:(qi 10) m "x" in
  Lp.add_constraint m [ (qi 1, x) ] Lp.Le (qi 2);
  (match Lp.solve m with
  | Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible");
  Alcotest.check_raises "upper < lower rejected" (Invalid_argument "Lp.add_var: upper < lower")
    (fun () -> ignore (Lp.add_var ~lower:(qi 5) ~upper:(qi 1) m "y"))

let test_unknown_variable_rejected () =
  (* a var handle from a bigger model is out of range in a smaller one *)
  let m1 = Lp.create () in
  let _x = Lp.add_var m1 "x" in
  let m2 = Lp.create () in
  let _y = Lp.add_var m2 "y" in
  let z = Lp.add_var m2 "z" in
  Alcotest.check_raises "foreign var" (Invalid_argument "Lp.add_constraint: unknown variable")
    (fun () -> Lp.add_constraint m1 [ (qi 1, z) ] Lp.Le (qi 1));
  Alcotest.check_raises "objective too" (Invalid_argument "Lp.set_objective: unknown variable")
    (fun () -> Lp.set_objective m1 Lp.Minimize [ (qi 1, z) ])

let test_values_accessor () =
  let m = Lp.create () in
  let _x = Lp.add_var ~upper:(qi 2) m "alpha" in
  Lp.set_objective m Lp.Maximize [ (qi 1, _x) ];
  let s = get_solution (Lp.solve m) in
  Alcotest.(check (list (pair string string))) "values" [ ("alpha", "2") ]
    (List.map (fun (n, v) -> (n, Q.to_string v)) (Lp.values s))

(* -- properties ---------------------------------------------------------- *)

(* Random box-constrained minimization with <= rows whose rhs >= 0: always
   feasible at the origin. Check (1) returned point satisfies everything;
   (2) no sampled feasible point beats the optimum. *)

type rand_lp = { nv : int; rows : (int array * int) list; costs : int array; ubs : int array }

let lp_gen =
  let open QCheck.Gen in
  let* nv = int_range 1 5 in
  let* nr = int_range 0 6 in
  let row = pair (array_size (return nv) (int_range (-4) 6)) (int_range 0 20) in
  let* rows = list_size (return nr) row in
  let* costs = array_size (return nv) (int_range (-5) 5) in
  let* ubs = array_size (return nv) (int_range 0 8) in
  return { nv; rows; costs; ubs }

let lp_arb =
  QCheck.make lp_gen ~print:(fun l ->
      Printf.sprintf "nv=%d costs=[%s] ubs=[%s] rows=[%s]" l.nv
        (String.concat ";" (Array.to_list (Array.map string_of_int l.costs)))
        (String.concat ";" (Array.to_list (Array.map string_of_int l.ubs)))
        (String.concat " | "
           (List.map
              (fun (r, b) ->
                Printf.sprintf "%s <= %d" (String.concat "+" (Array.to_list (Array.map string_of_int r))) b)
              l.rows)))

let build_lp l =
  let m = Lp.create () in
  let vars = Array.init l.nv (fun i -> Lp.add_var ~upper:(qi l.ubs.(i)) m (Printf.sprintf "x%d" i)) in
  List.iter
    (fun (r, b) ->
      let terms = Array.to_list (Array.mapi (fun i c -> (qi c, vars.(i))) r) in
      Lp.add_constraint m terms Lp.Le (qi b))
    l.rows;
  Lp.set_objective m Lp.Minimize (Array.to_list (Array.mapi (fun i c -> (qi c, vars.(i))) l.costs));
  (m, vars)

let feasible l (point : Q.t array) =
  let ok_box = Array.for_all2 (fun x u -> Q.compare x Q.zero >= 0 && Q.compare x (qi u) <= 0) point l.ubs in
  ok_box
  && List.for_all
       (fun (r, b) ->
         let lhs = ref Q.zero in
         Array.iteri (fun i c -> lhs := Q.add !lhs (Q.mul (qi c) point.(i))) r;
         Q.compare !lhs (qi b) <= 0)
       l.rows

let cost_at l point =
  let c = ref Q.zero in
  Array.iteri (fun i coef -> c := Q.add !c (Q.mul (qi coef) point.(i))) l.costs;
  !c

let prop_solution_feasible =
  QCheck.Test.make ~name:"returned vertex is feasible" ~count:600 lp_arb (fun l ->
      let m, vars = build_lp l in
      match Lp.solve m with
      | Lp.Optimal s -> feasible l (Array.map (Lp.value s) vars)
      | Lp.Infeasible | Lp.Unbounded -> false (* box LPs are always feasible and bounded *))

let prop_no_sample_beats_optimum =
  QCheck.Test.make ~name:"no sampled feasible point beats the optimum" ~count:400
    (QCheck.pair lp_arb (QCheck.make QCheck.Gen.(list_size (return 30) (int_range 0 1000))))
    (fun (l, seeds) ->
      let m, _ = build_lp l in
      match Lp.solve m with
      | Lp.Optimal s ->
          let opt = Lp.objective_value s in
          List.for_all
            (fun seed ->
              let point = Array.init l.nv (fun i -> q ((seed * (i + 3)) mod (l.ubs.(i) + 1)) 1) in
              (not (feasible l point)) || Q.compare opt (cost_at l point) <= 0)
            seeds
      | _ -> false)

(* Strong duality: primal min cx, Ax >= b, x >= 0 with b <= 0 (primal
   feasible at 0) and c >= 0 (dual feasible at 0). Dual: max by, A^T y <= c,
   y >= 0. Optimal values must coincide. *)
let duality_gen =
  let open QCheck.Gen in
  let* nv = int_range 1 4 in
  let* nr = int_range 1 4 in
  let* a = array_size (return nr) (array_size (return nv) (int_range (-3) 5)) in
  let* b = array_size (return nr) (int_range (-6) 0) in
  let* c = array_size (return nv) (int_range 0 6) in
  return (a, b, c)

let duality_arb =
  QCheck.make duality_gen ~print:(fun (a, b, c) ->
      let row r = "[" ^ String.concat ";" (Array.to_list (Array.map string_of_int r)) ^ "]" in
      Printf.sprintf "A=%s b=%s c=%s" (String.concat "" (Array.to_list (Array.map row a))) (row b) (row c))

let prop_strong_duality =
  QCheck.Test.make ~name:"strong duality on feasible primal/dual pairs" ~count:400 duality_arb
    (fun (a, b, c) ->
      let nr = Array.length a and nv = Array.length c in
      let primal = Lp.create () in
      let xs = Array.init nv (fun i -> Lp.add_var primal (Printf.sprintf "x%d" i)) in
      Array.iteri
        (fun i row ->
          Lp.add_constraint primal (Array.to_list (Array.mapi (fun j coef -> (qi coef, xs.(j))) row)) Lp.Ge (qi b.(i)))
        a;
      Lp.set_objective primal Lp.Minimize (Array.to_list (Array.mapi (fun j coef -> (qi coef, xs.(j))) c));
      let dual = Lp.create () in
      let ys = Array.init nr (fun i -> Lp.add_var dual (Printf.sprintf "y%d" i)) in
      for j = 0 to nv - 1 do
        Lp.add_constraint dual (Array.to_list (Array.mapi (fun i row -> (qi row.(j), ys.(i))) a)) Lp.Le (qi c.(j))
      done;
      Lp.set_objective dual Lp.Maximize (Array.to_list (Array.mapi (fun i bi -> (qi bi, ys.(i))) b));
      match (Lp.solve primal, Lp.solve dual) with
      | Lp.Optimal p, Lp.Optimal d -> Q.equal (Lp.objective_value p) (Lp.objective_value d)
      | _ -> false)

(* -- engine agreement and warm starts ------------------------------------ *)

(* Unrestricted generator: mixed senses, negative lower bounds, optional
   upper bounds and signed rhs, so all three statuses (and degenerate
   vertices) occur. Used to check the Revised and Dense engines against
   each other and warm against cold re-solves. *)
type any_lp = {
  g_nv : int;
  g_lo : int array;
  g_hi : int option array; (* lower + span, so upper >= lower *)
  g_rows : (int array * int * int) list; (* coeffs, sense 0/1/2, rhs *)
  g_costs : int array;
  g_max : bool;
}

let any_gen =
  let open QCheck.Gen in
  let* nv = int_range 1 5 in
  let* nr = int_range 0 6 in
  let* lo = array_size (return nv) (int_range (-3) 3) in
  let* span = array_size (return nv) (opt (int_range 0 6)) in
  let row = triple (array_size (return nv) (int_range (-4) 6)) (int_range 0 2) (int_range (-8) 12) in
  let* rows = list_size (return nr) row in
  let* costs = array_size (return nv) (int_range (-5) 5) in
  let* maxi = bool in
  return
    {
      g_nv = nv;
      g_lo = lo;
      g_hi = Array.map2 (fun l s -> Option.map (fun s -> l + s) s) lo span;
      g_rows = rows;
      g_costs = costs;
      g_max = maxi;
    }

let any_arb =
  QCheck.make any_gen ~print:(fun l ->
      Printf.sprintf "nv=%d lo=[%s] hi=[%s] costs=[%s] %s rows=[%s]" l.g_nv
        (String.concat ";" (Array.to_list (Array.map string_of_int l.g_lo)))
        (String.concat ";"
           (Array.to_list (Array.map (function None -> "inf" | Some u -> string_of_int u) l.g_hi)))
        (String.concat ";" (Array.to_list (Array.map string_of_int l.g_costs)))
        (if l.g_max then "max" else "min")
        (String.concat " | "
           (List.map
              (fun (r, s, b) ->
                Printf.sprintf "%s %s %d"
                  (String.concat "+" (Array.to_list (Array.map string_of_int r)))
                  (match s with 0 -> "<=" | 1 -> ">=" | _ -> "=")
                  b)
              l.g_rows)))

let build_any l =
  let m = Lp.create () in
  let vars =
    Array.init l.g_nv (fun i ->
        Lp.add_var ~lower:(qi l.g_lo.(i)) ?upper:(Option.map qi l.g_hi.(i)) m (Printf.sprintf "x%d" i))
  in
  List.iter
    (fun (r, s, b) ->
      let sense = match s with 0 -> Lp.Le | 1 -> Lp.Ge | _ -> Lp.Eq in
      Lp.add_constraint m (Array.to_list (Array.mapi (fun i c -> (qi c, vars.(i))) r)) sense (qi b))
    l.g_rows;
  Lp.set_objective m
    (if l.g_max then Lp.Maximize else Lp.Minimize)
    (Array.to_list (Array.mapi (fun i c -> (qi c, vars.(i))) l.g_costs));
  (m, vars)

let any_feasible l (point : Q.t array) =
  let ok_box = ref true in
  Array.iteri
    (fun i x ->
      if Q.compare x (qi l.g_lo.(i)) < 0 then ok_box := false;
      match l.g_hi.(i) with
      | Some u when Q.compare x (qi u) > 0 -> ok_box := false
      | _ -> ())
    point;
  !ok_box
  && List.for_all
       (fun (r, s, b) ->
         let lhs = ref Q.zero in
         Array.iteri (fun i c -> lhs := Q.add !lhs (Q.mul (qi c) point.(i))) r;
         match s with
         | 0 -> Q.compare !lhs (qi b) <= 0
         | 1 -> Q.compare !lhs (qi b) >= 0
         | _ -> Q.equal !lhs (qi b))
       l.g_rows

let prop_engines_agree =
  QCheck.Test.make ~name:"all registered engines agree (status + objective)" ~count:600 any_arb
    (fun l ->
      let m, vars = build_any l in
      let baseline = Lp.solve ~engine:Lp.default_engine m in
      List.for_all
        (fun name ->
          let engine = Option.get (Lp.engine_of_name name) in
          match (baseline, Lp.solve ~engine m) with
          | Lp.Optimal a, Lp.Optimal b ->
              Q.equal (Lp.objective_value a) (Lp.objective_value b)
              && any_feasible l (Array.map (Lp.value a) vars)
              && any_feasible l (Array.map (Lp.value b) vars)
          | Lp.Infeasible, Lp.Infeasible -> true
          | Lp.Unbounded, Lp.Unbounded -> true
          | _ -> false)
        (Lp.engine_names ()))

(* After arbitrary bound rewrites, a warm re-solve from the previous
   basis must return exactly what a cold solve of the same model does. *)
let prop_warm_matches_cold =
  QCheck.Test.make ~name:"warm-started re-solve = cold re-solve" ~count:400
    (QCheck.pair any_arb
       (QCheck.make QCheck.Gen.(list_size (return 3) (triple (int_range 0 4) (int_range (-3) 3) (int_range 0 5)))))
    (fun (l, tweaks) ->
      let m, vars = build_any l in
      match Lp.solve m with
      | Lp.Infeasible | Lp.Unbounded -> true (* nothing to warm-start from *)
      | Lp.Optimal s0 -> (
          let warm = Option.get (Lp.basis s0) in
          List.iter
            (fun (vi, lo, span) ->
              if vi < l.g_nv then
                Lp.set_bounds m vars.(vi) ~lower:(qi lo) ~upper:(Some (qi (lo + span))))
            tweaks;
          match (Lp.solve ~warm m, Lp.solve m) with
          | Lp.Optimal a, Lp.Optimal b -> Q.equal (Lp.objective_value a) (Lp.objective_value b)
          | Lp.Infeasible, Lp.Infeasible -> true
          | Lp.Unbounded, Lp.Unbounded -> true
          | _ -> false))

(* The sparse engine runs the same pivot rules over the same column
   layout as the revised engine (the row sign flips of the revised cold
   start cancel inside B^-1 A), so the two must agree bit-for-bit: same
   status, same objective, same Exact provenance — and the very same
   pivot count, because the pivot sequences coincide. *)
let prop_sparse_matches_revised =
  QCheck.Test.make ~name:"sparse = revised (objective, provenance, pivots)" ~count:600 any_arb
    (fun l ->
      let m, _ = build_any l in
      match (Lp.solve ~engine:Lp.Revised m, Lp.solve ~engine:Lp.Sparse m) with
      | Lp.Optimal a, Lp.Optimal b ->
          Q.equal (Lp.objective_value a) (Lp.objective_value b)
          && Lp.certification a = Lp.Exact
          && Lp.certification b = Lp.Exact
          && Lp.pivots a = Lp.pivots b
      | Lp.Infeasible, Lp.Infeasible -> true
      | Lp.Unbounded, Lp.Unbounded -> true
      | _ -> false)

(* Eta updates are pure representation: refactorizing after every pivot
   (eta cap 1) must walk the same pivot sequence to the same answer as
   the default eta file. *)
let prop_eta_refactor_equiv =
  QCheck.Test.make ~name:"eta cap 1 = eta cap 64 (same pivots, same answer)" ~count:300 any_arb
    (fun l ->
      let m, _ = build_any l in
      let every = Lp.solve ~engine:(Lp.Sparse_with { Lp.default_sparse_config with sparse_eta_cap = 1 }) m in
      let batched = Lp.solve ~engine:Lp.Sparse m in
      match (every, batched) with
      | Lp.Optimal a, Lp.Optimal b ->
          Q.equal (Lp.objective_value a) (Lp.objective_value b)
          && Lp.pivots a = Lp.pivots b
      | Lp.Infeasible, Lp.Infeasible -> true
      | Lp.Unbounded, Lp.Unbounded -> true
      | _ -> false)

(* Pricing policy is pure column selection: Dantzig, candidate-list
   partial and devex must agree on status and objective (the vertex and
   pivot sequence may differ), over both the exact sparse driver and the
   float-certified path — whose results are exact either way, via
   certification or the exact fallback. *)
let prop_pricing_policies_agree =
  QCheck.Test.make ~name:"pricing policies agree (status + objective, exact + float)"
    ~count:400 any_arb (fun l ->
      let m, vars = build_any l in
      let baseline = Lp.solve ~engine:Lp.Sparse m in
      List.for_all
        (fun engine ->
          List.for_all
            (fun name ->
              let pricing = Option.get (Lp.pricing_of_name name) in
              match (baseline, Lp.solve ~engine ~pricing m) with
              | Lp.Optimal a, Lp.Optimal b ->
                  Q.equal (Lp.objective_value a) (Lp.objective_value b)
                  && any_feasible l (Array.map (Lp.value b) vars)
                  && any_feasible l (Array.map (Lp.value a) vars)
              | Lp.Infeasible, Lp.Infeasible -> true
              | Lp.Unbounded, Lp.Unbounded -> true
              | _ -> false)
            (Lp.pricing_names ()))
        [ Lp.Sparse; Lp.Float_certified ])

let test_warm_start_counters () =
  (* tightening a bound of an optimal basis: the warm re-solve reuses it
     (lp.warm_starts = 1) and costs at most a short dual repair, never a
     phase-1 restart (lp.phase1_pivots = 0) *)
  let m = Lp.create () in
  let x = Lp.add_var ~upper:(qi 4) m "x" and y = Lp.add_var ~upper:(qi 6) m "y" in
  Lp.add_constraint m [ (qi 1, x); (qi 1, y) ] Lp.Le (qi 8);
  Lp.add_constraint m [ (qi 1, x); (qi (-1), y) ] Lp.Ge (qi (-4));
  Lp.set_objective m Lp.Maximize [ (qi 2, x); (qi 3, y) ];
  let s0 = get_solution (Lp.solve m) in
  Alcotest.(check string) "cold objective" "22" (Q.to_string (Lp.objective_value s0));
  let warm = Option.get (Lp.basis s0) in
  Lp.set_bounds m y ~lower:Q.zero ~upper:(Some (qi 3));
  let obs = Obs.create () in
  let s1 = get_solution (Lp.solve ~warm ~obs m) in
  Alcotest.(check string) "warm objective" "17" (Q.to_string (Lp.objective_value s1));
  let counter name = try List.assoc name (Obs.counters obs) with Not_found -> 0 in
  Alcotest.(check int) "warm start taken" 1 (counter "lp.warm_starts");
  Alcotest.(check int) "no phase-1 work" 0 (counter "lp.phase1_pivots");
  (* and the warm result agrees with a cold solve of the same model *)
  let s2 = get_solution (Lp.solve m) in
  Alcotest.(check string) "cold re-solve agrees" "17" (Q.to_string (Lp.objective_value s2))

let test_engine_introspection () =
  let m = Lp.create () in
  let x = Lp.add_var ~upper:(qi 5) m "x" in
  Lp.add_constraint m [ (qi 1, x) ] Lp.Le (qi 3);
  Lp.set_objective m Lp.Maximize [ (qi 1, x) ];
  let r = get_solution (Lp.solve ~engine:Lp.Revised m) in
  let d = get_solution (Lp.solve ~engine:Lp.Dense m) in
  Alcotest.(check bool) "revised carries a basis" true (Lp.basis r <> None);
  Alcotest.(check bool) "dense has no basis" true (Lp.basis d = None);
  Alcotest.(check bool) "pivot counts are non-negative" true (Lp.pivots r >= 0 && Lp.pivots d >= 0)

let test_engine_registry () =
  Alcotest.(check (list string))
    "registered engines" [ "dense"; "float"; "revised"; "sparse" ] (Lp.engine_names ());
  Alcotest.(check string) "sparse selector resolves" "sparse" (Lp.engine_name Lp.Sparse);
  Alcotest.(check string)
    "configured sparse selector resolves" "sparse"
    (Lp.engine_name (Lp.Sparse_with Lp.default_sparse_config));
  Alcotest.(check bool) "unknown name" true (Lp.engine_of_name "bogus" = None);
  Alcotest.(check string) "default is revised" "revised" (Lp.engine_name Lp.default_engine);
  Alcotest.(check string) "float selector resolves" "float" (Lp.engine_name Lp.Float_certified);
  Alcotest.(check string)
    "configured float selector resolves" "float"
    (Lp.engine_name (Lp.Float_with Lp.default_float_config));
  Alcotest.(check (list string))
    "inventory names match" (Lp.engine_names ())
    (List.map fst (Lp.engine_inventory ()));
  Alcotest.(check bool)
    "duplicate registration rejected" true
    (match
       Lp.register_engine
         (module struct
           let name = "revised"
           let description = "dup"
           let selector = Lp.Revised
           let handles _ = false
           let solve ~engine:_ ~rule:_ ~pricing:_ ~warm:_ ~budget:_ ~obs:_ _ = Lp.Infeasible
         end)
     with
    | exception Invalid_argument _ -> true
    | () -> false)

let cert_to_string = function
  | Lp.Exact -> "Exact"
  | Lp.Certified -> "Certified"
  | Lp.Fallback -> "Fallback"

let check_cert msg want s = Alcotest.(check string) msg want (cert_to_string (Lp.certification s))

let test_certification_provenance () =
  let build () =
    let m = Lp.create () in
    let x = Lp.add_var m "x" and y = Lp.add_var m "y" in
    Lp.add_constraint m [ (qi 2, x); (qi 1, y) ] Lp.Le (qi 10);
    Lp.add_constraint m [ (qi 1, x); (qi 3, y) ] Lp.Le (qi 15);
    Lp.set_objective m Lp.Maximize [ (qi 3, x); (qi 4, y) ];
    m
  in
  let r = get_solution (Lp.solve ~engine:Lp.Revised (build ())) in
  let d = get_solution (Lp.solve ~engine:Lp.Dense (build ())) in
  check_cert "revised is exact" "Exact" r;
  check_cert "dense is exact" "Exact" d;
  let obs = Obs.create () in
  let f = get_solution (Lp.solve ~engine:Lp.Float_certified ~obs (build ())) in
  check_cert "well-conditioned model certifies" "Certified" f;
  Alcotest.(check string)
    "certified objective is bit-identical" (Q.to_string (Lp.objective_value r))
    (Q.to_string (Lp.objective_value f));
  let counter name = try List.assoc name (Obs.counters obs) with Not_found -> 0 in
  Alcotest.(check int) "certify_ok" 1 (counter "lp.certify_ok");
  Alcotest.(check int) "no certify_fail" 0 (counter "lp.certify_fail");
  Alcotest.(check int) "no fallback" 0 (counter "lp.fallbacks");
  Alcotest.(check bool) "float pivots recorded" true (counter "lp.float_pivots" > 0);
  Alcotest.(check bool) "certify ops recorded" true (counter "lp.certify_ops" > 0);
  (* the float engine hands back a certified basis usable as ?warm *)
  Alcotest.(check bool) "certified solution carries a basis" true (Lp.basis f <> None)

let build_trap (t : Workload.Gadgets.float_trap_gadget) =
  let m = Lp.create () in
  let vars = List.map (Lp.add_var m) t.ft_vars in
  List.iter
    (fun (coeffs, rhs) -> Lp.add_constraint m (List.combine coeffs vars) Lp.Le rhs)
    t.ft_rows;
  Lp.set_objective m Lp.Maximize (List.combine t.ft_obj vars);
  m

(* The float_trap gadget: the optimal column's advantage is below one ulp
   of double, so the float simplex terminates on the wrong vertex and
   exact certification must catch it — pinning the fallback path and its
   counters. The identical family at a representable ulp_exp is the
   control: it must certify. *)
let test_certify_fail_fallback () =
  let trap = Workload.Gadgets.float_trap ~pairs:4 ~ulp_exp:54 in
  let obs = Obs.create () in
  let s = get_solution (Lp.solve ~engine:Lp.Float_certified ~obs (build_trap trap)) in
  check_cert "trapped model falls back" "Fallback" s;
  let counter name = try List.assoc name (Obs.counters obs) with Not_found -> 0 in
  Alcotest.(check int) "certify_fail pinned" 1 (counter "lp.certify_fail");
  Alcotest.(check int) "fallbacks pinned" 1 (counter "lp.fallbacks");
  Alcotest.(check int) "no certify_ok" 0 (counter "lp.certify_ok");
  (* the fallback answer is the exact optimum, bit-identical to revised *)
  let r = get_solution (Lp.solve ~engine:Lp.Revised (build_trap trap)) in
  Alcotest.(check string)
    "fallback matches exact" (Q.to_string trap.ft_opt)
    (Q.to_string (Lp.objective_value s));
  Alcotest.(check string)
    "revised agrees" (Q.to_string trap.ft_opt)
    (Q.to_string (Lp.objective_value r));
  (* control: one ulp_exp inside double's mantissa, same family certifies *)
  let ctrl = Workload.Gadgets.float_trap ~pairs:4 ~ulp_exp:20 in
  let obs2 = Obs.create () in
  let s2 = get_solution (Lp.solve ~engine:Lp.Float_certified ~obs:obs2 (build_trap ctrl)) in
  check_cert "control certifies" "Certified" s2;
  Alcotest.(check string)
    "control objective exact" (Q.to_string ctrl.ft_opt)
    (Q.to_string (Lp.objective_value s2))

let test_float_uses_warm () =
  (* since 1.8.0 the float engine restores ?warm in double precision:
     the re-solve repairs feasibility from the snapshot (counted as a
     warm start) and the final basis is still certified exactly *)
  let m = Lp.create () in
  let x = Lp.add_var ~upper:(qi 6) m "x" in
  Lp.add_constraint m [ (qi 1, x) ] Lp.Le (qi 5);
  Lp.set_objective m Lp.Maximize [ (qi 2, x) ];
  let s0 = get_solution (Lp.solve m) in
  let warm = Option.get (Lp.basis s0) in
  Lp.set_bounds m x ~lower:Q.zero ~upper:(Some (qi 3));
  let obs = Obs.create () in
  let s1 = get_solution (Lp.solve ~engine:Lp.Float_certified ~warm ~obs m) in
  Alcotest.(check string) "objective" "6" (Q.to_string (Lp.objective_value s1));
  check_cert "warm float still certifies" "Certified" s1;
  Alcotest.(check bool)
    "warm snapshot was reused" true
    (List.assoc_opt "lp.warm_starts" (Obs.counters obs) = Some 1)

(* Golden work profile of the sparse engine on a small mixed-sense
   model: pivot count bit-identical to revised, and the LU bookkeeping
   counters (refactorizations, eta updates, fill) pinned. A diff means
   the pivot rules or the refactorization policy changed, which must be
   a conscious decision, not an accident. *)
let test_sparse_golden_counters () =
  let build () =
    let m = Lp.create () in
    let x = Lp.add_var ~upper:(qi 4) m "x" and y = Lp.add_var ~upper:(qi 6) m "y" in
    let z = Lp.add_var m "z" in
    Lp.add_constraint m [ (qi 1, x); (qi 1, y); (qi 1, z) ] Lp.Le (qi 8);
    Lp.add_constraint m [ (qi 1, x); (qi (-1), y) ] Lp.Ge (qi (-4));
    Lp.add_constraint m [ (qi 1, x); (qi 2, z) ] Lp.Eq (qi 5);
    Lp.set_objective m Lp.Maximize [ (qi 2, x); (qi 3, y); (qi 1, z) ];
    m
  in
  let obs = Obs.create () in
  let s = get_solution (Lp.solve ~engine:Lp.Sparse ~obs (build ())) in
  let r = get_solution (Lp.solve ~engine:Lp.Revised (build ())) in
  Alcotest.(check string)
    "objective matches revised" (Q.to_string (Lp.objective_value r))
    (Q.to_string (Lp.objective_value s));
  check_cert "sparse is exact" "Exact" s;
  Alcotest.(check int) "pivot-for-pivot with revised" (Lp.pivots r) (Lp.pivots s);
  let counter name = try List.assoc name (Obs.counters obs) with Not_found -> 0 in
  Alcotest.(check int) "pivots" 3 (counter "lp.pivots");
  Alcotest.(check int) "refactorizations" 1 (counter "lp.refactorizations");
  Alcotest.(check int) "eta updates" 3 (counter "lp.eta_updates");
  Alcotest.(check bool) "fill recorded" true (counter "lp.fill_nonzeros" > 0);
  Alcotest.(check bool) "exact cells recorded" true (counter "lp.exact_cells" > 0);
  (* eta cap 1: every pivot refactorizes, so the eta file stays empty *)
  let obs1 = Obs.create () in
  let s1 =
    get_solution
      (Lp.solve ~engine:(Lp.Sparse_with { Lp.default_sparse_config with sparse_eta_cap = 1 }) ~obs:obs1 (build ()))
  in
  Alcotest.(check int) "same pivots under eta cap 1" (Lp.pivots s) (Lp.pivots s1);
  let counter1 name = try List.assoc name (Obs.counters obs1) with Not_found -> 0 in
  Alcotest.(check int) "refactorization per pivot" 4 (counter1 "lp.refactorizations")

let cache_model k =
  (* same shape for every k — only the rhs moves — so all instances share
     one shape digest and one cache slot *)
  let m = Lp.create () in
  let x = Lp.add_var ~upper:(qi 9) m "x" and y = Lp.add_var ~upper:(qi 9) m "y" in
  Lp.add_constraint m [ (qi 1, x); (qi 1, y) ] Lp.Le (qi (6 + k));
  Lp.add_constraint m [ (qi 2, x); (qi 1, y) ] Lp.Le (qi (8 + k));
  Lp.set_objective m Lp.Maximize [ (qi 3, x); (qi 2, y) ];
  m

let test_shape_digest () =
  (* keyed on shape (dimensions, senses, sparsity pattern), not data *)
  Alcotest.(check string)
    "same shape, different data" (Lp.shape_digest (cache_model 0))
    (Lp.shape_digest (cache_model 5));
  let other =
    let m = Lp.create () in
    let x = Lp.add_var ~upper:(qi 9) m "x" and y = Lp.add_var ~upper:(qi 9) m "y" in
    Lp.add_constraint m [ (qi 1, x); (qi 1, y) ] Lp.Le (qi 6);
    Lp.add_constraint m [ (qi 2, x); (qi 1, y) ] Lp.Le (qi 8);
    Lp.add_constraint m [ (qi 1, x) ] Lp.Ge Q.zero;
    Lp.set_objective m Lp.Maximize [ (qi 3, x); (qi 2, y) ];
    m
  in
  Alcotest.(check bool)
    "extra row changes the digest" true
    (Lp.shape_digest (cache_model 0) <> Lp.shape_digest other)

let test_basis_cache () =
  let cache = Lp.Basis_cache.create ~capacity:2 in
  Lp.install_basis_cache (Some cache);
  Fun.protect
    ~finally:(fun () -> Lp.install_basis_cache None)
    (fun () ->
      Alcotest.(check bool) "installed" true
        (match Lp.installed_basis_cache () with Some c -> c == cache | None -> false);
      let obs = Obs.create () in
      let s0 = get_solution (Lp.solve ~obs (cache_model 0)) in
      Alcotest.(check int) "first solve misses" 1 (Lp.Basis_cache.misses cache);
      Alcotest.(check int) "no hit yet" 0 (Lp.Basis_cache.hits cache);
      Alcotest.(check int) "basis stored" 1 (Lp.Basis_cache.size cache);
      (* a same-shape model warm starts off the cached basis... *)
      let s1 = get_solution (Lp.solve ~obs (cache_model 3)) in
      Alcotest.(check int) "second solve hits" 1 (Lp.Basis_cache.hits cache);
      let counter name = try List.assoc name (Obs.counters obs) with Not_found -> 0 in
      Alcotest.(check int) "cache hit warm starts" 1 (counter "lp.warm_starts");
      (* ...and both answers are the true optima *)
      Alcotest.(check string) "cold objective" "14" (Q.to_string (Lp.objective_value s0));
      Alcotest.(check string) "warm objective" "20" (Q.to_string (Lp.objective_value s1));
      let cold = get_solution (Lp.solve (cache_model 3)) in
      Alcotest.(check string)
        "warm agrees with a cache-hit-free solve" (Q.to_string (Lp.objective_value cold))
        (Q.to_string (Lp.objective_value s1));
      (* explicit ?warm bypasses the cache entirely *)
      let hits = Lp.Basis_cache.hits cache and misses = Lp.Basis_cache.misses cache in
      let warm = Option.get (Lp.basis s1) in
      let _ = get_solution (Lp.solve ~warm (cache_model 3)) in
      Alcotest.(check int) "?warm skips lookup (hits)" hits (Lp.Basis_cache.hits cache);
      Alcotest.(check int) "?warm skips lookup (misses)" misses (Lp.Basis_cache.misses cache))

let test_basis_cache_eviction () =
  let cache = Lp.Basis_cache.create ~capacity:1 in
  Lp.install_basis_cache (Some cache);
  Fun.protect
    ~finally:(fun () -> Lp.install_basis_cache None)
    (fun () ->
      let other_shape () =
        let m = Lp.create () in
        let x = Lp.add_var ~upper:(qi 5) m "x" in
        Lp.add_constraint m [ (qi 1, x) ] Lp.Le (qi 4);
        Lp.set_objective m Lp.Maximize [ (qi 1, x) ];
        m
      in
      ignore (get_solution (Lp.solve (cache_model 0)));
      ignore (get_solution (Lp.solve (other_shape ())));
      Alcotest.(check int) "capacity 1 holds one entry" 1 (Lp.Basis_cache.size cache);
      (* the first shape was evicted: solving it again misses *)
      let misses = Lp.Basis_cache.misses cache in
      ignore (get_solution (Lp.solve (cache_model 1)));
      Alcotest.(check int) "evicted shape misses" (misses + 1) (Lp.Basis_cache.misses cache);
      (* capacity 0 means disabled: stores and lookups are no-ops, and
         unlike the pre-1.10 behaviour lookups are not even counted *)
      let off = Lp.Basis_cache.create ~capacity:0 in
      Lp.install_basis_cache (Some off);
      ignore (get_solution (Lp.solve (cache_model 0)));
      ignore (get_solution (Lp.solve (cache_model 0)));
      Alcotest.(check int) "capacity 0 stores nothing" 0 (Lp.Basis_cache.size off);
      Alcotest.(check int) "capacity 0 never hits" 0 (Lp.Basis_cache.hits off);
      Alcotest.(check int) "capacity 0 counts no misses" 0 (Lp.Basis_cache.misses off);
      (* the serve spelling of "disabled": --basis-cache 0 creates no
         cache at all on the session *)
      let s = Core.Session.create ~name:"no-cache" ~basis_cache:0 () in
      Alcotest.(check bool) "session basis_cache 0 holds no cache" true
        (Core.Session.basis_cache s = None))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_solution_feasible; prop_no_sample_beats_optimum; prop_strong_duality;
      prop_engines_agree; prop_warm_matches_cold; prop_sparse_matches_revised;
      prop_eta_refactor_equiv; prop_pricing_policies_agree ]

let () =
  Alcotest.run "lp"
    [ ( "unit",
        [ Alcotest.test_case "textbook max" `Quick test_textbook_max;
          Alcotest.test_case "textbook min" `Quick test_textbook_min;
          Alcotest.test_case "equalities" `Quick test_equality;
          Alcotest.test_case "fractional optimum" `Quick test_fractional_optimum;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "variable bounds" `Quick test_bounds;
          Alcotest.test_case "upper bound binding" `Quick test_upper_bound_binding;
          Alcotest.test_case "duplicate terms" `Quick test_duplicate_terms;
          Alcotest.test_case "degenerate (Beale)" `Quick test_degenerate;
          Alcotest.test_case "zero objective" `Quick test_zero_objective;
          Alcotest.test_case "redundant rows" `Quick test_redundant_rows;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
          Alcotest.test_case "no constraints" `Quick test_no_constraints;
          Alcotest.test_case "empty model" `Quick test_empty_model;
          Alcotest.test_case "mixed senses" `Quick test_mixed_senses;
          Alcotest.test_case "infeasible by bounds" `Quick test_infeasible_by_bounds;
          Alcotest.test_case "unknown variable rejected" `Quick test_unknown_variable_rejected;
          Alcotest.test_case "values accessor" `Quick test_values_accessor;
          Alcotest.test_case "warm start counters" `Quick test_warm_start_counters;
          Alcotest.test_case "engine introspection" `Quick test_engine_introspection;
          Alcotest.test_case "engine registry" `Quick test_engine_registry;
          Alcotest.test_case "certification provenance" `Quick test_certification_provenance;
          Alcotest.test_case "certify-fail fallback" `Quick test_certify_fail_fallback;
          Alcotest.test_case "float uses warm" `Quick test_float_uses_warm;
          Alcotest.test_case "sparse golden counters" `Quick test_sparse_golden_counters;
          Alcotest.test_case "shape digest" `Quick test_shape_digest;
          Alcotest.test_case "basis cache" `Quick test_basis_cache;
          Alcotest.test_case "basis cache eviction" `Quick test_basis_cache_eviction ] );
      ("properties", props) ]
