(* Active-time tests: feasibility via G_feas, minimal feasible solutions
   (Theorem 1, Fig. 3), the exact solvers, LP1 (lower bound, integrality
   gap) and the LP rounding 2-approximation (Theorem 2).

   The property tests check, on random small instances, every bound the
   paper proves: minimal <= 3 OPT, LP <= OPT <= rounding <= 2 LP, and
   minimal = OPT for unit jobs. *)

module Q = Rational
module S = Workload.Slotted
module Gen = Workload.Generate
module Gad = Workload.Gadgets

let job = S.job

let small_inst jobs g = S.make ~g jobs

(* -- feasibility --------------------------------------------------------- *)

let test_feasibility_basic () =
  let inst = small_inst [ job ~id:0 ~release:0 ~deadline:2 ~length:2 ] 1 in
  Alcotest.(check bool) "all open feasible" true (Active.Feasibility.feasible inst ~open_slots:[ 1; 2 ]);
  Alcotest.(check bool) "one slot infeasible" false (Active.Feasibility.feasible inst ~open_slots:[ 1 ]);
  Alcotest.(check bool) "irrelevant slot useless" false (Active.Feasibility.feasible inst ~open_slots:[ 1; 3 ])

let test_feasibility_capacity () =
  (* three unit jobs, same single-slot window, g = 2: infeasible *)
  let jobs = List.init 3 (fun id -> job ~id ~release:0 ~deadline:1 ~length:1) in
  Alcotest.(check bool) "over capacity" false
    (Active.Feasibility.feasible (small_inst jobs 2) ~open_slots:[ 1 ]);
  Alcotest.(check bool) "g=3 ok" true (Active.Feasibility.feasible (small_inst jobs 3) ~open_slots:[ 1 ])

let test_feasibility_only_jobs () =
  let jobs =
    [ job ~id:0 ~release:0 ~deadline:1 ~length:1; job ~id:1 ~release:0 ~deadline:1 ~length:1 ]
  in
  let inst = small_inst jobs 1 in
  Alcotest.(check bool) "both jobs too much" false (Active.Feasibility.feasible inst ~open_slots:[ 1 ]);
  Alcotest.(check bool) "restricted to one job" true
    (Active.Feasibility.feasible ~only_jobs:[ 0 ] inst ~open_slots:[ 1 ])

let test_schedule_extraction () =
  let jobs =
    [ job ~id:0 ~release:0 ~deadline:3 ~length:2; job ~id:1 ~release:1 ~deadline:3 ~length:2 ]
  in
  let inst = small_inst jobs 2 in
  (match Active.Feasibility.schedule inst ~open_slots:[ 1; 2; 3 ] with
  | None -> Alcotest.fail "expected schedule"
  | Some sched -> Alcotest.(check (option string)) "valid schedule" None (S.check_schedule inst sched));
  Alcotest.(check bool) "infeasible gives none" true
    (Active.Feasibility.schedule inst ~open_slots:[ 1 ] = None)

(* -- minimal feasible ----------------------------------------------------- *)

let test_minimal_simple () =
  (* one job of length 2 in window of 4: minimal = 2 slots *)
  let inst = small_inst [ job ~id:0 ~release:0 ~deadline:4 ~length:2 ] 1 in
  List.iter
    (fun order ->
      match Active.Minimal.solve inst order with
      | None -> Alcotest.fail "feasible instance"
      | Some sol ->
          Alcotest.(check int) "cost" 2 (Active.Solution.cost sol);
          Alcotest.(check (option string)) "valid" None (Active.Solution.verify inst sol);
          Alcotest.(check bool) "minimal" true
            (Active.Minimal.is_minimal inst ~open_slots:sol.Active.Solution.open_slots))
    [ Active.Minimal.Left_to_right; Active.Minimal.Right_to_left; Active.Minimal.Shuffled 7 ]

let test_minimal_infeasible () =
  let inst = small_inst [ job ~id:0 ~release:0 ~deadline:1 ~length:1; job ~id:1 ~release:0 ~deadline:1 ~length:1 ] 1 in
  Alcotest.(check bool) "infeasible" true (Active.Minimal.solve inst Active.Minimal.Left_to_right = None)

let test_minimal_fig3_gadget () =
  let g = 4 in
  let inst = Gad.minimal_feasible_tight g in
  (* the optimal slot set is feasible and costs g *)
  let opt_slots = Gad.minimal_feasible_tight_opt_slots g in
  Alcotest.(check bool) "opt slots feasible" true (Active.Feasibility.feasible inst ~open_slots:opt_slots);
  (* the adversarial start set is feasible and minimalizes to ~3g *)
  let bad = Gad.minimal_feasible_tight_bad_slots g in
  Alcotest.(check bool) "bad slots feasible" true (Active.Feasibility.feasible inst ~open_slots:bad);
  (* the adversarial set is already minimal: every closing order keeps it *)
  Alcotest.(check bool) "bad set is minimal" true (Active.Minimal.is_minimal inst ~open_slots:bad);
  (match Active.Minimal.minimalize inst ~start:bad Active.Minimal.Left_to_right with
  | None -> Alcotest.fail "bad start should be feasible"
  | Some sol ->
      Alcotest.(check int) "bad minimal cost = 3g-2" ((3 * g) - 2) (Active.Solution.cost sol);
      Alcotest.(check bool) "is minimal" true
        (Active.Minimal.is_minimal inst ~open_slots:sol.Active.Solution.open_slots));
  (* exact optimum is g *)
  Alcotest.(check (option int)) "OPT = g" (Some g) (Active.Exact.optimum inst)

let test_minimal_given_order () =
  (* the Given order closes the listed slots first *)
  let inst = small_inst [ job ~id:0 ~release:0 ~deadline:4 ~length:2 ] 1 in
  match Active.Minimal.solve inst (Active.Minimal.Given [ 3; 4 ]) with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
      (* closing 3 then 4 first leaves 1,2 open *)
      Alcotest.(check (list int)) "slots 1,2 remain" [ 1; 2 ] sol.Active.Solution.open_slots

(* -- exact solvers -------------------------------------------------------- *)

let test_exact_simple () =
  let inst =
    small_inst
      [ job ~id:0 ~release:0 ~deadline:4 ~length:2; job ~id:1 ~release:0 ~deadline:4 ~length:2 ]
      2
  in
  Alcotest.(check (option int)) "bnb" (Some 2) (Active.Exact.optimum inst);
  match Active.Exact.brute_force inst with
  | None -> Alcotest.fail "feasible"
  | Some sol -> Alcotest.(check int) "brute force" 2 (Active.Solution.cost sol)

let test_exact_infeasible () =
  let inst = small_inst [ job ~id:0 ~release:0 ~deadline:1 ~length:1; job ~id:1 ~release:0 ~deadline:1 ~length:1 ] 1 in
  Alcotest.(check (option int)) "bnb none" None (Active.Exact.optimum inst)

(* -- LP ------------------------------------------------------------------- *)

let test_lp_exact_on_integral () =
  (* instance whose LP optimum is integral: one job, window = length *)
  let inst = small_inst [ job ~id:0 ~release:0 ~deadline:3 ~length:3 ] 2 in
  match Active.Lp_model.solve inst with
  | None -> Alcotest.fail "feasible"
  | Some lp -> Alcotest.(check string) "cost 3" "3" (Q.to_string lp.Active.Lp_model.cost)

let test_lp_infeasible () =
  let inst = small_inst [ job ~id:0 ~release:0 ~deadline:1 ~length:1; job ~id:1 ~release:0 ~deadline:1 ~length:1 ] 1 in
  Alcotest.(check bool) "lp infeasible" true (Active.Lp_model.solve inst = None)

let test_lp_assignment_consistency () =
  (* the LP's x variables must serve each job's full demand, within
     capacity and the y values *)
  let params : Gen.slotted_params = { n = 6; horizon = 10; max_length = 3; slack = 3; g = 2 } in
  let inst = Gen.slotted ~params ~seed:13 () in
  match Active.Lp_model.solve inst with
  | None -> Alcotest.fail "feasible"
  | Some lp ->
      Array.iter
        (fun (j : S.job) ->
          let served =
            List.fold_left
              (fun acc ((_, id), v) -> if id = j.S.id then Q.add acc v else acc)
              Q.zero lp.Active.Lp_model.x
          in
          Alcotest.(check bool)
            (Printf.sprintf "job %d served" j.S.id)
            true
            (Q.compare served (Q.of_int j.S.length) >= 0))
        inst.S.jobs;
      List.iter
        (fun (slot, y) ->
          let used =
            List.fold_left
              (fun acc ((s, _), v) -> if s = slot then Q.add acc v else acc)
              Q.zero lp.Active.Lp_model.x
          in
          Alcotest.(check bool)
            (Printf.sprintf "slot %d capacity" slot)
            true
            (Q.compare used (Q.mul (Q.of_int inst.S.g) y) <= 0))
        lp.Active.Lp_model.y

let test_lp_integrality_gap () =
  (* Section 3.5: LP = g+1, IP = 2g *)
  let g = 3 in
  let inst = Gad.integrality_gap g in
  (match Active.Lp_model.solve inst with
  | None -> Alcotest.fail "feasible"
  | Some lp -> Alcotest.(check string) "LP = g+1" "4" (Q.to_string lp.Active.Lp_model.cost));
  Alcotest.(check (option int)) "IP = 2g" (Some (2 * g)) (Active.Exact.optimum inst)

let test_lp_sparse_wide () =
  (* methodology gadget (bench E24): block-diagonal LP1 with the known
     fractional optimum blocks * (g+1)/g — the witness documented in
     Gadgets.sparse_wide *)
  let g = 3 and blocks = 4 in
  let inst = Gad.sparse_wide ~g ~blocks ~width:5 in
  match Active.Lp_model.solve inst with
  | None -> Alcotest.fail "feasible"
  | Some lp ->
      Alcotest.(check string)
        "LP = blocks*(g+1)/g"
        (Q.to_string (Gad.sparse_wide_lp_opt ~g ~blocks))
        (Q.to_string lp.Active.Lp_model.cost)

(* -- LP rounding ---------------------------------------------------------- *)

let check_rounding inst =
  match Active.Rounding.solve inst with
  | None -> None
  | Some (sol, stats) ->
      Alcotest.(check (option string)) "rounded schedule valid" None (Active.Solution.verify inst sol);
      Alcotest.(check bool) "no fallback" false stats.Active.Rounding.fallback_used;
      Alcotest.(check bool) "cost <= 2 LP" true
        (Q.compare (Q.of_int stats.Active.Rounding.rounded_cost) (Q.mul Q.two stats.Active.Rounding.lp_cost) <= 0);
      Alcotest.(check bool) "cost >= LP" true
        (Q.compare (Q.of_int stats.Active.Rounding.rounded_cost) stats.Active.Rounding.lp_cost >= 0);
      Some (sol, stats)

let test_rounding_simple () =
  let inst = small_inst [ job ~id:0 ~release:0 ~deadline:4 ~length:2 ] 1 in
  match check_rounding inst with
  | None -> Alcotest.fail "feasible"
  | Some (sol, _) -> Alcotest.(check int) "cost 2" 2 (Active.Solution.cost sol)

let test_rounding_integrality_gadget () =
  let g = 3 in
  let inst = Gad.integrality_gap g in
  match check_rounding inst with
  | None -> Alcotest.fail "feasible"
  | Some (sol, _) -> Alcotest.(check int) "rounding exact here" (2 * g) (Active.Solution.cost sol)

let test_rounding_fig3 () =
  let g = 4 in
  let inst = Gad.minimal_feasible_tight g in
  match check_rounding inst with
  | None -> Alcotest.fail "feasible"
  | Some (sol, _) ->
      (* 2-approx: at most 2g; in fact LP rounding does well here *)
      Alcotest.(check bool) "within 2 OPT" true (Active.Solution.cost sol <= 2 * g)

let test_rounding_infeasible () =
  let inst = small_inst [ job ~id:0 ~release:0 ~deadline:1 ~length:1; job ~id:1 ~release:0 ~deadline:1 ~length:1 ] 1 in
  Alcotest.(check bool) "none" true (Active.Rounding.solve inst = None)

(* -- unit jobs ------------------------------------------------------------ *)

let test_unit_jobs_guard () =
  let inst = small_inst [ job ~id:0 ~release:0 ~deadline:3 ~length:2 ] 1 in
  Alcotest.check_raises "rejects non-unit" (Invalid_argument "Unit_jobs.solve: instance has non-unit jobs")
    (fun () -> ignore (Active.Unit_jobs.solve inst))

(* Regression: even for unit jobs, NOT every minimal feasible solution is
   optimal - a shuffled closing order can land on a worse minimal set
   (found by the property fuzzer at seed 23641). Only the directional
   orders coincide with the optimum here. *)
let test_unit_jobs_bad_minimal_exists () =
  let inst = Gen.slotted_unit ~horizon:8 ~g:2 ~n:6 ~seed:23641 () in
  Alcotest.(check (option int)) "OPT" (Some 4) (Active.Exact.optimum inst);
  (match Active.Minimal.solve inst (Active.Minimal.Shuffled 23641) with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
      Alcotest.(check int) "shuffled minimal is worse" 5 (Active.Solution.cost sol);
      Alcotest.(check bool) "yet minimal" true
        (Active.Minimal.is_minimal inst ~open_slots:sol.Active.Solution.open_slots));
  match Active.Unit_jobs.solve inst with
  | None -> Alcotest.fail "feasible"
  | Some sol -> Alcotest.(check int) "unit solver optimal" 4 (Active.Solution.cost sol)

(* -- properties ----------------------------------------------------------- *)

let tiny_params : Gen.slotted_params = { n = 5; horizon = 8; max_length = 3; slack = 3; g = 2 }

let seed_arb = QCheck.int_range 0 100_000

let prop_ilp_matches_bnb =
  QCheck.Test.make ~name:"LP-based branch and bound = combinatorial optimum" ~count:25 seed_arb
    (fun seed ->
      let inst = Gen.slotted ~params:tiny_params ~seed () in
      Active.Ilp.optimum inst = Active.Exact.optimum inst
      &&
      match Active.Ilp.exact inst with
      | None -> Active.Exact.optimum inst = None
      | Some (sol, _) -> Active.Solution.verify inst sol = None)

let prop_bnb_matches_bruteforce =
  QCheck.Test.make ~name:"branch-and-bound = brute force" ~count:40 seed_arb (fun seed ->
      let inst = Gen.slotted ~params:{ tiny_params with n = 4; horizon = 6 } ~seed () in
      let a = Option.map Active.Solution.cost (Active.Exact.brute_force inst) in
      let b = Active.Exact.optimum inst in
      a = b)

let prop_minimal_within_3opt =
  QCheck.Test.make ~name:"minimal feasible <= 3 OPT (all orders)" ~count:40 seed_arb (fun seed ->
      let inst = Gen.slotted ~params:tiny_params ~seed () in
      match Active.Exact.optimum inst with
      | None -> true
      | Some opt ->
          List.for_all
            (fun order ->
              match Active.Minimal.solve inst order with
              | None -> false
              | Some sol ->
                  Active.Solution.cost sol <= 3 * opt
                  && Active.Solution.verify inst sol = None
                  && Active.Minimal.is_minimal inst ~open_slots:sol.Active.Solution.open_slots)
            [ Active.Minimal.Left_to_right; Active.Minimal.Right_to_left; Active.Minimal.Shuffled seed ])

let prop_lp_sandwich =
  QCheck.Test.make ~name:"LP <= OPT <= rounding <= 2 LP, rounding feasible" ~count:40 seed_arb
    (fun seed ->
      let inst = Gen.slotted ~params:tiny_params ~seed () in
      match (Active.Lp_model.solve inst, Active.Exact.optimum inst, Active.Rounding.solve inst) with
      | None, None, None -> true
      | Some lp, Some opt, Some (sol, stats) ->
          let lpc = lp.Active.Lp_model.cost in
          let r = Active.Solution.cost sol in
          Q.compare lpc (Q.of_int opt) <= 0
          && opt <= r
          && Q.compare (Q.of_int r) (Q.mul Q.two lpc) <= 0
          && (not stats.Active.Rounding.fallback_used)
          && Active.Solution.verify inst sol = None
      | _ -> false)

let prop_unit_minimal_optimal =
  QCheck.Test.make ~name:"unit jobs: directional minimalization is optimal" ~count:40 seed_arb
    (fun seed ->
      let inst = Gen.slotted_unit ~horizon:8 ~g:2 ~n:6 ~seed () in
      match Active.Exact.optimum inst with
      | None -> Active.Unit_jobs.solve inst = None
      | Some opt ->
          List.for_all
            (fun order ->
              match Active.Minimal.solve inst order with
              | None -> false
              | Some sol -> Active.Solution.cost sol = opt)
            [ Active.Minimal.Left_to_right; Active.Minimal.Right_to_left ])

(* Lemma 3, computationally: the right-shifted y vector still admits a
   feasible fractional assignment, and preserves the total mass. *)
let prop_right_shift_feasible =
  QCheck.Test.make ~name:"Lemma 3: right-shifted LP solution stays feasible" ~count:30 seed_arb
    (fun seed ->
      let inst = Gen.slotted ~params:tiny_params ~seed () in
      match Active.Lp_model.solve inst with
      | None -> true
      | Some lp ->
          let shifted = Active.Lp_model.right_shift inst lp in
          let mass l = List.fold_left (fun acc (_, v) -> Q.add acc v) Q.zero l in
          Q.equal (mass shifted) (mass lp.Active.Lp_model.y)
          && List.for_all (fun (_, v) -> Q.compare v Q.zero >= 0 && Q.compare v Q.one <= 0) shifted
          && Active.Lp_model.feasible_with_y inst shifted)

let prop_lp_below_opt =
  QCheck.Test.make ~name:"LP value within (OPT/2, OPT]" ~count:40 seed_arb (fun seed ->
      let inst = Gen.slotted ~params:{ tiny_params with g = 3 } ~seed () in
      match (Active.Lp_model.solve inst, Active.Exact.optimum inst) with
      | None, None -> true
      | Some lp, Some opt ->
          let lpc = lp.Active.Lp_model.cost in
          Q.compare lpc (Q.of_int opt) <= 0 && Q.compare (Q.mul Q.two lpc) (Q.of_int opt) >= 0
      | _ -> false)

(* The incremental oracle must be observationally equivalent to the
   per-probe rebuild: both compute exact max flows, so the search visits
   the same tree and reports the same node/probe counters. *)
let prop_probe_modes_agree =
  QCheck.Test.make ~name:"incremental oracle = rebuild: optimum and search tree" ~count:30 seed_arb
    (fun seed ->
      let inst = Gen.slotted ~params:tiny_params ~seed () in
      let run oracle =
        let obs = Obs.create () in
        let result =
          match Active.Exact.solve ~oracle ~obs inst with
          | Budget.Complete sol -> Option.map Active.Solution.cost sol
          | _ -> None
        in
        let counter name = Option.value ~default:0 (List.assoc_opt name (Obs.counters obs)) in
        (result, counter "active.exact.nodes", counter "active.exact.flow_checks")
      in
      run Active.Feasibility.Incremental = run Active.Feasibility.Rebuild)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_bnb_matches_bruteforce; prop_ilp_matches_bnb; prop_minimal_within_3opt; prop_lp_sandwich;
      prop_unit_minimal_optimal; prop_right_shift_feasible; prop_lp_below_opt;
      prop_probe_modes_agree ]

let () =
  Alcotest.run "active"
    [ ( "feasibility",
        [ Alcotest.test_case "basic" `Quick test_feasibility_basic;
          Alcotest.test_case "capacity" `Quick test_feasibility_capacity;
          Alcotest.test_case "only_jobs" `Quick test_feasibility_only_jobs;
          Alcotest.test_case "schedule extraction" `Quick test_schedule_extraction ] );
      ( "minimal",
        [ Alcotest.test_case "simple" `Quick test_minimal_simple;
          Alcotest.test_case "infeasible" `Quick test_minimal_infeasible;
          Alcotest.test_case "given order" `Quick test_minimal_given_order;
          Alcotest.test_case "fig3 gadget" `Quick test_minimal_fig3_gadget ] );
      ( "exact",
        [ Alcotest.test_case "simple" `Quick test_exact_simple;
          Alcotest.test_case "infeasible" `Quick test_exact_infeasible ] );
      ( "lp",
        [ Alcotest.test_case "integral instance" `Quick test_lp_exact_on_integral;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "assignment consistency" `Quick test_lp_assignment_consistency;
          Alcotest.test_case "integrality gap gadget" `Quick test_lp_integrality_gap;
          Alcotest.test_case "sparse-wide gadget" `Quick test_lp_sparse_wide ] );
      ( "rounding",
        [ Alcotest.test_case "simple" `Quick test_rounding_simple;
          Alcotest.test_case "integrality gadget" `Quick test_rounding_integrality_gadget;
          Alcotest.test_case "fig3 gadget" `Quick test_rounding_fig3;
          Alcotest.test_case "infeasible" `Quick test_rounding_infeasible ] );
      ( "unit jobs",
        [ Alcotest.test_case "guard" `Quick test_unit_jobs_guard;
          Alcotest.test_case "bad minimal exists" `Quick test_unit_jobs_bad_minimal_exists ] );
      ("properties", props) ]
