(* Tests for the discrete-event simulator and the ASCII renderer.

   The simulator is the end-to-end oracle of the repository: executing a
   packing (or active-time solution) must spend exactly the analytic
   objective in energy, flag no violations on valid schedules, and flag
   violations on deliberately broken ones. *)

module Q = Rational
module B = Workload.Bjob
module Gen = Workload.Generate

let ij id start len = B.interval ~id ~start:(Q.of_int start) ~length:(Q.of_int len)

let test_packing_energy () =
  let jobs = [ ij 0 0 3; ij 1 1 3; ij 2 6 2 ] in
  let packing = Busy.First_fit.solve ~g:2 jobs in
  let report = Sim.run_packing ~g:2 packing in
  Alcotest.(check (list string)) "no violations" [] report.Sim.violations;
  Alcotest.(check string) "energy = busy time" (Q.to_string (Busy.Bundle.total_busy packing))
    (Q.to_string report.Sim.total_energy);
  Alcotest.(check bool) "peak within g" true (report.Sim.peak_parallelism <= 2);
  Alcotest.(check bool) "utilization in (0,1]" true
    (Q.compare report.Sim.utilization Q.zero > 0 && Q.compare report.Sim.utilization Q.one <= 0)

let test_packing_violation_detected () =
  (* 3 overlapping jobs forced onto one machine with g = 2 *)
  let jobs = [ ij 0 0 3; ij 1 1 3; ij 2 2 3 ] in
  let report = Sim.run_packing ~g:2 [ jobs ] in
  Alcotest.(check bool) "violation flagged" true (report.Sim.violations <> []);
  Alcotest.(check int) "peak recorded" 3 report.Sim.peak_parallelism

let test_packing_flexible_rejected () =
  let flex = B.make ~id:0 ~release:Q.zero ~deadline:(Q.of_int 5) ~length:Q.one in
  let report = Sim.run_packing ~g:2 [ [ flex ] ] in
  Alcotest.(check bool) "flexible flagged" true (report.Sim.violations <> [])

let test_switch_counting () =
  (* two disjoint jobs on one machine: two power-ons *)
  let report = Sim.run_packing ~g:2 [ [ ij 0 0 1; ij 1 5 1 ] ] in
  Alcotest.(check int) "switch ons" 2 report.Sim.total_switch_ons;
  (* merged when adjacent *)
  let report2 = Sim.run_packing ~g:2 [ [ ij 0 0 1; ij 1 1 1 ] ] in
  Alcotest.(check int) "adjacent merge" 1 report2.Sim.total_switch_ons

let test_active_energy () =
  let inst =
    Workload.Slotted.make ~g:2
      [ Workload.Slotted.job ~id:0 ~release:0 ~deadline:4 ~length:2;
        Workload.Slotted.job ~id:1 ~release:0 ~deadline:4 ~length:2 ]
  in
  match Active.Exact.branch_and_bound inst with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
      let report = Sim.run_active inst sol in
      Alcotest.(check (list string)) "no violations" [] report.Sim.violations;
      Alcotest.(check string) "energy = active time" (string_of_int (Active.Solution.cost sol))
        (Q.to_string report.Sim.total_energy)

let test_active_violation () =
  let inst =
    Workload.Slotted.make ~g:1 [ Workload.Slotted.job ~id:0 ~release:0 ~deadline:2 ~length:1 ]
  in
  (* schedule outside the declared open slots *)
  let bogus = { Active.Solution.open_slots = [ 1 ]; schedule = [ (0, [ 2 ]) ] } in
  let report = Sim.run_active inst bogus in
  Alcotest.(check bool) "violation flagged" true (report.Sim.violations <> [])

let test_preemptive_energy () =
  let jobs = List.init 4 (fun id -> B.make ~id ~release:Q.zero ~deadline:Q.two ~length:Q.two) in
  let cost, _, detail = Busy.Preemptive.bounded ~g:2 jobs in
  let report = Sim.run_preemptive ~g:2 detail in
  Alcotest.(check (list string)) "no violations" [] report.Sim.violations;
  Alcotest.(check string) "energy = bounded cost" (Q.to_string cost) (Q.to_string report.Sim.total_energy)

(* -- renderer ---------------------------------------------------------------- *)

let test_render_slotted () =
  let inst =
    Workload.Slotted.make ~g:1 [ Workload.Slotted.job ~id:0 ~release:0 ~deadline:4 ~length:2 ]
  in
  let sol = { Active.Solution.open_slots = [ 2; 3 ]; schedule = [ (0, [ 2; 3 ]) ] } in
  Alcotest.(check string) "gantt" "slots   .##.\njob 0   .xx.\n" (Render.slotted inst sol)

let test_render_packing () =
  let packing = [ [ ij 0 0 2; ij 1 2 2 ] ] in
  let s = Render.packing ~width:8 packing in
  Alcotest.(check string) "row" "m0   |00001111|\n" s;
  Alcotest.(check string) "empty" "(empty packing)\n" (Render.packing [])

let test_render_overlap_star () =
  let s = Render.packing ~width:4 [ [ ij 0 0 2; ij 1 0 2 ] ] in
  Alcotest.(check string) "overlap" "m0   |****|\n" s

let count_substring needle haystack =
  let n = String.length needle and h = String.length haystack in
  let count = ref 0 in
  for i = 0 to h - n do
    if String.sub haystack i n = needle then incr count
  done;
  !count

let test_render_svg () =
  let packing = [ [ ij 0 0 2; ij 1 2 2 ]; [ ij 2 1 3 ] ] in
  let svg = Render.packing_svg ~width:300 packing in
  Alcotest.(check bool) "starts with svg" true (String.length svg > 4 && String.sub svg 0 4 = "<svg");
  Alcotest.(check int) "one rect per job" 3 (count_substring "<rect" svg);
  Alcotest.(check bool) "closes" true (count_substring "</svg>" svg = 1);
  let empty = Render.packing_svg [] in
  Alcotest.(check bool) "empty handled" true (count_substring "empty packing" empty = 1)

let test_render_slotted_svg () =
  let inst =
    Workload.Slotted.make ~g:1 [ Workload.Slotted.job ~id:0 ~release:0 ~deadline:4 ~length:2 ]
  in
  let sol = { Active.Solution.open_slots = [ 2; 3 ]; schedule = [ (0, [ 2; 3 ]) ] } in
  let svg = Render.slotted_svg inst sol in
  (* 2 open-slot rects + 2 unit rects *)
  Alcotest.(check int) "rects" 4 (count_substring "<rect" svg);
  Alcotest.(check int) "closed" 1 (count_substring "</svg>" svg)

let test_render_preemptive () =
  let jobs = [ B.make ~id:0 ~release:Q.zero ~deadline:Q.two ~length:Q.one ] in
  let sol = Busy.Preemptive.unbounded jobs in
  let s = Render.preemptive sol ~width:4 in
  Alcotest.(check bool) "contains job row" true (String.length s > 0 && String.sub s 0 4 = "job ")

(* -- rolling horizon ----------------------------------------------------------- *)

module Rolling = Sim.Rolling
module S = Workload.Slotted

let tiny_trace =
  S.make ~g:2
    [ S.job ~id:0 ~release:0 ~deadline:6 ~length:2;
      S.job ~id:1 ~release:1 ~deadline:7 ~length:3;
      S.job ~id:2 ~release:4 ~deadline:10 ~length:2 ]

let tiny_arrivals = [ (1, 1); (2, 5) ]

let test_rolling_basic () =
  let r = Rolling.run ~arrivals:tiny_arrivals tiny_trace in
  Alcotest.(check int) "all jobs complete" 3 r.Rolling.completed_jobs;
  Alcotest.(check int) "no misses" 0 r.Rolling.total_misses;
  Alcotest.(check int) "work = total length" (S.total_length tiny_trace) r.Rolling.total_work;
  Alcotest.(check int) "energy = open slots" (List.length r.Rolling.open_slots) r.Rolling.total_energy;
  Alcotest.(check (option string)) "committed schedule is valid" None
    (S.check_schedule tiny_trace r.Rolling.schedule);
  (match r.Rolling.replay with
  | None -> Alcotest.fail "complete run must replay"
  | Some rep ->
      Alcotest.(check (list string)) "replay clean" [] rep.Sim.violations;
      Alcotest.(check string) "replayed energy = committed energy"
        (string_of_int r.Rolling.total_energy)
        (Q.to_string rep.Sim.total_energy));
  (* per-epoch bookkeeping sums to the totals *)
  Alcotest.(check int) "epoch work sums" r.Rolling.total_work
    (List.fold_left (fun acc e -> acc + e.Rolling.work) 0 r.Rolling.epochs);
  Alcotest.(check int) "epoch energy sums" r.Rolling.total_energy
    (List.fold_left (fun acc e -> acc + e.Rolling.energy) 0 r.Rolling.epochs);
  (* a job not yet arrived is outside the window *)
  let e0 = List.hd r.Rolling.epochs in
  Alcotest.(check int) "only job 0 at epoch 0" 1 e0.Rolling.arrived;
  List.iter
    (fun e ->
      Alcotest.(check bool) "every epoch stays feasible" true e.Rolling.feasible;
      match e.Rolling.lower_bound with
      | Some b ->
          Alcotest.(check bool) "pinned LP bounds the final energy" true
            (Q.compare b (Q.of_int r.Rolling.total_energy) <= 0)
      | None -> Alcotest.fail "non-degraded epoch must carry a bound")
    r.Rolling.epochs

let test_rolling_miss () =
  (* g = 1 and a late arrival whose window is already spent: the job is
     dropped as an SLA miss, the rest completes, the replay is skipped *)
  let inst =
    S.make ~g:1
      [ S.job ~id:0 ~release:0 ~deadline:4 ~length:2;
        S.job ~id:1 ~release:0 ~deadline:4 ~length:2;
        S.job ~id:2 ~release:0 ~deadline:8 ~length:2 ]
  in
  let config = { Rolling.default_config with Rolling.epoch_len = 2 } in
  let r = Rolling.run ~config ~arrivals:[ (1, 3) ] inst in
  Alcotest.(check int) "one miss" 1 r.Rolling.total_misses;
  Alcotest.(check int) "others complete" 2 r.Rolling.completed_jobs;
  Alcotest.(check bool) "replay skipped" true (r.Rolling.replay = None);
  Alcotest.(check int) "misses accounted per epoch" 1
    (List.fold_left (fun acc e -> acc + e.Rolling.sla_misses) 0 r.Rolling.epochs)

let test_rolling_deadline () =
  (* an always-expired probe degrades every epoch deterministically: the
     cascade records the aborted tier, EDF still commits the work *)
  let config =
    { Rolling.default_config with Rolling.epoch_deadline = Some (fun () () -> true) }
  in
  let r = Rolling.run ~config ~arrivals:tiny_arrivals tiny_trace in
  Alcotest.(check int) "still completes" 3 r.Rolling.completed_jobs;
  List.iter
    (fun e ->
      Alcotest.(check bool) "degraded" true e.Rolling.degraded;
      Alcotest.(check bool) "deadline bound skipped" true (e.Rolling.lower_bound = None);
      match e.Rolling.provenance with
      | Some p ->
          Alcotest.(check bool) "aborted tier recorded" true
            (List.exists
               (fun (a : Budget.Cascade.attempt) -> a.status = Budget.Cascade.Deadline)
               p.attempts)
      | None -> Alcotest.fail "cascade provenance expected")
    r.Rolling.epochs

let test_rolling_of_busy () =
  let jobs = [ ij 0 0 3; ij 1 1 3 ] in
  let inst = Rolling.of_busy ~g:2 jobs in
  Alcotest.(check int) "jobs" 2 (S.num_jobs inst);
  Alcotest.(check int) "horizon" 4 (S.horizon inst);
  let frac = B.make ~id:7 ~release:Q.zero ~deadline:(Q.div Q.one Q.two) ~length:(Q.div Q.one Q.two) in
  Alcotest.check_raises "fractional coordinates rejected"
    (Invalid_argument "Rolling.of_busy: job 7 has non-integral length 1/2") (fun () ->
      ignore (Rolling.of_busy ~g:2 [ frac ]))

let test_rolling_counters () =
  let obs = Obs.create () in
  let r = Rolling.run ~obs ~arrivals:tiny_arrivals tiny_trace in
  let counter n = match List.assoc_opt n (Obs.counters obs) with Some v -> v | None -> 0 in
  Alcotest.(check int) "sim.epochs" (List.length r.Rolling.epochs) (counter "sim.epochs");
  Alcotest.(check int) "sim.energy" r.Rolling.total_energy (counter "sim.energy");
  Alcotest.(check int) "sim.work" r.Rolling.total_work (counter "sim.work");
  Alcotest.(check bool) "session warm hits recorded" true (counter "session.warm_hits" > 0);
  (* the cold baseline reuses nothing across epochs *)
  let cold = Obs.create () in
  let config = { Rolling.default_config with Rolling.warm = false } in
  let rc = Rolling.run ~obs:cold ~config ~arrivals:tiny_arrivals tiny_trace in
  Alcotest.(check int) "cold energy agrees" r.Rolling.total_energy rc.Rolling.total_energy;
  let cold_counter n = match List.assoc_opt n (Obs.counters cold) with Some v -> v | None -> 0 in
  Alcotest.(check bool) "cold does more LP work" true
    (cold_counter "lp.exact_cells" > counter "lp.exact_cells")

let test_rolling_json_and_pp () =
  let r = Rolling.run ~arrivals:tiny_arrivals tiny_trace in
  (match Sim.Rolling.to_json r with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool) "schema" true (List.assoc_opt "schema" fields = Some (Obs.Json.Int 1));
      Alcotest.(check bool) "kind" true
        (List.assoc_opt "kind" fields = Some (Obs.Json.String "rolling"));
      (match List.assoc_opt "epochs" fields with
      | Some (Obs.Json.List es) ->
          Alcotest.(check int) "one object per epoch" (List.length r.Rolling.epochs) (List.length es)
      | _ -> Alcotest.fail "epochs list expected");
      (* byte-stable: same trace, same config, same document *)
      let r2 = Rolling.run ~arrivals:tiny_arrivals tiny_trace in
      Alcotest.(check string) "deterministic json"
        (Obs.Json.to_string (Rolling.to_json r))
        (Obs.Json.to_string (Rolling.to_json r2))
  | _ -> Alcotest.fail "object expected");
  let text = Format.asprintf "%a" Rolling.pp r in
  Alcotest.(check bool) "pp has a totals line" true (count_substring "total: energy=" text = 1)

let test_rolling_epochs_svg () =
  let r = Rolling.run ~arrivals:tiny_arrivals tiny_trace in
  let svg = Render.epochs_svg r in
  Alcotest.(check bool) "starts with svg" true (String.sub svg 0 4 = "<svg");
  Alcotest.(check int) "closes" 1 (count_substring "</svg>" svg);
  (* one label per epoch lane plus the cumulative band *)
  List.iter
    (fun (e : Rolling.epoch) ->
      Alcotest.(check int)
        (Printf.sprintf "lane e%d" e.Rolling.index)
        1
        (count_substring (Printf.sprintf ">e%d</text>" e.Rolling.index) svg))
    r.Rolling.epochs;
  Alcotest.(check int) "cumulative band" 1 (count_substring ">all</text>" svg)

(* -- properties ---------------------------------------------------------------- *)

let seed_arb = QCheck.int_range 0 100_000

let prop_sim_matches_analytic =
  QCheck.Test.make ~name:"simulated energy = analytic busy time, no violations" ~count:40 seed_arb
    (fun seed ->
      let jobs = Gen.interval_jobs ~n:10 ~horizon:20 ~max_length:5 ~seed () in
      List.for_all
        (fun g ->
          List.for_all
            (fun solve ->
              let packing = solve ~g jobs in
              let report = Sim.run_packing ~g packing in
              report.Sim.violations = []
              && Q.equal report.Sim.total_energy (Busy.Bundle.total_busy packing)
              && report.Sim.peak_parallelism <= g
              && Q.compare report.Sim.utilization Q.one <= 0)
            [ (fun ~g jobs -> Busy.First_fit.solve ~g jobs); (fun ~g jobs -> Busy.Greedy_tracking.solve ~g jobs); (fun ~g jobs -> Busy.Two_approx.solve ~g jobs) ])
        [ 1; 2; 3 ])

let prop_sim_active =
  QCheck.Test.make ~name:"active-time solutions replay cleanly" ~count:30 seed_arb (fun seed ->
      let params : Gen.slotted_params = { n = 6; horizon = 10; max_length = 3; slack = 3; g = 2 } in
      let inst = Gen.slotted ~params ~seed () in
      match Active.Minimal.solve inst Active.Minimal.Right_to_left with
      | None -> true
      | Some sol ->
          let report = Sim.run_active inst sol in
          report.Sim.violations = []
          && Q.equal report.Sim.total_energy (Q.of_int (Active.Solution.cost sol))
          && Q.compare report.Sim.utilization Q.zero >= 0
          && Q.compare report.Sim.utilization Q.one <= 0)

let prop_slotted_svg_shape =
  QCheck.Test.make ~name:"slotted SVG is well-formed with one rect per unit" ~count:30 seed_arb
    (fun seed ->
      let params : Gen.slotted_params = { n = 6; horizon = 10; max_length = 3; slack = 3; g = 2 } in
      let inst = Gen.slotted ~params ~seed () in
      match Active.Minimal.solve inst Active.Minimal.Right_to_left with
      | None -> true
      | Some sol ->
          let svg = Render.slotted_svg inst sol in
          let units =
            List.fold_left (fun acc (_, slots) -> acc + List.length slots) 0
              sol.Active.Solution.schedule
          in
          String.length svg > 4
          && String.sub svg 0 4 = "<svg"
          && count_substring "</svg>" svg = 1
          && count_substring "<rect" svg = List.length sol.Active.Solution.open_slots + units)

let prop_render_total =
  QCheck.Test.make ~name:"renderer never raises and is line-structured" ~count:30 seed_arb (fun seed ->
      let jobs = Gen.interval_jobs ~n:8 ~horizon:16 ~max_length:4 ~seed () in
      let packing = Busy.First_fit.solve ~g:2 jobs in
      let s = Render.packing ~width:40 packing in
      String.length s > 0
      && List.length (String.split_on_char '\n' s) = List.length packing + 1)

(* report invariants: utilization is zero exactly when no energy was
   spent, and the report totals are the fold of its per-machine traces *)
let report_invariants (r : Sim.report) =
  Q.is_zero r.Sim.utilization = Q.is_zero r.Sim.total_energy
  && r.Sim.total_switch_ons
     = List.fold_left (fun acc (t : Sim.machine_trace) -> acc + t.Sim.switch_ons) 0 r.Sim.traces
  && Q.equal r.Sim.total_energy
       (List.fold_left (fun acc (t : Sim.machine_trace) -> Q.add acc t.Sim.energy) Q.zero r.Sim.traces)

let prop_report_invariants =
  QCheck.Test.make ~name:"report invariants (utilization, switch-on and energy folds)" ~count:40
    seed_arb (fun seed ->
      let jobs = Gen.interval_jobs ~n:8 ~horizon:16 ~max_length:4 ~seed () in
      List.for_all
        (fun g -> report_invariants (Sim.run_packing ~g (Busy.First_fit.solve ~g jobs)))
        [ 1; 2; 3 ]
      && report_invariants (Sim.run_packing ~g:2 [])
      &&
      let params : Gen.slotted_params = { n = 6; horizon = 10; max_length = 3; slack = 3; g = 2 } in
      let inst = Gen.slotted ~params ~seed () in
      match Active.Minimal.solve inst Active.Minimal.Right_to_left with
      | None -> true
      | Some sol -> report_invariants (Sim.run_active inst sol))

(* satellite oracle: for EVERY registered active-slotted solver that
   returns a schedule witness, replaying the witness spends exactly the
   analytic objective in energy *)
let prop_registry_replay_energy =
  QCheck.Test.make ~name:"replayed energy = analytic cost for every registry solver" ~count:25
    seed_arb (fun seed ->
      let params : Gen.slotted_params = { n = 6; horizon = 12; max_length = 3; slack = 3; g = 2 } in
      let inst = Gen.slotted ~params ~seed () in
      let ci = Core.Instance.Slotted inst in
      Core.Registry.all ()
      |> List.filter (fun (s : Core.Solver.t) ->
             s.Core.Solver.kind = Core.Instance.Active_slotted && s.Core.Solver.guard ci = None)
      |> List.for_all (fun (s : Core.Solver.t) ->
             match s.Core.Solver.solve ~budget:(Budget.limited 300_000) ci with
             | {
                 Core.Result.status = Core.Result.Solved;
                 objective = Some (Core.Result.Slots cost);
                 witness = Some (Core.Result.Opened { open_slots; schedule });
                 _;
               } ->
                 let report = Sim.run_active inst { Active.Solution.open_slots; schedule } in
                 report.Sim.violations = []
                 && Q.equal report.Sim.total_energy (Q.of_int cost)
                 && report_invariants report
             | _ -> true (* bound-only, infeasible or exhausted: nothing to replay *)))

(* rolling runs that finish without misses commit a valid schedule whose
   replay spends exactly the committed energy, warm or cold — and the
   cold baseline answers identically *)
let prop_rolling_replay =
  QCheck.Test.make ~name:"rolling-horizon commits replay to the committed energy" ~count:15
    seed_arb (fun seed ->
      let params : Gen.slotted_params = { n = 8; horizon = 16; max_length = 3; slack = 4; g = 2 } in
      let inst, arrivals = Gen.timed_slotted ~params ~seed () in
      let r = Rolling.run ~arrivals inst in
      let cold =
        Rolling.run ~config:{ Rolling.default_config with Rolling.warm = false } ~arrivals inst
      in
      r.Rolling.total_energy = cold.Rolling.total_energy
      && r.Rolling.total_misses = cold.Rolling.total_misses
      && r.Rolling.schedule = cold.Rolling.schedule
      && r.Rolling.total_work
         = List.fold_left (fun acc e -> acc + e.Rolling.work) 0 r.Rolling.epochs
      && List.for_all
           (fun e ->
             match e.Rolling.lower_bound with
             | Some b ->
                 r.Rolling.total_misses > 0
                 || Q.compare b (Q.of_int r.Rolling.total_energy) <= 0
             | None -> true)
           r.Rolling.epochs
      &&
      match r.Rolling.replay with
      | Some rep ->
          r.Rolling.total_misses = 0
          && rep.Sim.violations = []
          && Q.equal rep.Sim.total_energy (Q.of_int r.Rolling.total_energy)
          && S.check_schedule inst r.Rolling.schedule = None
          && report_invariants rep
      | None -> r.Rolling.total_misses > 0)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sim_matches_analytic; prop_sim_active; prop_slotted_svg_shape; prop_render_total;
      prop_report_invariants; prop_registry_replay_energy; prop_rolling_replay ]

let () =
  Alcotest.run "sim"
    [ ( "simulator",
        [ Alcotest.test_case "packing energy" `Quick test_packing_energy;
          Alcotest.test_case "violation detected" `Quick test_packing_violation_detected;
          Alcotest.test_case "flexible rejected" `Quick test_packing_flexible_rejected;
          Alcotest.test_case "switch counting" `Quick test_switch_counting;
          Alcotest.test_case "active energy" `Quick test_active_energy;
          Alcotest.test_case "active violation" `Quick test_active_violation;
          Alcotest.test_case "preemptive energy" `Quick test_preemptive_energy ] );
      ( "rolling",
        [ Alcotest.test_case "basic run" `Quick test_rolling_basic;
          Alcotest.test_case "sla miss" `Quick test_rolling_miss;
          Alcotest.test_case "deadline degradation" `Quick test_rolling_deadline;
          Alcotest.test_case "of_busy" `Quick test_rolling_of_busy;
          Alcotest.test_case "counters and cold baseline" `Quick test_rolling_counters;
          Alcotest.test_case "json and pp" `Quick test_rolling_json_and_pp;
          Alcotest.test_case "epochs svg" `Quick test_rolling_epochs_svg ] );
      ( "renderer",
        [ Alcotest.test_case "slotted" `Quick test_render_slotted;
          Alcotest.test_case "packing" `Quick test_render_packing;
          Alcotest.test_case "overlap star" `Quick test_render_overlap_star;
          Alcotest.test_case "svg packing" `Quick test_render_svg;
          Alcotest.test_case "svg slotted" `Quick test_render_slotted_svg;
          Alcotest.test_case "preemptive" `Quick test_render_preemptive ] );
      ("properties", props) ]
