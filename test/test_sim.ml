(* Tests for the discrete-event simulator and the ASCII renderer.

   The simulator is the end-to-end oracle of the repository: executing a
   packing (or active-time solution) must spend exactly the analytic
   objective in energy, flag no violations on valid schedules, and flag
   violations on deliberately broken ones. *)

module Q = Rational
module B = Workload.Bjob
module Gen = Workload.Generate

let ij id start len = B.interval ~id ~start:(Q.of_int start) ~length:(Q.of_int len)

let test_packing_energy () =
  let jobs = [ ij 0 0 3; ij 1 1 3; ij 2 6 2 ] in
  let packing = Busy.First_fit.solve ~g:2 jobs in
  let report = Sim.run_packing ~g:2 packing in
  Alcotest.(check (list string)) "no violations" [] report.Sim.violations;
  Alcotest.(check string) "energy = busy time" (Q.to_string (Busy.Bundle.total_busy packing))
    (Q.to_string report.Sim.total_energy);
  Alcotest.(check bool) "peak within g" true (report.Sim.peak_parallelism <= 2);
  Alcotest.(check bool) "utilization in (0,1]" true
    (Q.compare report.Sim.utilization Q.zero > 0 && Q.compare report.Sim.utilization Q.one <= 0)

let test_packing_violation_detected () =
  (* 3 overlapping jobs forced onto one machine with g = 2 *)
  let jobs = [ ij 0 0 3; ij 1 1 3; ij 2 2 3 ] in
  let report = Sim.run_packing ~g:2 [ jobs ] in
  Alcotest.(check bool) "violation flagged" true (report.Sim.violations <> []);
  Alcotest.(check int) "peak recorded" 3 report.Sim.peak_parallelism

let test_packing_flexible_rejected () =
  let flex = B.make ~id:0 ~release:Q.zero ~deadline:(Q.of_int 5) ~length:Q.one in
  let report = Sim.run_packing ~g:2 [ [ flex ] ] in
  Alcotest.(check bool) "flexible flagged" true (report.Sim.violations <> [])

let test_switch_counting () =
  (* two disjoint jobs on one machine: two power-ons *)
  let report = Sim.run_packing ~g:2 [ [ ij 0 0 1; ij 1 5 1 ] ] in
  Alcotest.(check int) "switch ons" 2 report.Sim.total_switch_ons;
  (* merged when adjacent *)
  let report2 = Sim.run_packing ~g:2 [ [ ij 0 0 1; ij 1 1 1 ] ] in
  Alcotest.(check int) "adjacent merge" 1 report2.Sim.total_switch_ons

let test_active_energy () =
  let inst =
    Workload.Slotted.make ~g:2
      [ Workload.Slotted.job ~id:0 ~release:0 ~deadline:4 ~length:2;
        Workload.Slotted.job ~id:1 ~release:0 ~deadline:4 ~length:2 ]
  in
  match Active.Exact.branch_and_bound inst with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
      let report = Sim.run_active inst sol in
      Alcotest.(check (list string)) "no violations" [] report.Sim.violations;
      Alcotest.(check string) "energy = active time" (string_of_int (Active.Solution.cost sol))
        (Q.to_string report.Sim.total_energy)

let test_active_violation () =
  let inst =
    Workload.Slotted.make ~g:1 [ Workload.Slotted.job ~id:0 ~release:0 ~deadline:2 ~length:1 ]
  in
  (* schedule outside the declared open slots *)
  let bogus = { Active.Solution.open_slots = [ 1 ]; schedule = [ (0, [ 2 ]) ] } in
  let report = Sim.run_active inst bogus in
  Alcotest.(check bool) "violation flagged" true (report.Sim.violations <> [])

let test_preemptive_energy () =
  let jobs = List.init 4 (fun id -> B.make ~id ~release:Q.zero ~deadline:Q.two ~length:Q.two) in
  let cost, _, detail = Busy.Preemptive.bounded ~g:2 jobs in
  let report = Sim.run_preemptive ~g:2 detail in
  Alcotest.(check (list string)) "no violations" [] report.Sim.violations;
  Alcotest.(check string) "energy = bounded cost" (Q.to_string cost) (Q.to_string report.Sim.total_energy)

(* -- renderer ---------------------------------------------------------------- *)

let test_render_slotted () =
  let inst =
    Workload.Slotted.make ~g:1 [ Workload.Slotted.job ~id:0 ~release:0 ~deadline:4 ~length:2 ]
  in
  let sol = { Active.Solution.open_slots = [ 2; 3 ]; schedule = [ (0, [ 2; 3 ]) ] } in
  Alcotest.(check string) "gantt" "slots   .##.\njob 0   .xx.\n" (Render.slotted inst sol)

let test_render_packing () =
  let packing = [ [ ij 0 0 2; ij 1 2 2 ] ] in
  let s = Render.packing ~width:8 packing in
  Alcotest.(check string) "row" "m0   |00001111|\n" s;
  Alcotest.(check string) "empty" "(empty packing)\n" (Render.packing [])

let test_render_overlap_star () =
  let s = Render.packing ~width:4 [ [ ij 0 0 2; ij 1 0 2 ] ] in
  Alcotest.(check string) "overlap" "m0   |****|\n" s

let count_substring needle haystack =
  let n = String.length needle and h = String.length haystack in
  let count = ref 0 in
  for i = 0 to h - n do
    if String.sub haystack i n = needle then incr count
  done;
  !count

let test_render_svg () =
  let packing = [ [ ij 0 0 2; ij 1 2 2 ]; [ ij 2 1 3 ] ] in
  let svg = Render.packing_svg ~width:300 packing in
  Alcotest.(check bool) "starts with svg" true (String.length svg > 4 && String.sub svg 0 4 = "<svg");
  Alcotest.(check int) "one rect per job" 3 (count_substring "<rect" svg);
  Alcotest.(check bool) "closes" true (count_substring "</svg>" svg = 1);
  let empty = Render.packing_svg [] in
  Alcotest.(check bool) "empty handled" true (count_substring "empty packing" empty = 1)

let test_render_slotted_svg () =
  let inst =
    Workload.Slotted.make ~g:1 [ Workload.Slotted.job ~id:0 ~release:0 ~deadline:4 ~length:2 ]
  in
  let sol = { Active.Solution.open_slots = [ 2; 3 ]; schedule = [ (0, [ 2; 3 ]) ] } in
  let svg = Render.slotted_svg inst sol in
  (* 2 open-slot rects + 2 unit rects *)
  Alcotest.(check int) "rects" 4 (count_substring "<rect" svg);
  Alcotest.(check int) "closed" 1 (count_substring "</svg>" svg)

let test_render_preemptive () =
  let jobs = [ B.make ~id:0 ~release:Q.zero ~deadline:Q.two ~length:Q.one ] in
  let sol = Busy.Preemptive.unbounded jobs in
  let s = Render.preemptive sol ~width:4 in
  Alcotest.(check bool) "contains job row" true (String.length s > 0 && String.sub s 0 4 = "job ")

(* -- properties ---------------------------------------------------------------- *)

let seed_arb = QCheck.int_range 0 100_000

let prop_sim_matches_analytic =
  QCheck.Test.make ~name:"simulated energy = analytic busy time, no violations" ~count:40 seed_arb
    (fun seed ->
      let jobs = Gen.interval_jobs ~n:10 ~horizon:20 ~max_length:5 ~seed () in
      List.for_all
        (fun g ->
          List.for_all
            (fun solve ->
              let packing = solve ~g jobs in
              let report = Sim.run_packing ~g packing in
              report.Sim.violations = []
              && Q.equal report.Sim.total_energy (Busy.Bundle.total_busy packing)
              && report.Sim.peak_parallelism <= g
              && Q.compare report.Sim.utilization Q.one <= 0)
            [ (fun ~g jobs -> Busy.First_fit.solve ~g jobs); (fun ~g jobs -> Busy.Greedy_tracking.solve ~g jobs); (fun ~g jobs -> Busy.Two_approx.solve ~g jobs) ])
        [ 1; 2; 3 ])

let prop_sim_active =
  QCheck.Test.make ~name:"active-time solutions replay cleanly" ~count:30 seed_arb (fun seed ->
      let params : Gen.slotted_params = { n = 6; horizon = 10; max_length = 3; slack = 3; g = 2 } in
      let inst = Gen.slotted ~params ~seed () in
      match Active.Minimal.solve inst Active.Minimal.Right_to_left with
      | None -> true
      | Some sol ->
          let report = Sim.run_active inst sol in
          report.Sim.violations = []
          && Q.equal report.Sim.total_energy (Q.of_int (Active.Solution.cost sol))
          && Q.compare report.Sim.utilization Q.zero >= 0
          && Q.compare report.Sim.utilization Q.one <= 0)

let prop_slotted_svg_shape =
  QCheck.Test.make ~name:"slotted SVG is well-formed with one rect per unit" ~count:30 seed_arb
    (fun seed ->
      let params : Gen.slotted_params = { n = 6; horizon = 10; max_length = 3; slack = 3; g = 2 } in
      let inst = Gen.slotted ~params ~seed () in
      match Active.Minimal.solve inst Active.Minimal.Right_to_left with
      | None -> true
      | Some sol ->
          let svg = Render.slotted_svg inst sol in
          let units =
            List.fold_left (fun acc (_, slots) -> acc + List.length slots) 0
              sol.Active.Solution.schedule
          in
          String.length svg > 4
          && String.sub svg 0 4 = "<svg"
          && count_substring "</svg>" svg = 1
          && count_substring "<rect" svg = List.length sol.Active.Solution.open_slots + units)

let prop_render_total =
  QCheck.Test.make ~name:"renderer never raises and is line-structured" ~count:30 seed_arb (fun seed ->
      let jobs = Gen.interval_jobs ~n:8 ~horizon:16 ~max_length:4 ~seed () in
      let packing = Busy.First_fit.solve ~g:2 jobs in
      let s = Render.packing ~width:40 packing in
      String.length s > 0
      && List.length (String.split_on_char '\n' s) = List.length packing + 1)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_sim_matches_analytic; prop_sim_active; prop_slotted_svg_shape; prop_render_total ]

let () =
  Alcotest.run "sim"
    [ ( "simulator",
        [ Alcotest.test_case "packing energy" `Quick test_packing_energy;
          Alcotest.test_case "violation detected" `Quick test_packing_violation_detected;
          Alcotest.test_case "flexible rejected" `Quick test_packing_flexible_rejected;
          Alcotest.test_case "switch counting" `Quick test_switch_counting;
          Alcotest.test_case "active energy" `Quick test_active_energy;
          Alcotest.test_case "active violation" `Quick test_active_violation;
          Alcotest.test_case "preemptive energy" `Quick test_preemptive_energy ] );
      ( "renderer",
        [ Alcotest.test_case "slotted" `Quick test_render_slotted;
          Alcotest.test_case "packing" `Quick test_render_packing;
          Alcotest.test_case "overlap star" `Quick test_render_overlap_star;
          Alcotest.test_case "svg packing" `Quick test_render_svg;
          Alcotest.test_case "svg slotted" `Quick test_render_slotted_svg;
          Alcotest.test_case "preemptive" `Quick test_render_preemptive ] );
      ("properties", props) ]
