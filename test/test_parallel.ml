(* Tests for the multicore work pool: order preservation, equivalence with
   sequential map, exception propagation, and a real workload (running the
   busy-time algorithms on many seeds in parallel must agree with the
   sequential run - also a thread-safety check for the algorithm stack,
   which builds all mutable state per call). *)

module Q = Rational

let test_order_preserved () =
  let xs = List.init 100 (fun i -> i) in
  Alcotest.(check (list int)) "squares in order" (List.map (fun x -> x * x) xs)
    (Parallel.Pool.map (fun x -> x * x) xs)

let test_empty_and_small () =
  Alcotest.(check (list int)) "empty" [] (Parallel.Pool.map (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Parallel.Pool.map (fun x -> x + 1) [ 6 ]);
  Alcotest.(check (list int)) "more domains than tasks" [ 1; 2 ]
    (Parallel.Pool.map ~domains:8 (fun x -> x) [ 1; 2 ])

let test_init () =
  Alcotest.(check (list int)) "init" [ 0; 2; 4; 6 ] (Parallel.Pool.init 4 (fun i -> 2 * i))

let test_exception_propagates () =
  Alcotest.check_raises "task failure resurfaces" (Failure "task 3") (fun () ->
      ignore
        (Parallel.Pool.map (fun i -> if i = 3 then failwith "task 3" else i) [ 0; 1; 2; 3; 4 ]))

let test_first_exception_in_input_order () =
  (* when several tasks raise, the one reported is the first in input
     order, not whichever domain happened to fail first *)
  Alcotest.check_raises "earliest failing index wins" (Failure "task 1") (fun () ->
      ignore
        (Parallel.Pool.map ~domains:4
           (fun i -> if i >= 1 then failwith (Printf.sprintf "task %d" i) else i)
           [ 0; 1; 2; 3; 4; 5; 6; 7 ]))

let test_failure_does_not_abort_queue () =
  (* a failing task must not strand the queue: every task still runs and
     all domains join before the exception resurfaces *)
  let ran = Atomic.make 0 in
  (try
     ignore
       (Parallel.Pool.map ~domains:4
          (fun i ->
            Atomic.incr ran;
            if i = 0 then failwith "boom")
          (List.init 16 (fun i -> i)))
   with Failure _ -> ());
  Alcotest.(check int) "all tasks executed" 16 (Atomic.get ran)

let test_domains_zero_clamped () =
  (* ~domains:0 (or negative) clamps to sequential execution rather than
     spawning nothing and hanging or raising *)
  Alcotest.(check (list int)) "empty list, zero domains" []
    (Parallel.Pool.map ~domains:0 (fun x -> x) []);
  Alcotest.(check (list int)) "zero domains is sequential" [ 2; 4; 6 ]
    (Parallel.Pool.map ~domains:0 (fun x -> 2 * x) [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "negative domains clamp" [ 5 ]
    (Parallel.Pool.map ~domains:(-3) (fun x -> x) [ 5 ]);
  Alcotest.(check (list int)) "init with zero domains" [ 0; 1; 2 ]
    (Parallel.Pool.init ~domains:0 3 (fun i -> i))

let test_default_domains_positive () =
  Alcotest.(check bool) "at least one" true (Parallel.Pool.default_domains () >= 1)

let test_real_workload_agrees () =
  (* running the algorithm stack concurrently must give the sequential
     answers: catches any hidden shared mutable state *)
  let seeds = List.init 12 (fun i -> i) in
  let work seed =
    let jobs = Workload.Generate.interval_jobs ~n:14 ~horizon:28 ~max_length:5 ~seed () in
    let cost solve = Q.to_string (Busy.Bundle.total_busy (solve ~g:3 jobs)) in
    (cost (fun ~g jobs -> Busy.First_fit.solve ~g jobs), cost (fun ~g jobs -> Busy.Greedy_tracking.solve ~g jobs), cost (fun ~g jobs -> Busy.Two_approx.solve ~g jobs))
  in
  let sequential = List.map work seeds in
  let parallel = Parallel.Pool.map ~domains:4 work seeds in
  Alcotest.(check bool) "identical results" true (sequential = parallel)

let test_lp_workload_agrees () =
  (* the exact simplex under concurrency *)
  let seeds = List.init 6 (fun i -> i) in
  let work seed =
    let params : Workload.Generate.slotted_params = { n = 8; horizon = 12; max_length = 3; slack = 3; g = 2 } in
    let inst = Workload.Generate.slotted ~params ~seed () in
    match Active.Rounding.solve inst with
    | Some (sol, stats) -> Some (Active.Solution.cost sol, Q.to_string stats.Active.Rounding.lp_cost)
    | None -> None
  in
  Alcotest.(check bool) "identical results" true
    (List.map work seeds = Parallel.Pool.map ~domains:3 work seeds)

let test_run_isolated () =
  Alcotest.(check bool) "ok passes through" true (Parallel.Pool.run_isolated (fun () -> 41 + 1) = Ok 42);
  (match Parallel.Pool.run_isolated (fun () -> failwith "boom") with
  | Error (Failure msg) when msg = "boom" -> ()
  | _ -> Alcotest.fail "expected Error (Failure boom)");
  (* the firewall is total: even exceptions that usually mean control
     flow (Exit, Not_found) are captured, not propagated *)
  match Parallel.Pool.run_isolated (fun () -> raise Exit) with
  | Error Exit -> ()
  | _ -> Alcotest.fail "expected Error Exit"

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "empty and small" `Quick test_empty_and_small;
          Alcotest.test_case "init" `Quick test_init;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "first exception in input order" `Quick test_first_exception_in_input_order;
          Alcotest.test_case "failure drains the queue" `Quick test_failure_does_not_abort_queue;
          Alcotest.test_case "zero domains clamped" `Quick test_domains_zero_clamped;
          Alcotest.test_case "default domains" `Quick test_default_domains_positive;
          Alcotest.test_case "run_isolated firewall" `Quick test_run_isolated;
          Alcotest.test_case "busy-time stack under domains" `Quick test_real_workload_agrees;
          Alcotest.test_case "simplex under domains" `Quick test_lp_workload_agrees ] ) ]
