(* Edge and error-path coverage: every documented failure mode and every
   degenerate input (empty job sets, out-of-range requests, accessor
   behaviour) that the main suites do not already exercise. *)

module Q = Rational
module B = Workload.Bjob
module S = Workload.Slotted

let ij id start len = B.interval ~id ~start:(Q.of_int start) ~length:(Q.of_int len)

(* -- substrates ------------------------------------------------------------- *)

let test_bigint_accessors () =
  Alcotest.(check int) "num_digits zero" 0 (Bigint.num_digits Bigint.zero);
  Alcotest.(check bool) "num_digits grows" true
    (Bigint.num_digits (Bigint.pow (Bigint.of_int 2) 100) > Bigint.num_digits (Bigint.of_int 5));
  Alcotest.(check bool) "is_one" true (Bigint.is_one Bigint.one);
  Alcotest.(check bool) "minus one is not one" false (Bigint.is_one Bigint.minus_one);
  Alcotest.check_raises "to_int_exn overflow" (Failure "Bigint.to_int_exn: value does not fit")
    (fun () -> ignore (Bigint.to_int_exn (Bigint.pow (Bigint.of_int 2) 80)))

let test_rational_edges () =
  Alcotest.(check string) "negative denominator in of_string" "-1/2" (Q.to_string (Q.of_string "2/-4"));
  Alcotest.check_raises "floor_int overflow" (Failure "Rational.floor_int: out of native range")
    (fun () -> ignore (Q.floor_int (Q.of_bigint (Bigint.pow (Bigint.of_int 2) 80))));
  Alcotest.(check int) "ceil_int exact" 5 (Q.ceil_int (Q.of_int 5))

let test_flow_fresh_graph_cut () =
  (* min_cut before any flow: residual = capacities, so the side is plain
     reachability *)
  let g = Flow.create 3 in
  let _ = Flow.add_edge g ~src:0 ~dst:1 ~cap:1 in
  let side = Flow.min_cut g ~source:0 in
  Alcotest.(check (list bool)) "reachability" [ true; true; false ] (Array.to_list side)

let test_lp_accessors () =
  let m = Lp.create () in
  let x = Lp.add_var m "alpha" in
  let _ = Lp.add_var m "beta" in
  Lp.add_constraint m [ (Q.one, x) ] Lp.Le Q.one;
  Alcotest.(check int) "num_vars" 2 (Lp.num_vars m);
  Alcotest.(check int) "num_constraints" 1 (Lp.num_constraints m);
  Alcotest.(check string) "var_name" "alpha" (Lp.var_name m x)

(* -- empty job sets everywhere ----------------------------------------------- *)

let test_empty_busy_algorithms () =
  Alcotest.(check int) "first fit" 0 (List.length (Busy.First_fit.solve ~g:2 []));
  Alcotest.(check int) "greedy tracking" 0 (List.length (Busy.Greedy_tracking.solve ~g:2 []));
  Alcotest.(check int) "two approx" 0 (List.length (Busy.Two_approx.solve ~g:2 []));
  Alcotest.(check int) "kumar rudra" 0 (List.length (Busy.Kumar_rudra.solve ~g:2 []));
  Alcotest.(check int) "laminar" 0 (List.length (Busy.Laminar.exact ~g:2 []));
  Alcotest.(check int) "online" 0 (List.length (Busy.Online.first_fit ~g:2 []));
  Alcotest.(check string) "preemptive" "0" (Q.to_string (Busy.Preemptive.unbounded []).Busy.Preemptive.cost);
  Alcotest.(check string) "preemptive lp oracle" "0" (Q.to_string (Busy.Preemptive.lp_optimum []));
  let v, completed = Busy.Single_online.greedy_switch [] in
  Alcotest.(check string) "single online" "0" (Q.to_string v);
  Alcotest.(check int) "none completed" 0 (List.length completed)

let test_empty_active_instance () =
  let inst = S.make ~g:2 [] in
  (match Active.Rounding.solve inst with
  | Some (sol, stats) ->
      Alcotest.(check int) "rounding cost 0" 0 (Active.Solution.cost sol);
      Alcotest.(check string) "lp cost 0" "0" (Q.to_string stats.Active.Rounding.lp_cost)
  | None -> Alcotest.fail "empty instance is feasible");
  Alcotest.(check (option int)) "exact 0" (Some 0) (Active.Exact.optimum inst);
  match Active.Minimal.solve inst Active.Minimal.Left_to_right with
  | Some sol -> Alcotest.(check int) "minimal 0" 0 (Active.Solution.cost sol)
  | None -> Alcotest.fail "empty instance is feasible"

let test_empty_sim () =
  let report = Sim.run_packing ~g:2 [] in
  Alcotest.(check string) "energy 0" "0" (Q.to_string report.Sim.total_energy);
  Alcotest.(check string) "utilization 0" "0" (Q.to_string report.Sim.utilization);
  Alcotest.(check int) "no switches" 0 report.Sim.total_switch_ons

(* -- guards not hit elsewhere -------------------------------------------------- *)

let test_size_guards () =
  let many = List.init 15 (fun id -> ij id (2 * id) 1) in
  Alcotest.check_raises "busy exact cap" (Invalid_argument "Exact.solve: too many jobs for exhaustive search")
    (fun () -> ignore (Busy.Exact.solve ~g:2 many));
  Alcotest.check_raises "maximize cap" (Invalid_argument "Maximize.exact: too many jobs for exhaustive search")
    (fun () -> ignore (Busy.Maximize.exact ~g:2 ~budget:Q.one many));
  let wide = List.map (fun j -> Busy.Widths.wjob ~job:j ~width:1) many in
  Alcotest.check_raises "widths cap" (Invalid_argument "Widths.exact: too many jobs") (fun () ->
      ignore (Busy.Widths.exact ~g:2 wide));
  let big_slotted = S.make ~g:2 (List.init 11 (fun id -> S.job ~id ~release:(2 * id) ~deadline:(2 * id + 2) ~length:1)) in
  Alcotest.check_raises "brute force cap" (Invalid_argument "Exact.brute_force: too many slots") (fun () ->
      ignore (Active.Exact.brute_force big_slotted))

let test_g_guards () =
  List.iter
    (fun (name, f) ->
      Alcotest.check_raises name (Invalid_argument (name ^ ": g < 1")) (fun () -> f ()))
    [ ("First_fit.solve", fun () -> ignore (Busy.First_fit.solve ~g:0 []));
      ("Greedy_tracking.solve", fun () -> ignore (Busy.Greedy_tracking.solve ~g:0 []));
      ("Two_approx.solve", fun () -> ignore (Busy.Two_approx.solve ~g:0 []));
      ("Kumar_rudra.solve", fun () -> ignore (Busy.Kumar_rudra.solve ~g:0 []));
      ("Laminar.exact", fun () -> ignore (Busy.Laminar.exact ~g:0 []));
      ("Online.first_fit", fun () -> ignore (Busy.Online.first_fit ~g:0 []));
      ("Maximize.greedy", fun () -> ignore (Busy.Maximize.greedy ~g:0 ~budget:Q.one []));
      ("Preemptive.bounded", fun () -> ignore (Busy.Preemptive.bounded ~g:0 [])) ]

let test_gadget_guards () =
  Alcotest.check_raises "gt gadget g" (Invalid_argument "Gadgets.greedy_tracking_tight: needs g >= 2")
    (fun () -> ignore (Workload.Gadgets.greedy_tracking_tight ~g:1 ~eps:(Q.of_ints 1 4)));
  Alcotest.check_raises "gt gadget eps" (Invalid_argument "Gadgets.greedy_tracking_tight: eps must be in (0, 1/2]")
    (fun () -> ignore (Workload.Gadgets.greedy_tracking_tight ~g:3 ~eps:Q.one));
  Alcotest.check_raises "dp gadget eps" (Invalid_argument "Gadgets.dp_profile_tight: eps <= 0") (fun () ->
      ignore (Workload.Gadgets.dp_profile_tight ~g:3 ~eps:Q.zero));
  Alcotest.check_raises "integrality g" (Invalid_argument "Gadgets.integrality_gap: needs g >= 1")
    (fun () -> ignore (Workload.Gadgets.integrality_gap 0))

(* -- behavioural corners --------------------------------------------------------- *)

let test_feasibility_only_unknown_job () =
  (* restricting to an id that does not exist = restricting to no jobs *)
  let inst = S.make ~g:1 [ S.job ~id:0 ~release:0 ~deadline:1 ~length:1 ] in
  Alcotest.(check bool) "vacuously feasible" true
    (Active.Feasibility.feasible ~only_jobs:[ 99 ] inst ~open_slots:[])

let test_solution_of_infeasible_slots () =
  let inst = S.make ~g:1 [ S.job ~id:0 ~release:0 ~deadline:2 ~length:2 ] in
  Alcotest.(check bool) "not enough slots" true (Active.Solution.of_open_slots inst ~open_slots:[ 1 ] = None)

let test_minimalize_infeasible_start () =
  let inst = S.make ~g:1 [ S.job ~id:0 ~release:0 ~deadline:2 ~length:2 ] in
  Alcotest.(check bool) "infeasible start" true
    (Active.Minimal.minimalize inst ~start:[ 1 ] Active.Minimal.Left_to_right = None)

let test_machines_lp_infeasible () =
  let inst =
    S.make ~g:1
      [ S.job ~id:0 ~release:0 ~deadline:1 ~length:1; S.job ~id:1 ~release:0 ~deadline:1 ~length:1;
        S.job ~id:2 ~release:0 ~deadline:1 ~length:1 ]
  in
  Alcotest.(check bool) "2 machines not enough" true (Active.Machines.lp_lower_bound inst ~machines:2 = None)

let test_render_tiny_width () =
  (* width-1 rendering must not crash or index out of bounds *)
  let s = Render.packing ~width:1 [ [ ij 0 0 2; ij 1 5 1 ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_single_online_no_release_order_dependence () =
  (* inputs are resorted internally: permutations give the same value *)
  let jobs = [ ij 2 6 2; ij 0 0 4; ij 1 1 5 ] in
  let v1, _ = Busy.Single_online.greedy_switch jobs in
  let v2, _ = Busy.Single_online.greedy_switch (List.rev jobs) in
  Alcotest.(check string) "permutation invariant" (Q.to_string v1) (Q.to_string v2)

let test_pool_all_failures () =
  Alcotest.check_raises "first failure in input order" (Failure "t0") (fun () ->
      ignore (Parallel.Pool.map (fun i -> failwith (Printf.sprintf "t%d" i)) [ 0; 1; 2 ]))

let test_io_duplicate_header_fields () =
  (* last 'g' wins - pinned as documented behaviour *)
  match Workload.Io.parse_string "slotted\ng 2\ng 5\njob 0 0 3 1\n" with
  | Workload.Io.Slotted_instance inst -> Alcotest.(check int) "last g wins" 5 inst.S.g
  | _ -> Alcotest.fail "expected slotted"

let test_duplicate_ids_rejected () =
  let jobs = [ ij 0 0 2; ij 0 3 2 ] in
  List.iter
    (fun (name, f) ->
      Alcotest.check_raises name (Invalid_argument (name ^ ": duplicate job ids")) (fun () -> f jobs))
    [ ("Greedy_tracking.solve", fun jobs -> ignore (Busy.Greedy_tracking.solve ~g:2 jobs));
      ("Two_approx.solve", fun jobs -> ignore (Busy.Two_approx.solve ~g:2 jobs));
      ("Laminar.exact", fun jobs -> ignore (Busy.Laminar.exact ~g:2 jobs)) ]

let test_widths_narrow_wide_partition () =
  let jobs =
    [ Busy.Widths.wjob ~job:(ij 0 0 2) ~width:3; Busy.Widths.wjob ~job:(ij 1 0 2) ~width:1 ]
  in
  let packing = Busy.Widths.narrow_wide_split ~g:4 jobs in
  (* the wide job (3 > 4/2) and the narrow job never share a machine *)
  List.iter
    (fun bundle ->
      let kinds = List.sort_uniq compare (List.map (Busy.Widths.is_wide ~g:4) bundle) in
      Alcotest.(check int) "homogeneous machine" 1 (List.length kinds))
    packing

let () =
  Alcotest.run "coverage"
    [ ( "substrates",
        [ Alcotest.test_case "bigint accessors" `Quick test_bigint_accessors;
          Alcotest.test_case "rational edges" `Quick test_rational_edges;
          Alcotest.test_case "flow fresh cut" `Quick test_flow_fresh_graph_cut;
          Alcotest.test_case "lp accessors" `Quick test_lp_accessors ] );
      ( "empty inputs",
        [ Alcotest.test_case "busy algorithms" `Quick test_empty_busy_algorithms;
          Alcotest.test_case "active instance" `Quick test_empty_active_instance;
          Alcotest.test_case "simulator" `Quick test_empty_sim ] );
      ( "guards",
        [ Alcotest.test_case "size caps" `Quick test_size_guards;
          Alcotest.test_case "g >= 1" `Quick test_g_guards;
          Alcotest.test_case "gadget parameters" `Quick test_gadget_guards ] );
      ( "corners",
        [ Alcotest.test_case "feasibility unknown job" `Quick test_feasibility_only_unknown_job;
          Alcotest.test_case "solution infeasible slots" `Quick test_solution_of_infeasible_slots;
          Alcotest.test_case "minimalize infeasible start" `Quick test_minimalize_infeasible_start;
          Alcotest.test_case "machines lp infeasible" `Quick test_machines_lp_infeasible;
          Alcotest.test_case "render tiny width" `Quick test_render_tiny_width;
          Alcotest.test_case "single online permutation" `Quick test_single_online_no_release_order_dependence;
          Alcotest.test_case "pool all failures" `Quick test_pool_all_failures;
          Alcotest.test_case "io duplicate fields" `Quick test_io_duplicate_header_fields;
          Alcotest.test_case "duplicate ids rejected" `Quick test_duplicate_ids_rejected;
          Alcotest.test_case "widths narrow/wide partition" `Quick test_widths_narrow_wide_partition ] ) ]
