(* Tests for the observability layer: counter and span semantics of the
   recorder, the deterministic JSON serializer, the streaming sinks, the
   FNV-1a instance digest — and the two properties the layer exists for:
   telemetry replay (running the same seeded instance twice yields
   byte-identical counter documents) and golden counter snapshots for the
   bb_hard branch-and-bound gadget (counters count solver events, never
   wall-clock, so a diff means the search itself changed). *)

module J = Obs.Json
module Gen = Workload.Generate
module Gad = Workload.Gadgets

(* ------------------------------------------------------------ counters -- *)

let test_counters () =
  let obs = Obs.create () in
  Alcotest.(check (list (pair string int))) "fresh" [] (Obs.counters obs);
  Obs.incr obs "b";
  Obs.add obs "a" 3;
  Obs.incr obs "b";
  Obs.add obs "a" 0;
  Alcotest.(check (list (pair string int)))
    "sorted totals"
    [ ("a", 3); ("b", 2) ]
    (Obs.counters obs);
  Alcotest.(check int) "total ticks" 5 (Obs.total_ticks obs)

let test_negative_add () =
  let obs = Obs.create () in
  Alcotest.check_raises "monotonic" (Invalid_argument "Obs.add: counters are monotonic")
    (fun () -> Obs.add obs "a" (-1))

let test_null_noop () =
  (* the null recorder swallows everything, including span bookkeeping *)
  Obs.add Obs.null "a" 5;
  Obs.exit Obs.null;
  Alcotest.(check bool) "is_null" true (Obs.is_null Obs.null);
  Alcotest.(check bool) "create not null" false (Obs.is_null (Obs.create ()));
  Alcotest.(check int) "span runs f" 7 (Obs.span Obs.null "s" (fun () -> 7))

(* -------------------------------------------------------------- spans -- *)

let test_span_tree () =
  let obs = Obs.create () in
  Obs.span obs "outer" (fun () ->
      Obs.incr obs "x";
      Obs.span obs "inner" (fun () -> Obs.add obs "x" 2));
  Obs.incr obs "x";
  (* the trailing incr is outside every span *)
  match Obs.span_tree obs with
  | [ { Obs.name = "outer"; ticks = 3; children = [ { Obs.name = "inner"; ticks = 2; children = [] } ] } ] ->
      ()
  | other ->
      Alcotest.failf "unexpected span tree: %s"
        (J.to_string (Obs.spans_to_json obs) ^ Printf.sprintf " (%d roots)" (List.length other))

let test_span_exception () =
  let obs = Obs.create () in
  (try Obs.span obs "boom" (fun () -> failwith "payload") with Failure _ -> ());
  Alcotest.(check int) "span closed on raise" 1 (List.length (Obs.span_tree obs));
  (* recorder still usable: no dangling open frame *)
  Obs.span obs "after" (fun () -> ());
  Alcotest.(check int) "two roots" 2 (List.length (Obs.span_tree obs))

let test_exit_without_enter () =
  let obs = Obs.create () in
  Alcotest.check_raises "unbalanced" (Invalid_argument "Obs.exit: no open span")
    (fun () -> Obs.exit obs)

(* -------------------------------------------------------------- sinks -- *)

let test_memory_sink () =
  let sink, events = Obs.Sink.memory () in
  let obs = Obs.create ~sink () in
  Obs.span obs "s" (fun () -> Obs.incr obs "c");
  Obs.flush obs;
  match events () with
  | [ Obs.Enter "s"; Obs.Exit { name = "s"; ticks = 1 }; Obs.Counter { name = "c"; total = 1 } ] -> ()
  | evs -> Alcotest.failf "unexpected event stream (%d events)" (List.length evs)

let test_line_json_sink () =
  let buf = Buffer.create 64 in
  let obs = Obs.create ~sink:(Obs.Sink.line_json (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n')) () in
  Obs.span obs "s" (fun () -> Obs.incr obs "c");
  Obs.flush obs;
  Alcotest.(check string) "framed event lines"
    "{\"event\":\"enter\",\"span\":\"s\"}\n\
     {\"event\":\"exit\",\"span\":\"s\",\"ticks\":1}\n\
     {\"event\":\"counter\",\"name\":\"c\",\"total\":1}\n"
    (Buffer.contents buf)

(* --------------------------------------------------------------- json -- *)

let test_json_rendering () =
  let doc =
    J.Obj
      [ ("b", J.Bool true); ("n", J.Null); ("i", J.Int (-3)); ("s", J.String "a\"b\\c\n\t\x01é");
        ("l", J.List [ J.Int 1; J.Float 0.5 ]) ]
  in
  Alcotest.(check string) "compact deterministic"
    "{\"b\":true,\"n\":null,\"i\":-3,\"s\":\"a\\\"b\\\\c\\n\\t\\u0001é\",\"l\":[1,0.5]}"
    (J.to_string doc)

let test_digest () =
  Alcotest.(check string) "empty" "fnv1a64:cbf29ce484222325" (Obs.digest "");
  Alcotest.(check string) "abc" "fnv1a64:e71fa2190541574b" (Obs.digest "abc");
  Alcotest.(check string) "phrase" "fnv1a64:2476b891391cd2b1" (Obs.digest "active busy time")

(* ----------------------------------------------------------- replay -- *)

(* Two runs of the same seeded instance must produce byte-identical
   telemetry documents: every counter counts solver events, never time. *)
let telemetry_document () =
  let params : Gen.slotted_params = { n = 10; horizon = 16; max_length = 4; slack = 4; g = 2 } in
  let inst = Gen.slotted ~params ~seed:42 () in
  let obs = Obs.create () in
  let _sol, _prov = Active.Cascade.solve ~obs ~limit:2_000 inst in
  J.to_string (J.Obj [ ("counters", Obs.counters_to_json obs); ("spans", Obs.spans_to_json obs) ])

let test_replay_active () =
  Alcotest.(check string) "byte-identical telemetry" (telemetry_document ()) (telemetry_document ())

let busy_telemetry_document () =
  let jobs = Gen.interval_jobs ~n:14 ~horizon:20 ~max_length:5 ~seed:11 () in
  let obs = Obs.create () in
  let _packing, _prov = Busy.Cascade.solve ~obs ~limit:500 ~g:3 jobs in
  J.to_string (J.Obj [ ("counters", Obs.counters_to_json obs); ("spans", Obs.spans_to_json obs) ])

let test_replay_busy () =
  Alcotest.(check string) "byte-identical telemetry" (busy_telemetry_document ())
    (busy_telemetry_document ())

(* ------------------------------------------------------------- golden -- *)

(* Golden counter snapshot for the bb_hard acceptance gadget (also
   printed by bench experiment E19). These numbers are part of the
   observable contract: a change means the branch-and-bound search or
   the flow feasibility oracle explores differently, which must be a
   conscious decision, not an accident. *)
let golden_bb_hard_run oracle =
  let inst = Gad.bb_hard ~g:2 ~groups:3 ~width:6 in
  let obs = Obs.create () in
  (match Active.Exact.solve ~budget:(Budget.limited 1_000_000) ~oracle ~obs inst with
  | Budget.Complete (Some sol) -> Alcotest.(check int) "cost" 6 (Active.Solution.cost sol)
  | Budget.Complete None -> Alcotest.fail "bb_hard is feasible"
  | Budget.Exhausted _ -> Alcotest.fail "1M ticks suffice for groups=3");
  Obs.counters obs

(* The search-level counters (nodes / flow checks / minimal closures) are
   pinned IDENTICAL across probe modes: both compute exact max flows, so
   the branch-and-bound takes the same decisions either way. Only the
   flow-level telemetry differs — the warm oracle runs ~10x fewer
   augmentations than the per-probe rebuilds. *)
let test_golden_bb_hard () =
  Alcotest.(check (list (pair string int)))
    "golden counters (incremental oracle)"
    [ ("active.exact.flow_checks", 9518);
      ("active.exact.nodes", 16773);
      ("active.minimal.closures", 12);
      ("active.minimal.feasibility_checks", 19);
      ("active.oracle.builds", 2);
      ("active.oracle.checks", 9537);
      ("active.oracle.slot_toggles", 19058);
      ("flow.augment_calls", 9537);
      ("flow.augmentations", 7963);
      ("flow.bfs_rounds", 4618);
      ("flow.drained_units", 7947);
      ("flow.drains", 5170) ]
    (golden_bb_hard_run Active.Feasibility.Incremental)

let test_golden_bb_hard_rebuild () =
  Alcotest.(check (list (pair string int)))
    "golden counters (rebuild baseline)"
    [ ("active.exact.flow_checks", 9518);
      ("active.exact.nodes", 16773);
      ("active.minimal.closures", 12);
      ("active.minimal.feasibility_checks", 19);
      ("flow.augmentations", 83565);
      ("flow.bfs_rounds", 9537);
      ("flow.max_flow_calls", 9537) ]
    (golden_bb_hard_run Active.Feasibility.Rebuild)

(* Golden LP counters for the warm-started ILP branch-and-bound on the
   Section 3.5 integrality-gap gadget (LP1 is fractional there, so the
   search must branch). Pins the simplex work profile of the revised
   engine: total/phase-1/degenerate pivot counts, bound flips (upper
   bounds handled without pivoting) and warm starts (solves that re-entered
   phase 2 from the parent basis; the remainder fell back to a cold
   start). A diff means the LP engine's pivot sequence changed, which
   must be a conscious decision, not an accident.

   Refreshed for 1.9.0, when the revised engine retired its private dense
   tableau onto the sparse LU driver: the pivot sequence is untouched
   (pivots / phase-1 / degenerate / bound flips / warm starts all
   unchanged) but the work counters now reflect sparse algebra —
   exact_cells fell 13825 -> 3952 and the LU telemetry
   (refactorizations / eta_updates / fill_nonzeros) appears. *)
let test_golden_lp_counters () =
  let inst = Gad.integrality_gap 3 in
  let obs = Obs.create () in
  (match Active.Ilp.solve ~budget:(Budget.limited 2_000_000) ~obs inst with
  | Budget.Complete (Some (sol, _)) -> Alcotest.(check int) "cost" 6 (Active.Solution.cost sol)
  | Budget.Complete None -> Alcotest.fail "integrality_gap 3 is feasible"
  | Budget.Exhausted _ -> Alcotest.fail "2M ticks suffice for g=3");
  let lp_only = List.filter (fun (k, _) -> String.length k > 3 && String.sub k 0 3 = "lp.") (Obs.counters obs) in
  Alcotest.(check (list (pair string int)))
    "golden LP counters"
    [ ("lp.bound_flips", 3);
      ("lp.degenerate_pivots", 30);
      ("lp.eta_updates", 47);
      ("lp.exact_cells", 3952);
      ("lp.fill_nonzeros", 996);
      ("lp.phase1_pivots", 39);
      ("lp.pivots", 47);
      (* Dantzig maintains the reduced-cost row over every nonbasic
         column per pivot, so priced work is ~nonbasic x pivots; the
         partial-pricing policy exists to shrink exactly this number
         (bench E26 gates the ratio) *)
      ("lp.priced_columns", 1842);
      ("lp.refactorizations", 10);
      ("lp.solves", 9);
      ("lp.warm_starts", 4) ]
    lp_only

(* -------------------------------------------------------------- suite -- *)

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "totals and order" `Quick test_counters;
          Alcotest.test_case "negative add rejected" `Quick test_negative_add;
          Alcotest.test_case "null recorder" `Quick test_null_noop;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and ticks" `Quick test_span_tree;
          Alcotest.test_case "closed on exception" `Quick test_span_exception;
          Alcotest.test_case "exit without enter" `Quick test_exit_without_enter;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "memory" `Quick test_memory_sink;
          Alcotest.test_case "line json" `Quick test_line_json_sink;
        ] );
      ( "json",
        [
          Alcotest.test_case "rendering" `Quick test_json_rendering;
          Alcotest.test_case "digest" `Quick test_digest;
        ] );
      ( "replay",
        [
          Alcotest.test_case "active cascade" `Quick test_replay_active;
          Alcotest.test_case "busy cascade" `Quick test_replay_busy;
        ] );
      ( "golden",
        [ Alcotest.test_case "bb_hard counters" `Slow test_golden_bb_hard;
          Alcotest.test_case "bb_hard counters (rebuild)" `Slow test_golden_bb_hard_rebuild;
          Alcotest.test_case "lp counters (warm-started ilp)" `Quick test_golden_lp_counters ] );
    ]
