(* Unit and property tests for Rational: field laws, normalization
   invariants, ordering, floor/ceil, and parsing. *)

module Q = Rational

let q = Q.of_ints
let check_q msg expected actual = Alcotest.(check string) msg expected (Q.to_string actual)

let test_normalization () =
  check_q "reduce" "2/3" (q 4 6);
  check_q "negative den" "-2/3" (q 2 (-3));
  check_q "double negative" "2/3" (q (-2) (-3));
  check_q "zero" "0" (q 0 17);
  check_q "integral" "5" (q 10 2);
  Alcotest.(check string) "den positive" "3" (Bigint.to_string (Q.den (q 2 (-3))));
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () -> ignore (q 1 0))

let test_parse () =
  check_q "int" "42" (Q.of_string "42");
  check_q "fraction" "1/3" (Q.of_string "2/6");
  check_q "negative fraction" "-1/3" (Q.of_string "-2/6");
  check_q "decimal" "1/4" (Q.of_string "0.25");
  check_q "negative decimal" "-5/2" (Q.of_string "-2.5");
  check_q "decimal no int part" "1/2" (Q.of_string ".5");
  check_q "big decimal" "123456789123456789/100" (Q.of_string "1234567891234567.89");
  (* a zero denominator is a parse error, not an arithmetic one: callers
     (the instance parser, behind the serve daemon) catch the
     Invalid_argument family but must never see Division_by_zero *)
  Alcotest.check_raises "1/0 is a parse error"
    (Invalid_argument "Rational.of_string: zero denominator") (fun () ->
      ignore (Q.of_string "1/0"));
  Alcotest.check_raises "0/0 is a parse error"
    (Invalid_argument "Rational.of_string: zero denominator") (fun () ->
      ignore (Q.of_string "0/0"))

let test_arith () =
  check_q "add" "5/6" (Q.add (q 1 2) (q 1 3));
  check_q "sub" "1/6" (Q.sub (q 1 2) (q 1 3));
  check_q "mul" "1/6" (Q.mul (q 1 2) (q 1 3));
  check_q "div" "3/2" (Q.div (q 1 2) (q 1 3));
  check_q "inv" "-3/2" (Q.inv (q (-2) 3));
  check_q "add cancel" "0" (Q.add (q 1 2) (q (-1) 2));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (Q.div Q.one Q.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Q.inv Q.zero))

let test_floor_ceil () =
  let cases =
    [ (7, 2, "3", "4"); (-7, 2, "-4", "-3"); (6, 3, "2", "2"); (-6, 3, "-2", "-2"); (0, 5, "0", "0"); (1, 3, "0", "1"); (-1, 3, "-1", "0") ]
  in
  List.iter
    (fun (n, d, fl, ce) ->
      check_q (Printf.sprintf "floor %d/%d" n d) fl (Q.floor (q n d));
      check_q (Printf.sprintf "ceil %d/%d" n d) ce (Q.ceil (q n d)))
    cases;
  Alcotest.(check int) "floor_int" 3 (Q.floor_int (q 7 2));
  Alcotest.(check int) "ceil_int" (-3) (Q.ceil_int (q (-7) 2))

let test_compare () =
  let open Q in
  Alcotest.(check bool) "1/2 < 2/3" true (q 1 2 < q 2 3);
  Alcotest.(check bool) "-1/2 > -2/3" true (q (-1) 2 > q (-2) 3);
  Alcotest.(check bool) "3/6 = 1/2" true (q 3 6 = q 1 2);
  Alcotest.(check bool) "min" true (Q.min (q 1 2) (q 1 3) = q 1 3);
  Alcotest.(check bool) "max" true (Q.max (q 1 2) (q 1 3) = q 1 2)

let test_to_int () =
  Alcotest.(check (option int)) "integral" (Some 5) (Q.to_int (q 10 2));
  Alcotest.(check (option int)) "fractional" None (Q.to_int (q 1 2));
  Alcotest.(check bool) "is_integer" true (Q.is_integer (q 4 2));
  Alcotest.(check bool) "not integer" false (Q.is_integer (q 1 2))

let test_to_float () =
  Alcotest.(check (float 1e-12)) "1/2" 0.5 (Q.to_float (q 1 2));
  Alcotest.(check (float 1e-12)) "-1/4" (-0.25) (Q.to_float (q (-1) 4))

let test_of_float () =
  check_q "dyadic" "1/2" (Q.of_float 0.5);
  check_q "negative" "-13/4" (Q.of_float (-3.25));
  check_q "zero" "0" (Q.of_float 0.0);
  check_q "integer" "42" (Q.of_float 42.0);
  (* 0.1 is NOT 1/10: the conversion is exact, not nearest-decimal *)
  check_q "0.1 exactly" "3602879701896397/36028797018963968" (Q.of_float 0.1);
  List.iter
    (fun f ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "roundtrip %h" f)
        f
        (Q.to_float (Q.of_float f)))
    (* tiny magnitudes (1e-300 etc.) are converted exactly too, but the
       roundtrip check would hit to_float's denominator overflow *)
    [ 0.1; -1e300; 3.14159; 12345.6789; Float.max_float ];
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "%h rejected" f)
        true
        (match Q.of_float f with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

(* -- properties ---------------------------------------------------------- *)

let rat_gen =
  let open QCheck.Gen in
  map2 (fun n d -> q n d) (int_range (-10_000) 10_000) (int_range 1 10_000)

let rat = QCheck.make rat_gen ~print:Q.to_string
let rat3 = QCheck.(triple rat rat rat)

let prop_field_assoc =
  QCheck.Test.make ~name:"add and mul associative" ~count:1000 rat3 (fun (a, bq, c) ->
      Q.equal (Q.add a (Q.add bq c)) (Q.add (Q.add a bq) c)
      && Q.equal (Q.mul a (Q.mul bq c)) (Q.mul (Q.mul a bq) c))

let prop_distributive =
  QCheck.Test.make ~name:"distributivity" ~count:1000 rat3 (fun (a, bq, c) ->
      Q.equal (Q.mul a (Q.add bq c)) (Q.add (Q.mul a bq) (Q.mul a c)))

let prop_inverse =
  QCheck.Test.make ~name:"a * (1/a) = 1 ; a + (-a) = 0" ~count:1000 rat (fun a ->
      Q.equal (Q.add a (Q.neg a)) Q.zero && (Q.is_zero a || Q.equal (Q.mul a (Q.inv a)) Q.one))

let prop_normalized =
  QCheck.Test.make ~name:"results always normalized" ~count:1000 (QCheck.pair rat rat) (fun (a, bq) ->
      let check t =
        Bigint.sign (Q.den t) = 1 && Bigint.equal (Bigint.gcd (Q.num t) (Q.den t)) (Bigint.gcd (Q.den t) (Q.num t))
        && (Q.is_zero t || Bigint.is_one (Bigint.gcd (Q.num t) (Q.den t)))
      in
      check (Q.add a bq) && check (Q.sub a bq) && check (Q.mul a bq))

let prop_floor_ceil_bracket =
  QCheck.Test.make ~name:"floor <= x <= ceil, gap < 1" ~count:1000 rat (fun a ->
      let f = Q.floor a and c = Q.ceil a in
      Q.compare f a <= 0 && Q.compare a c <= 0
      && Q.compare (Q.sub a f) Q.one < 0
      && Q.compare (Q.sub c a) Q.one < 0
      && Q.is_integer f && Q.is_integer c)

let prop_order_compatible =
  QCheck.Test.make ~name:"order compatible with addition" ~count:1000 rat3 (fun (a, bq, c) ->
      if Q.compare a bq <= 0 then Q.compare (Q.add a c) (Q.add bq c) <= 0 else true)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:1000 rat (fun a ->
      Q.equal a (Q.of_string (Q.to_string a)))

let prop_floor_shift =
  QCheck.Test.make ~name:"floor(x + n) = floor(x) + n for integer n" ~count:1000
    (QCheck.pair rat (QCheck.int_range (-50) 50))
    (fun (x, n) ->
      Q.equal (Q.floor (Q.add x (Q.of_int n))) (Q.add (Q.floor x) (Q.of_int n)))

let prop_abs_sign =
  QCheck.Test.make ~name:"x = sign(x) * |x|; |x| >= 0" ~count:1000 rat (fun x ->
      Q.equal x (Q.mul (Q.of_int (Q.sign x)) (Q.abs x)) && Q.compare (Q.abs x) Q.zero >= 0)

let prop_min_max =
  QCheck.Test.make ~name:"min + max = x + y" ~count:1000 (QCheck.pair rat rat) (fun (x, y) ->
      Q.equal (Q.add (Q.min x y) (Q.max x y)) (Q.add x y))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_field_assoc; prop_distributive; prop_inverse; prop_normalized; prop_floor_ceil_bracket;
      prop_order_compatible; prop_string_roundtrip; prop_floor_shift; prop_abs_sign; prop_min_max ]

let () =
  Alcotest.run "rational"
    [ ( "unit",
        [ Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "to_int" `Quick test_to_int;
          Alcotest.test_case "to_float" `Quick test_to_float;
          Alcotest.test_case "of_float" `Quick test_of_float ] );
      ("properties", props) ]
