(* Tests for the differential fuzz harness: a clean sweep finds no
   disagreements, the planted bug is found and shrunk to the provable
   minimum (g+1 jobs, <= 4), the shrinker reaches fixpoints on synthetic
   predicates, and the corpus write/replay loop round-trips. *)

module Q = Rational
module B = Workload.Bjob
module Io = Workload.Io
module Gen = Workload.Generate

let job_count = function
  | Io.Slotted_instance inst -> Array.length inst.Workload.Slotted.jobs
  | Io.Busy_instance jobs -> List.length jobs

let test_clean_sweep () =
  let report = Fuzz.Harness.run ~domains:2 ~seeds:10 ~fuel:200_000 () in
  Alcotest.(check int) "six families per seed" 60 report.Fuzz.Harness.cases;
  Alcotest.(check int) "no disagreements" 0 (List.length report.Fuzz.Harness.failures)

let test_planted_bug_found_and_shrunk () =
  let report = Fuzz.Harness.run ~planted_bug:true ~domains:2 ~seeds:6 ~fuel:100_000 () in
  Alcotest.(check bool) "planted bug detected" true (report.Fuzz.Harness.failures <> []);
  List.iter
    (fun (cx : Fuzz.Harness.counterexample) ->
      (* the false claim "FirstFit busy <= span" needs demand above g,
         i.e. g+1 overlapping jobs; the shrinker must reach that minimum *)
      Alcotest.(check bool)
        (Printf.sprintf "%s shrunk to <= 4 jobs (got %d)" cx.Fuzz.Harness.case (job_count cx.Fuzz.Harness.instance))
        true
        (job_count cx.Fuzz.Harness.instance <= 4))
    report.Fuzz.Harness.failures

let test_shrink_busy_fixpoint () =
  let jobs = Gen.interval_jobs ~n:7 ~horizon:15 ~max_length:4 ~seed:3 () in
  (* synthetic failure: "at least 3 jobs" - minimal form is 3 unit jobs *)
  let fails js = List.length js >= 3 in
  let shrunk = Fuzz.Shrink.busy ~fails jobs in
  Alcotest.(check int) "three jobs remain" 3 (List.length shrunk);
  Alcotest.(check bool) "still fails" true (fails shrunk);
  List.iter
    (fun j -> Alcotest.(check bool) "length shrunk to 1" true (Q.equal j.B.length Q.one))
    shrunk

let test_shrink_slotted_fixpoint () =
  let params : Gen.slotted_params = { n = 6; horizon = 12; max_length = 3; slack = 3; g = 2 } in
  let inst = Gen.slotted ~params ~seed:2 () in
  let fails i = Array.length i.Workload.Slotted.jobs >= 2 in
  let shrunk = Fuzz.Shrink.slotted ~fails inst in
  Alcotest.(check int) "two jobs remain" 2 (Array.length shrunk.Workload.Slotted.jobs);
  Array.iter
    (fun j ->
      Alcotest.(check int) "unit length" 1 j.Workload.Slotted.length;
      Alcotest.(check int) "tight window" 1 (j.Workload.Slotted.deadline - j.Workload.Slotted.release))
    shrunk.Workload.Slotted.jobs

let test_shrink_preserves_failure () =
  (* shrinking must never return a passing instance *)
  let jobs = Gen.interval_jobs ~n:5 ~horizon:10 ~max_length:3 ~seed:4 () in
  let fails js = List.exists (fun j -> Q.compare j.B.length Q.one > 0) js in
  if fails jobs then begin
    let shrunk = Fuzz.Shrink.busy ~fails jobs in
    Alcotest.(check bool) "failure preserved" true (fails shrunk)
  end

let with_temp_corpus f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "atbt-fuzz-test-corpus" in
  if Sys.file_exists dir then
    Array.iter (fun file -> Sys.remove (Filename.concat dir file)) (Sys.readdir dir);
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun file -> Sys.remove (Filename.concat dir file)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_corpus_write_replay () =
  with_temp_corpus (fun dir ->
      let report = Fuzz.Harness.run ~planted_bug:true ~domains:2 ~seeds:3 ~fuel:100_000 () in
      Alcotest.(check bool) "have failures to write" true (report.Fuzz.Harness.failures <> []);
      let paths = Fuzz.Harness.write_corpus ~dir report.Fuzz.Harness.failures in
      Alcotest.(check int) "one file per failure" (List.length report.Fuzz.Harness.failures)
        (List.length paths);
      (* with the bug still armed every counterexample still fails *)
      let armed = Fuzz.Harness.replay ~planted_bug:true ~fuel:100_000 ~dir () in
      Alcotest.(check int) "armed replay reproduces all" (List.length paths) (List.length armed);
      (* with the bug fixed (unarmed) the corpus is clean: the regression gate *)
      let fixed = Fuzz.Harness.replay ~fuel:100_000 ~dir () in
      Alcotest.(check int) "unarmed replay is clean" 0 (List.length fixed))

let test_replay_missing_dir () =
  Alcotest.(check int) "missing corpus is empty" 0
    (List.length (Fuzz.Harness.replay ~fuel:1_000 ~dir:"/nonexistent/fuzz-corpus" ()))

let test_determinism () =
  (* the whole harness is a pure function of (seed, fuel, planted_bug) *)
  let run () =
    let r = Fuzz.Harness.run ~planted_bug:true ~domains:2 ~seeds:2 ~fuel:50_000 () in
    List.map
      (fun (cx : Fuzz.Harness.counterexample) ->
        (cx.Fuzz.Harness.case, cx.Fuzz.Harness.failure.Fuzz.Oracle.check, Io.to_string cx.Fuzz.Harness.instance))
      r.Fuzz.Harness.failures
  in
  Alcotest.(check bool) "two runs agree bit-for-bit" true (run () = run ())

let () =
  Alcotest.run "fuzz"
    [ ( "harness",
        [ Alcotest.test_case "clean sweep" `Slow test_clean_sweep;
          Alcotest.test_case "planted bug found and shrunk" `Slow test_planted_bug_found_and_shrunk;
          Alcotest.test_case "determinism" `Quick test_determinism ] );
      ( "shrinker",
        [ Alcotest.test_case "busy fixpoint" `Quick test_shrink_busy_fixpoint;
          Alcotest.test_case "slotted fixpoint" `Quick test_shrink_slotted_fixpoint;
          Alcotest.test_case "failure preserved" `Quick test_shrink_preserves_failure ] );
      ( "corpus",
        [ Alcotest.test_case "write and replay" `Slow test_corpus_write_replay;
          Alcotest.test_case "missing dir" `Quick test_replay_missing_dir ] ) ]
