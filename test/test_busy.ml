(* Busy-time tests: bundles and bounds, FirstFit, GreedyTracking (+ the
   Theorem 5 witness), the flow-based 2-approximation, span-minimizing
   placement, the flexible-job pipeline, and preemptive scheduling
   (Theorems 6/7). Properties check every guarantee the paper proves. *)

module Q = Rational
module B = Workload.Bjob
module I = Intervals.Interval
module Gen = Workload.Generate
module Gad = Workload.Gadgets

let q = Q.of_ints
let ij id start len = B.interval ~id ~start:(Q.of_int start) ~length:(Q.of_int len)
let check_q msg expected actual = Alcotest.(check string) msg expected (Q.to_string actual)

(* -- bundles -------------------------------------------------------------- *)

let test_bundle_busy_time () =
  check_q "overlapping" "3" (Busy.Bundle.busy_time [ ij 0 0 2; ij 1 1 2 ]);
  check_q "disjoint" "2" (Busy.Bundle.busy_time [ ij 0 0 1; ij 1 5 1 ]);
  Alcotest.(check int) "parallel" 2 (Busy.Bundle.max_parallel [ ij 0 0 2; ij 1 1 2 ]);
  Alcotest.(check bool) "fits" true (Busy.Bundle.fits ~g:2 [ ij 0 0 2 ] (ij 1 1 2));
  Alcotest.(check bool) "does not fit" false (Busy.Bundle.fits ~g:1 [ ij 0 0 2 ] (ij 1 1 2))

let test_bundle_check () =
  let jobs = [ ij 0 0 2; ij 1 1 2; ij 2 5 1 ] in
  Alcotest.(check (option string)) "valid" None
    (Busy.Bundle.check ~g:2 jobs [ [ ij 0 0 2; ij 1 1 2 ]; [ ij 2 5 1 ] ]);
  Alcotest.(check bool) "capacity violation" true
    (Busy.Bundle.check ~g:1 jobs [ [ ij 0 0 2; ij 1 1 2 ]; [ ij 2 5 1 ] ] <> None);
  Alcotest.(check bool) "missing job" true (Busy.Bundle.check ~g:2 jobs [ [ ij 0 0 2; ij 1 1 2 ] ] <> None);
  Alcotest.(check bool) "duplicated job" true
    (Busy.Bundle.check ~g:2 jobs [ [ ij 0 0 2; ij 1 1 2 ]; [ ij 2 5 1; ij 0 0 2 ] ] <> None)

let test_bounds () =
  let jobs = [ ij 0 0 2; ij 1 1 2; ij 2 5 1 ] in
  check_q "mass g=2" "5/2" (Busy.Bounds.mass ~g:2 jobs);
  check_q "span" "4" (Busy.Bounds.span jobs);
  (* cells: [0,1):1 [1,2):2 [2,3):1 [5,6):1, g=2 -> 1+1+1+1 = 4 *)
  check_q "profile g=2" "4" (Busy.Bounds.demand_profile ~g:2 jobs);
  check_q "best" "4" (Busy.Bounds.best ~g:2 jobs)

(* -- FirstFit -------------------------------------------------------------- *)

let test_first_fit_basic () =
  let jobs = [ ij 0 0 2; ij 1 1 2; ij 2 0 2 ] in
  let packing = Busy.First_fit.solve ~g:2 jobs in
  Alcotest.(check (option string)) "valid" None (Busy.Bundle.check ~g:2 jobs packing);
  Alcotest.(check int) "two bundles (g=2, 3 overlapping jobs)" 2 (List.length packing)

let test_first_fit_rejects_flexible () =
  let flex = B.make ~id:0 ~release:Q.zero ~deadline:(Q.of_int 5) ~length:Q.one in
  Alcotest.check_raises "flexible" (Invalid_argument "First_fit.solve: flexible job (convert first)")
    (fun () -> ignore (Busy.First_fit.solve ~g:2 [ flex ]))

(* -- GreedyTracking --------------------------------------------------------- *)

let test_greedy_tracking_basic () =
  (* 2g disjoint-in-pairs structure: tracks group cleanly *)
  let jobs = [ ij 0 0 3; ij 1 4 3; ij 2 0 2; ij 3 5 2 ] in
  let packing = Busy.Greedy_tracking.solve ~g:2 jobs in
  Alcotest.(check (option string)) "valid" None (Busy.Bundle.check ~g:2 jobs packing);
  (* first track = {0,1} (length 6), second = {2,3}; one bundle of both;
     union = [0,3) u [4,7) -> busy 6 *)
  Alcotest.(check int) "single bundle" 1 (List.length packing);
  check_q "busy" "6" (Busy.Bundle.total_busy packing)

let test_greedy_tracking_witness () =
  let bundle = [ ij 0 0 3; ij 1 1 1; ij 2 2 3; ij 3 6 2 ] in
  let w = Busy.Greedy_tracking.witness bundle in
  check_q "same span" (Q.to_string (Busy.Bundle.busy_time bundle)) (Intervals.span (List.map B.interval_of w));
  Alcotest.(check bool) "at most 2 live" true (Busy.Bundle.max_parallel w <= 2)

(* -- Two-approximation ------------------------------------------------------ *)

let test_two_approx_basic () =
  let jobs = [ ij 0 0 2; ij 1 1 2; ij 2 0 3; ij 3 4 1 ] in
  let packing = Busy.Two_approx.solve ~g:2 jobs in
  Alcotest.(check (option string)) "valid" None (Busy.Bundle.check ~g:2 jobs packing);
  let cost = Busy.Bundle.total_busy packing in
  let bound = Q.mul Q.two (Busy.Bounds.demand_profile ~g:2 jobs) in
  Alcotest.(check bool) "within 2x profile" true (Q.compare cost bound <= 0)

let test_two_approx_identical_jobs () =
  (* parallel edges in the event DAG *)
  let jobs = List.init 4 (fun id -> ij id 0 2) in
  let packing = Busy.Two_approx.solve ~g:2 jobs in
  Alcotest.(check (option string)) "valid" None (Busy.Bundle.check ~g:2 jobs packing);
  check_q "cost 4 (two machines of two)" "4" (Busy.Bundle.total_busy packing)

let test_two_approx_fig8_gadget () =
  let ta = Gad.two_approx_tight ~eps:(q 1 10) ~eps':(q 1 20) in
  let packing = Busy.Two_approx.solve ~g:ta.Gad.ta_g ta.Gad.ta_jobs in
  Alcotest.(check (option string)) "valid" None (Busy.Bundle.check ~g:2 ta.Gad.ta_jobs packing);
  let cost = Busy.Bundle.total_busy packing in
  (* guarantee: <= 2 * OPT = 2 + 2eps; the paper's bad run costs 2+eps+eps' *)
  Alcotest.(check bool) "within guarantee" true
    (Q.compare cost (Q.mul Q.two ta.Gad.ta_opt_cost) <= 0);
  (* the Fig. 8(B) certificate packing costs 2 + eps + eps' *)
  let by_id i = List.find (fun (j : B.t) -> j.B.id = i) ta.Gad.ta_jobs in
  let bad = [ [ by_id 0; by_id 3 ]; [ by_id 1; by_id 2; by_id 4 ] ] in
  Alcotest.(check (option string)) "certificate packing valid" None
    (Busy.Bundle.check ~g:2 ta.Gad.ta_jobs bad);
  check_q "certificate cost 2+eps+eps'" "43/20" (Busy.Bundle.total_busy bad)

let test_max_track_exposed () =
  let jobs = [ ij 0 0 3; ij 1 3 2; ij 2 1 4 ] in
  let track, len = Busy.Greedy_tracking.max_track jobs in
  (* {0,1}: 5 vs {2}: 4 *)
  check_q "track length" "5" len;
  Alcotest.(check int) "two jobs" 2 (List.length track);
  Alcotest.(check bool) "is track" true (Intervals.Track.is_track ~interval:B.interval_of track)

let test_two_approx_single_job () =
  let jobs = [ ij 0 0 5 ] in
  let packing = Busy.Two_approx.solve ~g:3 jobs in
  Alcotest.(check (option string)) "valid" None (Busy.Bundle.check ~g:3 jobs packing);
  check_q "cost = length" "5" (Busy.Bundle.total_busy packing)

let test_preemptive_multi_round () =
  (* forces several greedy rounds with different deadlines:
     A rigid [0,2); B rigid [6,8); C window [0,8) length 5.
     Round 1 (d=2): open [0,2): A done, C serves 2.
     Round 2 (d=8): due B (rem 2) and C (rem 3): l_max = 3, open the
     rightmost 3 unopened units before 8 = [5,8): B serves [6,8), C
     serves 3. Total opened = 2 + 3 = 5. *)
  let jobs =
    [ B.make ~id:0 ~release:Q.zero ~deadline:Q.two ~length:Q.two;
      B.make ~id:1 ~release:(Q.of_int 6) ~deadline:(Q.of_int 8) ~length:Q.two;
      B.make ~id:2 ~release:Q.zero ~deadline:(Q.of_int 8) ~length:(Q.of_int 5) ]
  in
  let sol = Busy.Preemptive.unbounded jobs in
  Alcotest.(check (option string)) "valid" None (Busy.Preemptive.check jobs sol);
  check_q "cost 5" "5" sol.Busy.Preemptive.cost;
  (* the opened time must be [0,2) u [5,8) *)
  Alcotest.(check string) "opened set" "{[0, 2) u [5, 8)}"
    (Format.asprintf "%a" Intervals.Union.pp sol.Busy.Preemptive.opened)

let test_first_fit_prefers_early_bundles () =
  (* equal-length jobs: the longest-first order is stable, so job 0 and
     the disjoint job 2 share bundle 0 *)
  let jobs = [ ij 0 0 2; ij 1 1 2; ij 2 5 2 ] in
  let packing = Busy.First_fit.solve ~g:1 jobs in
  Alcotest.(check int) "two bundles" 2 (List.length packing);
  let first = List.nth packing 0 in
  Alcotest.(check bool) "bundle 0 holds jobs 0 and 2" true
    (List.sort compare (List.map (fun (j : B.t) -> j.B.id) first) = [ 0; 2 ])

(* -- Kumar-Rudra ------------------------------------------------------------- *)

let test_kumar_rudra_basic () =
  let jobs = [ ij 0 0 2; ij 1 1 2; ij 2 0 3; ij 3 4 1 ] in
  let packing = Busy.Kumar_rudra.solve ~g:2 jobs in
  Alcotest.(check (option string)) "valid" None (Busy.Bundle.check ~g:2 jobs packing);
  Alcotest.(check bool) "within 2x profile" true
    (Q.compare (Busy.Bundle.total_busy packing)
       (Q.mul Q.two (Busy.Bounds.demand_profile ~g:2 jobs))
    <= 0)

(* Regression: the instance on which the fuzzer refuted the index-parity
   reading of Kumar-Rudra's phase 2 at g = 1 (a long job overlapping two
   pairwise-disjoint later jobs of its level got the same fiber as one of
   them). The greedy 2-coloring must keep this valid. *)
let test_kumar_rudra_parity_regression () =
  let jobs = Gen.interval_jobs ~n:8 ~horizon:16 ~max_length:4 ~seed:0 () in
  List.iter
    (fun g ->
      let packing = Busy.Kumar_rudra.solve ~g jobs in
      Alcotest.(check (option string))
        (Printf.sprintf "valid at g=%d" g)
        None
        (Busy.Bundle.check ~g jobs packing))
    [ 1; 2; 3; 4 ]

let test_kumar_rudra_fig8 () =
  (* the gadget the appendix built for exactly this algorithm *)
  let ta = Gad.two_approx_tight ~eps:(q 1 10) ~eps':(q 1 20) in
  let packing = Busy.Kumar_rudra.solve ~g:2 ta.Gad.ta_jobs in
  Alcotest.(check (option string)) "valid" None (Busy.Bundle.check ~g:2 ta.Gad.ta_jobs packing);
  let cost = Busy.Bundle.total_busy packing in
  Alcotest.(check bool) "within 2 OPT" true (Q.compare cost (Q.mul Q.two ta.Gad.ta_opt_cost) <= 0)

(* -- placement -------------------------------------------------------------- *)

let test_placement_exact_simple () =
  (* two unit jobs with overlapping windows can share one slot of time *)
  let jobs =
    [ B.make ~id:0 ~release:Q.zero ~deadline:(Q.of_int 3) ~length:Q.one;
      B.make ~id:1 ~release:Q.one ~deadline:(Q.of_int 4) ~length:Q.one ]
  in
  let placed = Busy.Placement.exact jobs in
  check_q "span 1" "1" (Intervals.span (List.map B.interval_of placed));
  List.iter2
    (fun (orig : B.t) (p : B.t) ->
      Alcotest.(check bool) "within window" true
        (Q.compare orig.B.release p.B.release <= 0 && Q.compare p.B.deadline orig.B.deadline <= 0))
    jobs placed

let test_placement_exact_forced_split () =
  (* windows too far apart to share: span = 2 *)
  let jobs =
    [ B.make ~id:0 ~release:Q.zero ~deadline:Q.one ~length:Q.one;
      B.make ~id:1 ~release:(Q.of_int 5) ~deadline:(Q.of_int 6) ~length:Q.one ]
  in
  check_q "span 2" "2" (Busy.Placement.optimum_span jobs)

let test_placement_greedy_not_worse_than_double () =
  let jobs = Gen.flexible_jobs ~n:6 ~horizon:15 ~max_length:3 ~seed:5 () in
  let exact = Busy.Placement.optimum_span jobs in
  let greedy = Intervals.span (List.map B.interval_of (Busy.Placement.greedy jobs)) in
  Alcotest.(check bool) "greedy >= exact" true (Q.compare greedy exact >= 0);
  Alcotest.(check bool) "greedy <= 2 exact (sanity)" true (Q.compare greedy (Q.mul Q.two exact) <= 0)

(* -- pipeline ---------------------------------------------------------------- *)

let test_pipeline_pinned_validation () =
  let jobs = [ B.make ~id:0 ~release:Q.zero ~deadline:(Q.of_int 3) ~length:Q.one ] in
  Alcotest.check_raises "wrong ids" (Invalid_argument "Pipeline.place: pinned placement does not match jobs")
    (fun () ->
      ignore (Busy.Pipeline.run ~g:2 ~placement:(Busy.Pipeline.Pinned [ ij 7 0 1 ]) ~algorithm:Busy.Pipeline.First_fit jobs))

let test_pipeline_greedy_tracking () =
  let jobs = Gen.flexible_jobs ~n:6 ~horizon:15 ~max_length:3 ~seed:9 () in
  let pinned, packing =
    Busy.Pipeline.run ~g:2 ~placement:Busy.Pipeline.Exact_placement ~algorithm:Busy.Pipeline.Greedy_tracking jobs
  in
  Alcotest.(check (option string)) "valid" None (Busy.Bundle.check ~g:2 pinned packing);
  (* Theorem 5 accounting: cost <= OPT_inf + 2 * mass *)
  let opt_inf = Intervals.span (List.map B.interval_of pinned) in
  let bound = Q.add opt_inf (Q.mul Q.two (Busy.Bounds.mass ~g:2 jobs)) in
  Alcotest.(check bool) "within span + 2 mass" true
    (Q.compare (Busy.Bundle.total_busy packing) bound <= 0)

(* -- preemptive --------------------------------------------------------------- *)

let test_preemptive_unbounded_simple () =
  (* paper Theorem 6 greedy on a 2-job instance: job A rigid [0,2), job B
     window [0,4) length 2: open [0,2) for A, B shares it fully. *)
  let jobs =
    [ B.make ~id:0 ~release:Q.zero ~deadline:Q.two ~length:Q.two;
      B.make ~id:1 ~release:Q.zero ~deadline:(Q.of_int 4) ~length:Q.two ]
  in
  let sol = Busy.Preemptive.unbounded jobs in
  Alcotest.(check (option string)) "valid" None (Busy.Preemptive.check jobs sol);
  check_q "cost 2" "2" sol.Busy.Preemptive.cost

let test_preemptive_beats_nonpreemptive () =
  (* preemption wins: long flexible job must straddle a rigid gap *)
  let jobs =
    [ B.make ~id:0 ~release:Q.zero ~deadline:Q.one ~length:Q.one;
      B.make ~id:1 ~release:(Q.of_int 4) ~deadline:(Q.of_int 5) ~length:Q.one;
      B.make ~id:2 ~release:Q.zero ~deadline:(Q.of_int 5) ~length:Q.two ]
  in
  let sol = Busy.Preemptive.unbounded jobs in
  Alcotest.(check (option string)) "valid" None (Busy.Preemptive.check jobs sol);
  (* preemptive: job 2 splits across the two rigid units: cost 2 *)
  check_q "preemptive cost" "2" sol.Busy.Preemptive.cost;
  let nonpreemptive = Busy.Placement.optimum_span jobs in
  Alcotest.(check bool) "beats non-preemptive" true (Q.compare sol.Busy.Preemptive.cost nonpreemptive < 0)

let test_preemptive_bounded () =
  let jobs = List.init 4 (fun id -> B.make ~id ~release:Q.zero ~deadline:Q.two ~length:Q.two) in
  let cost, sol, detail = Busy.Preemptive.bounded ~g:2 jobs in
  Alcotest.(check (option string)) "unbounded part valid" None (Busy.Preemptive.check jobs sol);
  check_q "unbounded cost" "2" sol.Busy.Preemptive.cost;
  (* 4 identical jobs, g=2 : two machines for 2 units each -> 4 *)
  check_q "bounded cost" "4" cost;
  Alcotest.(check bool) "detail covers opened time" true (detail <> [])

(* -- exact bundling ------------------------------------------------------------ *)

let test_exact_bundling () =
  let jobs = [ ij 0 0 2; ij 1 0 2; ij 2 0 2 ] in
  (* g=2: 2 machines, cost 4 *)
  check_q "three identical, g=2" "4" (Busy.Exact.optimum ~g:2 jobs);
  check_q "g=3: one machine" "2" (Busy.Exact.optimum ~g:3 jobs)

let test_exact_parallel_rejects_budget () =
  Alcotest.check_raises "parallel + budget"
    (Invalid_argument "Exact.solve: the parallel split is for the unbudgeted path") (fun () ->
      ignore (Busy.Exact.solve ~budget:(Budget.limited 10) ~parallel:true ~g:2 [ ij 0 0 2 ]))

(* -- properties ------------------------------------------------------------------ *)

let seed_arb = QCheck.int_range 0 100_000

let interval_jobs seed = Gen.interval_jobs ~n:8 ~horizon:16 ~max_length:4 ~seed ()

let prop_packings_valid =
  QCheck.Test.make ~name:"all three algorithms produce valid packings" ~count:60 seed_arb (fun seed ->
      let jobs = interval_jobs seed in
      List.for_all
        (fun g ->
          List.for_all
            (fun solve -> Busy.Bundle.check ~g jobs (solve ~g jobs) = None)
            [ (fun ~g jobs -> Busy.First_fit.solve ~g jobs); (fun ~g jobs -> Busy.Greedy_tracking.solve ~g jobs); (fun ~g jobs -> Busy.Two_approx.solve ~g jobs) ])
        [ 1; 2; 3 ])

let prop_two_approx_profile_bound =
  QCheck.Test.make ~name:"two-approx cost <= 2 * demand profile" ~count:60
    (QCheck.pair seed_arb (QCheck.int_range 1 4))
    (fun (seed, g) ->
      let jobs = interval_jobs seed in
      let cost = Busy.Bundle.total_busy (Busy.Two_approx.solve ~g jobs) in
      Q.compare cost (Q.mul Q.two (Busy.Bounds.demand_profile ~g jobs)) <= 0)

let prop_ratios_vs_exact =
  QCheck.Test.make ~name:"GT <= 3 OPT, 2-approx <= 2 OPT, FF <= 4 OPT (small)" ~count:25 seed_arb
    (fun seed ->
      let jobs = Gen.interval_jobs ~n:7 ~horizon:12 ~max_length:4 ~seed () in
      let g = 2 in
      let opt = Busy.Exact.optimum ~g jobs in
      let cost solve = Busy.Bundle.total_busy (solve ~g jobs) in
      Q.compare (cost (fun ~g jobs -> Busy.Greedy_tracking.solve ~g jobs)) (Q.mul (Q.of_int 3) opt) <= 0
      && Q.compare (cost (fun ~g jobs -> Busy.Two_approx.solve ~g jobs)) (Q.mul Q.two opt) <= 0
      && Q.compare (cost (fun ~g jobs -> Busy.First_fit.solve ~g jobs)) (Q.mul (Q.of_int 4) opt) <= 0)

let prop_exact_below_heuristics =
  QCheck.Test.make ~name:"exact <= all heuristics and >= best lower bound" ~count:25 seed_arb
    (fun seed ->
      let jobs = Gen.interval_jobs ~n:7 ~horizon:12 ~max_length:4 ~seed () in
      let g = 2 in
      let opt = Busy.Exact.optimum ~g jobs in
      Q.compare opt (Busy.Bundle.total_busy (Busy.First_fit.solve ~g jobs)) <= 0
      && Q.compare opt (Busy.Bundle.total_busy (Busy.Greedy_tracking.solve ~g jobs)) <= 0
      && Q.compare opt (Busy.Bounds.best ~g jobs) >= 0)

(* The root-level split explores the same tree under a shared incumbent;
   the optimum cost it reports is deterministic and must equal the
   sequential search's. *)
let prop_parallel_matches_sequential =
  QCheck.Test.make ~name:"parallel split = sequential optimum" ~count:15 seed_arb (fun seed ->
      let jobs = Gen.interval_jobs ~n:7 ~horizon:12 ~max_length:4 ~seed () in
      let g = 2 in
      Q.equal (Busy.Exact.optimum ~parallel:true ~g jobs) (Busy.Exact.optimum ~g jobs))

let prop_kumar_rudra =
  QCheck.Test.make ~name:"Kumar-Rudra: valid and <= 2 x demand profile" ~count:60
    (QCheck.pair seed_arb (QCheck.int_range 1 4))
    (fun (seed, g) ->
      let jobs = interval_jobs seed in
      let packing = Busy.Kumar_rudra.solve ~g jobs in
      Busy.Bundle.check ~g jobs packing = None
      && Q.compare (Busy.Bundle.total_busy packing)
           (Q.mul Q.two (Busy.Bounds.demand_profile ~g jobs))
         <= 0)

let prop_covering_pair =
  QCheck.Test.make ~name:"covering pair: two tracks that jointly cover the support" ~count:60 seed_arb
    (fun seed ->
      let jobs = interval_jobs seed in
      QCheck.assume (jobs <> []);
      let t1, t2 = Busy.Two_approx.covering_track_pair jobs in
      let track l = Intervals.Track.is_track ~interval:B.interval_of l in
      let support = Intervals.Union.of_list (List.map B.interval_of jobs) in
      let union = Intervals.Union.of_list (List.map B.interval_of (t1 @ t2)) in
      track t1 && track t2 && Intervals.Union.equal support union
      (* no job taken twice *)
      && (let ids = List.map (fun (j : B.t) -> j.B.id) (t1 @ t2) in
          List.length (List.sort_uniq compare ids) = List.length ids))

let prop_witness =
  QCheck.Test.make ~name:"Theorem 5 witness: same span, <= 2 live" ~count:60 seed_arb (fun seed ->
      let jobs = interval_jobs seed in
      let packing = Busy.Greedy_tracking.solve ~g:2 jobs in
      List.for_all
        (fun bundle ->
          let w = Busy.Greedy_tracking.witness bundle in
          Q.equal (Busy.Bundle.busy_time bundle) (Intervals.span (List.map B.interval_of w))
          && Busy.Bundle.max_parallel w <= 2)
        packing)

let prop_placement_windows =
  QCheck.Test.make ~name:"placements stay within windows; exact <= greedy" ~count:25 seed_arb
    (fun seed ->
      let jobs = Gen.flexible_jobs ~n:6 ~horizon:14 ~max_length:3 ~seed () in
      let check placed =
        List.for_all2
          (fun (o : B.t) (p : B.t) ->
            B.is_interval p
            && Q.compare o.B.release p.B.release <= 0
            && Q.compare p.B.deadline o.B.deadline <= 0
            && Q.equal o.B.length p.B.length)
          jobs placed
      in
      let e = Busy.Placement.exact jobs and gr = Busy.Placement.greedy jobs in
      check e && check gr
      && Q.compare (Intervals.span (List.map B.interval_of e)) (Intervals.span (List.map B.interval_of gr)) <= 0)

let prop_preemptive =
  QCheck.Test.make ~name:"preemptive: valid, <= nonpreemptive span; bounded <= span+mass" ~count:25
    seed_arb (fun seed ->
      let jobs = Gen.flexible_jobs ~n:6 ~horizon:14 ~max_length:3 ~seed () in
      let sol = Busy.Preemptive.unbounded jobs in
      Busy.Preemptive.check jobs sol = None
      && Q.compare sol.Busy.Preemptive.cost (Busy.Placement.optimum_span jobs) <= 0
      && List.for_all
           (fun g ->
             let cost, _, _ = Busy.Preemptive.bounded ~g jobs in
             Q.compare cost (Q.add sol.Busy.Preemptive.cost (Busy.Bounds.mass ~g jobs)) <= 0
             && Q.compare cost sol.Busy.Preemptive.cost >= 0)
           [ 1; 2; 3 ])

(* Theorem 6's exactness, against the independent LP oracle. *)
let prop_preemptive_exact_vs_lp =
  QCheck.Test.make ~name:"Theorem 6 greedy = LP optimum (unbounded preemptive)" ~count:25 seed_arb
    (fun seed ->
      let jobs = Gen.flexible_jobs ~n:6 ~horizon:14 ~max_length:3 ~seed () in
      let sol = Busy.Preemptive.unbounded jobs in
      Q.equal sol.Busy.Preemptive.cost (Busy.Preemptive.lp_optimum jobs))

let prop_pipeline_bound =
  QCheck.Test.make ~name:"GT pipeline <= OPTinf + 2 mass" ~count:20 seed_arb (fun seed ->
      let jobs = Gen.flexible_jobs ~n:6 ~horizon:14 ~max_length:3 ~seed () in
      List.for_all
        (fun g ->
          let pinned, packing =
            Busy.Pipeline.run ~g ~placement:Busy.Pipeline.Exact_placement
              ~algorithm:Busy.Pipeline.Greedy_tracking jobs
          in
          Busy.Bundle.check ~g pinned packing = None
          &&
          let opt_inf = Intervals.span (List.map B.interval_of pinned) in
          Q.compare (Busy.Bundle.total_busy packing) (Q.add opt_inf (Q.mul Q.two (Busy.Bounds.mass ~g jobs)))
          <= 0)
        [ 1; 2; 3 ])

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_packings_valid; prop_two_approx_profile_bound; prop_ratios_vs_exact; prop_exact_below_heuristics;
      prop_parallel_matches_sequential;
      prop_covering_pair; prop_kumar_rudra; prop_witness; prop_placement_windows; prop_preemptive;
      prop_preemptive_exact_vs_lp; prop_pipeline_bound ]

let () =
  Alcotest.run "busy"
    [ ( "bundle",
        [ Alcotest.test_case "busy time" `Quick test_bundle_busy_time;
          Alcotest.test_case "check" `Quick test_bundle_check;
          Alcotest.test_case "bounds" `Quick test_bounds ] );
      ( "first fit",
        [ Alcotest.test_case "basic" `Quick test_first_fit_basic;
          Alcotest.test_case "prefers early bundles" `Quick test_first_fit_prefers_early_bundles;
          Alcotest.test_case "rejects flexible" `Quick test_first_fit_rejects_flexible ] );
      ( "greedy tracking",
        [ Alcotest.test_case "basic" `Quick test_greedy_tracking_basic;
          Alcotest.test_case "max track" `Quick test_max_track_exposed;
          Alcotest.test_case "witness" `Quick test_greedy_tracking_witness ] );
      ( "two approx",
        [ Alcotest.test_case "basic" `Quick test_two_approx_basic;
          Alcotest.test_case "identical jobs" `Quick test_two_approx_identical_jobs;
          Alcotest.test_case "single job" `Quick test_two_approx_single_job;
          Alcotest.test_case "fig8 gadget" `Quick test_two_approx_fig8_gadget ] );
      ( "kumar rudra",
        [ Alcotest.test_case "basic" `Quick test_kumar_rudra_basic;
          Alcotest.test_case "parity regression" `Quick test_kumar_rudra_parity_regression;
          Alcotest.test_case "fig8 gadget" `Quick test_kumar_rudra_fig8 ] );
      ( "placement",
        [ Alcotest.test_case "exact simple" `Quick test_placement_exact_simple;
          Alcotest.test_case "exact forced split" `Quick test_placement_exact_forced_split;
          Alcotest.test_case "greedy sanity" `Quick test_placement_greedy_not_worse_than_double ] );
      ( "pipeline",
        [ Alcotest.test_case "pinned validation" `Quick test_pipeline_pinned_validation;
          Alcotest.test_case "greedy tracking pipeline" `Quick test_pipeline_greedy_tracking ] );
      ( "preemptive",
        [ Alcotest.test_case "unbounded simple" `Quick test_preemptive_unbounded_simple;
          Alcotest.test_case "multi round" `Quick test_preemptive_multi_round;
          Alcotest.test_case "beats non-preemptive" `Quick test_preemptive_beats_nonpreemptive;
          Alcotest.test_case "bounded" `Quick test_preemptive_bounded ] );
      ("exact",
        [ Alcotest.test_case "bundling" `Quick test_exact_bundling;
          Alcotest.test_case "parallel rejects budget" `Quick test_exact_parallel_rejects_budget ]);
      ("properties", props) ]
