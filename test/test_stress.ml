(* Cross-module integration and stress tests.

   Every generator family is pushed through every applicable algorithm
   and the result is validated three ways: by the model checkers
   (Bundle.check / Solution.verify), by the simulator replay (energy must
   equal the analytic objective, no violations), and against the paper's
   bounds where an exact optimum or lower bound is available. Also fuzzes
   the instance-file parser. *)

module Q = Rational
module B = Workload.Bjob
module Gen = Workload.Generate

let interval_families =
  [ ("uniform", fun seed -> Gen.interval_jobs ~n:12 ~horizon:24 ~max_length:5 ~seed ());
    ("clique", fun seed -> Gen.clique_interval_jobs ~n:12 ~max_length:5 ~seed ());
    ("proper", fun seed -> Gen.proper_interval_jobs ~n:12 ~seed ());
    ("proper clique", fun seed -> Gen.proper_clique_interval_jobs ~n:12 ~seed ());
    ("laminar", fun seed -> Gen.laminar_interval_jobs ~depth:3 ~span:24 ~seed ()) ]

let algorithms =
  [ ("first fit", (fun ~g jobs -> Busy.First_fit.solve ~g jobs)); ("greedy tracking", (fun ~g jobs -> Busy.Greedy_tracking.solve ~g jobs));
    ("two approx", (fun ~g jobs -> Busy.Two_approx.solve ~g jobs)); ("online ff", Busy.Online.first_fit);
    ("online bucketed", Busy.Online.bucketed_first_fit) ]

let test_every_family_every_algorithm () =
  List.iter
    (fun (family, gen) ->
      for seed = 0 to 4 do
        let jobs = gen seed in
        List.iter
          (fun g ->
            let profile = Busy.Bounds.demand_profile ~g jobs in
            List.iter
              (fun (name, solve) ->
                let label = Printf.sprintf "%s/%s g=%d seed=%d" family name g seed in
                let packing = solve ~g jobs in
                Alcotest.(check (option string)) (label ^ " valid") None (Busy.Bundle.check ~g jobs packing);
                let report = Sim.run_packing ~g packing in
                Alcotest.(check (list string)) (label ^ " sim clean") [] report.Sim.violations;
                Alcotest.(check bool) (label ^ " energy matches") true
                  (Q.equal report.Sim.total_energy (Busy.Bundle.total_busy packing));
                Alcotest.(check bool) (label ^ " above profile bound") true
                  (Q.compare (Busy.Bundle.total_busy packing) profile >= 0))
              algorithms)
          [ 1; 2; 4 ]
      done)
    interval_families

let test_two_approx_guarantee_across_families () =
  List.iter
    (fun (family, gen) ->
      for seed = 0 to 4 do
        let jobs = gen seed in
        List.iter
          (fun g ->
            let cost = Busy.Bundle.total_busy (Busy.Two_approx.solve ~g jobs) in
            let bound = Q.mul Q.two (Busy.Bounds.demand_profile ~g jobs) in
            Alcotest.(check bool)
              (Printf.sprintf "%s g=%d seed=%d within 2x profile" family g seed)
              true
              (Q.compare cost bound <= 0))
          [ 1; 2; 3; 4; 6 ]
      done)
    interval_families

let test_flexible_pipelines_diurnal () =
  for seed = 0 to 3 do
    let jobs = Gen.diurnal_flexible_jobs ~n:14 ~horizon:48 ~seed () in
    let pinned = Busy.Placement.greedy jobs in
    List.iter
      (fun g ->
        List.iter
          (fun (name, solve) ->
            let label = Printf.sprintf "diurnal/%s g=%d seed=%d" name g seed in
            let packing = solve ~g pinned in
            Alcotest.(check (option string)) (label ^ " valid") None (Busy.Bundle.check ~g pinned packing))
          algorithms;
        (* GreedyTracking pipeline accounting: cost <= span(pinned) + 2 mass *)
        let cost = Busy.Bundle.total_busy (Busy.Greedy_tracking.solve ~g pinned) in
        let bound =
          Q.add (Intervals.span (List.map B.interval_of pinned)) (Q.mul Q.two (Busy.Bounds.mass ~g jobs))
        in
        Alcotest.(check bool)
          (Printf.sprintf "diurnal GT bound g=%d seed=%d" g seed)
          true (Q.compare cost bound <= 0))
      [ 2; 4 ]
  done

let test_active_pipeline_consistency () =
  (* all three active-time solvers agree on feasibility, are ordered by
     cost, and replay cleanly in the simulator *)
  for seed = 0 to 9 do
    let params : Gen.slotted_params = { n = 7; horizon = 12; max_length = 3; slack = 4; g = 2 } in
    let inst = Gen.slotted ~params ~seed () in
    let minimal = Active.Minimal.solve inst Active.Minimal.Right_to_left in
    let rounding = Active.Rounding.solve inst in
    let exact = Active.Exact.branch_and_bound inst in
    match (minimal, rounding, exact) with
    | None, None, None -> ()
    | Some m, Some (r, _), Some e ->
        let label s = Printf.sprintf "seed %d: %s" seed s in
        Alcotest.(check bool) (label "exact <= rounding") true
          (Active.Solution.cost e <= Active.Solution.cost r);
        Alcotest.(check bool) (label "exact <= minimal") true
          (Active.Solution.cost e <= Active.Solution.cost m);
        List.iter
          (fun sol ->
            let report = Sim.run_active inst sol in
            Alcotest.(check (list string)) (label "sim clean") [] report.Sim.violations;
            Alcotest.(check bool) (label "sim energy") true
              (Q.equal report.Sim.total_energy (Q.of_int (Active.Solution.cost sol))))
          [ m; r; e ]
    | _ -> Alcotest.fail (Printf.sprintf "seed %d: feasibility disagreement" seed)
  done

let test_unit_clique_slotted () =
  (* slotted translation of clique-like structure: all jobs share slot
     window; LP rounding must stay within 2 LP *)
  for width = 2 to 5 do
    let jobs = List.init (2 * width) (fun id -> Workload.Slotted.job ~id ~release:0 ~deadline:width ~length:1) in
    let inst = Workload.Slotted.make ~g:2 jobs in
    match (Active.Rounding.solve inst, Active.Exact.optimum inst) with
    | Some (sol, stats), Some opt ->
        Alcotest.(check bool) "within 2 LP" true
          (Q.compare (Q.of_int (Active.Solution.cost sol)) (Q.mul Q.two stats.Active.Rounding.lp_cost) <= 0);
        Alcotest.(check bool) "opt sane" true (opt >= width)
    | _ -> Alcotest.fail "clique-slotted should be feasible"
  done

(* -- parser fuzzing ----------------------------------------------------------- *)

let prop_parser_never_crashes =
  let gen =
    QCheck.Gen.(
      let token = oneofl [ "slotted"; "busy"; "g"; "job"; "0"; "1"; "-3"; "5/2"; "x"; "#c"; "" ] in
      let* lines = list_size (int_range 0 8) (list_size (int_range 0 5) token) in
      return (String.concat "\n" (List.map (String.concat " ") lines)))
  in
  QCheck.Test.make ~name:"parser: random token soup either parses or raises Parse_error" ~count:300
    (QCheck.make gen ~print:(fun s -> s))
    (fun input ->
      match Workload.Io.parse_string input with
      | _ -> true
      | exception Workload.Io.Parse_error _ -> true
      | exception _ -> false)

let prop_parse_print_fixpoint =
  QCheck.Test.make ~name:"parse . print . parse is the identity" ~count:100 (QCheck.int_range 0 10_000)
    (fun seed ->
      let inst =
        if seed mod 2 = 0 then Workload.Io.Slotted_instance (Gen.slotted ~seed ())
        else Workload.Io.Busy_instance (Gen.busy_jobs ~seed ())
      in
      let once = Workload.Io.to_string inst in
      let twice = Workload.Io.to_string (Workload.Io.parse_string once) in
      once = twice)

let props = List.map QCheck_alcotest.to_alcotest [ prop_parser_never_crashes; prop_parse_print_fixpoint ]

let () =
  Alcotest.run "stress"
    [ ( "integration",
        [ Alcotest.test_case "every family x every algorithm" `Quick test_every_family_every_algorithm;
          Alcotest.test_case "two-approx guarantee across families" `Quick
            test_two_approx_guarantee_across_families;
          Alcotest.test_case "flexible pipelines on diurnal load" `Quick test_flexible_pipelines_diurnal;
          Alcotest.test_case "active pipeline consistency" `Quick test_active_pipeline_consistency;
          Alcotest.test_case "clique-like slotted instances" `Quick test_unit_clique_slotted ] );
      ("fuzz", props) ]
