(* Tests for the Dinic max-flow substrate: textbook instances, bipartite
   matching, min-cut certification and path decomposition, plus properties
   (max-flow = min-cut capacity, conservation) on random graphs. *)

let test_single_edge () =
  let g = Flow.create 2 in
  let e = Flow.add_edge g ~src:0 ~dst:1 ~cap:5 in
  Alcotest.(check int) "value" 5 (Flow.max_flow g ~source:0 ~sink:1);
  Alcotest.(check int) "edge flow" 5 (Flow.flow g e)

let test_series_parallel () =
  let g = Flow.create 4 in
  let _ = Flow.add_edge g ~src:0 ~dst:1 ~cap:3 in
  let _ = Flow.add_edge g ~src:0 ~dst:2 ~cap:2 in
  let _ = Flow.add_edge g ~src:1 ~dst:3 ~cap:2 in
  let _ = Flow.add_edge g ~src:2 ~dst:3 ~cap:3 in
  let _ = Flow.add_edge g ~src:1 ~dst:2 ~cap:5 in
  (* 3 units via vertex 1 (one rerouted 1->2->3), 2 via vertex 2: value 5 *)
  Alcotest.(check int) "value" 5 (Flow.max_flow g ~source:0 ~sink:3)

let test_needs_residual () =
  (* Classic instance where a greedy augmenting path must be undone via the
     residual edge. *)
  let g = Flow.create 4 in
  let _ = Flow.add_edge g ~src:0 ~dst:1 ~cap:1 in
  let _ = Flow.add_edge g ~src:0 ~dst:2 ~cap:1 in
  let _ = Flow.add_edge g ~src:1 ~dst:2 ~cap:1 in
  let _ = Flow.add_edge g ~src:1 ~dst:3 ~cap:1 in
  let _ = Flow.add_edge g ~src:2 ~dst:3 ~cap:1 in
  Alcotest.(check int) "value" 2 (Flow.max_flow g ~source:0 ~sink:3)

let test_disconnected () =
  let g = Flow.create 3 in
  let _ = Flow.add_edge g ~src:0 ~dst:1 ~cap:7 in
  Alcotest.(check int) "no path" 0 (Flow.max_flow g ~source:0 ~sink:2)

let test_zero_capacity () =
  let g = Flow.create 2 in
  let _ = Flow.add_edge g ~src:0 ~dst:1 ~cap:0 in
  Alcotest.(check int) "zero cap" 0 (Flow.max_flow g ~source:0 ~sink:1)

let test_bipartite_matching () =
  (* 3x3 bipartite: perfect matching exists *)
  let g = Flow.create 8 in
  let s = 6 and t = 7 in
  for i = 0 to 2 do
    ignore (Flow.add_edge g ~src:s ~dst:i ~cap:1);
    ignore (Flow.add_edge g ~src:(3 + i) ~dst:t ~cap:1)
  done;
  List.iter
    (fun (a, bb) -> ignore (Flow.add_edge g ~src:a ~dst:(3 + bb) ~cap:1))
    [ (0, 0); (0, 1); (1, 1); (1, 2); (2, 0) ];
  Alcotest.(check int) "perfect matching" 3 (Flow.max_flow g ~source:s ~sink:t)

let test_min_cut () =
  let g = Flow.create 4 in
  let _ = Flow.add_edge g ~src:0 ~dst:1 ~cap:10 in
  let _ = Flow.add_edge g ~src:1 ~dst:2 ~cap:1 in
  let _ = Flow.add_edge g ~src:2 ~dst:3 ~cap:10 in
  let v = Flow.max_flow g ~source:0 ~sink:3 in
  Alcotest.(check int) "bottleneck" 1 v;
  let side = Flow.min_cut g ~source:0 in
  Alcotest.(check (list bool)) "cut side" [ true; true; false; false ] (Array.to_list side)

let test_reset_and_set_cap () =
  let g = Flow.create 2 in
  let e = Flow.add_edge g ~src:0 ~dst:1 ~cap:5 in
  Alcotest.(check int) "first" 5 (Flow.max_flow g ~source:0 ~sink:1);
  (* reset-free: raising the cap keeps the 5 routed units in place *)
  Flow.set_cap g e 8;
  Alcotest.(check int) "flow preserved" 5 (Flow.flow g e);
  Alcotest.(check int) "headroom augments" 3 (Flow.augment g ~source:0 ~sink:1);
  Alcotest.check_raises "cap below flow" (Invalid_argument "Flow.set_cap: capacity below current flow; drain_edge first")
    (fun () -> Flow.set_cap g e 3);
  Flow.reset g;
  Alcotest.(check int) "flow zeroed" 0 (Flow.flow g e);
  Flow.set_cap g e 3;
  Alcotest.(check int) "after set_cap" 3 (Flow.max_flow g ~source:0 ~sink:1)

let test_drain_edge () =
  (* diamond: 0 -> {1,2} -> 3, middle edge carries half the flow *)
  let g = Flow.create 4 in
  let a = Flow.add_edge g ~src:0 ~dst:1 ~cap:2 in
  let b = Flow.add_edge g ~src:0 ~dst:2 ~cap:1 in
  let c = Flow.add_edge g ~src:1 ~dst:3 ~cap:2 in
  let d = Flow.add_edge g ~src:2 ~dst:3 ~cap:1 in
  Alcotest.(check int) "max flow" 3 (Flow.max_flow g ~source:0 ~sink:3);
  Alcotest.(check int) "drained" 2 (Flow.drain_edge g c ~source:0 ~sink:3);
  Alcotest.(check int) "edge emptied" 0 (Flow.flow g c);
  Alcotest.(check int) "tail side cancelled" 0 (Flow.flow g a);
  Alcotest.(check int) "untouched branch" 1 (Flow.flow g b);
  Alcotest.(check int) "untouched branch out" 1 (Flow.flow g d);
  (* close the edge, reopen with a smaller cap, re-augment to the new max *)
  Flow.set_cap g c 0;
  Alcotest.(check int) "closed: nothing to push" 0 (Flow.augment g ~source:0 ~sink:3);
  Flow.set_cap g c 1;
  Alcotest.(check int) "reopened: one unit back" 1 (Flow.augment g ~source:0 ~sink:3);
  (* draining an edge with no routed flow is a free no-op *)
  let g2 = Flow.create 2 in
  let e2 = Flow.add_edge g2 ~src:0 ~dst:1 ~cap:4 in
  Alcotest.(check int) "drain flowless edge" 0 (Flow.drain_edge g2 e2 ~source:0 ~sink:1)

let test_incremental_max_flow () =
  let g = Flow.create 2 in
  let _ = Flow.add_edge g ~src:0 ~dst:1 ~cap:5 in
  Alcotest.(check int) "first call" 5 (Flow.max_flow g ~source:0 ~sink:1);
  Alcotest.(check int) "second call adds nothing" 0 (Flow.max_flow g ~source:0 ~sink:1)

let test_decompose_paths () =
  let g = Flow.create 4 in
  let _ = Flow.add_edge g ~src:0 ~dst:1 ~cap:2 in
  let _ = Flow.add_edge g ~src:0 ~dst:2 ~cap:1 in
  let _ = Flow.add_edge g ~src:1 ~dst:3 ~cap:2 in
  let _ = Flow.add_edge g ~src:2 ~dst:3 ~cap:1 in
  let v = Flow.max_flow g ~source:0 ~sink:3 in
  let paths = Flow.decompose_paths g ~source:0 ~sink:3 in
  let total = List.fold_left (fun acc (_, a) -> acc + a) 0 paths in
  Alcotest.(check int) "decomposition covers flow" v total;
  List.iter
    (fun (vs, a) ->
      Alcotest.(check bool) "positive amount" true (a > 0);
      Alcotest.(check int) "starts at source" 0 (List.hd vs);
      Alcotest.(check int) "ends at sink" 3 (List.nth vs (List.length vs - 1)))
    paths

let test_invalid_args () =
  let g = Flow.create 2 in
  Alcotest.check_raises "negative cap" (Invalid_argument "Flow.add_edge: negative capacity") (fun () ->
      ignore (Flow.add_edge g ~src:0 ~dst:1 ~cap:(-1)));
  Alcotest.check_raises "bad vertex" (Invalid_argument "Flow.add_edge: vertex out of range") (fun () ->
      ignore (Flow.add_edge g ~src:0 ~dst:5 ~cap:1));
  Alcotest.check_raises "source=sink" (Invalid_argument "Flow.max_flow: source = sink") (fun () ->
      ignore (Flow.max_flow g ~source:0 ~sink:0))

(* -- properties on random layered graphs --------------------------------- *)

type rand_graph = { n : int; edges : (int * int * int) list }

let graph_gen =
  let open QCheck.Gen in
  let* n = int_range 4 12 in
  let* m = int_range 3 30 in
  let edge = triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 0 8) in
  let* edges = list_size (return m) edge in
  let edges = List.filter (fun (a, b, _) -> a <> b) edges in
  return { n; edges }

let graph_arb =
  QCheck.make graph_gen ~print:(fun g ->
      Printf.sprintf "n=%d [%s]" g.n
        (String.concat "; " (List.map (fun (a, b, c) -> Printf.sprintf "%d->%d:%d" a b c) g.edges)))

let build g =
  let fg = Flow.create g.n in
  let handles = List.map (fun (a, b, c) -> ((a, b, c), Flow.add_edge fg ~src:a ~dst:b ~cap:c)) g.edges in
  (fg, handles)

let prop_maxflow_mincut =
  QCheck.Test.make ~name:"max-flow = min-cut" ~count:1000 graph_arb (fun g ->
      QCheck.assume (g.n >= 2);
      let fg, handles = build g in
      let v = Flow.max_flow fg ~source:0 ~sink:(g.n - 1) in
      let side = Flow.min_cut fg ~source:0 in
      (not side.(g.n - 1))
      &&
      let cut_cap =
        List.fold_left
          (fun acc ((a, b, c), _) -> if side.(a) && not side.(b) then acc + c else acc)
          0 handles
      in
      v = cut_cap)

let prop_conservation =
  QCheck.Test.make ~name:"flow conservation and capacity constraints" ~count:1000 graph_arb (fun g ->
      QCheck.assume (g.n >= 2);
      let fg, handles = build g in
      let v = Flow.max_flow fg ~source:0 ~sink:(g.n - 1) in
      let net = Array.make g.n 0 in
      List.for_all
        (fun ((a, b, c), e) ->
          let f = Flow.flow fg e in
          net.(a) <- net.(a) - f;
          net.(b) <- net.(b) + f;
          f >= 0 && f <= c)
        handles
      &&
      let ok = ref true in
      Array.iteri (fun i x -> if i <> 0 && i <> g.n - 1 && x <> 0 then ok := false) net;
      !ok && net.(g.n - 1) = v && net.(0) = -v)

let prop_decompose_total =
  QCheck.Test.make ~name:"path decomposition sums to flow value" ~count:1000 graph_arb (fun g ->
      QCheck.assume (g.n >= 2);
      let fg, _ = build g in
      let v = Flow.max_flow fg ~source:0 ~sink:(g.n - 1) in
      let paths = Flow.decompose_paths fg ~source:0 ~sink:(g.n - 1) in
      let total = List.fold_left (fun acc (_, a) -> acc + a) 0 paths in
      total = v
      && List.for_all
           (fun (vs, a) ->
             a > 0 && List.hd vs = 0
             && List.nth vs (List.length vs - 1) = g.n - 1
             && List.length (List.sort_uniq compare vs) = List.length vs)
           paths)

(* The incremental-oracle contract at the flow layer: after ANY sequence
   of capacity retargets on a warm graph (draining first when the new cap
   sits below the routed flow), re-augmenting reaches exactly the max
   flow of a freshly built graph with the same capacities. *)
let prop_warm_reuse =
  QCheck.Test.make ~name:"warm set_cap/drain/augment = fresh rebuild" ~count:500
    QCheck.(pair graph_arb (small_list (pair small_nat small_nat)))
    (fun (g, toggles) ->
      QCheck.assume (g.n >= 2 && g.edges <> []);
      let source = 0 and sink = g.n - 1 in
      let fg, handles = build g in
      let handles = Array.of_list handles in
      let caps = Array.map (fun ((_, _, c), _) -> c) handles in
      let value = ref (Flow.max_flow fg ~source ~sink) in
      List.for_all
        (fun (ei, c) ->
          let ei = ei mod Array.length handles in
          let c = c mod 9 in
          let e = snd handles.(ei) in
          if c < Flow.flow fg e then value := !value - Flow.drain_edge fg e ~source ~sink;
          Flow.set_cap fg e c;
          caps.(ei) <- c;
          value := !value + Flow.augment fg ~source ~sink;
          let fresh = Flow.create g.n in
          Array.iteri
            (fun i ((a, b, _), _) -> ignore (Flow.add_edge fresh ~src:a ~dst:b ~cap:caps.(i)))
            handles;
          !value = Flow.max_flow fresh ~source ~sink)
        toggles)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_maxflow_mincut; prop_conservation; prop_decompose_total; prop_warm_reuse ]

let () =
  Alcotest.run "flow"
    [ ( "unit",
        [ Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "series parallel" `Quick test_series_parallel;
          Alcotest.test_case "needs residual" `Quick test_needs_residual;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
          Alcotest.test_case "bipartite matching" `Quick test_bipartite_matching;
          Alcotest.test_case "min cut" `Quick test_min_cut;
          Alcotest.test_case "reset and set_cap" `Quick test_reset_and_set_cap;
          Alcotest.test_case "drain edge" `Quick test_drain_edge;
          Alcotest.test_case "incremental max flow" `Quick test_incremental_max_flow;
          Alcotest.test_case "decompose paths" `Quick test_decompose_paths;
          Alcotest.test_case "invalid args" `Quick test_invalid_args ] );
      ("properties", props) ]
