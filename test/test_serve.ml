(* Tests for the serve daemon stack: the bounded queue (backpressure
   valve), the deterministic fault injector, the total request decoder,
   the lenient instance parser behind it, and the daemon's resilience
   contract — one well-formed response per request line, in order, under
   crashes, expired deadlines, queue overflow and corrupted input; the
   fault-injection acceptance stream pushes 500 requests through an
   injected daemon and checks the invariant holds for every one. *)

module J = Obs.Json
module Io = Workload.Io

let slotted_text = "slotted\ng 2\njob 0 0 4 2\njob 1 0 4 2\n"
let busy_text = "busy\njob 0 0 10 10\njob 1 0 10 10\n"

let request ?(extra = []) text =
  J.to_string (J.Obj (("instance", J.String text) :: extra))

let config ?(domains = 1) ?(queue = 64) ?(cache = 1024) ?basis_cache ?inject ?now ?sleep () =
  let d = Serve.default_config () in
  {
    d with
    Serve.domains;
    queue_capacity = queue;
    cache_capacity = cache;
    basis_cache_capacity =
      (match basis_cache with Some n -> n | None -> d.Serve.basis_cache_capacity);
    inject = (match inject with Some i -> i | None -> Serve.Inject.none);
    now = (match now with Some f -> f | None -> d.Serve.now);
    sleep = (match sleep with Some f -> f | None -> d.Serve.sleep);
  }

let parse_ok line =
  match J.parse line with
  | Ok doc -> doc
  | Error msg -> Alcotest.fail (Printf.sprintf "unparseable response %s: %s" line msg)

let status_of line =
  match J.member "status" (parse_ok line) with
  | Some (J.String s) -> s
  | _ -> Alcotest.fail ("response without status: " ^ line)

(* -------------------------------------------------------------- bqueue -- *)

let test_bqueue_capacity () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Bqueue.create: capacity must be positive") (fun () ->
      ignore (Serve.Bqueue.create ~capacity:0))

let test_bqueue_push_pop () =
  let q = Serve.Bqueue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Serve.Bqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Serve.Bqueue.try_push q 2);
  Alcotest.(check bool) "full" false (Serve.Bqueue.try_push q 3);
  Alcotest.(check int) "length" 2 (Serve.Bqueue.length q);
  Alcotest.(check (option int)) "fifo" (Some 1) (Serve.Bqueue.pop q);
  Alcotest.(check bool) "room again" true (Serve.Bqueue.try_push q 3)

let test_bqueue_close_drains () =
  let q = Serve.Bqueue.create ~capacity:4 in
  ignore (Serve.Bqueue.try_push q 1);
  ignore (Serve.Bqueue.try_push q 2);
  Serve.Bqueue.close q;
  Alcotest.(check bool) "closed rejects" false (Serve.Bqueue.try_push q 3);
  Alcotest.(check (option int)) "drains 1" (Some 1) (Serve.Bqueue.pop q);
  Alcotest.(check (option int)) "drains 2" (Some 2) (Serve.Bqueue.pop q);
  Alcotest.(check (option int)) "then none" None (Serve.Bqueue.pop q)

let test_bqueue_close_wakes_blocked () =
  let q : int Serve.Bqueue.t = Serve.Bqueue.create ~capacity:1 in
  let consumer = Domain.spawn (fun () -> Serve.Bqueue.pop q) in
  Serve.Bqueue.close q;
  Alcotest.(check (option int)) "blocked pop wakes with None" None (Domain.join consumer)

(* -------------------------------------------------------------- inject -- *)

let test_inject_parse () =
  (match Serve.Inject.parse "crash=0.5,delay=40@0.25,corrupt=0.1,seed=9" with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  (match Serve.Inject.parse "crash=2.0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "probability 2.0 accepted");
  (match Serve.Inject.parse "delay=oops" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad delay accepted");
  (match Serve.Inject.parse "warp=0.1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key accepted");
  match Serve.Inject.parse "" with
  | Ok t -> Alcotest.(check bool) "empty spec is none" true (Serve.Inject.is_none t)
  | Error m -> Alcotest.fail m

let test_inject_deterministic () =
  let draw () =
    let t = Serve.Inject.make ~crash:0.3 ~corrupt:0.5 ~seed:42 () in
    List.init 50 (fun i ->
        (Serve.Inject.should_crash t, Serve.Inject.corrupt_line t (string_of_int i)))
  in
  Alcotest.(check bool) "same seed, same faults" true (draw () = draw ())

let test_inject_corrupt_single_line () =
  let t = Serve.Inject.make ~corrupt:1.0 ~seed:7 () in
  for i = 0 to 99 do
    let line = Printf.sprintf "{\"instance\": \"slotted %d\"}" i in
    match Serve.Inject.corrupt_line t line with
    | Some mutated ->
        Alcotest.(check bool) "no newline inserted" false (String.contains mutated '\n')
    | None -> Alcotest.fail "corrupt=1.0 must fire"
  done

(* ----------------------------------------------------- protocol decode -- *)

let test_json_parse () =
  (match J.parse "{\"a\": [1, 2.5, \"x\\u0041\", true, null]}" with
  | Ok doc -> (
      match J.member "a" doc with
      | Some (J.List [ J.Int 1; J.Float f; J.String "xA"; J.Bool true; J.Null ]) ->
          Alcotest.(check (float 1e-9)) "float" 2.5 f
      | _ -> Alcotest.fail "wrong parse shape")
  | Error m -> Alcotest.fail m);
  (match J.parse "{" with Ok _ -> Alcotest.fail "accepted {" | Error _ -> ());
  (match J.parse "" with Ok _ -> Alcotest.fail "accepted empty" | Error _ -> ());
  match J.parse "[1] trailing" with
  | Ok _ -> Alcotest.fail "accepted trailing garbage"
  | Error _ -> ()

let test_decode_defaults () =
  match Serve.Protocol.decode_line ~seq:3 (request slotted_text) with
  | Ok req ->
      Alcotest.(check bool) "id defaults to seq" true (req.Serve.Protocol.id = J.Int 3);
      Alcotest.(check string) "algorithm default" "cascade" req.Serve.Protocol.algorithm;
      Alcotest.(check bool) "command inferred" true (req.Serve.Protocol.command = Serve.Protocol.Active)
  | Error m -> Alcotest.fail m

let test_decode_rejects () =
  let bad line =
    match Serve.Protocol.decode_line ~seq:0 line with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("accepted " ^ line)
  in
  bad "not json";
  bad "[1,2]";
  bad "{}";
  bad "{\"instance\": 42}";
  bad "{\"instance\": \"slotted\\ng 2\\njob 0 0 4 2\\n\", \"command\": \"busy\"}";
  bad "{\"instance\": \"slotted\\ng 2\\njob zero\\n\"}";
  (* the Division_by_zero regression: a zero-denominator coordinate must
     be an Error, never an escaping exception (REVIEW: killed the daemon) *)
  bad "{\"instance\": \"busy\\njob 0 0 1/0 1\\n\"}";
  bad (J.to_string (J.Obj [ ("instance", J.String slotted_text); ("g", J.Int 0) ]))

let test_cache_key_ignores_delivery_fields () =
  let decode extra =
    match Serve.Protocol.decode_line ~seq:0 (request ~extra slotted_text) with
    | Ok req -> req
    | Error m -> Alcotest.fail m
  in
  let base = Serve.Protocol.cache_key (decode []) in
  Alcotest.(check string) "id excluded" base
    (Serve.Protocol.cache_key (decode [ ("id", J.String "abc") ]));
  Alcotest.(check string) "deadline excluded" base
    (Serve.Protocol.cache_key (decode [ ("deadline_ms", J.Int 5) ]));
  Alcotest.(check bool) "algorithm included" true
    (base <> Serve.Protocol.cache_key (decode [ ("algorithm", J.String "greedy") ]))

let test_cache_key_params_order () =
  (* params are canonicalized at decode: the same params in a different
     JSON field order must share a memo-cache key *)
  let decode params =
    match
      Serve.Protocol.decode_line ~seq:0 (request ~extra:[ ("params", J.Obj params) ] slotted_text)
    with
    | Ok req -> req
    | Error m -> Alcotest.fail m
  in
  let ab = decode [ ("a", J.String "1"); ("b", J.String "2") ] in
  let ba = decode [ ("b", J.String "2"); ("a", J.String "1") ] in
  Alcotest.(check string) "order-independent key" (Serve.Protocol.cache_key ab)
    (Serve.Protocol.cache_key ba);
  Alcotest.(check bool) "values still included" true
    (Serve.Protocol.cache_key ab
    <> Serve.Protocol.cache_key (decode [ ("a", J.String "1"); ("b", J.String "3") ]));
  (* duplicate keys: first occurrence wins, matching List.assoc *)
  let dup = decode [ ("a", J.String "1"); ("a", J.String "2") ] in
  Alcotest.(check (list (pair string string))) "first duplicate wins" [ ("a", "1") ]
    dup.Serve.Protocol.params

(* ----------------------------------------------------- lenient parsing -- *)

let test_io_lenient_collects () =
  let text = "busy\njob 0 0 10 10\njob oops\njob 1 0 10 10\n" in
  match Io.parse_string_lenient text with
  | Ok (Io.Busy_instance jobs, [ (3, _) ]) ->
      Alcotest.(check int) "good jobs kept" 2 (List.length jobs)
  | Ok (_, warnings) ->
      Alcotest.fail (Printf.sprintf "expected one line-3 warning, got %d" (List.length warnings))
  | Error (l, m) -> Alcotest.fail (Printf.sprintf "fatal at %d: %s" l m)

let test_io_lenient_zero_denominator () =
  (* "1/0" coordinates degrade to a per-line warning like any other
     malformed field — the Division_by_zero regression's lenient half *)
  match Io.parse_string_lenient "busy\njob 0 0 1/0 1\njob 1 0 2 1\n" with
  | Ok (Io.Busy_instance jobs, [ (2, _) ]) ->
      Alcotest.(check int) "good job kept" 1 (List.length jobs)
  | Ok (_, warnings) ->
      Alcotest.fail (Printf.sprintf "expected one line-2 warning, got %d" (List.length warnings))
  | Error (l, m) -> Alcotest.fail (Printf.sprintf "fatal at %d: %s" l m)

let test_io_lenient_fatal_header () =
  match Io.parse_string_lenient "starship\njob 0 0 1 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header must stay fatal"

(* --------------------------------------------------------------- serve -- *)

let test_serve_basic_ok () =
  let lines = [ request slotted_text; request ~extra:[ ("g", J.Int 2) ] busy_text ] in
  let out = Serve.run_lines ~config:(config ()) lines in
  Alcotest.(check int) "one response per request" 2 (List.length out);
  List.iteri
    (fun i line ->
      Alcotest.(check string) "status" "ok" (status_of line);
      match J.member "id" (parse_ok line) with
      | Some (J.Int id) -> Alcotest.(check int) "ordered" i id
      | _ -> Alcotest.fail "missing id")
    out

let test_serve_crash_isolation () =
  (* every worker crashes; every request still gets a structured error
     and the daemon finishes normally *)
  let inject = Serve.Inject.make ~crash:1.0 ~seed:5 () in
  let lines = List.init 10 (fun _ -> request slotted_text) in
  let out = Serve.run_lines ~config:(config ~cache:0 ~inject ()) lines in
  Alcotest.(check int) "all answered" 10 (List.length out);
  List.iter (fun line -> Alcotest.(check string) "status" "error" (status_of line)) out

let test_serve_malformed_lines_continue () =
  let lines =
    [ "garbage";
      request slotted_text;
      "{\"instance\": 42}";
      (* the Division_by_zero regression line that used to kill the daemon *)
      request "busy\njob 0 0 1/0 1\n";
      request slotted_text ]
  in
  let out = Serve.run_lines ~config:(config ()) lines in
  Alcotest.(check (list string)) "errors never stop the stream"
    [ "error"; "ok"; "error"; "error"; "ok" ]
    (List.map status_of out)

let test_serve_output_failure_orderly () =
  (* a dead response channel is the one unanswerable fault: run_stream
     must report it and wind down (queue closed, workers joined) instead
     of letting the exception escape a worker domain *)
  let remaining = ref (List.init 6 (fun _ -> request slotted_text)) in
  let next_line () =
    match !remaining with
    | [] -> None
    | l :: rest ->
        remaining := rest;
        Some l
  in
  let emitted = Atomic.make 0 in
  let emit _ =
    if Atomic.fetch_and_add emitted 1 >= 1 then raise (Sys_error "stdout: closed")
  in
  match Serve.run_stream ~config:(config ~domains:2 ()) ~next_line ~emit () with
  | Some (Sys_error _) ->
      Alcotest.(check bool) "first response went out" true (Atomic.get emitted >= 2)
  | Some e -> Alcotest.fail ("wrong failure surfaced: " ^ Printexc.to_string e)
  | None -> Alcotest.fail "output failure not reported"

let test_serve_deadline_timeout () =
  (* fake clock: every read advances 10ms, so a 1ms deadline has expired
     by the first probe — deterministic timeout, no real sleeping *)
  let t = ref 0.0 in
  let now () =
    t := !t +. 0.010;
    !t
  in
  let lines =
    [ J.to_string
        (J.Obj
           [ ("instance", J.String slotted_text);
             ("algorithm", J.String "cascade");
             ("deadline_ms", J.Int 1) ]) ]
  in
  let out = Serve.run_lines ~config:(config ~now ()) lines in
  match out with
  | [ line ] -> (
      Alcotest.(check string) "status" "timeout" (status_of line);
      (* the cascade's partial attempt list survives into the response *)
      match J.member "provenance" (parse_ok line) with
      | Some (J.Obj fields) -> (
          match List.assoc_opt "attempts" fields with
          | Some (J.List (_ :: _)) -> ()
          | _ -> Alcotest.fail "timeout lost the cascade attempts")
      | _ -> Alcotest.fail "timeout without provenance")
  | l -> Alcotest.fail (Printf.sprintf "expected 1 response, got %d" (List.length l))

let test_serve_overload_sheds () =
  (* queue of 1, one worker stuck in injected 50ms delays: the reader
     outruns it and must shed — but every line is still answered *)
  let inject = Serve.Inject.make ~delay_ms:50 ~delay:1.0 ~seed:1 () in
  let lines = List.init 8 (fun _ -> request slotted_text) in
  let out = Serve.run_lines ~config:(config ~queue:1 ~cache:0 ~inject ()) lines in
  Alcotest.(check int) "all answered" 8 (List.length out);
  let count s = List.length (List.filter (fun l -> status_of l = s) out) in
  Alcotest.(check int) "only ok and overloaded" 8 (count "ok" + count "overloaded");
  Alcotest.(check bool) "some sheds" true (count "overloaded" >= 1);
  Alcotest.(check bool) "some answers" true (count "ok" >= 1)

let test_serve_memoization () =
  let obs = Obs.create () in
  let lines = [ request slotted_text; request slotted_text ] in
  let out = Serve.run_lines ~obs ~config:(config ()) lines in
  match out with
  | [ first; second ] ->
      let dispo line =
        match J.member "cache" (parse_ok line) with
        | Some (J.String s) -> s
        | _ -> Alcotest.fail "missing cache field"
      in
      Alcotest.(check string) "cold miss" "miss" (dispo first);
      Alcotest.(check string) "repeat hits" "hit" (dispo second);
      (* identical answer modulo the id and cache-disposition fields *)
      let strip line =
        List.filter
          (fun (k, _) -> k <> "cache" && k <> "id")
          (match parse_ok line with J.Obj fields -> fields | _ -> [])
      in
      Alcotest.(check bool) "memo replays the answer" true (strip first = strip second);
      let counters = Obs.counters obs in
      Alcotest.(check (option int)) "hit counter" (Some 1)
        (List.assoc_opt "serve.cache_hits" counters);
      Alcotest.(check (option int)) "miss counter" (Some 1)
        (List.assoc_opt "serve.cache_misses" counters)
  | l -> Alcotest.fail (Printf.sprintf "expected 2 responses, got %d" (List.length l))

let test_serve_basis_cache () =
  (* two LP-backed solves of same-shape models with the memo cache off:
     the second warm starts off the first's optimal basis via the shared
     warm-basis cache, surfaced as serve.basis_hits / serve.basis_misses *)
  let obs = Obs.create () in
  let lines =
    [ request ~extra:[ ("algorithm", J.String "lp-bound") ] slotted_text;
      request ~extra:[ ("algorithm", J.String "lp-bound") ] slotted_text ]
  in
  let out = Serve.run_lines ~obs ~config:(config ~cache:0 ()) lines in
  Alcotest.(check int) "two responses" 2 (List.length out);
  List.iter (fun l -> Alcotest.(check string) "ok" "ok" (status_of l)) out;
  let counter name = List.assoc_opt name (Obs.counters obs) in
  Alcotest.(check (option int)) "basis hit" (Some 1) (counter "serve.basis_hits");
  Alcotest.(check (option int)) "basis miss" (Some 1) (counter "serve.basis_misses");
  (* capacity 0 disables warm-basis reuse and its counters entirely *)
  let obs2 = Obs.create () in
  let out2 = Serve.run_lines ~obs:obs2 ~config:(config ~cache:0 ~basis_cache:0 ()) lines in
  Alcotest.(check int) "still two responses" 2 (List.length out2);
  Alcotest.(check (option int)) "no basis counters" None
    (List.assoc_opt "serve.basis_hits" (Obs.counters obs2))

(* ----------------------------------------- fault-injection acceptance -- *)

let test_serve_injected_stream () =
  (* the acceptance gate: 500 requests — a rotating mix of instances plus
     hand-broken lines — through a daemon injecting crashes and byte
     corruption on 4 worker domains. Exactly one well-formed schema-1
     response per request, every status in the contract, no crash. *)
  let statuses =
    [ "ok"; "degraded"; "infeasible"; "timeout"; "error"; "overloaded" ]
  in
  let lines =
    List.init 500 (fun i ->
        (* a per-request params tag keeps every cache key distinct, so
           each solve really runs (and really draws a crash chance)
           instead of replaying from the memo cache *)
        let tag = ("params", J.Obj [ ("tag", J.String (string_of_int i)) ]) in
        match i mod 5 with
        | 0 -> request ~extra:[ tag ] slotted_text
        | 1 -> request ~extra:[ tag; ("g", J.Int 2); ("algorithm", J.String "first-fit") ] busy_text
        | 2 ->
            request
              ~extra:[ tag; ("budget", J.Int 50); ("algorithm", J.String "exact") ]
              "slotted\ng 2\njob 0 0 6 3\njob 1 0 6 2\njob 2 1 5 3\njob 3 2 6 2\n"
        | 3 -> "{\"instance\": 42}"
        | _ -> Printf.sprintf "garbage line %d" i)
  in
  let inject = Serve.Inject.make ~crash:0.2 ~corrupt:0.1 ~seed:123 () in
  let obs = Obs.create () in
  let out = Serve.run_lines ~obs ~config:(config ~domains:4 ~cache:64 ~inject ()) lines in
  Alcotest.(check int) "exactly one response per request" 500 (List.length out);
  List.iter
    (fun line ->
      let doc = parse_ok line in
      (match J.member "schema" doc with
      | Some (J.Int 1) -> ()
      | _ -> Alcotest.fail ("response without schema 1: " ^ line));
      let s = status_of line in
      if not (List.mem s statuses) then Alcotest.fail ("unknown status " ^ s))
    out;
  let counter name = List.assoc_opt name (Obs.counters obs) in
  Alcotest.(check (option int)) "every request counted" (Some 500) (counter "serve.requests");
  Alcotest.(check (option int)) "every response counted" (Some 500) (counter "serve.responses");
  Alcotest.(check bool) "crashes actually injected" true
    (match counter "serve.injected_crashes" with Some n -> n > 0 | None -> false);
  Alcotest.(check bool) "corruption actually injected" true
    (match counter "serve.injected_corruptions" with Some n -> n > 0 | None -> false)

let () =
  Alcotest.run "serve"
    [ ( "bqueue",
        [ Alcotest.test_case "capacity validated" `Quick test_bqueue_capacity;
          Alcotest.test_case "push/pop/full" `Quick test_bqueue_push_pop;
          Alcotest.test_case "close drains" `Quick test_bqueue_close_drains;
          Alcotest.test_case "close wakes blocked pop" `Quick test_bqueue_close_wakes_blocked ] );
      ( "inject",
        [ Alcotest.test_case "spec parsing" `Quick test_inject_parse;
          Alcotest.test_case "seeded determinism" `Quick test_inject_deterministic;
          Alcotest.test_case "corruption stays one line" `Quick test_inject_corrupt_single_line ] );
      ( "protocol",
        [ Alcotest.test_case "json parser" `Quick test_json_parse;
          Alcotest.test_case "decode defaults" `Quick test_decode_defaults;
          Alcotest.test_case "decode rejects" `Quick test_decode_rejects;
          Alcotest.test_case "cache key scope" `Quick test_cache_key_ignores_delivery_fields;
          Alcotest.test_case "cache key params order" `Quick test_cache_key_params_order ] );
      ( "lenient io",
        [ Alcotest.test_case "bad line becomes warning" `Quick test_io_lenient_collects;
          Alcotest.test_case "zero denominator becomes warning" `Quick
            test_io_lenient_zero_denominator;
          Alcotest.test_case "bad header stays fatal" `Quick test_io_lenient_fatal_header ] );
      ( "daemon",
        [ Alcotest.test_case "basic ok, ordered" `Quick test_serve_basic_ok;
          Alcotest.test_case "crash isolation" `Quick test_serve_crash_isolation;
          Alcotest.test_case "malformed lines continue" `Quick test_serve_malformed_lines_continue;
          Alcotest.test_case "output failure shuts down orderly" `Quick
            test_serve_output_failure_orderly;
          Alcotest.test_case "deadline timeout with provenance" `Quick test_serve_deadline_timeout;
          Alcotest.test_case "overload sheds, answers all" `Quick test_serve_overload_sheds;
          Alcotest.test_case "memoized repeat" `Quick test_serve_memoization;
          Alcotest.test_case "warm-basis cache" `Quick test_serve_basis_cache ] );
      ( "acceptance",
        [ Alcotest.test_case "500-request injected stream" `Slow test_serve_injected_stream ] ) ]
