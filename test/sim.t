Rolling-horizon replay: a trace (instance + arrival times) is re-solved
epoch by epoch on a warm session; each epoch commits its window, the
text output pins one line per epoch plus the totals and the replay
oracle. Everything below is fuel-deterministic.

  $ cat > trace.txt <<'EOF'
  > slotted
  > g 2
  > job 0 0 4 2 arrival 0
  > job 1 2 8 3 arrival 2
  > job 2 0 8 2 arrival 0
  > EOF

  $ atbt sim trace.txt
  rolling: g=2 jobs=3 epoch-len=4 algorithm=cascade warm
  epoch 0 now=0: arrived=2 window=2 opened={1,2} work=4 done=2 miss=0 feasible bound=5 warm=0
  epoch 1 now=4: arrived=3 window=1 opened={5,6,7} work=3 done=1 miss=0 feasible bound=5 warm=3
  total: energy=5 work=7 completed=3/3 misses=0
  replay: energy=5 utilization=7/10 ok

The cold baseline (fresh session every epoch) commits the identical
schedule; only the warm-work counters differ:

  $ atbt sim trace.txt --cold
  rolling: g=2 jobs=3 epoch-len=4 algorithm=cascade cold
  epoch 0 now=0: arrived=2 window=2 opened={1,2} work=4 done=2 miss=0 feasible bound=5 warm=0
  epoch 1 now=4: arrived=3 window=1 opened={5,6,7} work=3 done=1 miss=0 feasible bound=5 warm=0
  total: energy=5 work=7 completed=3/3 misses=0
  replay: energy=5 utilization=7/10 ok

An always-expired epoch deadline (--epoch-deadline-ms 0) degrades every
epoch deterministically: the cascade provenance records the aborted
tier, the EDF fallback still commits the work, and the pinned LP bound
is skipped:

  $ atbt sim trace.txt --epoch-deadline-ms 0
  rolling: g=2 jobs=3 epoch-len=4 algorithm=cascade warm
  epoch 0 now=0: arrived=2 window=2 opened={1,2} work=4 done=2 miss=0 feasible bound=- warm=0 DEGRADED
    cascade: tier exact: deadline expired after 1 ticks
  epoch 1 now=4: arrived=3 window=1 opened={5,6,7} work=3 done=1 miss=0 feasible bound=- warm=1 DEGRADED
    cascade: tier exact: deadline expired after 1 ticks
  total: energy=5 work=7 completed=3/3 misses=0
  replay: energy=5 utilization=7/10 ok

A late arrival whose window is already spent is dropped as an SLA miss;
the pinned LP goes infeasible (bound=-) one epoch before the miss
materializes — the clairvoyant early warning — and the replay oracle is
skipped because the committed schedule is incomplete:

  $ cat > late.txt <<'EOF'
  > slotted
  > g 1
  > job 0 0 4 2 arrival 0
  > job 1 0 4 2 arrival 3
  > EOF

  $ atbt sim late.txt --epoch-len 2
  rolling: g=1 jobs=2 epoch-len=2 algorithm=cascade warm
  epoch 0 now=0: arrived=1 window=1 opened={1,2} work=2 done=1 miss=0 feasible bound=4 warm=0
  epoch 1 now=2: arrived=1 window=0 opened={} work=0 done=0 miss=0 feasible bound=- warm=2
  epoch 2 now=4: arrived=2 window=0 opened={} work=0 done=0 miss=1 feasible bound=2 warm=1
  total: energy=2 work=2 completed=1/2 misses=1
  replay: skipped (1 missed jobs)

JSON mode emits one schema-1 document carrying the per-epoch telemetry,
the totals and the replay, plus the session counters:

  $ atbt sim trace.txt --format json
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"sim","status":"ok","exit":0,"instance":{"digest":"fnv1a64:f0a475ae63ec7a2e","kind":"slotted","jobs":3,"horizon":8,"g":2},"kind":"rolling","g":2,"jobs":3,"epoch_len":4,"algorithm":"cascade","warm":true,"epochs":[{"index":0,"now":0,"arrived":2,"window_jobs":2,"opened":[1,2],"energy":2,"work":4,"completed":2,"sla_misses":0,"feasible":true,"lower_bound":"5","ticks":1,"lp_work":390,"warm_hits":0,"degraded":false,"provenance":{"winner":"exact","attempts":[{"tier":"exact","ticks":1,"status":"answered"}],"cost":2,"mass-bound":2,"gap":0}},{"index":1,"now":4,"arrived":3,"window_jobs":1,"opened":[5,6,7],"energy":3,"work":3,"completed":1,"sla_misses":0,"feasible":true,"lower_bound":"5","ticks":13,"lp_work":95,"warm_hits":3,"degraded":false,"provenance":{"winner":"exact","attempts":[{"tier":"exact","ticks":13,"status":"answered"}],"cost":3,"mass-bound":2,"gap":1}}],"totals":{"epochs":2,"energy":5,"work":7,"completed":3,"sla_misses":0,"degraded_epochs":0},"open_slots":[1,2,5,6,7],"replay":{"energy":"5","switch_ons":2,"peak_parallelism":2,"utilization":"7/10","violations":[]},"counters":{"active.exact.flow_checks":11,"active.exact.nodes":14,"active.minimal.closures":7,"active.minimal.feasibility_checks":14,"active.oracle.builds":5,"active.oracle.checks":27,"active.oracle.job_toggles":3,"active.oracle.slot_toggles":38,"cascade.attempts":2,"cascade.ticks":14,"flow.augment_calls":27,"flow.augmentations":42,"flow.bfs_rounds":21,"flow.drained_units":25,"flow.drains":21,"lp.bound_flips":3,"lp.degenerate_pivots":12,"lp.eta_updates":17,"lp.exact_cells":485,"lp.fill_nonzeros":94,"lp.phase1_pivots":16,"lp.pivots":16,"lp.priced_columns":548,"lp.refactorizations":2,"lp.solves":2,"lp.warm_starts":1,"session.solves":2,"session.warm_hits":2,"session.warm_misses":2,"sim.energy":5,"sim.epochs":2,"sim.work":7}}

The SVG strip writes one lane per epoch plus the cumulative band:

  $ atbt sim trace.txt --svg epochs.svg
  rolling: g=2 jobs=3 epoch-len=4 algorithm=cascade warm
  epoch 0 now=0: arrived=2 window=2 opened={1,2} work=4 done=2 miss=0 feasible bound=5 warm=0
  epoch 1 now=4: arrived=3 window=1 opened={5,6,7} work=3 done=1 miss=0 feasible bound=5 warm=3
  total: energy=5 work=7 completed=3/3 misses=0
  replay: energy=5 utilization=7/10 ok
  wrote epochs.svg
  $ grep -c "</svg>" epochs.svg
  1

--lp-pricing selects the simplex pricing policy for every LP inside the
loop (the window re-solves and the pinned LP1 bound); pricing never
changes answers, so devex commits the identical schedule:

  $ atbt sim trace.txt --lp-pricing devex
  rolling: g=2 jobs=3 epoch-len=4 algorithm=cascade warm
  epoch 0 now=0: arrived=2 window=2 opened={1,2} work=4 done=2 miss=0 feasible bound=5 warm=0
  epoch 1 now=4: arrived=3 window=1 opened={5,6,7} work=3 done=1 miss=0 feasible bound=5 warm=3
  total: energy=5 work=7 completed=3/3 misses=0
  replay: energy=5 utilization=7/10 ok

Flag validation:

  $ atbt sim trace.txt --epoch-len 0
  atbt: --epoch-len must be at least 1
  [1]
  $ atbt sim trace.txt --algorithm no-such-solver
  atbt: unknown algorithm no-such-solver for active-slotted instances (valid: cascade|exact|ilp|lp-bound|minimal|rounding|unit)
  [2]
  $ atbt sim trace.txt --lp-pricing no-such-policy
  atbt: unknown LP pricing no-such-policy (valid: dantzig|devex|partial; see atbt --list-solvers)
  [2]
