(* Bitset: the exact search's slot-set substrate. Unit tests pin the
   word-boundary behavior (62-bit words), the qcheck properties check the
   whole API against a reference implementation over sorted int lists. *)

let test_basics () =
  let b = Bitset.create ~width:10 in
  Alcotest.(check int) "empty cardinal" 0 (Bitset.cardinal b);
  let b = Bitset.add (Bitset.add b 3) 7 in
  Alcotest.(check bool) "mem 3" true (Bitset.mem b 3);
  Alcotest.(check bool) "mem 4" false (Bitset.mem b 4);
  Alcotest.(check (list int)) "to_list" [ 3; 7 ] (Bitset.to_list b);
  let b' = Bitset.remove b 3 in
  Alcotest.(check (list int)) "after remove" [ 7 ] (Bitset.to_list b');
  Alcotest.(check (list int)) "original untouched" [ 3; 7 ] (Bitset.to_list b);
  Alcotest.(check bool) "add is idempotent" true (Bitset.equal b (Bitset.add b 3))

let test_word_boundaries () =
  (* widths straddling the 62-bit word size *)
  List.iter
    (fun width ->
      let full = Bitset.full ~width in
      Alcotest.(check int) (Printf.sprintf "full cardinal width %d" width) width
        (Bitset.cardinal full);
      Alcotest.(check (list int))
        (Printf.sprintf "full to_list width %d" width)
        (List.init width (fun i -> i))
        (Bitset.to_list full);
      Alcotest.(check bool)
        (Printf.sprintf "suffix 0 = full width %d" width)
        true
        (Bitset.equal full (Bitset.suffix ~width 0)))
    [ 1; 61; 62; 63; 124; 125 ]

let test_suffix () =
  let s = Bitset.suffix ~width:70 65 in
  Alcotest.(check (list int)) "suffix crosses words" [ 65; 66; 67; 68; 69 ] (Bitset.to_list s);
  Alcotest.(check int) "empty suffix" 0 (Bitset.cardinal (Bitset.suffix ~width:70 70));
  Alcotest.(check int) "clamped negative" 70 (Bitset.cardinal (Bitset.suffix ~width:70 (-3)))

let test_popcount_word () =
  Alcotest.(check int) "zero" 0 (Bitset.popcount_word 0);
  Alcotest.(check int) "one" 1 (Bitset.popcount_word 1);
  Alcotest.(check int) "max_int" 62 (Bitset.popcount_word max_int);
  Alcotest.(check int) "alternating" 31 (Bitset.popcount_word 0x1555555555555555);
  (* agree with the bit-at-a-time reference *)
  let reference =
    let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
    go 0
  in
  List.iter
    (fun x ->
      Alcotest.(check int) (Printf.sprintf "popcount %x" x) (reference x) (Bitset.popcount_word x))
    [ 0xdeadbeef; 0x0F0F0F0F0F0F0F0F; 0x3333333333333333; (1 lsl 62) - 1; 1 lsl 61 ]

(* ----------------------------------------------------------- qcheck -- *)

(* reference model: sorted deduplicated int lists *)
let elems_gen =
  QCheck.Gen.(
    let* width = int_range 1 130 in
    let* xs = small_list (int_range 0 (width - 1)) in
    return (width, List.sort_uniq compare xs))

let elems_arb =
  QCheck.make elems_gen ~print:(fun (w, xs) ->
      Printf.sprintf "width=%d {%s}" w (String.concat "," (List.map string_of_int xs)))

let of_model width xs = List.fold_left Bitset.add (Bitset.create ~width) xs

let prop_roundtrip =
  QCheck.Test.make ~name:"to_list (of_list)" ~count:500 elems_arb (fun (w, xs) ->
      Bitset.to_list (of_model w xs) = xs)

let prop_cardinal =
  QCheck.Test.make ~name:"cardinal = length" ~count:500 elems_arb (fun (w, xs) ->
      Bitset.cardinal (of_model w xs) = List.length xs)

let prop_union_inter =
  QCheck.Test.make ~name:"union/inter vs list model" ~count:500
    QCheck.(pair elems_arb elems_arb)
    (fun ((w1, xs), (w2, ys)) ->
      let w = max w1 w2 in
      let a = of_model w xs and b = of_model w ys in
      Bitset.to_list (Bitset.union a b) = List.sort_uniq compare (xs @ ys)
      && Bitset.to_list (Bitset.inter a b) = List.filter (fun x -> List.mem x ys) xs)

let prop_suffix =
  QCheck.Test.make ~name:"suffix vs list model" ~count:500
    QCheck.(pair (int_range 1 130) (int_range (-5) 135))
    (fun (w, i) ->
      Bitset.to_list (Bitset.suffix ~width:w i)
      = List.filter (fun x -> x >= i) (List.init w (fun x -> x)))

let prop_fold_order =
  QCheck.Test.make ~name:"fold ascending = to_list" ~count:500 elems_arb (fun (w, xs) ->
      List.rev (Bitset.fold (fun acc i -> i :: acc) [] (of_model w xs)) = xs)

let () =
  Alcotest.run "bitset"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "word boundaries" `Quick test_word_boundaries;
          Alcotest.test_case "suffix" `Quick test_suffix;
          Alcotest.test_case "popcount word" `Quick test_popcount_word;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_cardinal; prop_union_inter; prop_suffix; prop_fold_order ] );
    ]
