(* Tests for instance types, random generators and the paper gadgets:
   structural sanity (counts, windows, rigidity), generator invariants under
   many seeds, and the analytically known quantities of each gadget. *)

module Q = Rational
module S = Workload.Slotted
module B = Workload.Bjob
module Gen = Workload.Generate
module Gad = Workload.Gadgets

let q = Q.of_ints

let test_slotted_job_validation () =
  Alcotest.check_raises "zero length" (Invalid_argument "Slotted.job: length < 1") (fun () ->
      ignore (S.job ~id:0 ~release:0 ~deadline:3 ~length:0));
  Alcotest.check_raises "tight window" (Invalid_argument "Slotted.job: window shorter than length") (fun () ->
      ignore (S.job ~id:0 ~release:0 ~deadline:2 ~length:3));
  Alcotest.check_raises "negative release" (Invalid_argument "Slotted.job: negative release") (fun () ->
      ignore (S.job ~id:0 ~release:(-1) ~deadline:2 ~length:1));
  let j = S.job ~id:7 ~release:2 ~deadline:5 ~length:3 in
  Alcotest.(check (list int)) "window slots" [ 3; 4; 5 ] (S.window_slots j);
  Alcotest.(check bool) "rigid" true (S.is_rigid j);
  Alcotest.(check bool) "live" true (S.is_live j ~slot:3);
  Alcotest.(check bool) "not live" false (S.is_live j ~slot:2)

let test_slotted_instance () =
  let jobs = [ S.job ~id:0 ~release:0 ~deadline:4 ~length:2; S.job ~id:1 ~release:1 ~deadline:6 ~length:3 ] in
  let t = S.make ~g:2 jobs in
  Alcotest.(check int) "n" 2 (S.num_jobs t);
  Alcotest.(check int) "P" 5 (S.total_length t);
  Alcotest.(check int) "T" 6 (S.horizon t);
  Alcotest.(check int) "mass bound" 3 (S.mass_lower_bound t);
  Alcotest.(check (list int)) "relevant slots" [ 1; 2; 3; 4; 5; 6 ] (S.relevant_slots t);
  Alcotest.check_raises "bad g" (Invalid_argument "Slotted.make: g < 1") (fun () -> ignore (S.make ~g:0 jobs))

let test_schedule_check () =
  let jobs = [ S.job ~id:0 ~release:0 ~deadline:4 ~length:2; S.job ~id:1 ~release:0 ~deadline:4 ~length:1 ] in
  let t = S.make ~g:1 jobs in
  Alcotest.(check (option string)) "valid" None (S.check_schedule t [ (0, [ 1; 2 ]); (1, [ 3 ]) ]);
  Alcotest.(check bool) "over capacity detected" true
    (S.check_schedule t [ (0, [ 1; 2 ]); (1, [ 2 ]) ] <> None);
  Alcotest.(check bool) "short job detected" true (S.check_schedule t [ (0, [ 1 ]); (1, [ 3 ]) ] <> None);
  Alcotest.(check bool) "outside window detected" true
    (S.check_schedule t [ (0, [ 1; 5 ]); (1, [ 3 ]) ] <> None);
  Alcotest.(check bool) "missing job detected" true (S.check_schedule t [ (0, [ 1; 2 ]) ] <> None);
  Alcotest.(check (list int)) "active slots" [ 1; 2; 3 ] (S.active_slots [ (0, [ 1; 2 ]); (1, [ 3 ]) ])

let test_bjob () =
  let j = B.make ~id:0 ~release:Q.zero ~deadline:(Q.of_int 5) ~length:Q.two in
  Alcotest.(check bool) "flexible" false (B.is_interval j);
  let p = B.place j (Q.of_int 3) in
  Alcotest.(check bool) "placed is interval" true (B.is_interval p);
  Alcotest.(check string) "placed window" "[3, 5)" (Intervals.Interval.to_string (B.interval_of p));
  Alcotest.check_raises "place too late" (Invalid_argument "Bjob.place: start outside window") (fun () ->
      ignore (B.place j (Q.of_int 4)));
  Alcotest.check_raises "flexible has no interval" (Invalid_argument "Bjob.interval_of: flexible job")
    (fun () -> ignore (B.interval_of j));
  Alcotest.check_raises "zero length" (Invalid_argument "Bjob.make: length <= 0") (fun () ->
      ignore (B.make ~id:0 ~release:Q.zero ~deadline:Q.one ~length:Q.zero))

let test_generators_deterministic () =
  let a = Gen.slotted ~seed:42 () and b = Gen.slotted ~seed:42 () in
  Alcotest.(check bool) "same seed same instance" true (a = b);
  let c = Gen.slotted ~seed:43 () in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_generator_families () =
  for seed = 0 to 20 do
    let interval = Gen.interval_jobs ~n:10 ~seed () in
    Alcotest.(check bool) "interval jobs are interval" true (List.for_all B.is_interval interval);
    let clique = Gen.clique_interval_jobs ~n:8 ~seed () in
    (* all windows share a common point: max release < min deadline *)
    let max_r = List.fold_left (fun acc j -> Q.max acc j.B.release) (Q.of_int min_int) clique in
    let min_d = List.fold_left (fun acc j -> Q.min acc j.B.deadline) (Q.of_int max_int) clique in
    Alcotest.(check bool) "clique has common point" true (Q.compare max_r min_d < 0);
    let proper = Gen.proper_interval_jobs ~n:8 ~seed () in
    List.iteri
      (fun i ji ->
        List.iteri
          (fun k jk ->
            if i <> k then
              Alcotest.(check bool) "proper: no containment" false
                (Q.compare ji.B.release jk.B.release < 0 && Q.compare jk.B.deadline ji.B.deadline < 0))
          proper)
      proper;
    let laminar = Gen.laminar_interval_jobs ~seed () in
    List.iteri
      (fun i ji ->
        List.iteri
          (fun k jk ->
            if i <> k then begin
              let wi = B.window ji and wk = B.window jk in
              let nested_or_disjoint =
                Intervals.Interval.subset wi wk || Intervals.Interval.subset wk wi
                || not (Intervals.Interval.overlaps wi wk)
              in
              Alcotest.(check bool) "laminar structure" true nested_or_disjoint
            end)
          laminar)
      laminar
  done

let test_gadget_fig3 () =
  let g = 5 in
  let t = Gad.minimal_feasible_tight g in
  Alcotest.(check int) "job count" (2 + (3 * (g - 2))) (S.num_jobs t);
  (* the optimal slot set can carry all units: capacity vs mass *)
  Alcotest.(check int) "opt slots count" g (List.length (Gad.minimal_feasible_tight_opt_slots g));
  Alcotest.(check int) "bad slots count" ((3 * g) - 2) (List.length (Gad.minimal_feasible_tight_bad_slots g));
  Alcotest.(check int) "total work fits g slots" (g * g) (S.total_length t);
  Alcotest.check_raises "g too small" (Invalid_argument "Gadgets.minimal_feasible_tight: needs g >= 3")
    (fun () -> ignore (Gad.minimal_feasible_tight 2))

let test_gadget_figure_one () =
  let jobs = Gad.figure_one () in
  Alcotest.(check int) "seven jobs" 7 (List.length jobs);
  let packing = Gad.figure_one_packing jobs in
  Alcotest.(check int) "two machines" 2 (List.length packing);
  Alcotest.(check (option string)) "valid at g=3" None (Busy.Bundle.check ~g:3 jobs packing);
  (* the displayed packing is in fact optimal *)
  Alcotest.(check bool) "optimal" true
    (Q.equal (Busy.Bundle.total_busy packing) (Busy.Exact.optimum ~g:3 jobs))

let test_gadget_integrality () =
  let g = 4 in
  let t = Gad.integrality_gap g in
  Alcotest.(check int) "jobs" (g * (g + 1)) (S.num_jobs t);
  Alcotest.(check int) "horizon" (2 * g) (S.horizon t);
  (* every job has a 2-slot window *)
  Array.iter (fun j -> Alcotest.(check int) "window" 2 (S.window_size j)) t.S.jobs

let test_gadget_greedy_tracking () =
  let g = 3 in
  let gt = Gad.greedy_tracking_tight ~g ~eps:(q 1 4) in
  Alcotest.(check int) "instance size" ((2 * g * g) + (2 * g)) (List.length gt.Gad.gt_instance);
  Alcotest.(check int) "adversarial size" ((2 * g * g) + (2 * g)) (List.length gt.Gad.gt_adversarial);
  Alcotest.(check bool) "adversarial all placed" true (List.for_all B.is_interval gt.Gad.gt_adversarial);
  (* opt cost = 2g + 2 - eps + O(delta) with delta << eps *)
  let base = Q.sub (Q.of_int ((2 * g) + 2)) (q 1 4) in
  Alcotest.(check bool) "opt cost ~ 2g+2-eps" true
    (Q.compare gt.Gad.gt_opt_cost base >= 0 && Q.compare gt.Gad.gt_opt_cost (Q.add base (q 1 8)) <= 0);
  (* the optimal packing is a valid packing of its own job set *)
  Alcotest.(check (option string)) "opt packing valid" None
    (Busy.Bundle.check ~g (List.concat gt.Gad.gt_opt_packing) gt.Gad.gt_opt_packing);
  (* adversarial placement must still respect each job's window *)
  let windows = List.map (fun j -> (j.B.id, j)) gt.Gad.gt_instance in
  List.iter
    (fun placed ->
      let original = List.assoc placed.B.id windows in
      Alcotest.(check bool) "placement within window" true
        (Q.compare original.B.release placed.B.release <= 0
        && Q.compare placed.B.deadline original.B.deadline <= 0
        && Q.equal placed.B.length original.B.length))
    gt.Gad.gt_adversarial

let test_gadget_two_approx () =
  let ta = Gad.two_approx_tight ~eps:(q 1 10) ~eps':(q 1 20) in
  Alcotest.(check int) "five jobs" 5 (List.length ta.Gad.ta_jobs);
  Alcotest.(check int) "g=2" 2 ta.Gad.ta_g;
  Alcotest.(check string) "opt" "11/10" (Q.to_string ta.Gad.ta_opt_cost);
  (* demand is everywhere 0 or 2 = g, as the appendix requires *)
  let ivs = List.map B.interval_of ta.Gad.ta_jobs in
  List.iter
    (fun c ->
      Alcotest.(check bool) "demand multiple of 2" true
        (c.Intervals.Demand.raw = 0 || c.Intervals.Demand.raw = 2))
    (Intervals.Demand.cells ivs);
  Alcotest.check_raises "bad eps" (Invalid_argument "Gadgets.two_approx_tight: need 0 < eps' < eps < 1")
    (fun () -> ignore (Gad.two_approx_tight ~eps:(q 1 20) ~eps':(q 1 10)))

let test_gadget_dp_profile () =
  let g = 4 in
  let dp = Gad.dp_profile_tight ~g ~eps:(q 1 100) in
  Alcotest.(check int) "instance size" (1 + ((g - 1) * g) + (g - 1)) (List.length dp.Gad.dp_instance);
  Alcotest.(check bool) "adversarial placed" true (List.for_all B.is_interval dp.Gad.dp_adversarial);
  Alcotest.(check bool) "optimal placed" true (List.for_all B.is_interval dp.Gad.dp_optimal);
  (* paper: profile(adversarial) = 2g - 1 + g(g-1)eps; profile(optimal
     structure) ~ g. With eps = 1/100, g = 4: adversarial = 7 + 12/100. *)
  let profile jobs = Intervals.Demand.profile_cost ~g (List.map B.interval_of jobs) in
  Alcotest.(check string) "adversarial profile" "178/25" (Q.to_string (profile dp.Gad.dp_adversarial));
  let ratio = Q.div (profile dp.Gad.dp_adversarial) (profile dp.Gad.dp_optimal) in
  (* ratio -> (2g-1)/g as eps -> 0 (and -> 2 as g grows); g = 4: ~7/4 *)
  Alcotest.(check bool) "ratio approaches (2g-1)/g" true
    (Q.compare ratio (q 8 5) > 0 && Q.compare ratio Q.two < 0)

let test_gadget_four_approx () =
  let g = 3 in
  let fa = Gad.four_approx_tight ~g ~eps:(q 1 10) ~eps':(q 1 30) in
  (* 1 + (g-1)*(g + 2g-2 + 2 + 2) + (g-1) flexible *)
  Alcotest.(check int) "instance size" (1 + ((g - 1) * (g + (2 * g) - 2 + 4)) + (g - 1))
    (List.length fa.Gad.fa_instance);
  Alcotest.(check bool) "adversarial placed" true (List.for_all B.is_interval fa.Gad.fa_adversarial);
  (* gadget small-job cluster must have raw demand 2g at its peak *)
  let ivs = List.map B.interval_of fa.Gad.fa_adversarial in
  Alcotest.(check bool) "peak demand >= 2g" true (Intervals.Demand.max_raw ivs >= 2 * g);
  (* the Fig. 12 certificate is a valid packing of cost ~ 1 + 4(g-1) *)
  Alcotest.(check (option string)) "certificate valid" None
    (Busy.Bundle.check ~g fa.Gad.fa_adversarial fa.Gad.fa_bad_packing);
  let cert = Busy.Bundle.total_busy fa.Gad.fa_bad_packing in
  let base = Q.of_int (1 + (4 * (g - 1))) in
  Alcotest.(check bool) "certificate cost ~ 1+4(g-1)" true
    (Q.compare cert base >= 0 && Q.compare cert (Q.add base Q.one) <= 0)

let test_io_roundtrip () =
  let slotted = Workload.Io.Slotted_instance (Gen.slotted ~seed:5 ()) in
  Alcotest.(check bool) "slotted roundtrip" true
    (Workload.Io.parse_string (Workload.Io.to_string slotted) = slotted);
  let busy = Workload.Io.Busy_instance (Gen.flexible_jobs ~n:6 ~seed:5 ()) in
  Alcotest.(check bool) "busy roundtrip" true
    (Workload.Io.parse_string (Workload.Io.to_string busy) = busy);
  (* rational coordinates survive *)
  let jobs = [ B.make ~id:0 ~release:(q 1 2) ~deadline:(q 7 2) ~length:(q 5 4) ] in
  Alcotest.(check bool) "rational roundtrip" true
    (Workload.Io.parse_string (Workload.Io.to_string (Workload.Io.Busy_instance jobs))
    = Workload.Io.Busy_instance jobs)

let test_io_arrivals () =
  (* the optional trailing [arrival <t>] pair parses on both kinds,
     defaults to 0, and roundtrips through to_string ~arrivals *)
  let text = "slotted\ng 2\njob 0 0 4 2 arrival 3\njob 1 1 5 3\n" in
  (match Workload.Io.parse_string_timed text with
  | Workload.Io.Slotted_instance t, arrivals ->
      Alcotest.(check int) "both jobs parsed" 2 (Array.length t.S.jobs);
      Alcotest.(check int) "explicit arrival" 3 (Workload.Io.arrival arrivals 0);
      Alcotest.(check int) "default arrival" 0 (Workload.Io.arrival arrivals 1);
      Alcotest.(check string) "timed roundtrip" text
        (Workload.Io.to_string ~arrivals (Workload.Io.Slotted_instance t))
  | _ -> Alcotest.fail "expected a slotted instance");
  (match Workload.Io.parse_string_timed "busy\njob 0 0 5/2 1 arrival 2\n" with
  | Workload.Io.Busy_instance [ _ ], arrivals ->
      Alcotest.(check int) "busy arrival" 2 (Workload.Io.arrival arrivals 0)
  | _ -> Alcotest.fail "expected one busy job");
  (* the untimed parse accepts and ignores the directive *)
  (match Workload.Io.parse_string text with
  | Workload.Io.Slotted_instance t -> Alcotest.(check int) "untimed accepts" 2 (Array.length t.S.jobs)
  | _ -> Alcotest.fail "expected a slotted instance");
  (* the timed generator's arrivals never exceed the release *)
  let t, arrivals = Gen.timed_slotted ~seed:11 () in
  Array.iter
    (fun j ->
      let a = Workload.Io.arrival arrivals j.S.id in
      if a < 0 || a > j.S.release then Alcotest.fail "arrival outside [0, release]")
    t.S.jobs

let test_io_errors () =
  let expect_error input =
    match Workload.Io.parse_string input with
    | exception Workload.Io.Parse_error _ -> ()
    | _ -> Alcotest.fail ("accepted bad input: " ^ input)
  in
  expect_error "job 0 0 3 1"; (* missing header *)
  expect_error "slotted\njob 0 0 3 1"; (* missing g *)
  expect_error "slotted\ng 2\njob 0 0 1 5"; (* window < length *)
  expect_error "slotted\ng 0\n"; (* bad capacity *)
  expect_error "busy\njob 0 zero 3 1"; (* bad rational *)
  expect_error "busy\nfrob 1 2 3"; (* unknown directive *)
  expect_error "slotted\ng 2\njob 0 0 4 2 arrival x"; (* non-integer arrival *)
  expect_error "slotted\ng 2\njob 0 0 4 2 arrival -1"; (* negative arrival *)
  expect_error "slotted\ng 2\njob 0 0 4 2 arrival"; (* missing arrival value *)
  (* comments and blank lines are fine *)
  match Workload.Io.parse_string "# hi\n\nbusy\njob 0 0 3 1 # trailing\n" with
  | Workload.Io.Busy_instance [ _ ] -> ()
  | _ -> Alcotest.fail "comment handling"

let test_io_whitespace () =
  (* fields may be separated by tabs or any whitespace run, not just
     single spaces *)
  (match Workload.Io.parse_string "slotted\ng\t2\njob\t0\t0\t3\t1\njob 1\t 2  5\t3\n" with
  | Workload.Io.Slotted_instance t ->
      Alcotest.(check int) "g parsed" 2 t.S.g;
      Alcotest.(check int) "both jobs parsed" 2 (Array.length t.S.jobs)
  | _ -> Alcotest.fail "expected a slotted instance");
  (* a tab-separated busy line with a trailing comment *)
  match Workload.Io.parse_string "busy\njob\t0\t0\t3\t3\t# comment\n" with
  | Workload.Io.Busy_instance [ j ] ->
      Alcotest.(check bool) "interval job" true (B.is_interval j)
  | _ -> Alcotest.fail "expected one busy job"

(* properties: random slotted instances are well-formed *)
let prop_slotted_wellformed =
  QCheck.Test.make ~name:"random slotted instances well-formed" ~count:100 (QCheck.int_range 0 10_000)
    (fun seed ->
      let t = Gen.slotted ~seed () in
      Array.for_all
        (fun j ->
          j.S.length >= 1 && j.S.release >= 0 && j.S.deadline - j.S.release >= j.S.length
          && j.S.deadline <= 20)
        t.S.jobs)

let prop_flexible_windows =
  QCheck.Test.make ~name:"flexible generator: window ~ slack_factor * length" ~count:100
    (QCheck.int_range 0 10_000) (fun seed ->
      let jobs = Gen.flexible_jobs ~slack_factor:3 ~seed () in
      List.for_all
        (fun j ->
          let window = Q.sub j.B.deadline j.B.release in
          Q.compare window j.B.length >= 0 && Q.compare window (Q.mul (Q.of_int 3) j.B.length) <= 0)
        jobs)

let props = List.map QCheck_alcotest.to_alcotest [ prop_slotted_wellformed; prop_flexible_windows ]

let () =
  Alcotest.run "workload"
    [ ( "slotted",
        [ Alcotest.test_case "job validation" `Quick test_slotted_job_validation;
          Alcotest.test_case "instance accessors" `Quick test_slotted_instance;
          Alcotest.test_case "schedule check" `Quick test_schedule_check ] );
      ("bjob", [ Alcotest.test_case "busy-time jobs" `Quick test_bjob ]);
      ( "io",
        [ Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "arrivals" `Quick test_io_arrivals;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "tabs and whitespace" `Quick test_io_whitespace ] );
      ( "generators",
        [ Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "families" `Quick test_generator_families ] );
      ( "gadgets",
        [ Alcotest.test_case "fig1 worked example" `Quick test_gadget_figure_one;
          Alcotest.test_case "fig3 minimal feasible" `Quick test_gadget_fig3;
          Alcotest.test_case "integrality gap" `Quick test_gadget_integrality;
          Alcotest.test_case "fig6/7 greedy tracking" `Quick test_gadget_greedy_tracking;
          Alcotest.test_case "fig8 two approx" `Quick test_gadget_two_approx;
          Alcotest.test_case "fig9 dp profile" `Quick test_gadget_dp_profile;
          Alcotest.test_case "fig10 four approx" `Quick test_gadget_four_approx ] );
      ("properties", props) ]
