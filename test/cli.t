The CLI emits human text by default and one machine-readable telemetry
document with --format json. Both are exercised on a seeded instance so
the outputs below are fully deterministic.

  $ atbt generate --kind slotted -n 6 --seed 3 -o inst.txt
  wrote inst.txt

Text output is the historical format, byte for byte:

  $ atbt active inst.txt --algorithm minimal
  active time 8, open slots: 8,9,10,11,16,18,19,20
    job 0 -> 16,18,19,20
    job 1 -> 18,19,20
    job 2 -> 19,20
    job 3 -> 10,11
    job 4 -> 8,9,10,11
    job 5 -> 10
  energy 8, power-ons 3, utilization 2/3

JSON output is a single schema-1 document on stdout:

  $ atbt active inst.txt --algorithm minimal --format json
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"active","algorithm":"minimal","instance":{"digest":"fnv1a64:aee88f7930ef203d","kind":"slotted","jobs":6,"horizon":22,"g":3},"status":"ok","exit":0,"message":null,"cost":8,"bounds":{"mass":6},"provenance":null,"counters":{"active.minimal.closures":8,"active.minimal.feasibility_checks":17,"active.oracle.builds":1,"active.oracle.checks":17,"active.oracle.slot_toggles":24,"flow.augment_calls":17,"flow.augmentations":43,"flow.bfs_rounds":15,"flow.drained_units":27,"flow.drains":14},"spans":[{"name":"active.minimal","ticks":183,"children":[]}]}

Two runs of the same seeded instance produce byte-identical telemetry:

  $ atbt active inst.txt --cascade --format json > run1.json
  $ atbt active inst.txt --cascade --format json > run2.json
  $ cmp run1.json run2.json

The busy pipeline speaks the same schema:

  $ atbt generate --kind interval -n 5 --seed 9 -o jobs.txt
  wrote jobs.txt
  $ atbt busy jobs.txt -g 2 --format json
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"busy","algorithm":"greedy-tracking","instance":{"digest":"fnv1a64:d79faffbc9104bcb","kind":"busy","jobs":5,"g":2},"status":"ok","exit":0,"message":null,"cost":"15","bounds":{"mass":"19/2","span":"12","demand_profile":"15"},"provenance":null,"counters":{"busy.greedy_tracking.tracks":3},"spans":[{"name":"busy.greedy_tracking","ticks":3,"children":[]}]}

Usage errors still produce a document (status/exit mirror the code):

  $ atbt active jobs.txt --format json
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"active","algorithm":"rounding","instance":null,"status":"usage-error","exit":1,"message":"active expects a slotted instance","cost":null,"bounds":null,"provenance":null,"counters":{},"spans":[]}
  [1]

An unwritable output file is a usage error (exit 1), not a crash:

  $ atbt active inst.txt --algorithm minimal --svg /nonexistent-dir/out.svg > /dev/null
  atbt: /nonexistent-dir/out.svg: No such file or directory
  [1]
  $ atbt generate --kind interval -n 4 --seed 1 -o /nonexistent-dir/jobs.txt
  atbt: /nonexistent-dir/jobs.txt: No such file or directory
  [1]

The solver inventory is a registry query; the golden doubles as the CI
registry-smoke reference:

  $ atbt --list-solvers | diff list_solvers.golden -

An unknown algorithm is a usage error (exit 2) listing the registered names:

  $ atbt active inst.txt --algorithm bogus
  atbt: unknown algorithm bogus (valid for active-slotted: cascade|exact|ilp|lp-bound|minimal|rounding|unit; see atbt --list-solvers)
  [2]
  $ atbt busy jobs.txt -g 2 --algorithm bogus --format json
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"busy","algorithm":"bogus","instance":{"digest":"fnv1a64:d79faffbc9104bcb","kind":"busy","jobs":5,"g":2},"status":"usage-error","exit":2,"message":"unknown algorithm bogus (valid for busy-interval: auto|cascade|clique-greedy|exact|first-fit|greedy-tracking|kumar-rudra|laminar|online-bucketed|online-first-fit|proper-clique|proper-greedy|two-approx; see atbt --list-solvers)","cost":null,"bounds":null,"provenance":null,"counters":{},"spans":[]}
  [2]

LP-backed solvers take --lp-engine to pick a registered simplex engine;
every engine returns bit-identical exact results (the float engine
certifies its basis exactly, falling back to revised when it cannot),
and an unknown engine mirrors the unknown-algorithm UX:

  $ atbt bounds inst.txt --lp-engine float
  slotted instance: n=6 T=22 g=3
  mass lower bound ceil(P/g): 6
  LP lower bound: 8
  $ atbt active inst.txt --algorithm lp-bound --lp-engine float
  objective 8
  $ atbt active inst.txt --algorithm lp-bound --lp-engine dense
  objective 8
  $ atbt active inst.txt --lp-engine bogus
  atbt: unknown LP engine bogus (valid: dense|float|revised|sparse; see atbt --list-solvers)
  [2]

A malformed job line is fatal in text mode but becomes a structured
per-line warning in the JSON document, which continues with the lines
that did parse:

  $ cat > broken.txt <<'TXT'
  > busy
  > job 0 0 10 10
  > job oops
  > job 1 0 10 10
  > TXT
  $ atbt busy broken.txt -g 2
  atbt: broken.txt:3: jobs need four fields: id release deadline length
  [1]
  $ atbt busy broken.txt -g 2 --format json
  {"schema":1,"tool":"atbt","version":"1.10.0","command":"busy","algorithm":"greedy-tracking","instance":{"digest":"fnv1a64:d7b988d9f78c9e0f","kind":"busy","jobs":2,"g":2},"status":"ok","exit":0,"message":null,"warnings":[{"line":3,"message":"jobs need four fields: id release deadline length"}],"cost":"10","bounds":{"mass":"10","span":"10","demand_profile":"10"},"provenance":null,"counters":{"busy.greedy_tracking.tracks":2},"spans":[{"name":"busy.greedy_tracking","ticks":2,"children":[]}]}
